(* powerlim: command-line driver for the power-constrained performance
   toolkit.

     powerlim bound  --app bt --cap 30            LP upper bound + validation
     powerlim compare --app lulesh --cap 50       Static / Conductor / LP
     powerlim sweep --ranks 32 --iters 20         the full figure sweep
     powerlim frontier --app comd                 task Pareto frontier
     powerlim flow --cap 60                       flow ILP vs fixed-order LP *)

open Cmdliner

let ranks_t =
  Arg.(value & opt int 16 & info [ "ranks" ] ~docv:"N" ~doc:"Number of MPI ranks (= sockets).")

let iters_t =
  Arg.(value & opt int 10 & info [ "iters" ] ~docv:"N" ~doc:"Application iterations.")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Workload random seed.")

let app_conv =
  Arg.conv
    ( (fun s ->
        try Ok (Workloads.Apps.app_of_name s)
        with Invalid_argument m -> Error (`Msg m)),
      fun ppf a -> Fmt.string ppf (Workloads.Apps.app_name a) )

let app_t =
  Arg.(value & opt app_conv Workloads.Apps.CoMD & info [ "app" ] ~docv:"APP"
         ~doc:"Benchmark: comd, lulesh, sp or bt.")

let cap_t =
  Arg.(value & opt float 40.0 & info [ "cap" ] ~docv:"W"
         ~doc:"Average power cap per processor socket, watts.")

let discrete_t =
  Arg.(value & flag & info [ "discrete" ]
         ~doc:"Round the LP schedule to single discrete configurations.")

(* ---- observability plumbing --------------------------------------- *)

let trace_out_t =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Record spans (implies POWERLIM_TRACE=1) and write a Chrome \
               trace-event JSON file loadable in chrome://tracing or \
               Perfetto.  Never changes stdout: traced and untraced runs \
               print byte-identical results.")

let stats_json_t =
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
         ~doc:"Write the unified counter registry (LP solver, artifact \
               caches, domain pool, tracer) as JSON when the command \
               finishes.")

(* The export runs from at_exit, not from a normal-return path, so the
   trace and stats survive diagnostic exits (a failed cap validation is
   exactly when you want them).  Status messages go to stderr: stdout
   stays byte-identical with tracing on or off. *)
let with_obs trace_out stats_json run =
  if trace_out <> None then Putil.Obs.set_enabled true;
  if trace_out <> None || stats_json <> None then
    at_exit (fun () ->
        Option.iter
          (fun path ->
            Putil.Obs.write_chrome_json path;
            Fmt.epr "wrote Chrome trace (%d events) to %s@."
              (Putil.Obs.event_count ()) path)
          trace_out;
        Option.iter
          (fun path ->
            Putil.Obs.write_stats_json path;
            Fmt.epr "wrote stats JSON to %s@." path)
          stats_json);
  run ()

(* Earliest sustained (>= 1 ms, matching Replay.validate's smoothing)
   interval of the replayed power trace above the validation limit. *)
let first_cap_violation (r : Simulate.Engine.result) ~limit =
  let n = Array.length r.Simulate.Engine.trace in
  let found = ref None in
  Array.iteri
    (fun i (t, p) ->
      let t' =
        if i + 1 < n then fst r.Simulate.Engine.trace.(i + 1)
        else r.Simulate.Engine.makespan
      in
      if !found = None && t' -. t >= 1e-3 && p > limit then
        found := Some (t, p))
    r.Simulate.Engine.trace;
  !found

let report_cap_violation (v : Core.Replay.validation) ~job_cap =
  (* mirror of Replay.validate's within_cap test (tol = 0.02) *)
  let limit = (job_cap *. 1.02) +. 1e-6 in
  (match first_cap_violation v.Core.Replay.result ~limit with
  | Some (t, p) ->
      Fmt.epr
        "error: replay exceeds the power cap: %.1f W at t=%.4f s, cap %.0f W \
         (+2%% tolerance = %.1f W), excess %.1f W@."
        p t job_cap limit (p -. limit)
  | None ->
      Fmt.epr
        "error: replay exceeds the power cap: max sustained power %.1f W > \
         %.0f W (+2%% tolerance)@."
        v.Core.Replay.max_power job_cap)

let setup app ranks iters seed =
  let params =
    { Workloads.Apps.nranks = ranks; iterations = iters; seed; scale = 1.0 }
  in
  let sc = Pipeline.Stages.scenario (Pipeline.Stages.Synthetic (app, params)) in
  (sc.Core.Scenario.graph, sc)

let bound_cmd =
  let run app ranks iters seed cap discrete trace_out stats_json =
    with_obs trace_out stats_json @@ fun () ->
    let g, sc = setup app ranks iters seed in
    let job_cap = cap *. Float.of_int ranks in
    Fmt.pr "%a@." Dag.Graph.pp_stats g;
    Fmt.pr "job power cap: %.0f W (%.0f W x %d sockets); minimum feasible: %.0f W@."
      job_cap cap ranks (Core.Scenario.min_job_power sc);
    let mode =
      if discrete then Core.Event_lp.Discrete_rounded else Core.Event_lp.Continuous
    in
    match Core.Event_lp.solve ~mode sc ~power_cap:job_cap with
    | Core.Event_lp.Schedule s ->
        Fmt.pr "LP bound: %.4f s (LP: %d rows, %d cols, %d simplex iterations)@."
          s.Core.Event_lp.objective s.Core.Event_lp.stats.Core.Event_lp.rows
          s.Core.Event_lp.stats.Core.Event_lp.cols
          s.Core.Event_lp.stats.Core.Event_lp.iterations;
        let v = Core.Replay.validate sc s ~power_cap:job_cap in
        Fmt.pr
          "replay: %.4f s (gap %.2f%%), max sustained power %.1f W, within \
           cap: %b@."
          v.Core.Replay.replay_makespan v.Core.Replay.gap_pct
          v.Core.Replay.max_power v.Core.Replay.within_cap;
        if not v.Core.Replay.within_cap then begin
          report_cap_violation v ~job_cap;
          exit 1
        end
    | Core.Event_lp.Infeasible ->
        Fmt.pr "infeasible: the cap cannot accommodate every task@."
    | Core.Event_lp.Solver_failure m -> Fmt.pr "solver failure: %s@." m
  in
  Cmd.v (Cmd.info "bound" ~doc:"Compute the LP performance bound and validate it by replay.")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t $ discrete_t
          $ trace_out_t $ stats_json_t)

let compare_cmd =
  let run app ranks iters seed cap =
    let g, sc = setup app ranks iters seed in
    ignore g;
    let job_cap = cap *. Float.of_int ranks in
    let st = Runtime.Static.run sc ~job_cap in
    let co = Runtime.Conductor.run sc ~job_cap in
    Fmt.pr "%-10s %10s %12s@." "method" "time (s)" "max power (W)";
    Fmt.pr "%-10s %10.4f %12.1f@." "static" st.Simulate.Engine.makespan
      st.Simulate.Engine.max_power;
    Fmt.pr "%-10s %10.4f %12.1f@." "conductor" co.Simulate.Engine.makespan
      co.Simulate.Engine.max_power;
    match Core.Event_lp.solve sc ~power_cap:job_cap with
    | Core.Event_lp.Schedule s ->
        let v = Core.Replay.validate sc s ~power_cap:job_cap in
        Fmt.pr "%-10s %10.4f %12.1f@." "lp-replay"
          v.Core.Replay.replay_makespan v.Core.Replay.max_power;
        Fmt.pr "LP improvement vs static: %.1f%%; vs conductor: %.1f%%@."
          (Simulate.Stats.improvement_pct ~base:st.Simulate.Engine.makespan
             ~t:v.Core.Replay.replay_makespan)
          (Simulate.Stats.improvement_pct ~base:co.Simulate.Engine.makespan
             ~t:v.Core.Replay.replay_makespan)
    | Core.Event_lp.Infeasible -> Fmt.pr "lp: infeasible@."
    | Core.Event_lp.Solver_failure m -> Fmt.pr "lp: %s@." m
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare Static, Conductor and the LP bound at one power cap.")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t)

let no_cache_t =
  Arg.(value & flag & info [ "no-cache" ]
         ~doc:"Disable the pipeline artifact cache (same as POWERLIM_CACHE=0); \
               every stage recomputes.  Output is byte-identical either way.")

let sweep_cmd =
  let run ranks iters seed no_cache trace_out stats_json =
    with_obs trace_out stats_json @@ fun () ->
    if no_cache then Putil.Cache.set_enabled false;
    let config =
      {
        Experiments.Common.default_config with
        Experiments.Common.nranks = ranks;
        iterations = iters;
        seed;
      }
    in
    (* pool size, wall time and cache traffic on stderr: stdout is
       byte-identical at every POWERLIM_JOBS setting, cache on or off *)
    Fmt.epr "pool: %d-way parallel (POWERLIM_JOBS=%s)@."
      (Putil.Pool.parallelism (Putil.Pool.get_default ()))
      (match Sys.getenv_opt "POWERLIM_JOBS" with Some s -> s | None -> "unset");
    let t0 = Unix.gettimeofday () in
    let sweep = Experiments.Sweeps.compute ~config () in
    Fmt.epr "[sweep: %.2f s | cache: %a]@."
      (Unix.gettimeofday () -. t0)
      Putil.Cache.pp_totals ();
    Experiments.Sweeps.fig9 sweep Fmt.stdout;
    Experiments.Sweeps.fig10 sweep Fmt.stdout;
    Experiments.Sweeps.summary sweep Fmt.stdout
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Run the full Static/Conductor/LP power sweep (figures 9-10).")
    Term.(const run $ ranks_t $ iters_t $ seed_t $ no_cache_t $ trace_out_t
          $ stats_json_t)

let frontier_cmd =
  let run app seed =
    let params = { Workloads.Apps.default_params with Workloads.Apps.seed } in
    let sc =
      Pipeline.Stages.scenario (Pipeline.Stages.Synthetic (app, params))
    in
    let g = sc.Core.Scenario.graph in
    (* largest task of rank 0 *)
    let best = ref None in
    Array.iteri
      (fun tid (t : Dag.Graph.task) ->
        if t.rank = 0 && Array.length sc.Core.Scenario.frontiers.(tid) > 0
        then
          match !best with
          | Some (_, w) when w >= t.profile.Machine.Profile.work -> ()
          | _ -> best := Some (tid, t.profile.Machine.Profile.work))
      g.Dag.Graph.tasks;
    match !best with
    | None -> Fmt.pr "no computation tasks@."
    | Some (tid, _) ->
        Fmt.pr "convex Pareto frontier of %s task %d (rank 0):@.%a@."
          (Workloads.Apps.app_name app) tid Pareto.Frontier.pp
          sc.Core.Scenario.frontiers.(tid)
  in
  Cmd.v (Cmd.info "frontier" ~doc:"Print the convex Pareto frontier of a representative task.")
    Term.(const run $ app_t $ seed_t)

let flow_cmd =
  let run cap =
    let g = Workloads.Apps.exchange ~rounds:2 () in
    let sc = Pipeline.Stages.scenario (Pipeline.Stages.Graph g) in
    (match Core.Event_lp.solve sc ~power_cap:cap with
    | Core.Event_lp.Schedule s ->
        Fmt.pr "fixed-vertex-order LP : %.4f s@." s.Core.Event_lp.objective
    | _ -> Fmt.pr "fixed-vertex-order LP : infeasible@.");
    match Core.Flow_ilp.solve sc ~power_cap:cap with
    | Core.Flow_ilp.Schedule s ->
        Fmt.pr "flow ILP              : %.4f s (%d binaries, %d nodes)@."
          s.Core.Flow_ilp.objective s.Core.Flow_ilp.stats.Core.Flow_ilp.binaries
          s.Core.Flow_ilp.stats.Core.Flow_ilp.nodes
    | Core.Flow_ilp.Infeasible -> Fmt.pr "flow ILP: infeasible@."
    | Core.Flow_ilp.Too_large n -> Fmt.pr "flow ILP: too large (%d tasks)@." n
    | Core.Flow_ilp.Solver_failure m -> Fmt.pr "flow ILP: %s@." m
  in
  let cap_t =
    Arg.(value & opt float 60.0 & info [ "cap" ] ~docv:"W"
           ~doc:"Total job power cap, watts.")
  in
  Cmd.v (Cmd.info "flow" ~doc:"Compare the flow ILP and the fixed-order LP on the 2-rank exchange.")
    Term.(const run $ cap_t)

let trace_cmd =
  let run app ranks iters seed out dot =
    let params =
      { Workloads.Apps.nranks = ranks; iterations = iters; seed; scale = 1.0 }
    in
    let g = Workloads.Apps.generate app params in
    (match out with
    | Some path ->
        Dag.Trace_io.to_file path g;
        Fmt.pr "wrote %a to %s@." Dag.Graph.pp_stats g path
    | None -> Dag.Trace_io.output stdout g);
    match dot with
    | Some path ->
        let ts = Dag.Schedule.unconstrained g in
        Dag.Dot.to_file ~times:ts path g;
        Fmt.pr "wrote Graphviz rendering to %s@." path
    | None -> ()
  in
  let out_t =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the trace to FILE (default: stdout).")
  in
  let dot_t =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Also write a Graphviz (DOT) rendering to FILE.")
  in
  Cmd.v (Cmd.info "trace" ~doc:"Generate a workload trace (and optionally a DOT rendering).")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ out_t $ dot_t)

let solve_trace_cmd =
  let run path cap trace_out stats_json =
    with_obs trace_out stats_json @@ fun () ->
    let sc = Pipeline.Stages.scenario (Pipeline.Stages.Trace_file path) in
    let g = sc.Core.Scenario.graph in
    let job_cap = cap *. Float.of_int g.Dag.Graph.nranks in
    Fmt.pr "%a@." Dag.Graph.pp_stats g;
    match Core.Event_lp.solve sc ~power_cap:job_cap with
    | Core.Event_lp.Schedule s ->
        let v = Core.Replay.validate sc s ~power_cap:job_cap in
        Fmt.pr "LP bound %.4f s; replay %.4f s; max power %.1f / %.0f W; \
                within cap: %b@."
          s.Core.Event_lp.objective v.Core.Replay.replay_makespan
          v.Core.Replay.max_power job_cap v.Core.Replay.within_cap
    | Core.Event_lp.Infeasible -> Fmt.pr "infeasible@."
    | Core.Event_lp.Solver_failure m -> Fmt.pr "solver failure: %s@." m
  in
  let path_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
           ~doc:"Trace file produced by the trace subcommand.")
  in
  Cmd.v
    (Cmd.info "solve-trace"
       ~doc:"Load a saved trace and compute its LP bound under a power cap.")
    Term.(const run $ path_t $ cap_t $ trace_out_t $ stats_json_t)

let export_cmd =
  let run app ranks iters seed cap mps_out trace_csv records_csv =
    let g, sc = setup app ranks iters seed in
    let job_cap = cap *. Float.of_int ranks in
    (match mps_out with
    | Some path ->
        let oc = open_out path in
        output_string oc (Core.Event_lp.to_mps sc ~power_cap:job_cap);
        close_out oc;
        Fmt.pr "wrote event LP (MPS) to %s@." path
    | None -> ());
    match (trace_csv, records_csv) with
    | None, None -> ()
    | _ -> (
        match Core.Event_lp.solve sc ~power_cap:job_cap with
        | Core.Event_lp.Schedule s ->
            let v = Core.Replay.validate sc s ~power_cap:job_cap in
            Option.iter
              (fun path ->
                Simulate.Csv.trace_to_file path v.Core.Replay.result;
                Fmt.pr "wrote job-power trace to %s@." path)
              trace_csv;
            Option.iter
              (fun path ->
                Simulate.Csv.records_to_file path g v.Core.Replay.result;
                Fmt.pr "wrote task records to %s@." path)
              records_csv
        | Core.Event_lp.Infeasible -> Fmt.pr "infeasible; no CSVs written@."
        | Core.Event_lp.Solver_failure m -> Fmt.pr "solver failure: %s@." m)
  in
  let mps_t =
    Arg.(value & opt (some string) None & info [ "mps" ] ~docv:"FILE"
           ~doc:"Write the event LP in MPS format to FILE.")
  in
  let trace_t =
    Arg.(value & opt (some string) None & info [ "trace-csv" ] ~docv:"FILE"
           ~doc:"Write the validated schedule's job-power trace as CSV.")
  in
  let records_t =
    Arg.(value & opt (some string) None & info [ "records-csv" ] ~docv:"FILE"
           ~doc:"Write the validated schedule's per-task records as CSV.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export the event LP (MPS) and/or schedule data (CSV) for external tools.")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t $ mps_t
          $ trace_t $ records_t)

(* ---- what-if: structural re-solve under domain edits --------------- *)

(* TID:POINT:DUR:POW, e.g. --perturb-task 17:2:0.034:91.5 *)
let perturb_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ tid; point; duration; power ] -> (
        try
          Ok
            (Core.Event_lp.Perturb_task
               {
                 tid = int_of_string (String.trim tid);
                 point = int_of_string (String.trim point);
                 duration = float_of_string (String.trim duration);
                 power = float_of_string (String.trim power);
               })
        with Failure _ -> Error (`Msg (Printf.sprintf "bad perturbation %S" s)))
    | _ ->
        Error
          (`Msg
             (Printf.sprintf "bad perturbation %S (expected TID:POINT:DUR:POW)" s))
  in
  Arg.conv (parse, Core.Event_lp.pp_domain_edit)

let what_if_cmd =
  let run app ranks iters seed cap fail_sockets drop_ranks perturbs trace_out
      stats_json =
    with_obs trace_out stats_json @@ fun () ->
    let _, sc = setup app ranks iters seed in
    let job_cap = cap *. Float.of_int ranks in
    let edits =
      List.map (fun r -> Core.Event_lp.Fail_socket r) fail_sockets
      @ List.map (fun r -> Core.Event_lp.Drop_rank r) drop_ranks
      @ perturbs
    in
    if edits = [] then begin
      Fmt.epr
        "what-if: no edits given (use --fail-socket, --drop-rank and/or \
         --perturb-task)@.";
      exit 2
    end;
    (* The prepared handle must keep the full column space
       (~presolve:false) so the base optimal basis can be mapped across
       the structural edits. *)
    let pz = Pipeline.Stages.prepare ~presolve:false sc ~power_cap:job_cap in
    let base, basis = Core.Event_lp.solve_prepared pz ~power_cap:job_cap in
    (match base with
    | Core.Event_lp.Schedule s ->
        Fmt.pr "baseline : %.4f s at %.0f W (%.0f W x %d sockets)@."
          s.Core.Event_lp.objective job_cap cap ranks
    | Core.Event_lp.Infeasible -> Fmt.pr "baseline : infeasible@."
    | Core.Event_lp.Solver_failure m -> Fmt.pr "baseline : solver failure: %s@." m);
    List.iter (fun e -> Fmt.pr "edit     : %a@." Core.Event_lp.pp_domain_edit e)
      edits;
    (* POWERLIM_WARM=0 forces the cold path; the incremental re-solve is
       exact (cold fallback on any ill-conditioned basis mapping), so
       stdout is byte-identical either way. *)
    let warm = if Experiments.Common.warm_default () then basis else None in
    match Core.Event_lp.edit_prepared ?warm pz edits with
    | Core.Event_lp.Schedule s, _, _ ->
        Fmt.pr "what-if  : %.4f s (LP: %d rows, %d cols)@."
          s.Core.Event_lp.objective s.Core.Event_lp.stats.Core.Event_lp.rows
          s.Core.Event_lp.stats.Core.Event_lp.cols;
        (* pivot counts differ between the incremental and cold paths;
           keep them off stdout so POWERLIM_WARM never changes output *)
        Fmt.epr "what-if: %d simplex iterations@."
          s.Core.Event_lp.stats.Core.Event_lp.iterations;
        (match base with
        | Core.Event_lp.Schedule b ->
            let d = s.Core.Event_lp.objective -. b.Core.Event_lp.objective in
            Fmt.pr "delta    : %+.4f s (%+.2f%%)@." d
              (100.0 *. d /. b.Core.Event_lp.objective)
        | _ -> ())
    | Core.Event_lp.Infeasible, _, _ ->
        Fmt.pr "what-if  : infeasible under the edited scenario@."
    | Core.Event_lp.Solver_failure m, _, _ ->
        Fmt.pr "what-if  : solver failure: %s@." m
  in
  let fail_socket_t =
    Arg.(value & opt_all int [] & info [ "fail-socket" ] ~docv:"RANK"
           ~doc:"Pin every task of RANK to its most frugal configuration \
                 (the socket loses its DVFS/thread headroom).  Repeatable.")
  in
  let drop_rank_t =
    Arg.(value & opt_all int [] & info [ "drop-rank" ] ~docv:"RANK"
           ~doc:"Remove RANK's tasks from the optimization entirely.  \
                 Repeatable.")
  in
  let perturb_t =
    Arg.(value & opt_all perturb_conv [] & info [ "perturb-task" ]
           ~docv:"TID:POINT:DUR:POW"
           ~doc:"Overwrite frontier point POINT of task TID with the given \
                 (duration, power) — e.g. a measured profile correction.  \
                 Repeatable.")
  in
  Cmd.v
    (Cmd.info "what-if"
       ~doc:"Re-solve the LP bound incrementally under structural edits \
             (socket failures, dropped ranks, profile perturbations).")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t
          $ fail_socket_t $ drop_rank_t $ perturb_t $ trace_out_t
          $ stats_json_t)

let energy_cmd =
  let run app ranks iters seed cap deadline trace_out stats_json =
    with_obs trace_out stats_json @@ fun () ->
    let config =
      {
        Experiments.Common.default_config with
        Experiments.Common.nranks = ranks;
        iterations = iters;
        seed;
      }
    in
    let s = Experiments.Common.make_setup config app in
    let sc = s.Experiments.Common.sc in
    let job_cap = cap *. Float.of_int ranks in
    match deadline with
    | Some deadline -> (
        match
          Core.Event_lp.solve
            ~objective:(Core.Objective.Energy_under_deadline { deadline })
            sc ~power_cap:job_cap
        with
        | Core.Event_lp.Schedule sched ->
            let v = Core.Replay.validate sc sched ~power_cap:job_cap in
            Fmt.pr
              "energy bound: %.1f J (makespan %.4f s under deadline %.4f s, \
               %.0f W/socket)@."
              sched.Core.Event_lp.objective sched.Core.Event_lp.makespan
              deadline cap;
            Fmt.pr
              "replay: %.1f J (gap %.2f%%), %.4f s, max sustained power %.1f \
               W, within cap: %b@."
              v.Core.Replay.replay_energy v.Core.Replay.obj_gap_pct
              v.Core.Replay.replay_makespan v.Core.Replay.max_power
              v.Core.Replay.within_cap;
            let rr = Core.Replay.reclaim sc sched in
            Fmt.pr "reclaim: %d tasks stretched, %.1f J shaved (%.2f%% of \
                    %.1f J)@."
              rr.Core.Replay.tasks_stretched rr.Core.Replay.reclaimed_j
              rr.Core.Replay.reclaimed_pct rr.Core.Replay.base_energy_j;
            if not v.Core.Replay.within_cap then begin
              report_cap_violation v ~job_cap;
              exit 1
            end
        | Core.Event_lp.Infeasible ->
            Fmt.pr "infeasible: no schedule meets %.4f s at %.0f W/socket@."
              deadline cap
        | Core.Event_lp.Solver_failure m -> Fmt.pr "solver failure: %s@." m)
    | None ->
        let es = Experiments.Common.run_deadline_sweep s ~cap in
        if Float.is_nan es.Experiments.Common.makespan_bound then
          Fmt.pr "cap infeasible: no schedule fits %.0f W/socket@." cap
        else begin
          Fmt.pr "%s at %.0f W/socket, deadlines as multiples of T*:@."
            (Workloads.Apps.app_name app) cap;
          Experiments.Energy.pp_sweep Fmt.stdout es
        end
  in
  let deadline_t =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S"
           ~doc:"Absolute deadline, seconds.  When omitted, sweep the \
                 energy objective over deadlines at multiples of the \
                 makespan bound T* and report replay plus slack \
                 reclamation for every point.")
  in
  Cmd.v
    (Cmd.info "energy"
       ~doc:"Minimize energy under a deadline (single deadline or a \
             deadline sweep), with replay validation and slack \
             reclamation.")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t $ deadline_t
          $ trace_out_t $ stats_json_t)

let gantt_cmd =
  let run app ranks iters seed cap method_ width =
    let g, sc = setup app ranks iters seed in
    let job_cap = cap *. Float.of_int ranks in
    let result =
      match method_ with
      | "static" -> Some (Runtime.Static.run sc ~job_cap)
      | "conductor" -> Some (Runtime.Conductor.run sc ~job_cap)
      | "redistrib" -> Some (Runtime.Redistrib.run sc ~job_cap)
      | "balancer" -> Some (Runtime.Balancer.run sc ~job_cap)
      | "adagio" -> Some (Runtime.Adagio.run sc)
      | "lp" -> (
          match Core.Event_lp.solve sc ~power_cap:job_cap with
          | Core.Event_lp.Schedule s ->
              Some (Core.Replay.validate sc s ~power_cap:job_cap).Core.Replay.result
          | _ ->
              Fmt.pr "lp: infeasible at this cap@.";
              None)
      | m ->
          Fmt.epr
            "unknown method %S (static|conductor|redistrib|balancer|adagio|lp)@."
            m;
          exit 2
    in
    match result with
    | Some r ->
        Fmt.pr "%s under %s at %.0f W/socket:@." (Workloads.Apps.app_name app)
          method_ cap;
        Simulate.Gantt.print ~width g r
    | None -> ()
  in
  let method_t =
    Arg.(value & opt string "lp" & info [ "method" ] ~docv:"M"
           ~doc:"Policy to render: static, conductor, redistrib, balancer, \
                 adagio or lp.")
  in
  let width_t =
    Arg.(value & opt int 100 & info [ "width" ] ~docv:"COLS"
           ~doc:"Chart width in characters.")
  in
  Cmd.v (Cmd.info "gantt" ~doc:"Render a policy's schedule as an ASCII Gantt chart.")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t $ method_t $ width_t)

let () =
  let doc = "Finding the limits of power-constrained application performance" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "powerlim" ~version:"1.0.0" ~doc)
          [
            bound_cmd; compare_cmd; sweep_cmd; energy_cmd; frontier_cmd;
            flow_cmd; trace_cmd; solve_trace_cmd; export_cmd; what_if_cmd;
            gantt_cmd;
          ]))
