(* powerlim: command-line driver for the power-constrained performance
   toolkit.

     powerlim bound  --app bt --cap 30            LP upper bound + validation
     powerlim compare --app lulesh --cap 50       Static / Conductor / LP
     powerlim sweep --ranks 32 --iters 20         the full figure sweep
     powerlim frontier --app comd                 task Pareto frontier
     powerlim flow --cap 60                       flow ILP vs fixed-order LP *)

open Cmdliner

let ranks_t =
  Arg.(value & opt int 16 & info [ "ranks" ] ~docv:"N" ~doc:"Number of MPI ranks (= sockets).")

let iters_t =
  Arg.(value & opt int 10 & info [ "iters" ] ~docv:"N" ~doc:"Application iterations.")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Workload random seed.")

let app_conv =
  Arg.conv
    ( (fun s ->
        try Ok (Workloads.Apps.app_of_name s)
        with Invalid_argument m -> Error (`Msg m)),
      fun ppf a -> Fmt.string ppf (Workloads.Apps.app_name a) )

let app_t =
  Arg.(value & opt app_conv Workloads.Apps.CoMD & info [ "app" ] ~docv:"APP"
         ~doc:"Benchmark: comd, lulesh, sp or bt.")

let cap_t =
  Arg.(value & opt float 40.0 & info [ "cap" ] ~docv:"W"
         ~doc:"Average power cap per processor socket, watts.")

let discrete_t =
  Arg.(value & flag & info [ "discrete" ]
         ~doc:"Round the LP schedule to single discrete configurations.")

(* ---- observability plumbing --------------------------------------- *)

let trace_out_t =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Record spans (implies POWERLIM_TRACE=1) and write a Chrome \
               trace-event JSON file loadable in chrome://tracing or \
               Perfetto.  Never changes stdout: traced and untraced runs \
               print byte-identical results.")

let stats_json_t =
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
         ~doc:"Write the unified counter registry (LP solver, artifact \
               caches, domain pool, tracer) as JSON when the command \
               finishes.")

(* The export runs from at_exit, not from a normal-return path, so the
   trace and stats survive diagnostic exits (a failed cap validation is
   exactly when you want them).  Status messages go to stderr: stdout
   stays byte-identical with tracing on or off. *)
let with_obs trace_out stats_json run =
  if trace_out <> None then Putil.Obs.set_enabled true;
  if trace_out <> None || stats_json <> None then
    at_exit (fun () ->
        Option.iter
          (fun path ->
            Putil.Obs.write_chrome_json path;
            Fmt.epr "wrote Chrome trace (%d events) to %s@."
              (Putil.Obs.event_count ()) path)
          trace_out;
        Option.iter
          (fun path ->
            Putil.Obs.write_stats_json path;
            Fmt.epr "wrote stats JSON to %s@." path)
          stats_json);
  run ()

let report_cap_violation v ~job_cap =
  Serve.Handlers.pp_cap_violation Fmt.stderr v ~job_cap

(* Shared renderers (Serve.Handlers) compute into strings so the daemon
   can serve the same bytes; the CLI prints them and exits with the
   handler's status. *)
let emit_outcome (o : Serve.Handlers.outcome) =
  print_string o.Serve.Handlers.out;
  prerr_string o.Serve.Handlers.err;
  flush stdout;
  flush stderr;
  if o.Serve.Handlers.status <> 0 then exit o.Serve.Handlers.status

let setup app ranks iters seed =
  let params =
    { Workloads.Apps.nranks = ranks; iterations = iters; seed; scale = 1.0 }
  in
  let sc = Pipeline.Stages.scenario (Pipeline.Stages.Synthetic (app, params)) in
  (sc.Core.Scenario.graph, sc)

let bound_cmd =
  let run app ranks iters seed cap discrete trace_out stats_json =
    with_obs trace_out stats_json @@ fun () ->
    let g, sc = setup app ranks iters seed in
    let job_cap = cap *. Float.of_int ranks in
    Fmt.pr "%a@." Dag.Graph.pp_stats g;
    Fmt.pr "job power cap: %.0f W (%.0f W x %d sockets); minimum feasible: %.0f W@."
      job_cap cap ranks (Core.Scenario.min_job_power sc);
    let mode =
      if discrete then Core.Event_lp.Discrete_rounded else Core.Event_lp.Continuous
    in
    match Core.Event_lp.solve ~mode sc ~power_cap:job_cap with
    | Core.Event_lp.Schedule s ->
        Fmt.pr "LP bound: %.4f s (LP: %d rows, %d cols, %d simplex iterations)@."
          s.Core.Event_lp.objective s.Core.Event_lp.stats.Core.Event_lp.rows
          s.Core.Event_lp.stats.Core.Event_lp.cols
          s.Core.Event_lp.stats.Core.Event_lp.iterations;
        let v = Core.Replay.validate sc s ~power_cap:job_cap in
        Fmt.pr
          "replay: %.4f s (gap %.2f%%), max sustained power %.1f W, within \
           cap: %b@."
          v.Core.Replay.replay_makespan v.Core.Replay.gap_pct
          v.Core.Replay.max_power v.Core.Replay.within_cap;
        if not v.Core.Replay.within_cap then begin
          report_cap_violation v ~job_cap;
          exit 1
        end
    | Core.Event_lp.Infeasible ->
        Fmt.pr "infeasible: the cap cannot accommodate every task@."
    | Core.Event_lp.Solver_failure m -> Fmt.pr "solver failure: %s@." m
  in
  Cmd.v (Cmd.info "bound" ~doc:"Compute the LP performance bound and validate it by replay.")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t $ discrete_t
          $ trace_out_t $ stats_json_t)

let compare_cmd =
  let run app ranks iters seed cap =
    let g, sc = setup app ranks iters seed in
    ignore g;
    let job_cap = cap *. Float.of_int ranks in
    let st = Runtime.Static.run sc ~job_cap in
    let co = Runtime.Conductor.run sc ~job_cap in
    Fmt.pr "%-10s %10s %12s@." "method" "time (s)" "max power (W)";
    Fmt.pr "%-10s %10.4f %12.1f@." "static" st.Simulate.Engine.makespan
      st.Simulate.Engine.max_power;
    Fmt.pr "%-10s %10.4f %12.1f@." "conductor" co.Simulate.Engine.makespan
      co.Simulate.Engine.max_power;
    match Core.Event_lp.solve sc ~power_cap:job_cap with
    | Core.Event_lp.Schedule s ->
        let v = Core.Replay.validate sc s ~power_cap:job_cap in
        Fmt.pr "%-10s %10.4f %12.1f@." "lp-replay"
          v.Core.Replay.replay_makespan v.Core.Replay.max_power;
        Fmt.pr "LP improvement vs static: %.1f%%; vs conductor: %.1f%%@."
          (Simulate.Stats.improvement_pct ~base:st.Simulate.Engine.makespan
             ~t:v.Core.Replay.replay_makespan)
          (Simulate.Stats.improvement_pct ~base:co.Simulate.Engine.makespan
             ~t:v.Core.Replay.replay_makespan)
    | Core.Event_lp.Infeasible -> Fmt.pr "lp: infeasible@."
    | Core.Event_lp.Solver_failure m -> Fmt.pr "lp: %s@." m
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare Static, Conductor and the LP bound at one power cap.")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t)

let no_cache_t =
  Arg.(value & flag & info [ "no-cache" ]
         ~doc:"Disable the pipeline artifact cache (same as POWERLIM_CACHE=0); \
               every stage recomputes.  Output is byte-identical either way.")

let sweep_cmd =
  let run ranks iters seed no_cache trace_out stats_json =
    with_obs trace_out stats_json @@ fun () ->
    if no_cache then Putil.Cache.set_enabled false;
    emit_outcome (Serve.Handlers.sweep ~ranks ~iters ~seed ())
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Run the full Static/Conductor/LP power sweep (figures 9-10).")
    Term.(const run $ ranks_t $ iters_t $ seed_t $ no_cache_t $ trace_out_t
          $ stats_json_t)

let frontier_cmd =
  let run app seed =
    let params = { Workloads.Apps.default_params with Workloads.Apps.seed } in
    let sc =
      Pipeline.Stages.scenario (Pipeline.Stages.Synthetic (app, params))
    in
    let g = sc.Core.Scenario.graph in
    (* largest task of rank 0 *)
    let best = ref None in
    Array.iteri
      (fun tid (t : Dag.Graph.task) ->
        if t.rank = 0 && Array.length sc.Core.Scenario.frontiers.(tid) > 0
        then
          match !best with
          | Some (_, w) when w >= t.profile.Machine.Profile.work -> ()
          | _ -> best := Some (tid, t.profile.Machine.Profile.work))
      g.Dag.Graph.tasks;
    match !best with
    | None -> Fmt.pr "no computation tasks@."
    | Some (tid, _) ->
        Fmt.pr "convex Pareto frontier of %s task %d (rank 0):@.%a@."
          (Workloads.Apps.app_name app) tid Pareto.Frontier.pp
          sc.Core.Scenario.frontiers.(tid)
  in
  Cmd.v (Cmd.info "frontier" ~doc:"Print the convex Pareto frontier of a representative task.")
    Term.(const run $ app_t $ seed_t)

let flow_cmd =
  let run cap =
    let g = Workloads.Apps.exchange ~rounds:2 () in
    let sc = Pipeline.Stages.scenario (Pipeline.Stages.Graph g) in
    (match Core.Event_lp.solve sc ~power_cap:cap with
    | Core.Event_lp.Schedule s ->
        Fmt.pr "fixed-vertex-order LP : %.4f s@." s.Core.Event_lp.objective
    | _ -> Fmt.pr "fixed-vertex-order LP : infeasible@.");
    match Core.Flow_ilp.solve sc ~power_cap:cap with
    | Core.Flow_ilp.Schedule s ->
        Fmt.pr "flow ILP              : %.4f s (%d binaries, %d nodes)@."
          s.Core.Flow_ilp.objective s.Core.Flow_ilp.stats.Core.Flow_ilp.binaries
          s.Core.Flow_ilp.stats.Core.Flow_ilp.nodes
    | Core.Flow_ilp.Infeasible -> Fmt.pr "flow ILP: infeasible@."
    | Core.Flow_ilp.Too_large n -> Fmt.pr "flow ILP: too large (%d tasks)@." n
    | Core.Flow_ilp.Solver_failure m -> Fmt.pr "flow ILP: %s@." m
  in
  let cap_t =
    Arg.(value & opt float 60.0 & info [ "cap" ] ~docv:"W"
           ~doc:"Total job power cap, watts.")
  in
  Cmd.v (Cmd.info "flow" ~doc:"Compare the flow ILP and the fixed-order LP on the 2-rank exchange.")
    Term.(const run $ cap_t)

let trace_cmd =
  let run app ranks iters seed out dot =
    let params =
      { Workloads.Apps.nranks = ranks; iterations = iters; seed; scale = 1.0 }
    in
    let g = Workloads.Apps.generate app params in
    (match out with
    | Some path ->
        Dag.Trace_io.to_file path g;
        Fmt.pr "wrote %a to %s@." Dag.Graph.pp_stats g path
    | None -> Dag.Trace_io.output stdout g);
    match dot with
    | Some path ->
        let ts = Dag.Schedule.unconstrained g in
        Dag.Dot.to_file ~times:ts path g;
        Fmt.pr "wrote Graphviz rendering to %s@." path
    | None -> ()
  in
  let out_t =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the trace to FILE (default: stdout).")
  in
  let dot_t =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Also write a Graphviz (DOT) rendering to FILE.")
  in
  Cmd.v (Cmd.info "trace" ~doc:"Generate a workload trace (and optionally a DOT rendering).")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ out_t $ dot_t)

let solve_trace_cmd =
  let run path cap trace_out stats_json =
    with_obs trace_out stats_json @@ fun () ->
    let sc = Pipeline.Stages.scenario (Pipeline.Stages.Trace_file path) in
    let g = sc.Core.Scenario.graph in
    let job_cap = cap *. Float.of_int g.Dag.Graph.nranks in
    Fmt.pr "%a@." Dag.Graph.pp_stats g;
    match Core.Event_lp.solve sc ~power_cap:job_cap with
    | Core.Event_lp.Schedule s ->
        let v = Core.Replay.validate sc s ~power_cap:job_cap in
        Fmt.pr "LP bound %.4f s; replay %.4f s; max power %.1f / %.0f W; \
                within cap: %b@."
          s.Core.Event_lp.objective v.Core.Replay.replay_makespan
          v.Core.Replay.max_power job_cap v.Core.Replay.within_cap
    | Core.Event_lp.Infeasible -> Fmt.pr "infeasible@."
    | Core.Event_lp.Solver_failure m -> Fmt.pr "solver failure: %s@." m
  in
  let path_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
           ~doc:"Trace file produced by the trace subcommand.")
  in
  Cmd.v
    (Cmd.info "solve-trace"
       ~doc:"Load a saved trace and compute its LP bound under a power cap.")
    Term.(const run $ path_t $ cap_t $ trace_out_t $ stats_json_t)

let export_cmd =
  let run app ranks iters seed cap mps_out trace_csv records_csv =
    let g, sc = setup app ranks iters seed in
    let job_cap = cap *. Float.of_int ranks in
    (match mps_out with
    | Some path ->
        Putil.Fileio.write path (Core.Event_lp.to_mps sc ~power_cap:job_cap);
        Fmt.pr "wrote event LP (MPS) to %s@." path
    | None -> ());
    match (trace_csv, records_csv) with
    | None, None -> ()
    | _ -> (
        match Core.Event_lp.solve sc ~power_cap:job_cap with
        | Core.Event_lp.Schedule s ->
            let v = Core.Replay.validate sc s ~power_cap:job_cap in
            Option.iter
              (fun path ->
                Simulate.Csv.trace_to_file path v.Core.Replay.result;
                Fmt.pr "wrote job-power trace to %s@." path)
              trace_csv;
            Option.iter
              (fun path ->
                Simulate.Csv.records_to_file path g v.Core.Replay.result;
                Fmt.pr "wrote task records to %s@." path)
              records_csv
        | Core.Event_lp.Infeasible -> Fmt.pr "infeasible; no CSVs written@."
        | Core.Event_lp.Solver_failure m -> Fmt.pr "solver failure: %s@." m)
  in
  let mps_t =
    Arg.(value & opt (some string) None & info [ "mps" ] ~docv:"FILE"
           ~doc:"Write the event LP in MPS format to FILE.")
  in
  let trace_t =
    Arg.(value & opt (some string) None & info [ "trace-csv" ] ~docv:"FILE"
           ~doc:"Write the validated schedule's job-power trace as CSV.")
  in
  let records_t =
    Arg.(value & opt (some string) None & info [ "records-csv" ] ~docv:"FILE"
           ~doc:"Write the validated schedule's per-task records as CSV.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export the event LP (MPS) and/or schedule data (CSV) for external tools.")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t $ mps_t
          $ trace_t $ records_t)

(* ---- what-if: structural re-solve under domain edits --------------- *)

(* TID:POINT:DUR:POW, e.g. --perturb-task 17:2:0.034:91.5 *)
let perturb_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ tid; point; duration; power ] -> (
        try
          Ok
            (Core.Event_lp.Perturb_task
               {
                 tid = int_of_string (String.trim tid);
                 point = int_of_string (String.trim point);
                 duration = float_of_string (String.trim duration);
                 power = float_of_string (String.trim power);
               })
        with Failure _ -> Error (`Msg (Printf.sprintf "bad perturbation %S" s)))
    | _ ->
        Error
          (`Msg
             (Printf.sprintf "bad perturbation %S (expected TID:POINT:DUR:POW)" s))
  in
  Arg.conv (parse, Core.Event_lp.pp_domain_edit)

let what_if_cmd =
  let run app ranks iters seed cap fail_sockets drop_ranks perturbs trace_out
      stats_json =
    with_obs trace_out stats_json @@ fun () ->
    let edits =
      List.map (fun r -> Core.Event_lp.Fail_socket r) fail_sockets
      @ List.map (fun r -> Core.Event_lp.Drop_rank r) drop_ranks
      @ perturbs
    in
    emit_outcome
      (Serve.Handlers.what_if ~app ~ranks ~iters ~seed ~cap ~edits ())
  in
  let fail_socket_t =
    Arg.(value & opt_all int [] & info [ "fail-socket" ] ~docv:"RANK"
           ~doc:"Pin every task of RANK to its most frugal configuration \
                 (the socket loses its DVFS/thread headroom).  Repeatable.")
  in
  let drop_rank_t =
    Arg.(value & opt_all int [] & info [ "drop-rank" ] ~docv:"RANK"
           ~doc:"Remove RANK's tasks from the optimization entirely.  \
                 Repeatable.")
  in
  let perturb_t =
    Arg.(value & opt_all perturb_conv [] & info [ "perturb-task" ]
           ~docv:"TID:POINT:DUR:POW"
           ~doc:"Overwrite frontier point POINT of task TID with the given \
                 (duration, power) — e.g. a measured profile correction.  \
                 Repeatable.")
  in
  Cmd.v
    (Cmd.info "what-if"
       ~doc:"Re-solve the LP bound incrementally under structural edits \
             (socket failures, dropped ranks, profile perturbations).")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t
          $ fail_socket_t $ drop_rank_t $ perturb_t $ trace_out_t
          $ stats_json_t)

let energy_cmd =
  let run app ranks iters seed cap deadline trace_out stats_json =
    with_obs trace_out stats_json @@ fun () ->
    emit_outcome
      (Serve.Handlers.energy ~app ~ranks ~iters ~seed ~cap ~deadline ())
  in
  let deadline_t =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S"
           ~doc:"Absolute deadline, seconds.  When omitted, sweep the \
                 energy objective over deadlines at multiples of the \
                 makespan bound T* and report replay plus slack \
                 reclamation for every point.")
  in
  Cmd.v
    (Cmd.info "energy"
       ~doc:"Minimize energy under a deadline (single deadline or a \
             deadline sweep), with replay validation and slack \
             reclamation.")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t $ deadline_t
          $ trace_out_t $ stats_json_t)

let gantt_cmd =
  let run app ranks iters seed cap method_ width =
    let g, sc = setup app ranks iters seed in
    let job_cap = cap *. Float.of_int ranks in
    let result =
      match method_ with
      | "static" -> Some (Runtime.Static.run sc ~job_cap)
      | "conductor" -> Some (Runtime.Conductor.run sc ~job_cap)
      | "redistrib" -> Some (Runtime.Redistrib.run sc ~job_cap)
      | "balancer" -> Some (Runtime.Balancer.run sc ~job_cap)
      | "adagio" -> Some (Runtime.Adagio.run sc)
      | "lp" -> (
          match Core.Event_lp.solve sc ~power_cap:job_cap with
          | Core.Event_lp.Schedule s ->
              Some (Core.Replay.validate sc s ~power_cap:job_cap).Core.Replay.result
          | _ ->
              Fmt.pr "lp: infeasible at this cap@.";
              None)
      | m ->
          Fmt.epr
            "unknown method %S (static|conductor|redistrib|balancer|adagio|lp)@."
            m;
          exit 2
    in
    match result with
    | Some r ->
        Fmt.pr "%s under %s at %.0f W/socket:@." (Workloads.Apps.app_name app)
          method_ cap;
        Simulate.Gantt.print ~width g r
    | None -> ()
  in
  let method_t =
    Arg.(value & opt string "lp" & info [ "method" ] ~docv:"M"
           ~doc:"Policy to render: static, conductor, redistrib, balancer, \
                 adagio or lp.")
  in
  let width_t =
    Arg.(value & opt int 100 & info [ "width" ] ~docv:"COLS"
           ~doc:"Chart width in characters.")
  in
  Cmd.v (Cmd.info "gantt" ~doc:"Render a policy's schedule as an ASCII Gantt chart.")
    Term.(const run $ app_t $ ranks_t $ iters_t $ seed_t $ cap_t $ method_t $ width_t)

(* ---- serve: the persistent solving daemon -------------------------- *)

let socket_t =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Listen on (or connect to) a Unix domain socket at PATH.")

let port_t =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
         ~doc:"Listen on (or connect to) TCP PORT instead of a Unix \
               socket.  0 picks a free port (printed on stderr).")

let host_t =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
         ~doc:"Host to bind or connect to with --port.")

let address_of socket port host =
  match (socket, port) with
  | Some path, None -> Ok (Serve.Daemon.Unix_socket path)
  | None, Some port -> Ok (Serve.Daemon.Tcp (host, port))
  | None, None -> Error "one of --socket or --port is required"
  | Some _, Some _ -> Error "--socket and --port are mutually exclusive"

let serve_cmd =
  let run socket port host store store_limit_mb cache_capacity =
    match address_of socket port host with
    | Error m ->
        Fmt.epr "serve: %s@." m;
        exit 2
    | Ok address ->
        let cfg =
          {
            Serve.Daemon.address;
            store_root = store;
            store_limit_bytes = store_limit_mb * 1024 * 1024;
            cache_capacity;
            pool = None;
          }
        in
        let d = Serve.Daemon.start cfg in
        Fmt.epr "powerlim serve: listening on %a (pool %d-way%s)@."
          Serve.Daemon.pp_address (Serve.Daemon.address d)
          (Putil.Pool.parallelism (Putil.Pool.get_default ()))
          (match store with
          | Some root -> Printf.sprintf ", store %s" root
          | None -> ", no store");
        Serve.Daemon.wait d
  in
  let store_t =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
           ~doc:"Persist responses (and pipeline graphs) in a \
                 content-addressed artifact store under DIR; a restarted \
                 daemon answers repeated requests from it.")
  in
  let store_limit_t =
    Arg.(value & opt int 0 & info [ "store-limit-mb" ] ~docv:"MB"
           ~doc:"Evict least-recently-used artifacts beyond MB megabytes \
                 (0 = unbounded).")
  in
  let cache_capacity_t =
    Arg.(value & opt int 64 & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"In-memory response cache entries (evictions spill to the \
                 store).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent solving daemon: newline-delimited JSON \
             requests (sweep, energy, what-if, stats, shutdown) over a \
             Unix or TCP socket, answered from a two-tier response cache \
             backed by a crash-safe on-disk artifact store.")
    Term.(const run $ socket_t $ port_t $ host_t $ store_t $ store_limit_t
          $ cache_capacity_t)

let request_cmd =
  let run socket port host raw reqs =
    match address_of socket port host with
    | Error m ->
        Fmt.epr "request: %s@." m;
        exit 2
    | Ok address ->
        let reqs =
          if reqs <> [] then reqs
          else begin
            (* no positional requests: read one JSON object per stdin line *)
            let lines = ref [] in
            (try
               while true do
                 lines := input_line stdin :: !lines
               done
             with End_of_file -> ());
            List.rev !lines
          end
        in
        let c = Serve.Client.connect_retry address in
        let status = ref 0 in
        List.iter
          (fun line ->
            match Serve.Json.of_string line with
            | exception Serve.Json.Error m ->
                Fmt.epr "request: bad JSON %S: %s@." line m;
                exit 2
            | j -> (
                let resp = Serve.Client.request c j in
                if raw then print_endline (Serve.Json.to_string resp)
                else
                  match Serve.Json.get_string "output" resp with
                  | Some out ->
                      (* transparent proxy of the CLI: same stdout, same
                         stderr, same exit status as the offline command *)
                      print_string out;
                      Option.iter prerr_string
                        (Serve.Json.get_string "err" resp);
                      Option.iter
                        (fun s -> if s <> 0 && !status = 0 then status := s)
                        (Serve.Json.get_int "status" resp)
                  | None -> print_endline (Serve.Json.to_string resp)))
          reqs;
        Serve.Client.close c;
        flush stdout;
        flush stderr;
        if !status <> 0 then exit !status
  in
  let raw_t =
    Arg.(value & flag & info [ "raw" ]
           ~doc:"Print raw JSON response lines instead of unpacking \
                 output/err/status.")
  in
  let reqs_t =
    Arg.(value & pos_all string [] & info [] ~docv:"JSON"
           ~doc:"Request objects, e.g. '{\"op\":\"sweep\",\"ranks\":8}'.  \
                 With none given, requests are read from stdin, one per \
                 line.")
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send requests to a running powerlim serve daemon and print \
             the responses (by default exactly as the offline CLI would: \
             response output to stdout, err to stderr, exit status \
             propagated).")
    Term.(const run $ socket_t $ port_t $ host_t $ raw_t $ reqs_t)

let () =
  let doc = "Finding the limits of power-constrained application performance" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "powerlim" ~version:"1.0.0" ~doc)
          [
            bound_cmd; compare_cmd; sweep_cmd; energy_cmd; frontier_cmd;
            flow_cmd; trace_cmd; solve_trace_cmd; export_cmd; what_if_cmd;
            gantt_cmd; serve_cmd; request_cmd;
          ]))
