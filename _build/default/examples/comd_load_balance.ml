(* CoMD load-balance study: how the LP shifts watts between sockets to
   erase load imbalance under a tight job power cap — the effect behind
   the paper's Figure 12.

     dune exec examples/comd_load_balance.exe *)

let () =
  let nranks = 8 in
  let g =
    Workloads.Apps.comd
      { Workloads.Apps.default_params with nranks; iterations = 5 }
  in
  let sc = Core.Scenario.make g in
  let cap = 30.0 in
  let job_cap = cap *. Float.of_int nranks in

  (* Per-rank work (the imbalance the generators bake in). *)
  let work = Array.make nranks 0.0 in
  Array.iter
    (fun (t : Dag.Graph.task) ->
      work.(t.rank) <- work.(t.rank) +. t.profile.Machine.Profile.work)
    g.Dag.Graph.tasks;
  Fmt.pr "per-rank work (s at 1 thread, max freq):@.";
  Array.iteri (fun r w -> Fmt.pr "  rank %d: %6.2f@." r w) work;

  match Core.Event_lp.solve sc ~power_cap:job_cap with
  | Core.Event_lp.Schedule s ->
      (* Average LP power per rank over iteration 2. *)
      let pow = Array.make nranks 0.0 and cnt = Array.make nranks 0 in
      Array.iteri
        (fun tid blend ->
          let t = g.Dag.Graph.tasks.(tid) in
          if t.Dag.Graph.iteration = 2 && blend <> [] then begin
            pow.(t.rank) <- pow.(t.rank) +. Pareto.Frontier.blend_power blend;
            cnt.(t.rank) <- cnt.(t.rank) + 1
          end)
        s.Core.Event_lp.blends;
      Fmt.pr
        "@.LP power allocation at a %.0f W job cap (uniform would be %.1f \
         W/socket):@."
        job_cap cap;
      Array.iteri
        (fun r p ->
          let avg = if cnt.(r) > 0 then p /. Float.of_int cnt.(r) else 0.0 in
          Fmt.pr "  rank %d: %5.1f W  %s@." r avg
            (String.make (int_of_float (avg -. 20.0)) '#'))
        pow;
      let st = Runtime.Static.run sc ~job_cap in
      let v = Core.Replay.validate sc s ~power_cap:job_cap in
      Fmt.pr "@.Static %.3f s -> LP %.3f s (%.1f%% faster), both under %.0f W@."
        st.Simulate.Engine.makespan v.Core.Replay.replay_makespan
        (Simulate.Stats.improvement_pct ~base:st.Simulate.Engine.makespan
           ~t:v.Core.Replay.replay_makespan)
        job_cap
  | Core.Event_lp.Infeasible -> Fmt.pr "infeasible at %.0f W@." job_cap
  | Core.Event_lp.Solver_failure m -> Fmt.pr "solver failure: %s@." m
