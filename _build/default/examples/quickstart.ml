(* Quickstart: build a tiny MPI+OpenMP application graph by hand, ask the
   LP for the best achievable time under a job power cap, and validate
   the schedule by replaying it on the simulated cluster.

     dune exec examples/quickstart.exe *)

let () =
  (* A 4-rank application: each rank computes, everyone reduces, each
     rank computes again, everyone reduces again. *)
  let nranks = 4 in
  let b = Dag.Graph.Builder.create ~nranks in
  for iteration = 0 to 1 do
    for rank = 0 to nranks - 1 do
      (* rank 3 has 30% more work: a load imbalance the LP can attack *)
      let work = if rank = 3 then 2.6 else 2.0 in
      Dag.Graph.Builder.compute b ~rank ~iteration ~label:"solve"
        (Machine.Profile.v ~serial_frac:0.05 ~contention:0.01 ~mem_bound:0.2
           work)
    done;
    ignore (Dag.Graph.Builder.collective b ~name:"allreduce" ~pcontrol:true ())
  done;
  ignore (Dag.Graph.Builder.finalize b);
  let g = Dag.Graph.Builder.build b in
  Fmt.pr "application: %a@." Dag.Graph.pp_stats g;

  (* Attach simulated sockets and per-task configuration frontiers. *)
  let sc = Core.Scenario.make g in
  Fmt.pr "minimum feasible job power: %.0f W@." (Core.Scenario.min_job_power sc);

  (* Uniform static allocation at 35 W per socket... *)
  let job_cap = 35.0 *. Float.of_int nranks in
  let static = Runtime.Static.run sc ~job_cap in
  Fmt.pr "Static (uniform %g W/socket): %.3f s@." (job_cap /. 4.0)
    static.Simulate.Engine.makespan;

  (* ...versus the LP's theoretical optimum under the same job cap. *)
  match Core.Event_lp.solve sc ~power_cap:job_cap with
  | Core.Event_lp.Schedule s ->
      Fmt.pr "LP bound: %.3f s (%.1f%% faster than Static is possible)@."
        s.Core.Event_lp.objective
        (Simulate.Stats.improvement_pct
           ~base:static.Simulate.Engine.makespan
           ~t:s.Core.Event_lp.objective);
      (* The schedule tells each task which configuration to run. *)
      Array.iteri
        (fun tid blend ->
          match blend with
          | (pt, _) :: _ when g.Dag.Graph.tasks.(tid).Dag.Graph.iteration = 0
            ->
              Fmt.pr "  task %d (rank %d): %a  avg %.1f W@." tid
                g.Dag.Graph.tasks.(tid).Dag.Graph.rank Pareto.Point.pp pt
                (Pareto.Frontier.blend_power blend)
          | _ -> ())
        s.Core.Event_lp.blends;
      (* Validate: replay the schedule and check the power trace. *)
      let v = Core.Replay.validate sc s ~power_cap:job_cap in
      Fmt.pr
        "replayed: %.3f s, max sustained power %.1f W of %.0f W cap, within \
         cap: %b@."
        v.Core.Replay.replay_makespan v.Core.Replay.max_power job_cap
        v.Core.Replay.within_cap;
      Fmt.pr "@.LP schedule as a Gantt chart:@.";
      Simulate.Gantt.print ~width:64 g v.Core.Replay.result
  | Core.Event_lp.Infeasible -> Fmt.pr "infeasible at this cap@."
  | Core.Event_lp.Solver_failure m -> Fmt.pr "solver failure: %s@." m
