examples/flow_vs_fixed.mli:
