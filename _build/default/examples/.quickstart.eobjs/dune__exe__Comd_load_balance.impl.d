examples/comd_load_balance.ml: Array Core Dag Float Fmt Machine Pareto Runtime Simulate String Workloads
