examples/power_bottlenecks.mli:
