examples/lulesh_thread_tuning.ml: Fmt List Machine Pareto Simulate
