examples/flow_vs_fixed.ml: Array Core Dag Fmt List Workloads
