examples/quickstart.mli:
