examples/power_bottlenecks.ml: Array Core Dag Float Fmt List Workloads
