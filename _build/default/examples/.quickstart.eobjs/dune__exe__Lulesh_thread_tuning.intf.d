examples/lulesh_thread_tuning.mli:
