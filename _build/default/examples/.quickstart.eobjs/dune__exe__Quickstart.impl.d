examples/quickstart.ml: Array Core Dag Float Fmt Machine Pareto Runtime Simulate
