examples/comd_load_balance.mli:
