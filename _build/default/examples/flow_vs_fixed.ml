(* Flow ILP vs fixed-vertex-order LP on the paper's two-rank message
   exchange (Figure 2 / Figure 8): the ILP lets the solver choose the
   event order; the LP freezes it.  On small instances they agree almost
   everywhere — the evidence that the cheap LP is a trustworthy bound.

     dune exec examples/flow_vs_fixed.exe *)

let () =
  let g = Workloads.Apps.exchange ~rounds:1 () in
  let sc = Core.Scenario.make g in
  Fmt.pr "%a@." Dag.Graph.pp_stats g;
  Fmt.pr "vertices:@.";
  Array.iter
    (fun (v : Dag.Graph.vertex) ->
      Fmt.pr "  v%d %a (ranks %a)@." v.vid Dag.Graph.pp_vkind v.kind
        Fmt.(list ~sep:comma int)
        v.ranks)
    g.Dag.Graph.vertices;
  Fmt.pr "@.%-12s %-14s %-14s %s@." "job cap (W)" "fixed-order" "flow ILP"
    "B&B nodes";
  List.iter
    (fun cap ->
      let fixed =
        match Core.Event_lp.solve sc ~power_cap:cap with
        | Core.Event_lp.Schedule s -> Fmt.str "%.4f s" s.Core.Event_lp.objective
        | Core.Event_lp.Infeasible -> "infeasible"
        | Core.Event_lp.Solver_failure m -> m
      in
      match Core.Flow_ilp.solve sc ~power_cap:cap with
      | Core.Flow_ilp.Schedule s ->
          Fmt.pr "%-12.0f %-14s %.4f s     %d@." cap fixed
            s.Core.Flow_ilp.objective s.Core.Flow_ilp.stats.Core.Flow_ilp.nodes
      | Core.Flow_ilp.Infeasible -> Fmt.pr "%-12.0f %-14s infeasible@." cap fixed
      | Core.Flow_ilp.Too_large n ->
          Fmt.pr "%-12.0f %-14s too large (%d)@." cap fixed n
      | Core.Flow_ilp.Solver_failure m -> Fmt.pr "%-12.0f %-14s %s@." cap fixed m)
    [ 42.0; 50.0; 60.0; 80.0; 120.0 ]
