(* LULESH thread tuning: why a power cap changes the best OpenMP thread
   count.  RAPL-style capping is stuck at 8 threads and can only lower
   the frequency; the LP (and Conductor) instead drop to 4-5 threads at a
   higher clock — the effect behind the paper's Table 3.

     dune exec examples/lulesh_thread_tuning.exe *)

let () =
  let socket = Machine.Socket.nominal 0 in
  let stress =
    Machine.Profile.v ~serial_frac:0.02 ~contention:0.04 ~mem_bound:0.3 7.8
  in
  Fmt.pr "LULESH stress task: %a@." Machine.Profile.pp stress;
  Fmt.pr "unconstrained best thread count: %d of 8@."
    (Machine.Profile.best_threads stress ~max_threads:8);

  let frontier = Pareto.Frontier.convex socket stress in
  Fmt.pr "@.convex Pareto frontier:@.%a@." Pareto.Frontier.pp frontier;

  Fmt.pr "@.best configuration under a per-socket power budget:@.";
  Fmt.pr "%-8s %-22s %-12s %-14s@." "cap(W)" "frontier choice"
    "RAPL (8thr)" "advantage";
  List.iter
    (fun cap ->
      match Pareto.Frontier.best_under_power frontier ~budget:cap with
      | None -> Fmt.pr "%-8.0f (infeasible)@." cap
      | Some pick ->
          let op =
            Machine.Rapl.operating_point socket ~cap ~threads:8
              ~mem_bound:stress.Machine.Profile.mem_bound
          in
          let rapl_time = Machine.Rapl.duration stress op ~threads:8 in
          Fmt.pr "%-8.0f %dthr x %.1f GHz %6.3fs   %6.3fs      %+5.1f%%@." cap
            pick.Pareto.Point.threads pick.Pareto.Point.freq
            pick.Pareto.Point.duration rapl_time
            (Simulate.Stats.improvement_pct ~base:rapl_time
               ~t:pick.Pareto.Point.duration))
    [ 30.0; 40.0; 50.0; 60.0; 70.0; 80.0 ]
