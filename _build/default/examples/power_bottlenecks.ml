(* Power bottleneck analysis: the LP's dual variables on the power rows
   (equation (11)) are shadow prices — seconds of makespan bought per
   extra watt of budget at each moment of the run.  They answer the
   operator question "if I could give this job a few more watts, when
   would they matter?".

     dune exec examples/power_bottlenecks.exe *)

let () =
  let nranks = 8 in
  let g =
    Workloads.Apps.bt
      { Workloads.Apps.default_params with nranks; iterations = 5 }
  in
  let sc = Core.Scenario.make g in
  List.iter
    (fun cap ->
      let job_cap = cap *. Float.of_int nranks in
      match Core.Event_lp.solve sc ~power_cap:job_cap with
      | Core.Event_lp.Schedule s ->
          let binding =
            Array.to_list s.Core.Event_lp.power_duals
            |> List.filter (fun (_, d) -> d > 1e-9)
          in
          let total =
            List.fold_left (fun acc (_, d) -> acc +. d) 0.0 binding
          in
          Fmt.pr
            "@.BT at %.0f W/socket: makespan bound %.3f s; %d of %d power \
             events binding@."
            cap s.Core.Event_lp.objective (List.length binding)
            (Array.length s.Core.Event_lp.power_duals);
          Fmt.pr
            "  one more watt of job budget buys %.4f s (%.2f%% of the run)@."
            total
            (100.0 *. total /. s.Core.Event_lp.objective);
          List.iter
            (fun (vtx, d) ->
              Fmt.pr "  t=%7.3f s  %a: %.4f s/W@."
                s.Core.Event_lp.vertex_time.(vtx)
                Dag.Graph.pp_vkind
                g.Dag.Graph.vertices.(vtx).Dag.Graph.kind d)
            (List.filteri (fun i _ -> i < 6)
               (List.sort (fun (_, a) (_, b) -> compare b a) binding))
      | Core.Event_lp.Infeasible ->
          Fmt.pr "@.BT at %.0f W/socket: infeasible@." cap
      | Core.Event_lp.Solver_failure m -> Fmt.pr "@.%s@." m)
    [ 30.0; 45.0; 70.0 ]
