(* Tests for the online power-allocation policies: power-cap safety,
   thread behaviour (RAPL cannot change concurrency), and the relative
   performance ordering the paper reports. *)

let make app ~nranks ~iterations =
  let g =
    Workloads.Apps.generate app
      { Workloads.Apps.default_params with nranks; iterations }
  in
  (g, Core.Scenario.make g)

let test_static_respects_cap () =
  List.iter
    (fun app ->
      let _, sc = make app ~nranks:4 ~iterations:3 in
      List.iter
        (fun cap_per ->
          let cap = cap_per *. 4.0 in
          let r = Runtime.Static.run sc ~job_cap:cap in
          let mx = Simulate.Engine.sustained_max_power ~ignore_below:1e-3 r in
          if mx > cap +. 1e-6 then
            Alcotest.failf "%s at %g: static power %.1f over %.1f"
              (Workloads.Apps.app_name app) cap_per mx cap)
        [ 30.0; 45.0; 60.0; 80.0 ])
    Workloads.Apps.all_apps

let test_static_always_eight_threads () =
  let _, sc = make Workloads.Apps.LULESH ~nranks:4 ~iterations:2 in
  let r = Runtime.Static.run sc ~job_cap:160.0 in
  Array.iter
    (fun (rc : Simulate.Engine.task_record) ->
      if rc.duration > 0.0 then
        Alcotest.(check int) "RAPL cannot drop threads" 8
          rc.point.Pareto.Point.threads)
    r.Simulate.Engine.records

let test_static_monotone_in_cap () =
  let _, sc = make Workloads.Apps.CoMD ~nranks:4 ~iterations:3 in
  let t cap = (Runtime.Static.run sc ~job_cap:cap).Simulate.Engine.makespan in
  Alcotest.(check bool) "more power never slower" true
    (t 120.0 >= t 160.0 -. 1e-9 && t 160.0 >= t 240.0 -. 1e-9)

let test_conductor_respects_cap () =
  List.iter
    (fun app ->
      let _, sc = make app ~nranks:4 ~iterations:5 in
      List.iter
        (fun cap_per ->
          let cap = cap_per *. 4.0 in
          let r = Runtime.Conductor.run sc ~job_cap:cap in
          let mx = Simulate.Engine.sustained_max_power ~ignore_below:1e-3 r in
          (* 2% tolerance mirrors RAPL's averaging window *)
          if mx > cap *. 1.02 +. 1e-6 then
            Alcotest.failf "%s at %g: conductor power %.1f over %.1f"
              (Workloads.Apps.app_name app) cap_per mx cap)
        [ 30.0; 45.0; 60.0 ])
    Workloads.Apps.all_apps

let test_conductor_beats_static_on_imbalance () =
  (* BT's zonal imbalance is Conductor's bread and butter *)
  let _, sc = make Workloads.Apps.BT ~nranks:8 ~iterations:8 in
  let cap = 35.0 *. 8.0 in
  let st = Runtime.Static.run sc ~job_cap:cap in
  let co = Runtime.Conductor.run sc ~job_cap:cap in
  Alcotest.(check bool) "conductor faster on BT" true
    (co.Simulate.Engine.makespan < st.Simulate.Engine.makespan)

let test_conductor_near_static_on_balanced () =
  (* on balanced SP Conductor may lose, but only slightly (paper: worst
     2.6% slower) *)
  let _, sc = make Workloads.Apps.SP ~nranks:8 ~iterations:8 in
  let cap = 50.0 *. 8.0 in
  let st = Runtime.Static.run sc ~job_cap:cap in
  let co = Runtime.Conductor.run sc ~job_cap:cap in
  let rel =
    (co.Simulate.Engine.makespan -. st.Simulate.Engine.makespan)
    /. st.Simulate.Engine.makespan
  in
  Alcotest.(check bool) "within -2%..+8% of static" true
    (rel > -0.02 && rel < 0.08)

let test_conductor_lp_is_still_bound () =
  let _, sc = make Workloads.Apps.LULESH ~nranks:4 ~iterations:4 in
  let cap = 45.0 *. 4.0 in
  match Core.Event_lp.solve sc ~power_cap:cap with
  | Core.Event_lp.Schedule s ->
      let co = Runtime.Conductor.run sc ~job_cap:cap in
      Alcotest.(check bool) "lp lower-bounds conductor" true
        (s.Core.Event_lp.objective <= co.Simulate.Engine.makespan +. 1e-6)
  | _ -> Alcotest.fail "lp should be feasible"

let test_conductor_deterministic () =
  let _, sc = make Workloads.Apps.CoMD ~nranks:4 ~iterations:4 in
  let r1 = Runtime.Conductor.run sc ~job_cap:140.0 in
  let r2 = Runtime.Conductor.run sc ~job_cap:140.0 in
  Alcotest.(check (float 0.0)) "same makespan" r1.Simulate.Engine.makespan
    r2.Simulate.Engine.makespan


let test_balancer_respects_cap_and_bound () =
  List.iter
    (fun app ->
      let _, sc = make app ~nranks:4 ~iterations:5 in
      let cap = 40.0 *. 4.0 in
      let r = Runtime.Balancer.run sc ~job_cap:cap in
      let mx = Simulate.Engine.sustained_max_power ~ignore_below:1e-3 r in
      if mx > cap *. 1.02 +. 1e-6 then
        Alcotest.failf "%s: balancer power %.1f over %.1f"
          (Workloads.Apps.app_name app) mx cap;
      match Core.Event_lp.solve sc ~power_cap:cap with
      | Core.Event_lp.Schedule s ->
          Alcotest.(check bool) "lp bounds balancer" true
            (s.Core.Event_lp.objective <= r.Simulate.Engine.makespan +. 1e-6)
      | _ -> ())
    Workloads.Apps.all_apps

let test_balancer_helps_imbalance () =
  let _, sc = make Workloads.Apps.BT ~nranks:8 ~iterations:8 in
  let cap = 35.0 *. 8.0 in
  let st = Runtime.Static.run sc ~job_cap:cap in
  let ba = Runtime.Balancer.run sc ~job_cap:cap in
  Alcotest.(check bool) "balancer faster than static on BT" true
    (ba.Simulate.Engine.makespan < st.Simulate.Engine.makespan)

let test_adagio_saves_energy_keeps_time () =
  let g, sc = make Workloads.Apps.BT ~nranks:4 ~iterations:4 in
  ignore g;
  let fastest =
    Simulate.Policy.of_point_fn "fastest" (fun ctx ->
        let tid = ctx.Simulate.Policy.task.Dag.Graph.tid in
        let f = sc.Core.Scenario.frontiers.(tid) in
        if Array.length f = 0 then
          { Pareto.Point.freq = 1.2; threads = 1; duration = 0.0; power = 0.0 }
        else Pareto.Frontier.fastest f)
  in
  let base = Simulate.Engine.run sc.Core.Scenario.graph fastest in
  let ada = Runtime.Adagio.run sc in
  Alcotest.(check bool) "within 2% of fastest time" true
    (ada.Simulate.Engine.makespan <= base.Simulate.Engine.makespan *. 1.02);
  Alcotest.(check bool) "uses less energy" true
    (ada.Simulate.Engine.energy < base.Simulate.Engine.energy)

let suite =
  [
    ( "runtime.static",
      [
        Alcotest.test_case "respects cap" `Quick test_static_respects_cap;
        Alcotest.test_case "eight threads" `Quick test_static_always_eight_threads;
        Alcotest.test_case "monotone in cap" `Quick test_static_monotone_in_cap;
      ] );
    ( "runtime.conductor",
      [
        Alcotest.test_case "respects cap" `Quick test_conductor_respects_cap;
        Alcotest.test_case "beats static on BT" `Quick test_conductor_beats_static_on_imbalance;
        Alcotest.test_case "near static on SP" `Quick test_conductor_near_static_on_balanced;
        Alcotest.test_case "lp bound holds" `Quick test_conductor_lp_is_still_bound;
        Alcotest.test_case "deterministic" `Quick test_conductor_deterministic;
      ] );
    ( "runtime.balancer",
      [
        Alcotest.test_case "cap and bound" `Quick test_balancer_respects_cap_and_bound;
        Alcotest.test_case "helps imbalance" `Quick test_balancer_helps_imbalance;
      ] );
    ( "runtime.adagio",
      [ Alcotest.test_case "energy vs time" `Quick test_adagio_saves_energy_keeps_time ] );
  ]
