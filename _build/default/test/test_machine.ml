(* Tests for the machine model: DVFS ladder, task profiles, socket power,
   RAPL capping, and the network model. *)

let check_float = Alcotest.(check (float 1e-9))
let sock = Machine.Socket.nominal 0

let test_dvfs_ladder () =
  Alcotest.(check int) "15 states" 15 Machine.Dvfs.n_states;
  check_float "min" 1.2 Machine.Dvfs.ladder.(0);
  check_float "max" 2.6 Machine.Dvfs.ladder.(14);
  Alcotest.(check bool) "1.5 is a state" true (Machine.Dvfs.is_state 1.5);
  check_float "floor 1.57" 1.5 (Machine.Dvfs.floor_freq 1.57);
  check_float "floor below" 1.2 (Machine.Dvfs.floor_freq 0.3);
  check_float "nearest 2.44" 2.4 (Machine.Dvfs.nearest 2.44);
  Alcotest.(check int) "index of max" 14 (Machine.Dvfs.index_of 2.6)

let test_profile_monotonicity () =
  let p = Machine.Profile.v ~serial_frac:0.05 ~contention:0.0 ~mem_bound:0.2 1.0 in
  (* duration decreases with threads (no contention) *)
  let d t = Machine.Profile.duration p ~freq:2.6 ~threads:t in
  for t = 1 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "d(%d) > d(%d)" t (t + 1))
      true
      (d t > d (t + 1))
  done;
  (* duration decreases with frequency *)
  let df f = Machine.Profile.duration p ~freq:f ~threads:8 in
  Alcotest.(check bool) "faster clock is faster" true (df 2.6 < df 1.2);
  (* at max frequency, 1 thread: duration = work *)
  check_float "work normalization" 1.0
    (Machine.Profile.duration p ~freq:2.6 ~threads:1)

let test_profile_contention_optimum () =
  (* strong contention pushes the optimal thread count below 8 *)
  let p = Machine.Profile.v ~serial_frac:0.02 ~contention:0.06 1.0 in
  let best = Machine.Profile.best_threads p ~max_threads:8 in
  Alcotest.(check bool) "optimum below 8 threads" true (best < 8);
  Alcotest.(check bool) "optimum above 1 thread" true (best > 1);
  (* no contention: 8 threads is best *)
  let q = Machine.Profile.v ~serial_frac:0.02 ~contention:0.0 1.0 in
  Alcotest.(check int) "8 threads" 8 (Machine.Profile.best_threads q ~max_threads:8)

let test_profile_mem_bound () =
  (* fully frequency-sensitive task scales linearly with 1/f *)
  let p = Machine.Profile.v ~mem_bound:0.0 1.0 in
  let d13 = Machine.Profile.duration p ~freq:1.3 ~threads:1 in
  check_float "2x clock, 2x speed" 2.0 d13;
  (* memory-bound task barely scales *)
  let q = Machine.Profile.v ~mem_bound:0.9 1.0 in
  let dq = Machine.Profile.duration q ~freq:1.3 ~threads:1 in
  Alcotest.(check bool) "mem-bound insensitive" true (dq < 1.2)

let test_profile_validation () =
  Alcotest.check_raises "negative work" (Invalid_argument "Profile.v: negative work")
    (fun () -> ignore (Machine.Profile.v (-1.0)));
  Alcotest.check_raises "bad serial"
    (Invalid_argument "Profile.v: serial_frac out of [0,1]") (fun () ->
      ignore (Machine.Profile.v ~serial_frac:1.5 1.0))

let test_socket_power_range () =
  let p8max = Machine.Socket.power sock ~freq:2.6 ~threads:8 ~mem_bound:0.0 in
  let p8min = Machine.Socket.power sock ~freq:1.2 ~threads:8 ~mem_bound:0.0 in
  let p1min = Machine.Socket.power sock ~freq:1.2 ~threads:1 ~mem_bound:0.0 in
  Alcotest.(check bool) "max ~ 82W" true (p8max > 74.0 && p8max < 90.0);
  Alcotest.(check bool) "8thr floor ~ 29W" true (p8min > 26.0 && p8min < 33.0);
  Alcotest.(check bool) "1thr floor ~ 19W" true (p1min > 18.0 && p1min < 22.0);
  (* monotonic in threads and frequency *)
  Alcotest.(check bool) "threads increase power" true
    (Machine.Socket.power sock ~freq:2.0 ~threads:5 ~mem_bound:0.1
    < Machine.Socket.power sock ~freq:2.0 ~threads:6 ~mem_bound:0.1);
  Alcotest.(check bool) "frequency increases power" true
    (Machine.Socket.power sock ~freq:1.8 ~threads:6 ~mem_bound:0.1
    < Machine.Socket.power sock ~freq:2.0 ~threads:6 ~mem_bound:0.1);
  (* memory-bound tasks draw less *)
  Alcotest.(check bool) "mem-bound draws less" true
    (Machine.Socket.power sock ~freq:2.6 ~threads:8 ~mem_bound:0.8
    < Machine.Socket.power sock ~freq:2.6 ~threads:8 ~mem_bound:0.0)

let test_socket_fleet () =
  let fleet = Machine.Socket.fleet ~seed:42 32 in
  Alcotest.(check int) "fleet size" 32 (Array.length fleet);
  (* deterministic in the seed *)
  let fleet' = Machine.Socket.fleet ~seed:42 32 in
  Array.iteri
    (fun i s ->
      check_float "deterministic eff" s.Machine.Socket.eff
        fleet'.(i).Machine.Socket.eff)
    fleet;
  (* bounded variability *)
  Array.iter
    (fun s ->
      Alcotest.(check bool) "eff in range" true
        (s.Machine.Socket.eff > 0.8 && s.Machine.Socket.eff < 1.2))
    fleet;
  (* different seed, different fleet *)
  let other = Machine.Socket.fleet ~seed:7 32 in
  Alcotest.(check bool) "seed matters" true
    (Array.exists2
       (fun a b -> a.Machine.Socket.eff <> b.Machine.Socket.eff)
       fleet other)

let test_rapl_respects_cap () =
  List.iter
    (fun cap ->
      List.iter
        (fun threads ->
          let op =
            Machine.Rapl.operating_point sock ~cap ~threads ~mem_bound:0.2
          in
          Alcotest.(check bool)
            (Printf.sprintf "cap %g thr %d" cap threads)
            true
            (op.Machine.Rapl.power <= cap +. 1e-6
            || op.Machine.Rapl.duty = Machine.Rapl.min_duty))
        [ 1; 4; 8 ])
    [ 20.0; 30.0; 45.0; 60.0; 80.0 ]

let test_rapl_uncapped_is_max_freq () =
  let op = Machine.Rapl.operating_point sock ~cap:100.0 ~threads:8 ~mem_bound:0.2 in
  check_float "max freq" 2.6 op.Machine.Rapl.freq;
  check_float "no modulation" 1.0 op.Machine.Rapl.duty

let test_rapl_modulation_under_tight_cap () =
  (* 8 threads need ~35 W at the lowest P-state; a 25 W cap forces
     clock modulation *)
  let op = Machine.Rapl.operating_point sock ~cap:25.0 ~threads:8 ~mem_bound:0.0 in
  check_float "lowest P-state" 1.2 op.Machine.Rapl.freq;
  Alcotest.(check bool) "duty < 1" true (op.Machine.Rapl.duty < 1.0);
  Alcotest.(check bool) "clock fraction < 0.46" true
    (Machine.Rapl.relative_clock op < 0.46);
  (* modulated duration exceeds unmodulated duration *)
  let prof = Machine.Profile.v 1.0 in
  let d = Machine.Rapl.duration prof op ~threads:8 in
  let d_unmod = Machine.Profile.duration prof ~freq:1.2 ~threads:8 in
  Alcotest.(check bool) "modulation slows execution" true (d > d_unmod)


let test_rapl_duty_floor () =
  (* an impossible cap cannot push the duty cycle below the hardware
     floor; the reported power then honestly exceeds the cap *)
  let op = Machine.Rapl.operating_point sock ~cap:5.0 ~threads:8 ~mem_bound:0.0 in
  Alcotest.(check (float 1e-9)) "duty floored" Machine.Rapl.min_duty
    op.Machine.Rapl.duty;
  Alcotest.(check bool) "power above the impossible cap" true
    (op.Machine.Rapl.power > 5.0)

let test_rapl_threads_zero () =
  let op = Machine.Rapl.operating_point sock ~cap:30.0 ~threads:0 ~mem_bound:0.0 in
  (* zero active threads draw idle power at any state *)
  Alcotest.(check bool) "idle draw" true (op.Machine.Rapl.power <= 30.0)

let test_rapl_monotone_in_cap () =
  let prof = Machine.Profile.v 1.0 in
  let d cap =
    let op = Machine.Rapl.operating_point sock ~cap ~threads:8 ~mem_bound:0.2 in
    Machine.Rapl.duration prof op ~threads:8
  in
  Alcotest.(check bool) "more power, no slower" true
    (d 30.0 >= d 40.0 && d 40.0 >= d 55.0 && d 55.0 >= d 80.0)

let test_network () =
  let t0 = Machine.Network.transfer_time 0 in
  check_float "latency only" 2.0e-6 t0;
  Alcotest.(check bool) "bigger is slower" true
    (Machine.Network.transfer_time 1_000_000 > Machine.Network.transfer_time 1_000);
  Alcotest.(check bool) "collective grows with ranks" true
    (Machine.Network.collective_time ~ranks:32 1024
    > Machine.Network.collective_time ~ranks:2 1024)

let test_overheads_sane () =
  Alcotest.(check bool) "ordering of overheads" true
    (Machine.Overheads.conductor_per_task < Machine.Overheads.dvfs_transition
    && Machine.Overheads.dvfs_transition < Machine.Overheads.reallocation_per_step)

let suite =
  [
    ( "machine.dvfs",
      [ Alcotest.test_case "ladder" `Quick test_dvfs_ladder ] );
    ( "machine.profile",
      [
        Alcotest.test_case "monotonicity" `Quick test_profile_monotonicity;
        Alcotest.test_case "contention optimum" `Quick test_profile_contention_optimum;
        Alcotest.test_case "memory boundedness" `Quick test_profile_mem_bound;
        Alcotest.test_case "validation" `Quick test_profile_validation;
      ] );
    ( "machine.socket",
      [
        Alcotest.test_case "power range" `Quick test_socket_power_range;
        Alcotest.test_case "fleet variability" `Quick test_socket_fleet;
      ] );
    ( "machine.rapl",
      [
        Alcotest.test_case "respects cap" `Quick test_rapl_respects_cap;
        Alcotest.test_case "uncapped" `Quick test_rapl_uncapped_is_max_freq;
        Alcotest.test_case "modulation" `Quick test_rapl_modulation_under_tight_cap;
        Alcotest.test_case "monotone in cap" `Quick test_rapl_monotone_in_cap;
        Alcotest.test_case "duty floor" `Quick test_rapl_duty_floor;
        Alcotest.test_case "zero threads" `Quick test_rapl_threads_zero;
      ] );
    ( "machine.network",
      [
        Alcotest.test_case "transfer model" `Quick test_network;
        Alcotest.test_case "overheads" `Quick test_overheads_sane;
      ] );
  ]
