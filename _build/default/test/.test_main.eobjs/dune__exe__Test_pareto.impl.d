test/test_pareto.ml: Alcotest Array Float List Machine Pareto QCheck QCheck_alcotest
