test/test_simulate.ml: Alcotest Array Core Dag Float List Machine Pareto Simulate String Workloads
