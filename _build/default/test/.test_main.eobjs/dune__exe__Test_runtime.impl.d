test/test_runtime.ml: Alcotest Array Core Dag List Pareto Runtime Simulate Workloads
