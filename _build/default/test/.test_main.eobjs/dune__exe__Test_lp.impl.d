test/test_lp.ml: Alcotest Array Float Fmt List Lp Printf QCheck QCheck_alcotest Random
