test/test_workloads.ml: Alcotest Array Dag Float List Machine String Workloads
