test/test_trace_io.ml: Alcotest Array Dag Filename Float Fun List Machine QCheck QCheck_alcotest String Sys Workloads
