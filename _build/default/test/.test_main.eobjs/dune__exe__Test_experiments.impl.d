test/test_experiments.ml: Alcotest Buffer Experiments Format Lazy List Printf String Workloads
