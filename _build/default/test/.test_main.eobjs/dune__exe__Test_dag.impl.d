test/test_dag.ml: Alcotest Array Dag Float List Machine QCheck QCheck_alcotest String Workloads
