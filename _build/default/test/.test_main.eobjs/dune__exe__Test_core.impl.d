test/test_core.ml: Alcotest Array Core Dag Float List Lp Machine QCheck QCheck_alcotest Runtime Simulate Workloads
