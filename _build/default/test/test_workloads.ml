(* Tests for the synthetic benchmark generators: structure, determinism,
   and the imbalance characteristics the experiments rely on. *)

let params = { Workloads.Apps.nranks = 8; iterations = 4; seed = 11; scale = 1.0 }

let test_all_apps_valid () =
  List.iter
    (fun app ->
      let g = Workloads.Apps.generate app params in
      match Dag.Graph.validate g with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s invalid: %s"
            (Workloads.Apps.app_name app)
            (String.concat "; " es))
    Workloads.Apps.all_apps

let test_generators_deterministic () =
  List.iter
    (fun app ->
      let g1 = Workloads.Apps.generate app params in
      let g2 = Workloads.Apps.generate app params in
      Alcotest.(check int) "same tasks" (Dag.Graph.n_tasks g1) (Dag.Graph.n_tasks g2);
      Array.iteri
        (fun i (t1 : Dag.Graph.task) ->
          let t2 = g2.Dag.Graph.tasks.(i) in
          Alcotest.(check (float 0.0)) "same work"
            t1.profile.Machine.Profile.work t2.profile.Machine.Profile.work)
        g1.Dag.Graph.tasks)
    Workloads.Apps.all_apps

let test_comd_all_collectives () =
  let g = Workloads.Apps.comd params in
  Alcotest.(check int) "no p2p messages" 0 (Dag.Graph.n_messages g);
  (* one pcontrol collective per iteration *)
  let pcontrols =
    Array.to_list g.Dag.Graph.vertices
    |> List.filter (fun (v : Dag.Graph.vertex) -> v.pcontrol)
    |> List.length
  in
  Alcotest.(check int) "pcontrol per iteration" params.iterations pcontrols

let test_lulesh_has_p2p () =
  let g = Workloads.Apps.lulesh params in
  Alcotest.(check int) "halo messages" (params.nranks * params.iterations)
    (Dag.Graph.n_messages g);
  (* contention profile: optimal thread count below 8 *)
  let stress =
    Array.to_list g.Dag.Graph.tasks
    |> List.find (fun (t : Dag.Graph.task) -> t.label = "stress")
  in
  let best =
    Machine.Profile.best_threads stress.Dag.Graph.profile ~max_threads:8
  in
  Alcotest.(check bool) "lulesh prefers 4-6 threads" true (best >= 4 && best <= 6)

let spread app =
  let g = Workloads.Apps.generate app params in
  (* per-rank total work of compute tasks *)
  let work = Array.make params.nranks 0.0 in
  Array.iter
    (fun (t : Dag.Graph.task) ->
      work.(t.rank) <- work.(t.rank) +. t.profile.Machine.Profile.work)
    g.Dag.Graph.tasks;
  let mx = Array.fold_left max 0.0 work in
  let mn = Array.fold_left min Float.infinity work in
  mx /. mn

let test_imbalance_ordering () =
  let sp = spread Workloads.Apps.SP in
  let comd = spread Workloads.Apps.CoMD in
  let bt = spread Workloads.Apps.BT in
  Alcotest.(check bool) "SP balanced" true (sp < 1.05);
  Alcotest.(check bool) "CoMD mild" true (comd > 1.01 && comd < 1.5);
  Alcotest.(check bool) "BT zonal" true (bt > 1.8);
  Alcotest.(check bool) "ordering sp < comd < bt" true (sp < comd && comd < bt)

let test_bt_minority_heavy () =
  let g = Workloads.Apps.bt params in
  let work = Array.make params.nranks 0.0 in
  Array.iter
    (fun (t : Dag.Graph.task) ->
      work.(t.rank) <- work.(t.rank) +. t.profile.Machine.Profile.work)
    g.Dag.Graph.tasks;
  let mean = Array.fold_left ( +. ) 0.0 work /. Float.of_int params.nranks in
  let heavy = Array.to_list work |> List.filter (fun w -> w > 1.5 *. mean) in
  Alcotest.(check bool) "a minority of ranks is heavy" true
    (List.length heavy >= 1 && List.length heavy <= params.nranks / 4)

let test_exchange_structure () =
  let g = Workloads.Apps.exchange () in
  Alcotest.(check int) "two ranks" 2 g.Dag.Graph.nranks;
  (match Dag.Graph.validate g with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
  (* payload message + completion ack *)
  Alcotest.(check int) "two messages" 2 (Dag.Graph.n_messages g);
  (* small enough for the flow ILP *)
  let nonzero =
    Array.to_list g.Dag.Graph.tasks
    |> List.filter (fun (t : Dag.Graph.task) ->
           t.profile.Machine.Profile.work > 0.0)
    |> List.length
  in
  Alcotest.(check bool) "ILP-sized" true (nonzero <= 10);
  (* Isend overlap: rank 0 computes while the message is in flight *)
  let kinds = Array.map (fun (v : Dag.Graph.vertex) -> v.kind) g.Dag.Graph.vertices in
  Alcotest.(check bool) "has Isend" true (Array.mem Dag.Graph.Isend kinds);
  Alcotest.(check bool) "has Wait" true (Array.mem Dag.Graph.Wait kinds);
  Alcotest.(check bool) "has Recv" true (Array.mem Dag.Graph.Recv kinds)

let test_exchange_rounds () =
  let g1 = Workloads.Apps.exchange ~rounds:1 () in
  let g3 = Workloads.Apps.exchange ~rounds:3 () in
  Alcotest.(check bool) "rounds scale tasks" true
    (Dag.Graph.n_tasks g3 > 2 * Dag.Graph.n_tasks g1)

let test_scale_parameter () =
  let g1 = Workloads.Apps.comd params in
  let g2 = Workloads.Apps.comd { params with scale = 2.0 } in
  let total g =
    Array.fold_left
      (fun acc (t : Dag.Graph.task) -> acc +. t.profile.Machine.Profile.work)
      0.0 g.Dag.Graph.tasks
  in
  Alcotest.(check bool) "scale doubles work" true
    (Float.abs ((total g2 /. total g1) -. 2.0) < 0.01)

let test_imbalance_module () =
  let imb = Workloads.Imbalance.uniform_bell ~seed:3 ~nranks:16 ~amp:0.05 ~jitter:0.01 in
  Alcotest.(check bool) "spread sane" true (Workloads.Imbalance.spread imb < 1.6);
  let z =
    Workloads.Imbalance.zonal ~seed:3 ~nranks:16 ~heavy_frac:0.25 ~heavy_ratio:2.0
      ~jitter:0.0
  in
  (* normalized to mean ~1 (jitter is zero, so sample = persistent) *)
  let mean =
    let s = ref 0.0 in
    for r = 0 to 15 do
      s := !s +. Workloads.Imbalance.sample z ~rank:r
    done;
    !s /. 16.0
  in
  Alcotest.(check bool) "zonal mean ~1" true (Float.abs (mean -. 1.0) < 0.01);
  Alcotest.(check bool) "zonal spread ~2" true
    (Workloads.Imbalance.spread z > 1.7 && Workloads.Imbalance.spread z < 2.3)

let suite =
  [
    ( "workloads",
      [
        Alcotest.test_case "all apps valid" `Quick test_all_apps_valid;
        Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
        Alcotest.test_case "comd collectives only" `Quick test_comd_all_collectives;
        Alcotest.test_case "lulesh p2p + contention" `Quick test_lulesh_has_p2p;
        Alcotest.test_case "imbalance ordering" `Quick test_imbalance_ordering;
        Alcotest.test_case "bt minority heavy" `Quick test_bt_minority_heavy;
        Alcotest.test_case "exchange structure" `Quick test_exchange_structure;
        Alcotest.test_case "exchange rounds" `Quick test_exchange_rounds;
        Alcotest.test_case "scale parameter" `Quick test_scale_parameter;
        Alcotest.test_case "imbalance module" `Quick test_imbalance_module;
      ] );
  ]
