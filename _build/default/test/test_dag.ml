(* Tests for the task-graph library: builder invariants, validation,
   topological order, schedules, slack, critical path, and events. *)

let prof w = Machine.Profile.v w

(* A small two-rank graph with one p2p exchange. *)
let small_graph () =
  let b = Dag.Graph.Builder.create ~nranks:2 in
  Dag.Graph.Builder.compute b ~rank:0 ~iteration:0 ~label:"a" (prof 2.0);
  Dag.Graph.Builder.compute b ~rank:1 ~iteration:0 ~label:"b" (prof 1.0);
  ignore (Dag.Graph.Builder.p2p b ~src:0 ~dst:1 ~bytes:1000);
  Dag.Graph.Builder.compute b ~rank:1 ~iteration:0 ~label:"c" (prof 0.5);
  ignore (Dag.Graph.Builder.collective b ());
  ignore (Dag.Graph.Builder.finalize b);
  Dag.Graph.Builder.build b

let test_builder_structure () =
  let g = small_graph () in
  Alcotest.(check int) "ranks" 2 g.Dag.Graph.nranks;
  (match Dag.Graph.validate g with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
  Alcotest.(check int) "messages" 1 (Dag.Graph.n_messages g);
  (* rank task chains exist and tile Init..Finalize *)
  Array.iter
    (fun seq -> Alcotest.(check bool) "nonempty chain" true (Array.length seq > 0))
    g.Dag.Graph.rank_tasks

let test_builder_rejects_double_compute () =
  let b = Dag.Graph.Builder.create ~nranks:1 in
  Dag.Graph.Builder.compute b ~rank:0 (prof 1.0);
  Alcotest.check_raises "double compute"
    (Invalid_argument "Builder.compute: two computations without an MPI call")
    (fun () -> Dag.Graph.Builder.compute b ~rank:0 (prof 1.0))

let test_builder_rejects_unfinalized () =
  let b = Dag.Graph.Builder.create ~nranks:1 in
  Alcotest.check_raises "unfinalized"
    (Invalid_argument "Builder.build: not finalized") (fun () ->
      ignore (Dag.Graph.Builder.build b))

let test_builder_rejects_after_finalize () =
  let b = Dag.Graph.Builder.create ~nranks:1 in
  ignore (Dag.Graph.Builder.finalize b);
  Alcotest.check_raises "op after finalize"
    (Invalid_argument "Builder: graph already finalized") (fun () ->
      Dag.Graph.Builder.compute b ~rank:0 (prof 1.0))

let test_topo_order () =
  let g = small_graph () in
  let order = Dag.Graph.topo_order g in
  let pos = Array.make (Dag.Graph.n_vertices g) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  (* every edge goes forward *)
  Array.iter
    (fun (t : Dag.Graph.task) ->
      Alcotest.(check bool) "task forward" true (pos.(t.t_src) < pos.(t.t_dst)))
    g.Dag.Graph.tasks;
  Array.iter
    (fun (msg : Dag.Graph.message) ->
      Alcotest.(check bool) "msg forward" true (pos.(msg.m_src) < pos.(msg.m_dst)))
    g.Dag.Graph.messages

let const_dur d = fun (_ : Dag.Graph.task) -> d
let const_msg d = fun (_ : Dag.Graph.message) -> d

let test_schedule_longest_path () =
  let g = small_graph () in
  (* durations 1.0, messages 0.1: rank1's path goes through the message *)
  let ts = Dag.Schedule.compute g ~dur:(const_dur 1.0) ~msg:(const_msg 0.1) in
  (* rank0: init(0) -> isend(1.0); rank1: recv = max(own 1.0, 1.0+0.1)
     = 1.1; then task to collective: 2.1 + collective delay; then
     finalize at +1 more task *)
  Alcotest.(check bool) "makespan near 3.1" true
    (Float.abs (ts.Dag.Schedule.makespan -. 3.1) < 0.01);
  (* vertex times are monotone along task edges *)
  Array.iter
    (fun (t : Dag.Graph.task) ->
      Alcotest.(check bool) "monotone" true
        (ts.Dag.Schedule.vertex_time.(t.t_dst)
        >= ts.Dag.Schedule.vertex_time.(t.t_src) +. 1.0 -. 1e-9))
    g.Dag.Graph.tasks

let test_unconstrained_schedule () =
  let g = Workloads.Apps.comd { Workloads.Apps.default_params with nranks = 4 } in
  let ts = Dag.Schedule.unconstrained g in
  Alcotest.(check bool) "positive makespan" true (ts.Dag.Schedule.makespan > 0.0);
  (* at max config the makespan is the sum over iterations of the max
     rank task, plus collective delays: verify lower bound *)
  let max_task =
    Array.fold_left
      (fun acc (t : Dag.Graph.task) ->
        max acc (Machine.Profile.duration t.profile ~freq:2.6 ~threads:8))
      0.0 g.Dag.Graph.tasks
  in
  Alcotest.(check bool) "at least one max task" true
    (ts.Dag.Schedule.makespan >= max_task)

let test_slack_nonnegative_and_critical_zero () =
  let g = Workloads.Apps.lulesh { Workloads.Apps.default_params with nranks = 4; iterations = 2 } in
  let dur (t : Dag.Graph.task) =
    Machine.Profile.duration t.Dag.Graph.profile ~freq:2.6 ~threads:8
  in
  let ts = Dag.Schedule.compute g ~dur ~msg:Dag.Schedule.default_msg in
  let slack = Dag.Schedule.task_slack g ts ~dur in
  Array.iter
    (fun s -> Alcotest.(check bool) "slack >= 0" true (s >= -1e-9))
    slack;
  (* some task has (near) zero slack: the critical one *)
  Alcotest.(check bool) "a critical task exists" true
    (Array.exists (fun s -> s < 1e-6) slack)

let test_critical_path_length () =
  let g = small_graph () in
  let dur = const_dur 1.0 and msg = const_msg 0.1 in
  let ts = Dag.Schedule.compute g ~dur ~msg in
  let path = Dag.Schedule.critical_path g ts ~dur ~msg in
  Alcotest.(check bool) "path nonempty" true (path <> []);
  (* path starts at Init and ends at Finalize *)
  (match path with
  | first :: _ ->
      Alcotest.(check int) "starts at init" g.Dag.Graph.init_v
        (Dag.Graph.edge_src g first)
  | [] -> ());
  let last = List.nth path (List.length path - 1) in
  Alcotest.(check int) "ends at finalize" g.Dag.Graph.finalize_v
    (Dag.Graph.edge_dst g last)


let test_latest_times_alap () =
  let g = Workloads.Apps.lulesh { Workloads.Apps.default_params with nranks = 4; iterations = 2 } in
  let dur (t : Dag.Graph.task) =
    Machine.Profile.duration t.Dag.Graph.profile ~freq:2.6 ~threads:8
  in
  let early = Dag.Schedule.compute g ~dur ~msg:Dag.Schedule.default_msg in
  let late = Dag.Schedule.latest_times g early ~dur ~msg:Dag.Schedule.default_msg in
  Alcotest.(check (float 1e-12)) "same makespan" early.Dag.Schedule.makespan
    late.Dag.Schedule.makespan;
  Array.iteri
    (fun v te ->
      Alcotest.(check bool) "late >= early" true
        (late.Dag.Schedule.vertex_time.(v) >= te -. 1e-9))
    early.Dag.Schedule.vertex_time;
  Alcotest.(check (float 1e-9)) "finalize pinned"
    early.Dag.Schedule.vertex_time.(g.Dag.Graph.finalize_v)
    late.Dag.Schedule.vertex_time.(g.Dag.Graph.finalize_v);
  (* ALAP times still respect every precedence *)
  Array.iter
    (fun (t : Dag.Graph.task) ->
      Alcotest.(check bool) "precedence kept" true
        (late.Dag.Schedule.vertex_time.(t.t_dst)
         -. g.Dag.Graph.vertices.(t.t_dst).Dag.Graph.delay
         -. late.Dag.Schedule.vertex_time.(t.t_src)
        >= dur t -. 1e-9))
    g.Dag.Graph.tasks;
  (* something off the critical path actually moved *)
  Alcotest.(check bool) "slack consumed somewhere" true
    (Array.exists2
       (fun a b -> b > a +. 1e-9)
       early.Dag.Schedule.vertex_time late.Dag.Schedule.vertex_time)

let test_events_ordering_and_activity () =
  let g = Workloads.Apps.comd { Workloads.Apps.default_params with nranks = 4; iterations = 3 } in
  let ts = Dag.Schedule.unconstrained g in
  let ev = Dag.Schedule.events g ts in
  let n = Array.length ev.Dag.Schedule.order in
  Alcotest.(check int) "one event per vertex" (Dag.Graph.n_vertices g) n;
  for k = 0 to n - 2 do
    Alcotest.(check bool) "time-sorted" true
      (ts.Dag.Schedule.vertex_time.(ev.Dag.Schedule.order.(k))
      <= ts.Dag.Schedule.vertex_time.(ev.Dag.Schedule.order.(k + 1)) +. 1e-12)
  done;
  (* every compute task is active at its own source event *)
  Array.iter
    (fun (t : Dag.Graph.task) ->
      if t.profile.Machine.Profile.work > 0.0 then begin
        let found = ref false in
        Array.iteri
          (fun k v ->
            if v = t.t_src && Array.exists (fun tid -> tid = t.tid) ev.Dag.Schedule.active.(k)
            then found := true)
          ev.Dag.Schedule.order;
        Alcotest.(check bool) "task active at its source" true !found
      end)
    g.Dag.Graph.tasks

let test_next_task_on_rank () =
  let g = small_graph () in
  let seq = g.Dag.Graph.rank_tasks.(1) in
  Alcotest.(check bool) "rank1 has >= 2 tasks" true (Array.length seq >= 2);
  (match Dag.Graph.next_task_on_rank g seq.(0) with
  | Some t -> Alcotest.(check int) "next is second" seq.(1) t
  | None -> Alcotest.fail "no next task");
  let last = seq.(Array.length seq - 1) in
  Alcotest.(check bool) "last has no next" true
    (Dag.Graph.next_task_on_rank g last = None)

(* Property: random synthetic graphs are always valid and acyclic. *)
let prop_synthetic_valid =
  QCheck.Test.make ~count:60 ~name:"synthetic graphs validate"
    QCheck.(pair (int_bound 1000) (pair (int_range 1 6) (int_range 1 8)))
    (fun (seed, (nranks, steps)) ->
      let g = Workloads.Apps.synthetic ~seed ~nranks ~steps in
      match Dag.Graph.validate g with
      | Ok () -> true
      | Error es -> QCheck.Test.fail_reportf "invalid: %s" (String.concat "; " es))

let suite =
  [
    ( "dag.builder",
      [
        Alcotest.test_case "structure" `Quick test_builder_structure;
        Alcotest.test_case "double compute" `Quick test_builder_rejects_double_compute;
        Alcotest.test_case "unfinalized" `Quick test_builder_rejects_unfinalized;
        Alcotest.test_case "after finalize" `Quick test_builder_rejects_after_finalize;
      ] );
    ( "dag.analysis",
      [
        Alcotest.test_case "topological order" `Quick test_topo_order;
        Alcotest.test_case "longest path" `Quick test_schedule_longest_path;
        Alcotest.test_case "unconstrained schedule" `Quick test_unconstrained_schedule;
        Alcotest.test_case "slack" `Quick test_slack_nonnegative_and_critical_zero;
        Alcotest.test_case "critical path" `Quick test_critical_path_length;
        Alcotest.test_case "alap schedule" `Quick test_latest_times_alap;
        Alcotest.test_case "events" `Quick test_events_ordering_and_activity;
        Alcotest.test_case "next task" `Quick test_next_task_on_rank;
        QCheck_alcotest.to_alcotest prop_synthetic_valid;
      ] );
  ]
