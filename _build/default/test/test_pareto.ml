(* Tests for configuration enumeration and Pareto / convex frontiers,
   including the Figure 1 / Table 1 shape from the paper. *)

let sock = Machine.Socket.nominal 0
let comd_like = Machine.Profile.v ~serial_frac:0.03 ~contention:0.004 ~mem_bound:0.25 1.2
let lulesh_like = Machine.Profile.v ~serial_frac:0.02 ~contention:0.06 ~mem_bound:0.3 1.5

let test_enumerate_size () =
  let pts = Pareto.Frontier.enumerate sock comd_like in
  Alcotest.(check int) "15 freqs x 8 threads" 120 (Array.length pts)

let test_pareto_nondominated () =
  let pts = Pareto.Frontier.enumerate sock comd_like in
  let pf = Pareto.Frontier.pareto pts in
  Array.iter
    (fun p ->
      Array.iter
        (fun q ->
          if q != p && Pareto.Point.dominates q p then
            Alcotest.failf "dominated point on frontier: %a by %a"
              Pareto.Point.pp p Pareto.Point.pp q)
        pts)
    pf

let test_pareto_monotone () =
  let pf = Pareto.Frontier.pareto (Pareto.Frontier.enumerate sock comd_like) in
  for i = 0 to Array.length pf - 2 do
    Alcotest.(check bool) "power ascending" true
      (pf.(i).Pareto.Point.power < pf.(i + 1).Pareto.Point.power);
    Alcotest.(check bool) "duration descending" true
      (pf.(i).Pareto.Point.duration > pf.(i + 1).Pareto.Point.duration)
  done

let convexity_holds (hull : Pareto.Frontier.t) =
  let ok = ref true in
  for i = 1 to Array.length hull - 2 do
    let a = hull.(i - 1) and b = hull.(i) and c = hull.(i + 1) in
    (* middle point must lie strictly below the chord a-c *)
    let t =
      (b.Pareto.Point.power -. a.Pareto.Point.power)
      /. (c.Pareto.Point.power -. a.Pareto.Point.power)
    in
    let chord =
      a.Pareto.Point.duration
      +. (t *. (c.Pareto.Point.duration -. a.Pareto.Point.duration))
    in
    if b.Pareto.Point.duration > chord +. 1e-12 then ok := false
  done;
  !ok

let test_convex_hull_is_convex () =
  Alcotest.(check bool) "comd hull convex" true
    (convexity_holds (Pareto.Frontier.convex sock comd_like));
  Alcotest.(check bool) "lulesh hull convex" true
    (convexity_holds (Pareto.Frontier.convex sock lulesh_like))

let test_hull_subset_of_pareto () =
  let pts = Pareto.Frontier.enumerate sock comd_like in
  let pf = Pareto.Frontier.pareto pts in
  let hull = Pareto.Frontier.convex sock comd_like in
  Array.iter
    (fun h ->
      Alcotest.(check bool) "hull point is a real configuration" true
        (Array.exists
           (fun p ->
             p.Pareto.Point.freq = h.Pareto.Point.freq
             && p.Pareto.Point.threads = h.Pareto.Point.threads)
           pf))
    hull

(* Table 1 shape: the top of the frontier is 8 threads across descending
   frequencies; fewer-than-max threads appear only at the lowest
   frequency. *)
let test_table1_shape () =
  let hull = Pareto.Frontier.convex sock comd_like in
  let n = Array.length hull in
  Alcotest.(check bool) "nontrivial hull" true (n >= 5);
  (* fastest point: max threads at max frequency *)
  let fast = Pareto.Frontier.fastest hull in
  Alcotest.(check int) "fastest is 8 threads" 8 fast.Pareto.Point.threads;
  Alcotest.(check (float 1e-9)) "fastest is 2.6GHz" 2.6 fast.Pareto.Point.freq;
  (* any point with < 8 threads sits at the minimum frequency *)
  Array.iter
    (fun (p : Pareto.Point.t) ->
      if p.threads < 8 then
        Alcotest.(check (float 1e-9)) "reduced threads only at f_min" 1.2 p.freq)
    hull;
  (* and at least one such point exists at the frugal end *)
  Alcotest.(check bool) "low-power end uses fewer threads" true
    ((Pareto.Frontier.slowest hull).Pareto.Point.threads < 8)

let test_best_under_power () =
  let hull = Pareto.Frontier.convex sock comd_like in
  (match Pareto.Frontier.best_under_power hull ~budget:40.0 with
  | None -> Alcotest.fail "40W should be feasible"
  | Some p ->
      Alcotest.(check bool) "within budget" true (p.Pareto.Point.power <= 40.0 +. 1e-9);
      (* no faster feasible point *)
      Array.iter
        (fun (q : Pareto.Point.t) ->
          if q.power <= 40.0 then
            Alcotest.(check bool) "fastest" true
              (p.Pareto.Point.duration <= q.duration +. 1e-12))
        hull);
  (* impossible budget *)
  (match Pareto.Frontier.best_under_power hull ~budget:1.0 with
  | None -> ()
  | Some _ -> Alcotest.fail "1W should be infeasible")

let test_interpolate_between_endpoints () =
  let hull = Pareto.Frontier.convex sock comd_like in
  let lo = Pareto.Frontier.min_power hull and hi = Pareto.Frontier.max_power hull in
  let mid = (lo +. hi) /. 2.0 in
  let b = Pareto.Frontier.interpolate hull ~power:mid in
  Alcotest.(check (float 1e-9)) "blend hits target power" mid
    (Pareto.Frontier.blend_power b);
  let d = Pareto.Frontier.blend_duration b in
  Alcotest.(check bool) "blend duration within hull range" true
    (d >= (Pareto.Frontier.fastest hull).Pareto.Point.duration -. 1e-12
    && d <= (Pareto.Frontier.slowest hull).Pareto.Point.duration +. 1e-12);
  (* weights sum to one *)
  let wsum = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 b in
  Alcotest.(check (float 1e-12)) "weights sum to 1" 1.0 wsum;
  (* clamping below/above *)
  let below = Pareto.Frontier.interpolate hull ~power:(lo -. 5.0) in
  Alcotest.(check (float 1e-9)) "clamped low" lo (Pareto.Frontier.blend_power below);
  let above = Pareto.Frontier.interpolate hull ~power:(hi +. 5.0) in
  Alcotest.(check (float 1e-9)) "clamped high" hi (Pareto.Frontier.blend_power above)

let test_rounding () =
  let hull = Pareto.Frontier.convex sock comd_like in
  let target = 38.0 in
  let near = Pareto.Frontier.round_nearest hull ~power:target in
  let down = Pareto.Frontier.round_down hull ~power:target in
  Alcotest.(check bool) "round_down within budget" true
    (down.Pareto.Point.power <= target +. 1e-9);
  Array.iter
    (fun (p : Pareto.Point.t) ->
      Alcotest.(check bool) "round_nearest is nearest" true
        (Float.abs (near.Pareto.Point.power -. target)
        <= Float.abs (p.power -. target) +. 1e-12))
    hull

(* Property: interpolation at a blend of two adjacent hull powers is never
   slower than either rounding (the LP's advantage over discrete). *)
let prop_blend_at_least_as_fast =
  QCheck.Test.make ~count:100 ~name:"blend at target power beats round_down"
    QCheck.(float_range 0.0 1.0)
    (fun u ->
      let hull = Pareto.Frontier.convex sock lulesh_like in
      let lo = Pareto.Frontier.min_power hull
      and hi = Pareto.Frontier.max_power hull in
      let target = lo +. (u *. (hi -. lo)) in
      let blend = Pareto.Frontier.interpolate hull ~power:target in
      let down = Pareto.Frontier.round_down hull ~power:target in
      Pareto.Frontier.blend_duration blend
      <= down.Pareto.Point.duration +. 1e-9)

let suite =
  [
    ( "pareto",
      [
        Alcotest.test_case "enumerate" `Quick test_enumerate_size;
        Alcotest.test_case "nondominated" `Quick test_pareto_nondominated;
        Alcotest.test_case "monotone frontier" `Quick test_pareto_monotone;
        Alcotest.test_case "convex hull convexity" `Quick test_convex_hull_is_convex;
        Alcotest.test_case "hull subset" `Quick test_hull_subset_of_pareto;
        Alcotest.test_case "table 1 shape" `Quick test_table1_shape;
        Alcotest.test_case "best under power" `Quick test_best_under_power;
        Alcotest.test_case "interpolation" `Quick test_interpolate_between_endpoints;
        Alcotest.test_case "rounding" `Quick test_rounding;
        QCheck_alcotest.to_alcotest prop_blend_at_least_as_fast;
      ] );
  ]
