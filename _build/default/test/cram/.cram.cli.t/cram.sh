  $ ../../bin/powerlim.exe --help=plain | head -3
  $ ../../bin/powerlim.exe trace --app comd --ranks 4 --iters 2 -o comd.trace
  $ ../../bin/powerlim.exe solve-trace comd.trace --cap 35
  $ ../../bin/powerlim.exe frontier --app comd | head -4
  $ ../../bin/powerlim.exe export --app comd --ranks 4 --iters 2 --cap 35 --mps comd.mps
  $ head -3 comd.mps
