lib/pareto/frontier.ml: Array Float Fmt List Machine Point
