lib/pareto/point.mli: Format Machine
