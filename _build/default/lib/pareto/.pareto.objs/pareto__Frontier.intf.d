lib/pareto/frontier.mli: Format Machine Point
