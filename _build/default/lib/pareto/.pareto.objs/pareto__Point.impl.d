lib/pareto/point.ml: Fmt Machine
