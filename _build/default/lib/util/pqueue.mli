(** Binary min-heap keyed by a float priority, shared by the MILP
    branch-and-bound (best-bound node selection) and the discrete-event
    simulator (event queue). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Smallest key first; ties in unspecified order. *)
