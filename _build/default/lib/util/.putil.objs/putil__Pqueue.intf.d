lib/util/pqueue.mli:
