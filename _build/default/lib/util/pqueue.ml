(** Binary min-heap keyed by a float priority, shared by the MILP
    branch-and-bound (best-bound node selection) and the discrete-event
    simulator (event queue). *)

type 'a t = {
  mutable size : int;
  mutable keys : float array;
  mutable data : 'a option array;
}

let create () = { size = 0; keys = Array.make 16 0.0; data = Array.make 16 None }
let is_empty h = h.size = 0
let length h = h.size

let grow h =
  if h.size = Array.length h.keys then begin
    let nk = Array.make (2 * h.size) 0.0 in
    let nd = Array.make (2 * h.size) None in
    Array.blit h.keys 0 nk 0 h.size;
    Array.blit h.data 0 nd 0 h.size;
    h.keys <- nk;
    h.data <- nd
  end

let swap h i j =
  let tk = h.keys.(i) and td = h.data.(i) in
  h.keys.(i) <- h.keys.(j);
  h.data.(i) <- h.data.(j);
  h.keys.(j) <- tk;
  h.data.(j) <- td

let push h k v =
  grow h;
  let i = ref h.size in
  h.size <- h.size + 1;
  h.keys.(!i) <- k;
  h.data.(!i) <- Some v;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.keys.(parent) > h.keys.(!i) then begin
      swap h parent !i;
      i := parent
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top_k = h.keys.(0) and top_v = h.data.(0) in
    h.size <- h.size - 1;
    h.keys.(0) <- h.keys.(h.size);
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
      if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap h !smallest !i;
        i := !smallest
      end
      else continue := false
    done;
    match top_v with Some v -> Some (top_k, v) | None -> assert false
  end
