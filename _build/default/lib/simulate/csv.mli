(** CSV export of simulation results (power traces, per-task records)
    for external plotting. *)

val trace_to_string : Engine.result -> string
val records_to_string : Dag.Graph.t -> Engine.result -> string
val trace_to_file : string -> Engine.result -> unit
val records_to_file : string -> Dag.Graph.t -> Engine.result -> unit
