(** Small statistics helpers over simulation results, used by the
    experiment harnesses (medians, per-iteration grouping, improvement
    percentages). *)

let median a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.median: empty";
  let s = Array.copy a in
  Array.sort compare s;
  if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 a /. Float.of_int n

let stddev a =
  let m = mean a in
  let n = Float.of_int (Array.length a) in
  sqrt (Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a /. n)

(** Speedup of [t] over [base] in percent: how much faster than the
    baseline, the metric of Figures 9-11 and 13-15. *)
let improvement_pct ~base ~t =
  if t <= 0.0 then invalid_arg "Stats.improvement_pct: nonpositive time";
  ((base /. t) -. 1.0) *. 100.0

(** Records of tasks from a given iteration (excluding zero-work MPI
    transitions). *)
let iteration_records (g : Dag.Graph.t) (r : Engine.result) ~iteration =
  Array.to_list r.Engine.records
  |> List.filter (fun (rc : Engine.task_record) ->
         let t = g.Dag.Graph.tasks.(rc.tid) in
         t.Dag.Graph.iteration = iteration
         && t.Dag.Graph.profile.Machine.Profile.work > 0.0)

(** Long-running task records (the paper's Figure 12 / Table 3 filter). *)
let long_records (r : Engine.result) ~min_duration =
  Array.to_list r.Engine.records
  |> List.filter (fun (rc : Engine.task_record) -> rc.duration >= min_duration)

(** Records grouped per rank, in start order. *)
let discard_iterations (g : Dag.Graph.t) (r : Engine.result) ~skip =
  Array.to_list r.Engine.records
  |> List.filter (fun (rc : Engine.task_record) ->
         g.Dag.Graph.tasks.(rc.tid).Dag.Graph.iteration >= skip)
