(** ASCII Gantt rendering of a simulation result: one row per rank, cells
    showing the thread count in use ('.' = waiting). *)

val render : ?width:int -> Dag.Graph.t -> Engine.result -> string
val print : ?width:int -> Dag.Graph.t -> Engine.result -> unit
