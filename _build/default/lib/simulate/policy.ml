(** Interface between the simulation engine and a power-allocation
    policy (Static, Conductor, LP-schedule replay, ...).

    The engine asks the policy for a configuration every time a task
    becomes ready, and feeds it an observation of the last iteration at
    every [MPI_Pcontrol] boundary — mirroring how the paper's runtime
    systems interpose on MPI. *)

type decide_ctx = {
  task : Dag.Graph.task;
  now : float;  (** simulation time at which the task starts *)
  prev : Pareto.Point.t option;
      (** configuration most recently used on this rank's socket *)
}

type decision = {
  blend : Pareto.Frontier.blend;
      (** configuration(s) to run; multi-segment blends model the paper's
          continuous case (mid-task configuration switching) *)
  overhead : float;  (** seconds charged before the task starts *)
}

type observation = {
  iteration : int;
  now : float;
  window : float;  (** wall time covered by this observation *)
  rank_busy : float array;  (** per-rank compute time in the window *)
  rank_power : float array;
      (** per-rank average socket power while computing in the window *)
}

type t = {
  name : string;
  decide : decide_ctx -> decision;
  observe : observation -> unit;  (** called at every pcontrol vertex *)
  pcontrol_overhead : float;
      (** synchronous cost charged at every pcontrol boundary (the
          paper's 566 us reallocation step for Conductor; 0 for Static) *)
}

(** Policy running every task at one fixed configuration point chosen per
    task; no runtime adaptation. *)
let of_point_fn name f =
  {
    name;
    decide = (fun ctx -> { blend = [ (f ctx, 1.0) ]; overhead = 0.0 });
    observe = ignore;
    pcontrol_overhead = 0.0;
  }
