(** Statistics helpers over simulation results, used by the experiment
    harnesses. *)

val median : float array -> float
val mean : float array -> float
val stddev : float array -> float

val improvement_pct : base:float -> t:float -> float
(** Speedup of [t] over [base] in percent ([(base/t - 1) * 100]), the
    metric of the paper's Figures 9-11 and 13-15. *)

val iteration_records :
  Dag.Graph.t -> Engine.result -> iteration:int -> Engine.task_record list
(** Records of one iteration's compute tasks (zero-work transitions
    excluded). *)

val long_records : Engine.result -> min_duration:float -> Engine.task_record list
(** Records of long tasks (the Figure 12 / Table 3 filter). *)

val discard_iterations :
  Dag.Graph.t -> Engine.result -> skip:int -> Engine.task_record list
(** Records from iterations [>= skip]. *)
