(** Interface between the simulation engine and a power-allocation
    policy (Static, Conductor, LP-schedule replay, ...). *)

type decide_ctx = {
  task : Dag.Graph.task;
  now : float;  (** simulation time at which the task starts *)
  prev : Pareto.Point.t option;
      (** configuration most recently used on this rank's socket *)
}

type decision = {
  blend : Pareto.Frontier.blend;
      (** configuration(s) to run; multi-segment blends model mid-task
          configuration switching (the paper's continuous case) *)
  overhead : float;  (** seconds charged before the task starts *)
}

type observation = {
  iteration : int;
  now : float;
  window : float;  (** wall time covered by this observation *)
  rank_busy : float array;  (** per-rank compute time in the window *)
  rank_power : float array;
      (** per-rank average socket power while computing in the window *)
}

type t = {
  name : string;
  decide : decide_ctx -> decision;
  observe : observation -> unit;  (** called at every pcontrol vertex *)
  pcontrol_overhead : float;
      (** synchronous cost charged at every pcontrol boundary *)
}

val of_point_fn : string -> (decide_ctx -> Pareto.Point.t) -> t
(** Policy running every task at one configuration point; no runtime
    adaptation, no overheads. *)
