lib/simulate/engine.mli: Dag Pareto Policy
