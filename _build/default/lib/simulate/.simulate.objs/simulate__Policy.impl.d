lib/simulate/policy.ml: Dag Pareto
