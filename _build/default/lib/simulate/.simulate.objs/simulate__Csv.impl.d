lib/simulate/csv.ml: Array Buffer Dag Engine Fun Machine Pareto Printf String
