lib/simulate/csv.mli: Dag Engine
