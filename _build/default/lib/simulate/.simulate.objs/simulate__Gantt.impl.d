lib/simulate/gantt.ml: Array Buffer Bytes Char Dag Engine Float Pareto Printf
