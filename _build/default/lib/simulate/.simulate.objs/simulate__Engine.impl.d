lib/simulate/engine.ml: Array Dag List Machine Pareto Policy Putil
