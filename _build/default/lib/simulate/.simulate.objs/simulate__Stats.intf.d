lib/simulate/stats.mli: Dag Engine
