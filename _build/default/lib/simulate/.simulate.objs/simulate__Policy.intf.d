lib/simulate/policy.mli: Dag Pareto
