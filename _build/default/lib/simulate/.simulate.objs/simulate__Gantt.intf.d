lib/simulate/gantt.mli: Dag Engine
