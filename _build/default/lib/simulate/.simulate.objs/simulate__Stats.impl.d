lib/simulate/stats.ml: Array Dag Engine Float List Machine
