(** ASCII Gantt rendering of a simulation result: one row per rank, time
    flowing left to right, each cell showing what the rank was doing —
    a terminal-friendly view of co-scheduling and slack. *)

(* Glyph for a task cell: digit = thread count (1-8); '.' = slack. *)
let glyph_for (rc : Engine.task_record) =
  let t = rc.point.Pareto.Point.threads in
  if t >= 0 && t <= 9 then Char.chr (Char.code '0' + t) else '#'

(** Render [r] into [width] columns.  Each row is
    ["r<rank> |<cells>|"]; a time scale and a power summary line are
    appended.  Zero-work tasks are not drawn. *)
let render ?(width = 72) (g : Dag.Graph.t) (r : Engine.result) : string =
  if width < 10 then invalid_arg "Gantt.render: width too small";
  let buf = Buffer.create 1024 in
  let span = r.Engine.makespan in
  if span <= 0.0 then "(empty schedule)\n"
  else begin
    let col_of t =
      min (width - 1) (int_of_float (Float.of_int width *. t /. span))
    in
    Array.iteri
      (fun rank seq ->
        let cells = Bytes.make width '.' in
        Array.iter
          (fun tid ->
            let rc = r.Engine.records.(tid) in
            if rc.duration > 0.0 then begin
              let c0 = col_of rc.start
              and c1 = col_of (rc.start +. rc.duration) in
              for c = c0 to max c0 (min (width - 1) c1) do
                Bytes.set cells c (glyph_for rc)
              done
            end)
          seq;
        Buffer.add_string buf
          (Printf.sprintf "r%-3d |%s|\n" rank (Bytes.to_string cells)))
      g.Dag.Graph.rank_tasks;
    (* time scale *)
    let marks = Bytes.make width ' ' in
    let n_marks = 4 in
    for k = 0 to n_marks do
      let c = min (width - 1) (k * (width - 1) / n_marks) in
      Bytes.set marks c '+'
    done;
    Buffer.add_string buf (Printf.sprintf "     %s\n" (Bytes.to_string marks));
    Buffer.add_string buf
      (Printf.sprintf
         "     0%*s  (cells: digit = thread count, '.' = waiting)\n"
         (width - 1)
         (Printf.sprintf "%.3fs" span));
    Buffer.add_string buf
      (Printf.sprintf "     max power %.1f W, avg %.1f W, energy %.1f kJ\n"
         r.Engine.max_power r.Engine.avg_power (r.Engine.energy /. 1e3));
    Buffer.contents buf
  end

let print ?width g r = print_string (render ?width g r)
