(** Dense two-phase tableau simplex.

    A deliberately simple reference implementation used as a differential
    oracle for {!Revised} and for tiny models.  General bounds are removed
    by preprocessing: finite lower bounds are shifted away, finite upper
    bounds become explicit rows, and free variables are split into
    positive and negative parts.  Pivoting uses Bland's rule, so the
    method terminates on every input at the price of speed. *)

type status = Optimal | Infeasible | Unbounded

type result = {
  status : status;
  objective : float;  (** meaningful only when [status = Optimal] *)
  x : float array;  (** values of the original structural variables *)
}

(* Preprocessed standard form: min cx, Ax sense b, x >= 0. *)
type std = {
  ncols : int;
  rows : (float array * Model.sense * float) list;
  cost : float array;
  (* recover.(j) describes original var j: (column of positive part,
     column of negative part or -1, shift); x_j = shift + x+ - x-. *)
  recover : (int * int * float) array;
}

let to_std (p : Model.problem) : std =
  let col = ref 0 in
  let recover =
    Array.init p.nv (fun j ->
        let lb = p.lb.(j) in
        if Float.is_finite lb then begin
          (* [lb, ub]: x = lb + x', x' >= 0 (ub handled by an extra row) *)
          let c = !col in
          incr col;
          (c, -1, lb)
        end
        else if Float.is_finite p.ub.(j) then begin
          (* (-inf, ub]: x = ub - x', x' >= 0 *)
          let c = !col in
          incr col;
          (-1, c, p.ub.(j))
        end
        else begin
          (* free: x = x+ - x- *)
          let cp = !col in
          let cn = !col + 1 in
          col := !col + 2;
          (cp, cn, 0.0)
        end)
  in
  let ncols = !col in
  let cost = Array.make ncols 0.0 in
  for j = 0 to p.nv - 1 do
    let cp, cn, _shift = recover.(j) in
    if cp >= 0 then cost.(cp) <- cost.(cp) +. p.obj.(j);
    if cn >= 0 then cost.(cn) <- cost.(cn) -. p.obj.(j)
  done;
  let rows = ref [] in
  for i = p.nr - 1 downto 0 do
    let coeffs = Array.make ncols 0.0 in
    let shift_sum = ref 0.0 in
    for j = 0 to p.nv - 1 do
      let a = ref 0.0 in
      Sparse.Csc.iter_col p.a j (fun r v -> if r = i then a := !a +. v);
      if !a <> 0.0 then begin
        let cp, cn, shift = recover.(j) in
        shift_sum := !shift_sum +. (!a *. shift);
        if cp >= 0 then coeffs.(cp) <- coeffs.(cp) +. !a;
        if cn >= 0 then coeffs.(cn) <- coeffs.(cn) -. !a
      end
    done;
    rows := (coeffs, p.row_sense.(i), p.row_rhs.(i) -. !shift_sum) :: !rows
  done;
  for j = 0 to p.nv - 1 do
    let cp, cn, shift = recover.(j) in
    if Float.is_finite p.ub.(j) && Float.is_finite p.lb.(j) then begin
      let coeffs = Array.make ncols 0.0 in
      if cp >= 0 then coeffs.(cp) <- 1.0;
      if cn >= 0 then coeffs.(cn) <- -1.0;
      rows := (coeffs, Model.Le, p.ub.(j) -. shift) :: !rows
    end
  done;
  { ncols; rows = !rows; cost; recover }

(* Tableau phase: minimize the cost row installed in [t.(m)].  Bland's
   rule; returns [false] when the phase detects an unbounded ray. *)
let run_phase (t : float array array) ~m ~n ~basis =
  let eps = 1e-9 in
  let rec loop iter =
    if iter > 200_000 then failwith "Dense_simplex: iteration limit";
    let enter = ref (-1) in
    (let j = ref 0 in
     while !enter < 0 && !j < n do
       if t.(m).(!j) < -.eps then enter := !j;
       incr j
     done);
    if !enter < 0 then true
    else begin
      let e = !enter in
      let leave = ref (-1) and best = ref Float.infinity in
      for i = 0 to m - 1 do
        if t.(i).(e) > eps then begin
          let r = t.(i).(n) /. t.(i).(e) in
          if
            r < !best -. eps
            || (r < !best +. eps && !leave >= 0 && basis.(i) < basis.(!leave))
          then begin
            best := r;
            leave := i
          end
        end
      done;
      if !leave < 0 then false
      else begin
        let l = !leave in
        let piv = t.(l).(e) in
        for j = 0 to n do
          t.(l).(j) <- t.(l).(j) /. piv
        done;
        for i = 0 to m do
          if i <> l && t.(i).(e) <> 0.0 then begin
            let f = t.(i).(e) in
            for j = 0 to n do
              t.(i).(j) <- t.(i).(j) -. (f *. t.(l).(j))
            done
          end
        done;
        basis.(l) <- e;
        loop (iter + 1)
      end
    end
  in
  loop 0

let solve_phase2 std (p : Model.problem) t ~m ~n ~basis : result =
  (* Install phase-2 costs, priced out against the current basis. *)
  for j = 0 to n do
    t.(m).(j) <- 0.0
  done;
  Array.blit std.cost 0 t.(m) 0 std.ncols;
  for i = 0 to m - 1 do
    let cb = if basis.(i) < std.ncols then std.cost.(basis.(i)) else 0.0 in
    if cb <> 0.0 then
      for j = 0 to n do
        t.(m).(j) <- t.(m).(j) -. (cb *. t.(i).(j))
      done
  done;
  if not (run_phase t ~m ~n ~basis) then
    {
      status = Unbounded;
      objective = Float.neg_infinity;
      x = Array.make p.nv 0.0;
    }
  else begin
    let xstd = Array.make std.ncols 0.0 in
    for i = 0 to m - 1 do
      if basis.(i) < std.ncols then xstd.(basis.(i)) <- t.(i).(n)
    done;
    let x =
      Array.init p.nv (fun j ->
          let cp, cn, shift = std.recover.(j) in
          if cp >= 0 && cn >= 0 then xstd.(cp) -. xstd.(cn)
          else if cp >= 0 then shift +. xstd.(cp)
          else shift -. xstd.(cn))
    in
    { status = Optimal; objective = Model.objective_value p x; x }
  end

let solve (p : Model.problem) : result =
  let std = to_std p in
  let rows = Array.of_list std.rows in
  let m = Array.length rows in
  (* Normalize rhs >= 0. *)
  let rows =
    Array.map
      (fun (co, s, b) ->
        if b < 0.0 then
          ( Array.map (fun v -> -.v) co,
            (match s with Model.Le -> Model.Ge | Ge -> Le | Eq -> Eq),
            -.b )
        else (co, s, b))
      rows
  in
  let nslack =
    Array.fold_left
      (fun acc (_, s, _) -> match s with Model.Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let nart =
    Array.fold_left
      (fun acc (_, s, _) -> match s with Model.Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let n = std.ncols + nslack + nart in
  let t = Array.make_matrix (m + 1) (n + 1) 0.0 in
  let basis = Array.make m 0 in
  let art_of_row = Array.make m (-1) in
  let sl = ref std.ncols and ar = ref (std.ncols + nslack) in
  Array.iteri
    (fun i (co, s, b) ->
      Array.blit co 0 t.(i) 0 std.ncols;
      t.(i).(n) <- b;
      match s with
      | Model.Le ->
          t.(i).(!sl) <- 1.0;
          basis.(i) <- !sl;
          incr sl
      | Model.Ge ->
          t.(i).(!sl) <- -1.0;
          incr sl;
          t.(i).(!ar) <- 1.0;
          basis.(i) <- !ar;
          art_of_row.(i) <- !ar;
          incr ar
      | Model.Eq ->
          t.(i).(!ar) <- 1.0;
          basis.(i) <- !ar;
          art_of_row.(i) <- !ar;
          incr ar)
    rows;
  if nart > 0 then begin
    (* Phase-1 cost row: reduced costs of (min sum of artificials). *)
    for i = 0 to m - 1 do
      if art_of_row.(i) >= 0 then
        for j = 0 to n do
          t.(m).(j) <- t.(m).(j) -. t.(i).(j)
        done
    done;
    for i = 0 to m - 1 do
      if art_of_row.(i) >= 0 then t.(m).(art_of_row.(i)) <- 0.0
    done;
    let _never_unbounded = run_phase t ~m ~n ~basis in
    if -.t.(m).(n) > 1e-6 then
      { status = Infeasible; objective = 0.0; x = Array.make p.nv 0.0 }
    else begin
      (* Remove artificials: zero their columns and pivot any still-basic
         artificial out of the basis (or verify its row is redundant). *)
      for i = 0 to m do
        for j = std.ncols + nslack to n - 1 do
          t.(i).(j) <- 0.0
        done
      done;
      for i = 0 to m - 1 do
        if basis.(i) >= std.ncols + nslack then begin
          let piv = ref (-1) in
          (let j = ref 0 in
           while !piv < 0 && !j < std.ncols + nslack do
             if Float.abs t.(i).(!j) > 1e-9 then piv := !j;
             incr j
           done);
          match !piv with
          | -1 -> () (* redundant all-zero row; harmless *)
          | e ->
              let d = t.(i).(e) in
              for j = 0 to n do
                t.(i).(j) <- t.(i).(j) /. d
              done;
              for r = 0 to m do
                if r <> i && t.(r).(e) <> 0.0 then begin
                  let f = t.(r).(e) in
                  for j = 0 to n do
                    t.(r).(j) <- t.(r).(j) -. (f *. t.(i).(j))
                  done
                end
              done;
              basis.(i) <- e
        end
      done;
      solve_phase2 std p t ~m ~n ~basis
    end
  end
  else solve_phase2 std p t ~m ~n ~basis
