(** LP / MILP model builder.

    A model is a set of bounded variables, linear constraints and a linear
    objective (always {e minimized}; negate coefficients to maximize).
    [compile] freezes the model into the array form consumed by the
    solvers. *)

type sense = Le | Ge | Eq

let pp_sense ppf = function
  | Le -> Fmt.string ppf "<="
  | Ge -> Fmt.string ppf ">="
  | Eq -> Fmt.string ppf "="

type var = int

type constr = {
  c_name : string;
  terms : (float * var) list;
  c_sense : sense;
  rhs : float;
}

type t = {
  mutable nvars : int;
  mutable v_names : string list;  (* reversed *)
  mutable v_lb : float list;
  mutable v_ub : float list;
  mutable v_obj : float list;
  mutable v_int : bool list;
  mutable constrs : constr list;  (* reversed *)
  mutable nconstrs : int;
}

type problem = {
  nv : int;  (** structural variables *)
  nr : int;  (** rows *)
  a : Sparse.Csc.t;  (** [nr] × [nv] constraint matrix *)
  lb : float array;
  ub : float array;
  obj : float array;
  row_sense : sense array;
  row_rhs : float array;
  integer : bool array;
  var_names : string array;
  row_names : string array;
}

let create () =
  {
    nvars = 0;
    v_names = [];
    v_lb = [];
    v_ub = [];
    v_obj = [];
    v_int = [];
    constrs = [];
    nconstrs = 0;
  }

let add_var t ?(lb = 0.0) ?(ub = Float.infinity) ?(obj = 0.0) ?(integer = false)
    name =
  if lb > ub then
    invalid_arg (Printf.sprintf "Model.add_var %s: lb %g > ub %g" name lb ub);
  let v = t.nvars in
  t.nvars <- v + 1;
  t.v_names <- name :: t.v_names;
  t.v_lb <- lb :: t.v_lb;
  t.v_ub <- ub :: t.v_ub;
  t.v_obj <- obj :: t.v_obj;
  t.v_int <- integer :: t.v_int;
  v

let add_constr t ?name terms sense rhs =
  let c_name =
    match name with Some n -> n | None -> Printf.sprintf "r%d" t.nconstrs
  in
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= t.nvars then invalid_arg "Model.add_constr: unknown var")
    terms;
  t.constrs <- { c_name; terms; c_sense = sense; rhs } :: t.constrs;
  t.nconstrs <- t.nconstrs + 1

let set_obj t v coeff =
  (* The objective lists are reversed: variable [v] lives at position
     [nvars - 1 - v]. *)
  let idx = t.nvars - 1 - v in
  t.v_obj <- List.mapi (fun i c -> if i = idx then coeff else c) t.v_obj

let nvars t = t.nvars
let nconstrs t = t.nconstrs

let compile t : problem =
  let nv = t.nvars and nr = t.nconstrs in
  let rev_arr of_list = Array.of_list (List.rev of_list) in
  let lb = rev_arr t.v_lb and ub = rev_arr t.v_ub in
  let obj = rev_arr t.v_obj in
  let integer = Array.of_list (List.rev t.v_int) in
  let var_names = Array.of_list (List.rev t.v_names) in
  let constrs = Array.of_list (List.rev t.constrs) in
  let coo = Sparse.Coo.create ~capacity:(4 * max 1 nr) () in
  let row_sense = Array.make nr Le and row_rhs = Array.make nr 0.0 in
  let row_names = Array.make nr "" in
  Array.iteri
    (fun i c ->
      row_sense.(i) <- c.c_sense;
      row_rhs.(i) <- c.rhs;
      row_names.(i) <- c.c_name;
      List.iter (fun (coef, v) -> Sparse.Coo.add coo i v coef) c.terms)
    constrs;
  let a = Sparse.Csc.of_coo ~nrows:nr ~ncols:nv coo in
  { nv; nr; a; lb; ub; obj; row_sense; row_rhs; integer; var_names; row_names }

(** Primal feasibility check of a candidate point against the original
    model (used by tests and by MILP incumbent screening). *)
let feasible ?(tol = 1e-6) (p : problem) (x : float array) =
  if Array.length x <> p.nv then false
  else begin
    let ok = ref true in
    for j = 0 to p.nv - 1 do
      if x.(j) < p.lb.(j) -. tol || x.(j) > p.ub.(j) +. tol then ok := false
    done;
    let act = Array.make p.nr 0.0 in
    Sparse.Csc.mult p.a x act;
    for i = 0 to p.nr - 1 do
      (match p.row_sense.(i) with
      | Le -> if act.(i) > p.row_rhs.(i) +. tol then ok := false
      | Ge -> if act.(i) < p.row_rhs.(i) -. tol then ok := false
      | Eq -> if Float.abs (act.(i) -. p.row_rhs.(i)) > tol then ok := false)
    done;
    !ok
  end

let objective_value (p : problem) (x : float array) =
  let s = ref 0.0 in
  for j = 0 to p.nv - 1 do
    s := !s +. (p.obj.(j) *. x.(j))
  done;
  !s
