(** Dense two-phase tableau simplex: a simple reference implementation
    used as a differential-testing oracle for {!Revised} and for tiny
    models.  Bland's rule guarantees termination; expect it to be slow on
    anything beyond a few dozen variables. *)

type status = Optimal | Infeasible | Unbounded

type result = {
  status : status;
  objective : float;  (** meaningful only when [status = Optimal] *)
  x : float array;  (** values of the original structural variables *)
}

val solve : Model.problem -> result
