(** Bounded-variable revised simplex with sparse basis factorization.

    Standard computational form: every row gets a slack variable
    ([a.x + s = b] with slack bounds encoding the row sense), so the
    constraint matrix is [[A | I]].  When the all-slack starting point is
    out of bounds, artificial variables restore feasibility and a phase-1
    objective (minimize the sum of artificials) is solved first.

    The basis is factorized with {!Lu} and updated between
    refactorizations with product-form (eta) updates.  Pricing is
    Dantzig's rule with an automatic switch to Bland's rule after a run of
    degenerate pivots; the ratio test is a two-pass Harris test. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

let pp_status ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Iter_limit -> Fmt.string ppf "iteration-limit"

type result = {
  status : status;
  objective : float;
  x : float array;  (** structural primal values, length [nv] *)
  y : float array;  (** row duals, length [nr] *)
  dj : float array;  (** structural reduced costs, length [nv] *)
  iterations : int;
}

type eta = { er : int; eidx : int array; evals : float array; edia : float }

let neg_inf = Float.neg_infinity
let inf = Float.infinity

(* Trivial path for models without constraints. *)
let solve_unconstrained (p : Model.problem) lo hi =
  let x = Array.make p.nv 0.0 in
  let status = ref Optimal in
  for j = 0 to p.nv - 1 do
    let c = p.obj.(j) in
    if c > 0.0 then
      if Float.is_finite lo.(j) then x.(j) <- lo.(j) else status := Unbounded
    else if c < 0.0 then
      if Float.is_finite hi.(j) then x.(j) <- hi.(j) else status := Unbounded
    else x.(j) <- (if Float.is_finite lo.(j) then lo.(j) else min hi.(j) 0.0)
  done;
  {
    status = !status;
    objective = Model.objective_value p x;
    x;
    y = [||];
    dj = Array.copy p.obj;
    iterations = 0;
  }

let solve ?(max_iter = 0) ?(feas_tol = 1e-7) ?(opt_tol = 1e-7) ?lb ?ub
    (p : Model.problem) : result =
  let nv = p.nv and m = p.nr in
  let lb_s = match lb with Some a -> a | None -> p.lb in
  let ub_s = match ub with Some a -> a | None -> p.ub in
  let max_iter = if max_iter > 0 then max_iter else 20_000 + (60 * m) in
  (* Column layout: 0..nv-1 structural, nv..nv+m-1 slacks, then
     artificials.  [ntot] grows as artificials are added. *)
  let cap = nv + m + m in
  let lo = Array.make cap 0.0 and hi = Array.make cap 0.0 in
  Array.blit lb_s 0 lo 0 nv;
  Array.blit ub_s 0 hi 0 nv;
  for i = 0 to m - 1 do
    let j = nv + i in
    match p.row_sense.(i) with
    | Model.Le ->
        lo.(j) <- 0.0;
        hi.(j) <- inf
    | Model.Ge ->
        lo.(j) <- neg_inf;
        hi.(j) <- 0.0
    | Model.Eq ->
        lo.(j) <- 0.0;
        hi.(j) <- 0.0
  done;
  if m = 0 then solve_unconstrained p lo hi
  else begin
    let nart = ref 0 in
    let art_row = Array.make m (-1) and art_sig = Array.make m 1.0 in
    let ntot () = nv + m + !nart in
    let col_iter j f =
      if j < nv then Sparse.Csc.iter_col p.a j f
      else if j < nv + m then f (j - nv) 1.0
      else f art_row.(j - nv - m) art_sig.(j - nv - m)
    in
    let col_dot j (y : float array) =
      if j < nv then Sparse.Csc.dot_col p.a j y
      else if j < nv + m then y.(j - nv)
      else art_sig.(j - nv - m) *. y.(art_row.(j - nv - m))
    in
    let where = Array.make cap (-1) in
    let nb_at = Array.make cap 'l' in
    let basis = Array.make m 0 in
    let x_basic = Array.make m 0.0 in
    let nbval j =
      match nb_at.(j) with
      | 'l' -> lo.(j)
      | 'u' -> hi.(j)
      | _ -> 0.0
    in
    (* Initial nonbasic statuses for structural columns. *)
    for j = 0 to nv - 1 do
      nb_at.(j) <-
        (if Float.is_finite lo.(j) then 'l'
         else if Float.is_finite hi.(j) then 'u'
         else 'f')
    done;
    (* Row activities of the nonbasic structural point. *)
    let act = Array.make m 0.0 in
    let x0 = Array.init nv nbval in
    Sparse.Csc.mult p.a x0 act;
    for i = 0 to m - 1 do
      let sj = nv + i in
      let sval = p.row_rhs.(i) -. act.(i) in
      if sval >= lo.(sj) -. feas_tol && sval <= hi.(sj) +. feas_tol then begin
        basis.(i) <- sj;
        where.(sj) <- i;
        x_basic.(i) <- sval
      end
      else begin
        let bound = if sval < lo.(sj) then lo.(sj) else hi.(sj) in
        nb_at.(sj) <- (if sval < lo.(sj) then 'l' else 'u');
        let r = sval -. bound in
        let k = !nart in
        incr nart;
        art_row.(k) <- i;
        art_sig.(k) <- (if r >= 0.0 then 1.0 else -1.0);
        let aj = nv + m + k in
        lo.(aj) <- 0.0;
        hi.(aj) <- inf;
        basis.(i) <- aj;
        where.(aj) <- i;
        x_basic.(i) <- Float.abs r
      end
    done;
    (* --- basis factorization machinery ------------------------------- *)
    let stats_on = Sys.getenv_opt "LP_STATS" <> None in
    let t_factor = ref 0.0
    and t_ftran = ref 0.0
    and t_btran = ref 0.0
    and t_price = ref 0.0
    and t_ratio = ref 0.0
    and lu_nnz_total = ref 0
    and n_factor = ref 0 in
    let clock () = if stats_on then Sys.time () else 0.0 in
    let lu = ref (Lu.factor ~m (fun k f -> col_iter basis.(k) f)) in
    let etas = ref [] (* newest first *) in
    let n_etas = ref 0 in
    let scratch = Array.make m 0.0 in
    let bwork = Array.make m 0.0 in
    let recompute_x_basic () =
      Array.blit p.row_rhs 0 bwork 0 m;
      for j = 0 to ntot () - 1 do
        if where.(j) < 0 then begin
          let v = nbval j in
          if v <> 0.0 then col_iter j (fun i a -> bwork.(i) <- bwork.(i) -. (a *. v))
        end
      done;
      Lu.solve !lu ~b:bwork ~x:x_basic ~scratch
    in
    let rec refactorize depth =
      if depth > 4 then failwith "Revised: unable to repair singular basis";
      let t0 = clock () in
      let f = Lu.factor ~m (fun k f -> col_iter basis.(k) f) in
      t_factor := !t_factor +. clock () -. t0;
      incr n_factor;
      lu_nnz_total := !lu_nnz_total + Lu.nnz f;
      etas := [];
      n_etas := 0;
      match f.Lu.replaced with
      | [] ->
          lu := f;
          recompute_x_basic ()
      | reps ->
          List.iter
            (fun (kpos, row) ->
              let old = basis.(kpos) in
              where.(old) <- -1;
              nb_at.(old) <-
                (if Float.is_finite lo.(old) then 'l'
                 else if Float.is_finite hi.(old) then 'u'
                 else 'f');
              let slack = nv + row in
              if where.(slack) >= 0 then
                failwith "Revised: basis repair failed (slack already basic)";
              basis.(kpos) <- slack;
              where.(slack) <- kpos)
            reps;
          refactorize (depth + 1)
    in
    refactorize 0;
    recompute_x_basic ();
    let ftran j (w : float array) =
      let t0 = clock () in
      Array.fill bwork 0 m 0.0;
      col_iter j (fun i v -> bwork.(i) <- bwork.(i) +. v);
      Lu.solve !lu ~b:bwork ~x:w ~scratch;
      List.iter
        (fun e ->
          let t = w.(e.er) in
          if t <> 0.0 then begin
            w.(e.er) <- e.edia *. t;
            for k = 0 to Array.length e.eidx - 1 do
              w.(e.eidx.(k)) <- w.(e.eidx.(k)) +. (e.evals.(k) *. t)
            done
          end)
        (List.rev !etas);
      t_ftran := !t_ftran +. clock () -. t0
    in
    let btran (cb : float array) (y : float array) =
      let t0 = clock () in
      (* Apply eta transposes newest-first, then the base factorization. *)
      List.iter
        (fun e ->
          let s = ref (e.edia *. cb.(e.er)) in
          for k = 0 to Array.length e.eidx - 1 do
            s := !s +. (e.evals.(k) *. cb.(e.eidx.(k)))
          done;
          cb.(e.er) <- !s)
        !etas;
      Lu.solve_t !lu ~c:cb ~y ~scratch;
      t_btran := !t_btran +. clock () -. t0
    in
    let push_eta (w : float array) r =
      let wr = w.(r) in
      let cnt = ref 0 in
      for k = 0 to m - 1 do
        if k <> r && Float.abs w.(k) > 1e-12 then incr cnt
      done;
      let eidx = Array.make !cnt 0 and evals = Array.make !cnt 0.0 in
      let at = ref 0 in
      for k = 0 to m - 1 do
        if k <> r && Float.abs w.(k) > 1e-12 then begin
          eidx.(!at) <- k;
          evals.(!at) <- -.w.(k) /. wr;
          incr at
        end
      done;
      etas := { er = r; eidx; evals; edia = 1.0 /. wr } :: !etas;
      incr n_etas
    in
    (* --- simplex iterations ------------------------------------------ *)
    let cost = Array.make cap 0.0 in
    let cb = Array.make m 0.0 in
    let y = Array.make m 0.0 in
    let w = Array.make m 0.0 in
    let iters = ref 0 in
    let bland = ref false in
    let degen = ref 0 in
    let price_cursor = ref 0 in
    (* Expensive per-pivot invariant check, enabled via LP_PARANOID. *)
    let paranoid = Sys.getenv_opt "LP_PARANOID" <> None in
    let check_invariants () =
      if paranoid then begin
        let saved = Array.copy x_basic in
        let saved_etas = !etas and saved_n = !n_etas and saved_lu = !lu in
        lu := Lu.factor ~m (fun k f -> col_iter basis.(k) f);
        etas := [];
        n_etas := 0;
        recompute_x_basic ();
        let drift = ref 0.0 in
        for k = 0 to m - 1 do
          let d = Float.abs (x_basic.(k) -. saved.(k)) in
          if d > !drift then drift := d
        done;
        if !drift > 1e-6 then begin
          (* residual of the incrementally maintained point: b - A x *)
          let res = Array.copy p.row_rhs in
          let sub j xv =
            if xv <> 0.0 then col_iter j (fun i a -> res.(i) <- res.(i) -. (a *. xv))
          in
          for j = 0 to ntot () - 1 do
            if where.(j) < 0 then sub j (nbval j)
          done;
          for k = 0 to m - 1 do
            sub basis.(k) saved.(k)
          done;
          let rmax = Array.fold_left (fun a v -> max a (Float.abs v)) 0.0 res in
          Printf.eprintf
            "LP_PARANOID: iter %d drift %g incremental-residual %g replaced %d\n%!"
            !iters !drift rmax
            (List.length !lu.Lu.replaced);
          (match Sys.getenv_opt "LP_DUMP_BASIS" with
          | Some path when not (Sys.file_exists path) ->
              let oc = open_out path in
              Printf.fprintf oc "%d\n" m;
              for k = 0 to m - 1 do
                col_iter basis.(k) (fun i v -> Printf.fprintf oc "%d %d %.17g\n" i k v)
              done;
              close_out oc
          | _ -> ())
        end;
        Array.blit saved 0 x_basic 0 m;
        etas := saved_etas;
        n_etas := saved_n;
        lu := saved_lu
      end
    in
    let run_phase () =
      let outcome = ref `Run in
      while !outcome = `Run do
        if !iters >= max_iter then outcome := `Iter_limit
        else begin
          incr iters;
          if !n_etas >= 64 then refactorize 0;
          for k = 0 to m - 1 do
            cb.(k) <- cost.(basis.(k))
          done;
          btran cb y;
          (* pricing *)
          let best_j = ref (-1) and best_mag = ref 0.0 and best_dir = ref 1.0 in
          let consider j d dir =
            let mag = Float.abs d in
            if !bland then begin
              if !best_j < 0 then begin
                best_j := j;
                best_mag := mag;
                best_dir := dir
              end
            end
            else if mag > !best_mag then begin
              best_j := j;
              best_mag := mag;
              best_dir := dir
            end
          in
          let tprice0 = clock () in
          let total = ntot () in
          (* Partial pricing: scan from a rotating cursor and stop once a
             window's worth of columns has been examined with at least
             one candidate in hand.  Optimality is still exact: the phase
             only ends after a full wrap finds no candidate.  Bland mode
             scans deterministically from column 0. *)
          let window = max 512 (total / 8) in
          if !bland then begin
            let j = ref 0 in
            while !j < total && !best_j < 0 do
              let jj = !j in
              if where.(jj) < 0 && lo.(jj) < hi.(jj) then begin
                let d = cost.(jj) -. col_dot jj y in
                let tol = opt_tol *. (1.0 +. Float.abs cost.(jj)) in
                match nb_at.(jj) with
                | 'l' -> if d < -.tol then consider jj d 1.0
                | 'u' -> if d > tol then consider jj d (-1.0)
                | _ ->
                    if d < -.tol then consider jj d 1.0
                    else if d > tol then consider jj d (-1.0)
              end;
              incr j
            done
          end
          else begin
            let scanned = ref 0 in
            while
              !scanned < total && not (!best_j >= 0 && !scanned >= window)
            do
              let jj = (!price_cursor + !scanned) mod total in
              if where.(jj) < 0 && lo.(jj) < hi.(jj) then begin
                let d = cost.(jj) -. col_dot jj y in
                let tol = opt_tol *. (1.0 +. Float.abs cost.(jj)) in
                match nb_at.(jj) with
                | 'l' -> if d < -.tol then consider jj d 1.0
                | 'u' -> if d > tol then consider jj d (-1.0)
                | _ ->
                    if d < -.tol then consider jj d 1.0
                    else if d > tol then consider jj d (-1.0)
              end;
              incr scanned
            done;
            if !best_j >= 0 then price_cursor := (!best_j + 1) mod total
          end;
          t_price := !t_price +. clock () -. tprice0;
          if !best_j < 0 then outcome := `Phase_done
          else begin
            let je = !best_j and s = !best_dir in
            ftran je w;
            let tratio0 = clock () in
            (* Two-pass Harris ratio test. *)
            let theta_max = ref inf in
            let t_flip =
              if Float.is_finite lo.(je) && Float.is_finite hi.(je) then
                hi.(je) -. lo.(je)
              else inf
            in
            for k = 0 to m - 1 do
              let delta = s *. w.(k) in
              if Float.abs delta > 1e-9 then begin
                let b = basis.(k) in
                if delta > 0.0 && Float.is_finite lo.(b) then begin
                  let slack = max 0.0 (x_basic.(k) -. lo.(b)) in
                  let r = (slack +. feas_tol) /. delta in
                  if r < !theta_max then theta_max := r
                end
                else if delta < 0.0 && Float.is_finite hi.(b) then begin
                  let slack = max 0.0 (hi.(b) -. x_basic.(k)) in
                  let r = (slack +. feas_tol) /. -.delta in
                  if r < !theta_max then theta_max := r
                end
              end
            done;
            if !theta_max = inf && t_flip = inf then outcome := `Unbounded
            else begin
              (* pass 2: among blocking candidates within theta_max pick
                 the largest pivot magnitude *)
              let leave = ref (-1) and lmag = ref 0.0 and lt = ref inf in
              for k = 0 to m - 1 do
                let delta = s *. w.(k) in
                if Float.abs delta > 1e-9 then begin
                  let b = basis.(k) in
                  let slack =
                    if delta > 0.0 && Float.is_finite lo.(b) then
                      Some (max 0.0 (x_basic.(k) -. lo.(b)))
                    else if delta < 0.0 && Float.is_finite hi.(b) then
                      Some (max 0.0 (hi.(b) -. x_basic.(k)))
                    else None
                  in
                  match slack with
                  | Some sl ->
                      let r = sl /. Float.abs delta in
                      if r <= !theta_max && Float.abs delta > !lmag then begin
                        leave := k;
                        lmag := Float.abs delta;
                        lt := r
                      end
                  | None -> ()
                end
              done;
              let t_leave = if !leave >= 0 then !lt else inf in
              if t_flip < t_leave then begin
                (* bound flip: no basis change *)
                for k = 0 to m - 1 do
                  x_basic.(k) <- x_basic.(k) -. (s *. t_flip *. w.(k))
                done;
                nb_at.(je) <- (if nb_at.(je) = 'l' then 'u' else 'l');
                if paranoid then
                  Printf.eprintf "LP_PARANOID: iter %d flip j=%d t=%g\n%!"
                    !iters je t_flip;
                check_invariants ();
                if t_flip <= 1e-10 then incr degen else degen := 0
              end
              else if !leave < 0 then outcome := `Unbounded
              else begin
                let r = !leave in
                let t = t_leave in
                for k = 0 to m - 1 do
                  x_basic.(k) <- x_basic.(k) -. (s *. t *. w.(k))
                done;
                let entering_val = nbval je +. (s *. t) in
                let leaving = basis.(r) in
                where.(leaving) <- -1;
                nb_at.(leaving) <- (if s *. w.(r) > 0.0 then 'l' else 'u');
                basis.(r) <- je;
                where.(je) <- r;
                x_basic.(r) <- entering_val;
                push_eta w r;
                check_invariants ();
                if t <= 1e-10 then incr degen else degen := 0
              end;
              if !degen > 200 + m then bland := true
              else if !degen = 0 then bland := false;
              t_ratio := !t_ratio +. clock () -. tratio0
            end
          end
        end
      done;
      !outcome
    in
    (* --- phase 1 ------------------------------------------------------ *)
    let status = ref Optimal in
    if !nart > 0 then begin
      for k = 0 to !nart - 1 do
        cost.(nv + m + k) <- 1.0
      done;
      (match run_phase () with
      | `Phase_done ->
          let infeas = ref 0.0 in
          for k = 0 to m - 1 do
            if basis.(k) >= nv + m then infeas := !infeas +. x_basic.(k)
          done;
          for k = 0 to !nart - 1 do
            let aj = nv + m + k in
            if where.(aj) < 0 then infeas := !infeas +. nbval aj
          done;
          if !infeas > 1e-6 then status := Infeasible
      | `Unbounded -> failwith "Revised: phase 1 unbounded (internal error)"
      | `Iter_limit -> status := Iter_limit
      | `Run -> assert false);
      (* Fix artificials at zero for phase 2. *)
      for k = 0 to !nart - 1 do
        let aj = nv + m + k in
        cost.(aj) <- 0.0;
        hi.(aj) <- 0.0;
        if where.(aj) < 0 then nb_at.(aj) <- 'l'
      done
    end;
    (* --- phase 2 ------------------------------------------------------ *)
    if !status = Optimal then begin
      Array.blit p.obj 0 cost 0 nv;
      bland := false;
      degen := 0;
      (match run_phase () with
      | `Phase_done -> ()
      | `Unbounded -> status := Unbounded
      | `Iter_limit -> status := Iter_limit
      | `Run -> assert false)
    end;
    (* --- extraction --------------------------------------------------- *)
    if stats_on then
      Printf.eprintf
        "LP_STATS: iters=%d factor=%.2fs (%d, avg nnz %d) ftran=%.2fs \
         btran=%.2fs price=%.2fs ratio+update=%.2fs etas_max=%d\n%!"
        !iters !t_factor !n_factor
        (if !n_factor > 0 then !lu_nnz_total / !n_factor else 0)
        !t_ftran !t_btran !t_price !t_ratio 64;
    let x = Array.make nv 0.0 in
    for j = 0 to nv - 1 do
      if where.(j) >= 0 then x.(j) <- x_basic.(where.(j)) else x.(j) <- nbval j
    done;
    for k = 0 to m - 1 do
      cb.(k) <- cost.(basis.(k))
    done;
    btran cb y;
    let dj = Array.init nv (fun j -> p.obj.(j) -. col_dot j y) in
    {
      status = !status;
      objective = Model.objective_value p x;
      x;
      y = Array.copy y;
      dj;
      iterations = !iters;
    }
  end
