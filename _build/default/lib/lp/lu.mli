(** Sparse LU factorization of a simplex basis.

    Left-looking column factorization in the style of Gilbert–Peierls,
    with two fill-control measures that matter enormously on LP bases:
    columns are pre-ordered sparsest-first, and pivots use threshold
    partial pivoting (sparsest row within 10x of the max magnitude).
    Singular columns are replaced by unit columns of uncovered rows so a
    usable factorization is always produced; callers repair their basis
    from [replaced]. *)

type t = {
  m : int;
  p : int array;  (** [p.(k)] = original row pivoted at step [k] *)
  pos : int array;  (** inverse of [p] *)
  cperm : int array;
      (** [cperm.(k)] = input column factored at step [k]; columns are
          pre-ordered sparsest-first to limit fill *)
  lrows : int array array;  (** strictly-lower entries per column, pivot order *)
  lvals : float array array;
  urows : int array array;  (** strictly-upper entries per column, pivot order *)
  uvals : float array array;
  udiag : float array;
  replaced : (int * int) list;
      (** [(col, row)]: basis column [col] was singular and stands
          replaced by the unit column of original row [row] *)
}

val nnz : t -> int
(** Stored entries in both factors (including unit diagonals). *)

val factor : m:int -> (int -> (int -> float -> unit) -> unit) -> t
(** [factor ~m col_iter] factorizes the [m]×[m] matrix whose [k]-th
    column is enumerated by [col_iter k f]. *)

val solve : t -> b:float array -> x:float array -> scratch:float array -> unit
(** Solve [B x = b].  [b] is indexed by original rows, [x] by basis
    position; [scratch] is caller-provided workspace.  All length [m]. *)

val solve_t :
  t -> c:float array -> y:float array -> scratch:float array -> unit
(** Solve [B^T y = c].  [c] is indexed by basis position, [y] by original
    rows. *)
