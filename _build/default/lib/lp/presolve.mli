(** LP presolve: fixed-variable substitution, empty/singleton-row
    elimination, doubleton-equality substitution and empty-column fixing,
    applied to fixpoint before the simplex.  See the implementation
    header for the reduction list. *)

type vstate =
  | Kept
  | Fixed of float
  | Subst of { of_var : int; scale : float; offset : float }
      (** var = offset + scale * of_var *)

type reduction = {
  problem : Model.problem;  (** the reduced problem *)
  keep_vars : int array;  (** reduced column -> original column *)
  state : vstate array;  (** per original column *)
  kept_rows : int array;  (** reduced row -> original row *)
  dropped_rows : int;
  dropped_cols : int;
  subst_order : int list;  (** substituted variables, oldest first *)
}

type outcome = Reduced of reduction | Proven_infeasible

val reduce : Model.problem -> outcome

val restore : reduction -> float array -> float array
(** Map a reduced-space solution back to the original variables. *)

val fixed_objective : Model.problem -> reduction -> float
(** Objective contribution of the variables presolve fixed outright. *)

val solve :
  ?max_iter:int -> ?feas_tol:float -> ?opt_tol:float -> Model.problem ->
  Revised.result
(** Presolve, solve the reduction with {!Revised}, restore.  A drop-in
    replacement for {!Revised.solve} on continuous models. *)
