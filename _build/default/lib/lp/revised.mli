(** Bounded-variable revised simplex with sparse basis factorization
    ({!Lu}) and product-form (eta) updates.

    Pricing is Dantzig's rule over a rotating partial-pricing window,
    with an automatic switch to (full-scan) Bland's rule after a run of
    degenerate pivots; the ratio test is a two-pass Harris test.
    Infeasible starting points are repaired by a phase-1 objective over
    artificial variables.

    Environment knobs: [LP_PARANOID] enables expensive per-pivot
    invariant checks (each pivot verified against a fresh factorization);
    [LP_DUMP_BASIS=<path>] dumps the first offending basis;
    [LP_STATS] prints a per-solve phase-time breakdown to stderr. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

val pp_status : Format.formatter -> status -> unit

type result = {
  status : status;
  objective : float;
  x : float array;  (** structural primal values, length [nv] *)
  y : float array;  (** row duals, length [nr] *)
  dj : float array;  (** structural reduced costs, length [nv] *)
  iterations : int;
}

val solve :
  ?max_iter:int ->
  ?feas_tol:float ->
  ?opt_tol:float ->
  ?lb:float array ->
  ?ub:float array ->
  Model.problem ->
  result
(** [solve p] minimizes [p].  [lb]/[ub] override the structural bounds
    without rebuilding the problem (used by branch and bound).
    [max_iter <= 0] selects a size-dependent default. *)
