(** Free-format MPS reader/writer: the solver-interchange format, so
    instances produced here can be cross-checked against external
    solvers.  Supported subset: NAME, ROWS (N/L/G/E), COLUMNS (with
    INTORG/INTEND markers), RHS, BOUNDS (UP LO FX FR MI PL BV UI LI),
    ENDATA.  RANGES is rejected. *)

exception Parse_error of int * string

val to_string : ?name:string -> Model.problem -> string
val to_file : ?name:string -> string -> Model.problem -> unit

val of_lines : string Seq.t -> Model.problem
(** Raises {!Parse_error} on malformed input. *)

val of_string : string -> Model.problem
val of_file : string -> Model.problem
