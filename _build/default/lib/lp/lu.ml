(** Sparse LU factorization of a simplex basis.

    Left-looking column factorization in the style of Gilbert–Peierls.
    The factorization of the row/column-permuted basis satisfies
    [P (B Pi_c) = L U] where [P] is the pivoting row permutation, [Pi_c]
    a sparsest-first column pre-ordering, [L] unit lower triangular and
    [U] upper triangular.  Row indices of the stored factors are in
    {e pivot order}, which makes the triangular solves straightforward;
    the column permutation is applied inside [solve]/[solve_t] so callers
    never see it.

    When the basis is (numerically) singular the offending columns are
    replaced by unit columns of uncovered rows so that a usable
    factorization is always produced; the caller inspects [replaced] and
    repairs its basis. *)

type t = {
  m : int;
  p : int array;  (** [p.(k)] = original row chosen as pivot at step [k] *)
  pos : int array;  (** inverse of [p] *)
  cperm : int array;
      (** [cperm.(k)] = input column factored at step [k]; columns are
          pre-ordered sparsest-first to limit fill *)
  lrows : int array array;  (** column [k] of [L] below diagonal, pivot-order rows *)
  lvals : float array array;
  urows : int array array;  (** column [k] of [U] above diagonal, pivot-order rows *)
  uvals : float array array;
  udiag : float array;
  replaced : (int * int) list;
      (** [(col, row)]: basis column [col] was singular and stands replaced
          by the unit column of original row [row]. *)
}

let nnz t =
  let s = ref t.m in
  Array.iter (fun a -> s := !s + Array.length a) t.lrows;
  Array.iter (fun a -> s := !s + Array.length a) t.urows;
  !s

(** Relative magnitude threshold for sparsity-driven pivoting: any row
    within this factor of the largest eligible magnitude may be chosen,
    and among those the sparsest row wins.  This is classic threshold
    partial pivoting; with pure magnitude pivoting, LP bases (which are
    nearly triangular but arbitrarily ordered) fill catastrophically. *)
let pivot_threshold = 0.1

(** [factor ~m col_iter] factorizes the [m]×[m] matrix whose [k]-th column
    is enumerated by [col_iter k f] (calling [f row value] for each
    entry). *)
let factor ~m col_iter0 =
  let pos = Array.make m (-1) in
  let p = Array.make m (-1) in
  (* static nonzero count per row and column of the input *)
  let rowcount = Array.make m 0 in
  let colcount = Array.make m 0 in
  for k = 0 to m - 1 do
    col_iter0 k (fun i v ->
        if v <> 0.0 then begin
          rowcount.(i) <- rowcount.(i) + 1;
          colcount.(k) <- colcount.(k) + 1
        end)
  done;
  (* factor sparsest columns first: a cheap fill-reducing ordering *)
  let cperm = Array.init m Fun.id in
  Array.sort
    (fun a b ->
      match compare colcount.(a) colcount.(b) with
      | 0 -> compare a b
      | c -> c)
    cperm;
  let col_iter k f = col_iter0 cperm.(k) f in
  let lrows = Array.make m [||] and lvals = Array.make m [||] in
  let urows = Array.make m [||] and uvals = Array.make m [||] in
  let udiag = Array.make m 0.0 in
  (* Dense workspace over original row indices.  [inwork] is the
     membership mark for [touched]: testing [work.(i) = 0.0] instead
     would re-register rows whose value cancelled exactly and later
     became nonzero again, duplicating factor entries. *)
  let work = Array.make m 0.0 in
  let inwork = Array.make m false in
  let touched = Array.make m 0 in
  let replaced = ref [] in
  (* L columns are built with original row indices first, then remapped to
     pivot order once all pivots are known. *)
  for k = 0 to m - 1 do
    let ntouch = ref 0 in
    let touch i =
      if not inwork.(i) then begin
        inwork.(i) <- true;
        touched.(!ntouch) <- i;
        incr ntouch
      end
    in
    let scatter i v =
      if v <> 0.0 then begin
        touch i;
        work.(i) <- work.(i) +. v
      end
    in
    col_iter k scatter;
    (* Eliminate with all previously factored columns, in pivot order. *)
    for j = 0 to k - 1 do
      let xj = work.(p.(j)) in
      if xj <> 0.0 then begin
        let rs = lrows.(j) and vs = lvals.(j) in
        for e = 0 to Array.length rs - 1 do
          let i = rs.(e) in
          touch i;
          work.(i) <- work.(i) -. (xj *. vs.(e))
        done
      end
    done;
    (* Threshold pivoting: among not-yet-pivoted rows within
       [pivot_threshold] of the max magnitude, take the sparsest. *)
    let pmag = ref 0.0 in
    for e = 0 to !ntouch - 1 do
      let i = touched.(e) in
      if pos.(i) < 0 then begin
        let a = Float.abs work.(i) in
        if a > !pmag then pmag := a
      end
    done;
    let piv = ref (-1) and pcount = ref max_int in
    if !pmag > 0.0 then begin
      let cutoff = pivot_threshold *. !pmag in
      for e = 0 to !ntouch - 1 do
        let i = touched.(e) in
        if pos.(i) < 0 && Float.abs work.(i) >= cutoff then
          if
            rowcount.(i) < !pcount
            || (rowcount.(i) = !pcount
               && !piv >= 0
               && Float.abs work.(i) > Float.abs work.(!piv))
          then begin
            piv := i;
            pcount := rowcount.(i)
          end
      done
    end;
    if !piv < 0 || !pmag < 1e-12 then begin
      (* Singular column: substitute the unit column of the first
         uncovered row.  Recorded so the caller can repair its basis. *)
      let r = ref 0 in
      while !r < m && pos.(!r) >= 0 do incr r done;
      assert (!r < m);
      p.(k) <- !r;
      pos.(!r) <- k;
      udiag.(k) <- 1.0;
      (* U column: entries of the original column at already-pivoted rows
         are dropped with the column itself. *)
      urows.(k) <- [||];
      uvals.(k) <- [||];
      lrows.(k) <- [||];
      lvals.(k) <- [||];
      replaced := (k, !r) :: !replaced
    end
    else begin
      let r = !piv in
      p.(k) <- r;
      pos.(r) <- k;
      let d = work.(r) in
      udiag.(k) <- d;
      (* Split workspace into U (pivoted rows) and L (unpivoted rows). *)
      let nu = ref 0 and nl = ref 0 in
      for e = 0 to !ntouch - 1 do
        let i = touched.(e) in
        if i <> r && work.(i) <> 0.0 then
          if pos.(i) >= 0 && pos.(i) < k then incr nu else incr nl
      done;
      let ur = Array.make !nu 0 and uv = Array.make !nu 0.0 in
      let lr = Array.make !nl 0 and lv = Array.make !nl 0.0 in
      let iu = ref 0 and il = ref 0 in
      for e = 0 to !ntouch - 1 do
        let i = touched.(e) in
        if i <> r && work.(i) <> 0.0 then
          if pos.(i) >= 0 && pos.(i) < k then begin
            ur.(!iu) <- pos.(i);
            uv.(!iu) <- work.(i);
            incr iu
          end
          else begin
            (* original row index for now; remapped below *)
            lr.(!il) <- i;
            lv.(!il) <- work.(i) /. d;
            incr il
          end
      done;
      urows.(k) <- ur;
      uvals.(k) <- uv;
      lrows.(k) <- lr;
      lvals.(k) <- lv
    end;
    (* Clear workspace. *)
    for e = 0 to !ntouch - 1 do
      work.(touched.(e)) <- 0.0;
      inwork.(touched.(e)) <- false
    done
  done;
  (* Remap L row indices from original rows to pivot order. *)
  for k = 0 to m - 1 do
    let rs = lrows.(k) in
    for e = 0 to Array.length rs - 1 do
      rs.(e) <- pos.(rs.(e))
    done
  done;
  (* [replaced] reports input-column indices *)
  let replaced = List.map (fun (k, r) -> (cperm.(k), r)) !replaced in
  { m; p; pos; cperm; lrows; lvals; urows; uvals; udiag; replaced }

(** [solve t b x] solves [B x = b].  [b] is indexed by original rows,
    [x] by basis position.  Both arrays have length [m]; [b] is not
    modified, [x] is overwritten.  A scratch array [scratch] of length [m]
    must be provided. *)
let solve t ~(b : float array) ~(x : float array) ~(scratch : float array) =
  let m = t.m in
  (* z = L^{-1} P b, computed in pivot order. *)
  for k = 0 to m - 1 do scratch.(k) <- b.(t.p.(k)) done;
  for k = 0 to m - 1 do
    let zk = scratch.(k) in
    if zk <> 0.0 then begin
      let rs = t.lrows.(k) and vs = t.lvals.(k) in
      for e = 0 to Array.length rs - 1 do
        scratch.(rs.(e)) <- scratch.(rs.(e)) -. (vs.(e) *. zk)
      done
    end
  done;
  (* Back substitution with column-stored U; results map back through
     the column pre-ordering. *)
  for k = m - 1 downto 0 do
    let xk = scratch.(k) /. t.udiag.(k) in
    x.(t.cperm.(k)) <- xk;
    if xk <> 0.0 then begin
      let rs = t.urows.(k) and vs = t.uvals.(k) in
      for e = 0 to Array.length rs - 1 do
        scratch.(rs.(e)) <- scratch.(rs.(e)) -. (vs.(e) *. xk)
      done
    end
  done

(** [solve_t t c y] solves [B^T y = c].  [c] is indexed by basis position,
    [y] by original rows. *)
let solve_t t ~(c : float array) ~(y : float array) ~(scratch : float array) =
  let m = t.m in
  (* U^T w = c: forward, gather form; the right-hand side maps through
     the column pre-ordering. *)
  for k = 0 to m - 1 do
    let acc = ref c.(t.cperm.(k)) in
    let rs = t.urows.(k) and vs = t.uvals.(k) in
    for e = 0 to Array.length rs - 1 do
      acc := !acc -. (vs.(e) *. scratch.(rs.(e)))
    done;
    scratch.(k) <- !acc /. t.udiag.(k)
  done;
  (* L^T v = w: backward, gather form (unit diagonal). *)
  for k = m - 1 downto 0 do
    let acc = ref scratch.(k) in
    let rs = t.lrows.(k) and vs = t.lvals.(k) in
    for e = 0 to Array.length rs - 1 do
      acc := !acc -. (vs.(e) *. scratch.(rs.(e)))
    done;
    scratch.(k) <- !acc
  done;
  for k = 0 to m - 1 do y.(t.p.(k)) <- scratch.(k) done
