lib/lp/milp.ml: Array Float Model Putil Revised
