lib/lp/model.mli: Format Sparse
