lib/lp/sparse.ml: Array
