lib/lp/lu.mli:
