lib/lp/lu.ml: Array Float Fun List
