lib/lp/model.ml: Array Float Fmt List Printf Sparse
