lib/lp/mps.ml: Array Buffer Float Fmt Fun Hashtbl List Model Printf Seq Sparse String
