lib/lp/mps.mli: Model Seq
