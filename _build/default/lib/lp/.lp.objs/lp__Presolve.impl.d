lib/lp/presolve.ml: Array Float Fun List Model Revised Sparse
