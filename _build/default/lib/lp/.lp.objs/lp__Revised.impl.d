lib/lp/revised.ml: Array Float Fmt List Lu Model Printf Sparse Sys
