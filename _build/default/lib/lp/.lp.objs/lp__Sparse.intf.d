lib/lp/sparse.mli:
