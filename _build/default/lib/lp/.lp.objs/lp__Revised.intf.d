lib/lp/revised.mli: Format Model
