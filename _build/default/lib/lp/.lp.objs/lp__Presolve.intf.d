lib/lp/presolve.mli: Model Revised
