lib/lp/dense_simplex.ml: Array Float Model Sparse
