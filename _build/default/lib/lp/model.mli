(** LP / MILP model builder.

    A model is a set of bounded variables, linear constraints and a
    linear objective (always {e minimized}; negate coefficients to
    maximize).  [compile] freezes it into the array form consumed by the
    solvers. *)

type sense = Le | Ge | Eq

val pp_sense : Format.formatter -> sense -> unit

type var = int
(** Variable handle, densely numbered from 0 in creation order. *)

type t

type problem = {
  nv : int;  (** structural variables *)
  nr : int;  (** rows *)
  a : Sparse.Csc.t;  (** [nr] × [nv] constraint matrix *)
  lb : float array;
  ub : float array;
  obj : float array;
  row_sense : sense array;
  row_rhs : float array;
  integer : bool array;
  var_names : string array;
  row_names : string array;
}

val create : unit -> t

val add_var :
  t -> ?lb:float -> ?ub:float -> ?obj:float -> ?integer:bool -> string -> var
(** New variable with bounds [lb, ub] (default [0, +inf)), objective
    coefficient [obj] (default 0) and integrality flag. *)

val add_constr : t -> ?name:string -> (float * var) list -> sense -> float -> unit
(** [add_constr t terms sense rhs] adds the row
    [sum terms (sense) rhs].  Duplicate variables in [terms] are summed at
    compile time. *)

val set_obj : t -> var -> float -> unit
(** Overwrite one variable's objective coefficient. *)

val nvars : t -> int
val nconstrs : t -> int
val compile : t -> problem

val feasible : ?tol:float -> problem -> float array -> bool
(** Primal feasibility of a candidate point (bounds and rows, within
    [tol]). *)

val objective_value : problem -> float array -> float
