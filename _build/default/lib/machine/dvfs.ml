(** DVFS frequency ladder of the simulated processor.

    Modeled on the Xeon E5-2670 sockets of the paper's Cab system: 15
    P-states from 1.2 GHz to 2.6 GHz in 0.1 GHz steps, selected at socket
    granularity. *)

let f_min = 1.2
let f_max = 2.6
let step = 0.1

(** All frequencies, ascending. *)
let ladder : float array =
  Array.init 15 (fun i -> f_min +. (step *. Float.of_int i))

let n_states = Array.length ladder

(** Highest ladder frequency [<= f], or [f_min] when [f] is below the
    ladder. *)
let floor_freq f =
  if f <= f_min then f_min
  else begin
    let best = ref f_min in
    Array.iter (fun g -> if g <= f +. 1e-9 && g > !best then best := g) ladder;
    !best
  end

(** Ladder frequency closest to [f]. *)
let nearest f =
  let best = ref ladder.(0) and d = ref Float.infinity in
  Array.iter
    (fun g ->
      let dd = Float.abs (g -. f) in
      if dd < !d then begin
        d := dd;
        best := g
      end)
    ladder;
  !best

let index_of f =
  let idx = ref (-1) in
  Array.iteri (fun i g -> if Float.abs (g -. f) < 1e-9 then idx := i) ladder;
  if !idx < 0 then invalid_arg (Printf.sprintf "Dvfs.index_of: %g not a P-state" f)
  else !idx

let is_state f = Array.exists (fun g -> Float.abs (g -. f) < 1e-9) ladder
