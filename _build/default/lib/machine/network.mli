(** Latency/bandwidth model of the interconnect (InfiniBand QDR-class),
    the linear message-cost model of the paper's DAG message edges. *)

type t = { alpha : float;  (** latency, s *) beta : float  (** s/byte *) }

val default : t

val transfer_time : ?net:t -> int -> float
(** Point-to-point cost of a message of the given size in bytes. *)

val collective_time : ?net:t -> ranks:int -> int -> float
(** Log-tree collective cost over [ranks] participants. *)
