(** Latency/bandwidth model of the interconnect (InfiniBand QDR-class).
    Message cost is the usual linear [alpha + bytes * beta] model the
    paper uses for its DAG message-edge weights. *)

type t = { alpha : float; (** latency, seconds *) beta : float (** s/byte *) }

let default = { alpha = 2.0e-6; beta = 1.0 /. 3.2e9 }

let transfer_time ?(net = default) bytes =
  if bytes < 0 then invalid_arg "Network.transfer_time: negative size";
  net.alpha +. (Float.of_int bytes *. net.beta)

(** Cost of a collective over [ranks] participants moving [bytes] per
    rank: log-tree latency term plus the serialized payload term. *)
let collective_time ?(net = default) ~ranks bytes =
  if ranks < 1 then invalid_arg "Network.collective_time: ranks < 1";
  let stages = Float.of_int (max 1 (int_of_float (ceil (Float.log2 (Float.of_int ranks))))) in
  (stages *. net.alpha) +. (Float.of_int bytes *. net.beta *. stages)
