(** Model of RAPL-style firmware power capping: selects the highest DVFS
    state fitting the cap, duty-cycling the clock below the lowest
    P-state.  Crucially (the limitation the paper's Static baseline
    inherits) it can never change the number of active threads. *)

type effective = {
  freq : float;  (** DVFS state selected (a ladder state) *)
  duty : float;  (** clock-modulation duty cycle in (0, 1]; 1 = none *)
  power : float;  (** predicted socket power under the cap *)
}

val min_duty : float
(** Hardware modulation floor (1/8 duty). *)

val operating_point :
  ?params:Socket.params ->
  Socket.t ->
  cap:float ->
  threads:int ->
  mem_bound:float ->
  effective

val duration : Profile.t -> effective -> threads:int -> float
(** Task duration under an operating point (modulation slows the whole
    task by [1 / duty]). *)

val relative_clock : effective -> float
(** Effective clock as a fraction of the maximum frequency. *)
