(** Model of RAPL-style firmware power capping.

    Given a socket power cap, the firmware selects the highest DVFS state
    whose predicted power fits under the cap.  Crucially — and this is the
    limitation the paper's Static baseline inherits — RAPL can only scale
    frequency (and, below the lowest P-state, duty-cycle clock
    modulation); it can never change the number of active threads.

    Clock modulation: when even the lowest P-state exceeds the cap, the
    core clock is duty-cycled.  The effective frequency is
    [f_min * duty] and the whole task (including its memory-bound
    portion) slows by [1 / duty]. *)

type effective = {
  freq : float;  (** DVFS state selected (a ladder state) *)
  duty : float;  (** clock-modulation duty cycle in (0, 1]; 1 = none *)
  power : float;  (** predicted socket power under the cap *)
}

let min_duty = 0.125 (* hardware modulation floor: 1/8 duty *)

(** Effective operating point for a socket asked to run [threads] cores
    on a task with memory-boundedness [mem_bound] under [cap] watts. *)
let operating_point ?(params = Socket.default_params) socket ~cap ~threads
    ~mem_bound =
  (* Highest ladder state fitting the cap. *)
  let chosen = ref None in
  Array.iter
    (fun f ->
      let p = Socket.power ~params socket ~freq:f ~threads ~mem_bound in
      if p <= cap +. 1e-9 then chosen := Some (f, p))
    Dvfs.ladder;
  match !chosen with
  | Some (freq, power) -> { freq; duty = 1.0; power }
  | None ->
      (* Duty-cycle at the lowest P-state.  Power above idle scales with
         the duty cycle. *)
      let f = Dvfs.f_min in
      let p_full = Socket.power ~params socket ~freq:f ~threads ~mem_bound in
      let dynamic = p_full -. params.Socket.idle_w in
      let duty =
        if dynamic <= 0.0 then 1.0
        else max min_duty (min 1.0 ((cap -. params.Socket.idle_w) /. dynamic))
      in
      {
        freq = f;
        duty;
        power = params.Socket.idle_w +. (duty *. dynamic);
      }

(** Duration of a task run under a RAPL operating point. *)
let duration profile eff_point ~threads =
  Profile.duration profile ~freq:eff_point.freq ~threads /. eff_point.duty

(** Effective clock as a fraction of the maximum frequency (the paper
    reports Static dropping to 22% of max clock under tight caps). *)
let relative_clock eff_point = eff_point.freq *. eff_point.duty /. Dvfs.f_max
