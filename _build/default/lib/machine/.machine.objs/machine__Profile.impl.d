lib/machine/profile.ml: Dvfs Float Fmt
