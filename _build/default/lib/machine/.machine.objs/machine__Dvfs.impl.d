lib/machine/dvfs.ml: Array Float Printf
