lib/machine/rapl.ml: Array Dvfs Profile Socket
