lib/machine/socket.ml: Array Dvfs Float Fmt Random
