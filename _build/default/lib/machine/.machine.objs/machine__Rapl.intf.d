lib/machine/rapl.mli: Profile Socket
