lib/machine/dvfs.mli:
