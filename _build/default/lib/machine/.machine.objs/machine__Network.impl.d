lib/machine/network.ml: Float
