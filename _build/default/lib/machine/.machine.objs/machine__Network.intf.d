lib/machine/network.mli:
