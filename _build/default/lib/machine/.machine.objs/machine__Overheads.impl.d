lib/machine/overheads.ml:
