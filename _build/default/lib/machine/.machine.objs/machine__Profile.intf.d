lib/machine/profile.mli: Format
