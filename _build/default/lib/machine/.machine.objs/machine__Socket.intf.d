lib/machine/socket.mli: Format
