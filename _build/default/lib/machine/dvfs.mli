(** DVFS frequency ladder of the simulated processor: 15 P-states from
    1.2 GHz to 2.6 GHz in 0.1 GHz steps, selected at socket granularity
    (modeled on the Xeon E5-2670 sockets of the paper's Cab system). *)

val f_min : float
val f_max : float
val step : float

val ladder : float array
(** All frequencies, ascending. *)

val n_states : int

val floor_freq : float -> float
(** Highest ladder frequency [<= f], or [f_min] below the ladder. *)

val nearest : float -> float
(** Ladder frequency closest to [f]. *)

val index_of : float -> int
(** Position of an exact P-state in {!ladder}; raises [Invalid_argument]
    for off-ladder values. *)

val is_state : float -> bool
