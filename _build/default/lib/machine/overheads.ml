(** Measured mechanism overheads from Section 6.2 of the paper, used as
    constants by the simulator so that runtime-system costs enter our
    results the same way they entered the paper's. *)

(** Profiler cost added to every instrumented MPI call (median). *)
let profiling_per_mpi_call = 34e-6

(** DVFS transition + logic when replaying an LP schedule (median,
    per configuration change). *)
let dvfs_transition = 145e-6

(** Conductor's per-task configuration-selection overhead (average). *)
let conductor_per_task = 17e-6

(** Synchronous power-reallocation step at an [MPI_Pcontrol] boundary
    (average, per invocation). *)
let reallocation_per_step = 566e-6

(** Replay skips a configuration change when the upcoming task is shorter
    than this threshold (Section 6.1). *)
let replay_min_task = 1e-3
