(** Conductor: adaptive configuration selection and power reallocation
    (Section 4.2 of the paper, after Marathe et al.).

    Two mechanisms run on top of per-rank power budgets:

    - {b Configuration selection}: each task runs the fastest
      Pareto-frontier configuration that fits its rank's current budget.
      During the initial exploration iterations the runtime behaves like
      Static (it is still measuring configurations); selection afterwards
      is imperfect — with probability [select_noise] a neighbouring,
      slower frontier point is chosen, modeling profile estimation error.
    - {b Power reallocation} (with an Adagio-style slack-reclamation
      step): at every [MPI_Pcontrol] boundary, the runtime estimates the
      critical rank from (noisy) busy-time measurements, shrinks the
      budgets of ranks with slack down to their observed use plus a
      headroom, and grants the freed watts to the estimated critical
      rank.

    The estimation noise is what separates the benchmarks in Section 6.4:
    with real imbalance (BT, LULESH) the signal dominates and Conductor
    tracks the LP; on balanced SP the noise dominates, budgets thrash,
    and Conductor lands {e below} Static.  Overheads are charged exactly
    as measured in Section 6.2 (17 us per configuration change, 566 us
    per reallocation). *)

type knobs = {
  explore_iters : int;  (** iterations spent profiling, Static-like *)
  gain : float;  (** fraction of donor headroom moved per step *)
  slack_close : float;
      (** fraction of its observed slack a donor is stretched into;
          1.0 = full just-in-time (aggressive, thrashes), lower values
          are conservative *)
  est_noise : float;  (** relative error on busy-time estimates *)
  select_noise : float;  (** probability of off-by-one config choice *)
  headroom_w : float;  (** watts a donor keeps above its observed use *)
  seed : int;
}

let default_knobs =
  {
    explore_iters = 3;
    gain = 0.5;
    slack_close = 0.6;
    est_noise = 0.012;
    select_noise = 0.05;
    headroom_w = 0.5;
    seed = 5;
  }

type state = {
  caps : float array;  (** current per-rank power budget *)
  rank_frontier : Pareto.Frontier.t array;
      (** representative (heaviest-task) frontier per rank, used to
          translate "finish this much later" into watts *)
  rng : Random.State.t;
  mutable steps : int;
}

let cap_floor = 19.0 (* below this no configuration fits; never starve *)

let decide (sc : Core.Scenario.t) (st : state) knobs
    (ctx : Simulate.Policy.decide_ctx) : Simulate.Policy.decision =
  let t = ctx.Simulate.Policy.task in
  let cap = st.caps.(t.rank) in
  let frontier = sc.Core.Scenario.frontiers.(t.tid) in
  let fallback () =
    (* budget below the frontier: RAPL throttles all eight cores *)
    [ (Static.point_for sc ~cap t, 1.0) ]
  in
  let blend =
    if Array.length frontier = 0 then fallback ()
    else if t.iteration >= 0 && t.iteration < knobs.explore_iters then
      (* exploration phase: still measuring, run the Static choice *)
      [ (Static.point_for sc ~cap t, 1.0) ]
    else begin
      match Pareto.Frontier.best_under_power frontier ~budget:cap with
      | None -> fallback ()
      | Some best ->
          (* imperfect profiles: occasionally pick the next-slower point *)
          let pick =
            if Random.State.float st.rng 1.0 < knobs.select_noise then begin
              let idx = ref 0 in
              Array.iteri
                (fun k (p : Pareto.Point.t) ->
                  if
                    p.Pareto.Point.freq = best.Pareto.Point.freq
                    && p.Pareto.Point.threads = best.Pareto.Point.threads
                  then idx := k)
                frontier;
              frontier.(max 0 (!idx - 1))
            end
            else best
          in
          [ (pick, 1.0) ]
    end
  in
  let switch =
    match (ctx.Simulate.Policy.prev, blend) with
    | Some prev, (p, _) :: _ ->
        prev.Pareto.Point.freq <> p.Pareto.Point.freq
        || prev.Pareto.Point.threads <> p.Pareto.Point.threads
    | _ -> false
  in
  {
    Simulate.Policy.blend;
    overhead = (if switch then Machine.Overheads.conductor_per_task else 0.0);
  }

(* Highest power any task of [rank] could usefully consume. *)
let rank_cap_max (sc : Core.Scenario.t) rank =
  let worst = ref 0.0 in
  Array.iteri
    (fun tid f ->
      if
        Array.length f > 0
        && sc.Core.Scenario.graph.Dag.Graph.tasks.(tid).Dag.Graph.rank = rank
      then worst := max !worst (Pareto.Frontier.max_power f))
    sc.Core.Scenario.frontiers;
  !worst

let observe (sc : Core.Scenario.t) (st : state) knobs ~job_cap
    (obs : Simulate.Policy.observation) =
  ignore job_cap;
  st.steps <- st.steps + 1;
  if obs.Simulate.Policy.iteration >= knobs.explore_iters - 1 then begin
    let n = Array.length st.caps in
    let window = obs.Simulate.Policy.window in
    if window > 0.0 then begin
      (* noisy busy-time estimates drive critical-path identification *)
      let est =
        Array.map
          (fun b ->
            b
            *. (1.0
               +. (knobs.est_noise *. (Random.State.float st.rng 2.0 -. 1.0))))
          obs.Simulate.Policy.rank_busy
      in
      let mean = Array.fold_left ( +. ) 0.0 est /. Float.of_int n in
      (* Adagio step: ranks finishing early are stretched toward the
         mean busy time (aiming at the old window instead would
         overshoot: the critical rank speeds up at the same moment, and
         yesterday's donors become tomorrow's stragglers).  Power above
         the stretched operating point is freed. *)
      let freed = ref 0.0 in
      for r = 0 to n - 1 do
        let slack_frac = 1.0 -. (est.(r) /. window) in
        if slack_frac > 0.02 && est.(r) < mean then begin
          let used = obs.Simulate.Policy.rank_power.(r) in
          let target =
            let f = st.rank_frontier.(r) in
            if Array.length f = 0 then used
            else begin
              (* slide along the rank's profiled frontier: find the power
                 at which the rank would finish just in time *)
              let d_now = Pareto.Frontier.duration_at_power f ~power:used in
              let stretch =
                1.0 +. (knobs.slack_close *. ((mean /. est.(r)) -. 1.0))
              in
              let d_allowed = d_now *. stretch in
              Pareto.Frontier.power_for_duration f ~duration:d_allowed
              +. knobs.headroom_w
            end
          in
          let target = max cap_floor target in
          if st.caps.(r) > target then begin
            let give = knobs.gain *. (st.caps.(r) -. target) in
            st.caps.(r) <- st.caps.(r) -. give;
            freed := !freed +. give
          end
        end
      done;
      (* grant freed watts to ranks above the mean, weighted by their
         estimated excess, bounded by what each can absorb *)
      let excess = Array.map (fun e -> max 0.0 (e -. mean)) est in
      let total_excess = Array.fold_left ( +. ) 0.0 excess in
      let leftover = ref 0.0 in
      if total_excess > 0.0 && !freed > 0.0 then
        for r = 0 to n - 1 do
          if excess.(r) > 0.0 then begin
            let want = !freed *. excess.(r) /. total_excess in
            let cap_max = rank_cap_max sc r in
            let cap_max = if cap_max > 0.0 then cap_max else st.caps.(r) in
            let grant = min want (max 0.0 (cap_max -. st.caps.(r))) in
            st.caps.(r) <- st.caps.(r) +. grant;
            leftover := !leftover +. (want -. grant)
          end
        done
      else leftover := !freed;
      (* watts nobody could absorb return uniformly *)
      if !leftover > 1e-9 then begin
        let share = !leftover /. Float.of_int n in
        for r = 0 to n - 1 do
          st.caps.(r) <- st.caps.(r) +. share
        done
      end
    end
  end

(** Conductor policy under [job_cap] watts for the whole job. *)
let policy ?(knobs = default_knobs) (sc : Core.Scenario.t) ~job_cap :
    Simulate.Policy.t =
  let n = sc.Core.Scenario.graph.Dag.Graph.nranks in
  let rank_frontier =
    let best_work = Array.make n 0.0 in
    let fr = Array.make n [||] in
    Array.iteri
      (fun tid (t : Dag.Graph.task) ->
        let w = t.profile.Machine.Profile.work in
        if w > best_work.(t.rank) then begin
          best_work.(t.rank) <- w;
          fr.(t.rank) <- sc.Core.Scenario.frontiers.(tid)
        end)
      sc.Core.Scenario.graph.Dag.Graph.tasks;
    fr
  in
  let st =
    {
      caps = Array.make n (job_cap /. Float.of_int n);
      rank_frontier;
      rng = Random.State.make [| knobs.seed; 0xc0d |];
      steps = 0;
    }
  in
  {
    Simulate.Policy.name = "conductor";
    decide = decide sc st knobs;
    observe = observe sc st knobs ~job_cap;
    pcontrol_overhead = Machine.Overheads.reallocation_per_step;
  }

(** Run an application under Conductor. *)
let run ?knobs (sc : Core.Scenario.t) ~job_cap =
  Simulate.Engine.run sc.Core.Scenario.graph (policy ?knobs sc ~job_cap)
