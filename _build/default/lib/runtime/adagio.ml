(** Adagio-style slack reclamation (Rountree et al., referenced in
    Section 4.2): each task is slowed to arrive "just in time", using the
    slack it showed in the previous iteration, without any job-level
    power budget.  Adagio is an energy saver rather than a power capper;
    it is included both as the first step of Conductor's pipeline and as
    a standalone policy for ablation studies. *)

type state = {
  (* slack observed for (rank, label) task classes in the last iteration *)
  slack : (int * string, float) Hashtbl.t;
  durations : (int * string, float) Hashtbl.t;
}

(** Policy: first run of a task class executes flat out; later runs pick
    the most frugal frontier point that stays within observed duration +
    slack. *)
let policy (sc : Core.Scenario.t) : Simulate.Policy.t =
  let st = { slack = Hashtbl.create 64; durations = Hashtbl.create 64 } in
  (* Pre-compute per-class slack from the unconstrained schedule: Adagio's
     online estimate converges to exactly this after one iteration. *)
  let init = Core.Event_lp.initial_times sc in
  let dur t = Core.Scenario.fastest_duration sc t.Dag.Graph.tid in
  let slacks = Dag.Schedule.task_slack sc.Core.Scenario.graph init ~dur in
  Array.iteri
    (fun tid (t : Dag.Graph.task) ->
      if t.profile.Machine.Profile.work > 0.0 then begin
        let key = (t.rank, t.label) in
        (* keep the smallest slack seen for the class: conservative *)
        let s = slacks.(tid) in
        (match Hashtbl.find_opt st.slack key with
        | Some old when old <= s -> ()
        | _ -> Hashtbl.replace st.slack key s);
        Hashtbl.replace st.durations key (dur t)
      end)
    sc.Core.Scenario.graph.Dag.Graph.tasks;
  let decide (ctx : Simulate.Policy.decide_ctx) =
    let t = ctx.Simulate.Policy.task in
    let frontier = sc.Core.Scenario.frontiers.(t.tid) in
    if Array.length frontier = 0 then
      { Simulate.Policy.blend = [ (Static.point_for sc ~cap:1e9 t, 1.0) ];
        overhead = 0.0 }
    else begin
      let fast = Pareto.Frontier.fastest frontier in
      let key = (t.rank, t.label) in
      let budget_time =
        match
          (t.iteration > 0, Hashtbl.find_opt st.slack key,
           Hashtbl.find_opt st.durations key)
        with
        | true, Some s, Some d when s > 0.0 -> d +. s
        | _ -> fast.Pareto.Point.duration
      in
      (* slowest point still meeting the deadline *)
      let pick = ref fast in
      Array.iter
        (fun (p : Pareto.Point.t) ->
          if
            p.Pareto.Point.duration <= budget_time +. 1e-9
            && p.Pareto.Point.power < !pick.Pareto.Point.power
          then pick := p)
        frontier;
      { Simulate.Policy.blend = [ (!pick, 1.0) ]; overhead = 0.0 }
    end
  in
  {
    Simulate.Policy.name = "adagio";
    decide;
    observe = ignore;
    pcontrol_overhead = 0.0;
  }

let run (sc : Core.Scenario.t) =
  Simulate.Engine.run sc.Core.Scenario.graph (policy sc)
