(** Conductor: adaptive configuration selection and power reallocation
    (paper Section 4.2).  Per-rank power budgets are adjusted at every
    [MPI_Pcontrol] boundary: ranks with slack are stretched toward the
    mean busy time (an Adagio-style step) and the freed watts go to the
    ranks estimated critical.  Estimation noise makes the difference
    between tracking the LP (imbalanced applications) and thrashing below
    Static (balanced SP), as in paper Section 6.4. *)

type knobs = {
  explore_iters : int;  (** iterations spent profiling, Static-like *)
  gain : float;  (** fraction of donor headroom moved per step *)
  slack_close : float;
      (** fraction of observed slack a donor is stretched into; 1.0 =
          aggressive just-in-time *)
  est_noise : float;  (** relative error on busy-time estimates *)
  select_noise : float;  (** probability of off-by-one config choice *)
  headroom_w : float;  (** watts a donor keeps above its stretched need *)
  seed : int;
}

val default_knobs : knobs
val policy : ?knobs:knobs -> Core.Scenario.t -> job_cap:float -> Simulate.Policy.t
val run : ?knobs:knobs -> Core.Scenario.t -> job_cap:float -> Simulate.Engine.result
