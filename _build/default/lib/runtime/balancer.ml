(** A GEOPM-style load-proportional power balancer — an extension beyond
    the paper, included because it is the approach mainstream open-source
    runtimes take and it makes an instructive third comparison point.

    Unlike Conductor, which estimates the critical path and moves watts
    toward it through an Adagio step, the balancer simply re-divides the
    job budget in proportion to each rank's observed compute time
    (heavier ranks get more watts), smoothed by [gain].  Configuration
    selection is the same frontier lookup Conductor uses, without
    selection noise.  It captures most of Conductor's win on imbalanced
    applications while being far simpler — and, like Conductor, it cannot
    beat the LP bound. *)

type knobs = {
  explore_iters : int;
  gain : float;  (** smoothing of the proportional update, in (0, 1] *)
  seed : int;
}

let default_knobs = { explore_iters = 3; gain = 0.7; seed = 9 }

type state = { caps : float array }

let cap_floor = 19.0

let decide (sc : Core.Scenario.t) (st : state) knobs
    (ctx : Simulate.Policy.decide_ctx) : Simulate.Policy.decision =
  let t = ctx.Simulate.Policy.task in
  let cap = st.caps.(t.rank) in
  let frontier = sc.Core.Scenario.frontiers.(t.tid) in
  let blend =
    if
      Array.length frontier = 0
      || (t.iteration >= 0 && t.iteration < knobs.explore_iters)
    then [ (Static.point_for sc ~cap t, 1.0) ]
    else
      match Pareto.Frontier.best_under_power frontier ~budget:cap with
      | Some p -> [ (p, 1.0) ]
      | None -> [ (Static.point_for sc ~cap t, 1.0) ]
  in
  let switch =
    match (ctx.Simulate.Policy.prev, blend) with
    | Some prev, (p, _) :: _ ->
        prev.Pareto.Point.freq <> p.Pareto.Point.freq
        || prev.Pareto.Point.threads <> p.Pareto.Point.threads
    | _ -> false
  in
  {
    Simulate.Policy.blend;
    overhead = (if switch then Machine.Overheads.conductor_per_task else 0.0);
  }

let observe (st : state) knobs ~job_cap (obs : Simulate.Policy.observation) =
  if obs.Simulate.Policy.iteration >= knobs.explore_iters - 1 then begin
    let n = Array.length st.caps in
    let total_busy = Array.fold_left ( +. ) 0.0 obs.Simulate.Policy.rank_busy in
    if total_busy > 0.0 then begin
      (* proportional target, floored, then renormalized to the budget *)
      let target =
        Array.map
          (fun b -> max cap_floor (job_cap *. b /. total_busy))
          obs.Simulate.Policy.rank_busy
      in
      let tsum = Array.fold_left ( +. ) 0.0 target in
      let scale = job_cap /. tsum in
      for r = 0 to n - 1 do
        let t = max cap_floor (target.(r) *. scale) in
        st.caps.(r) <- st.caps.(r) +. (knobs.gain *. (t -. st.caps.(r)))
      done;
      (* keep the invariant sum(caps) <= job_cap despite the floor *)
      let s = Array.fold_left ( +. ) 0.0 st.caps in
      if s > job_cap then begin
        let shrink = job_cap /. s in
        for r = 0 to n - 1 do
          st.caps.(r) <- st.caps.(r) *. shrink
        done
      end
    end
  end

let policy ?(knobs = default_knobs) (sc : Core.Scenario.t) ~job_cap :
    Simulate.Policy.t =
  let n = sc.Core.Scenario.graph.Dag.Graph.nranks in
  let st = { caps = Array.make n (job_cap /. Float.of_int n) } in
  {
    Simulate.Policy.name = "balancer";
    decide = decide sc st knobs;
    observe = observe st knobs ~job_cap;
    pcontrol_overhead = Machine.Overheads.reallocation_per_step;
  }

let run ?knobs (sc : Core.Scenario.t) ~job_cap =
  Simulate.Engine.run sc.Core.Scenario.graph (policy ?knobs sc ~job_cap)
