(** Static: fixed, uniform power allocation (Section 4.1).

    The job-level budget is split evenly across sockets and enforced by
    the RAPL model.  Because RAPL lives in firmware it can only scale
    frequency (and duty-cycle below the lowest P-state); thread count
    stays pinned at all eight cores — the paper's de-facto-standard
    baseline. *)

let point_for (sc : Core.Scenario.t) ~cap (t : Dag.Graph.task) :
    Pareto.Point.t =
  let threads = Machine.Socket.default_params.Machine.Socket.cores in
  let socket = sc.Core.Scenario.sockets.(t.rank) in
  let mem_bound = t.profile.Machine.Profile.mem_bound in
  let op = Machine.Rapl.operating_point socket ~cap ~threads ~mem_bound in
  {
    Pareto.Point.freq = op.Machine.Rapl.freq *. op.Machine.Rapl.duty;
    threads;
    duration = Machine.Rapl.duration t.profile op ~threads;
    power = op.Machine.Rapl.power;
  }

(** Static policy under [job_cap] watts for the whole job. *)
let policy (sc : Core.Scenario.t) ~job_cap : Simulate.Policy.t =
  let cap = job_cap /. Float.of_int sc.Core.Scenario.graph.Dag.Graph.nranks in
  Simulate.Policy.of_point_fn "static"
    (fun (ctx : Simulate.Policy.decide_ctx) ->
      point_for sc ~cap ctx.Simulate.Policy.task)

(** Run an application under Static and return the simulation result. *)
let run (sc : Core.Scenario.t) ~job_cap =
  Simulate.Engine.run sc.Core.Scenario.graph (policy sc ~job_cap)
