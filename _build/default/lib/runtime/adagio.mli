(** Adagio-style slack reclamation (referenced in paper Section 4.2):
    tasks are slowed to arrive just in time using last iteration's slack,
    without any job-level power budget.  An energy saver rather than a
    power capper; included as the first step of Conductor's pipeline and
    for ablation studies. *)

val policy : Core.Scenario.t -> Simulate.Policy.t
val run : Core.Scenario.t -> Simulate.Engine.result
