lib/runtime/conductor.mli: Core Simulate
