lib/runtime/adagio.ml: Array Core Dag Hashtbl Machine Pareto Simulate Static
