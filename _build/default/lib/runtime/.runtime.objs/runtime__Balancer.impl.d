lib/runtime/balancer.ml: Array Core Dag Float Machine Pareto Simulate Static
