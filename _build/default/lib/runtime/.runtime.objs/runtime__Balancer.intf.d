lib/runtime/balancer.mli: Core Simulate
