lib/runtime/static.mli: Core Dag Pareto Simulate
