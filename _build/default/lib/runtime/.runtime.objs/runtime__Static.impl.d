lib/runtime/static.ml: Array Core Dag Float Machine Pareto Simulate
