lib/runtime/conductor.ml: Array Core Dag Float Machine Pareto Random Simulate Static
