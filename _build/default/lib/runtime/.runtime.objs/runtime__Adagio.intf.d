lib/runtime/adagio.mli: Core Simulate
