(** GEOPM-style load-proportional power balancer (extension beyond the
    paper): re-divides the job budget in proportion to observed per-rank
    compute time at every pcontrol boundary.  A simpler third comparison
    point between Static and Conductor. *)

type knobs = {
  explore_iters : int;
  gain : float;  (** smoothing of the proportional update, in (0, 1] *)
  seed : int;
}

val default_knobs : knobs
val policy : ?knobs:knobs -> Core.Scenario.t -> job_cap:float -> Simulate.Policy.t
val run : ?knobs:knobs -> Core.Scenario.t -> job_cap:float -> Simulate.Engine.result
