(** Static: fixed, uniform power allocation (paper Section 4.1).  The
    job budget splits evenly across sockets and is enforced by the RAPL
    model, which can only scale frequency — threads stay pinned at all
    eight cores. *)

val point_for : Core.Scenario.t -> cap:float -> Dag.Graph.task -> Pareto.Point.t
(** RAPL operating point for one task under a per-socket cap. *)

val policy : Core.Scenario.t -> job_cap:float -> Simulate.Policy.t
val run : Core.Scenario.t -> job_cap:float -> Simulate.Engine.result
