(** Synthetic trace generators reproducing the communication structure
    and performance-relevant properties of the paper's four benchmarks
    (Sections 5.2 and 6.4), plus the 2-rank asynchronous exchange used to
    compare the formulations (Figure 8) and a random generator for
    property tests. *)

type params = {
  nranks : int;
  iterations : int;
  seed : int;
  scale : float;  (** multiplies all task work; 1.0 = calibrated default *)
}

val default_params : params

type app = CoMD | LULESH | SP | BT

val app_name : app -> string
val all_apps : app list

val app_of_name : string -> app
(** Case-insensitive; raises [Invalid_argument] on unknown names. *)

val comd : params -> Dag.Graph.t
(** All-collective molecular dynamics with mild persistent imbalance. *)

val lulesh : params -> Dag.Graph.t
(** Shock hydrodynamics: halo exchanges between collectives and cache
    contention that makes 4-5 threads optimal (Table 3). *)

val sp : params -> Dag.Graph.t
(** Well-balanced NAS-MZ pentadiagonal solver: little LP headroom. *)

val bt : params -> Dag.Graph.t
(** NAS-MZ block-tridiagonal solver with zonal imbalance: a minority of
    ranks carries ~2.4x the work. *)

val generate : app -> params -> Dag.Graph.t

val exchange : ?rounds:int -> ?scale:float -> unit -> Dag.Graph.t
(** Two-rank asynchronous message exchange (paper Figure 2), small enough
    for the flow ILP. *)

val synthetic : seed:int -> nranks:int -> steps:int -> Dag.Graph.t
(** Random but structurally valid graph for property tests. *)
