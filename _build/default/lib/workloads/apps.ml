(** Synthetic trace generators for the paper's four benchmarks.

    Each generator reproduces the communication structure and the
    performance-relevant properties Section 5.2 and 6.4 describe, not the
    numerics of the original codes:

    - {b CoMD}: molecular dynamics; all communication is collectives, so
      the only optimization lever is power reallocation against mild load
      imbalance.
    - {b LULESH 2.0}: shock hydrodynamics; many point-to-point messages
      between collectives, and cache contention that makes 4-5 OpenMP
      threads optimal (Table 3).
    - {b SP} (NAS-MZ): scalar pentadiagonal solver; very well balanced,
      leaving the LP almost no room and punishing runtimes that
      misidentify the critical path.
    - {b BT} (NAS-MZ): block tridiagonal solver with strongly uneven
      zone sizes, i.e. heavy persistent load imbalance — the largest LP
      wins at tight power. *)

type params = {
  nranks : int;
  iterations : int;
  seed : int;
  scale : float;  (** multiplies all task work; 1.0 = calibrated default *)
}

let default_params = { nranks = 16; iterations = 8; seed = 42; scale = 1.0 }

type app = CoMD | LULESH | SP | BT

let app_name = function
  | CoMD -> "CoMD"
  | LULESH -> "LULESH"
  | SP -> "SP"
  | BT -> "BT"

let all_apps = [ CoMD; LULESH; SP; BT ]

let app_of_name s =
  match String.lowercase_ascii s with
  | "comd" -> CoMD
  | "lulesh" -> LULESH
  | "sp" -> SP
  | "bt" -> BT
  | _ -> invalid_arg (Printf.sprintf "unknown application %S" s)

(* ------------------------------------------------------------------ *)

(** Nearest-neighbour halo exchange: every rank posts its Isend first
    (consuming its pending computation), then receives from its left
    neighbour — the non-serializing order real halo exchanges use. *)
let ring_exchange b ~nranks ~bytes =
  let sends =
    Array.init nranks (fun r ->
        Dag.Graph.Builder.mpi_vertex b ~rank:r Dag.Graph.Isend)
  in
  for r = 0 to nranks - 1 do
    let from = (r + nranks - 1) mod nranks in
    let rv = Dag.Graph.Builder.mpi_vertex b ~rank:r Dag.Graph.Recv in
    Dag.Graph.Builder.message b ~src_v:sends.(from) ~dst_v:rv ~src_rank:from
      ~dst_rank:r ~bytes
  done

(** CoMD: one force-computation task per rank per timestep, then a global
    reduction.  Work calibrated so a task runs ~1.2 s at the low-power
    end of the frontier (Figure 12's regime). *)
let comd (p : params) : Dag.Graph.t =
  let b = Dag.Graph.Builder.create ~nranks:p.nranks in
  let imb =
    Imbalance.uniform_bell ~seed:p.seed ~nranks:p.nranks ~amp:0.05 ~jitter:0.01
  in
  let base = 3.6 *. p.scale in
  for it = 0 to p.iterations - 1 do
    for r = 0 to p.nranks - 1 do
      let work = base *. Imbalance.sample imb ~rank:r in
      Dag.Graph.Builder.compute b ~rank:r ~iteration:it ~label:"force"
        (Machine.Profile.v ~serial_frac:0.03 ~contention:0.004 ~mem_bound:0.25
           work)
    done;
    ignore
      (Dag.Graph.Builder.collective b ~name:"allreduce" ~bytes:64
         ~pcontrol:true ())
  done;
  ignore (Dag.Graph.Builder.finalize b);
  Dag.Graph.Builder.build b

(** LULESH: per timestep, a large contention-limited stress task, a ring
    of halo exchanges, a smaller positions task, and the dt allreduce. *)
let lulesh (p : params) : Dag.Graph.t =
  let b = Dag.Graph.Builder.create ~nranks:p.nranks in
  let imb =
    Imbalance.uniform_bell ~seed:p.seed ~nranks:p.nranks ~amp:0.06 ~jitter:0.015
  in
  let base = 7.8 *. p.scale in
  let profile work =
    Machine.Profile.v ~serial_frac:0.02 ~contention:0.04 ~mem_bound:0.3 work
  in
  for it = 0 to p.iterations - 1 do
    (* stress/force phase ending in halo exchange with the next rank *)
    for r = 0 to p.nranks - 1 do
      let work = base *. Imbalance.sample imb ~rank:r in
      Dag.Graph.Builder.compute b ~rank:r ~iteration:it ~label:"stress"
        (profile work)
    done;
    ring_exchange b ~nranks:p.nranks ~bytes:200_000;
    (* position update, then the dt reduction *)
    for r = 0 to p.nranks - 1 do
      let work = 0.25 *. base *. Imbalance.sample imb ~rank:r in
      Dag.Graph.Builder.compute b ~rank:r ~iteration:it ~label:"positions"
        (profile work)
    done;
    ignore
      (Dag.Graph.Builder.collective b ~name:"allreduce-dt" ~bytes:8
         ~pcontrol:true ())
  done;
  ignore (Dag.Graph.Builder.finalize b);
  Dag.Graph.Builder.build b

(** SP: well balanced; boundary exchange with both ring neighbours, one
    solver task per direction sweep, per-iteration reduction. *)
let sp (p : params) : Dag.Graph.t =
  let b = Dag.Graph.Builder.create ~nranks:p.nranks in
  let imb =
    Imbalance.uniform_bell ~seed:p.seed ~nranks:p.nranks ~amp:0.008
      ~jitter:0.004
  in
  let base = 2.4 *. p.scale in
  let profile work =
    Machine.Profile.v ~serial_frac:0.04 ~contention:0.002 ~mem_bound:0.35 work
  in
  for it = 0 to p.iterations - 1 do
    for r = 0 to p.nranks - 1 do
      let work = base *. Imbalance.sample imb ~rank:r in
      Dag.Graph.Builder.compute b ~rank:r ~iteration:it ~label:"sweep"
        (profile work)
    done;
    ring_exchange b ~nranks:p.nranks ~bytes:120_000;
    for r = 0 to p.nranks - 1 do
      let work = 0.5 *. base *. Imbalance.sample imb ~rank:r in
      Dag.Graph.Builder.compute b ~rank:r ~iteration:it ~label:"rhs"
        (profile work)
    done;
    ignore
      (Dag.Graph.Builder.collective b ~name:"allreduce" ~bytes:8
         ~pcontrol:true ())
  done;
  ignore (Dag.Graph.Builder.finalize b);
  Dag.Graph.Builder.build b

(** BT: zonal imbalance — a minority of ranks own zones ~2.4x the size
    of the rest, so at tight caps the critical ranks starve under
    uniform power. *)
let bt (p : params) : Dag.Graph.t =
  let b = Dag.Graph.Builder.create ~nranks:p.nranks in
  let imb =
    Imbalance.zonal ~seed:p.seed ~nranks:p.nranks ~heavy_frac:0.125
      ~heavy_ratio:2.4 ~jitter:0.01
  in
  let base = 2.8 *. p.scale in
  let profile work =
    Machine.Profile.v ~serial_frac:0.03 ~contention:0.003 ~mem_bound:0.15 work
  in
  for it = 0 to p.iterations - 1 do
    for r = 0 to p.nranks - 1 do
      let work = base *. Imbalance.sample imb ~rank:r in
      Dag.Graph.Builder.compute b ~rank:r ~iteration:it ~label:"solve"
        (profile work)
    done;
    ring_exchange b ~nranks:p.nranks ~bytes:150_000;
    for r = 0 to p.nranks - 1 do
      let work = 0.3 *. base *. Imbalance.sample imb ~rank:r in
      Dag.Graph.Builder.compute b ~rank:r ~iteration:it ~label:"exchange"
        (profile work)
    done;
    ignore
      (Dag.Graph.Builder.collective b ~name:"allreduce" ~bytes:8
         ~pcontrol:true ())
  done;
  ignore (Dag.Graph.Builder.finalize b);
  Dag.Graph.Builder.build b

let generate app p =
  match app with CoMD -> comd p | LULESH -> lulesh p | SP -> sp p | BT -> bt p

(* ------------------------------------------------------------------ *)

(** Two-rank asynchronous message exchange (paper Figure 2 / Figure 8):
    rank 0 computes, posts an Isend, overlaps computation, waits; rank 1
    computes and receives.  Small enough for the flow ILP. *)
let exchange ?(rounds = 1) ?(scale = 1.0) () : Dag.Graph.t =
  let b = Dag.Graph.Builder.create ~nranks:2 in
  let prof w =
    Machine.Profile.v ~serial_frac:0.03 ~contention:0.004 ~mem_bound:0.2
      (w *. scale)
  in
  for it = 0 to rounds - 1 do
    Dag.Graph.Builder.compute b ~rank:0 ~iteration:it ~label:"A1" (prof 1.0);
    let isend_v = Dag.Graph.Builder.mpi_vertex b ~rank:0 Dag.Graph.Isend in
    Dag.Graph.Builder.compute b ~rank:1 ~iteration:it ~label:"A3" (prof 1.4);
    let recv_v = Dag.Graph.Builder.mpi_vertex b ~rank:1 Dag.Graph.Recv in
    Dag.Graph.Builder.message b ~src_v:isend_v ~dst_v:recv_v ~src_rank:0
      ~dst_rank:1 ~bytes:1_000_000;
    Dag.Graph.Builder.compute b ~rank:0 ~iteration:it ~label:"A2" (prof 0.8);
    let wait_v = Dag.Graph.Builder.mpi_vertex b ~rank:0 Dag.Graph.Wait in
    (* the Wait completes once the receiver has drained the message *)
    Dag.Graph.Builder.message b ~src_v:recv_v ~dst_v:wait_v ~src_rank:1
      ~dst_rank:0 ~bytes:0;
    Dag.Graph.Builder.compute b ~rank:0 ~iteration:it ~label:"A5" (prof 0.6);
    Dag.Graph.Builder.compute b ~rank:1 ~iteration:it ~label:"A6" (prof 0.9);
    if it < rounds - 1 then
      ignore (Dag.Graph.Builder.collective b ~name:"barrier" ~bytes:8 ())
  done;
  ignore (Dag.Graph.Builder.finalize b);
  Dag.Graph.Builder.build b

(** Random but structurally valid graph for property tests: a seeded mix
    of compute, collectives and ring p2p. *)
let synthetic ~seed ~nranks ~steps : Dag.Graph.t =
  let st = Random.State.make [| seed; 0x5e7 |] in
  let b = Dag.Graph.Builder.create ~nranks in
  (* a rank may only queue one computation before its next MPI call *)
  let pending = Array.make nranks false in
  for it = 0 to steps - 1 do
    for r = 0 to nranks - 1 do
      if (not pending.(r)) && Random.State.bool st then begin
        pending.(r) <- true;
        Dag.Graph.Builder.compute b ~rank:r ~iteration:it
          (Machine.Profile.v
             ~serial_frac:(Random.State.float st 0.1)
             ~contention:(Random.State.float st 0.05)
             ~mem_bound:(Random.State.float st 0.6)
             (0.1 +. Random.State.float st 2.0))
      end
    done;
    match Random.State.int st 3 with
    | 0 ->
        ignore (Dag.Graph.Builder.collective b ~bytes:(Random.State.int st 4096) ());
        Array.fill pending 0 nranks false
    | 1 when nranks >= 2 ->
        let src = Random.State.int st nranks in
        let dst = (src + 1 + Random.State.int st (nranks - 1)) mod nranks in
        ignore (Dag.Graph.Builder.p2p b ~src ~dst ~bytes:(Random.State.int st 100_000));
        pending.(src) <- false;
        pending.(dst) <- false
    | _ ->
        ignore (Dag.Graph.Builder.collective b ~name:"barrier" ~bytes:8 ());
        Array.fill pending 0 nranks false
  done;
  ignore (Dag.Graph.Builder.finalize b);
  Dag.Graph.Builder.build b
