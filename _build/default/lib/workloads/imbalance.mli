(** Per-rank load-imbalance patterns: a persistent per-rank work
    multiplier plus per-iteration jitter, both deterministic in the seed.
    The persistent distribution is what distinguishes the benchmarks
    (mild bell shape for CoMD/LULESH, near-zero for SP, zonal for
    BT-MZ). *)

type t

val uniform_bell : seed:int -> nranks:int -> amp:float -> jitter:float -> t
(** Bell-shaped imbalance of relative amplitude [amp]. *)

val zonal :
  seed:int -> nranks:int -> heavy_frac:float -> heavy_ratio:float ->
  jitter:float -> t
(** A fraction [heavy_frac] of ranks carries [heavy_ratio]× the work of
    the rest; multipliers normalized to mean 1. *)

val sample : t -> rank:int -> float
(** Work multiplier for [rank] this iteration; consumes jitter randomness
    (call once per task in generation order). *)

val spread : t -> float
(** Max/min ratio of the persistent multipliers. *)
