(** Per-rank load-imbalance patterns.

    Each generator assigns every rank a persistent work multiplier plus a
    small per-iteration jitter; both are deterministic in the seed.  The
    distribution of the persistent part is what distinguishes the
    benchmarks: CoMD and LULESH have mild, roughly bell-shaped imbalance,
    SP is almost perfectly balanced, and BT-MZ concentrates work in a
    minority of ranks that own large zones. *)

type t = {
  persistent : float array;  (** per-rank work multiplier, mean ~1 *)
  jitter : float;  (** per-iteration relative noise amplitude *)
  state : Random.State.t;
}

let bell st amp =
  let u () = Random.State.float st 2.0 -. 1.0 in
  1.0 +. (amp *. (u () +. u () +. u ()) /. 3.0)

(** Mild bell-shaped imbalance of relative amplitude [amp]. *)
let uniform_bell ~seed ~nranks ~amp ~jitter =
  let st = Random.State.make [| seed; 0x1817 |] in
  {
    persistent = Array.init nranks (fun _ -> bell st (3.0 *. amp));
    jitter;
    state = Random.State.make [| seed; 0x9b5 |];
  }

(** BT-MZ-style zonal imbalance: a fraction [heavy_frac] of ranks carry
    [heavy_ratio] times the work of the others (zone sizes in BT-MZ vary
    by design); the multipliers are normalized to mean 1. *)
let zonal ~seed ~nranks ~heavy_frac ~heavy_ratio ~jitter =
  let st = Random.State.make [| seed; 0xb72 |] in
  let nheavy = max 1 (int_of_float (Float.of_int nranks *. heavy_frac)) in
  let raw =
    Array.init nranks (fun r ->
        let base = if r < nheavy then heavy_ratio else 1.0 in
        base *. bell st 0.03)
  in
  let mean = Array.fold_left ( +. ) 0.0 raw /. Float.of_int nranks in
  {
    persistent = Array.map (fun x -> x /. mean) raw;
    jitter;
    state = Random.State.make [| seed; 0x31f |];
  }

(** Work multiplier for [rank] at this iteration (consumes jitter
    randomness; call once per task in generation order). *)
let sample t ~rank =
  let j = t.jitter *. (Random.State.float t.state 2.0 -. 1.0) in
  t.persistent.(rank) *. (1.0 +. j)

let spread t =
  let mn = Array.fold_left min Float.infinity t.persistent in
  let mx = Array.fold_left max Float.neg_infinity t.persistent in
  mx /. mn
