lib/workloads/apps.ml: Array Dag Imbalance Machine Printf Random String
