lib/workloads/imbalance.mli:
