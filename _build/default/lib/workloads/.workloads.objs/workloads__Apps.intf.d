lib/workloads/apps.mli: Dag
