lib/workloads/imbalance.ml: Array Float Random
