(** Textual trace format for application DAGs — the persistence layer
    standing in for the paper's MPI tracing library, so traces are
    generated once and reanalyzed under many power constraints.  See the
    implementation header for the line format. *)

exception Parse_error of int * string
(** Line number (0 when structural) and description. *)

val output : out_channel -> Graph.t -> unit
val to_file : string -> Graph.t -> unit
val to_string : Graph.t -> string

val of_lines : string Seq.t -> Graph.t
(** Parses and structurally validates; raises {!Parse_error}. *)

val of_string : string -> Graph.t
val of_file : string -> Graph.t
