lib/dag/dot.mli: Graph Schedule
