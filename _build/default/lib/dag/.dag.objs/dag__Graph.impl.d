lib/dag/graph.ml: Array Fmt Fun List Machine Queue Seq
