lib/dag/schedule.mli: Graph
