lib/dag/graph.mli: Format Machine
