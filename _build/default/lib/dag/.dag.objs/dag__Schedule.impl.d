lib/dag/schedule.ml: Array Float Fun Graph List Machine
