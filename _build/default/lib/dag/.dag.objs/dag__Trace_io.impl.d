lib/dag/trace_io.ml: Array Buffer Char Fmt Fun Graph List Machine Printf Seq String
