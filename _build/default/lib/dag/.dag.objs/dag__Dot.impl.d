lib/dag/dot.ml: Array Fun Graph List Machine Printf Schedule String
