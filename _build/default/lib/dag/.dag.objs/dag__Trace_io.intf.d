lib/dag/trace_io.mli: Graph Seq
