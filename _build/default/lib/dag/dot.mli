(** Graphviz (DOT) export of application DAGs, in the style of the
    paper's Figure 2. *)

val output : ?times:Schedule.times -> out_channel -> Graph.t -> unit
val to_file : ?times:Schedule.times -> string -> Graph.t -> unit
