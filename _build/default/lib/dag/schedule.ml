(** Static schedules over a task graph: longest-path vertex times for a
    given assignment of task durations, critical path, per-task slack,
    and the event structure (time-ordered vertices with their active task
    sets) that the fixed-vertex-order LP is built on. *)

type times = {
  vertex_time : float array;  (** firing time per vertex *)
  makespan : float;
}

(** Longest-path schedule: every vertex fires when all its in-edges have
    completed (plus the vertex's own communication delay).  [dur] gives
    each task's duration; [msg] each message's transfer time. *)
let compute g ~dur ~msg : times =
  let order = Graph.topo_order g in
  let nv = Graph.n_vertices g in
  let time = Array.make nv 0.0 in
  Array.iter
    (fun v ->
      let ready = ref 0.0 in
      List.iter
        (fun e ->
          let src = Graph.edge_src g e in
          let w =
            match e with
            | Graph.T tid -> dur g.Graph.tasks.(tid)
            | Graph.M mid -> msg g.Graph.messages.(mid)
          in
          let t = time.(src) +. w in
          if t > !ready then ready := t)
        g.Graph.in_edges.(v);
      time.(v) <- !ready +. g.Graph.vertices.(v).Graph.delay)
    order;
  { vertex_time = time; makespan = time.(g.Graph.finalize_v) }

let default_msg m = Machine.Network.transfer_time m.Graph.bytes

(** Schedule with every task at its fastest configuration (max frequency,
    all cores): the power-unconstrained reference of Section 3.3. *)
let unconstrained ?(max_threads = 8) g : times =
  let dur t =
    Machine.Profile.duration t.Graph.profile ~freq:Machine.Dvfs.f_max
      ~threads:max_threads
  in
  compute g ~dur ~msg:default_msg

(** As-late-as-possible vertex times: the latest each vertex can fire
    without extending the makespan.  This is the paper's Section 3.3
    "initial schedule modified to reduce slack time": it slows tasks off
    the critical path as much as possible (their activity windows shift
    to where the LP will actually run them) without changing the time to
    solution. *)
let latest_times g (ts : times) ~dur ~msg : times =
  let order = Graph.topo_order g in
  let nv = Graph.n_vertices g in
  let latest = Array.make nv ts.makespan in
  for k = nv - 1 downto 0 do
    let v = order.(k) in
    List.iter
      (fun e ->
        let dst = Graph.edge_dst g e in
        let w =
          match e with
          | Graph.T tid -> dur g.Graph.tasks.(tid)
          | Graph.M mid -> msg g.Graph.messages.(mid)
        in
        let bound = latest.(dst) -. g.Graph.vertices.(dst).Graph.delay -. w in
        if bound < latest.(v) then latest.(v) <- bound)
      g.Graph.out_edges.(v)
  done;
  { vertex_time = latest; makespan = ts.makespan }

(** Per-task slack: how much a task could be stretched without moving any
    vertex, i.e. [t(dst) - t(src) - duration].  Tasks with positive slack
    are off the critical path and can be slowed nearly for free — the
    property Adagio and the LP both exploit. *)
let task_slack g (ts : times) ~dur =
  Array.map
    (fun t ->
      ts.vertex_time.(t.Graph.t_dst)
      -. g.Graph.vertices.(t.Graph.t_dst).Graph.delay
      -. ts.vertex_time.(t.Graph.t_src)
      -. dur t)
    g.Graph.tasks

(** One critical path from Init to Finalize as a list of edges, found by
    walking backwards along tight in-edges. *)
let critical_path g (ts : times) ~dur ~msg =
  let eps = 1e-9 in
  let rec walk v acc =
    if v = g.Graph.init_v then acc
    else begin
      let slack_in = ts.vertex_time.(v) -. g.Graph.vertices.(v).Graph.delay in
      let tight =
        List.find_opt
          (fun e ->
            let src = Graph.edge_src g e in
            let w =
              match e with
              | Graph.T tid -> dur g.Graph.tasks.(tid)
              | Graph.M mid -> msg g.Graph.messages.(mid)
            in
            Float.abs (ts.vertex_time.(src) +. w -. slack_in) < eps)
          g.Graph.in_edges.(v)
      in
      match tight with
      | None ->
          (* numerical tie-break: take the latest-finishing in-edge *)
          let best = ref None and bt = ref Float.neg_infinity in
          List.iter
            (fun e ->
              let src = Graph.edge_src g e in
              if ts.vertex_time.(src) > !bt then begin
                bt := ts.vertex_time.(src);
                best := Some e
              end)
            g.Graph.in_edges.(v);
          (match !best with
          | None -> acc
          | Some e -> walk (Graph.edge_src g e) (e :: acc))
      | Some e -> walk (Graph.edge_src g e) (e :: acc)
    end
  in
  walk g.Graph.finalize_v []

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type events = {
  order : int array;  (** vertex ids sorted by initial-schedule time *)
  active : int array array;
      (** [active.(k)]: tids active at event [k] (start at or running);
          a task's activity window runs from its source vertex to its
          destination vertex, so slack between a task and the next MPI
          call is charged at the task's own power — the paper's
          slack-power assumption. *)
}

(** Event structure from an initial schedule: one event per vertex, in
    time order.  Duplicate power rows (identical active sets) are left to
    the LP builder to coalesce. *)
let events g (ts : times) : events =
  let nv = Graph.n_vertices g in
  let order = Array.init nv Fun.id in
  Array.sort
    (fun a b ->
      match compare ts.vertex_time.(a) ts.vertex_time.(b) with
      | 0 -> compare a b
      | c -> c)
    order;
  let active_at tj =
    let acc = ref [] in
    Array.iter
      (fun (t : Graph.task) ->
        let s = ts.vertex_time.(t.t_src) and e = ts.vertex_time.(t.t_dst) in
        if (s <= tj && tj < e) || s = tj then acc := t.tid :: !acc)
      g.Graph.tasks;
    Array.of_list (List.rev !acc)
  in
  { order; active = Array.map (fun v -> active_at ts.vertex_time.(v)) order }
