(** Static schedules over a task graph: longest-path vertex times for a
    given duration assignment, critical path, per-task slack, and the
    event structure the fixed-vertex-order LP is built on. *)

type times = { vertex_time : float array; makespan : float }

val compute :
  Graph.t ->
  dur:(Graph.task -> float) ->
  msg:(Graph.message -> float) ->
  times
(** Longest-path schedule: a vertex fires when all in-edges complete,
    plus its collective delay. *)

val default_msg : Graph.message -> float
(** {!Machine.Network.transfer_time} of the message payload. *)

val unconstrained : ?max_threads:int -> Graph.t -> times
(** Every task at its fastest configuration: the power-unconstrained
    reference schedule of paper Section 3.3. *)

val latest_times :
  Graph.t ->
  times ->
  dur:(Graph.task -> float) ->
  msg:(Graph.message -> float) ->
  times
(** As-late-as-possible vertex times with the same makespan: the paper's
    "modified to reduce slack time" initial schedule (Section 3.3). *)

val task_slack : Graph.t -> times -> dur:(Graph.task -> float) -> float array
(** Per task: how much it could stretch without moving any vertex. *)

val critical_path :
  Graph.t ->
  times ->
  dur:(Graph.task -> float) ->
  msg:(Graph.message -> float) ->
  Graph.edge list
(** One tight Init→Finalize path. *)

type events = {
  order : int array;  (** vertex ids sorted by initial-schedule time *)
  active : int array array;
      (** per event, the tids active there (start at or running); a
          task's activity window spans source to destination vertex, so
          slack is charged at the task's own power — the paper's
          slack-power assumption *)
}

val events : Graph.t -> times -> events
