(** Section 6.2: overhead accounting.  The mechanism costs are model
    constants taken from the paper's measurements; this experiment
    verifies they enter the simulation with the same relative magnitudes
    the paper reports (profiling < 0.05% of application time, DVFS
    transitions per replayed task, 566 us per reallocation step). *)

let count_switches (r : Simulate.Engine.result) =
  Array.fold_left
    (fun acc (rc : Simulate.Engine.task_record) ->
      if rc.overhead > 0.0 then acc + 1 else acc)
    0 r.Simulate.Engine.records

let run ?(config = Common.default_config) ppf =
  let setup = Common.make_setup config Workloads.Apps.LULESH in
  let job_cap = 50.0 *. Float.of_int config.Common.nranks in
  Common.header ppf "Section 6.2: overheads";
  Fmt.pf ppf
    "constants: profiling %.0f us/MPI call, DVFS transition %.0f us, \
     conductor selection %.0f us/task, reallocation %.0f us/step, replay \
     threshold %.1f ms@."
    (1e6 *. Machine.Overheads.profiling_per_mpi_call)
    (1e6 *. Machine.Overheads.dvfs_transition)
    (1e6 *. Machine.Overheads.conductor_per_task)
    (1e6 *. Machine.Overheads.reallocation_per_step)
    (1e3 *. Machine.Overheads.replay_min_task);
  (* profiling overhead relative to application time *)
  let st = Runtime.Static.run setup.Common.sc ~job_cap in
  let n_mpi = Dag.Graph.n_vertices setup.Common.graph in
  let prof_total =
    Float.of_int n_mpi *. Machine.Overheads.profiling_per_mpi_call
  in
  Fmt.pf ppf
    "profiling: %d instrumented MPI events -> %.3f ms total = %.4f%% of the \
     run (paper: < 0.05%%)@."
    n_mpi (1e3 *. prof_total)
    (100.0 *. prof_total /. st.Simulate.Engine.makespan);
  (* replay DVFS transitions *)
  (match Core.Event_lp.solve setup.Common.sc ~power_cap:job_cap with
  | Core.Event_lp.Schedule s ->
      let v = Core.Replay.validate setup.Common.sc s ~power_cap:job_cap in
      let switches = count_switches v.Core.Replay.result in
      Fmt.pf ppf
        "LP replay: %d configuration changes x %.0f us = %.3f ms (%.4f%% of \
         replay time)@."
        switches
        (1e6 *. Machine.Overheads.dvfs_transition)
        (1e3 *. Float.of_int switches *. Machine.Overheads.dvfs_transition)
        (100.0
        *. Float.of_int switches
        *. Machine.Overheads.dvfs_transition
        /. v.Core.Replay.replay_makespan)
  | _ -> Fmt.pf ppf "LP replay: not schedulable@.");
  (* conductor: reallocation steps and per-task switches *)
  let co = Runtime.Conductor.run setup.Common.sc ~job_cap in
  let realloc_total =
    Float.of_int config.Common.iterations
    *. Machine.Overheads.reallocation_per_step
  in
  Fmt.pf ppf
    "Conductor: %d reallocation steps x %.0f us = %.3f ms; %d config \
     switches x %.0f us@."
    config.Common.iterations
    (1e6 *. Machine.Overheads.reallocation_per_step)
    (1e3 *. realloc_total)
    (count_switches co)
    (1e6 *. Machine.Overheads.conductor_per_task)
