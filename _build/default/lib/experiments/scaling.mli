(** Solver scaling study: event-LP size, simplex iterations and wall time as traces grow. *)

val run : ?config:Common.config -> Format.formatter -> unit
