(** Beyond-the-paper extensions: GEOPM-style balancer and event-order fixed-point refinement. *)

val run : ?config:Common.config -> Format.formatter -> unit
