(** Beyond-the-paper extensions, compared on the paper's own workloads:

    - the GEOPM-style load-proportional {!Runtime.Balancer} as a third
      online policy between Static and Conductor;
    - {!Core.Event_lp.solve_refined}, the fixed-point refinement of the
      event order (the paper fixes it once from the unconstrained
      schedule). *)

let run ?(config = Common.default_config) ppf =
  Common.header ppf
    "Extensions: GEOPM-style balancer and event-order refinement";
  Fmt.pf ppf
    "# app cap_W static_s balancer_s conductor_s lp_s lp_refined_s@.";
  List.iter
    (fun app ->
      let setup = Common.make_setup config app in
      List.iter
        (fun cap ->
          let job_cap = cap *. Float.of_int config.Common.nranks in
          let span r = Common.span_after_skip setup r in
          let st = span (Runtime.Static.run setup.Common.sc ~job_cap) in
          let ba = span (Runtime.Balancer.run setup.Common.sc ~job_cap) in
          let co = span (Runtime.Conductor.run setup.Common.sc ~job_cap) in
          let lp_span solve_fn =
            match solve_fn () with
            | Core.Event_lp.Schedule s ->
                let v =
                  Core.Replay.validate setup.Common.sc s ~power_cap:job_cap
                in
                Some (span v.Core.Replay.result)
            | _ -> None
          in
          let lp =
            lp_span (fun () ->
                Core.Event_lp.solve setup.Common.sc ~power_cap:job_cap)
          in
          let lpr =
            lp_span (fun () ->
                Core.Event_lp.solve_refined ~rounds:3 setup.Common.sc
                  ~power_cap:job_cap)
          in
          let pp_opt ppf = function
            | Some v -> Fmt.pf ppf "%8.3f" v
            | None -> Fmt.string ppf "       -"
          in
          Fmt.pf ppf "%-7s %4.0f %8.3f %8.3f %8.3f %a %a@."
            (Workloads.Apps.app_name app)
            cap st ba co pp_opt lp pp_opt lpr)
        [ 30.0; 40.0; 60.0 ])
    [ Workloads.Apps.BT; Workloads.Apps.LULESH; Workloads.Apps.SP ];
  Fmt.pf ppf
    "# balancer: proportional-to-load caps; no critical-path estimate, no \
     Adagio step@."
