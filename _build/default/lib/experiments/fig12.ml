(** Figure 12: task duration vs. power for long-running (> 0.5 s) CoMD
    tasks under an average per-socket constraint of 30 W, comparing the
    LP's nonuniform allocation against Static's uniform caps.  The shape
    to reproduce: LP tasks cluster at shorter durations with many using
    more than 30 W; Static tasks sit at exactly the cap with longer, more
    spread-out durations. *)

let run ?(config = Common.default_config) ppf =
  let config = { config with Common.iterations = max config.Common.iterations 10 } in
  let setup = Common.make_setup config Workloads.Apps.CoMD in
  let cap = 30.0 in
  let job_cap = cap *. Float.of_int config.Common.nranks in
  Common.header ppf
    "Figure 12: CoMD long-task duration vs. power at 30 W/socket average";
  Fmt.pf ppf "# method power_W duration_s@.";
  let long r = Simulate.Stats.long_records r ~min_duration:0.5 in
  let dump name recs =
    List.iter
      (fun (rc : Simulate.Engine.task_record) ->
        Fmt.pf ppf "%s %7.2f %7.3f@." name rc.power rc.duration)
      recs
  in
  let stats name recs =
    if recs <> [] then begin
      let durs =
        Array.of_list
          (List.map (fun (rc : Simulate.Engine.task_record) -> rc.duration) recs)
      in
      let pows =
        Array.of_list
          (List.map (fun (rc : Simulate.Engine.task_record) -> rc.power) recs)
      in
      let over30 =
        List.length
          (List.filter
             (fun (rc : Simulate.Engine.task_record) -> rc.power > cap)
             recs)
      in
      Fmt.pf ppf
        "# %s: %d tasks, duration max %.3f s median %.3f s; power max %.1f W; \
         %d tasks above %.0f W@."
        name (List.length recs)
        (Array.fold_left max 0.0 durs)
        (Simulate.Stats.median durs)
        (Array.fold_left max 0.0 pows)
        over30 cap
    end
  in
  let lp_recs =
    match Core.Event_lp.solve setup.Common.sc ~power_cap:job_cap with
    | Core.Event_lp.Schedule s ->
        let v = Core.Replay.validate setup.Common.sc s ~power_cap:job_cap in
        Some (long v.Core.Replay.result)
    | _ -> None
  in
  let st_recs = long (Runtime.Static.run setup.Common.sc ~job_cap) in
  (match lp_recs with
  | Some recs -> dump "LP" recs
  | None -> Fmt.pf ppf "# LP not schedulable@.");
  dump "Static" st_recs;
  (match lp_recs with Some recs -> stats "LP" recs | None -> ());
  stats "Static" st_recs
