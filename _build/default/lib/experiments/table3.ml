(** Table 3: task characteristics for a single iteration of LULESH at an
    average of 50 W per socket, long (>= 1 s) tasks only: median task
    time, the standard deviation of per-task power across ranks, the
    thread count(s) used, and the median frequency relative to the
    maximum non-boosted clock. *)

let row_of_records ppf name recs =
  match recs with
  | [] -> Fmt.pf ppf "%-10s (no long tasks)@." name
  | recs ->
      let arr f = Array.of_list (List.map f recs) in
      let durs = arr (fun (rc : Simulate.Engine.task_record) -> rc.duration) in
      let pows = arr (fun (rc : Simulate.Engine.task_record) -> rc.power) in
      let freqs =
        arr (fun (rc : Simulate.Engine.task_record) ->
            rc.point.Pareto.Point.freq /. Machine.Dvfs.f_max)
      in
      let threads =
        List.map
          (fun (rc : Simulate.Engine.task_record) -> rc.point.Pareto.Point.threads)
          recs
      in
      let tmin = List.fold_left min 99 threads
      and tmax = List.fold_left max 0 threads in
      let threads_s =
        if tmin = tmax then string_of_int tmin
        else Printf.sprintf "%d-%d" tmin tmax
      in
      Fmt.pf ppf "%-10s %-12.3f %-10.3f %-8s %-9.4f@." name
        (Simulate.Stats.median durs)
        (Simulate.Stats.stddev pows)
        threads_s
        (Simulate.Stats.median freqs)

let run ?(config = Common.default_config) ppf =
  let setup = Common.make_setup config Workloads.Apps.LULESH in
  let cap = 50.0 in
  let job_cap = cap *. Float.of_int config.Common.nranks in
  let iteration = config.Common.iterations - 2 in
  Common.header ppf
    (Fmt.str
       "Table 3: LULESH single-iteration task characteristics at %.0f W \
        job cap (avg %.0f W/socket), tasks >= 1 s, iteration %d"
       job_cap cap iteration);
  Fmt.pf ppf "%-10s %-12s %-10s %-8s %-9s@." "Method" "MedianTime" "StdDevPow"
    "Threads" "MedFreq";
  let long_in_iter (r : Simulate.Engine.result) =
    Simulate.Stats.iteration_records setup.Common.graph r ~iteration
    |> List.filter (fun (rc : Simulate.Engine.task_record) -> rc.duration >= 1.0)
  in
  row_of_records ppf "Static"
    (long_in_iter (Runtime.Static.run setup.Common.sc ~job_cap));
  row_of_records ppf "Conductor"
    (long_in_iter (Runtime.Conductor.run setup.Common.sc ~job_cap));
  match Core.Event_lp.solve setup.Common.sc ~power_cap:job_cap with
  | Core.Event_lp.Schedule s ->
      let v = Core.Replay.validate setup.Common.sc s ~power_cap:job_cap in
      row_of_records ppf "LP" (long_in_iter v.Core.Replay.result)
  | _ -> Fmt.pf ppf "LP         (not schedulable)@."
