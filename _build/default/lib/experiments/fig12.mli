(** Figure 12: long-task duration vs power for CoMD at an average 30 W per socket, LP vs Static. *)

val run : ?config:Common.config -> Format.formatter -> unit
