(** Bechamel micro-benchmarks of the computational kernels (LU, simplex, frontier, replay). *)

val run : ?config:Common.config -> Format.formatter -> unit
