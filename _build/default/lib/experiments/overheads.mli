(** Section 6.2: mechanism-overhead accounting (profiling, DVFS transitions, reallocation steps). *)

val run : ?config:Common.config -> Format.formatter -> unit
