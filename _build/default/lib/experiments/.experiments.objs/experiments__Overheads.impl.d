lib/experiments/overheads.ml: Array Common Core Dag Float Fmt Machine Runtime Simulate Workloads
