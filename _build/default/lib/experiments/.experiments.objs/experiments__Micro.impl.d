lib/experiments/micro.ml: Analyze Array Bechamel Benchmark Common Core Float Fmt Hashtbl Instance List Lp Machine Measure Pareto Random Runtime Simulate Staged Test Time Toolkit Workloads
