lib/experiments/fig8.ml: Common Core Float Fmt List Workloads
