lib/experiments/fig8.mli: Common Format
