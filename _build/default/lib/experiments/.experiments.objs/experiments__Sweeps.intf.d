lib/experiments/sweeps.mli: Common Format Workloads
