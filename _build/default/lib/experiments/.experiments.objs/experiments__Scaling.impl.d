lib/experiments/scaling.ml: Common Core Dag Float Fmt List Unix Workloads
