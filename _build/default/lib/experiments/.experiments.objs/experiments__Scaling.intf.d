lib/experiments/scaling.mli: Common Format
