lib/experiments/fig12.ml: Array Common Core Float Fmt List Runtime Simulate Workloads
