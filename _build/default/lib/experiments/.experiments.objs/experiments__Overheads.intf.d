lib/experiments/overheads.mli: Common Format
