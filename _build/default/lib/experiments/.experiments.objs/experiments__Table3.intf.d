lib/experiments/table3.mli: Common Format
