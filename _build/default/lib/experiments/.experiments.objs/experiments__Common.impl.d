lib/experiments/common.ml: Array Core Dag Float Fmt List Runtime Simulate Workloads
