lib/experiments/micro.mli: Common Format
