lib/experiments/extensions.ml: Common Core Float Fmt List Runtime Workloads
