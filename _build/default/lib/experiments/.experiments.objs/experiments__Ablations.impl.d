lib/experiments/ablations.ml: Common Core Float Fmt List Runtime Simulate Workloads
