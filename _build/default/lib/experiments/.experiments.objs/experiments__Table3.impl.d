lib/experiments/table3.ml: Array Common Core Float Fmt List Machine Pareto Printf Runtime Simulate Workloads
