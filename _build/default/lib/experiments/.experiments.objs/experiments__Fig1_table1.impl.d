lib/experiments/fig1_table1.ml: Array Common Fmt Machine Pareto
