lib/experiments/sweeps.ml: Common Float Fmt List String Workloads
