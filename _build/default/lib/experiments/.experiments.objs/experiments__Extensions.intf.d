lib/experiments/extensions.mli: Common Format
