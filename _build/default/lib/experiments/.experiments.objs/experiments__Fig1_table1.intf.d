lib/experiments/fig1_table1.mli: Common Format
