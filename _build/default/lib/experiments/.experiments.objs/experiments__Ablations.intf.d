lib/experiments/ablations.mli: Common Format
