lib/experiments/common.mli: Core Dag Format Simulate Workloads
