(** Figure 1 and Table 1: the configuration space of one CoMD task and its convex Pareto frontier. *)

val run : ?config:Common.config -> Format.formatter -> unit
