(** Figure 8: flow ILP vs fixed-vertex-order LP on the two-process asynchronous message exchange. *)

val run : ?config:Common.config -> Format.formatter -> unit
