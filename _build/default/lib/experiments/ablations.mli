(** Ablation studies of the design choices DESIGN.md calls out (rounding, slack reduction, presolve, socket variability, Conductor gain, energy-vs-time). *)

val run : ?config:Common.config -> Format.formatter -> unit
