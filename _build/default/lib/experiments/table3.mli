(** Table 3: LULESH single-iteration task characteristics at an average 50 W per socket. *)

val run : ?config:Common.config -> Format.formatter -> unit
