(** Replay of an LP/ILP-derived schedule on the simulated cluster
    (Section 6.1): each task runs the configuration blend the schedule
    prescribes; configuration changes cost a DVFS transition and are
    skipped for tasks shorter than the 1 ms threshold. *)

type validation = {
  result : Simulate.Engine.result;
  lp_makespan : float;
  replay_makespan : float;
  max_power : float;
  power_cap : float;
  within_cap : bool;
  gap_pct : float;  (** replay vs LP makespan, percent *)
}

let same_point (a : Pareto.Point.t) (b : Pareto.Point.t) =
  a.Pareto.Point.freq = b.Pareto.Point.freq
  && a.Pareto.Point.threads = b.Pareto.Point.threads

(** Simulation policy executing [schedule]. *)
let policy (sc : Scenario.t) (schedule : Event_lp.schedule) : Simulate.Policy.t
    =
  let decide (ctx : Simulate.Policy.decide_ctx) =
    let tid = ctx.Simulate.Policy.task.Dag.Graph.tid in
    let blend = schedule.Event_lp.blends.(tid) in
    match blend with
    | [] ->
        (* zero-work MPI transition *)
        let f = sc.Scenario.frontiers.(tid) in
        let pt =
          if Array.length f > 0 then Pareto.Frontier.slowest f
          else
            {
              Pareto.Point.freq = Machine.Dvfs.f_min;
              threads = 1;
              duration = 0.0;
              power = 0.0;
            }
        in
        { Simulate.Policy.blend = [ (pt, 1.0) ]; overhead = 0.0 }
    | (first, _) :: _ ->
        let expected = Pareto.Frontier.blend_duration blend in
        let switch_needed =
          match ctx.Simulate.Policy.prev with
          | Some prev -> not (same_point prev first)
          | None -> false
        in
        let overhead =
          if switch_needed && expected >= Machine.Overheads.replay_min_task
          then Machine.Overheads.dvfs_transition
          else 0.0
        in
        (* a two-segment blend is one more mid-task switch *)
        let overhead =
          if List.length blend > 1 && expected >= Machine.Overheads.replay_min_task
          then overhead +. Machine.Overheads.dvfs_transition
          else overhead
        in
        { Simulate.Policy.blend; overhead }
  in
  {
    Simulate.Policy.name = "lp-replay";
    decide;
    observe = ignore;
    pcontrol_overhead = 0.0;
  }

(** Replay [schedule] and verify it is realizable and within its power
    cap (transients shorter than 1 ms are ignored, as a real RAPL window
    would average them away). *)
let validate ?(tol = 0.02) (sc : Scenario.t) (schedule : Event_lp.schedule)
    ~power_cap : validation =
  (* The LP's vertex times are part of the schedule: its power argument
     (fixed event order, equations (12)-(13)) only holds if events fire
     no earlier than the LP placed them. *)
  let release v = schedule.Event_lp.vertex_time.(v) in
  let result =
    Simulate.Engine.run ~slack_model:`Task_power ~release sc.Scenario.graph
      (policy sc schedule)
  in
  let max_power =
    Simulate.Engine.sustained_max_power ~ignore_below:1e-3 result
  in
  {
    result;
    lp_makespan = schedule.Event_lp.objective;
    replay_makespan = result.Simulate.Engine.makespan;
    max_power;
    power_cap;
    within_cap = max_power <= power_cap *. (1.0 +. tol) +. 1e-6;
    gap_pct =
      ((result.Simulate.Engine.makespan /. schedule.Event_lp.objective) -. 1.0)
      *. 100.0;
  }
