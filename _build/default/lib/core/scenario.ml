(** A scenario bundles everything the formulations and runtimes consume:
    the application DAG, the socket running each rank (one multithreaded
    process per socket, per the paper's Section 2.2 assumptions), and the
    convex Pareto frontier of every task on its socket. *)

type t = {
  graph : Dag.Graph.t;
  sockets : Machine.Socket.t array;  (** indexed by rank *)
  frontiers : Pareto.Frontier.t array;
      (** indexed by tid; empty array for zero-work MPI transitions *)
}

let make ?(socket_seed = 7) ?(variability = 0.04) (graph : Dag.Graph.t) : t =
  let sockets =
    Machine.Socket.fleet ~variability ~seed:socket_seed graph.Dag.Graph.nranks
  in
  let frontiers =
    Array.map
      (fun (t : Dag.Graph.task) ->
        if t.profile.Machine.Profile.work <= 0.0 then [||]
        else Pareto.Frontier.convex sockets.(t.rank) t.profile)
      graph.Dag.Graph.tasks
  in
  { graph; sockets; frontiers }

(** Smallest job power at which every task can run at all: the sum over
    ranks of the most frugal frontier point of the rank's hungriest task
    — below this the LP is infeasible ("not able to be scheduled" in
    Figures 9-10). *)
let min_job_power t =
  let per_rank = Array.make t.graph.Dag.Graph.nranks 0.0 in
  Array.iteri
    (fun tid f ->
      if Array.length f > 0 then begin
        let r = t.graph.Dag.Graph.tasks.(tid).Dag.Graph.rank in
        let p = Pareto.Frontier.min_power f in
        if p > per_rank.(r) then per_rank.(r) <- p
      end)
    t.frontiers;
  Array.fold_left ( +. ) 0.0 per_rank

(** Duration of a task at its fastest configuration (used for the
    power-unconstrained initial schedule). *)
let fastest_duration t tid =
  let f = t.frontiers.(tid) in
  if Array.length f = 0 then 0.0
  else (Pareto.Frontier.fastest f).Pareto.Point.duration
