lib/core/replay.mli: Event_lp Scenario Simulate
