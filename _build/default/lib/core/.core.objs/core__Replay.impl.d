lib/core/replay.ml: Array Dag Event_lp List Machine Pareto Scenario Simulate
