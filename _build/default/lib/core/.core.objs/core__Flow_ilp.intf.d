lib/core/flow_ilp.mli: Pareto Scenario
