lib/core/event_lp.ml: Array Dag Float Hashtbl List Lp Machine Pareto Printf Scenario
