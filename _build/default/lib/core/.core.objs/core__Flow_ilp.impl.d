lib/core/flow_ilp.ml: Array Dag List Lp Machine Pareto Printf Scenario
