lib/core/scenario.ml: Array Dag Machine Pareto
