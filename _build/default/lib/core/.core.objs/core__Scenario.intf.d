lib/core/scenario.mli: Dag Machine Pareto
