lib/core/event_lp.mli: Dag Pareto Scenario
