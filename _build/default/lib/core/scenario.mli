(** A scenario bundles everything the formulations and runtimes consume:
    the application DAG, the socket running each rank (one multithreaded
    process per socket, paper Section 2.2), and the convex Pareto
    frontier of every task on its socket. *)

type t = {
  graph : Dag.Graph.t;
  sockets : Machine.Socket.t array;  (** indexed by rank *)
  frontiers : Pareto.Frontier.t array;
      (** indexed by tid; empty for zero-work MPI transitions *)
}

val make : ?socket_seed:int -> ?variability:float -> Dag.Graph.t -> t

val min_job_power : t -> float
(** Smallest job power at which every task can run at all; below it the
    LP is infeasible ("not able to be scheduled" in Figures 9-10). *)

val fastest_duration : t -> int -> float
(** Duration of task [tid] at its fastest configuration. *)
