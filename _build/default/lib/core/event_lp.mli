(** The paper's primary contribution: the fixed-vertex-order, event-based
    LP formulation of power-constrained performance optimization
    (Sections 3.1-3.3, equations (1)-(13)).

    Variables: a time per DAG vertex and a convex-combination weight per
    (task, frontier configuration).  Power is constrained at events
    (vertices of an initial power-unconstrained schedule): at each event
    the summed power of active tasks must fit the job cap, and events
    keep their initial time order — which keeps the program purely linear
    and polynomially solvable. *)

type mode =
  | Continuous
      (** blends of adjacent frontier points, realized by mid-task
          switching *)
  | Discrete_rounded
      (** the blend's average power rounded to the nearest single real
          configuration (the paper's discrete rounding) *)

type stats = { rows : int; cols : int; iterations : int; power_rows : int }

type schedule = {
  objective : float;  (** LP makespan: the performance upper bound *)
  vertex_time : float array;
  blends : Pareto.Frontier.blend array;  (** per tid; [] for zero tasks *)
  power_duals : (int * float) array;
      (** per power row: (representative vertex, seconds of makespan
          saved per extra watt of budget at that event) — the shadow
          prices of equation (11), nonzero exactly where power binds *)
  mode : mode;
  stats : stats;
}

type outcome =
  | Schedule of schedule
  | Infeasible  (** the power cap cannot accommodate every task *)
  | Solver_failure of string

val initial_times : ?reduce_slack:bool -> Scenario.t -> Dag.Schedule.times
(** The power-unconstrained schedule whose vertex order defines the
    events.  [reduce_slack] (default true) applies the paper's
    Section 3.3 modification: off-critical tasks are slowed as much as
    possible without extending the makespan. *)

val to_mps : ?reduce_slack:bool -> Scenario.t -> power_cap:float -> string
(** The compiled LP in MPS format (see {!Lp.Mps}), for cross-checking
    against external solvers. *)

val solve :
  ?mode:mode ->
  ?max_iter:int ->
  ?reduce_slack:bool ->
  ?presolve:bool ->
  ?init:Dag.Schedule.times ->
  Scenario.t ->
  power_cap:float ->
  outcome
(** [solve sc ~power_cap] builds and solves the LP.  [reduce_slack]
    selects the initial schedule (see {!initial_times}); [init]
    overrides it entirely (the event order is taken from these times);
    [presolve] (default true) runs {!Lp.Presolve} before the simplex. *)

val solve_refined :
  ?rounds:int ->
  ?mode:mode ->
  ?max_iter:int ->
  Scenario.t ->
  power_cap:float ->
  outcome
(** Extension beyond the paper: fixed-point refinement of the event
    order.  Each round re-derives the events from the previous round's
    solved schedule and re-solves; every round is a sound, realizable
    bound, and the best is returned. *)
