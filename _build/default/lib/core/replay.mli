(** Replay of an LP/ILP-derived schedule on the simulated cluster
    (paper Section 6.1): each task runs its prescribed configuration
    blend; configuration changes cost a DVFS transition and are skipped
    for tasks under the 1 ms threshold. *)

type validation = {
  result : Simulate.Engine.result;
  lp_makespan : float;
  replay_makespan : float;
  max_power : float;  (** sustained (1 ms window) *)
  power_cap : float;
  within_cap : bool;
  gap_pct : float;  (** replay vs LP makespan, percent *)
}

val policy : Scenario.t -> Event_lp.schedule -> Simulate.Policy.t

val validate :
  ?tol:float -> Scenario.t -> Event_lp.schedule -> power_cap:float -> validation
