(** Stable structural keys for pipeline stages.

    A key is ["stage:digest"] — a stage namespace (so the same content
    digest used by two stages can never alias) plus the hex digest of
    the stage's complete input content.  Keys are deterministic across
    runs, domains and pool sizes: equal inputs always derive equal keys,
    and any input change (a seed, a parameter, a byte of a trace file)
    derives a different one. *)

type t = private string

val v : stage:string -> Putil.Hashing.t -> t
(** [v ~stage h] finishes the hasher and namespaces its digest. *)

val of_digest : stage:string -> string -> t
(** Namespace an already-computed hex digest (e.g. {!Dag.Graph.digest}
    or a file-content digest). *)

val to_string : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
