type t = string

let of_digest ~stage digest = stage ^ ":" ^ digest
let v ~stage h = of_digest ~stage (Putil.Hashing.hex h)
let to_string k = k
let equal = String.equal
let pp = Fmt.string
