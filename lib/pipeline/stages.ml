type source =
  | Synthetic of Workloads.Apps.app * Workloads.Apps.params
  | Trace_file of string
  | Graph of Dag.Graph.t

let source_key = function
  | Synthetic (app, p) ->
      let h = Putil.Hashing.create () in
      Putil.Hashing.string h (Workloads.Apps.app_name app);
      Putil.Hashing.int h p.Workloads.Apps.nranks;
      Putil.Hashing.int h p.Workloads.Apps.iterations;
      Putil.Hashing.int h p.Workloads.Apps.seed;
      Putil.Hashing.float h p.Workloads.Apps.scale;
      Key.v ~stage:"trace" h
  | Trace_file path ->
      (* Content-addressed: renaming or touching the file changes
         nothing; editing a byte of it changes the key. *)
      Key.of_digest ~stage:"trace-file" (Digest.to_hex (Digest.file path))
  | Graph g -> Key.of_digest ~stage:"graph" (Dag.Graph.digest g)

let graph_cache : Dag.Graph.t Putil.Cache.t =
  Putil.Cache.create ~capacity:32 ~name:"graph" ()

(* Graphs round-trip exactly through the textual trace format (%.17g
   floats), so the disk tier serves byte-equal artifacts.  Scenarios and
   prepared LPs hold closures and solver state and stay memory-only. *)
let attach_store store =
  Putil.Cache.set_tier graph_cache
    ~spill:(fun key g -> Putil.Disk_store.put store key (Dag.Trace_io.to_string g))
    ~revive:(fun key ->
      match Putil.Disk_store.get store key with
      | None -> None
      | Some s -> (
          (* the store already digest-checks payloads; a parse failure
             here means a schema change, which must read as a miss *)
          try Some (Dag.Trace_io.of_string s)
          with Dag.Trace_io.Parse_error _ | Failure _ -> None))
    ()

(* Span around an actual stage build (cache hits record nothing: the
   interesting wall time is the construction, and a hit costs nothing
   worth charting). *)
let build_span ~stage ~key f =
  Putil.Obs.span ~cat:"pipeline" ~args:[ ("key", key) ] stage f

let graph = function
  | Graph g -> g
  | Synthetic (app, p) as src ->
      let key = Key.to_string (source_key src) in
      Putil.Cache.find_or_build graph_cache key (fun () ->
          build_span ~stage:"stage:trace" ~key (fun () ->
              Workloads.Apps.generate app p))
  | Trace_file path as src ->
      (* The key digests the content read at lookup time, so a stale
         cache entry for an overwritten file can never be returned. *)
      let key = Key.to_string (source_key src) in
      Putil.Cache.find_or_build graph_cache key (fun () ->
          build_span ~stage:"stage:trace-file" ~key (fun () ->
              Dag.Trace_io.of_file path))

let scenario_key ?(socket_seed = 7) ?(variability = 0.04) src =
  let h = Putil.Hashing.create () in
  Putil.Hashing.string h (Key.to_string (source_key src));
  Putil.Hashing.int h socket_seed;
  Putil.Hashing.float h variability;
  Key.v ~stage:"scenario" h

let scenario_cache : Core.Scenario.t Putil.Cache.t =
  Putil.Cache.create ~capacity:32 ~name:"scenario" ()

let scenario ?(socket_seed = 7) ?(variability = 0.04) src =
  let key = Key.to_string (scenario_key ~socket_seed ~variability src) in
  Putil.Cache.find_or_build scenario_cache key (fun () ->
      build_span ~stage:"stage:scenario" ~key (fun () ->
          Core.Scenario.make ~socket_seed ~variability (graph src)))

let frontier = Pareto.Frontier.convex_memo

let prepare_key ?(reduce_slack = true) ?(presolve = true)
    ?(objective = Core.Objective.Makespan_under_cap) sc ~power_cap =
  let h = Putil.Hashing.create () in
  Core.Scenario.digest_fold h sc;
  Putil.Hashing.bool h reduce_slack;
  Putil.Hashing.bool h presolve;
  Putil.Hashing.float h power_cap;
  Core.Objective.digest_fold h objective;
  (* Solver-strategy knobs participate in the content key: the
     decomposition is certified byte-compatible with the monolithic
     path, but a cached artifact must never outlive the solver
     configuration that produced it. *)
  Putil.Hashing.bool h (Lp.Decomp.dw_enabled ());
  Putil.Hashing.int h (Lp.Decomp.dw_min_ranks ());
  Putil.Hashing.float h (Lp.Decomp.dw_gap ());
  Key.v ~stage:"prepare" h

let prepare_cache : Core.Event_lp.prepared Putil.Cache.t =
  Putil.Cache.create ~capacity:16 ~name:"prepare" ()

let prepare ?(reduce_slack = true) ?(presolve = true) ?objective sc ~power_cap
    =
  let key =
    Key.to_string (prepare_key ~reduce_slack ~presolve ?objective sc ~power_cap)
  in
  Putil.Cache.find_or_build prepare_cache key (fun () ->
      build_span ~stage:"stage:prepare" ~key (fun () ->
          Core.Event_lp.prepare ~reduce_slack ~presolve ?objective sc
            ~power_cap))

(* What-if edits re-key through the edited scenario: Scenario.digest
   hashes the frontiers themselves, so any domain edit perturbs the
   digest and a stale prepared model can never be served, while the
   exact inverse edit hashes back to the original key. *)
let edit_key ?(reduce_slack = true) ?(presolve = true) ?objective sc edits
    ~power_cap =
  prepare_key ~reduce_slack ~presolve ?objective
    (Core.Event_lp.edit_scenario sc edits)
    ~power_cap

(* Objective-mode switches re-key the same way: the target mode's key on
   the unchanged scenario — what a cached handle for the switched world
   would live under (the digest carries the deadline, so every deadline
   is its own entry, exactly as every cap is). *)
let switch_key ?(reduce_slack = true) ?(presolve = true) sc objective
    ~power_cap =
  prepare_key ~reduce_slack ~presolve ~objective sc ~power_cap
