(** The typed construction pipeline behind every experiment driver:

    {v
    trace acquisition -> graph build -> frontier enumeration
                      -> scenario assembly -> LP model preparation
    v}

    Each stage is a named, cached function with a stable structural key
    (see {!Key}): stage outputs are artifacts addressed by the content
    of their inputs, so sweeps that vary only the power cap (or only the
    policy) hit the cache on everything upstream of the LP solve, and
    concurrent pool workers requesting the same artifact build it once
    (single-flight, {!Putil.Cache}).  With caching disabled
    ([POWERLIM_CACHE=0] or [--no-cache]) every stage simply recomputes —
    outputs are byte-identical either way.

    Frontier enumeration runs inside scenario assembly (see
    {!Core.Scenario.make}) against the process-wide frontier cache; it
    is also exposed directly as {!frontier}. *)

type source =
  | Synthetic of Workloads.Apps.app * Workloads.Apps.params
      (** a generated benchmark trace; keyed by app and parameters *)
  | Trace_file of string
      (** an on-disk trace; keyed by the file's {e content} digest *)
  | Graph of Dag.Graph.t
      (** an already-built graph; keyed by its structural digest *)

val source_key : source -> Key.t
(** The trace-acquisition stage's key.  [Trace_file] reads the file, so
    this raises [Sys_error] when the path is unreadable. *)

val graph : source -> Dag.Graph.t
(** Graph-build stage: generate / parse / pass through the source's
    graph.  [Synthetic] and [Trace_file] builds are cached. *)

val attach_store : Putil.Disk_store.t -> unit
(** Connect the graph-build cache to a persistent tier: evicted graphs
    spill to [store] (serialized through {!Dag.Trace_io}, an exact
    round-trip) and misses consult it before rebuilding, so a restarted
    process reuses graphs an earlier one computed.  Scenario and
    prepared-LP artifacts hold closures and stay memory-only.  Calling
    again replaces the tier. *)

val scenario_key : ?socket_seed:int -> ?variability:float -> source -> Key.t
(** Key of the scenario-assembly stage: {!source_key} plus the socket
    fleet's seed and variability (defaults as {!Core.Scenario.make}). *)

val scenario : ?socket_seed:int -> ?variability:float -> source -> Core.Scenario.t
(** Scenario-assembly stage: {!graph} plus socket fleet plus per-task
    convex frontiers ({!Core.Scenario.make}), cached under
    {!scenario_key}.  Repeated requests for an equal source and
    parameters return one physically shared scenario. *)

val frontier :
  ?params:Machine.Socket.params ->
  Machine.Socket.t ->
  Machine.Profile.t ->
  Pareto.Frontier.t
(** Frontier-enumeration stage ({!Pareto.Frontier.convex_memo}). *)

val prepare_key :
  ?reduce_slack:bool ->
  ?presolve:bool ->
  ?objective:Core.Objective.mode ->
  Core.Scenario.t ->
  power_cap:float ->
  Key.t
(** Key of the LP-preparation stage: the scenario's digest plus the
    build flags, the reference cap the model is anchored at and the
    objective mode (default {!Core.Objective.Makespan_under_cap}; an
    energy mode's deadline is part of the digest). *)

val prepare :
  ?reduce_slack:bool ->
  ?presolve:bool ->
  ?objective:Core.Objective.mode ->
  Core.Scenario.t ->
  power_cap:float ->
  Core.Event_lp.prepared
(** LP-model-preparation stage: {!Core.Event_lp.prepare} cached under
    {!prepare_key}.  The reference cap is part of the key, so a cached
    model is reused only by solves that would have prepared at the very
    same cap — re-solves at other caps go through
    {!Core.Event_lp.solve_prepared}'s RHS patching as before (deadlines
    likewise through {!Core.Event_lp.solve_prepared_deadline}).
    Prepared models are read-only during re-solves, so sharing one
    across domains is safe. *)

val edit_key :
  ?reduce_slack:bool ->
  ?presolve:bool ->
  ?objective:Core.Objective.mode ->
  Core.Scenario.t ->
  Core.Event_lp.domain_edit list ->
  power_cap:float ->
  Key.t
(** Key of the preparation stage for the {e edited} scenario
    ([prepare_key (Core.Event_lp.edit_scenario sc edits)]).  Since
    {!Core.Scenario.digest} hashes every task frontier, an edited
    scenario always derives a fresh key (no stale prepared artifact can
    be served), and re-applying the exact inverse edit derives the
    original key again. *)

val switch_key :
  ?reduce_slack:bool ->
  ?presolve:bool ->
  Core.Scenario.t ->
  Core.Objective.mode ->
  power_cap:float ->
  Key.t
(** Key of the preparation stage for the same scenario re-targeted at
    another objective mode ([prepare_key ~objective sc]) — where a
    cached handle produced by {!Core.Event_lp.switch_objective} for that
    mode would live.  Switching back derives the original key again. *)
