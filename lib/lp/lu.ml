(** Sparse LU factorization of a simplex basis.

    Left-looking column factorization in the style of Gilbert–Peierls.
    The factorization of the row/column-permuted basis satisfies
    [P (B Pi_c) = L U] where [P] is the pivoting row permutation, [Pi_c]
    a sparsest-first column pre-ordering, [L] unit lower triangular and
    [U] upper triangular.  Row indices of the stored factors are in
    {e pivot order}, which makes the triangular solves straightforward;
    the column permutation is applied inside [solve]/[solve_t] so callers
    never see it.

    When the basis is (numerically) singular the offending columns are
    replaced by unit columns of uncovered rows so that a usable
    factorization is always produced; the caller inspects [replaced] and
    repairs its basis. *)

(** Structure-only transposes of the factors, built lazily: [usucc]
    lists, for each pivot position [i], the columns [k] with
    [i ∈ urows.(k)] (and [lsucc] likewise for [L]).  The gather-form
    transpose solve needs them to know which positions a nonzero
    {e reaches}; the numeric gathers themselves still read the original
    column storage, so sparse and dense solves perform identical
    floating-point operations. *)
type tsym = {
  cpos : int array;  (** inverse of [cperm] *)
  usucc_ptr : int array;
  usucc_ind : int array;
  lsucc_ptr : int array;
  lsucc_ind : int array;
}

type t = {
  m : int;
  p : int array;  (** [p.(k)] = original row chosen as pivot at step [k] *)
  pos : int array;  (** inverse of [p] *)
  cperm : int array;
      (** [cperm.(k)] = input column factored at step [k]; columns are
          pre-ordered sparsest-first to limit fill *)
  lrows : int array array;  (** column [k] of [L] below diagonal, pivot-order rows *)
  lvals : float array array;
  urows : int array array;  (** column [k] of [U] above diagonal, pivot-order rows *)
  uvals : float array array;
  udiag : float array;
  replaced : (int * int) list;
      (** [(col, row)]: basis column [col] was singular and stands replaced
          by the unit column of original row [row]. *)
  mutable tsym : tsym option;
      (** lazily built transpose structure for sparse transpose solves *)
}

let nnz t =
  let s = ref t.m in
  Array.iter (fun a -> s := !s + Array.length a) t.lrows;
  Array.iter (fun a -> s := !s + Array.length a) t.urows;
  !s

(** Relative magnitude threshold for sparsity-driven pivoting: any row
    within this factor of the largest eligible magnitude may be chosen,
    and among those the sparsest row wins.  This is classic threshold
    partial pivoting; with pure magnitude pivoting, LP bases (which are
    nearly triangular but arbitrarily ordered) fill catastrophically. *)
let pivot_threshold = 0.1

let sort_prefix (a : int array) n =
  let rec qsort lo hi =
    if hi - lo >= 12 then begin
      (* median-of-3 pivot *)
      let mid = (lo + hi) / 2 in
      let x = a.(lo) and y = a.(mid) and z = a.(hi) in
      let piv =
        if x < y then if y < z then y else if x < z then z else x
        else if x < z then x
        else if y < z then z
        else y
      in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < piv do incr i done;
        while a.(!j) > piv do decr j done;
        if !i <= !j then begin
          let tmp = a.(!i) in
          a.(!i) <- a.(!j);
          a.(!j) <- tmp;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
    else
      for k = lo + 1 to hi do
        let v = a.(k) in
        let m = ref k in
        while !m > lo && a.(!m - 1) > v do
          a.(!m) <- a.(!m - 1);
          decr m
        done;
        a.(!m) <- v
      done
  in
  if n > 1 then qsort 0 (n - 1)

(** [factor ~m col_iter] factorizes the [m]×[m] matrix whose [k]-th column
    is enumerated by [col_iter k f] (calling [f row value] for each
    entry).

    [?bands] assigns each input column a staircase band (for the event
    LP: the temporal stage of the basic variable).  Columns are then
    pre-ordered band-major with the sparsest-first (Markowitz-style)
    rule breaking ties within a band, which keeps fill confined to the
    staircase blocks of chain-structured bases.  Without [?bands] the
    ordering is exactly the historical sparsest-first one. *)
let factor ?(symbolic = true) ?bands ~m col_iter0 =
  let pos = Array.make m (-1) in
  let p = Array.make m (-1) in
  (* static nonzero count per row and column of the input *)
  let rowcount = Array.make m 0 in
  let colcount = Array.make m 0 in
  for k = 0 to m - 1 do
    col_iter0 k (fun i v ->
        if v <> 0.0 then begin
          rowcount.(i) <- rowcount.(i) + 1;
          colcount.(k) <- colcount.(k) + 1
        end)
  done;
  (* factor sparsest columns first: a cheap fill-reducing ordering;
     with bands, band-major first so the staircase structure dominates *)
  let cperm = Array.init m Fun.id in
  (match bands with
  | None ->
      Array.sort
        (fun a b ->
          match Int.compare colcount.(a) colcount.(b) with
          | 0 -> Int.compare a b
          | c -> c)
        cperm
  | Some (bd : int array) ->
      Array.sort
        (fun a b ->
          match Int.compare bd.(a) bd.(b) with
          | 0 -> (
              match Int.compare colcount.(a) colcount.(b) with
              | 0 -> Int.compare a b
              | c -> c)
          | c -> c)
        cperm);
  let col_iter k f = col_iter0 cperm.(k) f in
  let lrows = Array.make m [||] and lvals = Array.make m [||] in
  let urows = Array.make m [||] and uvals = Array.make m [||] in
  let udiag = Array.make m 0.0 in
  (* Dense workspace over original row indices.  [inwork] is the
     membership mark for [touched]: testing [work.(i) = 0.0] instead
     would re-register rows whose value cancelled exactly and later
     became nonzero again, duplicating factor entries. *)
  let work = Array.make m 0.0 in
  let inwork = Array.make m false in
  let touched = Array.make m 0 in
  (* Workspace for the symbolic elimination step: which previously
     factored columns can reach the current column's support through the
     L dependency DAG.  [rvis] is stamped with the current column [k],
     so no clearing between columns. *)
  let rstack = Array.make m 0 in
  let rreach = Array.make m 0 in
  let rvis = Array.make m (-1) in
  let replaced = ref [] in
  (* L columns are built with original row indices first, then remapped to
     pivot order once all pivots are known. *)
  for k = 0 to m - 1 do
    let ntouch = ref 0 in
    let touch i =
      if not inwork.(i) then begin
        inwork.(i) <- true;
        touched.(!ntouch) <- i;
        incr ntouch
      end
    in
    let scatter i v =
      if v <> 0.0 then begin
        touch i;
        work.(i) <- work.(i) +. v
      end
    in
    col_iter k scatter;
    (* Symbolic elimination step (Gilbert–Peierls): only columns [j < k]
       reachable from the scattered support through the L dependency DAG
       can hold a nonzero at their pivot row, so DFS the closure instead
       of scanning all [k] prior columns.  Processing the reach set in
       ascending pivot order with the same [xj <> 0.0] guard performs
       exactly the floating-point operations of the full scan, in the
       same order — the factors are bitwise identical, and
       [~symbolic:false] keeps the plain scan around as the measurable
       pre-hypersparse baseline. *)
    if symbolic then begin
      let nreach = ref 0 in
      for e0 = 0 to !ntouch - 1 do
        let seed = pos.(touched.(e0)) in
        if seed >= 0 && seed < k && rvis.(seed) <> k then begin
          rvis.(seed) <- k;
          rstack.(0) <- seed;
          let top = ref 1 in
          while !top > 0 do
            decr top;
            let u = rstack.(!top) in
            rreach.(!nreach) <- u;
            incr nreach;
            let rs = lrows.(u) in
            for e = 0 to Array.length rs - 1 do
              (* lrows still holds original row indices at this point *)
              let w = pos.(rs.(e)) in
              if w >= 0 && w < k && rvis.(w) <> k then begin
                rvis.(w) <- k;
                rstack.(!top) <- w;
                incr top
              end
            done
          done
        end
      done;
      sort_prefix rreach !nreach;
      for e0 = 0 to !nreach - 1 do
        let j = rreach.(e0) in
        let xj = work.(p.(j)) in
        if xj <> 0.0 then begin
          let rs = lrows.(j) and vs = lvals.(j) in
          for e = 0 to Array.length rs - 1 do
            let i = rs.(e) in
            touch i;
            work.(i) <- work.(i) -. (xj *. vs.(e))
          done
        end
      done
    end
    else
      for j = 0 to k - 1 do
        let xj = work.(p.(j)) in
        if xj <> 0.0 then begin
          let rs = lrows.(j) and vs = lvals.(j) in
          for e = 0 to Array.length rs - 1 do
            let i = rs.(e) in
            touch i;
            work.(i) <- work.(i) -. (xj *. vs.(e))
          done
        end
      done;
    (* Threshold pivoting: among not-yet-pivoted rows within
       [pivot_threshold] of the max magnitude, take the sparsest. *)
    let pmag = ref 0.0 in
    for e = 0 to !ntouch - 1 do
      let i = touched.(e) in
      if pos.(i) < 0 then begin
        let a = Float.abs work.(i) in
        if a > !pmag then pmag := a
      end
    done;
    let piv = ref (-1) and pcount = ref max_int in
    if !pmag > 0.0 then begin
      let cutoff = pivot_threshold *. !pmag in
      for e = 0 to !ntouch - 1 do
        let i = touched.(e) in
        if pos.(i) < 0 && Float.abs work.(i) >= cutoff then
          if
            rowcount.(i) < !pcount
            || (rowcount.(i) = !pcount
               && !piv >= 0
               && Float.abs work.(i) > Float.abs work.(!piv))
          then begin
            piv := i;
            pcount := rowcount.(i)
          end
      done
    end;
    if !piv < 0 || !pmag < 1e-12 then begin
      (* Singular column: substitute the unit column of the first
         uncovered row.  Recorded so the caller can repair its basis. *)
      let r = ref 0 in
      while !r < m && pos.(!r) >= 0 do incr r done;
      assert (!r < m);
      p.(k) <- !r;
      pos.(!r) <- k;
      udiag.(k) <- 1.0;
      (* U column: entries of the original column at already-pivoted rows
         are dropped with the column itself. *)
      urows.(k) <- [||];
      uvals.(k) <- [||];
      lrows.(k) <- [||];
      lvals.(k) <- [||];
      replaced := (k, !r) :: !replaced
    end
    else begin
      let r = !piv in
      p.(k) <- r;
      pos.(r) <- k;
      let d = work.(r) in
      udiag.(k) <- d;
      (* Split workspace into U (pivoted rows) and L (unpivoted rows). *)
      let nu = ref 0 and nl = ref 0 in
      for e = 0 to !ntouch - 1 do
        let i = touched.(e) in
        if i <> r && work.(i) <> 0.0 then
          if pos.(i) >= 0 && pos.(i) < k then incr nu else incr nl
      done;
      let ur = Array.make !nu 0 and uv = Array.make !nu 0.0 in
      let lr = Array.make !nl 0 and lv = Array.make !nl 0.0 in
      let iu = ref 0 and il = ref 0 in
      for e = 0 to !ntouch - 1 do
        let i = touched.(e) in
        if i <> r && work.(i) <> 0.0 then
          if pos.(i) >= 0 && pos.(i) < k then begin
            ur.(!iu) <- pos.(i);
            uv.(!iu) <- work.(i);
            incr iu
          end
          else begin
            (* original row index for now; remapped below *)
            lr.(!il) <- i;
            lv.(!il) <- work.(i) /. d;
            incr il
          end
      done;
      urows.(k) <- ur;
      uvals.(k) <- uv;
      lrows.(k) <- lr;
      lvals.(k) <- lv
    end;
    (* Clear workspace. *)
    for e = 0 to !ntouch - 1 do
      work.(touched.(e)) <- 0.0;
      inwork.(touched.(e)) <- false
    done
  done;
  (* Remap L row indices from original rows to pivot order. *)
  for k = 0 to m - 1 do
    let rs = lrows.(k) in
    for e = 0 to Array.length rs - 1 do
      rs.(e) <- pos.(rs.(e))
    done
  done;
  (* [replaced] reports input-column indices *)
  let replaced = List.map (fun (k, r) -> (cperm.(k), r)) !replaced in
  { m; p; pos; cperm; lrows; lvals; urows; uvals; udiag; replaced; tsym = None }

(** [solve t b x] solves [B x = b].  [b] is indexed by original rows,
    [x] by basis position.  Both arrays have length [m]; [b] is not
    modified, [x] is overwritten.  A scratch array [scratch] of length [m]
    must be provided. *)
let solve t ~(b : float array) ~(x : float array) ~(scratch : float array) =
  let m = t.m in
  (* z = L^{-1} P b, computed in pivot order. *)
  for k = 0 to m - 1 do scratch.(k) <- b.(t.p.(k)) done;
  for k = 0 to m - 1 do
    let zk = scratch.(k) in
    if zk <> 0.0 then begin
      let rs = t.lrows.(k) and vs = t.lvals.(k) in
      for e = 0 to Array.length rs - 1 do
        scratch.(rs.(e)) <- scratch.(rs.(e)) -. (vs.(e) *. zk)
      done
    end
  done;
  (* Back substitution with column-stored U; results map back through
     the column pre-ordering. *)
  for k = m - 1 downto 0 do
    let xk = scratch.(k) /. t.udiag.(k) in
    x.(t.cperm.(k)) <- xk;
    if xk <> 0.0 then begin
      let rs = t.urows.(k) and vs = t.uvals.(k) in
      for e = 0 to Array.length rs - 1 do
        scratch.(rs.(e)) <- scratch.(rs.(e)) -. (vs.(e) *. xk)
      done
    end
  done

(** [solve_t t c y] solves [B^T y = c].  [c] is indexed by basis position,
    [y] by original rows. *)
let solve_t t ~(c : float array) ~(y : float array) ~(scratch : float array) =
  let m = t.m in
  (* U^T w = c: forward, gather form; the right-hand side maps through
     the column pre-ordering. *)
  for k = 0 to m - 1 do
    let acc = ref c.(t.cperm.(k)) in
    let rs = t.urows.(k) and vs = t.uvals.(k) in
    for e = 0 to Array.length rs - 1 do
      acc := !acc -. (vs.(e) *. scratch.(rs.(e)))
    done;
    scratch.(k) <- !acc /. t.udiag.(k)
  done;
  (* L^T v = w: backward, gather form (unit diagonal). *)
  for k = m - 1 downto 0 do
    let acc = ref scratch.(k) in
    let rs = t.lrows.(k) and vs = t.lvals.(k) in
    for e = 0 to Array.length rs - 1 do
      acc := !acc -. (vs.(e) *. scratch.(rs.(e)))
    done;
    scratch.(k) <- !acc
  done;
  for k = 0 to m - 1 do y.(t.p.(k)) <- scratch.(k) done

(* ------------------------------------------------------------------ *)
(* Hypersparse right-hand-side solves (Gilbert–Peierls reachability)    *)
(* ------------------------------------------------------------------ *)

(* Invert the column pre-ordering and build structure-only transposes of
   both factors: [usucc.(i)] = columns [k] with [i ∈ urows.(k)], i.e.
   the positions a nonzero at [i] reaches in the U^T forward solve. *)
let build_tsym t =
  let m = t.m in
  let cpos = Array.make m 0 in
  for k = 0 to m - 1 do
    cpos.(t.cperm.(k)) <- k
  done;
  let transpose (cols : int array array) =
    let ptr = Array.make (m + 1) 0 in
    for k = 0 to m - 1 do
      let rs = cols.(k) in
      for e = 0 to Array.length rs - 1 do
        ptr.(rs.(e) + 1) <- ptr.(rs.(e) + 1) + 1
      done
    done;
    for i = 0 to m - 1 do
      ptr.(i + 1) <- ptr.(i + 1) + ptr.(i)
    done;
    let ind = Array.make ptr.(m) 0 in
    let fill = Array.copy ptr in
    for k = 0 to m - 1 do
      let rs = cols.(k) in
      for e = 0 to Array.length rs - 1 do
        let i = rs.(e) in
        ind.(fill.(i)) <- k;
        fill.(i) <- fill.(i) + 1
      done
    done;
    (ptr, ind)
  in
  let usucc_ptr, usucc_ind = transpose t.urows in
  let lsucc_ptr, lsucc_ind = transpose t.lrows in
  { cpos; usucc_ptr; usucc_ind; lsucc_ptr; lsucc_ind }

let tsym t =
  match t.tsym with
  | Some s -> s
  | None ->
      let s = build_tsym t in
      t.tsym <- Some s;
      s

(** Workspace for the sparse solves: a timestamped value accumulator (so
    the per-solve reset is O(touched), never O(m)), reach lists, a DFS
    stack with its own visit stamps, and dense scratch for the fallback
    path.  One [swork] serves any number of factorizations of the same
    dimension; it is single-owner mutable state (one per solver call). *)
type swork = {
  sv : float array;  (** stamped values *)
  sstamp : int array;
  mutable sepoch : int;
  r1 : int array;  (** first-stage reach list *)
  r2 : int array;  (** second-stage reach list *)
  dstack : int array;
  vis : int array;
  mutable vepoch : int;
  db : float array;  (** dense RHS for the fallback, kept all-zero *)
  ds : float array;  (** dense scratch for the fallback *)
}

let make_swork m =
  {
    sv = Array.make m 0.0;
    sstamp = Array.make m (-1);
    sepoch = 0;
    r1 = Array.make m 0;
    r2 = Array.make m 0;
    dstack = Array.make m 0;
    vis = Array.make m (-1);
    vepoch = 0;
    db = Array.make m 0.0;
    ds = Array.make m 0.0;
  }

(* Sort the first [n] entries of [a] ascending, in place.  The reach
   sets must be processed in pivot order for the numeric passes to
   perform the same floating-point operations, in the same order, as the
   dense sweeps. *)
(* Sparse triangular solves stay worthwhile until the result fills in;
   past a quarter of the dimension the dense sweep's streaming access
   wins and the symbolic pass is pure overhead. *)
let reach_cutoff m = 8 + (m / 4)

(* Reachability over [adj] (array-of-arrays adjacency) from the seeds
   already placed in [out.(0 .. nseeds-1)].  Grows [out] into the full
   closure and returns its size, or [-1] once it exceeds [cutoff]
   (caller falls back to the dense kernel).  A fresh visit epoch is used
   per call; seeds must be distinct. *)
let reach_arr sw (adj : int array array) ~nseeds ~(out : int array) ~cutoff =
  sw.vepoch <- sw.vepoch + 1;
  let ep = sw.vepoch in
  let cnt = ref nseeds and top = ref 0 and over = ref false in
  for s = 0 to nseeds - 1 do
    sw.vis.(out.(s)) <- ep;
    sw.dstack.(s) <- out.(s)
  done;
  top := nseeds;
  while !top > 0 && not !over do
    decr top;
    let k = sw.dstack.(!top) in
    let a = adj.(k) in
    for e = 0 to Array.length a - 1 do
      let i = a.(e) in
      if sw.vis.(i) <> ep then begin
        sw.vis.(i) <- ep;
        if !cnt >= cutoff then over := true
        else begin
          out.(!cnt) <- i;
          sw.dstack.(!top) <- i;
          incr top;
          incr cnt
        end
      end
    done
  done;
  if !over then -1 else !cnt

(* Same, over a (ptr, ind) compressed adjacency. *)
let reach_ptr sw (ptr : int array) (ind : int array) ~nseeds ~(out : int array)
    ~cutoff =
  sw.vepoch <- sw.vepoch + 1;
  let ep = sw.vepoch in
  let cnt = ref nseeds and top = ref 0 and over = ref false in
  for s = 0 to nseeds - 1 do
    sw.vis.(out.(s)) <- ep;
    sw.dstack.(s) <- out.(s)
  done;
  top := nseeds;
  while !top > 0 && not !over do
    decr top;
    let k = sw.dstack.(!top) in
    for e = ptr.(k) to ptr.(k + 1) - 1 do
      let i = ind.(e) in
      if sw.vis.(i) <> ep then begin
        sw.vis.(i) <- ep;
        if !cnt >= cutoff then over := true
        else begin
          out.(!cnt) <- i;
          sw.dstack.(!top) <- i;
          incr top;
          incr cnt
        end
      end
    done
  done;
  if !over then -1 else !cnt

(** [solve_sp t sw ~nb ~bidx ~b ~x ~xind] solves [B x = b] for a sparse
    right-hand side: [b] is a dense array whose nonzeros are exactly at
    the [nb] distinct original-row indices [bidx.(0 .. nb-1)].

    Returns [-1] when the result filled in past the density cutoff — the
    solve then ran the dense kernel and every entry of [x] is valid
    (exactly as {!solve}).  Otherwise returns the nonzero count [n]:
    [xind.(0 .. n-1)] holds the (sorted, ascending) column positions of
    all possibly-nonzero entries of [x], [x] is written only there, and
    entries of [x] outside the list are untouched — callers keep [x]
    all-zero between solves, which makes the reset O(n).

    Numerics match {!solve} bit for bit on the nonzero pattern: the
    sparse path performs the same operations in the same order and only
    skips positions the dense sweep would compute as (signed) zero. *)
let solve_sp t sw ~nb ~(bidx : int array) ~(b : float array) ~(x : float array)
    ~(xind : int array) =
  let m = t.m in
  let cutoff = reach_cutoff m in
  let dense () =
    for s = 0 to nb - 1 do
      sw.db.(bidx.(s)) <- b.(bidx.(s))
    done;
    solve t ~b:sw.db ~x ~scratch:sw.ds;
    for s = 0 to nb - 1 do
      sw.db.(bidx.(s)) <- 0.0
    done;
    -1
  in
  if nb >= cutoff then dense ()
  else begin
    (* Stage-1 reach: closure of the seed positions under L's columns. *)
    for s = 0 to nb - 1 do
      sw.r1.(s) <- t.pos.(bidx.(s))
    done;
    let n1 = reach_arr sw t.lrows ~nseeds:nb ~out:sw.r1 ~cutoff in
    if n1 < 0 then dense ()
    else begin
      (* Stage-2 reach: closure of stage 1 under U's columns. *)
      Array.blit sw.r1 0 sw.r2 0 n1;
      let n2 = reach_arr sw t.urows ~nseeds:n1 ~out:sw.r2 ~cutoff in
      if n2 < 0 then dense ()
      else begin
        sort_prefix sw.r1 n1;
        sort_prefix sw.r2 n2;
        sw.sepoch <- sw.sepoch + 1;
        let ep = sw.sepoch in
        for e = 0 to n2 - 1 do
          let k = sw.r2.(e) in
          sw.sv.(k) <- 0.0;
          sw.sstamp.(k) <- ep
        done;
        for s = 0 to nb - 1 do
          let i = bidx.(s) in
          sw.sv.(t.pos.(i)) <- b.(i)
        done;
        (* z = L^{-1} P b over the stage-1 reach, ascending. *)
        for e = 0 to n1 - 1 do
          let k = sw.r1.(e) in
          let zk = sw.sv.(k) in
          if zk <> 0.0 then begin
            let rs = t.lrows.(k) and vs = t.lvals.(k) in
            for q = 0 to Array.length rs - 1 do
              sw.sv.(rs.(q)) <- sw.sv.(rs.(q)) -. (vs.(q) *. zk)
            done
          end
        done;
        (* Back substitution over the stage-2 reach, descending. *)
        for e = n2 - 1 downto 0 do
          let k = sw.r2.(e) in
          let xk = sw.sv.(k) /. t.udiag.(k) in
          x.(t.cperm.(k)) <- xk;
          xind.(e) <- t.cperm.(k);
          if xk <> 0.0 then begin
            let rs = t.urows.(k) and vs = t.uvals.(k) in
            for q = 0 to Array.length rs - 1 do
              sw.sv.(rs.(q)) <- sw.sv.(rs.(q)) -. (vs.(q) *. xk)
            done
          end
        done;
        sort_prefix xind n2;
        n2
      end
    end
  end

(** [solve_t_sp t sw ~nc ~cidx ~c ~y ~yind] solves [B^T y = c] for a
    sparse right-hand side: [c] dense with nonzeros exactly at the [nc]
    distinct basis positions [cidx.(0 .. nc-1)].  Same contract as
    {!solve_sp}: [-1] means the dense kernel ran and all of [y] is
    valid; otherwise [yind] lists the (sorted) original-row indices of
    the possibly-nonzero entries of [y]. *)
let solve_t_sp t sw ~nc ~(cidx : int array) ~(c : float array)
    ~(y : float array) ~(yind : int array) =
  let m = t.m in
  let cutoff = reach_cutoff m in
  let dense () =
    for s = 0 to nc - 1 do
      sw.db.(cidx.(s)) <- c.(cidx.(s))
    done;
    solve_t t ~c:sw.db ~y ~scratch:sw.ds;
    for s = 0 to nc - 1 do
      sw.db.(cidx.(s)) <- 0.0
    done;
    -1
  in
  if nc >= cutoff then dense ()
  else begin
    let ts = tsym t in
    (* Stage-1 reach: nonzeros of c (mapped to pivot positions) spread
       through U^T along the transpose structure. *)
    for s = 0 to nc - 1 do
      sw.r1.(s) <- ts.cpos.(cidx.(s))
    done;
    let n1 = reach_ptr sw ts.usucc_ptr ts.usucc_ind ~nseeds:nc ~out:sw.r1 ~cutoff in
    if n1 < 0 then dense ()
    else begin
      Array.blit sw.r1 0 sw.r2 0 n1;
      let n2 =
        reach_ptr sw ts.lsucc_ptr ts.lsucc_ind ~nseeds:n1 ~out:sw.r2 ~cutoff
      in
      if n2 < 0 then dense ()
      else begin
        sort_prefix sw.r1 n1;
        sort_prefix sw.r2 n2;
        sw.sepoch <- sw.sepoch + 1;
        let ep = sw.sepoch in
        for e = 0 to n2 - 1 do
          let k = sw.r2.(e) in
          sw.sv.(k) <- 0.0;
          sw.sstamp.(k) <- ep
        done;
        for s = 0 to nc - 1 do
          let j = cidx.(s) in
          sw.sv.(ts.cpos.(j)) <- c.(j)
        done;
        (* U^T w = c: forward gather over the stage-1 reach.  Gathered
           positions outside the reach read as exact zero through the
           stamp — the dense sweep computes (signed) zero there. *)
        for e = 0 to n1 - 1 do
          let k = sw.r1.(e) in
          let acc = ref sw.sv.(k) in
          let rs = t.urows.(k) and vs = t.uvals.(k) in
          for q = 0 to Array.length rs - 1 do
            let i = rs.(q) in
            let wi = if sw.sstamp.(i) = ep then sw.sv.(i) else 0.0 in
            acc := !acc -. (vs.(q) *. wi)
          done;
          sw.sv.(k) <- !acc /. t.udiag.(k)
        done;
        (* L^T v = w: backward gather over the stage-2 reach. *)
        for e = n2 - 1 downto 0 do
          let k = sw.r2.(e) in
          let acc = ref sw.sv.(k) in
          let rs = t.lrows.(k) and vs = t.lvals.(k) in
          for q = 0 to Array.length rs - 1 do
            let i = rs.(q) in
            let vi = if sw.sstamp.(i) = ep then sw.sv.(i) else 0.0 in
            acc := !acc -. (vs.(q) *. vi)
          done;
          sw.sv.(k) <- !acc;
          y.(t.p.(k)) <- !acc;
          yind.(e) <- t.p.(k)
        done;
        sort_prefix yind n2;
        n2
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Bordered basis updates                                              *)
(* ------------------------------------------------------------------ *)

(* Growing a factorized basis B by one bordered row/column, or shrinking
   it by one row together with one basis column, reduces to triangular
   solves against the existing factors: the Schur-complement pivot of
   the bordered system is the eta diagonal the grown factorization would
   pivot on, and the unit solves below expose, position by position, the
   pivot magnitude available to each candidate pairing of a deletion.
   Lp.Edit uses these to map a basis across structural edits; a tiny
   pivot means the paired update would be singular and the caller falls
   back to a cold solve. *)

let unit_ftran t ~row =
  let x = Array.make t.m 0.0 and b = Array.make t.m 0.0 in
  let scratch = Array.make t.m 0.0 in
  b.(row) <- 1.0;
  solve t ~b ~x ~scratch;
  x

let unit_btran t ~pos =
  let y = Array.make t.m 0.0 and c = Array.make t.m 0.0 in
  let scratch = Array.make t.m 0.0 in
  c.(pos) <- 1.0;
  solve_t t ~c ~y ~scratch;
  y

let bordered_pivot t ~col ~row ~d =
  let b = Array.make t.m 0.0 in
  List.iter (fun (i, v) -> b.(i) <- b.(i) +. v) col;
  let x = Array.make t.m 0.0 and scratch = Array.make t.m 0.0 in
  solve t ~b ~x ~scratch;
  List.fold_left (fun acc (k, v) -> acc -. (v *. x.(k))) d row

(* ------------------------------------------------------------------ *)
(* Forrest–Tomlin updates                                              *)
(* ------------------------------------------------------------------ *)

(** Forrest–Tomlin update of a factorization: replacing basis column
    [r] by an entering column [a] turns column [cpos r] of [U] into the
    spike [s = E_n ⋯ E_1 L⁻¹ P a]; the spiked slot is cyclically
    permuted to the border of the active order, and the old row of [U]
    (now below the diagonal) is eliminated against the remaining rows.
    The row operations are recorded as a {e row eta}
    [E = I − Σ mu_c e_t e_cᵀ] applied between [L] and [U] in every
    subsequent solve; unlike product-form column etas they create no
    fill outside the eliminated row, so [U] stays sparse and banded on
    staircase bases.

    [L] (and the slot ↔ basis-position binding [cperm]) stay frozen;
    [U] becomes dynamic: stored both column-wise (for the solves, so
    that with zero updates the kernels replay {!solve}/{!solve_t} bit
    for bit) and row-wise (for the border elimination).  Entry values
    never change after insertion, so the two copies stay consistent by
    construction.  The active elimination order is a doubly linked list
    over slots with monotone integer keys ([okey]); moving a slot to
    the border is O(1). *)
module Ft = struct
  (* Reusable m-sized workspace: one per solver, survives
     refactorizations.  Single-owner mutable state, like [swork]. *)
  type wsp = {
    sw : swork;
    okey : int array;  (** current elimination order key per slot *)
    onext : int array;
    oprev : int array;
    spike : float array;
        (** retained post-L post-eta intermediate of the last entering
            column FTRAN — the Forrest–Tomlin spike; kept-zero outside
            its support *)
    spike_ind : int array;
    mutable spike_n : int;  (** -1 = whole array valid (dense) *)
    acc : float array;  (** border-row elimination accumulator *)
    accst : int array;
    mutable accep : int;
    heap : int array;  (** pending border-row columns, min-heap on okey *)
    hseen : int array;
    mutable hepoch : int;
  }

  let make_wsp m =
    {
      sw = make_swork m;
      okey = Array.make m 0;
      onext = Array.make m (-1);
      oprev = Array.make m (-1);
      spike = Array.make m 0.0;
      spike_ind = Array.make m 0;
      spike_n = 0;
      acc = Array.make m 0.0;
      accst = Array.make m (-1);
      accep = 0;
      heap = Array.make m 0;
      hseen = Array.make m (-1);
      hepoch = 0;
    }

  type nonrec u = {
    base : t;  (** frozen [L], row/column permutations, initial [U] *)
    w : wsp;
    cpos : int array;  (** inverse of [base.cperm] *)
    ucol_n : int array;
    ucol_i : int array array;  (** dynamic column [k] of U: row slots *)
    ucol_v : float array array;
    urow_n : int array;
    urow_j : int array array;  (** dynamic row [k] of U: column slots *)
    urow_v : float array array;
    d : float array;  (** current U diagonal per slot *)
    mutable ohead : int;
    mutable otail : int;
    mutable omax : int;
    mutable ne : int;  (** number of row etas *)
    mutable re_t : int array;  (** eliminated slot per eta *)
    mutable re_ptr : int array;  (** [ne+1] offsets into [re_j]/[re_mu] *)
    mutable re_j : int array;
    mutable re_mu : float array;
    mutable re_len : int;
    mutable unnz : int;  (** current U nonzeros incl. diagonal *)
    lnnz : int;
    nnz0 : int;  (** factor nonzeros at [of_factor] time *)
    mutable nupd : int;
    mutable fill_hwm : float;  (** high-water fill ratio since of_factor *)
  }

  let push_entry (ni : int array) (ii : int array array)
      (vv : float array array) s i v =
    let n = ni.(s) in
    if n >= Array.length ii.(s) then begin
      let cap = Array.length ii.(s) in
      let nc = if cap = 0 then 4 else cap * 2 in
      let i2 = Array.make nc 0 and v2 = Array.make nc 0.0 in
      Array.blit ii.(s) 0 i2 0 n;
      Array.blit vv.(s) 0 v2 0 n;
      ii.(s) <- i2;
      vv.(s) <- v2
    end;
    ii.(s).(n) <- i;
    vv.(s).(n) <- v;
    ni.(s) <- n + 1

  (* Remove the entry with index [i] from slot [s] (swap-with-last; the
     in-slot entry order is free, both copies are read in stored order
     by sparse and dense kernels alike). *)
  let remove_entry (ni : int array) (ii : int array array)
      (vv : float array array) s i =
    let n = ni.(s) in
    let a = ii.(s) in
    let k = ref (-1) in
    for e = 0 to n - 1 do
      if a.(e) = i then k := e
    done;
    if !k >= 0 then begin
      let last = n - 1 in
      a.(!k) <- a.(last);
      vv.(s).(!k) <- vv.(s).(last);
      ni.(s) <- last
    end

  let of_factor (w : wsp) (base : t) =
    let m = base.m in
    let cpos = (tsym base).cpos in
    let ucol_n = Array.make m 0
    and ucol_i = Array.make m [||]
    and ucol_v = Array.make m [||] in
    let urow_n = Array.make m 0
    and urow_j = Array.make m [||]
    and urow_v = Array.make m [||] in
    let unnz = ref m and lnnz = ref 0 in
    for k = 0 to m - 1 do
      let n = Array.length base.urows.(k) in
      ucol_n.(k) <- n;
      ucol_i.(k) <- Array.copy base.urows.(k);
      ucol_v.(k) <- Array.copy base.uvals.(k);
      unnz := !unnz + n;
      lnnz := !lnnz + Array.length base.lrows.(k)
    done;
    (* row-wise copy: columns visited ascending, so each row starts
       sorted by column slot *)
    for k = 0 to m - 1 do
      let rs = base.urows.(k) and vs = base.uvals.(k) in
      for e = 0 to Array.length rs - 1 do
        push_entry urow_n urow_j urow_v rs.(e) k vs.(e)
      done
    done;
    for k = 0 to m - 1 do
      w.okey.(k) <- k;
      w.onext.(k) <- (if k = m - 1 then -1 else k + 1);
      w.oprev.(k) <- k - 1
    done;
    (* previous generation's spike support is stale *)
    (if w.spike_n < 0 then Array.fill w.spike 0 m 0.0
     else
       for e = 0 to w.spike_n - 1 do
         w.spike.(w.spike_ind.(e)) <- 0.0
       done);
    w.spike_n <- 0;
    {
      base;
      w;
      cpos;
      ucol_n;
      ucol_i;
      ucol_v;
      urow_n;
      urow_j;
      urow_v;
      d = Array.copy base.udiag;
      ohead = (if m = 0 then -1 else 0);
      otail = m - 1;
      omax = m - 1;
      ne = 0;
      re_t = Array.make 16 0;
      re_ptr = Array.make 17 0;
      re_j = Array.make 64 0;
      re_mu = Array.make 64 0.0;
      re_len = 0;
      unnz = !unnz;
      lnnz = !lnnz;
      nnz0 = !unnz + !lnnz;
      nupd = 0;
      fill_hwm = 1.0;
    }

  let fill_ratio u =
    if u.nnz0 = 0 then 1.0
    else
      float_of_int (u.lnnz + u.unnz + u.re_len) /. float_of_int u.nnz0

  let fill_hwm u = u.fill_hwm
  let nupdates u = u.nupd

  (* --- solves ----------------------------------------------------- *)

  (* Shared by the dense and sparse FTRAN: apply the row etas, oldest
     first, to the post-L intermediate held in [z] (dense array). *)
  let apply_etas_dense u (z : float array) =
    for e = 0 to u.ne - 1 do
      let t = u.re_t.(e) in
      let acc = ref z.(t) in
      for q = u.re_ptr.(e) to u.re_ptr.(e + 1) - 1 do
        acc := !acc -. (u.re_mu.(q) *. z.(u.re_j.(q)))
      done;
      z.(t) <- !acc
    done

  (** [ftran_d u ~keep_spike ~b ~x ~scratch] solves [B x = b] against
      the updated factors; same indexing contract as {!solve}.  With
      zero updates it performs exactly the operations of {!solve}.
      [keep_spike] retains the post-L post-eta intermediate for a
      subsequent {!update} of the column just FTRANed. *)
  let ftran_d u ~keep_spike ~(b : float array) ~(x : float array)
      ~(scratch : float array) =
    let base = u.base in
    let m = base.m in
    for k = 0 to m - 1 do
      scratch.(k) <- b.(base.p.(k))
    done;
    for k = 0 to m - 1 do
      let zk = scratch.(k) in
      if zk <> 0.0 then begin
        let rs = base.lrows.(k) and vs = base.lvals.(k) in
        for e = 0 to Array.length rs - 1 do
          scratch.(rs.(e)) <- scratch.(rs.(e)) -. (vs.(e) *. zk)
        done
      end
    done;
    apply_etas_dense u scratch;
    if keep_spike then begin
      Array.blit scratch 0 u.w.spike 0 m;
      u.w.spike_n <- -1
    end;
    (* back substitution over the dynamic U, border-to-head order *)
    let k = ref u.otail in
    while !k >= 0 do
      let s = !k in
      let xk = scratch.(s) /. u.d.(s) in
      x.(base.cperm.(s)) <- xk;
      if xk <> 0.0 then begin
        let n = u.ucol_n.(s) in
        let rs = u.ucol_i.(s) and vs = u.ucol_v.(s) in
        for e = 0 to n - 1 do
          scratch.(rs.(e)) <- scratch.(rs.(e)) -. (vs.(e) *. xk)
        done
      end;
      k := u.w.oprev.(s)
    done

  (** [btran_d u ~c ~y ~scratch] solves [Bᵀ y = c]; same indexing
      contract as {!solve_t}, bitwise-identical to it at zero
      updates. *)
  let btran_d u ~(c : float array) ~(y : float array)
      ~(scratch : float array) =
    let base = u.base in
    let m = base.m in
    (* Uᵀ forward, active order, gather over dynamic columns *)
    let k = ref u.ohead in
    while !k >= 0 do
      let s = !k in
      let acc = ref c.(base.cperm.(s)) in
      let n = u.ucol_n.(s) in
      let rs = u.ucol_i.(s) and vs = u.ucol_v.(s) in
      for e = 0 to n - 1 do
        acc := !acc -. (vs.(e) *. scratch.(rs.(e)))
      done;
      scratch.(s) <- !acc /. u.d.(s);
      k := u.w.onext.(s)
    done;
    (* row-eta transposes, newest first: y_c -= mu_c · y_t *)
    for e = u.ne - 1 downto 0 do
      let t = u.re_t.(e) in
      let yt = scratch.(t) in
      if yt <> 0.0 then
        for q = u.re_ptr.(e) to u.re_ptr.(e + 1) - 1 do
          scratch.(u.re_j.(q)) <- scratch.(u.re_j.(q)) -. (u.re_mu.(q) *. yt)
        done
    done;
    (* Lᵀ backward, static slot order *)
    for k = m - 1 downto 0 do
      let acc = ref scratch.(k) in
      let rs = base.lrows.(k) and vs = base.lvals.(k) in
      for e = 0 to Array.length rs - 1 do
        acc := !acc -. (vs.(e) *. scratch.(rs.(e)))
      done;
      scratch.(k) <- !acc
    done;
    for k = 0 to m - 1 do
      y.(base.p.(k)) <- scratch.(k)
    done

  (* Reachability like [reach_arr], but over ragged dynamic adjacency
     with explicit lengths. *)
  let reach_dyn sw (ni : int array) (ii : int array array) ~nseeds
      ~(out : int array) ~cutoff =
    sw.vepoch <- sw.vepoch + 1;
    let ep = sw.vepoch in
    let cnt = ref nseeds and top = ref 0 and over = ref false in
    for s = 0 to nseeds - 1 do
      sw.vis.(out.(s)) <- ep;
      sw.dstack.(s) <- out.(s)
    done;
    top := nseeds;
    while !top > 0 && not !over do
      decr top;
      let k = sw.dstack.(!top) in
      let a = ii.(k) and n = ni.(k) in
      for e = 0 to n - 1 do
        let i = a.(e) in
        if sw.vis.(i) <> ep then begin
          sw.vis.(i) <- ep;
          if !cnt >= cutoff then over := true
          else begin
            out.(!cnt) <- i;
            sw.dstack.(!top) <- i;
            incr top;
            incr cnt
          end
        end
      done
    done;
    if !over then -1 else !cnt

  (* Sort the first [n] entries of [a] ascending by [key.(·)], then used
     forward (ascending) or backward (descending) by the numeric
     passes.  Insertion sort: reach sets are small by construction. *)
  let sort_prefix_key (a : int array) n (key : int array) =
    for k = 1 to n - 1 do
      let v = a.(k) in
      let kv = key.(v) in
      let m = ref k in
      while !m > 0 && key.(a.(!m - 1)) > kv do
        a.(!m) <- a.(!m - 1);
        decr m
      done;
      a.(!m) <- v
    done

  (** Sparse-RHS FTRAN against the updated factors; contract of
      {!solve_sp} ([-1] = dense kernel ran, all of [x] valid). *)
  let ftran_sp u ~keep_spike ~nb ~(bidx : int array) ~(b : float array)
      ~(x : float array) ~(xind : int array) =
    let base = u.base in
    let m = base.m in
    let w = u.w in
    let sw = w.sw in
    let cutoff = reach_cutoff m in
    let dense () =
      for s = 0 to nb - 1 do
        sw.db.(bidx.(s)) <- b.(bidx.(s))
      done;
      ftran_d u ~keep_spike ~b:sw.db ~x ~scratch:sw.ds;
      for s = 0 to nb - 1 do
        sw.db.(bidx.(s)) <- 0.0
      done;
      -1
    in
    if nb >= cutoff then dense ()
    else begin
      for s = 0 to nb - 1 do
        sw.r1.(s) <- base.pos.(bidx.(s))
      done;
      let n1 = reach_arr sw base.lrows ~nseeds:nb ~out:sw.r1 ~cutoff in
      if n1 < 0 then dense ()
      else begin
        sort_prefix sw.r1 n1;
        sw.sepoch <- sw.sepoch + 1;
        let ep = sw.sepoch in
        for e = 0 to n1 - 1 do
          let k = sw.r1.(e) in
          sw.sv.(k) <- 0.0;
          sw.sstamp.(k) <- ep
        done;
        for s = 0 to nb - 1 do
          let i = bidx.(s) in
          sw.sv.(base.pos.(i)) <- b.(i)
        done;
        (* z = L⁻¹ P b over the reach, ascending slots *)
        for e = 0 to n1 - 1 do
          let k = sw.r1.(e) in
          let zk = sw.sv.(k) in
          if zk <> 0.0 then begin
            let rs = base.lrows.(k) and vs = base.lvals.(k) in
            for q = 0 to Array.length rs - 1 do
              sw.sv.(rs.(q)) <- sw.sv.(rs.(q)) -. (vs.(q) *. zk)
            done
          end
        done;
        (* row etas, oldest first; the support grows with each
           activated target slot.  A gather runs exactly when the dense
           sweep would combine a nonzero — skipped ones only reproduce
           (signed) zeros. *)
        Array.blit sw.r1 0 sw.r2 0 n1;
        let nsup = ref n1 in
        for e = 0 to u.ne - 1 do
          let t = u.re_t.(e) in
          let tmem = sw.sstamp.(t) = ep in
          let need = ref tmem in
          (if not !need then
             let q = ref u.re_ptr.(e) in
             let stop = u.re_ptr.(e + 1) in
             while (not !need) && !q < stop do
               let j = u.re_j.(!q) in
               if sw.sstamp.(j) = ep && sw.sv.(j) <> 0.0 then need := true;
               incr q
             done);
          if !need then begin
            if not tmem then begin
              sw.sv.(t) <- 0.0;
              sw.sstamp.(t) <- ep;
              sw.r2.(!nsup) <- t;
              incr nsup
            end;
            let acc = ref sw.sv.(t) in
            for q = u.re_ptr.(e) to u.re_ptr.(e + 1) - 1 do
              let j = u.re_j.(q) in
              let zj = if sw.sstamp.(j) = ep then sw.sv.(j) else 0.0 in
              acc := !acc -. (u.re_mu.(q) *. zj)
            done;
            sw.sv.(t) <- !acc
          end
        done;
        if keep_spike then begin
          (if w.spike_n < 0 then Array.fill w.spike 0 m 0.0
           else
             for e = 0 to w.spike_n - 1 do
               w.spike.(w.spike_ind.(e)) <- 0.0
             done);
          for e = 0 to !nsup - 1 do
            let k = sw.r2.(e) in
            w.spike.(k) <- sw.sv.(k);
            w.spike_ind.(e) <- k
          done;
          w.spike_n <- !nsup
        end;
        (* closure under the dynamic U columns *)
        let n2 = reach_dyn sw u.ucol_n u.ucol_i ~nseeds:!nsup ~out:sw.r2 ~cutoff in
        if n2 < 0 then dense ()
        else begin
          for e = !nsup to n2 - 1 do
            let k = sw.r2.(e) in
            sw.sv.(k) <- 0.0;
            sw.sstamp.(k) <- ep
          done;
          sort_prefix_key sw.r2 n2 w.okey;
          (* back substitution, descending active order *)
          for e = n2 - 1 downto 0 do
            let k = sw.r2.(e) in
            let xk = sw.sv.(k) /. u.d.(k) in
            x.(base.cperm.(k)) <- xk;
            xind.(e) <- base.cperm.(k);
            if xk <> 0.0 then begin
              let n = u.ucol_n.(k) in
              let rs = u.ucol_i.(k) and vs = u.ucol_v.(k) in
              for q = 0 to n - 1 do
                sw.sv.(rs.(q)) <- sw.sv.(rs.(q)) -. (vs.(q) *. xk)
              done
            end
          done;
          sort_prefix xind n2;
          n2
        end
      end
    end

  (** Sparse-RHS BTRAN against the updated factors; contract of
      {!solve_t_sp}. *)
  let btran_sp u ~nc ~(cidx : int array) ~(c : float array)
      ~(y : float array) ~(yind : int array) =
    let base = u.base in
    let m = base.m in
    let w = u.w in
    let sw = w.sw in
    let cutoff = reach_cutoff m in
    let dense () =
      for s = 0 to nc - 1 do
        sw.db.(cidx.(s)) <- c.(cidx.(s))
      done;
      btran_d u ~c:sw.db ~y ~scratch:sw.ds;
      for s = 0 to nc - 1 do
        sw.db.(cidx.(s)) <- 0.0
      done;
      -1
    in
    if nc >= cutoff then dense ()
    else begin
      (* Uᵀ reach: a nonzero at slot i spreads to every column k whose
         dynamic column holds row i — i.e. along the dynamic rows. *)
      for s = 0 to nc - 1 do
        sw.r1.(s) <- u.cpos.(cidx.(s))
      done;
      let n1 = reach_dyn sw u.urow_n u.urow_j ~nseeds:nc ~out:sw.r1 ~cutoff in
      if n1 < 0 then dense ()
      else begin
        sort_prefix_key sw.r1 n1 w.okey;
        sw.sepoch <- sw.sepoch + 1;
        let ep = sw.sepoch in
        for e = 0 to n1 - 1 do
          let k = sw.r1.(e) in
          sw.sv.(k) <- 0.0;
          sw.sstamp.(k) <- ep
        done;
        for s = 0 to nc - 1 do
          let j = cidx.(s) in
          sw.sv.(u.cpos.(j)) <- c.(j)
        done;
        (* Uᵀ w = c: forward gather, ascending active order *)
        for e = 0 to n1 - 1 do
          let k = sw.r1.(e) in
          let acc = ref sw.sv.(k) in
          let n = u.ucol_n.(k) in
          let rs = u.ucol_i.(k) and vs = u.ucol_v.(k) in
          for q = 0 to n - 1 do
            let i = rs.(q) in
            let wi = if sw.sstamp.(i) = ep then sw.sv.(i) else 0.0 in
            acc := !acc -. (vs.(q) *. wi)
          done;
          sw.sv.(k) <- !acc /. u.d.(k)
        done;
        (* row-eta transposes, newest first (scatter) *)
        Array.blit sw.r1 0 sw.r2 0 n1;
        let nsup = ref n1 in
        for e = u.ne - 1 downto 0 do
          let t = u.re_t.(e) in
          if sw.sstamp.(t) = ep && sw.sv.(t) <> 0.0 then begin
            let yt = sw.sv.(t) in
            for q = u.re_ptr.(e) to u.re_ptr.(e + 1) - 1 do
              let j = u.re_j.(q) in
              if sw.sstamp.(j) <> ep then begin
                sw.sv.(j) <- 0.0;
                sw.sstamp.(j) <- ep;
                sw.r2.(!nsup) <- j;
                incr nsup
              end;
              sw.sv.(j) <- sw.sv.(j) -. (u.re_mu.(q) *. yt)
            done
          end
        done;
        (* Lᵀ closure over the static transpose structure *)
        let ts = tsym base in
        let n2 =
          reach_ptr sw ts.lsucc_ptr ts.lsucc_ind ~nseeds:!nsup ~out:sw.r2
            ~cutoff
        in
        if n2 < 0 then dense ()
        else begin
          for e = !nsup to n2 - 1 do
            let k = sw.r2.(e) in
            sw.sv.(k) <- 0.0;
            sw.sstamp.(k) <- ep
          done;
          sort_prefix sw.r2 n2;
          for e = n2 - 1 downto 0 do
            let k = sw.r2.(e) in
            let acc = ref sw.sv.(k) in
            let rs = base.lrows.(k) and vs = base.lvals.(k) in
            for q = 0 to Array.length rs - 1 do
              let i = rs.(q) in
              let vi = if sw.sstamp.(i) = ep then sw.sv.(i) else 0.0 in
              acc := !acc -. (vs.(q) *. vi)
            done;
            sw.sv.(k) <- !acc;
            y.(base.p.(k)) <- !acc;
            yind.(e) <- base.p.(k)
          done;
          sort_prefix yind n2;
          n2
        end
      end
    end

  (* --- the update itself ------------------------------------------ *)

  let grow_eta u need =
    if u.ne >= Array.length u.re_t then begin
      let nc = 2 * Array.length u.re_t in
      let t2 = Array.make nc 0 and p2 = Array.make (nc + 1) 0 in
      Array.blit u.re_t 0 t2 0 u.ne;
      Array.blit u.re_ptr 0 p2 0 (u.ne + 1);
      u.re_t <- t2;
      u.re_ptr <- p2
    end;
    while u.re_len + need > Array.length u.re_j do
      let nc = 2 * Array.length u.re_j in
      let j2 = Array.make nc 0 and m2 = Array.make nc 0.0 in
      Array.blit u.re_j 0 j2 0 u.re_len;
      Array.blit u.re_mu 0 m2 0 u.re_len;
      u.re_j <- j2;
      u.re_mu <- m2
    done

  (** [update u ~pos ~wr] replaces the basis column at position [pos]
      by the column whose FTRAN (with [keep_spike:true]) was just
      computed; [wr] is that FTRAN's value at [pos] (the simplex pivot
      element).  Returns [false] — leaving [u] unusable, the caller
      must refactorize — when the new border diagonal is tiny or fails
      the 1e-9 certification against the determinant identity
      [d = wr · u_tt]. *)
  let update u ~pos:r ~wr =
    let w = u.w in
    let t = u.cpos.(r) in
    (* drop the replaced column t: its entries leave the rows *)
    (let n = u.ucol_n.(t) in
     let rs = u.ucol_i.(t) in
     for e = 0 to n - 1 do
       remove_entry u.urow_n u.urow_j u.urow_v rs.(e) t
     done;
     u.unnz <- u.unnz - n;
     u.ucol_n.(t) <- 0);
    (* gather the surviving row t (the border row) and drop it from the
       column storage *)
    w.accep <- w.accep + 1;
    let ep = w.accep in
    w.hepoch <- w.hepoch + 1;
    let hep = w.hepoch in
    let hn = ref 0 in
    let okey = w.okey in
    let hpush c =
      if w.hseen.(c) <> hep then begin
        w.hseen.(c) <- hep;
        let i = ref !hn in
        incr hn;
        w.heap.(!i) <- c;
        let kc = okey.(c) in
        let continue = ref true in
        while !continue && !i > 0 do
          let par = (!i - 1) / 2 in
          if okey.(w.heap.(par)) > kc then begin
            w.heap.(!i) <- w.heap.(par);
            w.heap.(par) <- c;
            i := par
          end
          else continue := false
        done
      end
    in
    let hpop () =
      let top = w.heap.(0) in
      decr hn;
      let last = w.heap.(!hn) in
      w.heap.(0) <- last;
      let kl = okey.(last) in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        let r = l + 1 in
        let s = ref !i in
        if l < !hn && okey.(w.heap.(l)) < okey.(w.heap.(!s)) then s := l;
        if r < !hn && okey.(w.heap.(r)) < okey.(w.heap.(!s)) then s := r;
        if !s <> !i then begin
          w.heap.(!i) <- w.heap.(!s);
          w.heap.(!s) <- last;
          ignore kl;
          i := !s
        end
        else continue := false
      done;
      top
    in
    (let n = u.urow_n.(t) in
     let js = u.urow_j.(t) and vs = u.urow_v.(t) in
     for e = 0 to n - 1 do
       let c = js.(e) in
       w.acc.(c) <- vs.(e);
       w.accst.(c) <- ep;
       hpush c;
       remove_entry u.ucol_n u.ucol_i u.ucol_v c t
     done;
     u.unnz <- u.unnz - n;
     u.urow_n.(t) <- 0);
    (* eliminate the border row against the remaining rows, ascending
       active order; row operations fill only the border row itself *)
    let dold = u.d.(t) in
    let dref = ref w.spike.(t) in
    let eta_start = u.re_len in
    while !hn > 0 do
      let c = hpop () in
      let utc = if w.accst.(c) = ep then w.acc.(c) else 0.0 in
      if utc <> 0.0 then begin
        let mu = utc /. u.d.(c) in
        grow_eta u 1;
        u.re_j.(u.re_len) <- c;
        u.re_mu.(u.re_len) <- mu;
        u.re_len <- u.re_len + 1;
        let n = u.urow_n.(c) in
        let js = u.urow_j.(c) and vs = u.urow_v.(c) in
        for e = 0 to n - 1 do
          let c' = js.(e) in
          if w.accst.(c') <> ep then begin
            w.acc.(c') <- 0.0;
            w.accst.(c') <- ep
          end;
          w.acc.(c') <- w.acc.(c') -. (mu *. vs.(e));
          hpush c'
        done;
        dref := !dref -. (mu *. w.spike.(c))
      end
    done;
    let d = !dref in
    let expect = wr *. dold in
    let scale = Float.max 1.0 (Float.max (Float.abs expect) (Float.abs d)) in
    if d = 0.0 || Float.abs (d -. expect) > 1e-9 *. scale then begin
      u.re_len <- eta_start;
      false
    end
    else begin
      (if u.re_len > eta_start then begin
         u.re_t.(u.ne) <- t;
         u.re_ptr.(u.ne + 1) <- u.re_len;
         u.ne <- u.ne + 1
       end);
      (* install the spike as the new border column *)
      (if w.spike_n < 0 then begin
         let cnt = ref 0 in
         for i = 0 to u.base.m - 1 do
           if i <> t && w.spike.(i) <> 0.0 then begin
             push_entry u.ucol_n u.ucol_i u.ucol_v t i w.spike.(i);
             push_entry u.urow_n u.urow_j u.urow_v i t w.spike.(i);
             incr cnt
           end
         done;
         u.unnz <- u.unnz + !cnt
       end
       else begin
         let cnt = ref 0 in
         for e = 0 to w.spike_n - 1 do
           let i = w.spike_ind.(e) in
           if i <> t && w.spike.(i) <> 0.0 then begin
             push_entry u.ucol_n u.ucol_i u.ucol_v t i w.spike.(i);
             push_entry u.urow_n u.urow_j u.urow_v i t w.spike.(i);
             incr cnt
           end
         done;
         u.unnz <- u.unnz + !cnt
       end);
      u.d.(t) <- d;
      (* move slot t to the border of the active order *)
      if u.otail <> t then begin
        let pr = w.oprev.(t) and nx = w.onext.(t) in
        if pr >= 0 then w.onext.(pr) <- nx else u.ohead <- nx;
        if nx >= 0 then w.oprev.(nx) <- pr;
        w.onext.(u.otail) <- t;
        w.oprev.(t) <- u.otail;
        w.onext.(t) <- -1;
        u.otail <- t
      end;
      u.omax <- u.omax + 1;
      okey.(t) <- u.omax;
      u.nupd <- u.nupd + 1;
      let fr = fill_ratio u in
      if fr > u.fill_hwm then u.fill_hwm <- fr;
      true
    end
end
