(** Sparse LU factorization of a simplex basis.

    Left-looking column factorization in the style of Gilbert–Peierls.
    The factorization of the row/column-permuted basis satisfies
    [P (B Pi_c) = L U] where [P] is the pivoting row permutation, [Pi_c]
    a sparsest-first column pre-ordering, [L] unit lower triangular and
    [U] upper triangular.  Row indices of the stored factors are in
    {e pivot order}, which makes the triangular solves straightforward;
    the column permutation is applied inside [solve]/[solve_t] so callers
    never see it.

    When the basis is (numerically) singular the offending columns are
    replaced by unit columns of uncovered rows so that a usable
    factorization is always produced; the caller inspects [replaced] and
    repairs its basis. *)

(** Structure-only transposes of the factors, built lazily: [usucc]
    lists, for each pivot position [i], the columns [k] with
    [i ∈ urows.(k)] (and [lsucc] likewise for [L]).  The gather-form
    transpose solve needs them to know which positions a nonzero
    {e reaches}; the numeric gathers themselves still read the original
    column storage, so sparse and dense solves perform identical
    floating-point operations. *)
type tsym = {
  cpos : int array;  (** inverse of [cperm] *)
  usucc_ptr : int array;
  usucc_ind : int array;
  lsucc_ptr : int array;
  lsucc_ind : int array;
}

type t = {
  m : int;
  p : int array;  (** [p.(k)] = original row chosen as pivot at step [k] *)
  pos : int array;  (** inverse of [p] *)
  cperm : int array;
      (** [cperm.(k)] = input column factored at step [k]; columns are
          pre-ordered sparsest-first to limit fill *)
  lrows : int array array;  (** column [k] of [L] below diagonal, pivot-order rows *)
  lvals : float array array;
  urows : int array array;  (** column [k] of [U] above diagonal, pivot-order rows *)
  uvals : float array array;
  udiag : float array;
  replaced : (int * int) list;
      (** [(col, row)]: basis column [col] was singular and stands replaced
          by the unit column of original row [row]. *)
  mutable tsym : tsym option;
      (** lazily built transpose structure for sparse transpose solves *)
}

let nnz t =
  let s = ref t.m in
  Array.iter (fun a -> s := !s + Array.length a) t.lrows;
  Array.iter (fun a -> s := !s + Array.length a) t.urows;
  !s

(** Relative magnitude threshold for sparsity-driven pivoting: any row
    within this factor of the largest eligible magnitude may be chosen,
    and among those the sparsest row wins.  This is classic threshold
    partial pivoting; with pure magnitude pivoting, LP bases (which are
    nearly triangular but arbitrarily ordered) fill catastrophically. *)
let pivot_threshold = 0.1

let sort_prefix (a : int array) n =
  let rec qsort lo hi =
    if hi - lo >= 12 then begin
      (* median-of-3 pivot *)
      let mid = (lo + hi) / 2 in
      let x = a.(lo) and y = a.(mid) and z = a.(hi) in
      let piv =
        if x < y then if y < z then y else if x < z then z else x
        else if x < z then x
        else if y < z then z
        else y
      in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < piv do incr i done;
        while a.(!j) > piv do decr j done;
        if !i <= !j then begin
          let tmp = a.(!i) in
          a.(!i) <- a.(!j);
          a.(!j) <- tmp;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
    else
      for k = lo + 1 to hi do
        let v = a.(k) in
        let m = ref k in
        while !m > lo && a.(!m - 1) > v do
          a.(!m) <- a.(!m - 1);
          decr m
        done;
        a.(!m) <- v
      done
  in
  if n > 1 then qsort 0 (n - 1)

(** [factor ~m col_iter] factorizes the [m]×[m] matrix whose [k]-th column
    is enumerated by [col_iter k f] (calling [f row value] for each
    entry). *)
let factor ?(symbolic = true) ~m col_iter0 =
  let pos = Array.make m (-1) in
  let p = Array.make m (-1) in
  (* static nonzero count per row and column of the input *)
  let rowcount = Array.make m 0 in
  let colcount = Array.make m 0 in
  for k = 0 to m - 1 do
    col_iter0 k (fun i v ->
        if v <> 0.0 then begin
          rowcount.(i) <- rowcount.(i) + 1;
          colcount.(k) <- colcount.(k) + 1
        end)
  done;
  (* factor sparsest columns first: a cheap fill-reducing ordering *)
  let cperm = Array.init m Fun.id in
  Array.sort
    (fun a b ->
      match Int.compare colcount.(a) colcount.(b) with
      | 0 -> Int.compare a b
      | c -> c)
    cperm;
  let col_iter k f = col_iter0 cperm.(k) f in
  let lrows = Array.make m [||] and lvals = Array.make m [||] in
  let urows = Array.make m [||] and uvals = Array.make m [||] in
  let udiag = Array.make m 0.0 in
  (* Dense workspace over original row indices.  [inwork] is the
     membership mark for [touched]: testing [work.(i) = 0.0] instead
     would re-register rows whose value cancelled exactly and later
     became nonzero again, duplicating factor entries. *)
  let work = Array.make m 0.0 in
  let inwork = Array.make m false in
  let touched = Array.make m 0 in
  (* Workspace for the symbolic elimination step: which previously
     factored columns can reach the current column's support through the
     L dependency DAG.  [rvis] is stamped with the current column [k],
     so no clearing between columns. *)
  let rstack = Array.make m 0 in
  let rreach = Array.make m 0 in
  let rvis = Array.make m (-1) in
  let replaced = ref [] in
  (* L columns are built with original row indices first, then remapped to
     pivot order once all pivots are known. *)
  for k = 0 to m - 1 do
    let ntouch = ref 0 in
    let touch i =
      if not inwork.(i) then begin
        inwork.(i) <- true;
        touched.(!ntouch) <- i;
        incr ntouch
      end
    in
    let scatter i v =
      if v <> 0.0 then begin
        touch i;
        work.(i) <- work.(i) +. v
      end
    in
    col_iter k scatter;
    (* Symbolic elimination step (Gilbert–Peierls): only columns [j < k]
       reachable from the scattered support through the L dependency DAG
       can hold a nonzero at their pivot row, so DFS the closure instead
       of scanning all [k] prior columns.  Processing the reach set in
       ascending pivot order with the same [xj <> 0.0] guard performs
       exactly the floating-point operations of the full scan, in the
       same order — the factors are bitwise identical, and
       [~symbolic:false] keeps the plain scan around as the measurable
       pre-hypersparse baseline. *)
    if symbolic then begin
      let nreach = ref 0 in
      for e0 = 0 to !ntouch - 1 do
        let seed = pos.(touched.(e0)) in
        if seed >= 0 && seed < k && rvis.(seed) <> k then begin
          rvis.(seed) <- k;
          rstack.(0) <- seed;
          let top = ref 1 in
          while !top > 0 do
            decr top;
            let u = rstack.(!top) in
            rreach.(!nreach) <- u;
            incr nreach;
            let rs = lrows.(u) in
            for e = 0 to Array.length rs - 1 do
              (* lrows still holds original row indices at this point *)
              let w = pos.(rs.(e)) in
              if w >= 0 && w < k && rvis.(w) <> k then begin
                rvis.(w) <- k;
                rstack.(!top) <- w;
                incr top
              end
            done
          done
        end
      done;
      sort_prefix rreach !nreach;
      for e0 = 0 to !nreach - 1 do
        let j = rreach.(e0) in
        let xj = work.(p.(j)) in
        if xj <> 0.0 then begin
          let rs = lrows.(j) and vs = lvals.(j) in
          for e = 0 to Array.length rs - 1 do
            let i = rs.(e) in
            touch i;
            work.(i) <- work.(i) -. (xj *. vs.(e))
          done
        end
      done
    end
    else
      for j = 0 to k - 1 do
        let xj = work.(p.(j)) in
        if xj <> 0.0 then begin
          let rs = lrows.(j) and vs = lvals.(j) in
          for e = 0 to Array.length rs - 1 do
            let i = rs.(e) in
            touch i;
            work.(i) <- work.(i) -. (xj *. vs.(e))
          done
        end
      done;
    (* Threshold pivoting: among not-yet-pivoted rows within
       [pivot_threshold] of the max magnitude, take the sparsest. *)
    let pmag = ref 0.0 in
    for e = 0 to !ntouch - 1 do
      let i = touched.(e) in
      if pos.(i) < 0 then begin
        let a = Float.abs work.(i) in
        if a > !pmag then pmag := a
      end
    done;
    let piv = ref (-1) and pcount = ref max_int in
    if !pmag > 0.0 then begin
      let cutoff = pivot_threshold *. !pmag in
      for e = 0 to !ntouch - 1 do
        let i = touched.(e) in
        if pos.(i) < 0 && Float.abs work.(i) >= cutoff then
          if
            rowcount.(i) < !pcount
            || (rowcount.(i) = !pcount
               && !piv >= 0
               && Float.abs work.(i) > Float.abs work.(!piv))
          then begin
            piv := i;
            pcount := rowcount.(i)
          end
      done
    end;
    if !piv < 0 || !pmag < 1e-12 then begin
      (* Singular column: substitute the unit column of the first
         uncovered row.  Recorded so the caller can repair its basis. *)
      let r = ref 0 in
      while !r < m && pos.(!r) >= 0 do incr r done;
      assert (!r < m);
      p.(k) <- !r;
      pos.(!r) <- k;
      udiag.(k) <- 1.0;
      (* U column: entries of the original column at already-pivoted rows
         are dropped with the column itself. *)
      urows.(k) <- [||];
      uvals.(k) <- [||];
      lrows.(k) <- [||];
      lvals.(k) <- [||];
      replaced := (k, !r) :: !replaced
    end
    else begin
      let r = !piv in
      p.(k) <- r;
      pos.(r) <- k;
      let d = work.(r) in
      udiag.(k) <- d;
      (* Split workspace into U (pivoted rows) and L (unpivoted rows). *)
      let nu = ref 0 and nl = ref 0 in
      for e = 0 to !ntouch - 1 do
        let i = touched.(e) in
        if i <> r && work.(i) <> 0.0 then
          if pos.(i) >= 0 && pos.(i) < k then incr nu else incr nl
      done;
      let ur = Array.make !nu 0 and uv = Array.make !nu 0.0 in
      let lr = Array.make !nl 0 and lv = Array.make !nl 0.0 in
      let iu = ref 0 and il = ref 0 in
      for e = 0 to !ntouch - 1 do
        let i = touched.(e) in
        if i <> r && work.(i) <> 0.0 then
          if pos.(i) >= 0 && pos.(i) < k then begin
            ur.(!iu) <- pos.(i);
            uv.(!iu) <- work.(i);
            incr iu
          end
          else begin
            (* original row index for now; remapped below *)
            lr.(!il) <- i;
            lv.(!il) <- work.(i) /. d;
            incr il
          end
      done;
      urows.(k) <- ur;
      uvals.(k) <- uv;
      lrows.(k) <- lr;
      lvals.(k) <- lv
    end;
    (* Clear workspace. *)
    for e = 0 to !ntouch - 1 do
      work.(touched.(e)) <- 0.0;
      inwork.(touched.(e)) <- false
    done
  done;
  (* Remap L row indices from original rows to pivot order. *)
  for k = 0 to m - 1 do
    let rs = lrows.(k) in
    for e = 0 to Array.length rs - 1 do
      rs.(e) <- pos.(rs.(e))
    done
  done;
  (* [replaced] reports input-column indices *)
  let replaced = List.map (fun (k, r) -> (cperm.(k), r)) !replaced in
  { m; p; pos; cperm; lrows; lvals; urows; uvals; udiag; replaced; tsym = None }

(** [solve t b x] solves [B x = b].  [b] is indexed by original rows,
    [x] by basis position.  Both arrays have length [m]; [b] is not
    modified, [x] is overwritten.  A scratch array [scratch] of length [m]
    must be provided. *)
let solve t ~(b : float array) ~(x : float array) ~(scratch : float array) =
  let m = t.m in
  (* z = L^{-1} P b, computed in pivot order. *)
  for k = 0 to m - 1 do scratch.(k) <- b.(t.p.(k)) done;
  for k = 0 to m - 1 do
    let zk = scratch.(k) in
    if zk <> 0.0 then begin
      let rs = t.lrows.(k) and vs = t.lvals.(k) in
      for e = 0 to Array.length rs - 1 do
        scratch.(rs.(e)) <- scratch.(rs.(e)) -. (vs.(e) *. zk)
      done
    end
  done;
  (* Back substitution with column-stored U; results map back through
     the column pre-ordering. *)
  for k = m - 1 downto 0 do
    let xk = scratch.(k) /. t.udiag.(k) in
    x.(t.cperm.(k)) <- xk;
    if xk <> 0.0 then begin
      let rs = t.urows.(k) and vs = t.uvals.(k) in
      for e = 0 to Array.length rs - 1 do
        scratch.(rs.(e)) <- scratch.(rs.(e)) -. (vs.(e) *. xk)
      done
    end
  done

(** [solve_t t c y] solves [B^T y = c].  [c] is indexed by basis position,
    [y] by original rows. *)
let solve_t t ~(c : float array) ~(y : float array) ~(scratch : float array) =
  let m = t.m in
  (* U^T w = c: forward, gather form; the right-hand side maps through
     the column pre-ordering. *)
  for k = 0 to m - 1 do
    let acc = ref c.(t.cperm.(k)) in
    let rs = t.urows.(k) and vs = t.uvals.(k) in
    for e = 0 to Array.length rs - 1 do
      acc := !acc -. (vs.(e) *. scratch.(rs.(e)))
    done;
    scratch.(k) <- !acc /. t.udiag.(k)
  done;
  (* L^T v = w: backward, gather form (unit diagonal). *)
  for k = m - 1 downto 0 do
    let acc = ref scratch.(k) in
    let rs = t.lrows.(k) and vs = t.lvals.(k) in
    for e = 0 to Array.length rs - 1 do
      acc := !acc -. (vs.(e) *. scratch.(rs.(e)))
    done;
    scratch.(k) <- !acc
  done;
  for k = 0 to m - 1 do y.(t.p.(k)) <- scratch.(k) done

(* ------------------------------------------------------------------ *)
(* Hypersparse right-hand-side solves (Gilbert–Peierls reachability)    *)
(* ------------------------------------------------------------------ *)

(* Invert the column pre-ordering and build structure-only transposes of
   both factors: [usucc.(i)] = columns [k] with [i ∈ urows.(k)], i.e.
   the positions a nonzero at [i] reaches in the U^T forward solve. *)
let build_tsym t =
  let m = t.m in
  let cpos = Array.make m 0 in
  for k = 0 to m - 1 do
    cpos.(t.cperm.(k)) <- k
  done;
  let transpose (cols : int array array) =
    let ptr = Array.make (m + 1) 0 in
    for k = 0 to m - 1 do
      let rs = cols.(k) in
      for e = 0 to Array.length rs - 1 do
        ptr.(rs.(e) + 1) <- ptr.(rs.(e) + 1) + 1
      done
    done;
    for i = 0 to m - 1 do
      ptr.(i + 1) <- ptr.(i + 1) + ptr.(i)
    done;
    let ind = Array.make ptr.(m) 0 in
    let fill = Array.copy ptr in
    for k = 0 to m - 1 do
      let rs = cols.(k) in
      for e = 0 to Array.length rs - 1 do
        let i = rs.(e) in
        ind.(fill.(i)) <- k;
        fill.(i) <- fill.(i) + 1
      done
    done;
    (ptr, ind)
  in
  let usucc_ptr, usucc_ind = transpose t.urows in
  let lsucc_ptr, lsucc_ind = transpose t.lrows in
  { cpos; usucc_ptr; usucc_ind; lsucc_ptr; lsucc_ind }

let tsym t =
  match t.tsym with
  | Some s -> s
  | None ->
      let s = build_tsym t in
      t.tsym <- Some s;
      s

(** Workspace for the sparse solves: a timestamped value accumulator (so
    the per-solve reset is O(touched), never O(m)), reach lists, a DFS
    stack with its own visit stamps, and dense scratch for the fallback
    path.  One [swork] serves any number of factorizations of the same
    dimension; it is single-owner mutable state (one per solver call). *)
type swork = {
  sv : float array;  (** stamped values *)
  sstamp : int array;
  mutable sepoch : int;
  r1 : int array;  (** first-stage reach list *)
  r2 : int array;  (** second-stage reach list *)
  dstack : int array;
  vis : int array;
  mutable vepoch : int;
  db : float array;  (** dense RHS for the fallback, kept all-zero *)
  ds : float array;  (** dense scratch for the fallback *)
}

let make_swork m =
  {
    sv = Array.make m 0.0;
    sstamp = Array.make m (-1);
    sepoch = 0;
    r1 = Array.make m 0;
    r2 = Array.make m 0;
    dstack = Array.make m 0;
    vis = Array.make m (-1);
    vepoch = 0;
    db = Array.make m 0.0;
    ds = Array.make m 0.0;
  }

(* Sort the first [n] entries of [a] ascending, in place.  The reach
   sets must be processed in pivot order for the numeric passes to
   perform the same floating-point operations, in the same order, as the
   dense sweeps. *)
(* Sparse triangular solves stay worthwhile until the result fills in;
   past a quarter of the dimension the dense sweep's streaming access
   wins and the symbolic pass is pure overhead. *)
let reach_cutoff m = 8 + (m / 4)

(* Reachability over [adj] (array-of-arrays adjacency) from the seeds
   already placed in [out.(0 .. nseeds-1)].  Grows [out] into the full
   closure and returns its size, or [-1] once it exceeds [cutoff]
   (caller falls back to the dense kernel).  A fresh visit epoch is used
   per call; seeds must be distinct. *)
let reach_arr sw (adj : int array array) ~nseeds ~(out : int array) ~cutoff =
  sw.vepoch <- sw.vepoch + 1;
  let ep = sw.vepoch in
  let cnt = ref nseeds and top = ref 0 and over = ref false in
  for s = 0 to nseeds - 1 do
    sw.vis.(out.(s)) <- ep;
    sw.dstack.(s) <- out.(s)
  done;
  top := nseeds;
  while !top > 0 && not !over do
    decr top;
    let k = sw.dstack.(!top) in
    let a = adj.(k) in
    for e = 0 to Array.length a - 1 do
      let i = a.(e) in
      if sw.vis.(i) <> ep then begin
        sw.vis.(i) <- ep;
        if !cnt >= cutoff then over := true
        else begin
          out.(!cnt) <- i;
          sw.dstack.(!top) <- i;
          incr top;
          incr cnt
        end
      end
    done
  done;
  if !over then -1 else !cnt

(* Same, over a (ptr, ind) compressed adjacency. *)
let reach_ptr sw (ptr : int array) (ind : int array) ~nseeds ~(out : int array)
    ~cutoff =
  sw.vepoch <- sw.vepoch + 1;
  let ep = sw.vepoch in
  let cnt = ref nseeds and top = ref 0 and over = ref false in
  for s = 0 to nseeds - 1 do
    sw.vis.(out.(s)) <- ep;
    sw.dstack.(s) <- out.(s)
  done;
  top := nseeds;
  while !top > 0 && not !over do
    decr top;
    let k = sw.dstack.(!top) in
    for e = ptr.(k) to ptr.(k + 1) - 1 do
      let i = ind.(e) in
      if sw.vis.(i) <> ep then begin
        sw.vis.(i) <- ep;
        if !cnt >= cutoff then over := true
        else begin
          out.(!cnt) <- i;
          sw.dstack.(!top) <- i;
          incr top;
          incr cnt
        end
      end
    done
  done;
  if !over then -1 else !cnt

(** [solve_sp t sw ~nb ~bidx ~b ~x ~xind] solves [B x = b] for a sparse
    right-hand side: [b] is a dense array whose nonzeros are exactly at
    the [nb] distinct original-row indices [bidx.(0 .. nb-1)].

    Returns [-1] when the result filled in past the density cutoff — the
    solve then ran the dense kernel and every entry of [x] is valid
    (exactly as {!solve}).  Otherwise returns the nonzero count [n]:
    [xind.(0 .. n-1)] holds the (sorted, ascending) column positions of
    all possibly-nonzero entries of [x], [x] is written only there, and
    entries of [x] outside the list are untouched — callers keep [x]
    all-zero between solves, which makes the reset O(n).

    Numerics match {!solve} bit for bit on the nonzero pattern: the
    sparse path performs the same operations in the same order and only
    skips positions the dense sweep would compute as (signed) zero. *)
let solve_sp t sw ~nb ~(bidx : int array) ~(b : float array) ~(x : float array)
    ~(xind : int array) =
  let m = t.m in
  let cutoff = reach_cutoff m in
  let dense () =
    for s = 0 to nb - 1 do
      sw.db.(bidx.(s)) <- b.(bidx.(s))
    done;
    solve t ~b:sw.db ~x ~scratch:sw.ds;
    for s = 0 to nb - 1 do
      sw.db.(bidx.(s)) <- 0.0
    done;
    -1
  in
  if nb >= cutoff then dense ()
  else begin
    (* Stage-1 reach: closure of the seed positions under L's columns. *)
    for s = 0 to nb - 1 do
      sw.r1.(s) <- t.pos.(bidx.(s))
    done;
    let n1 = reach_arr sw t.lrows ~nseeds:nb ~out:sw.r1 ~cutoff in
    if n1 < 0 then dense ()
    else begin
      (* Stage-2 reach: closure of stage 1 under U's columns. *)
      Array.blit sw.r1 0 sw.r2 0 n1;
      let n2 = reach_arr sw t.urows ~nseeds:n1 ~out:sw.r2 ~cutoff in
      if n2 < 0 then dense ()
      else begin
        sort_prefix sw.r1 n1;
        sort_prefix sw.r2 n2;
        sw.sepoch <- sw.sepoch + 1;
        let ep = sw.sepoch in
        for e = 0 to n2 - 1 do
          let k = sw.r2.(e) in
          sw.sv.(k) <- 0.0;
          sw.sstamp.(k) <- ep
        done;
        for s = 0 to nb - 1 do
          let i = bidx.(s) in
          sw.sv.(t.pos.(i)) <- b.(i)
        done;
        (* z = L^{-1} P b over the stage-1 reach, ascending. *)
        for e = 0 to n1 - 1 do
          let k = sw.r1.(e) in
          let zk = sw.sv.(k) in
          if zk <> 0.0 then begin
            let rs = t.lrows.(k) and vs = t.lvals.(k) in
            for q = 0 to Array.length rs - 1 do
              sw.sv.(rs.(q)) <- sw.sv.(rs.(q)) -. (vs.(q) *. zk)
            done
          end
        done;
        (* Back substitution over the stage-2 reach, descending. *)
        for e = n2 - 1 downto 0 do
          let k = sw.r2.(e) in
          let xk = sw.sv.(k) /. t.udiag.(k) in
          x.(t.cperm.(k)) <- xk;
          xind.(e) <- t.cperm.(k);
          if xk <> 0.0 then begin
            let rs = t.urows.(k) and vs = t.uvals.(k) in
            for q = 0 to Array.length rs - 1 do
              sw.sv.(rs.(q)) <- sw.sv.(rs.(q)) -. (vs.(q) *. xk)
            done
          end
        done;
        sort_prefix xind n2;
        n2
      end
    end
  end

(** [solve_t_sp t sw ~nc ~cidx ~c ~y ~yind] solves [B^T y = c] for a
    sparse right-hand side: [c] dense with nonzeros exactly at the [nc]
    distinct basis positions [cidx.(0 .. nc-1)].  Same contract as
    {!solve_sp}: [-1] means the dense kernel ran and all of [y] is
    valid; otherwise [yind] lists the (sorted) original-row indices of
    the possibly-nonzero entries of [y]. *)
let solve_t_sp t sw ~nc ~(cidx : int array) ~(c : float array)
    ~(y : float array) ~(yind : int array) =
  let m = t.m in
  let cutoff = reach_cutoff m in
  let dense () =
    for s = 0 to nc - 1 do
      sw.db.(cidx.(s)) <- c.(cidx.(s))
    done;
    solve_t t ~c:sw.db ~y ~scratch:sw.ds;
    for s = 0 to nc - 1 do
      sw.db.(cidx.(s)) <- 0.0
    done;
    -1
  in
  if nc >= cutoff then dense ()
  else begin
    let ts = tsym t in
    (* Stage-1 reach: nonzeros of c (mapped to pivot positions) spread
       through U^T along the transpose structure. *)
    for s = 0 to nc - 1 do
      sw.r1.(s) <- ts.cpos.(cidx.(s))
    done;
    let n1 = reach_ptr sw ts.usucc_ptr ts.usucc_ind ~nseeds:nc ~out:sw.r1 ~cutoff in
    if n1 < 0 then dense ()
    else begin
      Array.blit sw.r1 0 sw.r2 0 n1;
      let n2 =
        reach_ptr sw ts.lsucc_ptr ts.lsucc_ind ~nseeds:n1 ~out:sw.r2 ~cutoff
      in
      if n2 < 0 then dense ()
      else begin
        sort_prefix sw.r1 n1;
        sort_prefix sw.r2 n2;
        sw.sepoch <- sw.sepoch + 1;
        let ep = sw.sepoch in
        for e = 0 to n2 - 1 do
          let k = sw.r2.(e) in
          sw.sv.(k) <- 0.0;
          sw.sstamp.(k) <- ep
        done;
        for s = 0 to nc - 1 do
          let j = cidx.(s) in
          sw.sv.(ts.cpos.(j)) <- c.(j)
        done;
        (* U^T w = c: forward gather over the stage-1 reach.  Gathered
           positions outside the reach read as exact zero through the
           stamp — the dense sweep computes (signed) zero there. *)
        for e = 0 to n1 - 1 do
          let k = sw.r1.(e) in
          let acc = ref sw.sv.(k) in
          let rs = t.urows.(k) and vs = t.uvals.(k) in
          for q = 0 to Array.length rs - 1 do
            let i = rs.(q) in
            let wi = if sw.sstamp.(i) = ep then sw.sv.(i) else 0.0 in
            acc := !acc -. (vs.(q) *. wi)
          done;
          sw.sv.(k) <- !acc /. t.udiag.(k)
        done;
        (* L^T v = w: backward gather over the stage-2 reach. *)
        for e = n2 - 1 downto 0 do
          let k = sw.r2.(e) in
          let acc = ref sw.sv.(k) in
          let rs = t.lrows.(k) and vs = t.lvals.(k) in
          for q = 0 to Array.length rs - 1 do
            let i = rs.(q) in
            let vi = if sw.sstamp.(i) = ep then sw.sv.(i) else 0.0 in
            acc := !acc -. (vs.(q) *. vi)
          done;
          sw.sv.(k) <- !acc;
          y.(t.p.(k)) <- !acc;
          yind.(e) <- t.p.(k)
        done;
        sort_prefix yind n2;
        n2
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Bordered basis updates                                              *)
(* ------------------------------------------------------------------ *)

(* Growing a factorized basis B by one bordered row/column, or shrinking
   it by one row together with one basis column, reduces to triangular
   solves against the existing factors: the Schur-complement pivot of
   the bordered system is the eta diagonal the grown factorization would
   pivot on, and the unit solves below expose, position by position, the
   pivot magnitude available to each candidate pairing of a deletion.
   Lp.Edit uses these to map a basis across structural edits; a tiny
   pivot means the paired update would be singular and the caller falls
   back to a cold solve. *)

let unit_ftran t ~row =
  let x = Array.make t.m 0.0 and b = Array.make t.m 0.0 in
  let scratch = Array.make t.m 0.0 in
  b.(row) <- 1.0;
  solve t ~b ~x ~scratch;
  x

let unit_btran t ~pos =
  let y = Array.make t.m 0.0 and c = Array.make t.m 0.0 in
  let scratch = Array.make t.m 0.0 in
  c.(pos) <- 1.0;
  solve_t t ~c ~y ~scratch;
  y

let bordered_pivot t ~col ~row ~d =
  let b = Array.make t.m 0.0 in
  List.iter (fun (i, v) -> b.(i) <- b.(i) +. v) col;
  let x = Array.make t.m 0.0 and scratch = Array.make t.m 0.0 in
  solve t ~b ~x ~scratch;
  List.fold_left (fun acc (k, v) -> acc -. (v *. x.(k))) d row
