(** Sparse linear-algebra primitives used by the simplex solver. *)

module Coo : sig
  (** Triplet (coordinate) builder for sparse matrices.  Entries may be
      added in any order; duplicates for the same coordinate are summed
      when frozen into a {!Csc.t}. *)

  type t

  val create : ?capacity:int -> unit -> t

  val add : t -> int -> int -> float -> unit
  (** [add t i j v] records entry [(i, j) = v].  Exact zeros are dropped
      from storage but still grow the logical dimensions, so a trailing
      all-zero row or column survives the freeze to {!Csc.t}.
      Raises [Invalid_argument] on negative indices. *)

  val nnz : t -> int
end

module Csc : sig
  (** Immutable compressed-sparse-column matrix. *)

  type t = {
    nrows : int;
    ncols : int;
    colptr : int array;  (** length [ncols + 1] *)
    rowind : int array;
    values : float array;
  }

  val nrows : t -> int
  val ncols : t -> int
  val nnz : t -> int

  val of_coo : ?nrows:int -> ?ncols:int -> Coo.t -> t
  (** Freeze a triplet builder.  Rows within each column are sorted and
      duplicate coordinates summed; entries that cancel to zero are
      dropped.  [nrows]/[ncols] enlarge the logical shape beyond the
      largest recorded index. *)

  val iter_col : t -> int -> (int -> float -> unit) -> unit
  (** [iter_col t j f] calls [f row value] for every stored entry of
      column [j], in increasing row order. *)

  val fold_col : t -> int -> ('a -> int -> float -> 'a) -> 'a -> 'a

  val dot_col : t -> int -> float array -> float
  (** Inner product of a column with a dense vector. *)

  val dot_col2 : t -> int -> float array -> float array -> float * float
  (** [dot_col2 t j y z] is [(dot_col t j y, dot_col t j z)] in a single
      traversal of the column (dual-simplex pricing hot path). *)

  type rows = { rowptr : int array; colind : int array; rvalues : float array }

  val rows : t -> rows
  (** Row-major (CSR) view of the matrix: [rowptr] has length
      [nrows + 1], and row [i]'s entries are [colind]/[rvalues] slices
      [rowptr.(i) .. rowptr.(i+1) - 1] in increasing column order.  Used
      by the dual simplex to price the pivot row against only the rows in
      the support of [rho]. *)

  val mult : t -> float array -> float array -> unit
  (** [mult t x y] accumulates [A x] into [y] ([y] is not cleared). *)

  val mult_t : t -> float array -> float array
  (** [mult_t t y] is the dense vector [A^T y]. *)

  val to_dense : t -> float array array
end
