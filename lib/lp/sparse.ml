(** Sparse linear-algebra primitives used by the simplex solver.

    Matrices are built as triplets ({!Coo}) and frozen into compressed
    sparse column form ({!Csc}) for the column-oriented access patterns of
    the revised simplex method. *)

module Coo = struct
  (** Triplet (coordinate) builder for sparse matrices. Duplicate entries
      for the same coordinate are summed when frozen to {!Csc.t}. *)

  type t = {
    mutable nnz : int;
    mutable rows : int array;
    mutable cols : int array;
    mutable vals : float array;
    mutable nrows : int;
    mutable ncols : int;
  }

  let create ?(capacity = 64) () =
    {
      nnz = 0;
      rows = Array.make capacity 0;
      cols = Array.make capacity 0;
      vals = Array.make capacity 0.0;
      nrows = 0;
      ncols = 0;
    }

  let ensure_capacity t n =
    if n > Array.length t.rows then begin
      let cap = max n (2 * Array.length t.rows) in
      let grow_i a = let b = Array.make cap 0 in Array.blit a 0 b 0 t.nnz; b in
      let grow_f a = let b = Array.make cap 0.0 in Array.blit a 0 b 0 t.nnz; b in
      t.rows <- grow_i t.rows;
      t.cols <- grow_i t.cols;
      t.vals <- grow_f t.vals
    end

  let add t i j v =
    if i < 0 || j < 0 then invalid_arg "Coo.add: negative index";
    (* Dimensions grow for every recorded coordinate, including explicit
       zeros: a builder whose last row or column holds only 0.0 entries
       must still freeze to a CSC of the full logical shape. *)
    if i >= t.nrows then t.nrows <- i + 1;
    if j >= t.ncols then t.ncols <- j + 1;
    if v <> 0.0 then begin
      ensure_capacity t (t.nnz + 1);
      t.rows.(t.nnz) <- i;
      t.cols.(t.nnz) <- j;
      t.vals.(t.nnz) <- v;
      t.nnz <- t.nnz + 1
    end

  let nnz t = t.nnz
end

module Csc = struct
  (** Immutable compressed-sparse-column matrix. *)

  type t = {
    nrows : int;
    ncols : int;
    colptr : int array;  (** length [ncols + 1] *)
    rowind : int array;  (** row index of each stored entry *)
    values : float array;
  }

  let nrows t = t.nrows
  let ncols t = t.ncols
  let nnz t = t.colptr.(t.ncols)

  (* Freeze a triplet builder, summing duplicates within a column. *)
  let of_coo ?nrows ?ncols (c : Coo.t) =
    let nr = match nrows with Some n -> max n c.Coo.nrows | None -> c.Coo.nrows in
    let nc = match ncols with Some n -> max n c.Coo.ncols | None -> c.Coo.ncols in
    let count = Array.make (nc + 1) 0 in
    for k = 0 to c.Coo.nnz - 1 do
      let j = c.Coo.cols.(k) in
      count.(j + 1) <- count.(j + 1) + 1
    done;
    for j = 1 to nc do count.(j) <- count.(j) + count.(j - 1) done;
    let colptr0 = Array.copy count in
    let ri = Array.make c.Coo.nnz 0 in
    let vs = Array.make c.Coo.nnz 0.0 in
    let fill = Array.make nc 0 in
    for k = 0 to c.Coo.nnz - 1 do
      let j = c.Coo.cols.(k) in
      let at = colptr0.(j) + fill.(j) in
      ri.(at) <- c.Coo.rows.(k);
      vs.(at) <- c.Coo.vals.(k);
      fill.(j) <- fill.(j) + 1
    done;
    (* Sort each column by row index (insertion sort: columns are short)
       and merge duplicates. *)
    let out_ri = Array.make c.Coo.nnz 0 in
    let out_vs = Array.make c.Coo.nnz 0.0 in
    let colptr = Array.make (nc + 1) 0 in
    let w = ref 0 in
    for j = 0 to nc - 1 do
      colptr.(j) <- !w;
      let lo = colptr0.(j) and hi = colptr0.(j) + fill.(j) in
      for k = lo + 1 to hi - 1 do
        let r = ri.(k) and v = vs.(k) in
        let m = ref k in
        while !m > lo && ri.(!m - 1) > r do
          ri.(!m) <- ri.(!m - 1);
          vs.(!m) <- vs.(!m - 1);
          decr m
        done;
        ri.(!m) <- r;
        vs.(!m) <- v
      done;
      let k = ref lo in
      while !k < hi do
        let r = ri.(!k) in
        let acc = ref 0.0 in
        while !k < hi && ri.(!k) = r do
          acc := !acc +. vs.(!k);
          incr k
        done;
        if !acc <> 0.0 then begin
          out_ri.(!w) <- r;
          out_vs.(!w) <- !acc;
          incr w
        end
      done
    done;
    colptr.(nc) <- !w;
    {
      nrows = nr;
      ncols = nc;
      colptr;
      rowind = Array.sub out_ri 0 !w;
      values = Array.sub out_vs 0 !w;
    }

  let iter_col t j f =
    if j < 0 || j >= t.ncols then invalid_arg "Csc.iter_col";
    for k = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      f t.rowind.(k) t.values.(k)
    done

  let fold_col t j f acc =
    let acc = ref acc in
    iter_col t j (fun i v -> acc := f !acc i v);
    !acc

  (** [dot_col t j y] computes the inner product of column [j] with the
      dense vector [y]. *)
  let dot_col t j (y : float array) =
    let s = ref 0.0 in
    for k = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      s := !s +. (t.values.(k) *. y.(t.rowind.(k)))
    done;
    !s

  (** [dot_col2 t j y z] computes the inner products of column [j] with
      two dense vectors in a single traversal of the column — the dual
      simplex prices every nonbasic column against both the pivot row
      [rho] and the duals [y], and one pass halves the index/value
      traffic on that hot loop. *)
  let dot_col2 t j (y : float array) (z : float array) =
    let s = ref 0.0 and u = ref 0.0 in
    for k = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      let i = t.rowind.(k) and v = t.values.(k) in
      s := !s +. (v *. y.(i));
      u := !u +. (v *. z.(i))
    done;
    (!s, !u)

  type rows = { rowptr : int array; colind : int array; rvalues : float array }

  (** Row-major (CSR) view of the same matrix.  The dual simplex prices
      the pivot row [rho^T B^-1 A] by gathering only the rows in
      [supp rho], which needs row-wise access; columns within each row
      come out in increasing order. *)
  let rows t =
    let nr = t.nrows in
    let nnz = Array.length t.rowind in
    let rowptr = Array.make (nr + 1) 0 in
    for k = 0 to nnz - 1 do
      rowptr.(t.rowind.(k) + 1) <- rowptr.(t.rowind.(k) + 1) + 1
    done;
    for i = 0 to nr - 1 do
      rowptr.(i + 1) <- rowptr.(i + 1) + rowptr.(i)
    done;
    let fill = Array.copy rowptr in
    let colind = Array.make nnz 0 and rvalues = Array.make nnz 0.0 in
    for j = 0 to t.ncols - 1 do
      for k = t.colptr.(j) to t.colptr.(j + 1) - 1 do
        let i = t.rowind.(k) in
        let at = fill.(i) in
        colind.(at) <- j;
        rvalues.(at) <- t.values.(k);
        fill.(i) <- at + 1
      done
    done;
    { rowptr; colind; rvalues }

  (** [mult t x y] accumulates [A x] into [y] ([y] must be zeroed by the
      caller if a plain product is wanted). *)
  let mult t (x : float array) (y : float array) =
    for j = 0 to t.ncols - 1 do
      let xj = x.(j) in
      if xj <> 0.0 then
        for k = t.colptr.(j) to t.colptr.(j + 1) - 1 do
          y.(t.rowind.(k)) <- y.(t.rowind.(k)) +. (t.values.(k) *. xj)
        done
    done

  (** Dense [ncols]-sized vector of [A^T y]. *)
  let mult_t t (y : float array) =
    Array.init t.ncols (fun j -> dot_col t j y)

  let to_dense t =
    let d = Array.make_matrix t.nrows t.ncols 0.0 in
    for j = 0 to t.ncols - 1 do
      iter_col t j (fun i v -> d.(i).(j) <- d.(i).(j) +. v)
    done;
    d
end
