(** Mixed-integer linear programming by LP-based branch and bound:
    best-bound node selection, branching on the most fractional integer
    variable, each node solved with {!Revised} warm-started from the
    parent node's optimal basis (dual simplex on the one changed bound).
    Sized for the paper's flow-ILP instances (tens of binaries). *)

type status = Optimal | Infeasible | Unbounded | Node_limit

type result = {
  status : status;
  objective : float;
  x : float array;
  nodes : int;  (** branch-and-bound nodes solved *)
  relaxation : float;  (** objective of the root LP relaxation *)
}

val most_fractional : Model.problem -> ?int_tol:float -> float array -> int
(** Index of the integer variable farthest from integrality, or [-1] when
    the point is integral. *)

val integral : Model.problem -> ?int_tol:float -> float array -> bool

val solve :
  ?pool:Putil.Pool.t ->
  ?max_nodes:int ->
  ?int_tol:float ->
  ?gap:float ->
  ?lp_max_iter:int ->
  ?warm:bool ->
  Model.problem ->
  result
(** [pool] enables parallel node evaluation: the two child LP
    relaxations created by each branching are solved concurrently on the
    pool (the children only share the read-only compiled problem; bounds
    are per-node copies).  Search order, incumbents and the node count
    are identical to the sequential mode, which is used when [pool] is
    omitted or sequential.  [warm] (default [true]) warm-starts each
    child from its parent's optimal basis; both children receive the same
    basis, so parallel and sequential search remain identical.  A hit
    node budget or a child relaxation stopping on its LP iteration limit
    yields [Node_limit] even when an incumbent exists — the incumbent is
    then feasible but not proven optimal. *)
