(** Bounded-variable revised simplex with sparse basis factorization
    ({!Lu}) and product-form (eta) updates.

    Pricing is Dantzig's rule over a rotating partial-pricing window,
    with an automatic switch to (full-scan) Bland's rule after a run of
    degenerate pivots; the ratio test is a two-pass Harris test.
    Infeasible starting points are repaired by a phase-1 objective over
    artificial variables.

    Re-solves of the same problem with different bounds or RHS can be
    warm-started: pass a previous result's {!type:basis} as [?warm] and
    the solver repairs it against the new bounds and runs a dual simplex
    (largest-violation leaving row, dual ratio test with bound flips)
    instead of the cold phase-1/2 path.  Any irreparable warm state falls
    back to a cold solve, so warm calls are never less robust.

    Environment knobs: [LP_PARANOID] enables expensive per-pivot
    invariant checks (each pivot verified against a fresh factorization);
    [LP_DUMP_BASIS=<path>] dumps the first offending basis;
    [LP_STATS] prints a per-solve phase-time breakdown to stderr.
    Aggregate counters (cold/warm solves, primal/dual pivots, wall time)
    are accumulated in {!Stats}. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

val pp_status : Format.formatter -> status -> unit

type basis = {
  basic : int array;
      (** column of each basis position, length [nr]; structural columns
          are [0..nv-1], slacks [nv..nv+nr-1] *)
  vstat : char array;
      (** per-column status, length [nv+nr]: ['b'] basic, ['l']/['u'] at
          lower/upper bound, ['f'] free at zero *)
}

type result = {
  status : status;
  objective : float;
  x : float array;  (** structural primal values, length [nv] *)
  y : float array;  (** row duals, length [nr] *)
  dj : float array;  (** structural reduced costs, length [nv] *)
  iterations : int;
  basis : basis option;
      (** final simplex basis, reusable as [?warm] on a re-solve of the
          same problem shape; [None] when no clean slack/structural basis
          exists (e.g. constraint-free models) *)
}

val solve :
  ?max_iter:int ->
  ?feas_tol:float ->
  ?opt_tol:float ->
  ?lb:float array ->
  ?ub:float array ->
  ?rhs:float array ->
  ?warm:basis ->
  Model.problem ->
  result
(** [solve p] minimizes [p].  [lb]/[ub]/[rhs] override the structural
    bounds / row RHS without rebuilding the problem (used by branch and
    bound and by power-cap re-solves).  [warm] supplies a starting basis
    from a previous solve of the same problem shape ([nv]/[nr]
    unchanged); it is repaired against the current bounds and re-solved
    with the dual simplex, falling back to a cold solve when repair is
    impossible.  [max_iter <= 0] selects a size-dependent default. *)
