(** Bounded-variable revised simplex with sparse basis factorization
    ({!Lu}) and product-form (eta) updates.

    FTRAN/BTRAN run hypersparse by default: the triangular solves visit
    only the symbolic reachability set of the right-hand side's nonzeros
    ({!Lu.solve_sp}/{!Lu.solve_t_sp}), with an adaptive fallback to the
    dense kernels when the result fills in.  Pricing is devex
    reference-framework pricing over a candidate list (incrementally
    maintained reduced costs; optimality certified by an exact full
    scan), with an automatic switch to (full-scan) Bland's rule after a
    run of degenerate pivots; the ratio test is a two-pass Harris test.
    Infeasible starting points are repaired by a phase-1 objective over
    artificial variables.

    Re-solves of the same problem with different bounds or RHS can be
    warm-started: pass a previous result's {!type:basis} as [?warm] and
    the solver repairs it against the new bounds and runs a dual simplex
    (largest-violation leaving row, dual ratio test with bound flips)
    instead of the cold phase-1/2 path.  Any irreparable warm state falls
    back to a cold solve, so warm calls are never less robust.

    Environment knobs: [POWERLIM_DEVEX=0] restores the classic Dantzig
    partial-pricing loop (bit-identical to the pre-devex solver);
    [POWERLIM_HYPERSPARSE=0] forces the dense FTRAN/BTRAN kernels;
    [POWERLIM_ETA_LIMIT] (default 64) sets the eta-file length that
    triggers refactorization.  [LP_PARANOID] enables expensive per-pivot
    invariant checks (each pivot verified against a fresh factorization);
    [LP_DUMP_BASIS=<path>] dumps the first offending basis;
    [LP_STATS] prints a per-solve phase-time breakdown to stderr.
    Aggregate counters (cold/warm solves, primal/dual pivots, kernel
    sparse/dense splits, wall time) are accumulated in {!Stats}. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

val pp_status : Format.formatter -> status -> unit

type basis = {
  basic : int array;
      (** column of each basis position, length [nr]; structural columns
          are [0..nv-1], slacks [nv..nv+nr-1] *)
  vstat : char array;
      (** per-column status, length [nv+nr]: ['b'] basic, ['l']/['u'] at
          lower/upper bound, ['f'] free at zero *)
}

type result = {
  status : status;
  objective : float;
  x : float array;  (** structural primal values, length [nv] *)
  y : float array;  (** row duals, length [nr] *)
  dj : float array;  (** structural reduced costs, length [nv] *)
  iterations : int;
  basis : basis option;
      (** final simplex basis, reusable as [?warm] on a re-solve of the
          same problem shape; [None] when no clean slack/structural basis
          exists (e.g. constraint-free models) *)
}

type analysis
(** Symbolic analysis of a problem's constraint matrix (row-major view
    used by pivot-row pricing).  Build once with {!make_analysis} and
    pass to every [solve] of the same matrix — cap sweeps and
    branch-and-bound children change only bounds/RHS, so the analysis
    stays valid.  Immutable: safe to share across pool domains. *)

val make_analysis : Model.problem -> analysis

val refactor_limit : unit -> float
(** Effective Forrest–Tomlin refactorization fill-ratio trigger:
    [POWERLIM_REFACTOR] when set to a finite value [> 1.0], else the
    default [2.0].  Exposed so tests can pin the documented default
    against the code. *)

val solve :
  ?max_iter:int ->
  ?feas_tol:float ->
  ?opt_tol:float ->
  ?lb:float array ->
  ?ub:float array ->
  ?rhs:float array ->
  ?warm:basis ->
  ?warm_primal:bool ->
  ?analysis:analysis ->
  ?bands:int array * int array ->
  Model.problem ->
  result
(** [solve p] minimizes [p].  [lb]/[ub]/[rhs] override the structural
    bounds / row RHS without rebuilding the problem (used by branch and
    bound and by power-cap re-solves).  [warm] supplies a starting basis
    from a previous solve of the same problem shape ([nv]/[nr]
    unchanged); it is repaired against the current bounds and re-solved
    with the dual simplex, falling back to a cold solve when repair is
    impossible.  [warm_primal] (default [false]) asserts the warm basis
    is primal feasible for the new data (column generation: new columns
    enter nonbasic at bound, objective and bounds otherwise unchanged),
    skipping the dual-feasibility bound-flip repair in favour of a
    direct primal phase-2 run; when the basis turns out primal
    infeasible the normal repair path runs instead.  [analysis] reuses a {!make_analysis} of [p] (matrix
    unchanged) instead of rebuilding it per solve.  [bands] is a
    [(col_bands, row_bands)] pair of staircase stage indices (lengths
    [nv] and [nr]); every factorization orders the basis band-major
    with Markowitz tie-breaking within a band ({!Lu.factor}'s [?bands]),
    slack and artificial columns inheriting their row's band.  Purely a
    fill-reducing hint: results are unaffected beyond roundoff-level
    pivot ordering.  [max_iter <= 0] selects a size-dependent
    default. *)
