(** Mixed-integer linear programming by LP-based branch and bound.

    Best-bound node selection, branching on the most fractional integer
    variable.  Each node solves its LP relaxation with {!Revised},
    warm-started from the parent node's optimal basis: a branching
    changes a single variable bound, so the parent basis stays dual
    feasible and the dual simplex typically reoptimizes in a handful of
    pivots (pass [~warm:false] to re-solve every node from scratch).
    This is ample for the small flow-ILP instances the paper solves
    (tens of binaries), which is also the regime the paper itself
    restricts the ILP to. *)

type status = Optimal | Infeasible | Unbounded | Node_limit

type result = {
  status : status;
  objective : float;
  x : float array;
  nodes : int;  (** number of branch-and-bound nodes solved *)
  relaxation : float;  (** objective of the root LP relaxation *)
}

type node = {
  n_lb : float array;
  n_ub : float array;
  depth : int;
  n_warm : Revised.basis option;
      (** parent node's optimal basis, used to warm-start this node's
          relaxation *)
}

let most_fractional (p : Model.problem) ?(int_tol = 1e-6) (x : float array) =
  let best = ref (-1) and best_frac = ref int_tol in
  for j = 0 to p.nv - 1 do
    if p.integer.(j) then begin
      let dist = Float.abs (x.(j) -. Float.round x.(j)) in
      (* distance from the nearest integer, in [0, 0.5] *)
      if dist > !best_frac then begin
        best := j;
        best_frac := dist
      end
    end
  done;
  !best

let integral (p : Model.problem) ?(int_tol = 1e-6) (x : float array) =
  most_fractional p ~int_tol x < 0

let snap (p : Model.problem) (x : float array) =
  Array.mapi
    (fun j v -> if p.integer.(j) then Float.round v else v)
    x

let solve ?pool ?(max_nodes = 100_000) ?(int_tol = 1e-6) ?(gap = 1e-9)
    ?(lp_max_iter = 0) ?(warm = true) (p : Model.problem) : result =
  let root =
    { n_lb = Array.copy p.lb; n_ub = Array.copy p.ub; depth = 0; n_warm = None }
  in
  let heap = Putil.Pqueue.create () in
  let incumbent = ref None in
  let incumbent_obj = ref Float.infinity in
  (* atomic: child relaxations may be solved on pool workers *)
  let nodes = Atomic.make 0 in
  let relaxation = ref Float.nan in
  let status = ref Infeasible in
  (* Every node relaxation shares [p]'s constraint matrix (nodes differ
     only in bounds), so one symbolic analysis serves the whole tree. *)
  let analysis = Revised.make_analysis p in
  let solve_node n =
    Atomic.incr nodes;
    Putil.Obs.span ~cat:"milp"
      ~args:[ ("depth", string_of_int n.depth) ]
      "node"
      (fun () ->
        Revised.solve ~max_iter:lp_max_iter ~lb:n.n_lb ~ub:n.n_ub ?warm:n.n_warm
          ~analysis p)
  in
  (* Both children of a branching are independent LP solves over the
     shared read-only problem (bounds are per-node copies); with a
     parallel pool they run concurrently.  Results are then folded in a
     fixed (down, up) order, so the heap insertion sequence -- and hence
     the whole search -- is identical to the sequential mode. *)
  let solve_children kids =
    match pool with
    | Some pl when Putil.Pool.size pl > 1 ->
        Putil.Pool.parallel_map pl (fun c -> (c, solve_node c)) kids
    | _ -> List.map (fun c -> (c, solve_node c)) kids
  in
  let r0 = solve_node root in
  (match r0.Revised.status with
  | Revised.Unbounded -> status := Unbounded
  | Revised.Infeasible -> status := Infeasible
  | Revised.Iter_limit -> status := Node_limit
  | Revised.Optimal ->
      relaxation := r0.Revised.objective;
      Putil.Pqueue.push heap r0.Revised.objective (root, r0);
      let hit_limit = ref false in
      while (not (Putil.Pqueue.is_empty heap)) && not !hit_limit do
        if Atomic.get nodes > max_nodes then hit_limit := true
        else begin
          match Putil.Pqueue.pop heap with
          | None -> ()
          | Some (bound, (n, r)) ->
              if bound < !incumbent_obj -. gap then begin
                let x = r.Revised.x in
                match most_fractional p ~int_tol x with
                | -1 ->
                    (* integral: candidate incumbent *)
                    let xs = snap p x in
                    if Model.feasible ~tol:1e-5 p xs then begin
                      let o = Model.objective_value p xs in
                      if o < !incumbent_obj then begin
                        incumbent_obj := o;
                        incumbent := Some xs
                      end
                    end
                | j ->
                    let fl = Float.of_int (int_of_float (Float.floor x.(j))) in
                    let make_child lo_ hi_ =
                      if lo_ > hi_ then None
                      else begin
                        let c =
                          {
                            n_lb = Array.copy n.n_lb;
                            n_ub = Array.copy n.n_ub;
                            depth = n.depth + 1;
                            n_warm = (if warm then r.Revised.basis else None);
                          }
                        in
                        c.n_lb.(j) <- max c.n_lb.(j) lo_;
                        c.n_ub.(j) <- min c.n_ub.(j) hi_;
                        if c.n_lb.(j) <= c.n_ub.(j) then Some c else None
                      end
                    in
                    let kids =
                      List.filter_map Fun.id
                        [
                          make_child Float.neg_infinity fl;
                          make_child (fl +. 1.0) Float.infinity;
                        ]
                    in
                    List.iter
                      (fun (c, rc) ->
                        match rc.Revised.status with
                        | Revised.Optimal ->
                            if rc.Revised.objective < !incumbent_obj -. gap
                            then
                              Putil.Pqueue.push heap rc.Revised.objective (c, rc)
                        | Revised.Infeasible -> ()
                        | Revised.Unbounded | Revised.Iter_limit ->
                            hit_limit := true)
                      (solve_children kids)
              end
        end
      done;
      (* Any limit (node budget, or a child LP stopping on its iteration
         limit, which silently prunes that subtree) means the incumbent is
         not proven optimal: the search is inconclusive even when an
         incumbent exists. *)
      if !hit_limit then status := Node_limit
      else
        status := (match !incumbent with Some _ -> Optimal | None -> Infeasible));
  match !incumbent with
  | Some x ->
      {
        status = !status;
        objective = !incumbent_obj;
        x;
        nodes = Atomic.get nodes;
        relaxation = !relaxation;
      }
  | None ->
      {
        status = !status;
        objective = Float.nan;
        x = Array.make p.nv 0.0;
        nodes = Atomic.get nodes;
        relaxation = !relaxation;
      }
