(** Process-wide solver counters (atomic, shared across pool domains).

    {!Revised.solve} reports every solve: cold vs warm start, the
    primal/dual pivot split, bound flips, basis factorizations and wall
    time.  Reset before the region you want to measure, snapshot after;
    [warmbench] and the benchmark harness are the main consumers. *)

type snapshot = {
  solves : int;
  cold_solves : int;
  warm_solves : int;  (** solves that ran from a caller-supplied basis *)
  warm_fallbacks : int;
      (** warm attempts abandoned for a cold phase-1/2 restart *)
  pivots : int;  (** total simplex iterations, primal + dual *)
  primal_pivots : int;
  dual_pivots : int;
  bound_flips : int;  (** dual-ratio-test flips (no basis change) *)
  factorizations : int;
  ftran_sparse : int;  (** FTRANs served by the hypersparse kernel *)
  ftran_dense : int;  (** FTRANs that fell back to (or forced) dense *)
  btran_sparse : int;
  btran_dense : int;
  devex_resets : int;  (** devex reference-framework re-initializations *)
  cand_refreshes : int;  (** full pricing scans rebuilding the candidate list *)
  edit_solves : int;  (** incremental re-solves through {!Edit.resolve} *)
  edit_warm : int;  (** edit re-solves whose basis mapping succeeded *)
  edit_fallbacks : int;
      (** edit re-solves that abandoned the mapping and went cold *)
  ft_updates : int;  (** Forrest–Tomlin basis updates applied *)
  refactorizations : int;
      (** alias of [factorizations] under the Forrest–Tomlin trigger
          vocabulary; every factorization after the first per attempt
          replaces an update file *)
  fill_ratio_max : float;
      (** worst Forrest–Tomlin fill ratio observed (process max) *)
  scale_passes : int;
      (** geometric-mean equilibration passes run by {!Presolve} *)
  small_dense_solves : int;
      (** solves routed through the small-instance dense classic path *)
  obj_mode_switches : int;
      (** prepared handles switched between objective modes
          ({!Core.Event_lp.switch_objective}) *)
  reclaim_passes : int;
      (** slack-reclamation post-passes run ({!Core.Replay.reclaim}) *)
  reclaimed_joules_pct : float;
      (** energy the slack passes reclaimed, as a percentage of the
          energy of the schedules they ran on (process aggregate) *)
  dw_iterations : int;
      (** Dantzig–Wolfe master iterations ({!Decomp.solve}) *)
  dw_subproblem_solves : int;
      (** per-block pricing LP solves across all decompositions *)
  dw_master_resolves : int;  (** restricted-master LP solves *)
  dw_crossover_fallbacks : int;
      (** decompositions abandoned for the monolithic solver (master or
          subproblem trouble, stuck artificials, certification failure,
          or the all-slack coupling-dual degeneracy guard) *)
  wall_s : float;  (** summed wall time inside {!Revised.solve} *)
}

val reset : unit -> unit
val snapshot : unit -> snapshot
val pp : Format.formatter -> snapshot -> unit

(** {2 Internal increment API (used by {!Revised})} *)

val note_fallback : unit -> unit

val note_edit : warm:bool -> fallback:bool -> unit
(** Count one {!Edit.resolve}: [warm] when the basis mapping succeeded
    and seeded the solve, [fallback] when a warm start was requested but
    the mapping was abandoned for a cold solve. *)

val note_solve :
  warm:bool ->
  iterations:int ->
  dual:int ->
  flips:int ->
  factors:int ->
  wall:float ->
  unit

val note_kernels :
  ftran_sp:int ->
  ftran_dn:int ->
  btran_sp:int ->
  btran_dn:int ->
  resets:int ->
  refreshes:int ->
  unit
(** Flush per-solve kernel/pricing tallies (sparse-vs-dense FTRAN/BTRAN
    counts, devex resets, candidate-list refreshes) into the process
    counters in one shot, keeping atomics off the solver hot loops. *)

val note_ft : updates:int -> fill_max:float -> small_dense:int -> unit
(** Flush one solve's Forrest–Tomlin tallies: update count, worst fill
    ratio seen (folded into the process max), and whether the solve ran
    on the small-instance dense path. *)

val note_scale_pass : unit -> unit
(** Count one equilibration pass (called by {!Presolve}). *)

val note_dw_iteration : unit -> unit
(** Count one Dantzig–Wolfe master iteration (called by {!Decomp}). *)

val note_dw_subproblem : unit -> unit
(** Count one pricing-subproblem solve. *)

val note_dw_master : unit -> unit
(** Count one restricted-master re-solve. *)

val note_dw_crossover_fallback : unit -> unit
(** Count one decomposition abandoned for the monolithic solver. *)

val note_mode_switch : unit -> unit
(** Count one objective-mode switch of a prepared event LP. *)

val note_reclaim : base_j:float -> reclaimed_j:float -> unit
(** Record one slack-reclamation pass: the energy of the schedule it
    ran on and the joules it shaved off.  The snapshot exposes the
    aggregate as [reclaimed_joules_pct]. *)
