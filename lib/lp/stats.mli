(** Process-wide solver counters (atomic, shared across pool domains).

    {!Revised.solve} reports every solve: cold vs warm start, the
    primal/dual pivot split, bound flips, basis factorizations and wall
    time.  Reset before the region you want to measure, snapshot after;
    [warmbench] and the benchmark harness are the main consumers. *)

type snapshot = {
  solves : int;
  cold_solves : int;
  warm_solves : int;  (** solves that ran from a caller-supplied basis *)
  warm_fallbacks : int;
      (** warm attempts abandoned for a cold phase-1/2 restart *)
  pivots : int;  (** total simplex iterations, primal + dual *)
  primal_pivots : int;
  dual_pivots : int;
  bound_flips : int;  (** dual-ratio-test flips (no basis change) *)
  factorizations : int;
  wall_s : float;  (** summed wall time inside {!Revised.solve} *)
}

val reset : unit -> unit
val snapshot : unit -> snapshot
val pp : Format.formatter -> snapshot -> unit

(** {2 Internal increment API (used by {!Revised})} *)

val note_fallback : unit -> unit

val note_solve :
  warm:bool ->
  iterations:int ->
  dual:int ->
  flips:int ->
  factors:int ->
  wall:float ->
  unit
