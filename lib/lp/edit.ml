(** Typed structural edits of a compiled LP, with basis-mapped warm
    re-solves.  See edit.mli for the contract; the mechanics:

    - {!apply} rebuilds the constraint matrix through a COO round trip
      per edit.  Edits are milliseconds-scale interactive operations, so
      the O(nnz) rebuild is irrelevant next to the solve it precedes.

    - The basis mapping treats every structural change as a bordered
      update of the factorized basis B (see {!Lu}):

      {ul
      {- an added row takes its own slack basic — the bordered system
         [[B 0]; [aᵀ ±1]] pivots on ±1 and is never singular, and the
         zero-cost slack keeps the dual point feasible;}
      {- an added column enters nonbasic at a bound — B is untouched;}
      {- a removed row must retire one basic column.  If the row's own
         slack is basic the pair (row, slack) is removable outright
         (deleting row i and column e_i leaves the determinant intact);
         otherwise the pivot column B⁻¹e_i ({!Lu.unit_ftran}) scores
         every basis position and the largest-magnitude pivot wins;}
      {- a removed column that is basic must recruit a replacement.  The
         pivot row B⁻ᵀe_pos ({!Lu.unit_btran}) scores every row whose
         slack is nonbasic, and the slack with the largest pivot stands
         in.}}

      A pivot below {!pivot_tol}, a singular or fill-heavy
      factorization, or exhausting the per-mapping factorization budget
      abandons the mapping — the caller then solves cold. *)

type t =
  | Add_row of {
      name : string;
      terms : (float * int) list;
      sense : Model.sense;
      rhs : float;
    }
  | Remove_row of int
  | Add_col of {
      name : string;
      lb : float;
      ub : float;
      obj : float;
      terms : (float * int) list;
    }
  | Remove_col of int
  | Set_bounds of { col : int; lb : float; ub : float }
  | Set_obj of { col : int; obj : float }
  | Set_entry of { row : int; col : int; coef : float }
  | Set_rhs of { row : int; rhs : float }

let pp ppf = function
  | Add_row { name; terms; sense; rhs } ->
      Fmt.pf ppf "add-row %s (%d terms) %a %g" name (List.length terms)
        Model.pp_sense sense rhs
  | Remove_row i -> Fmt.pf ppf "remove-row %d" i
  | Add_col { name; lb; ub; obj; terms } ->
      Fmt.pf ppf "add-col %s [%g,%g] obj %g (%d terms)" name lb ub obj
        (List.length terms)
  | Remove_col j -> Fmt.pf ppf "remove-col %d" j
  | Set_bounds { col; lb; ub } -> Fmt.pf ppf "set-bounds %d [%g,%g]" col lb ub
  | Set_obj { col; obj } -> Fmt.pf ppf "set-obj %d %g" col obj
  | Set_entry { row; col; coef } ->
      Fmt.pf ppf "set-entry (%d,%d) %g" row col coef
  | Set_rhs { row; rhs } -> Fmt.pf ppf "set-rhs %d %g" row rhs

(* ------------------------------------------------------------------ *)
(* validation                                                          *)
(* ------------------------------------------------------------------ *)

let invalid fmt = Printf.ksprintf invalid_arg fmt

let check_row (p : Model.problem) i what =
  if i < 0 || i >= p.nr then invalid "Lp.Edit.%s: row %d outside 0..%d" what i (p.nr - 1)

let check_col (p : Model.problem) j what =
  if j < 0 || j >= p.nv then invalid "Lp.Edit.%s: col %d outside 0..%d" what j (p.nv - 1)

let check_val v what =
  if Float.is_nan v then invalid "Lp.Edit.%s: NaN value" what

let check_finite v what =
  if not (Float.is_finite v) then invalid "Lp.Edit.%s: non-finite value %g" what v

(* ------------------------------------------------------------------ *)
(* applying one edit                                                   *)
(* ------------------------------------------------------------------ *)

(* Rebuild the CSC matrix from an entry enumeration with the edit's
   transformation folded in.  [emit f] must call [f row col v] for every
   entry of the edited matrix. *)
let rebuild ~nr ~nv emit =
  let coo = Sparse.Coo.create () in
  emit (fun i j v -> Sparse.Coo.add coo i j v);
  Sparse.Csc.of_coo ~nrows:nr ~ncols:nv coo

let iter_entries (p : Model.problem) f =
  for j = 0 to p.nv - 1 do
    Sparse.Csc.iter_col p.a j (fun i v -> f i j v)
  done

let remove_idx a i =
  Array.init (Array.length a - 1) (fun k -> if k < i then a.(k) else a.(k + 1))

let append a v =
  let n = Array.length a in
  Array.init (n + 1) (fun k -> if k < n then a.(k) else v)

let apply_one (p : Model.problem) (e : t) : Model.problem =
  match e with
  | Set_bounds { col; lb; ub } ->
      check_col p col "set_bounds";
      check_val lb "set_bounds";
      check_val ub "set_bounds";
      if lb > ub then invalid "Lp.Edit.set_bounds: lb %g > ub %g" lb ub;
      let lb' = Array.copy p.lb and ub' = Array.copy p.ub in
      lb'.(col) <- lb;
      ub'.(col) <- ub;
      { p with lb = lb'; ub = ub' }
  | Set_obj { col; obj } ->
      check_col p col "set_obj";
      check_finite obj "set_obj";
      let o = Array.copy p.obj in
      o.(col) <- obj;
      { p with obj = o }
  | Set_rhs { row; rhs } ->
      check_row p row "set_rhs";
      check_finite rhs "set_rhs";
      let r = Array.copy p.row_rhs in
      r.(row) <- rhs;
      { p with row_rhs = r }
  | Set_entry { row; col; coef } ->
      check_row p row "set_entry";
      check_col p col "set_entry";
      check_finite coef "set_entry";
      let a =
        rebuild ~nr:p.nr ~nv:p.nv (fun add ->
            iter_entries p (fun i j v ->
                if not (i = row && j = col) then add i j v);
            add row col coef)
      in
      { p with a }
  | Add_row { name; terms; sense; rhs } ->
      check_finite rhs "add_row";
      List.iter
        (fun (c, j) ->
          check_finite c "add_row";
          check_col p j "add_row")
        terms;
      let a =
        rebuild ~nr:(p.nr + 1) ~nv:p.nv (fun add ->
            iter_entries p add;
            List.iter (fun (c, j) -> add p.nr j c) terms)
      in
      {
        p with
        nr = p.nr + 1;
        a;
        row_sense = append p.row_sense sense;
        row_rhs = append p.row_rhs rhs;
        row_names = append p.row_names name;
      }
  | Remove_row i ->
      check_row p i "remove_row";
      let a =
        rebuild ~nr:(p.nr - 1) ~nv:p.nv (fun add ->
            iter_entries p (fun r j v ->
                if r < i then add r j v else if r > i then add (r - 1) j v))
      in
      {
        p with
        nr = p.nr - 1;
        a;
        row_sense = remove_idx p.row_sense i;
        row_rhs = remove_idx p.row_rhs i;
        row_names = remove_idx p.row_names i;
      }
  | Add_col { name; lb; ub; obj; terms } ->
      check_val lb "add_col";
      check_val ub "add_col";
      if lb > ub then invalid "Lp.Edit.add_col: lb %g > ub %g" lb ub;
      check_finite obj "add_col";
      List.iter
        (fun (c, i) ->
          check_finite c "add_col";
          check_row p i "add_col")
        terms;
      let a =
        rebuild ~nr:p.nr ~nv:(p.nv + 1) (fun add ->
            iter_entries p add;
            List.iter (fun (c, i) -> add i p.nv c) terms)
      in
      {
        p with
        nv = p.nv + 1;
        a;
        lb = append p.lb lb;
        ub = append p.ub ub;
        obj = append p.obj obj;
        integer = append p.integer false;
        var_names = append p.var_names name;
      }
  | Remove_col j ->
      check_col p j "remove_col";
      let a =
        rebuild ~nr:p.nr ~nv:(p.nv - 1) (fun add ->
            iter_entries p (fun i c v ->
                if c < j then add i c v else if c > j then add i (c - 1) v))
      in
      {
        p with
        nv = p.nv - 1;
        a;
        lb = remove_idx p.lb j;
        ub = remove_idx p.ub j;
        obj = remove_idx p.obj j;
        integer = remove_idx p.integer j;
        var_names = remove_idx p.var_names j;
      }

let apply p edits = List.fold_left apply_one p edits

(* The minimal Set_obj list turning [p]'s objective into [obj]:
   one edit per column whose coefficient actually changes (bit-level
   comparison, so -0.0 vs 0.0 round-trips exactly).  This is how an
   objective-mode switch (makespan <-> energy, {!Core.Event_lp}) is
   expressed in the edit language: the basis mapping is trivial — no
   structural change — and the dual simplex repairs the now-stale
   reduced costs. *)
let set_objective (p : Model.problem) (obj : float array) : t list =
  if Array.length obj <> p.nv then
    invalid_arg
      (Printf.sprintf "Edit.set_objective: %d coefficients for %d columns"
         (Array.length obj) p.nv);
  let acc = ref [] in
  for col = p.nv - 1 downto 0 do
    if
      not
        (Int64.equal
           (Int64.bits_of_float p.obj.(col))
           (Int64.bits_of_float obj.(col)))
    then acc := Set_obj { col; obj = obj.(col) } :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* index maps                                                          *)
(* ------------------------------------------------------------------ *)

(* Track where each of the original problem's rows/columns ends up.
   Only the shape evolution matters, so the fold carries (nv, nr) and
   the two maps. *)
let maps (p : Model.problem) edits =
  let cmap = Array.init p.nv Fun.id and rmap = Array.init p.nr Fun.id in
  let drop map i =
    Array.iteri
      (fun k v -> if v = i then map.(k) <- -1 else if v > i then map.(k) <- v - 1)
      map
  in
  ignore
    (List.fold_left
       (fun (nv, nr) e ->
         match e with
         | Add_row _ -> (nv, nr + 1)
         | Remove_row i ->
             drop rmap i;
             (nv, nr - 1)
         | Add_col _ -> (nv + 1, nr)
         | Remove_col j ->
             drop cmap j;
             (nv - 1, nr)
         | Set_bounds _ | Set_obj _ | Set_entry _ | Set_rhs _ -> (nv, nr))
       (p.nv, p.nr) edits);
  (cmap, rmap)

let col_map p edits = fst (maps p edits)
let row_map p edits = snd (maps p edits)

(* ------------------------------------------------------------------ *)
(* basis mapping                                                       *)
(* ------------------------------------------------------------------ *)

(* Pivots below this magnitude are treated as singular pairings. *)
let pivot_tol = 1e-9

(* A factorization whose fill exceeds this multiple of the basis's own
   nonzero count is "excessive fill": the bordered scoring would be as
   expensive as a cold factorization path, so give up and solve cold. *)
let fill_limit = 8

(* Factorizations allowed while mapping one edit list; long structural
   sequences past this are cheaper to re-solve cold. *)
let factor_budget = 32

let factor_guarded (p : Model.problem) (b : Revised.basis) budget =
  if !budget <= 0 then None
  else begin
    decr budget;
    let m = p.nr in
    let lu =
      Lu.factor ~m (fun k f ->
          let j = b.Revised.basic.(k) in
          if j < p.nv then Sparse.Csc.iter_col p.a j f else f (j - p.nv) 1.0)
    in
    if lu.Lu.replaced <> [] then None
    else begin
      let base = ref m in
      Array.iter
        (fun j ->
          if j < p.nv then
            base :=
              !base + p.a.Sparse.Csc.colptr.(j + 1) - p.a.Sparse.Csc.colptr.(j))
        b.Revised.basic;
      if Lu.nnz lu > fill_limit * !base then None else Some lu
    end
  end

(* Nonbasic status a column lands at when it leaves the basis. *)
let off_basis_status lo hi =
  if Float.is_finite lo then 'l' else if Float.is_finite hi then 'u' else 'f'

let slack_bounds (p : Model.problem) r =
  match p.row_sense.(r) with
  | Model.Le -> (0.0, Float.infinity)
  | Model.Ge -> (Float.neg_infinity, 0.0)
  | Model.Eq -> (0.0, 0.0)

(* Map a basis of [p] across one edit; [p] is the PRE-edit problem.
   Shape bookkeeping mirrors [apply_one]: columns are
   [0..nv-1] structural then [nv..nv+nr-1] slacks, and removals compact
   both spaces. *)
let map_one (p : Model.problem) (b : Revised.basis) budget (e : t) :
    Revised.basis option =
  let nv = p.nv and m = p.nr in
  match e with
  | Set_bounds _ | Set_obj _ | Set_entry _ | Set_rhs _ -> Some b
  | Add_col { lb; ub; _ } ->
      (* the new column (index nv) enters nonbasic; slacks shift up *)
      let vstat = Array.make (nv + 1 + m) 'l' in
      Array.blit b.Revised.vstat 0 vstat 0 nv;
      vstat.(nv) <- off_basis_status lb ub;
      Array.blit b.Revised.vstat nv vstat (nv + 1) m;
      let basic =
        Array.map (fun j -> if j >= nv then j + 1 else j) b.Revised.basic
      in
      Some { Revised.basic; vstat }
  | Add_row { terms = _; _ } ->
      (* the new row's slack (index nv+m in the new shape) goes basic:
         the bordered system pivots on the slack's ±1 diagonal *)
      let vstat = append b.Revised.vstat 'b' in
      let basic = append b.Revised.basic (nv + m) in
      Some { Revised.basic; vstat }
  | Remove_col j ->
      let shrink ~basic =
        let basic =
          Array.map (fun c -> if c > j then c - 1 else c) basic
        in
        let vstat = remove_idx b.Revised.vstat j in
        Array.iter (fun c -> vstat.(c) <- 'b') basic;
        Some { Revised.basic; vstat }
      in
      if b.Revised.vstat.(j) <> 'b' then shrink ~basic:b.Revised.basic
      else begin
        (* recruit the best-pivot nonbasic slack to stand in *)
        match factor_guarded p b budget with
        | None -> None
        | Some lu ->
            let pos = ref (-1) in
            Array.iteri
              (fun k c -> if c = j then pos := k)
              b.Revised.basic;
            if !pos < 0 then None
            else begin
              let y = Lu.unit_btran lu ~pos:!pos in
              let best = ref (-1) and best_mag = ref pivot_tol in
              for r = 0 to m - 1 do
                if
                  b.Revised.vstat.(nv + r) <> 'b'
                  && Float.abs y.(r) > !best_mag
                then begin
                  best := r;
                  best_mag := Float.abs y.(r)
                end
              done;
              if !best < 0 then None
              else begin
                let basic = Array.copy b.Revised.basic in
                basic.(!pos) <- nv + !best;
                shrink ~basic
              end
            end
      end
  | Remove_row i ->
      let slack = nv + i in
      (* rebuild statuses in the (nv, m-1) shape from a list of basic
         columns given in the OLD shape minus the dropped one *)
      let shrink ~basic_old ~drop_pos =
        let basic =
          Array.init (m - 1) (fun k ->
              let k' = if k < drop_pos then k else k + 1 in
              let c = basic_old.(k') in
              if c > slack then c - 1 else c)
        in
        let vstat = remove_idx b.Revised.vstat slack in
        (* nonbasic statuses survive verbatim; re-mark basics *)
        Array.iter (fun c -> vstat.(c) <- 'b') basic;
        Some { Revised.basic; vstat }
      in
      if b.Revised.vstat.(slack) = 'b' then begin
        (* deleting row i together with its basic slack column e_i
           leaves the remaining minor nonsingular outright *)
        let pos = ref (-1) in
        Array.iteri (fun k c -> if c = slack then pos := k) b.Revised.basic;
        if !pos < 0 then None
        else shrink ~basic_old:b.Revised.basic ~drop_pos:!pos
      end
      else begin
        match factor_guarded p b budget with
        | None -> None
        | Some lu ->
            let x = Lu.unit_ftran lu ~row:i in
            let best = ref (-1) and best_mag = ref pivot_tol in
            Array.iteri
              (fun k v ->
                if Float.abs v > !best_mag then begin
                  best := k;
                  best_mag := Float.abs v
                end)
              x;
            if !best < 0 then None
            else begin
              (* the retired column leaves to its natural bound *)
              let out = b.Revised.basic.(!best) in
              let vstat = Array.copy b.Revised.vstat in
              (if out < nv then
                 vstat.(out) <- off_basis_status p.lb.(out) p.ub.(out)
               else begin
                 let lo, hi = slack_bounds p (out - nv) in
                 vstat.(out) <- off_basis_status lo hi
               end);
              shrink
                ~basic_old:b.Revised.basic
                ~drop_pos:!best
              |> Option.map (fun (bb : Revised.basis) ->
                     (* recompute statuses from the patched vstat *)
                     let vstat' = remove_idx vstat slack in
                     Array.iter
                       (fun c -> vstat'.(c) <- 'b')
                       bb.Revised.basic;
                     { bb with Revised.vstat = vstat' })
            end
      end

(* Fold the edit list once, evolving the problem and (as long as it
   survives) the mapped basis side by side. *)
let fold_edits (p : Model.problem) (warm : Revised.basis option) edits =
  List.fold_left
    (fun (p, b, budget) e ->
      let b' = Option.bind b (fun b -> map_one p b budget e) in
      (apply_one p e, b', budget))
    (p, warm, ref factor_budget)
    edits

let map_basis p b edits =
  let _, b', _ = fold_edits p (Some b) edits in
  b'

let resolve ?max_iter ?feas_tol ?opt_tol ?warm (p : Model.problem) edits =
  let p', w, _ = fold_edits p warm edits in
  Stats.note_edit ~warm:(w <> None)
    ~fallback:(warm <> None && w = None);
  (p', Revised.solve ?max_iter ?feas_tol ?opt_tol ?warm:w p')
