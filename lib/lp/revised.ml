(** Bounded-variable revised simplex with sparse basis factorization.

    Standard computational form: every row gets a slack variable
    ([a.x + s = b] with slack bounds encoding the row sense), so the
    constraint matrix is [[A | I]].  When the all-slack starting point is
    out of bounds, artificial variables restore feasibility and a phase-1
    objective (minimize the sum of artificials) is solved first.

    The basis is factorized with {!Lu} and updated between
    refactorizations with product-form (eta) updates.  Pricing is
    Dantzig's rule with an automatic switch to Bland's rule after a run of
    degenerate pivots; the ratio test is a two-pass Harris test.

    Warm starts: [solve] returns the final basis (basic set + nonbasic
    statuses) and accepts it back via [?warm] on a later call whose
    bounds/RHS differ.  The warm basis is repaired against the new bounds
    and, because bound/RHS changes preserve dual feasibility, re-solved
    with a {e dual simplex} loop (largest-violation row choice, dual
    ratio test with bound flips).  Any irreparable situation — basis
    singular beyond {!Lu} repair, dual-infeasible nonbasic that cannot be
    flipped — falls back to the cold primal phase-1/2 path, so a warm
    call can never be less robust than a cold one. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

let pp_status ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Iter_limit -> Fmt.string ppf "iteration-limit"

type basis = {
  basic : int array;
      (** column of each basis position, length [nr]; structural columns
          are [0..nv-1], slacks [nv..nv+nr-1] *)
  vstat : char array;
      (** per-column status, length [nv+nr]: ['b'] basic, ['l']/['u'] at
          lower/upper bound, ['f'] free at zero *)
}

type result = {
  status : status;
  objective : float;
  x : float array;  (** structural primal values, length [nv] *)
  y : float array;  (** row duals, length [nr] *)
  dj : float array;  (** structural reduced costs, length [nv] *)
  iterations : int;
  basis : basis option;
      (** final simplex basis, reusable as [?warm] on a re-solve of the
          same problem shape; [None] when no clean slack/structural basis
          exists (e.g. constraint-free models) *)
}

type eta = { er : int; eidx : int array; evals : float array; edia : float }

let neg_inf = Float.neg_infinity
let inf = Float.infinity

exception Warm_fallback

(* Runtime knobs, read once per solve so tests can flip them between
   calls.  All parsing/validation lives in [Putil.Env]: a malformed or
   out-of-range value warns once on stderr and falls back to the
   default. *)

(* Devex candidate-list pricing (POWERLIM_DEVEX=0 restores the classic
   Dantzig loop bit for bit). *)
let devex_enabled () = Putil.Env.flag "POWERLIM_DEVEX" ~default:true

(* Hypersparse FTRAN/BTRAN (POWERLIM_HYPERSPARSE=0 forces the dense
   kernels; simplexbench uses it to measure the pre-change baseline). *)
let hypersparse_enabled () = Putil.Env.flag "POWERLIM_HYPERSPARSE" ~default:true

(* Eta-file length that triggers refactorization (POWERLIM_ETA_LIMIT,
   default 64).  Only governs the legacy product-form path; in
   Forrest–Tomlin mode it survives as a deprecated alias for the
   update-count cap (see [ft_update_cap]). *)
let eta_limit () = Putil.Env.int ~lo:1 "POWERLIM_ETA_LIMIT" ~default:64

(* Forrest–Tomlin row-eta basis updates (POWERLIM_FT=0 restores the
   product-form column-eta file). *)
let ft_enabled () = Putil.Env.flag "POWERLIM_FT" ~default:true

(* Fill ratio — (L + dynamic U + row etas) / nonzeros at factorization —
   that triggers refactorization in Forrest–Tomlin mode
   (POWERLIM_REFACTOR, default 2.0; must exceed 1.0, the fill ratio of
   a fresh factorization). *)
let refactor_limit () =
  Putil.Env.float ~lo_exclusive:1.0 "POWERLIM_REFACTOR" ~default:2.0

(* Absolute update-count backstop between refactorizations in FT mode:
   the fill ratio is the primary trigger, the cap bounds numerical
   drift on fill-free update chains.  POWERLIM_ETA_LIMIT, when set,
   overrides it (deprecated alias; the first use reports both effective
   knobs on stderr). *)
let eta_limit_warned = ref false

let ft_update_cap ~refac_lim =
  if Putil.Env.explicit "POWERLIM_ETA_LIMIT" then begin
    let n = Putil.Env.int ~lo:1 "POWERLIM_ETA_LIMIT" ~default:256 in
    if not !eta_limit_warned then begin
      eta_limit_warned := true;
      Printf.eprintf
        "powerlim: POWERLIM_ETA_LIMIT is deprecated with Forrest-Tomlin \
         updates; treating it as the update-count cap (%d).  \
         Refactorization is primarily triggered by POWERLIM_REFACTOR \
         (fill ratio, currently %g).\n\
         %!"
        n refac_lim
    end;
    n
  end
  else 256

(* Below this row count the reachability probes, support bookkeeping
   and devex candidate machinery cost more than the dense classic loop
   they avoid, so small instances auto-select dense kernels and classic
   pricing (Forrest–Tomlin stays on — the update itself is cheaper than
   a product-form eta at any size).  Explicitly set
   POWERLIM_HYPERSPARSE / POWERLIM_DEVEX still win, so kernel tests and
   the benchmark baselines keep their meaning on small instances. *)
let small_lp_threshold () =
  Putil.Env.int ~lo:0 "POWERLIM_SMALL_LP" ~default:160

type analysis = { arows : Sparse.Csc.rows }
(** Symbolic analysis of a problem's constraint matrix, reusable across
    solves that change only bounds/RHS (cap sweeps, branch-and-bound
    children).  Immutable after construction, so one value may be shared
    freely across pool domains. *)

let make_analysis (p : Model.problem) = { arows = Sparse.Csc.rows p.a }

(* Trivial path for models without constraints. *)
let solve_unconstrained (p : Model.problem) lo hi =
  let x = Array.make p.nv 0.0 in
  let status = ref Optimal in
  for j = 0 to p.nv - 1 do
    let c = p.obj.(j) in
    if c > 0.0 then
      if Float.is_finite lo.(j) then x.(j) <- lo.(j) else status := Unbounded
    else if c < 0.0 then
      if Float.is_finite hi.(j) then x.(j) <- hi.(j) else status := Unbounded
    else x.(j) <- (if Float.is_finite lo.(j) then lo.(j) else min hi.(j) 0.0)
  done;
  {
    status = !status;
    objective = Model.objective_value p x;
    x;
    y = [||];
    dj = Array.copy p.obj;
    iterations = 0;
    basis = None;
  }

let solve_impl ?(max_iter = 0) ?(feas_tol = 1e-7) ?(opt_tol = 1e-7) ?lb ?ub
    ?rhs ?warm ?(warm_primal = false) ?analysis ?bands (p : Model.problem) :
    result =
  let t_solve0 = Unix.gettimeofday () in
  let nv = p.nv and m = p.nr in
  let eta_max = eta_limit () in
  let ftmode = ft_enabled () in
  let refac_lim = refactor_limit () in
  let ft_cap = if ftmode then ft_update_cap ~refac_lim else max_int in
  let small = m > 0 && m <= small_lp_threshold () in
  (* [Putil.Env.explicit] treats an empty value as unset: [Unix.putenv]
     cannot remove a variable, so in-process benchmarks set "" to hand
     the choice back to the auto mode. *)
  let hyper =
    if Putil.Env.explicit "POWERLIM_HYPERSPARSE" then hypersparse_enabled ()
    else not small
  in
  let devex =
    if Putil.Env.explicit "POWERLIM_DEVEX" then devex_enabled ()
    else not small
  in
  let lb_s = match lb with Some a -> a | None -> p.lb in
  let ub_s = match ub with Some a -> a | None -> p.ub in
  let rhs_s = match rhs with Some a -> a | None -> p.row_rhs in
  let max_iter = if max_iter > 0 then max_iter else 20_000 + (60 * m) in
  (* Column layout: 0..nv-1 structural, nv..nv+m-1 slacks, then
     artificials.  [ntot] grows as artificials are added. *)
  let cap = nv + m + m in
  let lo = Array.make cap 0.0 and hi = Array.make cap 0.0 in
  Array.blit lb_s 0 lo 0 nv;
  Array.blit ub_s 0 hi 0 nv;
  for i = 0 to m - 1 do
    let j = nv + i in
    match p.row_sense.(i) with
    | Model.Le ->
        lo.(j) <- 0.0;
        hi.(j) <- inf
    | Model.Ge ->
        lo.(j) <- neg_inf;
        hi.(j) <- 0.0
    | Model.Eq ->
        lo.(j) <- 0.0;
        hi.(j) <- 0.0
  done;
  if m = 0 then begin
    let r = solve_unconstrained p lo hi in
    Stats.note_solve ~warm:false ~iterations:0 ~dual:0 ~flips:0 ~factors:0
      ~wall:(Unix.gettimeofday () -. t_solve0);
    r
  end
  else begin
    (* One solve attempt: cold (phase 1/2 primal) when [warm_opt = None],
       otherwise installs the given basis and runs the dual simplex.
       Warm attempts raise [Warm_fallback] on any irreparable state and
       are retried cold by the dispatcher below. *)
    let attempt warm_opt =
      let nart = ref 0 in
      let art_row = Array.make m (-1) and art_sig = Array.make m 1.0 in
      let ntot () = nv + m + !nart in
      let col_iter j f =
        if j < nv then Sparse.Csc.iter_col p.a j f
        else if j < nv + m then f (j - nv) 1.0
        else f art_row.(j - nv - m) art_sig.(j - nv - m)
      in
      let col_dot j (y : float array) =
        if j < nv then Sparse.Csc.dot_col p.a j y
        else if j < nv + m then y.(j - nv)
        else art_sig.(j - nv - m) *. y.(art_row.(j - nv - m))
      in
      let where = Array.make cap (-1) in
      let nb_at = Array.make cap 'l' in
      let basis = Array.make m 0 in
      let x_basic = Array.make m 0.0 in
      let nbval j =
        match nb_at.(j) with
        | 'l' -> lo.(j)
        | 'u' -> hi.(j)
        | _ -> 0.0
      in
      (match warm_opt with
      | None ->
          (* Initial nonbasic statuses for structural columns. *)
          for j = 0 to nv - 1 do
            nb_at.(j) <-
              (if Float.is_finite lo.(j) then 'l'
               else if Float.is_finite hi.(j) then 'u'
               else 'f')
          done;
          (* Row activities of the nonbasic structural point. *)
          let act = Array.make m 0.0 in
          let x0 = Array.init nv nbval in
          Sparse.Csc.mult p.a x0 act;
          for i = 0 to m - 1 do
            let sj = nv + i in
            let sval = rhs_s.(i) -. act.(i) in
            if sval >= lo.(sj) -. feas_tol && sval <= hi.(sj) +. feas_tol
            then begin
              basis.(i) <- sj;
              where.(sj) <- i;
              x_basic.(i) <- sval
            end
            else begin
              let bound = if sval < lo.(sj) then lo.(sj) else hi.(sj) in
              nb_at.(sj) <- (if sval < lo.(sj) then 'l' else 'u');
              let r = sval -. bound in
              let k = !nart in
              incr nart;
              art_row.(k) <- i;
              art_sig.(k) <- (if r >= 0.0 then 1.0 else -1.0);
              let aj = nv + m + k in
              lo.(aj) <- 0.0;
              hi.(aj) <- inf;
              basis.(i) <- aj;
              where.(aj) <- i;
              x_basic.(i) <- Float.abs r
            end
          done
      | Some wb ->
          (* Install the caller's basis; repair nonbasic statuses against
             the (possibly changed) bounds. *)
          if Array.length wb.basic <> m || Array.length wb.vstat <> nv + m
          then raise Warm_fallback;
          Array.iteri
            (fun k j ->
              if j < 0 || j >= nv + m || where.(j) >= 0 then
                raise Warm_fallback;
              basis.(k) <- j;
              where.(j) <- k)
            wb.basic;
          for j = 0 to nv + m - 1 do
            if where.(j) < 0 then
              nb_at.(j) <-
                (match wb.vstat.(j) with
                | 'l' when Float.is_finite lo.(j) -> 'l'
                | 'u' when Float.is_finite hi.(j) -> 'u'
                | _ ->
                    if Float.is_finite lo.(j) then 'l'
                    else if Float.is_finite hi.(j) then 'u'
                    else 'f')
          done);
      (* --- basis factorization machinery ------------------------------- *)
      let stats_on = Sys.getenv_opt "LP_STATS" <> None in
      let t_factor = ref 0.0
      and t_ftran = ref 0.0
      and t_btran = ref 0.0
      and t_price = ref 0.0
      and t_ratio = ref 0.0
      and lu_nnz_total = ref 0
      and n_factor = ref 0 in
      let clock () = if stats_on then Sys.time () else 0.0 in
      (* Staircase bands: the caller supplies per-structural-column and
         per-row stage indices; each factorization maps them onto the
         current basis (slacks and artificials inherit their row's
         band) so [Lu.factor] can order band-major. *)
      let basis_bands =
        match bands with
        | None -> None
        | Some (cb, rb) ->
            if Array.length cb <> nv || Array.length rb <> m then
              invalid_arg "Revised.solve: bands arrays mismatch problem";
            let band j =
              if j < nv then cb.(j)
              else if j < nv + m then rb.(j - nv)
              else rb.(art_row.(j - nv - m))
            in
            Some (fun () -> Array.init m (fun k -> band basis.(k)))
      in
      let factor_basis () =
        match basis_bands with
        | None -> Lu.factor ~symbolic:hyper ~m (fun k f -> col_iter basis.(k) f)
        | Some mk ->
            Lu.factor ~symbolic:hyper ~bands:(mk ()) ~m (fun k f ->
                col_iter basis.(k) f)
      in
      let lu = ref (factor_basis ()) in
      let etas = ref [] (* newest first *) in
      let n_etas = ref 0 in
      (* Forrest–Tomlin state: [ft] wraps the current factorization with
         updatable U storage.  Rebuilt (cheaply — the workspace is
         reused) at every refactorization; [None] only before the first
         one.  The eta file stays empty in FT mode, so every
         [apply_etas_to_w] and eta-transpose loop below is a no-op. *)
      let ftw = Lu.Ft.make_wsp (if ftmode then m else 0) in
      let ft : Lu.Ft.u option ref = ref None in
      let c_ft_updates = ref 0 in
      let fill_max = ref 0.0 in
      let ft_u () =
        match !ft with Some u -> u | None -> assert false
      in
      let scratch = Array.make m 0.0 in
      let bwork = Array.make m 0.0 in
      (* --- hypersparse kernel state ------------------------------------
         [w] and [rho] (declared below) carry a support list alongside the
         dense array: [w_n = -1] means the whole array is valid (a dense
         kernel wrote it), [w_n >= 0] means entries outside
         [w_ind.(0 .. w_n-1)] are exactly zero.  The arrays are kept
         all-zero outside the support between uses, so clearing costs
         O(support).  [sb] is the shared sparse right-hand-side scratch
         (kept all-zero between uses), with stamped membership so builds
         that hit a row twice record it once. *)
      let sw = Lu.make_swork m in
      let w_ind = Array.make m 0 in
      let w_n = ref 0 in
      let w_in = Array.make m (-1) in
      let w_epoch = ref 0 in
      let rho_ind = Array.make m 0 in
      let rho_n = ref 0 in
      let sb = Array.make m 0.0 in
      let sb_ind = Array.make m 0 in
      let sb_in = Array.make m (-1) in
      let sb_epoch = ref 0 in
      let c_ftran_sp = ref 0
      and c_ftran_dn = ref 0
      and c_btran_sp = ref 0
      and c_btran_dn = ref 0
      and c_devex_resets = ref 0
      and c_refreshes = ref 0 in
      (* Adaptive dense/sparse switching: the reachability probe costs
         real work even when it aborts at the cutoff, so after [af_trip]
         consecutive dense fallbacks a kernel goes straight to the dense
         path for the next [af_hold] calls before probing sparsity
         again.  Both paths produce bitwise-identical vectors, so the
         policy only ever moves time. *)
      let af_trip = 4 and af_hold = 64 in
      let ft_fail = ref 0 and ft_skip = ref 0 in
      let bt_fail = ref 0 and bt_skip = ref 0 in
      let recompute_x_basic () =
        Array.blit rhs_s 0 bwork 0 m;
        for j = 0 to ntot () - 1 do
          if where.(j) < 0 then begin
            let v = nbval j in
            if v <> 0.0 then
              col_iter j (fun i a -> bwork.(i) <- bwork.(i) -. (a *. v))
          end
        done;
        match !ft with
        | Some u -> Lu.Ft.ftran_d u ~keep_spike:false ~b:bwork ~x:x_basic ~scratch
        | None -> Lu.solve !lu ~b:bwork ~x:x_basic ~scratch
      in
      let rec refactorize depth =
        if depth > 4 then failwith "Revised: unable to repair singular basis";
        let t0 = clock () in
        let f = factor_basis () in
        t_factor := !t_factor +. clock () -. t0;
        incr n_factor;
        lu_nnz_total := !lu_nnz_total + Lu.nnz f;
        etas := [];
        n_etas := 0;
        (match !ft with
        | Some u ->
            if Lu.Ft.fill_hwm u > !fill_max then fill_max := Lu.Ft.fill_hwm u;
            ft := None
        | None -> ());
        match f.Lu.replaced with
        | [] ->
            lu := f;
            if ftmode then ft := Some (Lu.Ft.of_factor ftw f);
            recompute_x_basic ()
        | reps ->
            List.iter
              (fun (kpos, row) ->
                let old = basis.(kpos) in
                where.(old) <- -1;
                nb_at.(old) <-
                  (if Float.is_finite lo.(old) then 'l'
                   else if Float.is_finite hi.(old) then 'u'
                   else 'f');
                let slack = nv + row in
                if where.(slack) >= 0 then
                  failwith "Revised: basis repair failed (slack already basic)";
                basis.(kpos) <- slack;
                where.(slack) <- kpos)
              reps;
            refactorize (depth + 1)
      in
      (* Refactorization trigger, checked at every loop top: fill ratio
         (plus the update-count backstop) in FT mode, eta-file length on
         the legacy path. *)
      let need_refactor () =
        if not ftmode then !n_etas >= eta_max
        else
          match !ft with
          | None -> true
          | Some u ->
              Lu.Ft.nupdates u >= ft_cap || Lu.Ft.fill_ratio u > refac_lim
      in
      refactorize 0;
      recompute_x_basic ();
      (* The simplex work vectors, with support state for the sparse
         kernels (see above). *)
      let w = Array.make m 0.0 in
      let rho = Array.make m 0.0 in
      (* Apply the eta file (oldest first) to [w] in place.  On the
         sparse path new support members appear only at eta rows/indices;
         membership stamps keep the support list duplicate-free. *)
      let apply_etas_to_w () =
        if !w_n < 0 then
          List.iter
            (fun e ->
              let t = w.(e.er) in
              if t <> 0.0 then begin
                w.(e.er) <- e.edia *. t;
                for k = 0 to Array.length e.eidx - 1 do
                  w.(e.eidx.(k)) <- w.(e.eidx.(k)) +. (e.evals.(k) *. t)
                done
              end)
            (List.rev !etas)
        else if !etas <> [] then begin
          incr w_epoch;
          let ep = !w_epoch in
          for t2 = 0 to !w_n - 1 do
            w_in.(w_ind.(t2)) <- ep
          done;
          List.iter
            (fun e ->
              let t = w.(e.er) in
              if t <> 0.0 then begin
                w.(e.er) <- e.edia *. t;
                for k = 0 to Array.length e.eidx - 1 do
                  let i = e.eidx.(k) in
                  let add = e.evals.(k) *. t in
                  if w_in.(i) = ep then w.(i) <- w.(i) +. add
                  else if add <> 0.0 then begin
                    w_in.(i) <- ep;
                    w_ind.(!w_n) <- i;
                    incr w_n;
                    w.(i) <- add
                  end
                done
              end)
            (List.rev !etas)
        end
      in
      (* Solve B w = sb (support [sb_ind.(0 .. nb-1)]) and apply the eta
         file; [sb] is left for the caller to clear.  Keeps [w]'s support
         state and the kernel counters. *)
      let solve_into_w ?(keep_spike = false) nb =
        (match !w_n with
        | -1 -> Array.fill w 0 m 0.0
        | n ->
            for t2 = 0 to n - 1 do
              w.(w_ind.(t2)) <- 0.0
            done);
        let skipping = !ft_skip > 0 in
        let r =
          if skipping then begin
            decr ft_skip;
            Array.fill bwork 0 m 0.0;
            for s2 = 0 to nb - 1 do
              let i = sb_ind.(s2) in
              bwork.(i) <- sb.(i)
            done;
            (match !ft with
            | Some u -> Lu.Ft.ftran_d u ~keep_spike ~b:bwork ~x:w ~scratch
            | None -> Lu.solve !lu ~b:bwork ~x:w ~scratch);
            -1
          end
          else
            match !ft with
            | Some u ->
                Lu.Ft.ftran_sp u ~keep_spike ~nb ~bidx:sb_ind ~b:sb ~x:w
                  ~xind:w_ind
            | None -> Lu.solve_sp !lu sw ~nb ~bidx:sb_ind ~b:sb ~x:w ~xind:w_ind
        in
        if r < 0 then begin
          w_n := -1;
          incr c_ftran_dn;
          if not skipping then begin
            incr ft_fail;
            if !ft_fail >= af_trip then begin
              ft_fail := 0;
              ft_skip := af_hold
            end
          end
        end
        else begin
          w_n := r;
          incr c_ftran_sp;
          ft_fail := 0
        end;
        apply_etas_to_w ();
        (* The ratio test and eta extraction scan the support in
           ascending row order so magnitude ties resolve exactly as the
           dense 0..m-1 loops do. *)
        if !w_n >= 0 then Lu.sort_prefix w_ind !w_n
      in
      let ftran ?(keep_spike = false) j =
        let t0 = clock () in
        if not hyper then begin
          Array.fill bwork 0 m 0.0;
          col_iter j (fun i v -> bwork.(i) <- bwork.(i) +. v);
          (match !ft with
          | Some u -> Lu.Ft.ftran_d u ~keep_spike ~b:bwork ~x:w ~scratch
          | None -> Lu.solve !lu ~b:bwork ~x:w ~scratch);
          w_n := -1;
          incr c_ftran_dn;
          apply_etas_to_w ()
        end
        else begin
          incr sb_epoch;
          let ep = !sb_epoch in
          let nb = ref 0 in
          col_iter j (fun i v ->
              if sb_in.(i) <> ep then begin
                sb_in.(i) <- ep;
                sb_ind.(!nb) <- i;
                incr nb
              end;
              sb.(i) <- sb.(i) +. v);
          let nb0 = !nb in
          solve_into_w ~keep_spike nb0;
          for s2 = 0 to nb0 - 1 do
            sb.(sb_ind.(s2)) <- 0.0
          done
        end;
        t_ftran := !t_ftran +. clock () -. t0
      in
      let btran (cb : float array) (y : float array) =
        let t0 = clock () in
        (* Apply eta transposes newest-first, then the base factorization. *)
        List.iter
          (fun e ->
            let s = ref (e.edia *. cb.(e.er)) in
            for k = 0 to Array.length e.eidx - 1 do
              s := !s +. (e.evals.(k) *. cb.(e.eidx.(k)))
            done;
            cb.(e.er) <- !s)
          !etas;
        (match !ft with
        | Some u -> Lu.Ft.btran_d u ~c:cb ~y ~scratch
        | None -> Lu.solve_t !lu ~c:cb ~y ~scratch);
        incr c_btran_dn;
        t_btran := !t_btran +. clock () -. t0
      in
      let cb = Array.make m 0.0 in
      (* Unit-RHS BTRAN: rho = row r of B^-1, the pivot-row solve shared
         by the dual simplex and devex pricing.  Sparse path applies the
         eta transposes to a stamped sparse vector (positions outside the
         support read as the exact zeros the dense pass holds there),
         then runs the reachability-based transpose solve. *)
      let btran_unit r (rho : float array) =
        if not hyper then begin
          Array.fill cb 0 m 0.0;
          cb.(r) <- 1.0;
          btran cb rho;
          rho_n := -1
        end
        else begin
          let t0 = clock () in
          incr sb_epoch;
          let ep = !sb_epoch in
          let nc = ref 1 in
          sb_ind.(0) <- r;
          sb_in.(r) <- ep;
          sb.(r) <- 1.0;
          List.iter
            (fun e ->
              let s = ref (e.edia *. sb.(e.er)) in
              for k = 0 to Array.length e.eidx - 1 do
                s := !s +. (e.evals.(k) *. sb.(e.eidx.(k)))
              done;
              let s = !s in
              if sb_in.(e.er) = ep then sb.(e.er) <- s
              else if s <> 0.0 then begin
                sb_in.(e.er) <- ep;
                sb_ind.(!nc) <- e.er;
                incr nc;
                sb.(e.er) <- s
              end)
            !etas;
          (match !rho_n with
          | -1 -> Array.fill rho 0 m 0.0
          | n ->
              for t2 = 0 to n - 1 do
                rho.(rho_ind.(t2)) <- 0.0
              done);
          let skipping = !bt_skip > 0 in
          let res =
            if skipping then begin
              decr bt_skip;
              Array.fill cb 0 m 0.0;
              for s2 = 0 to !nc - 1 do
                let i = sb_ind.(s2) in
                cb.(i) <- sb.(i)
              done;
              (match !ft with
              | Some u -> Lu.Ft.btran_d u ~c:cb ~y:rho ~scratch
              | None -> Lu.solve_t !lu ~c:cb ~y:rho ~scratch);
              -1
            end
            else
              match !ft with
              | Some u ->
                  Lu.Ft.btran_sp u ~nc:!nc ~cidx:sb_ind ~c:sb ~y:rho
                    ~yind:rho_ind
              | None ->
                  Lu.solve_t_sp !lu sw ~nc:!nc ~cidx:sb_ind ~c:sb ~y:rho
                    ~yind:rho_ind
          in
          for s2 = 0 to !nc - 1 do
            sb.(sb_ind.(s2)) <- 0.0
          done;
          if res < 0 then begin
            rho_n := -1;
            incr c_btran_dn;
            if not skipping then begin
              incr bt_fail;
              if !bt_fail >= af_trip then begin
                bt_fail := 0;
                bt_skip := af_hold
              end
            end
          end
          else begin
            rho_n := res;
            incr c_btran_sp;
            bt_fail := 0
          end;
          t_btran := !t_btran +. clock () -. t0
        end
      in
      let push_eta (w : float array) r =
        let wr = w.(r) in
        if !w_n < 0 then begin
          let cnt = ref 0 in
          for k = 0 to m - 1 do
            if k <> r && Float.abs w.(k) > 1e-12 then incr cnt
          done;
          let eidx = Array.make !cnt 0 and evals = Array.make !cnt 0.0 in
          let at = ref 0 in
          for k = 0 to m - 1 do
            if k <> r && Float.abs w.(k) > 1e-12 then begin
              eidx.(!at) <- k;
              evals.(!at) <- -.w.(k) /. wr;
              incr at
            end
          done;
          etas := { er = r; eidx; evals; edia = 1.0 /. wr } :: !etas;
          incr n_etas
        end
        else begin
          (* Same extraction restricted to the (sorted) support: entries
             off the support are zero and fail the magnitude filter in
             the dense scan too. *)
          let cnt = ref 0 in
          for t2 = 0 to !w_n - 1 do
            let k = w_ind.(t2) in
            if k <> r && Float.abs w.(k) > 1e-12 then incr cnt
          done;
          let eidx = Array.make !cnt 0 and evals = Array.make !cnt 0.0 in
          let at = ref 0 in
          for t2 = 0 to !w_n - 1 do
            let k = w_ind.(t2) in
            if k <> r && Float.abs w.(k) > 1e-12 then begin
              eidx.(!at) <- k;
              evals.(!at) <- -.w.(k) /. wr;
              incr at
            end
          done;
          etas := { er = r; eidx; evals; edia = 1.0 /. wr } :: !etas;
          incr n_etas
        end
      in
      (* --- simplex iterations ------------------------------------------ *)
      let cost = Array.make cap 0.0 in
      let y = Array.make m 0.0 in
      let iters = ref 0 in
      let dual_pivots = ref 0 in
      let bound_flips = ref 0 in
      let bland = ref false in
      let degen = ref 0 in
      let price_cursor = ref 0 in
      (* Row-major view of A, shared by dual-simplex pricing and the
         devex pivot-row gather; reused across solves via [?analysis]
         when the caller's matrix is unchanged. *)
      let arows_l =
        match analysis with
        | Some a -> lazy a.arows
        | None -> lazy (Sparse.Csc.rows p.a)
      in
      (* Touched-column workspace for pivot-row pricing (alpha = rho^T A
         gathered over supp(rho)); stamped by iteration number, so one
         gather per iteration needs no reset. *)
      let alpha_acc = Array.make cap 0.0 in
      let stamp = Array.make cap (-1) in
      let touched = Array.make cap 0 in
      (* Dual ratio-test candidates and pending bound flips, kept in
         preallocated parallel arrays: the test runs every dual pivot,
         and list-of-tuple sorting was a measurable allocation cost. *)
      let dc_ratio = Array.make cap 0.0 in
      let dc_alpha = Array.make cap 0.0 in
      let dc_j = Array.make cap 0 in
      let df_j = Array.make cap 0 in
      let df_delta = Array.make cap 0.0 in
      (* In-place quicksort of the candidate triples by (ratio asc,
         pivot magnitude desc, column asc) — the same total order the
         list sort used, so the sorted sequence is identical.  All keys
         are non-negative finite floats and columns are distinct, so
         plain [<] agrees with [Float.compare]. *)
      let dc_lt (r1 : float) (a1 : float) (j1 : int) r2 a2 j2 =
        r1 < r2 || (r1 = r2 && (a1 > a2 || (a1 = a2 && j1 < j2)))
      in
      let dc_swap i j =
        let tr = dc_ratio.(i) in
        dc_ratio.(i) <- dc_ratio.(j);
        dc_ratio.(j) <- tr;
        let ta = dc_alpha.(i) in
        dc_alpha.(i) <- dc_alpha.(j);
        dc_alpha.(j) <- ta;
        let tj = dc_j.(i) in
        dc_j.(i) <- dc_j.(j);
        dc_j.(j) <- tj
      in
      let rec dc_sort lo_ hi_ =
        if hi_ - lo_ >= 12 then begin
          let mid = (lo_ + hi_) / 2 in
          let pr = dc_ratio.(mid) and pa = dc_alpha.(mid) and pj = dc_j.(mid) in
          let i = ref lo_ and j = ref hi_ in
          while !i <= !j do
            while dc_lt dc_ratio.(!i) dc_alpha.(!i) dc_j.(!i) pr pa pj do
              incr i
            done;
            while dc_lt pr pa pj dc_ratio.(!j) dc_alpha.(!j) dc_j.(!j) do
              decr j
            done;
            if !i <= !j then begin
              dc_swap !i !j;
              incr i;
              decr j
            end
          done;
          dc_sort lo_ !j;
          dc_sort !i hi_
        end
        else
          for k = lo_ + 1 to hi_ do
            let r = dc_ratio.(k) and a = dc_alpha.(k) and j = dc_j.(k) in
            let t = ref k in
            while
              !t > lo_
              && dc_lt r a j dc_ratio.(!t - 1) dc_alpha.(!t - 1) dc_j.(!t - 1)
            do
              dc_ratio.(!t) <- dc_ratio.(!t - 1);
              dc_alpha.(!t) <- dc_alpha.(!t - 1);
              dc_j.(!t) <- dc_j.(!t - 1);
              decr t
            done;
            dc_ratio.(!t) <- r;
            dc_alpha.(!t) <- a;
            dc_j.(!t) <- j
          done
      in
      (* Devex reference-framework pricing state: [dx] incrementally
         maintained reduced costs, [dw] devex weights, [cand] the
         current candidate list. *)
      let dx = Array.make (if devex then cap else 0) 0.0 in
      let dw = Array.make (if devex then cap else 0) 1.0 in
      let cand = Array.make (if devex then cap else 0) 0 in
      let ncand = ref 0 in
      (* Expensive per-pivot invariant check, enabled via LP_PARANOID. *)
      let paranoid = Sys.getenv_opt "LP_PARANOID" <> None in
      let check_invariants () =
        if paranoid then begin
          (* Recompute the basic point from a local fresh factorization
             — the live [lu]/[etas]/[ft] state is never touched, so the
             check composes with the Forrest–Tomlin workspace (whose
             single [wsp] cannot back two factorizations at once). *)
          let saved = Array.copy x_basic in
          let f = factor_basis () in
          Array.blit rhs_s 0 bwork 0 m;
          for j = 0 to ntot () - 1 do
            if where.(j) < 0 then begin
              let v = nbval j in
              if v <> 0.0 then
                col_iter j (fun i a -> bwork.(i) <- bwork.(i) -. (a *. v))
            end
          done;
          Lu.solve f ~b:bwork ~x:x_basic ~scratch;
          let drift = ref 0.0 in
          for k = 0 to m - 1 do
            let d = Float.abs (x_basic.(k) -. saved.(k)) in
            if d > !drift then drift := d
          done;
          if !drift > 1e-6 then begin
            (* residual of the incrementally maintained point: b - A x *)
            let res = Array.copy rhs_s in
            let sub j xv =
              if xv <> 0.0 then
                col_iter j (fun i a -> res.(i) <- res.(i) -. (a *. xv))
            in
            for j = 0 to ntot () - 1 do
              if where.(j) < 0 then sub j (nbval j)
            done;
            for k = 0 to m - 1 do
              sub basis.(k) saved.(k)
            done;
            let rmax =
              Array.fold_left (fun a v -> max a (Float.abs v)) 0.0 res
            in
            Printf.eprintf
              "LP_PARANOID: iter %d drift %g incremental-residual %g \
               replaced %d\n\
               %!"
              !iters !drift rmax
              (List.length f.Lu.replaced);
            (match Sys.getenv_opt "LP_DUMP_BASIS" with
            | Some path when not (Sys.file_exists path) ->
                Putil.Fileio.with_out path (fun oc ->
                    Printf.fprintf oc "%d\n" m;
                    for k = 0 to m - 1 do
                      col_iter basis.(k) (fun i v ->
                          Printf.fprintf oc "%d %d %.17g\n" i k v)
                    done)
            | _ -> ())
          end;
          Array.blit saved 0 x_basic 0 m
        end
      in
      (* Record the just-executed pivot at position [r] in the working
         factorization: a Forrest–Tomlin update (consuming the spike
         kept by the entering column's FTRAN) or a product-form eta.  An
         FT refusal — zero or uncertified border diagonal — leaves the
         updated state unusable, and the basis arrays already reflect
         the pivot, so refactorizing from the basis is the exact
         recovery. *)
      let pivot_update (w : float array) r =
        if not ftmode then push_eta w r
        else if not (Lu.Ft.update (ft_u ()) ~pos:r ~wr:w.(r)) then
          refactorize 0
        else incr c_ft_updates
      in
      (* Ratio test plus bound-flip/pivot for entering column [je] moving
         in direction [s].  Shared by classic and devex pricing.
         [on_pivot ~r] runs after the leaving row [r] is chosen but
         before any basis or eta mutation, so devex can price the pivot
         row against the pre-pivot basis. *)
      let enter_column ?(on_pivot = fun ~r:_ -> ()) je s =
        let res = ref `Ok in
        ftran ~keep_spike:true je;
        let tratio0 = clock () in
        (* Two-pass Harris ratio test, scanned over [w]'s support (the
           dense pass skips zero entries through the same magnitude
           filter). *)
        let sup_n = if !w_n < 0 then m else !w_n in
        let theta_max = ref inf in
        let t_flip =
          if Float.is_finite lo.(je) && Float.is_finite hi.(je) then
            hi.(je) -. lo.(je)
          else inf
        in
        for ti = 0 to sup_n - 1 do
          let k = if !w_n < 0 then ti else w_ind.(ti) in
          let delta = s *. w.(k) in
          if Float.abs delta > 1e-9 then begin
            let b = basis.(k) in
            if delta > 0.0 && Float.is_finite lo.(b) then begin
              let sl0 = x_basic.(k) -. lo.(b) in
              let slack = if sl0 > 0.0 then sl0 else 0.0 in
              let r = (slack +. feas_tol) /. delta in
              if r < !theta_max then theta_max := r
            end
            else if delta < 0.0 && Float.is_finite hi.(b) then begin
              let sl0 = hi.(b) -. x_basic.(k) in
              let slack = if sl0 > 0.0 then sl0 else 0.0 in
              let r = (slack +. feas_tol) /. -.delta in
              if r < !theta_max then theta_max := r
            end
          end
        done;
        if !theta_max = inf && t_flip = inf then res := `Unbounded
        else begin
          (* pass 2: among blocking candidates within theta_max pick the
             largest pivot magnitude *)
          let leave = ref (-1) and lmag = ref 0.0 and lt = ref inf in
          for ti = 0 to sup_n - 1 do
            let k = if !w_n < 0 then ti else w_ind.(ti) in
            let delta = s *. w.(k) in
            if Float.abs delta > 1e-9 then begin
              let b = basis.(k) in
              (* slack < 0 encodes "not blocking" — real slacks are
                 clamped non-negative, so no option allocation needed *)
              let slack =
                if delta > 0.0 && Float.is_finite lo.(b) then begin
                  let sl0 = x_basic.(k) -. lo.(b) in
                  if sl0 > 0.0 then sl0 else 0.0
                end
                else if delta < 0.0 && Float.is_finite hi.(b) then begin
                  let sl0 = hi.(b) -. x_basic.(k) in
                  if sl0 > 0.0 then sl0 else 0.0
                end
                else -1.0
              in
              if slack >= 0.0 then begin
                let r = slack /. Float.abs delta in
                if r <= !theta_max && Float.abs delta > !lmag then begin
                  leave := k;
                  lmag := Float.abs delta;
                  lt := r
                end
              end
            end
          done;
          let t_leave = if !leave >= 0 then !lt else inf in
          (if t_flip < t_leave then begin
             (* bound flip: no basis change *)
             for ti = 0 to sup_n - 1 do
               let k = if !w_n < 0 then ti else w_ind.(ti) in
               x_basic.(k) <- x_basic.(k) -. (s *. t_flip *. w.(k))
             done;
             nb_at.(je) <- (if nb_at.(je) = 'l' then 'u' else 'l');
             if paranoid then
               Printf.eprintf "LP_PARANOID: iter %d flip j=%d t=%g\n%!" !iters
                 je t_flip;
             check_invariants ();
             if t_flip <= 1e-10 then incr degen else degen := 0
           end
           else if !leave < 0 then res := `Unbounded
           else begin
             let r = !leave in
             let t = t_leave in
             on_pivot ~r;
             for ti = 0 to sup_n - 1 do
               let k = if !w_n < 0 then ti else w_ind.(ti) in
               x_basic.(k) <- x_basic.(k) -. (s *. t *. w.(k))
             done;
             let entering_val = nbval je +. (s *. t) in
             let leaving = basis.(r) in
             where.(leaving) <- -1;
             nb_at.(leaving) <- (if s *. w.(r) > 0.0 then 'l' else 'u');
             basis.(r) <- je;
             where.(je) <- r;
             x_basic.(r) <- entering_val;
             pivot_update w r;
             check_invariants ();
             if t <= 1e-10 then incr degen else degen := 0
           end);
          if !degen > 200 + m then bland := true
          else if !degen = 0 then bland := false;
          t_ratio := !t_ratio +. clock () -. tratio0
        end;
        !res
      in
      let run_phase_classic () =
        let outcome = ref `Run in
        while !outcome = `Run do
          if !iters >= max_iter then outcome := `Iter_limit
          else begin
            incr iters;
            if need_refactor () then refactorize 0;
            for k = 0 to m - 1 do
              cb.(k) <- cost.(basis.(k))
            done;
            btran cb y;
            (* pricing *)
            let best_j = ref (-1)
            and best_mag = ref 0.0
            and best_dir = ref 1.0 in
            let consider j d dir =
              let mag = Float.abs d in
              if !bland then begin
                if !best_j < 0 then begin
                  best_j := j;
                  best_mag := mag;
                  best_dir := dir
                end
              end
              else if mag > !best_mag then begin
                best_j := j;
                best_mag := mag;
                best_dir := dir
              end
            in
            let tprice0 = clock () in
            let total = ntot () in
            (* Partial pricing: scan from a rotating cursor and stop once a
               window's worth of columns has been examined with at least
               one candidate in hand.  Optimality is still exact: the phase
               only ends after a full wrap finds no candidate.  Bland mode
               scans deterministically from column 0. *)
            let window = max 512 (total / 8) in
            if !bland then begin
              let j = ref 0 in
              while !j < total && !best_j < 0 do
                let jj = !j in
                if where.(jj) < 0 && lo.(jj) < hi.(jj) then begin
                  let d = cost.(jj) -. col_dot jj y in
                  let tol = opt_tol *. (1.0 +. Float.abs cost.(jj)) in
                  match nb_at.(jj) with
                  | 'l' -> if d < -.tol then consider jj d 1.0
                  | 'u' -> if d > tol then consider jj d (-1.0)
                  | _ ->
                      if d < -.tol then consider jj d 1.0
                      else if d > tol then consider jj d (-1.0)
                end;
                incr j
              done
            end
            else begin
              let scanned = ref 0 in
              while
                !scanned < total && not (!best_j >= 0 && !scanned >= window)
              do
                let jj = (!price_cursor + !scanned) mod total in
                if where.(jj) < 0 && lo.(jj) < hi.(jj) then begin
                  let d = cost.(jj) -. col_dot jj y in
                  let tol = opt_tol *. (1.0 +. Float.abs cost.(jj)) in
                  match nb_at.(jj) with
                  | 'l' -> if d < -.tol then consider jj d 1.0
                  | 'u' -> if d > tol then consider jj d (-1.0)
                  | _ ->
                      if d < -.tol then consider jj d 1.0
                      else if d > tol then consider jj d (-1.0)
                end;
                incr scanned
              done;
              if !best_j >= 0 then price_cursor := (!best_j + 1) mod total
            end;
            t_price := !t_price +. clock () -. tprice0;
            if !best_j < 0 then outcome := `Phase_done
            else begin
              match enter_column !best_j !best_dir with
              | `Unbounded -> outcome := `Unbounded
              | `Ok -> ()
            end
          end
        done;
        !outcome
      in
      (* --- devex candidate-list pricing --------------------------------
         Reduced costs [dx] are maintained incrementally (a pivot with
         dual step theta moves d_j by -theta * alpha_j, and alpha is
         gathered over the pivot row's support only), so iterations skip
         both the per-iteration BTRAN and the full matrix re-pricing.
         Entering picks maximize d_j^2 / dw_j over a candidate list;
         when the list runs dry it is refreshed from the maintained
         costs, and optimality is only ever declared after an exact
         recompute reproduces the classic full-scan test.  Degeneracy
         falls back to Bland's rule exactly as the classic loop does. *)
      let recompute_dx () =
        for k = 0 to m - 1 do
          cb.(k) <- cost.(basis.(k))
        done;
        btran cb y;
        let total = ntot () in
        for j = 0 to total - 1 do
          dx.(j) <- (if where.(j) >= 0 then 0.0 else cost.(j) -. col_dot j y)
        done
      in
      (* Rebuild the candidate list: the [cand_k] best eligible columns
         by devex score (score-desc, index-asc — a total order, so the
         kept set never depends on scan order).  A bounded min-heap
         keyed on the worst kept candidate selects the top [cand_k] in
         O(n log k) without allocating. *)
      let cand_k = max 16 (min 512 ((nv + m) / 8)) in
      let hs = Array.make (if devex then cand_k else 0) 0.0 in
      let hj = Array.make (if devex then cand_k else 0) 0 in
      let refresh_candidates () =
        incr c_refreshes;
        let total = ntot () in
        let hn = ref 0 in
        (* 'worse' = lower score, then higher column index *)
        let worse (s1 : float) (j1 : int) s2 j2 =
          s1 < s2 || (s1 = s2 && j1 > j2)
        in
        let hswap a b =
          let ts = hs.(a) in
          hs.(a) <- hs.(b);
          hs.(b) <- ts;
          let tj = hj.(a) in
          hj.(a) <- hj.(b);
          hj.(b) <- tj
        in
        let sift_up k0 =
          let k = ref k0 in
          while
            !k > 0
            && worse hs.(!k) hj.(!k) hs.((!k - 1) / 2) hj.((!k - 1) / 2)
          do
            hswap !k ((!k - 1) / 2);
            k := (!k - 1) / 2
          done
        in
        let sift_down () =
          let i = ref 0 in
          let moving = ref true in
          while !moving do
            let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
            let w = ref !i in
            if l < !hn && worse hs.(l) hj.(l) hs.(!w) hj.(!w) then w := l;
            if r < !hn && worse hs.(r) hj.(r) hs.(!w) hj.(!w) then w := r;
            if !w = !i then moving := false
            else begin
              hswap !i !w;
              i := !w
            end
          done
        in
        for j = 0 to total - 1 do
          if where.(j) < 0 && lo.(j) < hi.(j) then begin
            let d = dx.(j) in
            let tol = opt_tol *. (1.0 +. Float.abs cost.(j)) in
            let ok =
              match nb_at.(j) with
              | 'l' -> d < -.tol
              | 'u' -> d > tol
              | _ -> d < -.tol || d > tol
            in
            if ok then begin
              let sc = d *. d /. dw.(j) in
              if !hn < cand_k then begin
                hs.(!hn) <- sc;
                hj.(!hn) <- j;
                sift_up !hn;
                incr hn
              end
              else if worse hs.(0) hj.(0) sc j then begin
                hs.(0) <- sc;
                hj.(0) <- j;
                sift_down ()
              end
            end
          end
        done;
        ncand := !hn;
        Array.blit hj 0 cand 0 !hn
      in
      (* Best still-eligible candidate from the list, by current scores;
         returns (-1, _) when the list has gone stale or empty. *)
      let pick_candidate () =
        let best_j = ref (-1) and best_sc = ref 0.0 and best_dir = ref 1.0 in
        for c = 0 to !ncand - 1 do
          let j = cand.(c) in
          if where.(j) < 0 && lo.(j) < hi.(j) then begin
            let d = dx.(j) in
            let tol = opt_tol *. (1.0 +. Float.abs cost.(j)) in
            let dir =
              match nb_at.(j) with
              | 'l' -> if d < -.tol then 1.0 else 0.0
              | 'u' -> if d > tol then -1.0 else 0.0
              | _ -> if d < -.tol then 1.0 else if d > tol then -1.0 else 0.0
            in
            if dir <> 0.0 then begin
              let sc = d *. d /. dw.(j) in
              if
                sc > !best_sc
                || (sc = !best_sc && !best_j >= 0 && j < !best_j)
              then begin
                best_j := j;
                best_sc := sc;
                best_dir := dir
              end
            end
          end
        done;
        (!best_j, !best_dir)
      in
      let devex_reset () =
        Array.fill dw 0 (Array.length dw) 1.0;
        incr c_devex_resets
      in
      (* Pivot hook: update [dx] and the devex weights from the pivot
         row.  Runs pre-pivot (je still nonbasic, basis.(r) still
         basic); alpha_je equals w.(r). *)
      let d_stale = ref true in
      let devex_update je ~r =
        let wr = w.(r) in
        if Float.abs wr < 1e-9 then d_stale := true
        else begin
          let theta = dx.(je) /. wr in
          let gq = if dw.(je) > 1.0 then dw.(je) else 1.0 in
          let wr2 = wr *. wr in
          btran_unit r rho;
          let arows = Lazy.force arows_l in
          let ntouched = ref 0 in
          let touch j =
            if stamp.(j) <> !iters then begin
              stamp.(j) <- !iters;
              alpha_acc.(j) <- 0.0;
              touched.(!ntouched) <- j;
              incr ntouched
            end
          in
          let rsup_n = if !rho_n < 0 then m else !rho_n in
          for rt = 0 to rsup_n - 1 do
            let i = if !rho_n < 0 then rt else rho_ind.(rt) in
            let ri = rho.(i) in
            if Float.abs ri > 1e-12 then begin
              let js = nv + i in
              touch js;
              alpha_acc.(js) <- alpha_acc.(js) +. ri;
              for k = arows.Sparse.Csc.rowptr.(i)
                  to arows.Sparse.Csc.rowptr.(i + 1) - 1
              do
                let j = arows.Sparse.Csc.colind.(k) in
                touch j;
                alpha_acc.(j) <-
                  alpha_acc.(j) +. (ri *. arows.Sparse.Csc.rvalues.(k))
              done
            end
          done;
          for tk = 0 to !ntouched - 1 do
            let j = touched.(tk) in
            if where.(j) < 0 then begin
              let a = alpha_acc.(j) in
              dx.(j) <- dx.(j) -. (theta *. a);
              let wj = a *. a /. wr2 *. gq in
              if wj > dw.(j) then dw.(j) <- wj
            end
          done;
          (* Artificial columns are unit columns, invisible to the CSR
             gather. *)
          for k2 = 0 to !nart - 1 do
            let aj = nv + m + k2 in
            if where.(aj) < 0 then begin
              let a = art_sig.(k2) *. rho.(art_row.(k2)) in
              if a <> 0.0 then begin
                dx.(aj) <- dx.(aj) -. (theta *. a);
                let wj = a *. a /. wr2 *. gq in
                if wj > dw.(aj) then dw.(aj) <- wj
              end
            end
          done;
          dx.(je) <- 0.0;
          let b = basis.(r) in
          dx.(b) <- -.theta;
          dw.(b) <- (let v = gq /. wr2 in
                     if v > 1.0 then v else 1.0);
          if gq > 1e8 || dw.(b) > 1e8 then devex_reset ()
        end
      in
      let run_phase_devex () =
        let outcome = ref `Run in
        d_stale := true;
        devex_reset ();
        (* the phase-entry framework reset is bookkeeping, not a
           degeneracy event *)
        decr c_devex_resets;
        while !outcome = `Run do
          if !iters >= max_iter then outcome := `Iter_limit
          else begin
            incr iters;
            (* Refactorization replaces the eta file but leaves the basis
               — and therefore the reduced costs — untouched, so the
               incrementally maintained [dx] stays valid.  Numerical
               drift is caught by the exact optimality certification. *)
            if need_refactor () then refactorize 0;
            if !bland then begin
              (* Bland's rule on exact reduced costs, as the classic
                 loop: lowest-index eligible column enters. *)
              recompute_dx ();
              let total = ntot () in
              let je = ref (-1) and s = ref 1.0 in
              let j = ref 0 in
              while !j < total && !je < 0 do
                let jj = !j in
                if where.(jj) < 0 && lo.(jj) < hi.(jj) then begin
                  let d = dx.(jj) in
                  let tol = opt_tol *. (1.0 +. Float.abs cost.(jj)) in
                  match nb_at.(jj) with
                  | 'l' ->
                      if d < -.tol then begin
                        je := jj;
                        s := 1.0
                      end
                  | 'u' ->
                      if d > tol then begin
                        je := jj;
                        s := -1.0
                      end
                  | _ ->
                      if d < -.tol then begin
                        je := jj;
                        s := 1.0
                      end
                      else if d > tol then begin
                        je := jj;
                        s := -1.0
                      end
                end;
                incr j
              done;
              if !je < 0 then outcome := `Phase_done
              else begin
                d_stale := true;
                match enter_column !je !s with
                | `Unbounded -> outcome := `Unbounded
                | `Ok -> ()
              end
            end
            else begin
              let tprice0 = clock () in
              if !d_stale then begin
                recompute_dx ();
                d_stale := false;
                refresh_candidates ()
              end;
              let je, s =
                let je, s = pick_candidate () in
                if je >= 0 then (je, s)
                else begin
                  refresh_candidates ();
                  let je, s = pick_candidate () in
                  if je >= 0 then (je, s)
                  else begin
                    (* exact certification: only the classic full-scan
                       test on freshly computed reduced costs may end
                       the phase *)
                    recompute_dx ();
                    d_stale := false;
                    refresh_candidates ();
                    pick_candidate ()
                  end
                end
              in
              t_price := !t_price +. clock () -. tprice0;
              if je < 0 then outcome := `Phase_done
              else begin
                match enter_column ~on_pivot:(devex_update je) je s with
                | `Unbounded -> outcome := `Unbounded
                | `Ok -> ()
              end
            end
          end
        done;
        !outcome
      in
      (* Devex reference weights are calibrated to the phase objective;
         the phase-1 artificial objective is so degenerate that devex
         mostly churns there, so phase 1 always prices classically. *)
      let run_phase ?(p1 = false) () =
        if devex && not p1 then run_phase_devex () else run_phase_classic ()
      in
      (* --- dual simplex (warm re-solves) -------------------------------
         Invariant: nonbasic reduced costs are dual-feasible (repaired on
         entry); basic variables may violate their bounds.  Each iteration
         picks the most-violated basic variable to leave, prices the row
         with a dual ratio test, flips boxed columns whose full flip is
         cheaper than the remaining violation (bound-flip ratio test) and
         pivots the blocking column in. *)
      let run_dual () =
        let outcome = ref `Run in
        let bad_pivots = ref 0 in
        let dual_cap = m + 2000 in
        (* Row-major view for pricing: alpha = rho^T A is gathered over
           supp(rho) only, so each iteration costs the fill of the pivot
           row rather than a full-matrix scan.  [stamp]/[touched] give
           O(touched) reset between iterations. *)
        let arows = Lazy.force arows_l in
        (* Reduced costs are maintained incrementally: a pivot with dual
           step theta only moves d_j by -theta * alpha_j, and alpha is
           zero outside the gathered columns.  Entries for basic columns
           are dead (the candidate scan skips them); the array is rebuilt
           from the duals at every refactorization to bound drift. *)
        let d = Array.make (nv + m) 0.0 in
        let recompute_d () =
          for k = 0 to m - 1 do
            cb.(k) <- cost.(basis.(k))
          done;
          btran cb y;
          for j = 0 to nv + m - 1 do
            d.(j) <- (if where.(j) >= 0 then 0.0 else cost.(j) -. col_dot j y)
          done
        in
        recompute_d ();
        while !outcome = `Run do
          if !iters >= max_iter then outcome := `Iter_limit
          else if !dual_pivots > dual_cap then begin
            if stats_on then
              Printf.eprintf "LP_STATS: dual cap hit (%d pivots, m=%d)\n%!"
                !dual_pivots m;
            outcome := `Numerical
          end
          else begin
            incr iters;
            incr dual_pivots;
            if need_refactor () then begin
              refactorize 0;
              recompute_d ()
            end;
            (* leaving row: largest primal bound violation *)
            let lrow = ref (-1) and viol = ref feas_tol and below = ref true in
            for k = 0 to m - 1 do
              let b = basis.(k) in
              if lo.(b) -. x_basic.(k) > !viol then begin
                lrow := k;
                viol := lo.(b) -. x_basic.(k);
                below := true
              end;
              if x_basic.(k) -. hi.(b) > !viol then begin
                lrow := k;
                viol := x_basic.(k) -. hi.(b);
                below := false
              end
            done;
            if !lrow < 0 then outcome := `Optimal
            else begin
              let r = !lrow in
              (* sigma: direction the leaving basic must move *)
              let sigma = if !below then 1.0 else -1.0 in
              (* rho = row r of B^-1 *)
              btran_unit r rho;
              let tprice0 = clock () in
              (* Entering candidates: nonbasic j whose move in its feasible
                 direction drives x_B(r) toward the violated bound, ranked
                 by dual ratio |d_j| / |alpha_j|.  Gather alpha row-wise:
                 only columns hit by supp(rho) can have nonzero alpha. *)
              let ntouched = ref 0 in
              let touch j =
                if stamp.(j) <> !iters then begin
                  stamp.(j) <- !iters;
                  alpha_acc.(j) <- 0.0;
                  touched.(!ntouched) <- j;
                  incr ntouched
                end
              in
              let rsup_n = if !rho_n < 0 then m else !rho_n in
              for rt = 0 to rsup_n - 1 do
                let i = if !rho_n < 0 then rt else rho_ind.(rt) in
                let ri = rho.(i) in
                if Float.abs ri > 1e-12 then begin
                  let js = nv + i in
                  touch js;
                  alpha_acc.(js) <- alpha_acc.(js) +. ri;
                  for k = arows.Sparse.Csc.rowptr.(i)
                      to arows.Sparse.Csc.rowptr.(i + 1) - 1
                  do
                    let j = arows.Sparse.Csc.colind.(k) in
                    touch j;
                    alpha_acc.(j) <-
                      alpha_acc.(j) +. (ri *. arows.Sparse.Csc.rvalues.(k))
                  done
                end
              done;
              let nc = ref 0 in
              for tk = 0 to !ntouched - 1 do
                let j = touched.(tk) in
                if where.(j) < 0 && lo.(j) < hi.(j) then begin
                  let alpha = alpha_acc.(j) in
                  if Float.abs alpha > 1e-9 then begin
                    let eligible =
                      match nb_at.(j) with
                      | 'l' -> sigma *. alpha < 0.0
                      | 'u' -> sigma *. alpha > 0.0
                      | _ -> true
                    in
                    if eligible then begin
                      dc_ratio.(!nc) <- Float.abs d.(j) /. Float.abs alpha;
                      dc_alpha.(!nc) <- Float.abs alpha;
                      dc_j.(!nc) <- j;
                      incr nc
                    end
                  end
                end
              done;
              t_price := !t_price +. clock () -. tprice0;
              if !nc = 0 then
                (* no column can relieve the violation: the bound system
                   is primal infeasible *)
                outcome := `Primal_infeasible
              else begin
                let nc = !nc in
                let tratio0 = clock () in
                (* smallest dual ratio first; larger pivot, then lower
                   column index, breaks ties — a total order, so the
                   pick does not depend on gather order *)
                dc_sort 0 (nc - 1);
                (* Bound-flip ratio test: a boxed candidate whose full
                   flip removes less than the remaining violation is
                   flipped outright (no pivot); the walk stops at the
                   first candidate that would overshoot (and never flips
                   the last candidate).  The flips only change nonbasic
                   values, so their combined effect on x_basic is applied
                   with a single solve (B^-1 sum_j delta_j a_j) after the
                   walk. *)
                let remaining = ref !viol in
                let nflip = ref 0 in
                let tpos = ref 0 in
                let walking = ref true in
                while !walking && !tpos < nc - 1 do
                  let j = dc_j.(!tpos) and a = dc_alpha.(!tpos) in
                  let range = hi.(j) -. lo.(j) in
                  if
                    Float.is_finite range
                    && nb_at.(j) <> 'f'
                    && (a *. range) < !remaining -. feas_tol
                  then begin
                    let delta = if nb_at.(j) = 'l' then range else -.range in
                    df_j.(!nflip) <- j;
                    df_delta.(!nflip) <- delta;
                    incr nflip;
                    nb_at.(j) <- (if nb_at.(j) = 'l' then 'u' else 'l');
                    incr bound_flips;
                    remaining := !remaining -. (a *. range);
                    incr tpos
                  end
                  else walking := false
                done;
                (* Harris-style second pass: the strict minimum ratio
                   often rides a tiny |alpha|, and t = viol / alpha then
                   throws the entering variable far past its opposite
                   bound — the violation migrates instead of shrinking.
                   Admit every candidate whose reduced cost would go
                   infeasible by at most dtol at the head's ratio and
                   enter the one with the largest pivot; the closing
                   primal run repairs the bounded slack. *)
                let je =
                  let r_e = dc_ratio.(!tpos) in
                  let dtol = 1e-7 in
                  let best_a = ref dc_alpha.(!tpos)
                  and best_j = ref dc_j.(!tpos) in
                  for q = !tpos + 1 to nc - 1 do
                    let a = dc_alpha.(q) in
                    if a > !best_a && (dc_ratio.(q) *. a) -. (r_e *. a) <= dtol
                    then begin
                      best_a := a;
                      best_j := dc_j.(q)
                    end
                  done;
                  !best_j
                in
                (if !nflip > 0 then
                   (* flips are applied newest-first, matching the
                      prepend order the list implementation used, so the
                      accumulation order (and its rounding) is
                      unchanged *)
                   if not hyper then begin
                     Array.fill bwork 0 m 0.0;
                     for f = !nflip - 1 downto 0 do
                       let j = df_j.(f) and delta = df_delta.(f) in
                       col_iter j (fun i v ->
                           bwork.(i) <- bwork.(i) +. (delta *. v))
                     done;
                     (match !ft with
                     | Some u ->
                         Lu.Ft.ftran_d u ~keep_spike:false ~b:bwork ~x:w
                           ~scratch
                     | None -> Lu.solve !lu ~b:bwork ~x:w ~scratch);
                     w_n := -1;
                     incr c_ftran_dn;
                     apply_etas_to_w ();
                     for k = 0 to m - 1 do
                       x_basic.(k) <- x_basic.(k) -. w.(k)
                     done
                   end
                   else begin
                     (* combined flip delta is sparse: build it on the
                        stamped scratch (columns may share rows) and
                        update x_basic over the solve's support *)
                     incr sb_epoch;
                     let ep = !sb_epoch in
                     let nb = ref 0 in
                     for f = !nflip - 1 downto 0 do
                       let j = df_j.(f) and delta = df_delta.(f) in
                       col_iter j (fun i v ->
                           if sb_in.(i) <> ep then begin
                             sb_in.(i) <- ep;
                             sb_ind.(!nb) <- i;
                             incr nb
                           end;
                           sb.(i) <- sb.(i) +. (delta *. v))
                     done;
                     let nb0 = !nb in
                     solve_into_w nb0;
                     for s2 = 0 to nb0 - 1 do
                       sb.(sb_ind.(s2)) <- 0.0
                     done;
                     let sup_n = if !w_n < 0 then m else !w_n in
                     for ti = 0 to sup_n - 1 do
                       let k = if !w_n < 0 then ti else w_ind.(ti) in
                       x_basic.(k) <- x_basic.(k) -. w.(k)
                     done
                   end);
                  ftran ~keep_spike:true je;
                  if Float.abs w.(r) < 1e-8 then begin
                    (* numerically unusable pivot: rebuild the
                       factorization once and retry the iteration *)
                    incr bad_pivots;
                    refactorize 0;
                    recompute_d ();
                    if !bad_pivots > 3 then begin
                      if stats_on then
                        Printf.eprintf
                          "LP_STATS: dual bad pivots (r=%d w_r=%g)\n%!" r
                          w.(r);
                      outcome := `Numerical
                    end
                  end
                  else begin
                    bad_pivots := 0;
                    let b = basis.(r) in
                    let bound = if !below then lo.(b) else hi.(b) in
                    let t = (x_basic.(r) -. bound) /. w.(r) in
                    let sup_n = if !w_n < 0 then m else !w_n in
                    for ti = 0 to sup_n - 1 do
                      let k = if !w_n < 0 then ti else w_ind.(ti) in
                      x_basic.(k) <- x_basic.(k) -. (t *. w.(k))
                    done;
                    (* dual step: d_j -= theta * alpha_j, nonzero only on
                       the gathered columns; the leaving column's alpha is
                       exactly 1 (it is row r's basic), so its new
                       reduced cost is -theta *)
                    let theta = d.(je) /. w.(r) in
                    for tk = 0 to !ntouched - 1 do
                      let j = touched.(tk) in
                      d.(j) <- d.(j) -. (theta *. alpha_acc.(j))
                    done;
                    d.(je) <- 0.0;
                    d.(b) <- -.theta;
                    let entering_val = nbval je +. t in
                    where.(b) <- -1;
                    nb_at.(b) <- (if !below then 'l' else 'u');
                    basis.(r) <- je;
                    where.(je) <- r;
                    x_basic.(r) <- entering_val;
                    pivot_update w r;
                    check_invariants ()
                  end;
                  t_ratio := !t_ratio +. clock () -. tratio0
              end
            end
          end
        done;
        !outcome
      in
      (* --- phases ------------------------------------------------------- *)
      let status = ref Optimal in
      (match warm_opt with
      | None ->
          (* phase 1 *)
          if !nart > 0 then begin
            for k = 0 to !nart - 1 do
              cost.(nv + m + k) <- 1.0
            done;
            (match run_phase ~p1:true () with
            | `Phase_done ->
                let infeas = ref 0.0 in
                for k = 0 to m - 1 do
                  if basis.(k) >= nv + m then infeas := !infeas +. x_basic.(k)
                done;
                for k = 0 to !nart - 1 do
                  let aj = nv + m + k in
                  if where.(aj) < 0 then infeas := !infeas +. nbval aj
                done;
                if !infeas > 1e-6 then status := Infeasible
            | `Unbounded ->
                failwith "Revised: phase 1 unbounded (internal error)"
            | `Iter_limit -> status := Iter_limit
            | `Run -> assert false);
            (* Fix artificials at zero for phase 2. *)
            for k = 0 to !nart - 1 do
              let aj = nv + m + k in
              cost.(aj) <- 0.0;
              hi.(aj) <- 0.0;
              if where.(aj) < 0 then nb_at.(aj) <- 'l'
            done
          end;
          (* phase 2 *)
          if !status = Optimal then begin
            Array.blit p.obj 0 cost 0 nv;
            bland := false;
            degen := 0;
            match run_phase () with
            | `Phase_done -> ()
            | `Unbounded -> status := Unbounded
            | `Iter_limit -> status := Iter_limit
            | `Run -> assert false
          end
      | Some _ ->
          Array.blit p.obj 0 cost 0 nv;
          let primal_viol () =
            let v = ref 0.0 in
            for k = 0 to m - 1 do
              let b = basis.(k) in
              if lo.(b) -. x_basic.(k) > !v then v := lo.(b) -. x_basic.(k);
              if x_basic.(k) -. hi.(b) > !v then v := x_basic.(k) -. hi.(b)
            done;
            !v
          in
          let finish_primal () =
            (* The dual loop (or the repair alone) reached a primal-feasible
               point; a primal phase-2 run from here certifies optimality
               and cleans up any tolerance-level dual infeasibility left by
               the status repair. *)
            bland := false;
            degen := 0;
            match run_phase () with
            | `Phase_done -> ()
            | `Unbounded -> status := Unbounded
            | `Iter_limit -> status := Iter_limit
            | `Run -> assert false
          in
          (* Primal-first warm start: when the caller knows the basis is
             primal feasible for the new problem (column generation: the
             objective and bounds are unchanged, only columns were added
             at their lower bound), entering phase 2 directly lets the
             primal pick among the new columns selectively.  The default
             dual-feasibility repair would instead flip every fresh
             negative-reduced-cost column to its opposite bound and then
             grind the resulting primal infeasibility back out with dual
             pivots — a storm of busywork proportional to the number of
             appended columns. *)
          let primal_ready =
            warm_primal
            && begin
                 recompute_x_basic ();
                 primal_viol () <= feas_tol
               end
          in
          if primal_ready then finish_primal ()
          else begin
          (* Dual-feasibility repair: a boxed nonbasic sitting at the wrong
             bound for its reduced-cost sign is flipped to the other bound;
             a non-boxed one with the wrong sign cannot be repaired without
             pivoting, so fall back to the cold path. *)
          for k = 0 to m - 1 do
            cb.(k) <- cost.(basis.(k))
          done;
          btran cb y;
          for j = 0 to nv + m - 1 do
            if where.(j) < 0 && lo.(j) < hi.(j) then begin
              let d = cost.(j) -. col_dot j y in
              let tol = opt_tol *. (1.0 +. Float.abs cost.(j)) in
              match nb_at.(j) with
              | 'l' when d < -.tol ->
                  if Float.is_finite hi.(j) then nb_at.(j) <- 'u'
                  else begin
                    if stats_on then
                      Printf.eprintf "LP_STATS: fallback repair j=%d at=l d=%g\n%!" j d;
                    raise Warm_fallback
                  end
              | 'u' when d > tol ->
                  if Float.is_finite lo.(j) then nb_at.(j) <- 'l'
                  else begin
                    if stats_on then
                      Printf.eprintf "LP_STATS: fallback repair j=%d at=u d=%g\n%!" j d;
                    raise Warm_fallback
                  end
              | 'f' when Float.abs d > tol ->
                  if stats_on then
                    Printf.eprintf "LP_STATS: fallback repair j=%d at=f d=%g\n%!" j d;
                  raise Warm_fallback
              | _ -> ()
            end
          done;
          recompute_x_basic ();
          if primal_viol () <= feas_tol then finish_primal ()
          else begin
            (* Dual-degenerate warm bases — many nonbasic reduced costs
               exactly zero, typical when the previous cap left the power
               rows slack — stall the dual objective (theta_d = 0 steps)
               and can cycle.  A deterministic dual-feasible cost
               perturbation gives distinct, strictly positive ratios; the
               closing primal run restores the exact costs, so the
               perturbation never reaches the reported solution. *)
            for j = 0 to nv + m - 1 do
              if where.(j) < 0 && lo.(j) < hi.(j) then begin
                let eps =
                  1e-7
                  *. (1.0 +. Float.abs cost.(j))
                  *. (1.0 +. (Float.of_int (j mod 97) /. 97.0))
                in
                match nb_at.(j) with
                | 'l' -> cost.(j) <- cost.(j) +. eps
                | 'u' -> cost.(j) <- cost.(j) -. eps
                | _ -> ()
              end
            done;
            let dual_res = run_dual () in
            Array.blit p.obj 0 cost 0 nv;
            Array.fill cost nv (Array.length cost - nv) 0.0;
            match dual_res with
            | `Optimal -> finish_primal ()
            | `Primal_infeasible -> status := Infeasible
            | `Iter_limit -> status := Iter_limit
            | `Numerical ->
                if stats_on then
                  Printf.eprintf "LP_STATS: fallback dual numerical\n%!";
                raise Warm_fallback
            | `Run -> assert false
          end
          end);
      (* --- extraction --------------------------------------------------- *)
      (* The reported solution must depend only on the final basis, never
         on the pivot path that reached it: a warm re-solve ending at the
         same basis as a cold solve has to agree to the last bit.  Sort
         the basis into canonical (column-index) order, drop the eta file
         by refactorizing, and recompute the primal point from the fresh
         factors. *)
      if !status = Optimal then begin
        Array.sort Int.compare basis;
        for k = 0 to m - 1 do
          where.(basis.(k)) <- k
        done;
        refactorize 0
      end;
      (match !ft with
      | Some u ->
          if Lu.Ft.fill_hwm u > !fill_max then fill_max := Lu.Ft.fill_hwm u
      | None -> ());
      if stats_on then
        Printf.eprintf
          "LP_STATS: iters=%d factor=%.2fs (%d, avg nnz %d) ftran=%.2fs \
           btran=%.2fs price=%.2fs ratio+update=%.2fs %s\n\
           %!"
          !iters !t_factor !n_factor
          (if !n_factor > 0 then !lu_nnz_total / !n_factor else 0)
          !t_ftran !t_btran !t_price !t_ratio
          (if ftmode then
             Printf.sprintf "ft_updates=%d fill_max=%.2f cap=%d limit=%g%s"
               !c_ft_updates !fill_max ft_cap refac_lim
               (if small then " mode=small-dense" else "")
           else Printf.sprintf "etas_max=%d" eta_max);
      let x = Array.make nv 0.0 in
      for j = 0 to nv - 1 do
        if where.(j) >= 0 then x.(j) <- x_basic.(where.(j)) else x.(j) <- nbval j
      done;
      for k = 0 to m - 1 do
        cb.(k) <- cost.(basis.(k))
      done;
      btran cb y;
      let dj = Array.init nv (fun j -> p.obj.(j) -. col_dot j y) in
      let basis_out =
        (* A clean basis mentions only structural and slack columns.  An
           artificial still basic (necessarily at zero after a feasible
           phase 1) is stood in for by its row's slack when that slack is
           nonbasic; otherwise no reusable basis is reported. *)
        let ok = ref true in
        let bas = Array.make m 0 in
        for k = 0 to m - 1 do
          let j = basis.(k) in
          if j < nv + m then bas.(k) <- j
          else begin
            let s = nv + art_row.(j - nv - m) in
            if where.(s) < 0 then bas.(k) <- s else ok := false
          end
        done;
        if not !ok then None
        else begin
          let vstat = Array.make (nv + m) 'l' in
          for j = 0 to nv + m - 1 do
            vstat.(j) <- (if where.(j) >= 0 then 'b' else nb_at.(j))
          done;
          Array.iter (fun j -> vstat.(j) <- 'b') bas;
          Some { basic = bas; vstat }
        end
      in
      Stats.note_solve
        ~warm:(warm_opt <> None)
        ~iterations:!iters ~dual:!dual_pivots ~flips:!bound_flips
        ~factors:!n_factor
        ~wall:(Unix.gettimeofday () -. t_solve0);
      Stats.note_kernels ~ftran_sp:!c_ftran_sp ~ftran_dn:!c_ftran_dn
        ~btran_sp:!c_btran_sp ~btran_dn:!c_btran_dn ~resets:!c_devex_resets
        ~refreshes:!c_refreshes;
      Stats.note_ft ~updates:!c_ft_updates ~fill_max:!fill_max
        ~small_dense:(if small then 1 else 0);
      {
        status = !status;
        objective = Model.objective_value p x;
        x;
        y = Array.copy y;
        dj;
        iterations = !iters;
        basis = basis_out;
      }
    in
    match warm with
    | None -> attempt None
    | Some wb -> (
        try attempt (Some wb)
        with
        | Warm_fallback ->
            Stats.note_fallback ();
            attempt None
        | Failure msg ->
            if Sys.getenv_opt "LP_STATS" <> None then
              Printf.eprintf "LP_STATS: fallback failure %s\n%!" msg;
            Stats.note_fallback ();
            attempt None)
  end

let solve ?max_iter ?feas_tol ?opt_tol ?lb ?ub ?rhs ?warm ?warm_primal
    ?analysis ?bands (p : Model.problem) : result =
  Putil.Obs.span ~cat:"lp"
    ~args:
      [
        ("warm", if warm = None then "false" else "true");
        ("rows", string_of_int p.nr);
        ("cols", string_of_int p.nv);
      ]
    "revised.solve"
    (fun () ->
      solve_impl ?max_iter ?feas_tol ?opt_tol ?lb ?ub ?rhs ?warm ?warm_primal
        ?analysis ?bands p)
