(** Bounded-variable revised simplex with sparse basis factorization.

    Standard computational form: every row gets a slack variable
    ([a.x + s = b] with slack bounds encoding the row sense), so the
    constraint matrix is [[A | I]].  When the all-slack starting point is
    out of bounds, artificial variables restore feasibility and a phase-1
    objective (minimize the sum of artificials) is solved first.

    The basis is factorized with {!Lu} and updated between
    refactorizations with product-form (eta) updates.  Pricing is
    Dantzig's rule with an automatic switch to Bland's rule after a run of
    degenerate pivots; the ratio test is a two-pass Harris test.

    Warm starts: [solve] returns the final basis (basic set + nonbasic
    statuses) and accepts it back via [?warm] on a later call whose
    bounds/RHS differ.  The warm basis is repaired against the new bounds
    and, because bound/RHS changes preserve dual feasibility, re-solved
    with a {e dual simplex} loop (largest-violation row choice, dual
    ratio test with bound flips).  Any irreparable situation — basis
    singular beyond {!Lu} repair, dual-infeasible nonbasic that cannot be
    flipped — falls back to the cold primal phase-1/2 path, so a warm
    call can never be less robust than a cold one. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

let pp_status ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Iter_limit -> Fmt.string ppf "iteration-limit"

type basis = {
  basic : int array;
      (** column of each basis position, length [nr]; structural columns
          are [0..nv-1], slacks [nv..nv+nr-1] *)
  vstat : char array;
      (** per-column status, length [nv+nr]: ['b'] basic, ['l']/['u'] at
          lower/upper bound, ['f'] free at zero *)
}

type result = {
  status : status;
  objective : float;
  x : float array;  (** structural primal values, length [nv] *)
  y : float array;  (** row duals, length [nr] *)
  dj : float array;  (** structural reduced costs, length [nv] *)
  iterations : int;
  basis : basis option;
      (** final simplex basis, reusable as [?warm] on a re-solve of the
          same problem shape; [None] when no clean slack/structural basis
          exists (e.g. constraint-free models) *)
}

type eta = { er : int; eidx : int array; evals : float array; edia : float }

let neg_inf = Float.neg_infinity
let inf = Float.infinity

exception Warm_fallback

(* Trivial path for models without constraints. *)
let solve_unconstrained (p : Model.problem) lo hi =
  let x = Array.make p.nv 0.0 in
  let status = ref Optimal in
  for j = 0 to p.nv - 1 do
    let c = p.obj.(j) in
    if c > 0.0 then
      if Float.is_finite lo.(j) then x.(j) <- lo.(j) else status := Unbounded
    else if c < 0.0 then
      if Float.is_finite hi.(j) then x.(j) <- hi.(j) else status := Unbounded
    else x.(j) <- (if Float.is_finite lo.(j) then lo.(j) else min hi.(j) 0.0)
  done;
  {
    status = !status;
    objective = Model.objective_value p x;
    x;
    y = [||];
    dj = Array.copy p.obj;
    iterations = 0;
    basis = None;
  }

let solve_impl ?(max_iter = 0) ?(feas_tol = 1e-7) ?(opt_tol = 1e-7) ?lb ?ub
    ?rhs ?warm (p : Model.problem) : result =
  let t_solve0 = Unix.gettimeofday () in
  let nv = p.nv and m = p.nr in
  let lb_s = match lb with Some a -> a | None -> p.lb in
  let ub_s = match ub with Some a -> a | None -> p.ub in
  let rhs_s = match rhs with Some a -> a | None -> p.row_rhs in
  let max_iter = if max_iter > 0 then max_iter else 20_000 + (60 * m) in
  (* Column layout: 0..nv-1 structural, nv..nv+m-1 slacks, then
     artificials.  [ntot] grows as artificials are added. *)
  let cap = nv + m + m in
  let lo = Array.make cap 0.0 and hi = Array.make cap 0.0 in
  Array.blit lb_s 0 lo 0 nv;
  Array.blit ub_s 0 hi 0 nv;
  for i = 0 to m - 1 do
    let j = nv + i in
    match p.row_sense.(i) with
    | Model.Le ->
        lo.(j) <- 0.0;
        hi.(j) <- inf
    | Model.Ge ->
        lo.(j) <- neg_inf;
        hi.(j) <- 0.0
    | Model.Eq ->
        lo.(j) <- 0.0;
        hi.(j) <- 0.0
  done;
  if m = 0 then begin
    let r = solve_unconstrained p lo hi in
    Stats.note_solve ~warm:false ~iterations:0 ~dual:0 ~flips:0 ~factors:0
      ~wall:(Unix.gettimeofday () -. t_solve0);
    r
  end
  else begin
    (* One solve attempt: cold (phase 1/2 primal) when [warm_opt = None],
       otherwise installs the given basis and runs the dual simplex.
       Warm attempts raise [Warm_fallback] on any irreparable state and
       are retried cold by the dispatcher below. *)
    let attempt warm_opt =
      let nart = ref 0 in
      let art_row = Array.make m (-1) and art_sig = Array.make m 1.0 in
      let ntot () = nv + m + !nart in
      let col_iter j f =
        if j < nv then Sparse.Csc.iter_col p.a j f
        else if j < nv + m then f (j - nv) 1.0
        else f art_row.(j - nv - m) art_sig.(j - nv - m)
      in
      let col_dot j (y : float array) =
        if j < nv then Sparse.Csc.dot_col p.a j y
        else if j < nv + m then y.(j - nv)
        else art_sig.(j - nv - m) *. y.(art_row.(j - nv - m))
      in
      let where = Array.make cap (-1) in
      let nb_at = Array.make cap 'l' in
      let basis = Array.make m 0 in
      let x_basic = Array.make m 0.0 in
      let nbval j =
        match nb_at.(j) with
        | 'l' -> lo.(j)
        | 'u' -> hi.(j)
        | _ -> 0.0
      in
      (match warm_opt with
      | None ->
          (* Initial nonbasic statuses for structural columns. *)
          for j = 0 to nv - 1 do
            nb_at.(j) <-
              (if Float.is_finite lo.(j) then 'l'
               else if Float.is_finite hi.(j) then 'u'
               else 'f')
          done;
          (* Row activities of the nonbasic structural point. *)
          let act = Array.make m 0.0 in
          let x0 = Array.init nv nbval in
          Sparse.Csc.mult p.a x0 act;
          for i = 0 to m - 1 do
            let sj = nv + i in
            let sval = rhs_s.(i) -. act.(i) in
            if sval >= lo.(sj) -. feas_tol && sval <= hi.(sj) +. feas_tol
            then begin
              basis.(i) <- sj;
              where.(sj) <- i;
              x_basic.(i) <- sval
            end
            else begin
              let bound = if sval < lo.(sj) then lo.(sj) else hi.(sj) in
              nb_at.(sj) <- (if sval < lo.(sj) then 'l' else 'u');
              let r = sval -. bound in
              let k = !nart in
              incr nart;
              art_row.(k) <- i;
              art_sig.(k) <- (if r >= 0.0 then 1.0 else -1.0);
              let aj = nv + m + k in
              lo.(aj) <- 0.0;
              hi.(aj) <- inf;
              basis.(i) <- aj;
              where.(aj) <- i;
              x_basic.(i) <- Float.abs r
            end
          done
      | Some wb ->
          (* Install the caller's basis; repair nonbasic statuses against
             the (possibly changed) bounds. *)
          if Array.length wb.basic <> m || Array.length wb.vstat <> nv + m
          then raise Warm_fallback;
          Array.iteri
            (fun k j ->
              if j < 0 || j >= nv + m || where.(j) >= 0 then
                raise Warm_fallback;
              basis.(k) <- j;
              where.(j) <- k)
            wb.basic;
          for j = 0 to nv + m - 1 do
            if where.(j) < 0 then
              nb_at.(j) <-
                (match wb.vstat.(j) with
                | 'l' when Float.is_finite lo.(j) -> 'l'
                | 'u' when Float.is_finite hi.(j) -> 'u'
                | _ ->
                    if Float.is_finite lo.(j) then 'l'
                    else if Float.is_finite hi.(j) then 'u'
                    else 'f')
          done);
      (* --- basis factorization machinery ------------------------------- *)
      let stats_on = Sys.getenv_opt "LP_STATS" <> None in
      let t_factor = ref 0.0
      and t_ftran = ref 0.0
      and t_btran = ref 0.0
      and t_price = ref 0.0
      and t_ratio = ref 0.0
      and lu_nnz_total = ref 0
      and n_factor = ref 0 in
      let clock () = if stats_on then Sys.time () else 0.0 in
      let lu = ref (Lu.factor ~m (fun k f -> col_iter basis.(k) f)) in
      let etas = ref [] (* newest first *) in
      let n_etas = ref 0 in
      let scratch = Array.make m 0.0 in
      let bwork = Array.make m 0.0 in
      let recompute_x_basic () =
        Array.blit rhs_s 0 bwork 0 m;
        for j = 0 to ntot () - 1 do
          if where.(j) < 0 then begin
            let v = nbval j in
            if v <> 0.0 then
              col_iter j (fun i a -> bwork.(i) <- bwork.(i) -. (a *. v))
          end
        done;
        Lu.solve !lu ~b:bwork ~x:x_basic ~scratch
      in
      let rec refactorize depth =
        if depth > 4 then failwith "Revised: unable to repair singular basis";
        let t0 = clock () in
        let f = Lu.factor ~m (fun k f -> col_iter basis.(k) f) in
        t_factor := !t_factor +. clock () -. t0;
        incr n_factor;
        lu_nnz_total := !lu_nnz_total + Lu.nnz f;
        etas := [];
        n_etas := 0;
        match f.Lu.replaced with
        | [] ->
            lu := f;
            recompute_x_basic ()
        | reps ->
            List.iter
              (fun (kpos, row) ->
                let old = basis.(kpos) in
                where.(old) <- -1;
                nb_at.(old) <-
                  (if Float.is_finite lo.(old) then 'l'
                   else if Float.is_finite hi.(old) then 'u'
                   else 'f');
                let slack = nv + row in
                if where.(slack) >= 0 then
                  failwith "Revised: basis repair failed (slack already basic)";
                basis.(kpos) <- slack;
                where.(slack) <- kpos)
              reps;
            refactorize (depth + 1)
      in
      refactorize 0;
      recompute_x_basic ();
      let ftran j (w : float array) =
        let t0 = clock () in
        Array.fill bwork 0 m 0.0;
        col_iter j (fun i v -> bwork.(i) <- bwork.(i) +. v);
        Lu.solve !lu ~b:bwork ~x:w ~scratch;
        List.iter
          (fun e ->
            let t = w.(e.er) in
            if t <> 0.0 then begin
              w.(e.er) <- e.edia *. t;
              for k = 0 to Array.length e.eidx - 1 do
                w.(e.eidx.(k)) <- w.(e.eidx.(k)) +. (e.evals.(k) *. t)
              done
            end)
          (List.rev !etas);
        t_ftran := !t_ftran +. clock () -. t0
      in
      let btran (cb : float array) (y : float array) =
        let t0 = clock () in
        (* Apply eta transposes newest-first, then the base factorization. *)
        List.iter
          (fun e ->
            let s = ref (e.edia *. cb.(e.er)) in
            for k = 0 to Array.length e.eidx - 1 do
              s := !s +. (e.evals.(k) *. cb.(e.eidx.(k)))
            done;
            cb.(e.er) <- !s)
          !etas;
        Lu.solve_t !lu ~c:cb ~y ~scratch;
        t_btran := !t_btran +. clock () -. t0
      in
      let push_eta (w : float array) r =
        let wr = w.(r) in
        let cnt = ref 0 in
        for k = 0 to m - 1 do
          if k <> r && Float.abs w.(k) > 1e-12 then incr cnt
        done;
        let eidx = Array.make !cnt 0 and evals = Array.make !cnt 0.0 in
        let at = ref 0 in
        for k = 0 to m - 1 do
          if k <> r && Float.abs w.(k) > 1e-12 then begin
            eidx.(!at) <- k;
            evals.(!at) <- -.w.(k) /. wr;
            incr at
          end
        done;
        etas := { er = r; eidx; evals; edia = 1.0 /. wr } :: !etas;
        incr n_etas
      in
      (* --- simplex iterations ------------------------------------------ *)
      let cost = Array.make cap 0.0 in
      let cb = Array.make m 0.0 in
      let y = Array.make m 0.0 in
      let w = Array.make m 0.0 in
      let rho = Array.make m 0.0 in
      let iters = ref 0 in
      let dual_pivots = ref 0 in
      let bound_flips = ref 0 in
      let bland = ref false in
      let degen = ref 0 in
      let price_cursor = ref 0 in
      (* Expensive per-pivot invariant check, enabled via LP_PARANOID. *)
      let paranoid = Sys.getenv_opt "LP_PARANOID" <> None in
      let check_invariants () =
        if paranoid then begin
          let saved = Array.copy x_basic in
          let saved_etas = !etas and saved_n = !n_etas and saved_lu = !lu in
          lu := Lu.factor ~m (fun k f -> col_iter basis.(k) f);
          etas := [];
          n_etas := 0;
          recompute_x_basic ();
          let drift = ref 0.0 in
          for k = 0 to m - 1 do
            let d = Float.abs (x_basic.(k) -. saved.(k)) in
            if d > !drift then drift := d
          done;
          if !drift > 1e-6 then begin
            (* residual of the incrementally maintained point: b - A x *)
            let res = Array.copy rhs_s in
            let sub j xv =
              if xv <> 0.0 then
                col_iter j (fun i a -> res.(i) <- res.(i) -. (a *. xv))
            in
            for j = 0 to ntot () - 1 do
              if where.(j) < 0 then sub j (nbval j)
            done;
            for k = 0 to m - 1 do
              sub basis.(k) saved.(k)
            done;
            let rmax =
              Array.fold_left (fun a v -> max a (Float.abs v)) 0.0 res
            in
            Printf.eprintf
              "LP_PARANOID: iter %d drift %g incremental-residual %g \
               replaced %d\n\
               %!"
              !iters !drift rmax
              (List.length !lu.Lu.replaced);
            (match Sys.getenv_opt "LP_DUMP_BASIS" with
            | Some path when not (Sys.file_exists path) ->
                let oc = open_out path in
                Printf.fprintf oc "%d\n" m;
                for k = 0 to m - 1 do
                  col_iter basis.(k) (fun i v ->
                      Printf.fprintf oc "%d %d %.17g\n" i k v)
                done;
                close_out oc
            | _ -> ())
          end;
          Array.blit saved 0 x_basic 0 m;
          etas := saved_etas;
          n_etas := saved_n;
          lu := saved_lu
        end
      in
      let run_phase () =
        let outcome = ref `Run in
        while !outcome = `Run do
          if !iters >= max_iter then outcome := `Iter_limit
          else begin
            incr iters;
            if !n_etas >= 64 then refactorize 0;
            for k = 0 to m - 1 do
              cb.(k) <- cost.(basis.(k))
            done;
            btran cb y;
            (* pricing *)
            let best_j = ref (-1)
            and best_mag = ref 0.0
            and best_dir = ref 1.0 in
            let consider j d dir =
              let mag = Float.abs d in
              if !bland then begin
                if !best_j < 0 then begin
                  best_j := j;
                  best_mag := mag;
                  best_dir := dir
                end
              end
              else if mag > !best_mag then begin
                best_j := j;
                best_mag := mag;
                best_dir := dir
              end
            in
            let tprice0 = clock () in
            let total = ntot () in
            (* Partial pricing: scan from a rotating cursor and stop once a
               window's worth of columns has been examined with at least
               one candidate in hand.  Optimality is still exact: the phase
               only ends after a full wrap finds no candidate.  Bland mode
               scans deterministically from column 0. *)
            let window = max 512 (total / 8) in
            if !bland then begin
              let j = ref 0 in
              while !j < total && !best_j < 0 do
                let jj = !j in
                if where.(jj) < 0 && lo.(jj) < hi.(jj) then begin
                  let d = cost.(jj) -. col_dot jj y in
                  let tol = opt_tol *. (1.0 +. Float.abs cost.(jj)) in
                  match nb_at.(jj) with
                  | 'l' -> if d < -.tol then consider jj d 1.0
                  | 'u' -> if d > tol then consider jj d (-1.0)
                  | _ ->
                      if d < -.tol then consider jj d 1.0
                      else if d > tol then consider jj d (-1.0)
                end;
                incr j
              done
            end
            else begin
              let scanned = ref 0 in
              while
                !scanned < total && not (!best_j >= 0 && !scanned >= window)
              do
                let jj = (!price_cursor + !scanned) mod total in
                if where.(jj) < 0 && lo.(jj) < hi.(jj) then begin
                  let d = cost.(jj) -. col_dot jj y in
                  let tol = opt_tol *. (1.0 +. Float.abs cost.(jj)) in
                  match nb_at.(jj) with
                  | 'l' -> if d < -.tol then consider jj d 1.0
                  | 'u' -> if d > tol then consider jj d (-1.0)
                  | _ ->
                      if d < -.tol then consider jj d 1.0
                      else if d > tol then consider jj d (-1.0)
                end;
                incr scanned
              done;
              if !best_j >= 0 then price_cursor := (!best_j + 1) mod total
            end;
            t_price := !t_price +. clock () -. tprice0;
            if !best_j < 0 then outcome := `Phase_done
            else begin
              let je = !best_j and s = !best_dir in
              ftran je w;
              let tratio0 = clock () in
              (* Two-pass Harris ratio test. *)
              let theta_max = ref inf in
              let t_flip =
                if Float.is_finite lo.(je) && Float.is_finite hi.(je) then
                  hi.(je) -. lo.(je)
                else inf
              in
              for k = 0 to m - 1 do
                let delta = s *. w.(k) in
                if Float.abs delta > 1e-9 then begin
                  let b = basis.(k) in
                  if delta > 0.0 && Float.is_finite lo.(b) then begin
                    let slack = max 0.0 (x_basic.(k) -. lo.(b)) in
                    let r = (slack +. feas_tol) /. delta in
                    if r < !theta_max then theta_max := r
                  end
                  else if delta < 0.0 && Float.is_finite hi.(b) then begin
                    let slack = max 0.0 (hi.(b) -. x_basic.(k)) in
                    let r = (slack +. feas_tol) /. -.delta in
                    if r < !theta_max then theta_max := r
                  end
                end
              done;
              if !theta_max = inf && t_flip = inf then outcome := `Unbounded
              else begin
                (* pass 2: among blocking candidates within theta_max pick
                   the largest pivot magnitude *)
                let leave = ref (-1) and lmag = ref 0.0 and lt = ref inf in
                for k = 0 to m - 1 do
                  let delta = s *. w.(k) in
                  if Float.abs delta > 1e-9 then begin
                    let b = basis.(k) in
                    let slack =
                      if delta > 0.0 && Float.is_finite lo.(b) then
                        Some (max 0.0 (x_basic.(k) -. lo.(b)))
                      else if delta < 0.0 && Float.is_finite hi.(b) then
                        Some (max 0.0 (hi.(b) -. x_basic.(k)))
                      else None
                    in
                    match slack with
                    | Some sl ->
                        let r = sl /. Float.abs delta in
                        if r <= !theta_max && Float.abs delta > !lmag
                        then begin
                          leave := k;
                          lmag := Float.abs delta;
                          lt := r
                        end
                    | None -> ()
                  end
                done;
                let t_leave = if !leave >= 0 then !lt else inf in
                if t_flip < t_leave then begin
                  (* bound flip: no basis change *)
                  for k = 0 to m - 1 do
                    x_basic.(k) <- x_basic.(k) -. (s *. t_flip *. w.(k))
                  done;
                  nb_at.(je) <- (if nb_at.(je) = 'l' then 'u' else 'l');
                  if paranoid then
                    Printf.eprintf "LP_PARANOID: iter %d flip j=%d t=%g\n%!"
                      !iters je t_flip;
                  check_invariants ();
                  if t_flip <= 1e-10 then incr degen else degen := 0
                end
                else if !leave < 0 then outcome := `Unbounded
                else begin
                  let r = !leave in
                  let t = t_leave in
                  for k = 0 to m - 1 do
                    x_basic.(k) <- x_basic.(k) -. (s *. t *. w.(k))
                  done;
                  let entering_val = nbval je +. (s *. t) in
                  let leaving = basis.(r) in
                  where.(leaving) <- -1;
                  nb_at.(leaving) <- (if s *. w.(r) > 0.0 then 'l' else 'u');
                  basis.(r) <- je;
                  where.(je) <- r;
                  x_basic.(r) <- entering_val;
                  push_eta w r;
                  check_invariants ();
                  if t <= 1e-10 then incr degen else degen := 0
                end;
                if !degen > 200 + m then bland := true
                else if !degen = 0 then bland := false;
                t_ratio := !t_ratio +. clock () -. tratio0
              end
            end
          end
        done;
        !outcome
      in
      (* --- dual simplex (warm re-solves) -------------------------------
         Invariant: nonbasic reduced costs are dual-feasible (repaired on
         entry); basic variables may violate their bounds.  Each iteration
         picks the most-violated basic variable to leave, prices the row
         with a dual ratio test, flips boxed columns whose full flip is
         cheaper than the remaining violation (bound-flip ratio test) and
         pivots the blocking column in. *)
      let run_dual () =
        let outcome = ref `Run in
        let bad_pivots = ref 0 in
        let dual_cap = m + 2000 in
        (* Row-major view for pricing: alpha = rho^T A is gathered over
           supp(rho) only, so each iteration costs the fill of the pivot
           row rather than a full-matrix scan.  [stamp]/[touched] give
           O(touched) reset between iterations. *)
        let arows = Sparse.Csc.rows p.a in
        let alpha_acc = Array.make (nv + m) 0.0 in
        let stamp = Array.make (nv + m) (-1) in
        let touched = Array.make (nv + m) 0 in
        (* Reduced costs are maintained incrementally: a pivot with dual
           step theta only moves d_j by -theta * alpha_j, and alpha is
           zero outside the gathered columns.  Entries for basic columns
           are dead (the candidate scan skips them); the array is rebuilt
           from the duals at every refactorization to bound drift. *)
        let d = Array.make (nv + m) 0.0 in
        let recompute_d () =
          for k = 0 to m - 1 do
            cb.(k) <- cost.(basis.(k))
          done;
          btran cb y;
          for j = 0 to nv + m - 1 do
            d.(j) <- (if where.(j) >= 0 then 0.0 else cost.(j) -. col_dot j y)
          done
        in
        recompute_d ();
        while !outcome = `Run do
          if !iters >= max_iter then outcome := `Iter_limit
          else if !dual_pivots > dual_cap then begin
            if stats_on then
              Printf.eprintf "LP_STATS: dual cap hit (%d pivots, m=%d)\n%!"
                !dual_pivots m;
            outcome := `Numerical
          end
          else begin
            incr iters;
            incr dual_pivots;
            if !n_etas >= 64 then begin
              refactorize 0;
              recompute_d ()
            end;
            (* leaving row: largest primal bound violation *)
            let lrow = ref (-1) and viol = ref feas_tol and below = ref true in
            for k = 0 to m - 1 do
              let b = basis.(k) in
              if lo.(b) -. x_basic.(k) > !viol then begin
                lrow := k;
                viol := lo.(b) -. x_basic.(k);
                below := true
              end;
              if x_basic.(k) -. hi.(b) > !viol then begin
                lrow := k;
                viol := x_basic.(k) -. hi.(b);
                below := false
              end
            done;
            if !lrow < 0 then outcome := `Optimal
            else begin
              let r = !lrow in
              (* sigma: direction the leaving basic must move *)
              let sigma = if !below then 1.0 else -1.0 in
              (* rho = row r of B^-1 *)
              Array.fill cb 0 m 0.0;
              cb.(r) <- 1.0;
              btran cb rho;
              let tprice0 = clock () in
              (* Entering candidates: nonbasic j whose move in its feasible
                 direction drives x_B(r) toward the violated bound, ranked
                 by dual ratio |d_j| / |alpha_j|.  Gather alpha row-wise:
                 only columns hit by supp(rho) can have nonzero alpha. *)
              let ntouched = ref 0 in
              let touch j =
                if stamp.(j) <> !iters then begin
                  stamp.(j) <- !iters;
                  alpha_acc.(j) <- 0.0;
                  touched.(!ntouched) <- j;
                  incr ntouched
                end
              in
              for i = 0 to m - 1 do
                let ri = rho.(i) in
                if Float.abs ri > 1e-12 then begin
                  let js = nv + i in
                  touch js;
                  alpha_acc.(js) <- alpha_acc.(js) +. ri;
                  for k = arows.Sparse.Csc.rowptr.(i)
                      to arows.Sparse.Csc.rowptr.(i + 1) - 1
                  do
                    let j = arows.Sparse.Csc.colind.(k) in
                    touch j;
                    alpha_acc.(j) <-
                      alpha_acc.(j) +. (ri *. arows.Sparse.Csc.rvalues.(k))
                  done
                end
              done;
              let cands = ref [] in
              for tk = 0 to !ntouched - 1 do
                let j = touched.(tk) in
                if where.(j) < 0 && lo.(j) < hi.(j) then begin
                  let alpha = alpha_acc.(j) in
                  if Float.abs alpha > 1e-9 then begin
                    let eligible =
                      match nb_at.(j) with
                      | 'l' -> sigma *. alpha < 0.0
                      | 'u' -> sigma *. alpha > 0.0
                      | _ -> true
                    in
                    if eligible then
                      let ratio = Float.abs d.(j) /. Float.abs alpha in
                      cands := (ratio, Float.abs alpha, j) :: !cands
                  end
                end
              done;
              t_price := !t_price +. clock () -. tprice0;
              match !cands with
              | [] ->
                  (* no column can relieve the violation: the bound system
                     is primal infeasible *)
                  outcome := `Primal_infeasible
              | cands0 ->
                  let tratio0 = clock () in
                  (* smallest dual ratio first; larger pivot, then lower
                     column index, breaks ties — a total order, so the
                     pick does not depend on gather order *)
                  let sorted =
                    List.sort
                      (fun (r1, a1, j1) (r2, a2, j2) ->
                        match Float.compare r1 r2 with
                        | 0 -> (
                            match Float.compare a2 a1 with
                            | 0 -> compare j1 j2
                            | c -> c)
                        | c -> c)
                      cands0
                  in
                  (* Bound-flip ratio test: a boxed candidate whose full
                     flip removes less than the remaining violation is
                     flipped outright (no pivot); the walk stops at the
                     first candidate that would overshoot.  The flips only
                     change nonbasic values, so their combined effect on
                     x_basic is applied with a single solve
                     (B^-1 sum_j delta_j a_j) after the walk. *)
                  let remaining = ref !viol in
                  let flipped = ref [] in
                  let rec walk = function
                    | [] -> []
                    | [ c ] -> [ c ]
                    | ((_, a, j) :: rest) as l ->
                        let range = hi.(j) -. lo.(j) in
                        if
                          Float.is_finite range
                          && nb_at.(j) <> 'f'
                          && (a *. range) < !remaining -. feas_tol
                        then begin
                          let delta =
                            if nb_at.(j) = 'l' then range else -.range
                          in
                          flipped := (j, delta) :: !flipped;
                          nb_at.(j) <- (if nb_at.(j) = 'l' then 'u' else 'l');
                          incr bound_flips;
                          remaining := !remaining -. (a *. range);
                          walk rest
                        end
                        else l
                  in
                  let tail = walk sorted in
                  (* Harris-style second pass: the strict minimum ratio
                     often rides a tiny |alpha|, and t = viol / alpha then
                     throws the entering variable far past its opposite
                     bound — the violation migrates instead of shrinking.
                     Admit every candidate whose reduced cost would go
                     infeasible by at most dtol at the head's ratio and
                     enter the one with the largest pivot; the closing
                     primal run repairs the bounded slack. *)
                  let je =
                    match tail with
                    | [] -> assert false
                    | (r_e, a_e, j_e) :: rest ->
                        let dtol = 1e-7 in
                        let best_a = ref a_e and best_j = ref j_e in
                        List.iter
                          (fun (rt, a, j) ->
                            if a > !best_a && (rt *. a) -. (r_e *. a) <= dtol
                            then begin
                              best_a := a;
                              best_j := j
                            end)
                          rest;
                        !best_j
                  in
                  (match !flipped with
                  | [] -> ()
                  | flips ->
                      Array.fill bwork 0 m 0.0;
                      List.iter
                        (fun (j, delta) ->
                          col_iter j (fun i v ->
                              bwork.(i) <- bwork.(i) +. (delta *. v)))
                        flips;
                      Lu.solve !lu ~b:bwork ~x:w ~scratch;
                      List.iter
                        (fun e ->
                          let t = w.(e.er) in
                          if t <> 0.0 then begin
                            w.(e.er) <- e.edia *. t;
                            for k = 0 to Array.length e.eidx - 1 do
                              w.(e.eidx.(k)) <-
                                w.(e.eidx.(k)) +. (e.evals.(k) *. t)
                            done
                          end)
                        (List.rev !etas);
                      for k = 0 to m - 1 do
                        x_basic.(k) <- x_basic.(k) -. w.(k)
                      done);
                  ftran je w;
                  if Float.abs w.(r) < 1e-8 then begin
                    (* numerically unusable pivot: rebuild the
                       factorization once and retry the iteration *)
                    incr bad_pivots;
                    refactorize 0;
                    recompute_d ();
                    if !bad_pivots > 3 then begin
                      if stats_on then
                        Printf.eprintf
                          "LP_STATS: dual bad pivots (r=%d w_r=%g)\n%!" r
                          w.(r);
                      outcome := `Numerical
                    end
                  end
                  else begin
                    bad_pivots := 0;
                    let b = basis.(r) in
                    let bound = if !below then lo.(b) else hi.(b) in
                    let t = (x_basic.(r) -. bound) /. w.(r) in
                    for k = 0 to m - 1 do
                      x_basic.(k) <- x_basic.(k) -. (t *. w.(k))
                    done;
                    (* dual step: d_j -= theta * alpha_j, nonzero only on
                       the gathered columns; the leaving column's alpha is
                       exactly 1 (it is row r's basic), so its new
                       reduced cost is -theta *)
                    let theta = d.(je) /. w.(r) in
                    for tk = 0 to !ntouched - 1 do
                      let j = touched.(tk) in
                      d.(j) <- d.(j) -. (theta *. alpha_acc.(j))
                    done;
                    d.(je) <- 0.0;
                    d.(b) <- -.theta;
                    let entering_val = nbval je +. t in
                    where.(b) <- -1;
                    nb_at.(b) <- (if !below then 'l' else 'u');
                    basis.(r) <- je;
                    where.(je) <- r;
                    x_basic.(r) <- entering_val;
                    push_eta w r;
                    check_invariants ()
                  end;
                  t_ratio := !t_ratio +. clock () -. tratio0
            end
          end
        done;
        !outcome
      in
      (* --- phases ------------------------------------------------------- *)
      let status = ref Optimal in
      (match warm_opt with
      | None ->
          (* phase 1 *)
          if !nart > 0 then begin
            for k = 0 to !nart - 1 do
              cost.(nv + m + k) <- 1.0
            done;
            (match run_phase () with
            | `Phase_done ->
                let infeas = ref 0.0 in
                for k = 0 to m - 1 do
                  if basis.(k) >= nv + m then infeas := !infeas +. x_basic.(k)
                done;
                for k = 0 to !nart - 1 do
                  let aj = nv + m + k in
                  if where.(aj) < 0 then infeas := !infeas +. nbval aj
                done;
                if !infeas > 1e-6 then status := Infeasible
            | `Unbounded ->
                failwith "Revised: phase 1 unbounded (internal error)"
            | `Iter_limit -> status := Iter_limit
            | `Run -> assert false);
            (* Fix artificials at zero for phase 2. *)
            for k = 0 to !nart - 1 do
              let aj = nv + m + k in
              cost.(aj) <- 0.0;
              hi.(aj) <- 0.0;
              if where.(aj) < 0 then nb_at.(aj) <- 'l'
            done
          end;
          (* phase 2 *)
          if !status = Optimal then begin
            Array.blit p.obj 0 cost 0 nv;
            bland := false;
            degen := 0;
            match run_phase () with
            | `Phase_done -> ()
            | `Unbounded -> status := Unbounded
            | `Iter_limit -> status := Iter_limit
            | `Run -> assert false
          end
      | Some _ ->
          Array.blit p.obj 0 cost 0 nv;
          (* Dual-feasibility repair: a boxed nonbasic sitting at the wrong
             bound for its reduced-cost sign is flipped to the other bound;
             a non-boxed one with the wrong sign cannot be repaired without
             pivoting, so fall back to the cold path. *)
          for k = 0 to m - 1 do
            cb.(k) <- cost.(basis.(k))
          done;
          btran cb y;
          for j = 0 to nv + m - 1 do
            if where.(j) < 0 && lo.(j) < hi.(j) then begin
              let d = cost.(j) -. col_dot j y in
              let tol = opt_tol *. (1.0 +. Float.abs cost.(j)) in
              match nb_at.(j) with
              | 'l' when d < -.tol ->
                  if Float.is_finite hi.(j) then nb_at.(j) <- 'u'
                  else begin
                    if stats_on then
                      Printf.eprintf "LP_STATS: fallback repair j=%d at=l d=%g\n%!" j d;
                    raise Warm_fallback
                  end
              | 'u' when d > tol ->
                  if Float.is_finite lo.(j) then nb_at.(j) <- 'l'
                  else begin
                    if stats_on then
                      Printf.eprintf "LP_STATS: fallback repair j=%d at=u d=%g\n%!" j d;
                    raise Warm_fallback
                  end
              | 'f' when Float.abs d > tol ->
                  if stats_on then
                    Printf.eprintf "LP_STATS: fallback repair j=%d at=f d=%g\n%!" j d;
                  raise Warm_fallback
              | _ -> ()
            end
          done;
          recompute_x_basic ();
          let primal_viol () =
            let v = ref 0.0 in
            for k = 0 to m - 1 do
              let b = basis.(k) in
              if lo.(b) -. x_basic.(k) > !v then v := lo.(b) -. x_basic.(k);
              if x_basic.(k) -. hi.(b) > !v then v := x_basic.(k) -. hi.(b)
            done;
            !v
          in
          let finish_primal () =
            (* The dual loop (or the repair alone) reached a primal-feasible
               point; a primal phase-2 run from here certifies optimality
               and cleans up any tolerance-level dual infeasibility left by
               the status repair. *)
            bland := false;
            degen := 0;
            match run_phase () with
            | `Phase_done -> ()
            | `Unbounded -> status := Unbounded
            | `Iter_limit -> status := Iter_limit
            | `Run -> assert false
          in
          if primal_viol () <= feas_tol then finish_primal ()
          else begin
            (* Dual-degenerate warm bases — many nonbasic reduced costs
               exactly zero, typical when the previous cap left the power
               rows slack — stall the dual objective (theta_d = 0 steps)
               and can cycle.  A deterministic dual-feasible cost
               perturbation gives distinct, strictly positive ratios; the
               closing primal run restores the exact costs, so the
               perturbation never reaches the reported solution. *)
            for j = 0 to nv + m - 1 do
              if where.(j) < 0 && lo.(j) < hi.(j) then begin
                let eps =
                  1e-7
                  *. (1.0 +. Float.abs cost.(j))
                  *. (1.0 +. (Float.of_int (j mod 97) /. 97.0))
                in
                match nb_at.(j) with
                | 'l' -> cost.(j) <- cost.(j) +. eps
                | 'u' -> cost.(j) <- cost.(j) -. eps
                | _ -> ()
              end
            done;
            let dual_res = run_dual () in
            Array.blit p.obj 0 cost 0 nv;
            Array.fill cost nv (Array.length cost - nv) 0.0;
            match dual_res with
            | `Optimal -> finish_primal ()
            | `Primal_infeasible -> status := Infeasible
            | `Iter_limit -> status := Iter_limit
            | `Numerical ->
                if stats_on then
                  Printf.eprintf "LP_STATS: fallback dual numerical\n%!";
                raise Warm_fallback
            | `Run -> assert false
          end);
      (* --- extraction --------------------------------------------------- *)
      (* The reported solution must depend only on the final basis, never
         on the pivot path that reached it: a warm re-solve ending at the
         same basis as a cold solve has to agree to the last bit.  Sort
         the basis into canonical (column-index) order, drop the eta file
         by refactorizing, and recompute the primal point from the fresh
         factors. *)
      if !status = Optimal then begin
        Array.sort compare basis;
        for k = 0 to m - 1 do
          where.(basis.(k)) <- k
        done;
        refactorize 0
      end;
      if stats_on then
        Printf.eprintf
          "LP_STATS: iters=%d factor=%.2fs (%d, avg nnz %d) ftran=%.2fs \
           btran=%.2fs price=%.2fs ratio+update=%.2fs etas_max=%d\n\
           %!"
          !iters !t_factor !n_factor
          (if !n_factor > 0 then !lu_nnz_total / !n_factor else 0)
          !t_ftran !t_btran !t_price !t_ratio 64;
      let x = Array.make nv 0.0 in
      for j = 0 to nv - 1 do
        if where.(j) >= 0 then x.(j) <- x_basic.(where.(j)) else x.(j) <- nbval j
      done;
      for k = 0 to m - 1 do
        cb.(k) <- cost.(basis.(k))
      done;
      btran cb y;
      let dj = Array.init nv (fun j -> p.obj.(j) -. col_dot j y) in
      let basis_out =
        (* A clean basis mentions only structural and slack columns.  An
           artificial still basic (necessarily at zero after a feasible
           phase 1) is stood in for by its row's slack when that slack is
           nonbasic; otherwise no reusable basis is reported. *)
        let ok = ref true in
        let bas = Array.make m 0 in
        for k = 0 to m - 1 do
          let j = basis.(k) in
          if j < nv + m then bas.(k) <- j
          else begin
            let s = nv + art_row.(j - nv - m) in
            if where.(s) < 0 then bas.(k) <- s else ok := false
          end
        done;
        if not !ok then None
        else begin
          let vstat = Array.make (nv + m) 'l' in
          for j = 0 to nv + m - 1 do
            vstat.(j) <- (if where.(j) >= 0 then 'b' else nb_at.(j))
          done;
          Array.iter (fun j -> vstat.(j) <- 'b') bas;
          Some { basic = bas; vstat }
        end
      in
      Stats.note_solve
        ~warm:(warm_opt <> None)
        ~iterations:!iters ~dual:!dual_pivots ~flips:!bound_flips
        ~factors:!n_factor
        ~wall:(Unix.gettimeofday () -. t_solve0);
      {
        status = !status;
        objective = Model.objective_value p x;
        x;
        y = Array.copy y;
        dj;
        iterations = !iters;
        basis = basis_out;
      }
    in
    match warm with
    | None -> attempt None
    | Some wb -> (
        try attempt (Some wb)
        with
        | Warm_fallback ->
            Stats.note_fallback ();
            attempt None
        | Failure msg ->
            if Sys.getenv_opt "LP_STATS" <> None then
              Printf.eprintf "LP_STATS: fallback failure %s\n%!" msg;
            Stats.note_fallback ();
            attempt None)
  end

let solve ?max_iter ?feas_tol ?opt_tol ?lb ?ub ?rhs ?warm (p : Model.problem) :
    result =
  Putil.Obs.span ~cat:"lp"
    ~args:
      [
        ("warm", if warm = None then "false" else "true");
        ("rows", string_of_int p.nr);
        ("cols", string_of_int p.nv);
      ]
    "revised.solve"
    (fun () -> solve_impl ?max_iter ?feas_tol ?opt_tol ?lb ?ub ?rhs ?warm p)
