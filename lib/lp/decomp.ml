(** Dantzig–Wolfe decomposition for block-angular LPs.

    The event LP is block-angular by construction: per-rank groups of
    columns (configuration weights, per-rank vertex times) whose private
    rows (convexity/blend rows) touch no other rank, coupled only by the
    job-wide rows (power caps, precedence/order rows through shared
    vertices, the deadline row).  The caller tags each column with its
    owning block ({!structure}); rows are classified here from the
    matrix itself — a row all of whose columns live in one block is that
    block's row, everything else is a coupling (master) row.

    The algorithm is textbook column generation with the repo's existing
    machinery for every LP it touches:

    - the {e restricted master} (coupling rows + one convexity row per
      block, over proposal columns [lambda] plus the shared columns and
      big-M artificials) is re-solved with {!Revised.solve} warm-started
      from the previous master basis — appending columns only extends
      the variable-status array, rows never change;
    - the K {e pricing subproblems} are independent small LPs (one per
      block, structure fixed, only the objective changes with the master
      duals), solved concurrently on {!Putil.Pool} with per-block basis
      reuse across iterations.  Futures are awaited and merged in block
      order, so the iterate sequence is identical at any
      [POWERLIM_JOBS];
    - on convergence the aggregated primal point is {e crossed over} to
      a monolithic basic solution: columns at their bounds are pinned
      (lb = ub), the pinned LP is solved cold to a basis, and that basis
      warm-starts one final {!Revised.solve} of the {e original}
      problem, whose own exact optimality scan certifies every reduced
      cost at [opt_tol].  The result returned to the caller is a plain
      full-space {!Revised.result} — byte-compatible with the
      monolithic path.

    Any trouble anywhere (master or subproblem not optimal, artificials
    stuck at positive values, certification failure, all-slack coupling
    duals on a guarded instance) abandons the decomposition and re-runs
    the monolithic solver, so [POWERLIM_DW=0/1] can differ only in
    speed, never in results. *)

let src = Logs.Src.create "powerlim.decomp" ~doc:"Dantzig-Wolfe decomposition"

module Log = (val Logs.src_log src : Logs.LOG)

type structure = {
  col_block : int array;
      (** per structural column: owning block in [0 .. nblocks-1], or
          [-1] for a shared column that may appear in coupling rows *)
  nblocks : int;  (** number of blocks (typically the rank count) *)
  box : float;
      (** finite bound substituted for infinite column bounds inside the
          pricing subproblems so every block LP is bounded.  Must be
          large enough that some optimal solution fits; correctness does
          not depend on it (the final certified solve uses true bounds),
          only convergence speed does. *)
  guard_rows : int array;
      (** rows whose duals decide degeneracy canonicalization: when the
          certified solution has (numerically) zero duals on {e all} of
          them, the instance is treated as unconstrained-degenerate and
          re-solved monolithically so alternate-optimum vertex selection
          matches the [POWERLIM_DW=0] path (the same convention
          {!Experiments.Common.run_sweep} uses for unconstraining caps).
          Empty disables the guard. *)
}

let structure ?(box = 1e9) ?(guard_rows = [||]) ~nblocks col_block =
  { col_block; nblocks; box; guard_rows }

let dw_enabled () = Putil.Env.flag "POWERLIM_DW" ~default:true
let dw_min_ranks () = Putil.Env.int ~lo:1 "POWERLIM_DW_MIN_RANKS" ~default:512

(* Relative Lagrangian-gap tolerance at which column generation hands
   over to the crossover; the final exact solve certifies the result at
   full precision regardless, so this only trades master iterations
   against crossover pivots. *)
let dw_gap () = Putil.Env.float ~lo_exclusive:0.0 "POWERLIM_DW_GAP" ~default:1e-4

(* DW pays off when there are many blocks; below the threshold the
   monolithic solver wins and runs unchanged. *)
let engaged (s : structure) (p : Model.problem) =
  dw_enabled ()
  && s.nblocks >= dw_min_ranks ()
  && Array.length s.col_block = p.Model.nv
  && (not (Array.exists Fun.id p.Model.integer))
  && p.Model.nr > 0

(* ------------------------------------------------------------------ *)
(* Structure extraction                                                *)
(* ------------------------------------------------------------------ *)

type split = {
  blocks : int array array;  (* per pricing component: its columns, ascending *)
  block_rows : int array array;  (* per component: its rows, ascending *)
  mrows : int array;  (* coupling rows, ascending *)
  m_of_row : int array;  (* row -> coupling index, -1 for block rows *)
  shared : int array;  (* master direct columns, ascending *)
}

(* Classify rows from the matrix — a row whose columns all belong to one
   block is private to it; rows touching shared columns, several blocks,
   or nothing at all are coupling rows — then {e disaggregate}: the
   pricing units are the connected components of the (block rows x block
   columns) bipartite graph, not the declared blocks.  A declared block
   whose private rows never chain its columns together (the event LP's
   per-rank block splits into one component per task, each a single
   blend row) prices component-by-component, and that is what makes
   column generation converge in a handful of iterations: a fractional
   mix over one task costs two proposals of a small component instead of
   an exponential cover of the whole rank's product polytope.  Block
   columns attached to no block row can only appear in coupling rows, so
   they move to the master as direct columns.  O(nnz alpha(nv)). *)
let split_problem (s : structure) (p : Model.problem) : split =
  let nv = p.Model.nv and nr = p.Model.nr in
  let csr = Sparse.Csc.rows p.Model.a in
  let row_block = Array.make nr (-2) in
  (* -2 = unseen, -1 = coupling, k = pure block k *)
  for i = 0 to nr - 1 do
    let lo = csr.Sparse.Csc.rowptr.(i) and hi = csr.Sparse.Csc.rowptr.(i + 1) in
    if lo = hi then row_block.(i) <- -1
    else
      for t = lo to hi - 1 do
        let b = s.col_block.(csr.Sparse.Csc.colind.(t)) in
        match row_block.(i) with
        | -2 -> row_block.(i) <- b
        | -1 -> ()
        | cur -> if cur <> b then row_block.(i) <- -1
      done
  done;
  (* union-find over columns, merged through every pure block row *)
  let parent = Array.init nv Fun.id in
  let rec find j = if parent.(j) = j then j else find parent.(j) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
  in
  let rooted = Array.make nv false in
  (* a rooted component owns at least one block row *)
  for i = 0 to nr - 1 do
    if row_block.(i) >= 0 then begin
      let lo = csr.Sparse.Csc.rowptr.(i) in
      let hi = csr.Sparse.Csc.rowptr.(i + 1) in
      for t = lo + 1 to hi - 1 do
        union csr.Sparse.Csc.colind.(lo) csr.Sparse.Csc.colind.(t)
      done;
      rooted.(find csr.Sparse.Csc.colind.(lo)) <- true
    end
  done;
  (* number components by ascending first column: deterministic *)
  let comp_of_root = Hashtbl.create (2 * max 16 s.nblocks) in
  let ncomp = ref 0 in
  let shared = ref [] in
  for j = 0 to nv - 1 do
    if s.col_block.(j) < 0 then shared := j :: !shared
    else begin
      let r = find j in
      if not rooted.(r) then shared := j :: !shared
      else if not (Hashtbl.mem comp_of_root r) then begin
        Hashtbl.add comp_of_root r !ncomp;
        incr ncomp
      end
    end
  done;
  let comp_cols = Array.make (max 1 !ncomp) []
  and comp_rows = Array.make (max 1 !ncomp) [] in
  for j = nv - 1 downto 0 do
    if s.col_block.(j) >= 0 then begin
      let r = find j in
      if rooted.(r) then
        let k = Hashtbl.find comp_of_root r in
        comp_cols.(k) <- j :: comp_cols.(k)
    end
  done;
  for i = nr - 1 downto 0 do
    if row_block.(i) >= 0 then begin
      let k = Hashtbl.find comp_of_root (find csr.Sparse.Csc.colind.(csr.Sparse.Csc.rowptr.(i))) in
      comp_rows.(k) <- i :: comp_rows.(k)
    end
  done;
  let blocks = Array.init !ncomp (fun k -> Array.of_list comp_cols.(k)) in
  let block_rows = Array.init !ncomp (fun k -> Array.of_list comp_rows.(k)) in
  let mrows = ref [] in
  for i = nr - 1 downto 0 do
    if row_block.(i) < 0 then mrows := i :: !mrows
  done;
  let mrows = Array.of_list !mrows in
  let m_of_row = Array.make nr (-1) in
  Array.iteri (fun t i -> m_of_row.(i) <- t) mrows;
  {
    blocks;
    block_rows;
    mrows;
    m_of_row;
    shared = Array.of_list (List.rev !shared);
  }

(* ------------------------------------------------------------------ *)
(* Subproblem and master construction                                  *)
(* ------------------------------------------------------------------ *)

let boxed box v =
  if Float.is_finite v then v else if v > 0.0 then box else -.box

(* Pricing subproblem of one block: its private rows over its columns,
   infinite bounds replaced by the box so the LP is always bounded.  The
   objective is a placeholder; every DW iteration substitutes the
   dual-adjusted costs via a record copy (the matrix is shared). *)
let block_problem (s : structure) (p : Model.problem) ~rhs cols rows :
    Model.problem =
  let nbv = Array.length cols and nbr = Array.length rows in
  let local = Hashtbl.create (2 * nbr) in
  Array.iteri (fun t i -> Hashtbl.replace local i t) rows;
  let coo = Sparse.Coo.create ~capacity:(4 * max 1 nbv) () in
  Array.iteri
    (fun jt j ->
      Sparse.Csc.iter_col p.Model.a j (fun i v ->
          match Hashtbl.find_opt local i with
          | Some it -> Sparse.Coo.add coo it jt v
          | None -> ()))
    cols;
  {
    Model.nv = nbv;
    nr = nbr;
    a = Sparse.Csc.of_coo ~nrows:nbr ~ncols:nbv coo;
    lb = Array.map (fun j -> boxed s.box p.Model.lb.(j)) cols;
    ub = Array.map (fun j -> boxed s.box p.Model.ub.(j)) cols;
    obj = Array.make nbv 0.0;
    row_sense = Array.map (fun i -> p.Model.row_sense.(i)) rows;
    row_rhs = Array.map (fun i -> rhs.(i)) rows;
    integer = Array.make nbv false;
    var_names = Array.map (fun j -> p.Model.var_names.(j)) cols;
    row_names = Array.map (fun i -> p.Model.row_names.(i)) rows;
  }

(* One accepted proposal: an extreme point of its block's polytope,
   entering the master as a [0,1]-bounded column. *)
type proposal = {
  p_block : int;  (* compact block index *)
  p_x : float array;  (* block-local primal values *)
  p_cost : float;  (* c^T x over the block's columns *)
  p_col : (int * float) list;  (* master-row index -> aggregated coef *)
}

(* The master has a fixed row space (coupling rows then one convexity
   row per block) and a growing column space: shared columns, one big-M
   artificial per row signed to absorb any residual, then the proposals
   in acceptance order.  Rebuilt per iteration (the nnz is small). *)
let master_problem (p : Model.problem) ~rhs (sp : split) ~big_m proposals :
    Model.problem * int * int =
  let nm = Array.length sp.mrows and nb = Array.length sp.blocks in
  let nr = nm + nb in
  let coo = Sparse.Coo.create ~capacity:(8 * max 1 nr) () in
  let lb = ref [] and ub = ref [] and obj = ref [] and names = ref [] in
  let ncols = ref 0 in
  let push ~l ~u ~c name =
    lb := l :: !lb;
    ub := u :: !ub;
    obj := c :: !obj;
    names := name :: !names;
    incr ncols;
    !ncols - 1
  in
  Array.iter
    (fun j ->
      let col =
        push ~l:p.Model.lb.(j) ~u:p.Model.ub.(j) ~c:p.Model.obj.(j)
          p.Model.var_names.(j)
      in
      Sparse.Csc.iter_col p.Model.a j (fun i v ->
          Sparse.Coo.add coo sp.m_of_row.(i) col v))
    sp.shared;
  let n_shared = !ncols in
  let art sign row =
    let col =
      push ~l:0.0 ~u:Float.infinity ~c:big_m
        (Printf.sprintf "art%d%s" row (if sign > 0.0 then "p" else "n"))
    in
    Sparse.Coo.add coo row col sign
  in
  Array.iteri
    (fun t i ->
      match p.Model.row_sense.(i) with
      | Model.Ge -> art 1.0 t
      | Model.Le -> art (-1.0) t
      | Model.Eq ->
          art 1.0 t;
          art (-1.0) t)
    sp.mrows;
  for b = 0 to nb - 1 do
    art 1.0 (nm + b)
  done;
  let n_fixed = !ncols in
  List.iteri
    (fun k prop ->
      let col = push ~l:0.0 ~u:1.0 ~c:prop.p_cost (Printf.sprintf "dw%d" k) in
      List.iter (fun (t, v) -> Sparse.Coo.add coo t col v) prop.p_col;
      Sparse.Coo.add coo (nm + prop.p_block) col 1.0)
    proposals;
  let nv = !ncols in
  let row_sense =
    Array.init nr (fun t ->
        if t < nm then p.Model.row_sense.(sp.mrows.(t)) else Model.Eq)
  in
  let row_rhs = Array.init nr (fun t -> if t < nm then rhs.(sp.mrows.(t)) else 1.0) in
  let row_names =
    Array.init nr (fun t ->
        if t < nm then p.Model.row_names.(sp.mrows.(t))
        else Printf.sprintf "convex%d" (t - nm))
  in
  ( {
      Model.nv;
      nr;
      a = Sparse.Csc.of_coo ~nrows:nr ~ncols:nv coo;
      lb = Array.of_list (List.rev !lb);
      ub = Array.of_list (List.rev !ub);
      obj = Array.of_list (List.rev !obj);
      row_sense;
      row_rhs;
      integer = Array.make nv false;
      var_names = Array.of_list (List.rev !names);
      row_names;
    },
    n_shared,
    n_fixed )

(* Map the previous master basis onto a master extended by [added] new
   trailing structural columns: statuses of existing columns carry over,
   new columns start nonbasic at their lower bound, and slack indices
   (>= old nv) shift by [added]. *)
let extend_basis (b : Revised.basis) ~old_nv ~added : Revised.basis =
  let nstat = Array.length b.Revised.vstat in
  let vstat = Array.make (nstat + added) 'l' in
  Array.blit b.Revised.vstat 0 vstat 0 old_nv;
  Array.blit b.Revised.vstat old_nv vstat (old_nv + added) (nstat - old_nv);
  let basic =
    Array.map
      (fun c -> if c >= old_nv then c + added else c)
      b.Revised.basic
  in
  { Revised.basic; vstat }

(* ------------------------------------------------------------------ *)
(* The decomposition loop                                              *)
(* ------------------------------------------------------------------ *)

let max_dw_iterations = 200

(* Solve by column generation; [None] means "let the monolithic solver
   handle it" (not necessarily an error: infeasible instances and
   degenerate-unconstrained guarded instances are reported canonically
   by the monolithic path). *)
let try_dw ?max_iter ?feas_tol ?opt_tol ~rhs ?analysis ?bands
    (s : structure) (p : Model.problem) : Revised.result option =
  let tol = Option.value opt_tol ~default:1e-9 in
  (* Column generation stops at a loose relative Lagrangian gap: the
     crossover ends with an exact warm solve of the original problem,
     which closes the residual gap at full precision (and certifies the
     result), so grinding the tail of the gap out of the master — the
     most iteration-hungry phase of column generation — buys nothing. *)
  let gap_tol = Float.max tol (dw_gap ()) in
  let sp = split_problem s p in
  let nb = Array.length sp.blocks in
  if nb < 2 || Array.length sp.mrows = 0 then None
  else begin
    let pool = Putil.Pool.get_default () in
    let t_setup = Sys.time () in
    (* per-block pricing state: problem, symbolic analysis, warm basis *)
    let bprobs =
      Array.init nb (fun k ->
          block_problem s p ~rhs sp.blocks.(k) sp.block_rows.(k))
    in
    let banals = Array.map Revised.make_analysis bprobs in
    Log.debug (fun m ->
        m "setup: %d components in %.3fs" nb (Sys.time () -. t_setup));
    let bbases = Array.make nb None in
    let max_obj =
      Array.fold_left (fun m c -> Float.max m (Float.abs c)) 0.0 p.Model.obj
    in
    let big_m = ref (1e3 *. (1.0 +. max_obj)) in
    let escalations = ref 0 in
    let proposals = ref [] (* newest first *) in
    let master_basis = ref None and master_nv = ref 0 in
    (* last optimal master solution, with the exact proposal list the
       master was built from, for the crossover *)
    let last_x = ref [||] and last_n_fixed = ref 0 and last_props = ref [] in
    let price_obj k (y : float array) =
      Array.map
        (fun j ->
          let c = ref p.Model.obj.(j) in
          Sparse.Csc.iter_col p.Model.a j (fun i v ->
              let t = sp.m_of_row.(i) in
              if t >= 0 then c := !c -. (y.(t) *. v));
          !c)
        sp.blocks.(k)
    in
    let price_block k (y : float array) =
      Stats.note_dw_subproblem ();
      let bp = bprobs.(k) in
      let obj = price_obj k y in
      let r =
        Revised.solve ?max_iter ?feas_tol ?opt_tol ?warm:bbases.(k)
          ~warm_primal:true ~analysis:banals.(k)
          { bp with Model.obj }
      in
      bbases.(k) <- r.Revised.basis;
      r
    in
    let aggregate k (x : float array) : (int * float) list =
      let nm = Array.length sp.mrows in
      let acc = Array.make nm 0.0 and touched = ref [] in
      Array.iteri
        (fun jt j ->
          if x.(jt) <> 0.0 then
            Sparse.Csc.iter_col p.Model.a j (fun i v ->
                let t = sp.m_of_row.(i) in
                if t >= 0 then begin
                  if acc.(t) = 0.0 then touched := t :: !touched;
                  acc.(t) <- acc.(t) +. (v *. x.(jt))
                end))
        sp.blocks.(k);
      List.sort compare !touched
      |> List.filter_map (fun t ->
             if acc.(t) = 0.0 then None else Some (t, acc.(t)))
    in
    let duplicate k (x : float array) =
      List.exists
        (fun pr ->
          pr.p_block = k
          && Array.for_all2 (fun a b -> Float.equal a b) pr.p_x x)
        !proposals
    in
    let mk_proposal k (x : float array) =
      {
        p_block = k;
        p_x = Array.copy x;
        p_cost =
          (let c = ref 0.0 in
           Array.iteri
             (fun jt j -> c := !c +. (p.Model.obj.(j) *. x.(jt)))
             sp.blocks.(k);
           !c);
        p_col = aggregate k x;
      }
    in
    (* Sign-correct epsilon duals on every coupling row (Ge rows price
       positive, Le negative — the sign an active row's dual takes at
       optimum), used to seed the first pricing round so the first
       master starts from proposals that already pull toward satisfying
       the coupling rows.  Zero duals would leave components whose
       columns carry no objective cost (the event LP's configuration
       weights under the makespan objective) to tie-break arbitrarily,
       and the master then grinds those arbitrary vertices out one
       critical chain at a time. *)
    let eps = 1e-3 *. (1.0 +. max_obj) in
    let y0 =
      Array.init
        (max 1 (Array.length sp.mrows))
        (fun t ->
          if t >= Array.length sp.mrows then 0.0
          else
            match p.Model.row_sense.(sp.mrows.(t)) with
            | Model.Ge -> eps
            | Model.Le -> -.eps
            | Model.Eq -> 0.0)
    in
    let rec iterate it =
      if it >= max_dw_iterations then finish ()
      else begin
        Stats.note_dw_iteration ();
        let props_now = List.rev !proposals in
        let mp, n_shared, n_fixed =
          master_problem p ~rhs sp ~big_m:!big_m props_now
        in
        let warm =
          match !master_basis with
          | Some b when mp.Model.nv > !master_nv ->
              Some (extend_basis b ~old_nv:!master_nv ~added:(mp.Model.nv - !master_nv))
          | other -> other
        in
        Stats.note_dw_master ();
        let t_m = Sys.time () in
        let mr =
          Revised.solve ?max_iter ?feas_tol ?opt_tol ?warm ~warm_primal:true mp
        in
        Log.debug (fun m ->
            m "it %d: master %.3fs (%d cols)" it (Sys.time () -. t_m)
              mp.Model.nv);
        if mr.Revised.status <> Revised.Optimal then begin
          Log.debug (fun m ->
              m "master %a at iteration %d; falling back" Revised.pp_status
                mr.Revised.status it);
          None
        end
        else begin
          master_basis := mr.Revised.basis;
          master_nv := mp.Model.nv;
          last_x := mr.Revised.x;
          last_n_fixed := n_fixed;
          last_props := props_now;
          let nm = Array.length sp.mrows in
          let art_mass = ref 0.0 in
          for j = n_shared to n_fixed - 1 do
            art_mass := !art_mass +. mr.Revised.x.(j)
          done;
          (* pricing fan-out; merged in block order for determinism *)
          let y = mr.Revised.y in
          let round yv =
            Array.init nb (fun k ->
                Putil.Pool.submit pool (fun () -> price_block k yv))
            |> Array.map Putil.Pool.await
          in
          let prices = round y in
          if
            Array.exists
              (fun r -> r.Revised.status <> Revised.Optimal)
              prices
          then begin
            Log.debug (fun m ->
                m "subproblem not optimal at iteration %d; falling back" it);
            None
          end
          else begin
            (* Lagrangian bound: master objective plus the sum of the
               negative pricing reduced costs bounds the true optimum
               from below; a closed gap is the convergence certificate
               (robust to duplicate-vertex stalls). *)
            let gap = ref 0.0 in
            let fresh = ref [] in
            Array.iteri
              (fun k r ->
                let sigma = y.(nm + k) in
                let rc = r.Revised.objective -. sigma in
                if rc < 0.0 then gap := !gap -. rc;
                if
                  rc < -.tol *. (1.0 +. Float.abs sigma)
                  && not (duplicate k r.Revised.x)
                then fresh := mk_proposal k r.Revised.x :: !fresh)
              prices;
            Log.debug (fun m ->
                m "it %d: master obj %.12g, gap %.3g, art %.3g, fresh %d, \
                   props %d"
                  it mr.Revised.objective !gap !art_mass
                  (List.length !fresh)
                  (List.length !proposals));
            if
              !gap <= gap_tol *. (1.0 +. Float.abs mr.Revised.objective)
              && !art_mass
                 <= 1e-7 *. (1.0 +. Float.abs mr.Revised.objective)
            then finish ()
            else
            match !fresh with
            | [] ->
                if !art_mass > 1e-7 *. (1.0 +. Float.abs mr.Revised.objective)
                then
                  if !escalations < 2 then begin
                    (* converged onto artificials: the penalty was too
                       small to price them out; raise it and continue *)
                    incr escalations;
                    big_m := !big_m *. 1e3;
                    Log.debug (fun m ->
                        m "artificial mass %.3g at convergence; big-M -> %.3g"
                          !art_mass !big_m);
                    iterate (it + 1)
                  end
                  else None
                else finish ()
            | f -> continue_with it mr mp n_fixed props_now f
          end
        end
      end
    and continue_with it mr mp n_fixed props_now f =
                (* Column-pool purge: a nonbasic proposal the master
                   prices clearly out of the optimum is dropped (pricing
                   regenerates it if it is ever wanted again), keeping
                   the master — and every devex pricing pass inside it —
                   small.  The stored warm basis is compacted to the
                   surviving columns; only nonbasic columns are removed,
                   so the basis itself carries over intact. *)
                (match mr.Revised.basis with
                | Some mb when 2 * List.length props_now > 3 * nb ->
                    let purge_tol = 1e-4 *. (1.0 +. max_obj) in
                    let keep =
                      Array.make (mp.Model.nv - n_fixed) true
                    in
                    List.iteri
                      (fun k _ ->
                        let j = n_fixed + k in
                        if
                          mb.Revised.vstat.(j) <> 'b'
                          && mr.Revised.dj.(j) > purge_tol
                        then keep.(k) <- false)
                      props_now;
                    if Array.exists not keep then begin
                      let kept =
                        List.filteri (fun k _ -> keep.(k)) props_now
                      in
                      (* compact the basis: structural indices shift by
                         the purged count before them, slacks by the
                         total purged count *)
                      let removed = ref 0 in
                      let new_of_old = Array.make mp.Model.nv (-1) in
                      for j = 0 to mp.Model.nv - 1 do
                        if j < n_fixed || keep.(j - n_fixed) then
                          new_of_old.(j) <- j - !removed
                        else incr removed
                      done;
                      let new_nv = mp.Model.nv - !removed in
                      let nstat = Array.length mb.Revised.vstat in
                      let vstat =
                        Array.make (nstat - !removed) 'l'
                      in
                      for j = 0 to mp.Model.nv - 1 do
                        if new_of_old.(j) >= 0 then
                          vstat.(new_of_old.(j)) <- mb.Revised.vstat.(j)
                      done;
                      Array.blit mb.Revised.vstat mp.Model.nv vstat new_nv
                        (nstat - mp.Model.nv);
                      let basic =
                        Array.map
                          (fun c ->
                            if c >= mp.Model.nv then c - !removed
                            else new_of_old.(c))
                          mb.Revised.basic
                      in
                      proposals := List.rev kept;
                      master_basis := Some { Revised.basic; vstat };
                      master_nv := new_nv;
                      Log.debug (fun m ->
                          m "it %d: purged %d of %d proposals" it !removed
                            (List.length props_now))
                    end
                | _ -> ());
                (* newest-first accumulator; master construction re-sorts
                   into acceptance order.  Within one iteration proposals
                   are merged in block order. *)
                List.iter (fun pr -> proposals := pr :: !proposals) (List.rev f);
                iterate (it + 1)
    (* Crossover: pin every column sitting at a bound in the aggregated
       primal point, solve the pinned LP cold to a basis, normalize the
       pinned statuses against the true bounds, and certify with one
       warm solve of the original problem. *)
    and finish () =
      if Array.length !last_x = 0 then None
      else begin
        let mx = !last_x and n_fixed = !last_n_fixed in
        let x_hat = Array.make p.Model.nv 0.0 in
        Array.iteri (fun t j -> x_hat.(j) <- mx.(t)) sp.shared;
        List.iteri
          (fun k prop ->
            let lambda = mx.(n_fixed + k) in
            if lambda <> 0.0 then
              Array.iteri
                (fun jt j -> x_hat.(j) <- x_hat.(j) +. (lambda *. prop.p_x.(jt)))
                sp.blocks.(prop.p_block))
          !last_props;
        let lb' = Array.copy p.Model.lb and ub' = Array.copy p.Model.ub in
        let ptol = 1e-7 in
        for j = 0 to p.Model.nv - 1 do
          let l = p.Model.lb.(j) and u = p.Model.ub.(j) in
          if
            Float.is_finite l
            && Float.abs (x_hat.(j) -. l) <= ptol *. (1.0 +. Float.abs l)
          then ub'.(j) <- l
          else if
            Float.is_finite u
            && Float.abs (x_hat.(j) -. u) <= ptol *. (1.0 +. Float.abs u)
          then lb'.(j) <- u
        done;
        let t_r = Sys.time () in
        let restricted =
          Revised.solve ?max_iter ?feas_tol ?opt_tol ~lb:lb' ~ub:ub' ~rhs
            ?analysis ?bands p
        in
        Log.debug (fun m ->
            m "crossover: restricted %.3fs (%d pivots)" (Sys.time () -. t_r)
              restricted.Revised.iterations);
        match (restricted.Revised.status, restricted.Revised.basis) with
        | Revised.Optimal, Some rb ->
            (* a column pinned at its true upper bound must carry status
               'u' before the true-bound warm repair *)
            let vstat = Array.copy rb.Revised.vstat in
            for j = 0 to p.Model.nv - 1 do
              if vstat.(j) <> 'b' && lb'.(j) = ub'.(j) then
                if
                  lb'.(j) = p.Model.ub.(j) && p.Model.lb.(j) <> p.Model.ub.(j)
                then vstat.(j) <- 'u'
                else if lb'.(j) = p.Model.lb.(j) then vstat.(j) <- 'l'
            done;
            let warm = { rb with Revised.vstat } in
            let t_f = Sys.time () in
            let final =
              Revised.solve ?max_iter ?feas_tol ?opt_tol ~rhs ~warm ?analysis
                ?bands p
            in
            Log.debug (fun m ->
                m "crossover: certify %.3fs (%d pivots)" (Sys.time () -. t_f)
                  final.Revised.iterations);
            if final.Revised.status <> Revised.Optimal then None
            else if
              Array.length s.guard_rows > 0
              && Array.for_all
                   (fun i -> Float.abs final.Revised.y.(i) <= 1e-9)
                   s.guard_rows
            then begin
              (* coupling constraints all slack: the optimum is massively
                 degenerate and vertex selection must match the
                 monolithic path *)
              Log.debug (fun m ->
                  m "guard rows slack; deferring to monolithic solver");
              None
            end
            else Some final
        | _ -> None
      end
    in
    (* Seed: one proposal per component, priced against the epsilon
       duals, so the first master starts from proposals that already
       pull toward satisfying the coupling rows. *)
    let seeds =
      Array.init nb (fun k ->
          Putil.Pool.submit pool (fun () -> price_block k y0))
      |> Array.map Putil.Pool.await
    in
    if
      Array.exists (fun r -> r.Revised.status <> Revised.Optimal) seeds
    then begin
      Log.debug (fun m -> m "seeding subproblem not optimal; falling back");
      None
    end
    else begin
      Array.iteri
        (fun k r ->
          if not (duplicate k r.Revised.x) then
            proposals := mk_proposal k r.Revised.x :: !proposals)
        seeds;
      iterate 0
    end
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let solve ?max_iter ?feas_tol ?opt_tol ?lb ?ub ?rhs ?warm ?analysis ?bands
    ?structure (p : Model.problem) : Revised.result =
  let mono () =
    Revised.solve ?max_iter ?feas_tol ?opt_tol ?lb ?ub ?rhs ?warm ?analysis
      ?bands p
  in
  match (structure, warm, lb, ub) with
  | Some s, None, None, None when engaged s p -> begin
      let rhs_eff =
        match rhs with Some r -> r | None -> p.Model.row_rhs
      in
      match
        try_dw ?max_iter ?feas_tol ?opt_tol ~rhs:rhs_eff ?analysis ?bands s p
      with
      | Some r -> r
      | None ->
          Stats.note_dw_crossover_fallback ();
          mono ()
      | exception e ->
          (* decomposition must never be less robust than the monolithic
             path; count and retry monolithically *)
          Log.warn (fun m ->
              m "decomposition raised %s; re-solving monolithically"
                (Printexc.to_string e));
          Stats.note_dw_crossover_fallback ();
          mono ()
    end
  | _ -> mono ()
