(** Process-wide solver counters (atomic, shared across pool domains).

    {!Revised.solve} reports every solve here: cold vs warm start, the
    primal/dual pivot split, bound flips, basis factorizations and wall
    time.  The benchmark harness snapshots the counters around each
    experiment, and [warmbench] uses them to quantify what warm starts
    save.  Counters are process-global: reset before the region you want
    to measure. *)

type snapshot = {
  solves : int;
  cold_solves : int;
  warm_solves : int;  (** solves that ran from a caller-supplied basis *)
  warm_fallbacks : int;
      (** warm attempts abandoned for a cold phase-1/2 restart *)
  pivots : int;  (** total simplex iterations, primal + dual *)
  primal_pivots : int;
  dual_pivots : int;
  bound_flips : int;  (** dual-ratio-test flips (no basis change) *)
  factorizations : int;
  ftran_sparse : int;  (** FTRANs served by the hypersparse kernel *)
  ftran_dense : int;  (** FTRANs that fell back to (or forced) dense *)
  btran_sparse : int;
  btran_dense : int;
  devex_resets : int;  (** devex reference-framework re-initializations *)
  cand_refreshes : int;  (** full pricing scans rebuilding the candidate list *)
  edit_solves : int;  (** incremental re-solves through {!Edit.resolve} *)
  edit_warm : int;  (** edit re-solves whose basis mapping succeeded *)
  edit_fallbacks : int;
      (** edit re-solves that abandoned the mapping and went cold *)
  ft_updates : int;  (** Forrest–Tomlin basis updates applied *)
  refactorizations : int;  (** alias of [factorizations] *)
  fill_ratio_max : float;  (** worst Forrest–Tomlin fill ratio (process max) *)
  scale_passes : int;  (** equilibration passes run by {!Presolve} *)
  small_dense_solves : int;  (** solves on the small-instance dense path *)
  obj_mode_switches : int;
      (** prepared handles switched between objective modes
          ({!Core.Event_lp.switch_objective}) *)
  reclaim_passes : int;  (** slack-reclamation post-passes run *)
  reclaimed_joules_pct : float;
      (** energy reclaimed by the slack passes, as a percentage of the
          energy of the schedules they ran on (process aggregate) *)
  dw_iterations : int;  (** Dantzig–Wolfe master iterations *)
  dw_subproblem_solves : int;  (** per-block pricing LP solves *)
  dw_master_resolves : int;  (** restricted-master LP solves *)
  dw_crossover_fallbacks : int;
      (** decompositions abandoned for the monolithic solver (master or
          subproblem trouble, stuck artificials, certification failure,
          or the all-slack coupling-dual degeneracy guard) *)
  wall_s : float;  (** summed wall time inside {!Revised.solve} *)
}

let solves = Atomic.make 0
let warm_solves = Atomic.make 0
let warm_fallbacks = Atomic.make 0
let pivots = Atomic.make 0
let dual_pivots = Atomic.make 0
let bound_flips = Atomic.make 0
let factorizations = Atomic.make 0
let ftran_sparse = Atomic.make 0
let ftran_dense = Atomic.make 0
let btran_sparse = Atomic.make 0
let btran_dense = Atomic.make 0
let devex_resets = Atomic.make 0
let cand_refreshes = Atomic.make 0
let edit_solves = Atomic.make 0
let edit_warm = Atomic.make 0
let edit_fallbacks = Atomic.make 0
let ft_updates = Atomic.make 0
let scale_passes = Atomic.make 0
let small_dense_solves = Atomic.make 0
let obj_mode_switches = Atomic.make 0
let reclaim_passes = Atomic.make 0
let dw_iterations = Atomic.make 0
let dw_subproblem_solves = Atomic.make 0
let dw_master_resolves = Atomic.make 0
let dw_crossover_fallbacks = Atomic.make 0
let wall_ns = Atomic.make 0

(* Float max over pool domains: CAS retry loop.  [compare_and_set]
   compares the boxed float physically, and the expected value is the
   very box [get] returned, so the loop is exact. *)
let fill_ratio_max_a = Atomic.make 0.0

let rec note_fill_ratio f =
  let cur = Atomic.get fill_ratio_max_a in
  if f > cur && not (Atomic.compare_and_set fill_ratio_max_a cur f) then
    note_fill_ratio f

(* Float accumulators (joules reclaimed / joules seen by the reclaim
   passes), same CAS-retry discipline as the fill-ratio max. *)
let reclaimed_j_a = Atomic.make 0.0
let reclaim_base_j_a = Atomic.make 0.0

let rec atomic_add_float a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

let reset () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      solves;
      warm_solves;
      warm_fallbacks;
      pivots;
      dual_pivots;
      bound_flips;
      factorizations;
      ftran_sparse;
      ftran_dense;
      btran_sparse;
      btran_dense;
      devex_resets;
      cand_refreshes;
      edit_solves;
      edit_warm;
      edit_fallbacks;
      ft_updates;
      scale_passes;
      small_dense_solves;
      obj_mode_switches;
      reclaim_passes;
      dw_iterations;
      dw_subproblem_solves;
      dw_master_resolves;
      dw_crossover_fallbacks;
      wall_ns;
    ];
  Atomic.set fill_ratio_max_a 0.0;
  Atomic.set reclaimed_j_a 0.0;
  Atomic.set reclaim_base_j_a 0.0

let note_fallback () = ignore (Atomic.fetch_and_add warm_fallbacks 1)

let note_edit ~warm ~fallback =
  ignore (Atomic.fetch_and_add edit_solves 1);
  if warm then ignore (Atomic.fetch_and_add edit_warm 1);
  if fallback then ignore (Atomic.fetch_and_add edit_fallbacks 1)

let note_solve ~warm ~iterations ~dual ~flips ~factors ~wall =
  ignore (Atomic.fetch_and_add solves 1);
  if warm then ignore (Atomic.fetch_and_add warm_solves 1);
  ignore (Atomic.fetch_and_add pivots iterations);
  ignore (Atomic.fetch_and_add dual_pivots dual);
  ignore (Atomic.fetch_and_add bound_flips flips);
  ignore (Atomic.fetch_and_add factorizations factors);
  ignore (Atomic.fetch_and_add wall_ns (int_of_float (wall *. 1e9)))

(* Kernel-level counters are accumulated locally per solve (the hot
   loops must not touch shared cache lines) and flushed here once. *)
let note_kernels ~ftran_sp ~ftran_dn ~btran_sp ~btran_dn ~resets ~refreshes =
  ignore (Atomic.fetch_and_add ftran_sparse ftran_sp);
  ignore (Atomic.fetch_and_add ftran_dense ftran_dn);
  ignore (Atomic.fetch_and_add btran_sparse btran_sp);
  ignore (Atomic.fetch_and_add btran_dense btran_dn);
  ignore (Atomic.fetch_and_add devex_resets resets);
  ignore (Atomic.fetch_and_add cand_refreshes refreshes)

let note_ft ~updates ~fill_max ~small_dense =
  ignore (Atomic.fetch_and_add ft_updates updates);
  ignore (Atomic.fetch_and_add small_dense_solves small_dense);
  note_fill_ratio fill_max

let note_scale_pass () = ignore (Atomic.fetch_and_add scale_passes 1)
let note_dw_iteration () = ignore (Atomic.fetch_and_add dw_iterations 1)

let note_dw_subproblem () =
  ignore (Atomic.fetch_and_add dw_subproblem_solves 1)

let note_dw_master () = ignore (Atomic.fetch_and_add dw_master_resolves 1)

let note_dw_crossover_fallback () =
  ignore (Atomic.fetch_and_add dw_crossover_fallbacks 1)

let note_mode_switch () = ignore (Atomic.fetch_and_add obj_mode_switches 1)

let note_reclaim ~base_j ~reclaimed_j =
  ignore (Atomic.fetch_and_add reclaim_passes 1);
  atomic_add_float reclaim_base_j_a base_j;
  atomic_add_float reclaimed_j_a reclaimed_j

let snapshot () =
  let solves = Atomic.get solves
  and warm_solves = Atomic.get warm_solves
  and pivots = Atomic.get pivots
  and dual_pivots = Atomic.get dual_pivots in
  {
    solves;
    cold_solves = solves - warm_solves;
    warm_solves;
    warm_fallbacks = Atomic.get warm_fallbacks;
    pivots;
    primal_pivots = pivots - dual_pivots;
    dual_pivots;
    bound_flips = Atomic.get bound_flips;
    factorizations = Atomic.get factorizations;
    ftran_sparse = Atomic.get ftran_sparse;
    ftran_dense = Atomic.get ftran_dense;
    btran_sparse = Atomic.get btran_sparse;
    btran_dense = Atomic.get btran_dense;
    devex_resets = Atomic.get devex_resets;
    cand_refreshes = Atomic.get cand_refreshes;
    edit_solves = Atomic.get edit_solves;
    edit_warm = Atomic.get edit_warm;
    edit_fallbacks = Atomic.get edit_fallbacks;
    ft_updates = Atomic.get ft_updates;
    refactorizations = Atomic.get factorizations;
    fill_ratio_max = Atomic.get fill_ratio_max_a;
    scale_passes = Atomic.get scale_passes;
    small_dense_solves = Atomic.get small_dense_solves;
    obj_mode_switches = Atomic.get obj_mode_switches;
    reclaim_passes = Atomic.get reclaim_passes;
    dw_iterations = Atomic.get dw_iterations;
    dw_subproblem_solves = Atomic.get dw_subproblem_solves;
    dw_master_resolves = Atomic.get dw_master_resolves;
    dw_crossover_fallbacks = Atomic.get dw_crossover_fallbacks;
    reclaimed_joules_pct =
      (let base = Atomic.get reclaim_base_j_a in
       if base > 0.0 then 100.0 *. Atomic.get reclaimed_j_a /. base else 0.0);
    wall_s = Float.of_int (Atomic.get wall_ns) *. 1e-9;
  }

(* Stats provider: the same counters, machine-readable, for the unified
   [--stats-json] dump. *)
let () =
  Putil.Obs.register_stats ~name:"lp" (fun () ->
      let s = snapshot () in
      Putil.Obs.Assoc
        [
          ("solves", Putil.Obs.Int s.solves);
          ("cold_solves", Putil.Obs.Int s.cold_solves);
          ("warm_solves", Putil.Obs.Int s.warm_solves);
          ("warm_fallbacks", Putil.Obs.Int s.warm_fallbacks);
          ("pivots", Putil.Obs.Int s.pivots);
          ("primal_pivots", Putil.Obs.Int s.primal_pivots);
          ("dual_pivots", Putil.Obs.Int s.dual_pivots);
          ("bound_flips", Putil.Obs.Int s.bound_flips);
          ("factorizations", Putil.Obs.Int s.factorizations);
          ("ftran_sparse", Putil.Obs.Int s.ftran_sparse);
          ("ftran_dense", Putil.Obs.Int s.ftran_dense);
          ("btran_sparse", Putil.Obs.Int s.btran_sparse);
          ("btran_dense", Putil.Obs.Int s.btran_dense);
          ("devex_resets", Putil.Obs.Int s.devex_resets);
          ("cand_refreshes", Putil.Obs.Int s.cand_refreshes);
          ("edit_solves", Putil.Obs.Int s.edit_solves);
          ("edit_warm", Putil.Obs.Int s.edit_warm);
          ("edit_fallbacks", Putil.Obs.Int s.edit_fallbacks);
          ("ft_updates", Putil.Obs.Int s.ft_updates);
          ("refactorizations", Putil.Obs.Int s.refactorizations);
          ("fill_ratio_max", Putil.Obs.Float s.fill_ratio_max);
          ("scale_passes", Putil.Obs.Int s.scale_passes);
          ("small_dense_solves", Putil.Obs.Int s.small_dense_solves);
          ("obj_mode_switches", Putil.Obs.Int s.obj_mode_switches);
          ("reclaim_passes", Putil.Obs.Int s.reclaim_passes);
          ("reclaimed_joules_pct", Putil.Obs.Float s.reclaimed_joules_pct);
          ("dw_iterations", Putil.Obs.Int s.dw_iterations);
          ("dw_subproblem_solves", Putil.Obs.Int s.dw_subproblem_solves);
          ("dw_master_resolves", Putil.Obs.Int s.dw_master_resolves);
          ("dw_crossover_fallbacks", Putil.Obs.Int s.dw_crossover_fallbacks);
          ("wall_s", Putil.Obs.Float s.wall_s);
        ])

let pp ppf (s : snapshot) =
  Fmt.pf ppf
    "%d solves (%d cold, %d warm, %d fallbacks), %d pivots (%d primal, %d \
     dual, %d flips), %d factorizations, %.3f s"
    s.solves s.cold_solves s.warm_solves s.warm_fallbacks s.pivots
    s.primal_pivots s.dual_pivots s.bound_flips s.factorizations s.wall_s;
  if s.dw_iterations > 0 || s.dw_crossover_fallbacks > 0 then
    Fmt.pf ppf ", dw: %d iters (%d subproblems, %d masters, %d fallbacks)"
      s.dw_iterations s.dw_subproblem_solves s.dw_master_resolves
      s.dw_crossover_fallbacks
