(** Process-wide solver counters (atomic, shared across pool domains).

    {!Revised.solve} reports every solve here: cold vs warm start, the
    primal/dual pivot split, bound flips, basis factorizations and wall
    time.  The benchmark harness snapshots the counters around each
    experiment, and [warmbench] uses them to quantify what warm starts
    save.  Counters are process-global: reset before the region you want
    to measure. *)

type snapshot = {
  solves : int;
  cold_solves : int;
  warm_solves : int;  (** solves that ran from a caller-supplied basis *)
  warm_fallbacks : int;
      (** warm attempts abandoned for a cold phase-1/2 restart *)
  pivots : int;  (** total simplex iterations, primal + dual *)
  primal_pivots : int;
  dual_pivots : int;
  bound_flips : int;  (** dual-ratio-test flips (no basis change) *)
  factorizations : int;
  wall_s : float;  (** summed wall time inside {!Revised.solve} *)
}

let solves = Atomic.make 0
let warm_solves = Atomic.make 0
let warm_fallbacks = Atomic.make 0
let pivots = Atomic.make 0
let dual_pivots = Atomic.make 0
let bound_flips = Atomic.make 0
let factorizations = Atomic.make 0
let wall_ns = Atomic.make 0

let reset () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      solves;
      warm_solves;
      warm_fallbacks;
      pivots;
      dual_pivots;
      bound_flips;
      factorizations;
      wall_ns;
    ]

let note_fallback () = ignore (Atomic.fetch_and_add warm_fallbacks 1)

let note_solve ~warm ~iterations ~dual ~flips ~factors ~wall =
  ignore (Atomic.fetch_and_add solves 1);
  if warm then ignore (Atomic.fetch_and_add warm_solves 1);
  ignore (Atomic.fetch_and_add pivots iterations);
  ignore (Atomic.fetch_and_add dual_pivots dual);
  ignore (Atomic.fetch_and_add bound_flips flips);
  ignore (Atomic.fetch_and_add factorizations factors);
  ignore (Atomic.fetch_and_add wall_ns (int_of_float (wall *. 1e9)))

let snapshot () =
  let solves = Atomic.get solves
  and warm_solves = Atomic.get warm_solves
  and pivots = Atomic.get pivots
  and dual_pivots = Atomic.get dual_pivots in
  {
    solves;
    cold_solves = solves - warm_solves;
    warm_solves;
    warm_fallbacks = Atomic.get warm_fallbacks;
    pivots;
    primal_pivots = pivots - dual_pivots;
    dual_pivots;
    bound_flips = Atomic.get bound_flips;
    factorizations = Atomic.get factorizations;
    wall_s = Float.of_int (Atomic.get wall_ns) *. 1e-9;
  }

(* Stats provider: the same counters, machine-readable, for the unified
   [--stats-json] dump. *)
let () =
  Putil.Obs.register_stats ~name:"lp" (fun () ->
      let s = snapshot () in
      Putil.Obs.Assoc
        [
          ("solves", Putil.Obs.Int s.solves);
          ("cold_solves", Putil.Obs.Int s.cold_solves);
          ("warm_solves", Putil.Obs.Int s.warm_solves);
          ("warm_fallbacks", Putil.Obs.Int s.warm_fallbacks);
          ("pivots", Putil.Obs.Int s.pivots);
          ("primal_pivots", Putil.Obs.Int s.primal_pivots);
          ("dual_pivots", Putil.Obs.Int s.dual_pivots);
          ("bound_flips", Putil.Obs.Int s.bound_flips);
          ("factorizations", Putil.Obs.Int s.factorizations);
          ("wall_s", Putil.Obs.Float s.wall_s);
        ])

let pp ppf (s : snapshot) =
  Fmt.pf ppf
    "%d solves (%d cold, %d warm, %d fallbacks), %d pivots (%d primal, %d \
     dual, %d flips), %d factorizations, %.3f s"
    s.solves s.cold_solves s.warm_solves s.warm_fallbacks s.pivots
    s.primal_pivots s.dual_pivots s.bound_flips s.factorizations s.wall_s
