(** Dantzig–Wolfe decomposition for block-angular LPs.

    The event LP couples per-rank column groups (configuration weights
    and per-rank vertex times, with their private convexity/blend rows)
    only through job-wide rows: power caps, precedence/order rows over
    shared vertices, the deadline row.  {!solve} exploits that
    structure by column generation — a restricted master over the
    coupling rows plus one convexity row per block, and one small
    pricing LP per block, solved concurrently on {!Putil.Pool} with
    per-block warm bases (structure never changes, only objectives).
    Proposals are merged in block order regardless of completion order,
    so iterates are identical at every [POWERLIM_JOBS].

    On convergence the aggregated point is crossed over to a monolithic
    basis and certified by one warm {!Revised.solve} of the original
    problem at full precision; on {e any} trouble the monolithic solver
    is re-run instead.  [POWERLIM_DW=0/1] can therefore differ only in
    speed, never in results.

    Knobs: [POWERLIM_DW] (default on) gates the whole path;
    [POWERLIM_DW_MIN_RANKS] (default 512) is the minimum block count
    below which the monolithic path runs unchanged. *)

type structure = {
  col_block : int array;
      (** per structural column: owning block in [0 .. nblocks-1], or
          [-1] for a shared column (may appear in coupling rows) *)
  nblocks : int;  (** block count (typically the rank count) *)
  box : float;
      (** finite stand-in for infinite column bounds inside the pricing
          subproblems, keeping every block LP bounded.  Affects only
          convergence speed: the final certified solve uses the true
          bounds. *)
  guard_rows : int array;
      (** rows whose all-slack (zero-dual) state marks the instance as
          unconstrained-degenerate; the decomposition then defers to the
          monolithic solver so alternate-optimum vertex selection
          matches [POWERLIM_DW=0] (the convention
          {!Experiments.Common.run_sweep} uses for unconstraining
          caps).  Empty disables the guard. *)
}

val structure :
  ?box:float -> ?guard_rows:int array -> nblocks:int -> int array -> structure
(** [structure ~nblocks col_block] with [box] defaulting to [1e9] and no
    guard rows. *)

val dw_enabled : unit -> bool
(** Current value of the [POWERLIM_DW] gate (default on). *)

val dw_min_ranks : unit -> int
(** Current value of [POWERLIM_DW_MIN_RANKS] (default 512, min 1). *)

val dw_gap : unit -> float
(** Current value of [POWERLIM_DW_GAP] (default [1e-4]): the relative
    Lagrangian gap at which column generation hands over to the exact
    crossover solve.  Only trades master iterations against crossover
    pivots; the result is certified at full precision either way. *)

val engaged : structure -> Model.problem -> bool
(** Whether {!solve} would attempt the decomposition for this structure
    and problem under the current environment knobs (before the
    per-call [warm]/[lb]/[ub] checks). *)

val solve :
  ?max_iter:int ->
  ?feas_tol:float ->
  ?opt_tol:float ->
  ?lb:float array ->
  ?ub:float array ->
  ?rhs:float array ->
  ?warm:Revised.basis ->
  ?analysis:Revised.analysis ->
  ?bands:int array * int array ->
  ?structure:structure ->
  Model.problem ->
  Revised.result
(** Drop-in superset of {!Revised.solve}: identical contract and result,
    plus [structure].  The decomposition engages only for a cold solve
    ([warm] absent, no bound overrides) of a continuous problem with at
    least [POWERLIM_DW_MIN_RANKS] blocks under [POWERLIM_DW=1]; in
    every other case — including any failure or degeneracy detected
    mid-decomposition — the call behaves exactly like
    {!Revised.solve}. *)
