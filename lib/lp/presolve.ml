(** LP presolve: standard reductions applied before the simplex.

    Implemented reductions (applied to fixpoint):
    - {b fixed variables} ([lb = ub]): substituted into every row;
    - {b empty rows}: checked for trivial consistency and dropped;
    - {b singleton rows} (one structural variable): converted into a
      bound tightening and dropped;
    - {b doubleton equality rows} ([a x + b y = c]): [x] is eliminated by
      the substitution [x = (c - b y) / a], with its bounds transferred
      onto [y] — this is the reduction that collapses the event LP's
      equality-tied vertex pairs (equation (13) rows);
    - {b empty columns}: moved to their best bound by objective sign.

    The reduced problem is solved with {!Revised} and the solution mapped
    back to the original variable space. *)

(* Per-variable disposition after presolve. *)
type vstate =
  | Kept
  | Fixed of float
  | Subst of { of_var : int; scale : float; offset : float }
      (** var = offset + scale * of_var *)

type reduction = {
  problem : Model.problem;  (** the reduced problem *)
  keep_vars : int array;  (** reduced column -> original column *)
  state : vstate array;  (** per original column *)
  kept_rows : int array;  (** reduced row -> original row *)
  dropped_rows : int;
  dropped_cols : int;
  subst_order : int list;
      (** substituted variables, oldest first; restore applies them
          newest-first *)
  row_scale : float array;
      (** per reduced row: the equilibration factor its scaled row was
          multiplied by (all 1.0 when scaling is off) *)
  col_scale : float array;
      (** per reduced column: original x = col_scale * scaled x *)
}

type outcome = Reduced of reduction | Proven_infeasible

let tol = 1e-9

(* Row/column geometric-mean equilibration (POWERLIM_SCALE=0 disables).
   Scale factors are rounded to powers of two, so applying and removing
   them only shifts exponents: the solution reported in original units
   is bit-for-bit the unscaling of the solved point, and RHS deltas
   patched through [solve_reduction] distribute exactly. *)
let scale_enabled () = Putil.Env.flag "POWERLIM_SCALE" ~default:true

(* Alternate row and column passes on the log2 magnitudes until every
   rounded geometric mean is 2^0 (or the pass budget runs out); each
   side's factor is the power of two nearest the reciprocal mean of its
   current scaled magnitudes.  Integer columns keep factor 1 — scaling
   them would re-grid their domain. *)
let equilibrate (p : Model.problem) : float array * float array =
  let nr = p.Model.nr and nv = p.Model.nv in
  let a = p.Model.a in
  let colptr = a.Sparse.Csc.colptr
  and rowind = a.Sparse.Csc.rowind
  and values = a.Sparse.Csc.values in
  let nnz = colptr.(nv) in
  let lg = Array.make nnz 0.0 in
  for k = 0 to nnz - 1 do
    let v = Float.abs values.(k) in
    lg.(k) <- (if v > 0.0 then Float.log2 v else 0.0)
  done;
  let er = Array.make nr 0 and ec = Array.make nv 0 in
  let rsum = Array.make nr 0.0 and rcnt = Array.make nr 0 in
  let clamp e = if e > 512 then 512 else if e < -512 then -512 else e in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 10 do
    incr passes;
    Stats.note_scale_pass ();
    changed := false;
    Array.fill rsum 0 nr 0.0;
    Array.fill rcnt 0 nr 0;
    for j = 0 to nv - 1 do
      for k = colptr.(j) to colptr.(j + 1) - 1 do
        if values.(k) <> 0.0 then begin
          let i = rowind.(k) in
          rsum.(i) <- rsum.(i) +. lg.(k) +. Float.of_int (ec.(j) + er.(i));
          rcnt.(i) <- rcnt.(i) + 1
        end
      done
    done;
    for i = 0 to nr - 1 do
      if rcnt.(i) > 0 then begin
        let adj =
          -Float.to_int (Float.round (rsum.(i) /. Float.of_int rcnt.(i)))
        in
        if adj <> 0 then begin
          er.(i) <- clamp (er.(i) + adj);
          changed := true
        end
      end
    done;
    for j = 0 to nv - 1 do
      if not p.Model.integer.(j) then begin
        let s = ref 0.0 and c = ref 0 in
        for k = colptr.(j) to colptr.(j + 1) - 1 do
          if values.(k) <> 0.0 then begin
            s := !s +. lg.(k) +. Float.of_int (ec.(j) + er.(rowind.(k)));
            incr c
          end
        done;
        if !c > 0 then begin
          let adj = -Float.to_int (Float.round (!s /. Float.of_int !c)) in
          if adj <> 0 then begin
            ec.(j) <- clamp (ec.(j) + adj);
            changed := true
          end
        end
      end
    done
  done;
  ( Array.map (fun e -> Float.ldexp 1.0 e) er,
    Array.map (fun e -> Float.ldexp 1.0 e) ec )

(* The scaled problem shares the matrix structure; only values, bounds,
   objective and RHS change.  With x = C x': A' = R A C, b' = R b,
   obj' = C obj, bounds' = bounds / C. *)
let apply_scaling (p : Model.problem) (rs : float array) (cs : float array) :
    Model.problem =
  let a = p.Model.a in
  let nv = p.Model.nv in
  let colptr = a.Sparse.Csc.colptr in
  let values = Array.copy a.Sparse.Csc.values in
  for j = 0 to nv - 1 do
    for k = colptr.(j) to colptr.(j + 1) - 1 do
      values.(k) <- values.(k) *. rs.(a.Sparse.Csc.rowind.(k)) *. cs.(j)
    done
  done;
  {
    p with
    Model.a = { a with Sparse.Csc.values };
    lb = Array.mapi (fun j v -> v /. cs.(j)) p.Model.lb;
    ub = Array.mapi (fun j v -> v /. cs.(j)) p.Model.ub;
    obj = Array.mapi (fun j v -> v *. cs.(j)) p.Model.obj;
    row_rhs = Array.mapi (fun i v -> v *. rs.(i)) p.Model.row_rhs;
  }

(* Tighten [lo, hi] with a new bound pair; returns None on conflict. *)
let tighten (lo, hi) lo' hi' =
  let lo = max lo lo' and hi = min hi hi' in
  if lo > hi +. 1e-7 then None else Some (lo, min hi (max lo hi))

let reduce (p : Model.problem) : outcome =
  let nv = p.Model.nv and nr = p.Model.nr in
  let lo = Array.copy p.Model.lb and hi = Array.copy p.Model.ub in
  let obj = Array.copy p.Model.obj in
  let row_alive = Array.make nr true in
  let infeasible = ref false in
  (* Row-oriented working copy of the matrix. *)
  let rows : (int * float) list array = Array.make nr [] in
  let col_rows : int list array = Array.make nv [] in
  for j = 0 to nv - 1 do
    Sparse.Csc.iter_col p.Model.a j (fun i v ->
        rows.(i) <- (j, v) :: rows.(i);
        col_rows.(j) <- i :: col_rows.(j))
  done;
  let rhs = Array.copy p.Model.row_rhs in
  let state = Array.make nv Kept in
  let subst_order = ref [] in
  let gone j = state.(j) <> Kept in
  (* Remove variable [j] from row [i], returning its (merged) coefficient. *)
  let take_out i j =
    let coeff = ref 0.0 in
    rows.(i) <-
      List.filter
        (fun (j', c) ->
          if j' = j then begin
            coeff := !coeff +. c;
            false
          end
          else true)
        rows.(i);
    !coeff
  in
  let merge_term i j c =
    if c <> 0.0 then begin
      let existing = take_out i j in
      let c = c +. existing in
      if Float.abs c > 1e-13 then begin
        rows.(i) <- (j, c) :: rows.(i);
        if not (List.mem i col_rows.(j)) then col_rows.(j) <- i :: col_rows.(j)
      end
    end
  in
  let fix j v =
    if not (gone j) then begin
      state.(j) <- Fixed v;
      List.iter
        (fun i ->
          if row_alive.(i) then begin
            let coeff = take_out i j in
            rhs.(i) <- rhs.(i) -. (coeff *. v)
          end)
        col_rows.(j)
    end
  in
  (* Eliminate [x] via [x = offset + scale * y]. *)
  let substitute x ~y ~scale ~offset =
    state.(x) <- Subst { of_var = y; scale; offset };
    subst_order := x :: !subst_order;
    (* transfer x's bounds onto y *)
    let bl, bh =
      if scale > 0.0 then
        ((lo.(x) -. offset) /. scale, (hi.(x) -. offset) /. scale)
      else ((hi.(x) -. offset) /. scale, (lo.(x) -. offset) /. scale)
    in
    (match tighten (lo.(y), hi.(y)) bl bh with
    | None -> infeasible := true
    | Some (l, h) ->
        lo.(y) <- l;
        hi.(y) <- h);
    (* rewrite every row containing x *)
    List.iter
      (fun i ->
        if row_alive.(i) then begin
          let coeff = take_out i x in
          if coeff <> 0.0 then begin
            rhs.(i) <- rhs.(i) -. (coeff *. offset);
            merge_term i y (coeff *. scale)
          end
        end)
      col_rows.(x);
    (* objective: obj_x * x = obj_x * offset (constant) + obj_x*scale * y *)
    obj.(y) <- obj.(y) +. (obj.(x) *. scale);
    obj.(x) <- 0.0
  in
  let changed = ref true in
  while !changed && not !infeasible do
    changed := false;
    (* fixed variables *)
    for j = 0 to nv - 1 do
      if (not (gone j)) && hi.(j) -. lo.(j) <= tol then begin
        fix j lo.(j);
        changed := true
      end
    done;
    (* empty / singleton / doubleton-equality rows *)
    for i = 0 to nr - 1 do
      if row_alive.(i) && not !infeasible then begin
        match rows.(i) with
        | [] ->
            let ok =
              match p.Model.row_sense.(i) with
              | Model.Le -> rhs.(i) >= -.1e-7
              | Model.Ge -> rhs.(i) <= 1e-7
              | Model.Eq -> Float.abs rhs.(i) <= 1e-7
            in
            if not ok then infeasible := true;
            row_alive.(i) <- false;
            changed := true
        | [ (j, c) ] when not (gone j) ->
            let b = rhs.(i) /. c in
            let bounds =
              match (p.Model.row_sense.(i), c > 0.0) with
              | Model.Le, true | Model.Ge, false -> (Float.neg_infinity, b)
              | Model.Ge, true | Model.Le, false -> (b, Float.infinity)
              | Model.Eq, _ -> (b, b)
            in
            (match tighten (lo.(j), hi.(j)) (fst bounds) (snd bounds) with
            | None -> infeasible := true
            | Some (l, h) ->
                lo.(j) <- l;
                hi.(j) <- h);
            row_alive.(i) <- false;
            changed := true
        | [ (x, a); (y, b) ]
          when p.Model.row_sense.(i) = Model.Eq
               && (not (gone x))
               && (not (gone y))
               && (not p.Model.integer.(x))
               && not p.Model.integer.(y) ->
            (* a x + b y = c: eliminate the larger-coefficient variable *)
            let x, a, y, b =
              if Float.abs a >= Float.abs b then (x, a, y, b) else (y, b, x, a)
            in
            if Float.abs a > 1e-9 then begin
              row_alive.(i) <- false;
              substitute x ~y ~scale:(-.b /. a) ~offset:(rhs.(i) /. a);
              changed := true
            end
        | _ -> ()
      end
    done;
    (* empty columns *)
    for j = 0 to nv - 1 do
      if (not (gone j)) && not p.Model.integer.(j) then begin
        let still_present =
          List.exists
            (fun i ->
              row_alive.(i) && List.exists (fun (j', _) -> j' = j) rows.(i))
            col_rows.(j)
        in
        if not still_present then begin
          let c = obj.(j) in
          let v =
            if c > 0.0 then lo.(j)
            else if c < 0.0 then hi.(j)
            else if Float.is_finite lo.(j) then lo.(j)
            else min hi.(j) 0.0
          in
          if Float.is_finite v then begin
            fix j v;
            changed := true
          end
          (* otherwise: unbounded direction; left for the simplex *)
        end
      end
    done
  done;
  if !infeasible then Proven_infeasible
  else begin
    let keep_vars =
      Array.of_list
        (List.filter (fun j -> state.(j) = Kept) (List.init nv Fun.id))
    in
    let new_index = Array.make nv (-1) in
    Array.iteri (fun k j -> new_index.(j) <- k) keep_vars;
    let kept_rows =
      Array.of_list (List.filter (fun i -> row_alive.(i)) (List.init nr Fun.id))
    in
    let m = Model.create () in
    Array.iter
      (fun j ->
        ignore
          (Model.add_var m ~lb:lo.(j) ~ub:hi.(j) ~obj:obj.(j)
             ~integer:p.Model.integer.(j) p.Model.var_names.(j)))
      keep_vars;
    Array.iter
      (fun i ->
        let terms = List.map (fun (j, c) -> (c, new_index.(j))) rows.(i) in
        Model.add_constr m ~name:p.Model.row_names.(i) terms
          p.Model.row_sense.(i) rhs.(i))
      kept_rows;
    let problem = Model.compile m in
    let scale =
      scale_enabled () && problem.Model.nr > 0 && problem.Model.nv > 0
    in
    let row_scale, col_scale =
      if scale then equilibrate problem
      else
        (Array.make problem.Model.nr 1.0, Array.make problem.Model.nv 1.0)
    in
    let problem =
      if scale then apply_scaling problem row_scale col_scale else problem
    in
    Reduced
      {
        problem;
        keep_vars;
        state;
        kept_rows;
        dropped_rows = nr - Array.length kept_rows;
        dropped_cols = nv - Array.length keep_vars;
        subst_order = List.rev !subst_order;
        row_scale;
        col_scale;
      }
  end

(** Map a reduced-space solution back to the original variables.  [x] is
    in the {e scaled} reduced space (as returned by solving
    [r.problem]); unscaling by a power of two is exact, so the original
    units come out bit-for-bit. *)
let restore (r : reduction) (x : float array) : float array =
  let nv = Array.length r.state in
  let out = Array.make nv Float.nan in
  Array.iteri (fun k j -> out.(j) <- r.col_scale.(k) *. x.(k)) r.keep_vars;
  Array.iteri
    (fun j st -> match st with Fixed v -> out.(j) <- v | _ -> ())
    r.state;
  (* Substitutions resolve newest-first: a variable's target was
     eliminated no later than itself, so its value is already known. *)
  List.iter
    (fun j ->
      match r.state.(j) with
      | Subst { of_var; scale; offset } ->
          out.(j) <- offset +. (scale *. out.(of_var))
      | Kept | Fixed _ -> assert false)
    (List.rev r.subst_order);
  out

(** Objective contribution of the variables presolve eliminated. *)
let fixed_objective (p : Model.problem) (r : reduction) =
  let s = ref 0.0 in
  Array.iteri
    (fun j st ->
      match st with
      | Fixed v -> s := !s +. (p.Model.obj.(j) *. v)
      | Kept | Subst _ -> ())
    r.state;
  !s

(** [solve_reduction p r] solves a previously computed reduction of [p]
    and maps the solution back to the original space — the re-solve path
    behind {!Core.Event_lp.solve_prepared}.

    [rhs] overrides the {e original-space} row RHS: each kept row's
    reduced RHS is patched by the delta against [p.row_rhs].  This is
    only sound when the changed rows were kept by the reduction and the
    RHS change cannot alter any reduction decision (the caller's
    responsibility; {!Core.Event_lp.prepare} checks that every power row
    survived).  [warm] is a {e reduced-space} basis from a previous
    [solve_reduction] on the same reduction; the returned result's
    [basis] field is likewise in the reduced space.  [analysis] is a
    {!Revised.make_analysis} of the {e reduced} problem, reusable
    because bound/RHS-only re-solves never change the reduced matrix. *)
let solve_reduction ?max_iter ?feas_tol ?opt_tol ?rhs ?warm ?analysis ?bands
    ?structure (p : Model.problem) (r : reduction) : Revised.result =
  (* Staircase bands arrive in the original space; surviving columns
     and rows keep their stage index. *)
  let red_bands =
    match bands with
    | None -> None
    | Some (cb, rb) ->
        Some
          ( Array.map (fun j -> cb.(j)) r.keep_vars,
            Array.map (fun i -> rb.(i)) r.kept_rows )
  in
  let red_rhs =
    match rhs with
    | None -> None
    | Some new_rhs ->
        let b = Array.copy r.problem.Model.row_rhs in
        Array.iteri
          (fun k i ->
            let delta = new_rhs.(i) -. p.Model.row_rhs.(i) in
            if delta <> 0.0 then b.(k) <- b.(k) +. (r.row_scale.(k) *. delta))
          r.kept_rows;
        Some b
  in
  (* Block structure maps through the reduction like the bands do:
     surviving columns keep their block tag, guard rows their index.
     The pricing box is widened by the worst column downscaling so a
     scaled column can still reach its original-unit bound. *)
  let red_structure =
    match structure with
    | None -> None
    | Some s ->
        let row_pos = Array.make p.Model.nr (-1) in
        Array.iteri (fun k i -> row_pos.(i) <- k) r.kept_rows;
        let inv_scale =
          Array.fold_left
            (fun m c -> Float.max m (1.0 /. c))
            1.0 r.col_scale
        in
        Some
          {
            s with
            Decomp.col_block =
              Array.map (fun j -> s.Decomp.col_block.(j)) r.keep_vars;
            box = s.Decomp.box *. inv_scale;
            guard_rows =
              Array.to_list s.Decomp.guard_rows
              |> List.filter_map (fun i ->
                     if row_pos.(i) >= 0 then Some row_pos.(i) else None)
              |> Array.of_list;
          }
  in
  let res =
    Decomp.solve ?max_iter ?feas_tol ?opt_tol ?rhs:red_rhs ?warm ?analysis
      ?bands:red_bands ?structure:red_structure r.problem
  in
  let x =
    match res.Revised.status with
    | Revised.Optimal -> restore r res.Revised.x
    | _ -> Array.make p.Model.nv 0.0
  in
  let y = Array.make p.Model.nr 0.0 in
  (* duals unscale opposite to the primal: y = R y', dj = dj' / C *)
  Array.iteri
    (fun k i -> y.(i) <- r.row_scale.(k) *. res.Revised.y.(k))
    r.kept_rows;
  let dj = Array.mapi (fun k d -> d /. r.col_scale.(k)) res.Revised.dj in
  {
    res with
    Revised.x;
    y;
    dj;
    objective =
      (match res.Revised.status with
      | Revised.Optimal -> Model.objective_value p x
      | _ -> res.Revised.objective);
  }

(** Presolve, solve with {!Revised}, and restore: a drop-in replacement
    for {!Revised.solve} on models without integer variables. *)
let solve ?max_iter ?feas_tol ?opt_tol (p : Model.problem) : Revised.result =
  match reduce p with
  | Proven_infeasible ->
      {
        Revised.status = Revised.Infeasible;
        objective = 0.0;
        x = Array.make p.Model.nv 0.0;
        y = Array.make p.Model.nr 0.0;
        dj = Array.copy p.Model.obj;
        iterations = 0;
        basis = None;
      }
  | Reduced r ->
      let res = solve_reduction ?max_iter ?feas_tol ?opt_tol p r in
      (* the embedded basis lives in the reduced space; a one-shot solve
         has no re-solve to feed it to, so drop it to avoid misuse *)
      { res with Revised.basis = None }
