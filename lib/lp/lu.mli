(** Sparse LU factorization of a simplex basis.

    Left-looking column factorization in the style of Gilbert–Peierls,
    with two fill-control measures that matter enormously on LP bases:
    columns are pre-ordered sparsest-first, and pivots use threshold
    partial pivoting (sparsest row within 10x of the max magnitude).
    Singular columns are replaced by unit columns of uncovered rows so a
    usable factorization is always produced; callers repair their basis
    from [replaced]. *)

type tsym = {
  cpos : int array;  (** inverse of [cperm] *)
  usucc_ptr : int array;
  usucc_ind : int array;
      (** structure-only transpose of [urows]: successors of each pivot
          position in the U^T forward solve *)
  lsucc_ptr : int array;
  lsucc_ind : int array;  (** likewise for [lrows] / the L^T solve *)
}
(** Symbolic transpose structure, built lazily for {!solve_t_sp}. *)

type t = {
  m : int;
  p : int array;  (** [p.(k)] = original row pivoted at step [k] *)
  pos : int array;  (** inverse of [p] *)
  cperm : int array;
      (** [cperm.(k)] = input column factored at step [k]; columns are
          pre-ordered sparsest-first to limit fill *)
  lrows : int array array;  (** strictly-lower entries per column, pivot order *)
  lvals : float array array;
  urows : int array array;  (** strictly-upper entries per column, pivot order *)
  uvals : float array array;
  udiag : float array;
  replaced : (int * int) list;
      (** [(col, row)]: basis column [col] was singular and stands
          replaced by the unit column of original row [row] *)
  mutable tsym : tsym option;
      (** lazily-built transpose structure for the sparse BTRAN *)
}

val nnz : t -> int
(** Stored entries in both factors (including unit diagonals). *)

val factor :
  ?symbolic:bool ->
  ?bands:int array ->
  m:int ->
  (int -> (int -> float -> unit) -> unit) ->
  t
(** [factor ~m col_iter] factorizes the [m]×[m] matrix whose [k]-th
    column is enumerated by [col_iter k f].  [symbolic] (default [true])
    selects Gilbert–Peierls reachability for the per-column elimination;
    [~symbolic:false] scans every prior column instead — same floating
    point operations in the same order, so the factors are bitwise
    identical either way (it exists as the measurable pre-hypersparse
    baseline).  [?bands] assigns each input column a staircase band;
    columns are then pre-ordered band-major with sparsest-first
    (Markowitz-style) tie-breaking within a band, confining fill to the
    staircase blocks of chain-structured bases.  Omitting [?bands]
    reproduces the historical sparsest-first ordering exactly. *)

val solve : t -> b:float array -> x:float array -> scratch:float array -> unit
(** Solve [B x = b].  [b] is indexed by original rows, [x] by basis
    position; [scratch] is caller-provided workspace.  All length [m]. *)

val solve_t :
  t -> c:float array -> y:float array -> scratch:float array -> unit
(** Solve [B^T y = c].  [c] is indexed by basis position, [y] by original
    rows. *)

(** {2 Hypersparse right-hand-side solves}

    Gilbert–Peierls symbolic reachability over the L/U dependency DAG:
    the triangular sweeps visit only positions reachable from the RHS
    nonzeros, with timestamped accumulators instead of O(m) clears, and
    fall back to the dense kernels above when the reach set fills in. *)

type swork
(** Reusable workspace for {!solve_sp}/{!solve_t_sp}: timestamped value
    accumulator, reach lists, DFS stack, and dense fallback scratch.
    One per concurrent solver; valid across factorizations of the same
    dimension. *)

val make_swork : int -> swork
(** [make_swork m] allocates workspace for dimension [m]. *)

val sort_prefix : int array -> int -> unit
(** [sort_prefix a n] sorts [a.(0 .. n-1)] ascending, in place. *)

val solve_sp :
  t ->
  swork ->
  nb:int ->
  bidx:int array ->
  b:float array ->
  x:float array ->
  xind:int array ->
  int
(** [solve_sp t sw ~nb ~bidx ~b ~x ~xind] solves [B x = b] where [b] is
    dense with nonzeros exactly at the [nb] distinct original-row
    indices [bidx.(0 .. nb-1)].  Returns [-1] if the dense kernel ran
    (result filled in past the density cutoff; all of [x] is valid), or
    the support size [n]: [xind.(0 .. n-1)] lists (sorted ascending) the
    positions of all possibly-nonzero entries of [x], and [x] is written
    only there.  Callers must keep [x] all-zero outside the returned
    support between calls.  On the sparse path the numerics are bitwise
    identical to {!solve} at every listed position. *)

val solve_t_sp :
  t ->
  swork ->
  nc:int ->
  cidx:int array ->
  c:float array ->
  y:float array ->
  yind:int array ->
  int
(** [solve_t_sp t sw ~nc ~cidx ~c ~y ~yind] solves [B^T y = c] with the
    same contract as {!solve_sp}: [c] has nonzeros exactly at basis
    positions [cidx.(0 .. nc-1)]; returns [-1] (dense ran) or the
    support size with [yind] listing the original-row indices of [y]'s
    possibly-nonzero entries. *)

(** {2 Bordered basis updates}

    Kernels behind {!Edit}'s structural warm starts: evaluating a
    one-row/one-column growth or shrink of a factorized basis without
    refactorizing.  Each is one triangular solve against the existing
    factors; the returned magnitudes are the pivots the updated
    factorization would have, so a caller rejects (falls back cold) any
    pairing whose pivot is numerically tiny. *)

val unit_ftran : t -> row:int -> float array
(** [unit_ftran t ~row] = [B⁻¹ e_row], indexed by basis position: the
    bordered pivot column for deleting original row [row].  [|x.(k)|] is
    the pivot magnitude available for pairing the row deletion with the
    removal of basis position [k]. *)

val unit_btran : t -> pos:int -> float array
(** [unit_btran t ~pos] = [B⁻ᵀ e_pos], indexed by original row: the
    bordered pivot row for deleting the basis column at position [pos].
    [|y.(r)|] is the pivot available for standing row [r]'s slack in for
    the deleted column. *)

val bordered_pivot :
  t -> col:(int * float) list -> row:(int * float) list -> d:float -> float
(** [bordered_pivot t ~col ~row ~d] is the Schur-complement pivot
    [d - r ⋅ B⁻¹ c] of the bordered matrix [[B c]; [rᵀ d]]: the diagonal
    a one-row-one-column growth would pivot on.  [col] is indexed by
    original row, [row] by basis position. *)

(** {2 Forrest–Tomlin updates}

    Replacing a basis column turns one column of [U] into the FTRANed
    spike; the spiked slot is cyclically permuted to the border of the
    active elimination order and its old row of [U] is eliminated
    against the remaining rows, recording the multipliers as a {e row
    eta} applied between [L] and [U].  Row etas create no fill outside
    the eliminated row, so [U] stays sparse where product-form column
    etas accrete it — the refactorization trigger becomes a fill ratio,
    not an update count.  With zero updates every kernel replays
    {!solve}/{!solve_t} (and their sparse variants) bit for bit. *)
module Ft : sig
  type wsp
  (** Reusable m-sized workspace; one per concurrent solver, valid
      across refactorizations of the same dimension. *)

  type u
  (** An updatable factorization: a frozen {!t} plus dynamic U storage,
      the active elimination order, and the row-eta file. *)

  val make_wsp : int -> wsp

  val of_factor : wsp -> t -> u
  (** Wrap a fresh factorization.  The base [t] is not mutated and
      remains independently usable; [wsp] becomes owned by the returned
      [u] until the next [of_factor] on the same workspace. *)

  val fill_ratio : u -> float
  (** (L + dynamic U + row-eta nonzeros) / nonzeros at [of_factor]
      time; the refactorization trigger compares this against the
      [POWERLIM_REFACTOR] limit. *)

  val fill_hwm : u -> float
  (** High-water [fill_ratio] since [of_factor]. *)

  val nupdates : u -> int

  val update : u -> pos:int -> wr:float -> bool
  (** [update u ~pos ~wr] replaces the basis column at position [pos]
      by the column whose FTRAN ([keep_spike:true]) was just computed;
      [wr] is that FTRAN's value at [pos] (the pivot element).  Returns
      [false] — leaving [u] unusable, the caller must refactorize —
      when the new border diagonal is zero or fails the 1e-9
      certification against the determinant identity [d = wr · u_tt]. *)

  val ftran_d :
    u ->
    keep_spike:bool ->
    b:float array ->
    x:float array ->
    scratch:float array ->
    unit
  (** Dense FTRAN; contract of {!solve}.  [keep_spike] retains the
      post-L post-eta intermediate for a subsequent {!update}. *)

  val btran_d :
    u -> c:float array -> y:float array -> scratch:float array -> unit
  (** Dense BTRAN; contract of {!solve_t}. *)

  val ftran_sp :
    u ->
    keep_spike:bool ->
    nb:int ->
    bidx:int array ->
    b:float array ->
    x:float array ->
    xind:int array ->
    int
  (** Sparse-RHS FTRAN; contract of {!solve_sp}. *)

  val btran_sp :
    u ->
    nc:int ->
    cidx:int array ->
    c:float array ->
    y:float array ->
    yind:int array ->
    int
  (** Sparse-RHS BTRAN; contract of {!solve_t_sp}. *)
end
