(** Free-format MPS reader/writer.

    MPS is the lingua franca of LP/MIP solvers; supporting it makes the
    solver independently usable and lets any instance this repository
    produces be cross-checked against an external solver.  The supported
    subset: [NAME], [ROWS] (N/L/G/E), [COLUMNS] (with
    [MARKER]/[INTORG]/[INTEND] integrality markers), [RHS], [BOUNDS]
    (UP LO FX FR MI PL BV UI LI) and [ENDATA].  [RANGES] sections are
    rejected.  Only the first [N] row is used as the objective. *)

exception Parse_error of int * string

let parse_error line fmt = Fmt.kstr (fun s -> raise (Parse_error (line, s))) fmt

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let write put (p : Model.problem) ~name =
  put (Printf.sprintf "NAME          %s\n" name);
  put "ROWS\n";
  put " N  OBJ\n";
  Array.iteri
    (fun i sense ->
      let s =
        match sense with Model.Le -> "L" | Model.Ge -> "G" | Model.Eq -> "E"
      in
      put (Printf.sprintf " %s  R%d\n" s i))
    p.Model.row_sense;
  put "COLUMNS\n";
  let in_int = ref false in
  let marker k =
    (* called just after toggling [in_int]: entering an integer block
       emits INTORG, leaving it emits INTEND *)
    put
      (Printf.sprintf "    MARKER%d  'MARKER'  '%s'\n" k
         (if !in_int then "INTORG" else "INTEND"))
  in
  let mk = ref 0 in
  for j = 0 to p.Model.nv - 1 do
    if p.Model.integer.(j) <> !in_int then begin
      in_int := not !in_int;
      marker !mk;
      incr mk
    end;
    if p.Model.obj.(j) <> 0.0 then
      put (Printf.sprintf "    C%-8d  OBJ  %.17g\n" j p.Model.obj.(j));
    Sparse.Csc.iter_col p.Model.a j (fun i v ->
        put (Printf.sprintf "    C%-8d  R%d  %.17g\n" j i v))
  done;
  if !in_int then begin
    in_int := false;
    marker !mk
  end;
  put "RHS\n";
  Array.iteri
    (fun i b ->
      if b <> 0.0 then put (Printf.sprintf "    RHS  R%d  %.17g\n" i b))
    p.Model.row_rhs;
  put "BOUNDS\n";
  for j = 0 to p.Model.nv - 1 do
    let lb = p.Model.lb.(j) and ub = p.Model.ub.(j) in
    (* default MPS bounds are [0, +inf) *)
    if Float.is_finite lb && Float.is_finite ub && lb = ub then
      put (Printf.sprintf " FX BND  C%d  %.17g\n" j lb)
    else begin
      (match (Float.is_finite lb, lb = 0.0) with
      | true, true -> ()
      | true, false -> put (Printf.sprintf " LO BND  C%d  %.17g\n" j lb)
      | false, _ -> put (Printf.sprintf " MI BND  C%d\n" j));
      if Float.is_finite ub then
        put (Printf.sprintf " UP BND  C%d  %.17g\n" j ub)
    end
  done;
  put "ENDATA\n"

let to_string ?(name = "powerlim") (p : Model.problem) =
  let buf = Buffer.create 4096 in
  write (Buffer.add_string buf) p ~name;
  Buffer.contents buf

let to_file ?(name = "powerlim") path p =
  Putil.Fileio.with_out path (fun oc -> write (output_string oc) p ~name)

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type row_info = { sense : Model.sense option (* None = objective *) }

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let of_lines (lines : string Seq.t) : Model.problem =
  let section = ref `Preamble in
  let lineno = ref 0 in
  (* rows in declaration order *)
  let row_order : string list ref = ref [] in
  let row_info : (string, row_info) Hashtbl.t = Hashtbl.create 64 in
  let objective_row = ref None in
  (* per column: terms, integer flag, declaration order *)
  let col_order : string list ref = ref [] in
  let col_terms : (string, (string * float) list) Hashtbl.t = Hashtbl.create 64 in
  let col_int : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let rhs : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let bounds : (string, float * float) Hashtbl.t = Hashtbl.create 64 in
  let in_int = ref false in
  let ended = ref false in
  Seq.iter
    (fun raw ->
      incr lineno;
      let line =
        match String.index_opt raw '*' with
        | Some 0 -> "" (* comment line *)
        | _ -> raw
      in
      if (not !ended) && String.trim line <> "" then begin
        let is_section = line.[0] <> ' ' && line.[0] <> '\t' in
        if is_section then begin
          match tokens line with
          | "NAME" :: _ -> ()
          | [ "ROWS" ] -> section := `Rows
          | [ "COLUMNS" ] -> section := `Columns
          | [ "RHS" ] -> section := `Rhs
          | [ "BOUNDS" ] -> section := `Bounds
          | [ "RANGES" ] -> parse_error !lineno "RANGES not supported"
          | [ "ENDATA" ] -> ended := true
          | t :: _ -> parse_error !lineno "unknown section %S" t
          | [] -> ()
        end
        else begin
          match (!section, tokens line) with
          | `Rows, [ s; name ] ->
              let sense =
                match s with
                | "N" -> None
                | "L" -> Some Model.Le
                | "G" -> Some Model.Ge
                | "E" -> Some Model.Eq
                | _ -> parse_error !lineno "bad row sense %S" s
              in
              (match sense with
              | None -> if !objective_row = None then objective_row := Some name
              | Some _ -> row_order := name :: !row_order);
              Hashtbl.replace row_info name { sense }
          | `Columns, [ _; "'MARKER'"; "'INTORG'" ] -> in_int := true
          | `Columns, [ _; "'MARKER'"; "'INTEND'" ] -> in_int := false
          | `Columns, col :: rest ->
              if not (Hashtbl.mem col_terms col) then begin
                col_order := col :: !col_order;
                Hashtbl.replace col_terms col [];
                Hashtbl.replace col_int col !in_int
              end;
              let rec pairs = function
                | row :: v :: rest ->
                    let v =
                      try float_of_string v
                      with Failure _ -> parse_error !lineno "bad value %S" v
                    in
                    Hashtbl.replace col_terms col
                      ((row, v) :: Hashtbl.find col_terms col);
                    pairs rest
                | [] -> ()
                | [ _ ] -> parse_error !lineno "odd column record"
              in
              pairs rest
          | `Rhs, _ :: rest ->
              let rec pairs = function
                | row :: v :: rest ->
                    Hashtbl.replace rhs row (float_of_string v);
                    pairs rest
                | [] -> ()
                | [ _ ] -> parse_error !lineno "odd RHS record"
              in
              pairs rest
          | `Bounds, kind :: _bnd :: col :: rest -> begin
              let cur =
                match Hashtbl.find_opt bounds col with
                | Some b -> b
                | None -> (0.0, Float.infinity)
              in
              let value () =
                match rest with
                | v :: _ -> float_of_string v
                | [] -> parse_error !lineno "missing bound value"
              in
              let b =
                match kind with
                | "UP" | "UI" -> (fst cur, value ())
                | "LO" | "LI" -> (value (), snd cur)
                | "FX" ->
                    let v = value () in
                    (v, v)
                | "FR" -> (Float.neg_infinity, Float.infinity)
                | "MI" -> (Float.neg_infinity, snd cur)
                | "PL" -> (fst cur, Float.infinity)
                | "BV" ->
                    Hashtbl.replace col_int col true;
                    (0.0, 1.0)
                | k -> parse_error !lineno "bad bound kind %S" k
              in
              Hashtbl.replace bounds col b
            end
          | `Preamble, _ -> parse_error !lineno "data before any section"
          | _, [] -> ()
          | _, t :: _ -> parse_error !lineno "cannot parse record %S" t
        end
      end)
    lines;
  if not !ended then parse_error !lineno "missing ENDATA";
  let obj_row = !objective_row in
  let m = Model.create () in
  let rows = List.rev !row_order in
  let cols = List.rev !col_order in
  let vars = Hashtbl.create 64 in
  List.iter
    (fun col ->
      let lb, ub =
        match Hashtbl.find_opt bounds col with
        | Some b -> b
        | None -> (0.0, Float.infinity)
      in
      let obj =
        match obj_row with
        | None -> 0.0
        | Some orow ->
            List.fold_left
              (fun acc (r, v) -> if r = orow then acc +. v else acc)
              0.0 (Hashtbl.find col_terms col)
      in
      let v =
        Model.add_var m ~lb ~ub ~obj
          ~integer:(Hashtbl.find col_int col)
          col
      in
      Hashtbl.replace vars col v)
    cols;
  List.iter
    (fun row ->
      let sense =
        match (Hashtbl.find row_info row).sense with
        | Some s -> s
        | None -> assert false
      in
      let terms =
        List.concat_map
          (fun col ->
            List.filter_map
              (fun (r, v) ->
                if r = row then Some (v, Hashtbl.find vars col) else None)
              (Hashtbl.find col_terms col))
          cols
      in
      let b = match Hashtbl.find_opt rhs row with Some v -> v | None -> 0.0 in
      Model.add_constr m ~name:row terms sense b)
    rows;
  Model.compile m

let of_string s = of_lines (List.to_seq (String.split_on_char '\n' s))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      of_lines (List.to_seq (List.rev !lines)))
