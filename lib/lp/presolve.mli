(** LP presolve: fixed-variable substitution, empty/singleton-row
    elimination, doubleton-equality substitution and empty-column fixing,
    applied to fixpoint before the simplex, followed by power-of-two
    geometric-mean row/column equilibration of the reduced problem
    ([POWERLIM_SCALE=0] disables).  Scale factors are powers of two, so
    the scaling transformation and its inverse are bitwise exact:
    results are reported in original units with no rounding introduced
    by scaling itself.  See the implementation header for the reduction
    list. *)

type vstate =
  | Kept
  | Fixed of float
  | Subst of { of_var : int; scale : float; offset : float }
      (** var = offset + scale * of_var *)

type reduction = {
  problem : Model.problem;  (** the reduced problem *)
  keep_vars : int array;  (** reduced column -> original column *)
  state : vstate array;  (** per original column *)
  kept_rows : int array;  (** reduced row -> original row *)
  dropped_rows : int;
  dropped_cols : int;
  subst_order : int list;  (** substituted variables, oldest first *)
  row_scale : float array;
      (** per reduced row: power-of-two equilibration factor the scaled
          row was multiplied by (all 1.0 with [POWERLIM_SCALE=0]) *)
  col_scale : float array;
      (** per reduced column: original x = col_scale * scaled x *)
}

type outcome = Reduced of reduction | Proven_infeasible

val reduce : Model.problem -> outcome

val restore : reduction -> float array -> float array
(** Map a reduced-space solution back to the original variables.  The
    input lives in the {e scaled} reduced space (what solving
    [r.problem] yields); since equilibration factors are powers of two,
    the original-unit values are exact. *)

val fixed_objective : Model.problem -> reduction -> float
(** Objective contribution of the variables presolve fixed outright. *)

val solve_reduction :
  ?max_iter:int ->
  ?feas_tol:float ->
  ?opt_tol:float ->
  ?rhs:float array ->
  ?warm:Revised.basis ->
  ?analysis:Revised.analysis ->
  ?bands:int array * int array ->
  ?structure:Decomp.structure ->
  Model.problem ->
  reduction ->
  Revised.result
(** [solve_reduction p r] solves a previously computed reduction of [p]
    and restores the solution to the original space — the warm re-solve
    path behind {!Core.Event_lp.solve_prepared}.  [rhs] overrides the
    {e original-space} row RHS (each kept row's reduced RHS is patched by
    the delta); only sound when the changed rows were kept by the
    reduction and cannot alter any reduction decision.  [warm] and the
    returned [basis] field are in the {e reduced} space of [r], as is
    [analysis] (a {!Revised.make_analysis} of [r]'s reduced problem,
    valid across bound/RHS-only re-solves).  [bands] is an
    {e original-space} [(col_bands, row_bands)] staircase-stage pair
    (see {!Revised.solve}); surviving columns and rows keep their
    stage index through the reduction.  [structure] is an
    {e original-space} {!Decomp.structure}; surviving columns keep their
    block tag and the reduced solve is routed through {!Decomp.solve}
    (which engages Dantzig–Wolfe only on cold solves of large-enough
    instances and is otherwise exactly {!Revised.solve}). *)

val solve :
  ?max_iter:int -> ?feas_tol:float -> ?opt_tol:float -> Model.problem ->
  Revised.result
(** Presolve, solve the reduction with {!Revised}, restore.  A drop-in
    replacement for {!Revised.solve} on continuous models.  The returned
    [basis] is [None]: a one-shot solve's reduced-space basis has no
    aligned re-solve to feed; use {!reduce} + {!solve_reduction} to
    warm-start across re-solves. *)
