(** Typed structural edits of a compiled LP, with basis-mapped warm
    re-solves (the incremental "what-if" path).

    An edit list is applied {e sequentially}: every row/column index in
    an edit refers to the problem shape produced by the edits before it.
    Additions append (a new row becomes index [nr], a new column index
    [nv]); removals compact (indices above the removed one shift down by
    one).

    {!resolve} is the incremental re-solve: it applies the edits and, when
    given the unedited problem's optimal basis, maps that basis across
    every structural change — additions/removals are evaluated as
    bordered updates against an {!Lu} factorization of the current basis
    ({!Lu.unit_ftran}/{!Lu.unit_btran} pick the deletion pairing with the
    largest available pivot) — and hands the mapped basis to
    {!Revised.solve} as a warm start, whose dual simplex repairs primal
    feasibility.  Whenever no acceptably-conditioned mapping exists
    (singular pairing, excessive factor fill, irreparable dual state),
    the re-solve falls back to a cold solve, so incremental answers are
    never less robust than cold ones — and because {!Revised} extracts
    its solution canonically from the final basis, an incremental
    re-solve that terminates at the same basis as a cold solve reports a
    bit-identical objective. *)

type t =
  | Add_row of {
      name : string;
      terms : (float * int) list;  (** (coefficient, column) *)
      sense : Model.sense;
      rhs : float;
    }  (** append a constraint row *)
  | Remove_row of int
  | Add_col of {
      name : string;
      lb : float;
      ub : float;
      obj : float;
      terms : (float * int) list;  (** (coefficient, row) *)
    }  (** append a structural column *)
  | Remove_col of int
  | Set_bounds of { col : int; lb : float; ub : float }
  | Set_obj of { col : int; obj : float }
  | Set_entry of { row : int; col : int; coef : float }
      (** overwrite one matrix coefficient (0 deletes the entry) *)
  | Set_rhs of { row : int; rhs : float }

val pp : Format.formatter -> t -> unit

val apply : Model.problem -> t list -> Model.problem
(** Apply the edits in order and return the edited problem.  Raises
    [Invalid_argument] on an out-of-range index, [lb > ub], or a
    non-finite coefficient/RHS. *)

val set_objective : Model.problem -> float array -> t list
(** The minimal [Set_obj] list (one edit per changed coefficient,
    bit-level comparison) turning [p]'s objective vector into the given
    one — how an objective-mode switch is expressed in the edit
    language.  Raises [Invalid_argument] on a length mismatch. *)

val col_map : Model.problem -> t list -> int array
(** [col_map p edits].(j) is the column index of [p]'s column [j] in
    [apply p edits], or [-1] when an edit removed it. *)

val row_map : Model.problem -> t list -> int array
(** Same for row indices. *)

val map_basis :
  Model.problem -> Revised.basis -> t list -> Revised.basis option
(** Map a basis of [p] to a basis of [apply p edits] via bordered
    updates (see above).  [None] means no well-conditioned mapping was
    found and the caller should solve cold. *)

val resolve :
  ?max_iter:int ->
  ?feas_tol:float ->
  ?opt_tol:float ->
  ?warm:Revised.basis ->
  Model.problem ->
  t list ->
  Model.problem * Revised.result
(** [resolve p edits ~warm] = the edited problem and its solution,
    warm-started from the mapped basis when [warm] is given and the
    mapping succeeds, cold otherwise.  Counted in {!Stats} as an edit
    solve (plus an edit fallback when the mapping was abandoned). *)
