(** Textual trace format for application DAGs.

    The paper obtains its DAGs from an MPI tracing library and feeds them
    to the LP offline; this module is the equivalent persistence layer:
    graphs serialize to a line-oriented text format and parse back,
    so traces can be generated once and reanalyzed under many power
    constraints.

    Format (one record per line, [#] comments ignored):
    {v
    powerlim-trace 1
    ranks <n>
    vertex <vid> <kind> <delay> <pcontrol> <rank>[,<rank>...]
    task <tid> <rank> <src> <dst> <work> <serial> <contention> <mem> <iteration> <label>
    message <mid> <src> <dst> <src_rank> <dst_rank> <bytes>
    v}

    Labels are percent-encoded so they may contain whitespace. *)

let magic = "powerlim-trace 1"

let string_of_vkind = function
  | Graph.Init -> "init"
  | Graph.Finalize -> "finalize"
  | Graph.Collective s -> "collective:" ^ s
  | Graph.Send -> "send"
  | Graph.Recv -> "recv"
  | Graph.Isend -> "isend"
  | Graph.Wait -> "wait"
  | Graph.Pcontrol -> "pcontrol"

let vkind_of_string s =
  match s with
  | "init" -> Graph.Init
  | "finalize" -> Graph.Finalize
  | "send" -> Graph.Send
  | "recv" -> Graph.Recv
  | "isend" -> Graph.Isend
  | "wait" -> Graph.Wait
  | "pcontrol" -> Graph.Pcontrol
  | _ ->
      (* ["collective:"] (length exactly 11) is a collective with an
         empty name and must parse; only shorter strings cannot match. *)
      if String.length s >= 11 && String.sub s 0 11 = "collective:" then
        Graph.Collective (String.sub s 11 (String.length s - 11))
      else failwith (Printf.sprintf "unknown vertex kind %S" s)

(* Every byte that [String.trim] or the space-splitting tokenizer could
   mangle is escaped: '%' itself, space, and all control characters
   (tab, LF, CR, FF, VT, ...). *)
let encode_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c <= ' ' || c = '%' then
        Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      else Buffer.add_char buf c)
    s;
  if Buffer.length buf = 0 then "%" else Buffer.contents buf

let hex_val = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> -1

(* Raises [Failure] on a malformed or truncated escape; [of_lines] turns
   that into a [Parse_error] carrying the line number. *)
let decode_label s =
  if s = "%" then ""
  else begin
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      if s.[!i] = '%' then begin
        if !i + 2 >= n then
          failwith (Printf.sprintf "truncated escape in label %S" s);
        let h1 = hex_val s.[!i + 1] and h2 = hex_val s.[!i + 2] in
        if h1 < 0 || h2 < 0 then
          failwith
            (Printf.sprintf "malformed escape %%%c%c in label %S" s.[!i + 1]
               s.[!i + 2] s);
        Buffer.add_char buf (Char.chr ((h1 * 16) + h2));
        i := !i + 3
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

(* Emit every record through [put : string -> unit]. *)
let write put (g : Graph.t) =
  put (magic ^ "\n");
  put
    (Printf.sprintf "# %d vertices, %d tasks, %d messages\n"
       (Graph.n_vertices g) (Graph.n_tasks g) (Graph.n_messages g));
  put (Printf.sprintf "ranks %d\n" g.Graph.nranks);
  Array.iter
    (fun (v : Graph.vertex) ->
      put
        (Printf.sprintf "vertex %d %s %.17g %b %s\n" v.vid
           (string_of_vkind v.kind) v.delay v.pcontrol
           (String.concat "," (List.map string_of_int v.ranks))))
    g.Graph.vertices;
  Array.iter
    (fun (t : Graph.task) ->
      put
        (Printf.sprintf "task %d %d %d %d %.17g %.17g %.17g %.17g %d %s\n"
           t.tid t.rank t.t_src t.t_dst t.profile.Machine.Profile.work
           t.profile.Machine.Profile.serial_frac
           t.profile.Machine.Profile.contention
           t.profile.Machine.Profile.mem_bound t.iteration
           (encode_label t.label)))
    g.Graph.tasks;
  Array.iter
    (fun (msg : Graph.message) ->
      put
        (Printf.sprintf "message %d %d %d %d %d %d\n" msg.mid msg.m_src
           msg.m_dst msg.src_rank msg.dst_rank msg.bytes))
    g.Graph.messages

let output oc g = write (output_string oc) g

let to_file path g = Putil.Fileio.with_out path (fun oc -> output oc g)

let to_string g =
  let buf = Buffer.create 4096 in
  write (Buffer.add_string buf) g;
  Buffer.contents buf

exception Parse_error of int * string

let parse_error line fmt = Fmt.kstr (fun s -> raise (Parse_error (line, s))) fmt

(* Field-level parsers: raise [Failure] naming the record kind, field
   and offending token (instead of the bare ["int_of_string"] the
   stdlib converters give), which [of_lines] rethrows as [Parse_error]
   with the line number. *)
let int_field what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> failwith (Printf.sprintf "bad integer for %s: %S" what s)

let float_field what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> failwith (Printf.sprintf "bad float for %s: %S" what s)

let bool_field what s =
  match bool_of_string_opt s with
  | Some b -> b
  | None -> failwith (Printf.sprintf "bad bool for %s: %S" what s)

(** Parse a trace from a line sequence.  Raises {!Parse_error}. *)
let of_lines (lines : string Seq.t) : Graph.t =
  let nranks = ref 0 in
  let vertices = ref [] and tasks = ref [] and messages = ref [] in
  let lineno = ref 0 in
  let seen_magic = ref false in
  Seq.iter
    (fun raw ->
      incr lineno;
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else if not !seen_magic then
        if line = magic then seen_magic := true
        else parse_error !lineno "bad magic %S" line
      else begin
        (* Field-level failures (bad integer/float/bool literals, unknown
           vertex kinds, malformed label escapes) surface as [Failure] or
           [Invalid_argument]; rethrow them as [Parse_error] so the
           caller always learns the offending line. *)
        try
          match String.split_on_char ' ' line with
          | [ "ranks"; n ] -> nranks := int_field "ranks count" n
          | "vertex" :: vid :: kind :: delay :: pcontrol :: ranks :: [] ->
              vertices :=
                {
                  Graph.vid = int_field "vertex vid" vid;
                  kind = vkind_of_string kind;
                  delay = float_field "vertex delay" delay;
                  pcontrol = bool_field "vertex pcontrol" pcontrol;
                  ranks =
                    String.split_on_char ',' ranks
                    |> List.map (int_field "vertex ranks");
                }
                :: !vertices
          | "task" :: tid :: rank :: src :: dst :: work :: serial :: cont
            :: mem :: iteration :: label :: [] ->
              tasks :=
                {
                  Graph.tid = int_field "task tid" tid;
                  rank = int_field "task rank" rank;
                  t_src = int_field "task src" src;
                  t_dst = int_field "task dst" dst;
                  profile =
                    Machine.Profile.v
                      ~serial_frac:(float_field "task serial" serial)
                      ~contention:(float_field "task contention" cont)
                      ~mem_bound:(float_field "task mem" mem)
                      (float_field "task work" work);
                  iteration = int_field "task iteration" iteration;
                  label = decode_label label;
                }
                :: !tasks
          | "message" :: mid :: src :: dst :: src_rank :: dst_rank :: bytes :: []
            ->
              messages :=
                {
                  Graph.mid = int_field "message mid" mid;
                  m_src = int_field "message src" src;
                  m_dst = int_field "message dst" dst;
                  src_rank = int_field "message src_rank" src_rank;
                  dst_rank = int_field "message dst_rank" dst_rank;
                  bytes = int_field "message bytes" bytes;
                }
                :: !messages
          | kw :: _ -> parse_error !lineno "unknown record %S" kw
          | [] -> ()
        with
        | Failure msg | Invalid_argument msg ->
            parse_error !lineno "malformed record: %s" msg
      end)
    lines;
  if not !seen_magic then parse_error 0 "missing magic header";
  let vertices =
    Array.of_list (List.sort (fun a b -> compare a.Graph.vid b.Graph.vid) !vertices)
  in
  let tasks =
    Array.of_list (List.sort (fun a b -> compare a.Graph.tid b.Graph.tid) !tasks)
  in
  let messages =
    Array.of_list (List.sort (fun a b -> compare a.Graph.mid b.Graph.mid) !messages)
  in
  Array.iteri
    (fun i (v : Graph.vertex) ->
      if v.vid <> i then parse_error 0 "vertex ids not dense at %d" i)
    vertices;
  Array.iteri
    (fun i (t : Graph.task) ->
      if t.tid <> i then parse_error 0 "task ids not dense at %d" i)
    tasks;
  let nv = Array.length vertices in
  let out_edges = Array.make nv [] and in_edges = Array.make nv [] in
  let bad v = v < 0 || v >= nv in
  Array.iter
    (fun (t : Graph.task) ->
      if bad t.t_src || bad t.t_dst then
        parse_error 0 "task %d references unknown vertex" t.tid;
      out_edges.(t.t_src) <- Graph.T t.tid :: out_edges.(t.t_src);
      in_edges.(t.t_dst) <- Graph.T t.tid :: in_edges.(t.t_dst))
    tasks;
  Array.iter
    (fun (msg : Graph.message) ->
      if bad msg.m_src || bad msg.m_dst then
        parse_error 0 "message %d references unknown vertex" msg.mid;
      out_edges.(msg.m_src) <- Graph.M msg.mid :: out_edges.(msg.m_src);
      in_edges.(msg.m_dst) <- Graph.M msg.mid :: in_edges.(msg.m_dst))
    messages;
  let rank_tasks =
    Array.init !nranks (fun r ->
        tasks
        |> Array.to_seq
        |> Seq.filter (fun (t : Graph.task) -> t.rank = r)
        |> Seq.map (fun (t : Graph.task) -> t.tid)
        |> Array.of_seq)
  in
  let finalize_v =
    let fv = ref (-1) in
    Array.iter
      (fun (v : Graph.vertex) -> if v.kind = Graph.Finalize then fv := v.vid)
      vertices;
    if !fv < 0 then parse_error 0 "no Finalize vertex";
    !fv
  in
  let g =
    {
      Graph.nranks = !nranks;
      vertices;
      tasks;
      messages;
      out_edges;
      in_edges;
      rank_tasks;
      init_v = 0;
      finalize_v;
    }
  in
  (match Graph.validate g with
  | Ok () -> ()
  | Error es -> parse_error 0 "invalid graph: %s" (String.concat "; " es));
  g

let of_string s =
  of_lines (List.to_seq (String.split_on_char '\n' s))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      of_lines (List.to_seq (List.rev !lines)))
