(** Application task graph: vertices are MPI events, edges are
    computation tasks (between consecutive MPI calls on one rank) or
    messages between ranks — the representation of paper Section 3.1 /
    Figure 2.  Collectives are single vertices shared by all participants,
    which encodes equation (4): tasks leaving a common vertex start
    simultaneously. *)

type vkind =
  | Init
  | Finalize
  | Collective of string
  | Send
  | Recv
  | Isend
  | Wait
  | Pcontrol

val pp_vkind : Format.formatter -> vkind -> unit

type vertex = {
  vid : int;
  kind : vkind;
  ranks : int list;  (** participating ranks (singleton unless collective) *)
  delay : float;  (** communication time added before the vertex fires *)
  pcontrol : bool;  (** iteration boundary visible to runtime systems *)
}

type task = {
  tid : int;
  rank : int;
  t_src : int;
  t_dst : int;
  profile : Machine.Profile.t;
  iteration : int;  (** application iteration; -1 when not applicable *)
  label : string;
}

type message = {
  mid : int;
  m_src : int;
  m_dst : int;
  src_rank : int;
  dst_rank : int;
  bytes : int;
}

type edge = T of int | M of int  (** task id or message id *)

type t = {
  nranks : int;
  vertices : vertex array;
  tasks : task array;
  messages : message array;
  out_edges : edge list array;
  in_edges : edge list array;
  rank_tasks : int array array;  (** per rank, tids in program order *)
  init_v : int;
  finalize_v : int;
}

val n_vertices : t -> int
val n_tasks : t -> int
val n_messages : t -> int
val edge_src : t -> edge -> int
val edge_dst : t -> edge -> int

val next_task_on_rank : t -> int -> int option
(** Next task of the same rank after [tid] in program order. *)

module Builder : sig
  (** Imperative graph construction maintaining the invariant that
      consecutive MPI vertices on a rank are linked by exactly one task
      edge (a zero-work edge when no computation was queued). *)

  type b

  val create : nranks:int -> b

  val compute :
    b -> rank:int -> ?iteration:int -> ?label:string -> Machine.Profile.t -> unit
  (** Queue computation on [rank]; it becomes the task edge into that
      rank's next MPI vertex.  Raises [Invalid_argument] if a computation
      is already queued. *)

  val mpi_vertex : b -> rank:int -> vkind -> int
  (** Single-rank MPI vertex; consumes the rank's pending computation.
      Returns the vertex id. *)

  val collective :
    b -> ?name:string -> ?bytes:int -> ?pcontrol:bool -> unit -> int
  (** One shared vertex over all ranks, with a log-tree delay. *)

  val message :
    b -> src_v:int -> dst_v:int -> src_rank:int -> dst_rank:int -> bytes:int -> unit
  (** Message edge between two existing vertices. *)

  val p2p : b -> src:int -> dst:int -> bytes:int -> int * int
  (** Isend vertex on [src], Recv vertex on [dst], message between them.
      Returns [(send_v, recv_v)]. *)

  val finalize : b -> int
  (** Close the graph with a Finalize vertex joining all ranks. *)

  val build : b -> t
  (** Freeze.  Raises [Invalid_argument] when not finalized. *)
end

val topo_order : t -> int array
(** Vertex ids in topological order; raises [Failure] on a cycle. *)

val validate : t -> (unit, string list) result
(** Structural validation: single entry/exit, acyclicity, per-rank task
    chains. *)

val equal : t -> t -> bool
(** Structural equality (vertices, tasks with profiles, messages,
    entry/exit; the derived adjacency follows from those). *)

val digest_fold : Putil.Hashing.t -> t -> unit
(** Feed the graph's canonical encoding to a hasher. *)

val digest : t -> string
(** Hex digest of {!digest_fold} — the graph's content-derived cache
    key. *)

val pp_stats : Format.formatter -> t -> unit
