(** Application task graph.

    Vertices are MPI events (calls); edges are either computation tasks
    (the work between two consecutive MPI calls on one rank) or messages
    between ranks — the representation of Section 3.1 / Figure 2 of the
    paper.  Collective operations are single vertices shared by all
    participating ranks, which encodes equation (4): all tasks leaving a
    common vertex start simultaneously.

    Graphs are constructed through {!Builder}, which maintains the
    per-rank invariant that consecutive MPI vertices on a rank are linked
    by exactly one task edge (possibly of zero work). *)

type vkind =
  | Init
  | Finalize
  | Collective of string
  | Send
  | Recv
  | Isend
  | Wait
  | Pcontrol

let pp_vkind ppf = function
  | Init -> Fmt.string ppf "Init"
  | Finalize -> Fmt.string ppf "Finalize"
  | Collective s -> Fmt.pf ppf "Coll(%s)" s
  | Send -> Fmt.string ppf "Send"
  | Recv -> Fmt.string ppf "Recv"
  | Isend -> Fmt.string ppf "Isend"
  | Wait -> Fmt.string ppf "Wait"
  | Pcontrol -> Fmt.string ppf "Pcontrol"

type vertex = {
  vid : int;
  kind : vkind;
  ranks : int list;  (** participating ranks (singleton unless collective) *)
  delay : float;  (** communication time added before the vertex fires *)
  pcontrol : bool;  (** iteration boundary visible to runtime systems *)
}

type task = {
  tid : int;
  rank : int;
  t_src : int;  (** source vertex *)
  t_dst : int;  (** destination vertex *)
  profile : Machine.Profile.t;
  iteration : int;  (** application iteration; -1 when not applicable *)
  label : string;
}

type message = {
  mid : int;
  m_src : int;
  m_dst : int;
  src_rank : int;
  dst_rank : int;
  bytes : int;
}

type edge = T of int | M of int  (** edge reference: task id or message id *)

type t = {
  nranks : int;
  vertices : vertex array;
  tasks : task array;
  messages : message array;
  out_edges : edge list array;  (** per source vertex *)
  in_edges : edge list array;  (** per destination vertex *)
  rank_tasks : int array array;  (** per rank, tids in program order *)
  init_v : int;
  finalize_v : int;
}

let n_vertices g = Array.length g.vertices
let n_tasks g = Array.length g.tasks
let n_messages g = Array.length g.messages

let edge_src g = function
  | T tid -> g.tasks.(tid).t_src
  | M mid -> g.messages.(mid).m_src

let edge_dst g = function
  | T tid -> g.tasks.(tid).t_dst
  | M mid -> g.messages.(mid).m_dst

(** Next task of the same rank after [tid] in program order, if any. *)
let next_task_on_rank g tid =
  let t = g.tasks.(tid) in
  let seq = g.rank_tasks.(t.rank) in
  let pos = ref (-1) in
  Array.iteri (fun i x -> if x = tid then pos := i) seq;
  if !pos >= 0 && !pos + 1 < Array.length seq then Some seq.(!pos + 1) else None

(* ------------------------------------------------------------------ *)

module Builder = struct
  type b = {
    nranks : int;
    mutable b_vertices : vertex list;  (* reversed *)
    mutable nv : int;
    mutable b_tasks : task list;  (* reversed *)
    mutable nt : int;
    mutable b_messages : message list;  (* reversed *)
    mutable nm : int;
    cur : int array;  (* current vertex per rank *)
    pending : Machine.Profile.t option array;  (* compute queued per rank *)
    pending_iter : int array;
    pending_label : string array;
    mutable finalized : int option;
  }

  let zero_profile = Machine.Profile.v 0.0

  let create ~nranks =
    if nranks < 1 then invalid_arg "Builder.create: nranks < 1";
    let init =
      {
        vid = 0;
        kind = Init;
        ranks = List.init nranks Fun.id;
        delay = 0.0;
        pcontrol = false;
      }
    in
    {
      nranks;
      b_vertices = [ init ];
      nv = 1;
      b_tasks = [];
      nt = 0;
      b_messages = [];
      nm = 0;
      cur = Array.make nranks 0;
      pending = Array.make nranks None;
      pending_iter = Array.make nranks (-1);
      pending_label = Array.make nranks "";
      finalized = None;
    }

  let check_open b =
    if b.finalized <> None then invalid_arg "Builder: graph already finalized"

  let check_rank b rank =
    if rank < 0 || rank >= b.nranks then invalid_arg "Builder: bad rank"

  (** Queue computation on [rank]; it becomes the task edge leading to
      that rank's next MPI vertex. *)
  let compute b ~rank ?(iteration = -1) ?(label = "") profile =
    check_open b;
    check_rank b rank;
    if b.pending.(rank) <> None then
      invalid_arg "Builder.compute: two computations without an MPI call";
    b.pending.(rank) <- Some profile;
    b.pending_iter.(rank) <- iteration;
    b.pending_label.(rank) <- label

  let fresh_vertex b kind ranks delay pcontrol =
    let v = { vid = b.nv; kind; ranks; delay; pcontrol } in
    b.b_vertices <- v :: b.b_vertices;
    b.nv <- b.nv + 1;
    v.vid

  let add_task b ~rank ~dst =
    let profile =
      match b.pending.(rank) with Some p -> p | None -> zero_profile
    in
    let t =
      {
        tid = b.nt;
        rank;
        t_src = b.cur.(rank);
        t_dst = dst;
        profile;
        iteration = b.pending_iter.(rank);
        label = b.pending_label.(rank);
      }
    in
    b.b_tasks <- t :: b.b_tasks;
    b.nt <- b.nt + 1;
    b.pending.(rank) <- None;
    b.pending_iter.(rank) <- -1;
    b.pending_label.(rank) <- "";
    b.cur.(rank) <- dst

  (** An MPI vertex on a single rank; consumes that rank's pending
      computation.  Returns the new vertex id. *)
  let mpi_vertex b ~rank kind =
    check_open b;
    check_rank b rank;
    let vid = fresh_vertex b kind [ rank ] 0.0 false in
    add_task b ~rank ~dst:vid;
    vid

  (** A collective over all ranks: one shared vertex that every rank's
      pending computation flows into.  [delay] defaults to a log-tree
      cost over [bytes]. *)
  let collective b ?(name = "allreduce") ?(bytes = 8) ?(pcontrol = false) () =
    check_open b;
    let delay = Machine.Network.collective_time ~ranks:b.nranks bytes in
    let ranks = List.init b.nranks Fun.id in
    let vid = fresh_vertex b (Collective name) ranks delay pcontrol in
    for rank = 0 to b.nranks - 1 do
      add_task b ~rank ~dst:vid
    done;
    vid

  (** Message edge between two existing MPI vertices. *)
  let message b ~src_v ~dst_v ~src_rank ~dst_rank ~bytes =
    check_open b;
    if src_v < 0 || src_v >= b.nv || dst_v < 0 || dst_v >= b.nv then
      invalid_arg "Builder.message: unknown vertex";
    let m = { mid = b.nm; m_src = src_v; m_dst = dst_v; src_rank; dst_rank; bytes } in
    b.b_messages <- m :: b.b_messages;
    b.nm <- b.nm + 1

  (** Point-to-point exchange: Isend vertex on [src], Recv vertex on
      [dst], message edge between them. Returns [(send_v, recv_v)]. *)
  let p2p b ~src ~dst ~bytes =
    check_open b;
    check_rank b src;
    check_rank b dst;
    if src = dst then invalid_arg "Builder.p2p: src = dst";
    let sv = mpi_vertex b ~rank:src Isend in
    let rv = mpi_vertex b ~rank:dst Recv in
    message b ~src_v:sv ~dst_v:rv ~src_rank:src ~dst_rank:dst ~bytes;
    (sv, rv)

  (** Close the graph with a Finalize vertex joining all ranks. *)
  let finalize b =
    check_open b;
    let ranks = List.init b.nranks Fun.id in
    let vid = fresh_vertex b Finalize ranks 0.0 false in
    for rank = 0 to b.nranks - 1 do
      add_task b ~rank ~dst:vid
    done;
    b.finalized <- Some vid;
    vid

  let build b : t =
    let finalize_v =
      match b.finalized with
      | Some v -> v
      | None -> invalid_arg "Builder.build: not finalized"
    in
    let vertices = Array.of_list (List.rev b.b_vertices) in
    let tasks = Array.of_list (List.rev b.b_tasks) in
    let messages = Array.of_list (List.rev b.b_messages) in
    let nv = Array.length vertices in
    let out_edges = Array.make nv [] and in_edges = Array.make nv [] in
    Array.iter
      (fun t ->
        out_edges.(t.t_src) <- T t.tid :: out_edges.(t.t_src);
        in_edges.(t.t_dst) <- T t.tid :: in_edges.(t.t_dst))
      tasks;
    Array.iter
      (fun m ->
        out_edges.(m.m_src) <- M m.mid :: out_edges.(m.m_src);
        in_edges.(m.m_dst) <- M m.mid :: in_edges.(m.m_dst))
      messages;
    let rank_tasks =
      Array.init b.nranks (fun r ->
          tasks
          |> Array.to_seq
          |> Seq.filter (fun t -> t.rank = r)
          |> Seq.map (fun t -> t.tid)
          |> Array.of_seq)
    in
    {
      nranks = b.nranks;
      vertices;
      tasks;
      messages;
      out_edges;
      in_edges;
      rank_tasks;
      init_v = 0;
      finalize_v;
    }
end

(* ------------------------------------------------------------------ *)

(** Vertex ids in a topological order.  Raises [Failure] on a cycle
    (which would indicate a builder bug). *)
let topo_order g =
  let nv = n_vertices g in
  let indeg = Array.make nv 0 in
  Array.iteri (fun v es -> indeg.(v) <- List.length es) g.in_edges;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = Array.make nv 0 in
  let n = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!n) <- v;
    incr n;
    List.iter
      (fun e ->
        let w = edge_dst g e in
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      g.out_edges.(v)
  done;
  if !n <> nv then failwith "Graph.topo_order: cycle detected";
  order

(** Structural validation: single entry/exit, acyclicity, per-rank task
    chains.  Returns an error description rather than raising, so tests
    can assert on it. *)
let validate g =
  let problems = ref [] in
  let err fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  if g.vertices.(g.init_v).kind <> Init then err "vertex 0 is not Init";
  if g.vertices.(g.finalize_v).kind <> Finalize then err "finalize vertex wrong";
  (match topo_order g with
  | exception Failure _ -> err "graph has a cycle"
  | _ -> ());
  if g.in_edges.(g.init_v) <> [] then err "Init has predecessors";
  if g.out_edges.(g.finalize_v) <> [] then err "Finalize has successors";
  (* every rank's tasks chain: dst of task k = src of task k+1 *)
  Array.iteri
    (fun r seq ->
      Array.iteri
        (fun i tid ->
          let t = g.tasks.(tid) in
          if t.rank <> r then err "task in wrong rank sequence";
          if i = 0 && t.t_src <> g.init_v then err "rank %d does not start at Init" r;
          if i > 0 then begin
            let prev = g.tasks.(seq.(i - 1)) in
            if prev.t_dst <> t.t_src then
              err "rank %d tasks %d->%d do not chain" r prev.tid t.tid
          end;
          if i = Array.length seq - 1 && t.t_dst <> g.finalize_v then
            err "rank %d does not end at Finalize" r)
        seq)
    g.rank_tasks;
  match !problems with [] -> Ok () | ps -> Error (List.rev ps)

(* ------------------------------------------------------------------ *)
(* Structural identity.  The digest covers every constructed field
   (vertices, tasks with their profiles, messages, entry/exit); the
   derived adjacency ([out_edges], [in_edges], [rank_tasks]) is a pure
   function of those and is skipped.  Equal graphs — built from the same
   trace or the same generator parameters — digest identically, which is
   what makes graph-derived cache keys structural rather than
   positional. *)

let digest_fold h g =
  let module H = Putil.Hashing in
  H.int h g.nranks;
  H.int h (n_vertices g);
  Array.iter
    (fun v ->
      H.int h v.vid;
      (match v.kind with
      | Init -> H.string h "init"
      | Finalize -> H.string h "finalize"
      | Collective s ->
          H.string h "collective";
          H.string h s
      | Send -> H.string h "send"
      | Recv -> H.string h "recv"
      | Isend -> H.string h "isend"
      | Wait -> H.string h "wait"
      | Pcontrol -> H.string h "pcontrol");
      H.int h (List.length v.ranks);
      List.iter (H.int h) v.ranks;
      H.float h v.delay;
      H.bool h v.pcontrol)
    g.vertices;
  H.int h (n_tasks g);
  Array.iter
    (fun t ->
      H.int h t.tid;
      H.int h t.rank;
      H.int h t.t_src;
      H.int h t.t_dst;
      Machine.Profile.digest_fold h t.profile;
      H.int h t.iteration;
      H.string h t.label)
    g.tasks;
  H.int h (n_messages g);
  Array.iter
    (fun m ->
      H.int h m.mid;
      H.int h m.m_src;
      H.int h m.m_dst;
      H.int h m.src_rank;
      H.int h m.dst_rank;
      H.int h m.bytes)
    g.messages;
  H.int h g.init_v;
  H.int h g.finalize_v

let digest g =
  let h = Putil.Hashing.create () in
  digest_fold h g;
  Putil.Hashing.hex h

(* Structural equality over the same constructed fields the digest
   covers (the derived adjacency follows from them).  Polymorphic
   compare is exact here: the fields hold only ints, floats (never NaN),
   strings, lists and variants. *)
let equal a b =
  a.nranks = b.nranks && a.init_v = b.init_v && a.finalize_v = b.finalize_v
  && a.vertices = b.vertices && a.tasks = b.tasks && a.messages = b.messages

let pp_stats ppf g =
  Fmt.pf ppf "graph: %d ranks, %d vertices, %d tasks, %d messages" g.nranks
    (n_vertices g) (n_tasks g) (n_messages g)
