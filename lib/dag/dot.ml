(** Graphviz (DOT) export of application DAGs, in the style of the
    paper's Figure 2: round nodes for MPI events, solid edges for
    computation tasks (labelled with their work), dashed edges for
    messages. *)

let escape s =
  String.concat "" (List.map (fun c ->
      match c with
      | '"' -> "\\\""
      | '\\' -> "\\\\"
      | c -> String.make 1 c)
      (List.init (String.length s) (String.get s)))

let vertex_label (v : Graph.vertex) =
  match v.kind with
  | Graph.Init -> "Init"
  | Graph.Finalize -> "Finalize"
  | Graph.Collective s -> Printf.sprintf "%s" s
  | Graph.Send -> "Send"
  | Graph.Recv -> "Recv"
  | Graph.Isend -> "Isend"
  | Graph.Wait -> "Wait"
  | Graph.Pcontrol -> "Pcontrol"

(** Write the graph in DOT syntax.  [times] (if given) annotates every
    vertex with its schedule time. *)
let output ?times oc (g : Graph.t) =
  Printf.fprintf oc "digraph application {\n  rankdir=LR;\n";
  Printf.fprintf oc "  node [shape=ellipse, fontsize=10];\n";
  Array.iter
    (fun (v : Graph.vertex) ->
      let time_suffix =
        match times with
        | Some (ts : Schedule.times) ->
            Printf.sprintf "\\n%.3fs" ts.Schedule.vertex_time.(v.vid)
        | None -> ""
      in
      let style =
        match v.kind with
        | Graph.Init | Graph.Finalize -> ", style=bold"
        | Graph.Collective _ -> ", shape=box"
        | _ -> ""
      in
      Printf.fprintf oc "  v%d [label=\"%s%s\"%s];\n" v.vid
        (escape (vertex_label v))
        time_suffix style)
    g.Graph.vertices;
  Array.iter
    (fun (t : Graph.task) ->
      if t.profile.Machine.Profile.work > 0.0 then
        Printf.fprintf oc "  v%d -> v%d [label=\"r%d %s (%.2gs)\"];\n" t.t_src
          t.t_dst t.rank (escape t.label) t.profile.Machine.Profile.work
      else
        Printf.fprintf oc "  v%d -> v%d [color=gray, label=\"r%d\"];\n"
          t.t_src t.t_dst t.rank)
    g.Graph.tasks;
  Array.iter
    (fun (msg : Graph.message) ->
      Printf.fprintf oc
        "  v%d -> v%d [style=dashed, label=\"%dB\"];\n" msg.m_src msg.m_dst
        msg.bytes)
    g.Graph.messages;
  Printf.fprintf oc "}\n"

let to_file ?times path g =
  Putil.Fileio.with_out path (fun oc -> output ?times oc g)
