(** Warm-start benchmark: cold vs warm LP re-solves across the power-cap
    sweep and inside the flow-ILP branch and bound.  Writes
    [BENCH_warmstart.json] (schema documented in EXPERIMENTS.md) and
    fails — non-zero exit — when cold and warm objectives disagree beyond
    1e-9. *)

val run : ?config:Common.config -> Format.formatter -> unit
