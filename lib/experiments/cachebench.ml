let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rel_diff a b =
  if Float.is_nan a && Float.is_nan b then 0.0
  else Float.abs (a -. b) /. Float.max 1.0 (Float.abs a)

(* How many times the full per-cap request sequence is replayed.  The
   real harness replays it too: fig9/fig10/fig11/summary all consume the
   same scenario, and every sweep chain prepares over it. *)
let rounds = 3

(* One round of the sweep's per-cap requests, driven through the
   pipeline stages exactly as Common.run_sweep drives them: assemble the
   scenario from its source, prepare the LP, re-solve at the cap. *)
let one_round src (config : Common.config) =
  let nranks = Float.of_int config.Common.nranks in
  List.map
    (fun cap ->
      let sc = Pipeline.Stages.scenario ~socket_seed:config.Common.socket_seed src in
      let job_cap = cap *. nranks in
      let pz = Pipeline.Stages.prepare sc ~power_cap:job_cap in
      match fst (Core.Event_lp.solve_prepared pz ~power_cap:job_cap) with
      | Core.Event_lp.Schedule s -> s.Core.Event_lp.objective
      | Core.Event_lp.Infeasible | Core.Event_lp.Solver_failure _ -> Float.nan)
    config.Common.caps

let arm ~enabled src config =
  Putil.Cache.set_enabled enabled;
  Putil.Cache.clear_all ();
  Putil.Cache.reset_all_stats ();
  time (fun () ->
      List.concat_map (fun _round -> one_round src config)
        (List.init rounds Fun.id))

let write_json ~path ~(config : Common.config) ~cold_s ~cached_s
    ~(st : Putil.Cache.stats) ~max_diff =
  Putil.Fileio.with_out path @@ fun oc ->
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"powerlim-cachebench-v1\",\n";
  pf "  \"ranks\": %d,\n" config.Common.nranks;
  pf "  \"iterations\": %d,\n" config.Common.iterations;
  pf "  \"rounds\": %d,\n" rounds;
  pf "  \"caps_w\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%g") config.Common.caps));
  pf "  \"cold_wall_s\": %.6f,\n" cold_s;
  pf "  \"cached_wall_s\": %.6f,\n" cached_s;
  pf "  \"speedup\": %.3f,\n" (cold_s /. cached_s);
  pf "  \"hits\": %d,\n" st.Putil.Cache.hits;
  pf "  \"misses\": %d,\n" st.Putil.Cache.misses;
  pf "  \"evictions\": %d,\n" st.Putil.Cache.evictions;
  pf "  \"max_rel_objective_diff\": %.3e\n" max_diff;
  pf "}\n"

let run ?(config = Common.default_config) ppf =
  Common.header ppf "Pipeline cache benchmark (scenario -> prepare -> solve)";
  let params =
    {
      Workloads.Apps.nranks = config.Common.nranks;
      iterations = config.Common.iterations;
      seed = config.Common.seed;
      scale = 1.0;
    }
  in
  let src = Pipeline.Stages.Synthetic (Workloads.Apps.CoMD, params) in
  let was_enabled = Putil.Cache.enabled () in
  let cold, cold_s = arm ~enabled:false src config in
  let cached, cached_s = arm ~enabled:true src config in
  let st = Putil.Cache.totals () in
  Putil.Cache.set_enabled was_enabled;
  Putil.Cache.clear_all ();
  Putil.Cache.reset_all_stats ();
  let max_diff =
    List.fold_left2
      (fun acc a b -> Float.max acc (rel_diff a b))
      0.0 cold cached
  in
  Fmt.pf ppf "%d rounds x %d caps (CoMD, %d ranks):@." rounds
    (List.length config.Common.caps) config.Common.nranks;
  Fmt.pf ppf "  cold   : %8.3f s  (cache disabled, every round rebuilds)@."
    cold_s;
  Fmt.pf ppf "  cached : %8.3f s  (%a)@." cached_s Putil.Cache.pp_stats st;
  Fmt.pf ppf "  speedup %.2fx wall; max objective diff %.1e@."
    (cold_s /. cached_s) max_diff;
  let path = "BENCH_pipeline.json" in
  write_json ~path ~config ~cold_s ~cached_s ~st ~max_diff;
  Fmt.pf ppf "wrote %s@." path;
  (* hard gate: the cache must never change a result *)
  if max_diff > 0.0 then begin
    Fmt.epr "cachebench: cached objectives diverged (max %.3e)@." max_diff;
    exit 1
  end
