(** Structural-edit benchmark: the what-if re-solve path
    ({!Core.Event_lp.edit_prepared} / {!Lp.Edit.resolve}) timed against
    cold solves of the same edited problems, over a suite of single
    domain edits (frontier perturbations, a socket failure, a dropped
    rank).  Merges an ["edits"] section into [BENCH_warmstart.json]
    (schema in EXPERIMENTS.md) and fails — non-zero exit — when any
    incremental objective disagrees with its cold counterpart beyond
    1e-9 relative. *)

val run : ?config:Common.config -> Format.formatter -> unit
