(** Ablation studies of the design choices DESIGN.md calls out.  Not
    paper figures — they quantify how much each modeling/algorithmic
    ingredient matters:

    - {b continuous vs discrete} schedules: the cost of rounding the
      LP's configuration blends to single real configurations
      (Section 3.2's two cases);
    - {b slack reduction}: the Section 3.3 initial-schedule modification
      (as-late-as-possible event times) versus the raw earliest-time
      schedule;
    - {b presolve}: LP size and simplex iterations with and without the
      presolve reductions;
    - {b socket variability}: how much of the LP's advantage comes from
      exploiting per-part power-efficiency differences;
    - {b Conductor gain}: reallocation aggressiveness on a balanced (SP)
      versus an imbalanced (BT) application — the thrash trade-off of
      Section 6.4. *)

let solve_span setup job_cap ~mode ~reduce_slack =
  match
    Core.Event_lp.solve ~mode ~reduce_slack setup.Common.sc ~power_cap:job_cap
  with
  | Core.Event_lp.Schedule s ->
      let v = Core.Replay.validate setup.Common.sc s ~power_cap:job_cap in
      Some (s, v)
  | _ -> None

let continuous_vs_discrete config ppf =
  Common.header ppf "Ablation: continuous blends vs discrete rounding";
  Fmt.pf ppf "# app cap_W lp_continuous_s replay_discrete_s penalty_pct within_cap@.";
  List.iter
    (fun app ->
      let setup = Common.make_setup config app in
      List.iter
        (fun cap ->
          let job_cap = cap *. Float.of_int config.Common.nranks in
          match
            ( solve_span setup job_cap ~mode:Core.Event_lp.Continuous
                ~reduce_slack:true,
              solve_span setup job_cap ~mode:Core.Event_lp.Discrete_rounded
                ~reduce_slack:true )
          with
          | Some (cont, _), Some (_, vd) ->
              Fmt.pf ppf "%-7s %4.0f %9.3f %9.3f %+6.2f %b@."
                (Workloads.Apps.app_name app)
                cap cont.Core.Event_lp.objective
                vd.Core.Replay.replay_makespan
                (100.0
                *. (vd.Core.Replay.replay_makespan
                    /. cont.Core.Event_lp.objective
                   -. 1.0))
                vd.Core.Replay.within_cap
          | _ -> Fmt.pf ppf "%-7s %4.0f (infeasible)@." (Workloads.Apps.app_name app) cap)
        [ 35.0; 50.0; 70.0 ])
    [ Workloads.Apps.CoMD; Workloads.Apps.LULESH ]

let slack_reduction config ppf =
  Common.header ppf
    "Ablation: Section 3.3 slack-reduced initial schedule vs earliest-time";
  Fmt.pf ppf "# app cap_W bound_reduced_s bound_raw_s diff_pct@.";
  List.iter
    (fun app ->
      let setup = Common.make_setup config app in
      List.iter
        (fun cap ->
          let job_cap = cap *. Float.of_int config.Common.nranks in
          match
            ( solve_span setup job_cap ~mode:Core.Event_lp.Continuous
                ~reduce_slack:true,
              solve_span setup job_cap ~mode:Core.Event_lp.Continuous
                ~reduce_slack:false )
          with
          | Some (yes, _), Some (no, _) ->
              Fmt.pf ppf "%-7s %4.0f %9.3f %9.3f %+6.2f@."
                (Workloads.Apps.app_name app)
                cap yes.Core.Event_lp.objective no.Core.Event_lp.objective
                (100.0
                *. (yes.Core.Event_lp.objective /. no.Core.Event_lp.objective
                   -. 1.0))
          | _ -> Fmt.pf ppf "%-7s %4.0f (infeasible)@." (Workloads.Apps.app_name app) cap)
        [ 35.0; 50.0 ])
    [ Workloads.Apps.LULESH; Workloads.Apps.BT ]

let presolve_effect config ppf =
  Common.header ppf "Ablation: presolve reductions on the event LP";
  let setup = Common.make_setup config Workloads.Apps.LULESH in
  let job_cap = 50.0 *. Float.of_int config.Common.nranks in
  let with_stats presolve =
    match
      Core.Event_lp.solve ~presolve setup.Common.sc ~power_cap:job_cap
    with
    | Core.Event_lp.Schedule s -> Some s.Core.Event_lp.stats
    | _ -> None
  in
  match (with_stats true, with_stats false) with
  | Some pre, Some raw ->
      Fmt.pf ppf
        "LULESH at 50 W/socket: %d rows x %d cols; simplex iterations %d \
         (with presolve) vs %d (without)@."
        raw.Core.Event_lp.rows raw.Core.Event_lp.cols
        pre.Core.Event_lp.iterations raw.Core.Event_lp.iterations
  | _ -> Fmt.pf ppf "(infeasible)@."

let socket_variability config ppf =
  Common.header ppf "Ablation: per-socket manufacturing variability";
  Fmt.pf ppf "# variability lp_vs_static_pct (CoMD at 30 W/socket)@.";
  List.iter
    (fun variability ->
      let params =
        {
          Workloads.Apps.nranks = config.Common.nranks;
          iterations = config.Common.iterations;
          seed = config.Common.seed;
          scale = 1.0;
        }
      in
      let sc =
        Pipeline.Stages.scenario ~socket_seed:config.Common.socket_seed
          ~variability
          (Pipeline.Stages.Synthetic (Workloads.Apps.CoMD, params))
      in
      let job_cap = 30.0 *. Float.of_int config.Common.nranks in
      let st = Runtime.Static.run sc ~job_cap in
      match Core.Event_lp.solve sc ~power_cap:job_cap with
      | Core.Event_lp.Schedule s ->
          let v = Core.Replay.validate sc s ~power_cap:job_cap in
          Fmt.pf ppf "%.2f %+6.1f@." variability
            (Simulate.Stats.improvement_pct
               ~base:st.Simulate.Engine.makespan
               ~t:v.Core.Replay.replay_makespan)
      | _ -> Fmt.pf ppf "%.2f (infeasible)@." variability)
    [ 0.0; 0.02; 0.04; 0.08 ]

let conductor_gain config ppf =
  Common.header ppf
    "Ablation: Conductor reallocation gain (balanced SP vs imbalanced BT)";
  Fmt.pf ppf "# gain sp_vs_static_pct bt_vs_static_pct@.";
  let run app gain =
    let setup = Common.make_setup config app in
    let job_cap = 40.0 *. Float.of_int config.Common.nranks in
    let knobs = { Runtime.Conductor.default_knobs with Runtime.Conductor.gain } in
    let st = Runtime.Static.run setup.Common.sc ~job_cap in
    let co = Runtime.Conductor.run ~knobs setup.Common.sc ~job_cap in
    Simulate.Stats.improvement_pct
      ~base:(Common.span_after_skip setup st)
      ~t:(Common.span_after_skip setup co)
  in
  List.iter
    (fun gain ->
      Fmt.pf ppf "%.2f %+6.1f %+6.1f@." gain
        (run Workloads.Apps.SP gain)
        (run Workloads.Apps.BT gain))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

let energy_vs_time config ppf =
  Common.header ppf
    "Ablation: power-constrained optimization is not energy minimization";
  Fmt.pf ppf "# method time_s energy_kJ avg_power_W (BT at 40 W/socket)@.";
  let setup = Common.make_setup config Workloads.Apps.BT in
  let job_cap = 40.0 *. Float.of_int config.Common.nranks in
  let report name (r : Simulate.Engine.result) =
    Fmt.pf ppf "%-10s %8.3f %8.2f %8.1f@." name r.Simulate.Engine.makespan
      (r.Simulate.Engine.energy /. 1e3)
      r.Simulate.Engine.avg_power
  in
  report "static" (Runtime.Static.run setup.Common.sc ~job_cap);
  report "conductor" (Runtime.Conductor.run setup.Common.sc ~job_cap);
  (match Core.Event_lp.solve setup.Common.sc ~power_cap:job_cap with
  | Core.Event_lp.Schedule s ->
      let v = Core.Replay.validate setup.Common.sc s ~power_cap:job_cap in
      report "lp-replay" v.Core.Replay.result
  | _ -> Fmt.pf ppf "lp-replay  (infeasible)@.");
  (* Adagio ignores the cap entirely: fastest time, lowest energy, but a
     power profile no power-limited machine could host *)
  report "adagio" (Runtime.Adagio.run setup.Common.sc);
  Fmt.pf ppf
    "# note: adagio's power is unconstrained (%.0f W cap would be violated); \
     the LP uses its full budget to buy time@."
    job_cap

let run ?(config = Common.default_config) ppf =
  continuous_vs_discrete config ppf;
  slack_reduction config ppf;
  presolve_effect config ppf;
  socket_variability config ppf;
  conductor_gain config ppf;
  energy_vs_time config ppf
