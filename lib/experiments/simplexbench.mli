(** Simplex-kernel benchmark: hypersparse FTRAN/BTRAN and devex pricing
    vs the dense + Dantzig baseline at three trace sizes, toggled
    in-process via [POWERLIM_HYPERSPARSE]/[POWERLIM_DEVEX].  Writes
    [BENCH_simplex.json] (schema documented in EXPERIMENTS.md) and
    fails — non-zero exit — when any mode's objective differs from the
    baseline beyond 1e-9 at any cap. *)

val run : ?config:Common.config -> Format.formatter -> unit
