(** Energy under a deadline: the objective-mode extension's experiment
    family.  For every benchmark, sweep the energy-optimal LP over
    deadlines (multiples of the makespan bound T* at a reference cap),
    replay each schedule, run the slack-reclamation post-pass, and set
    the results against the runtime policies (Static, Conductor and the
    redistribution runtime) executing under the same cap — the policies
    pay for their slack in watts, the LP converts it into joules. *)

type app_result = {
  app : Workloads.Apps.app;
  cap : float;  (** watts per socket *)
  es : Common.energy_sweep;
  static_span : float;
  static_energy : float;
  conductor_span : float;
  conductor_energy : float;
  redistrib_span : float;
  redistrib_energy : float;
}

type t = app_result list

(* Reference cap per app: the midpoint of its figure's power range,
   where the cap binds but every app is schedulable. *)
let reference_cap app =
  let lo, hi = Common.figure_caps app in
  Float.round ((lo +. hi) /. 2.0)

let compute_app (config : Common.config) app : app_result =
  let s = Common.make_setup config app in
  let cap = reference_cap app in
  let job_cap = cap *. Float.of_int config.Common.nranks in
  let es = Common.run_deadline_sweep s ~cap in
  let st = Runtime.Static.run s.Common.sc ~job_cap in
  let co = Runtime.Conductor.run s.Common.sc ~job_cap in
  let rd = Runtime.Redistrib.run s.Common.sc ~job_cap in
  {
    app;
    cap;
    es;
    static_span = st.Simulate.Engine.makespan;
    static_energy = st.Simulate.Engine.energy;
    conductor_span = co.Simulate.Engine.makespan;
    conductor_energy = co.Simulate.Engine.energy;
    redistrib_span = rd.Simulate.Engine.makespan;
    redistrib_energy = rd.Simulate.Engine.energy;
  }

let compute ?pool ?(config = Common.default_config) () : t =
  let pool =
    match pool with Some p -> p | None -> Putil.Pool.get_default ()
  in
  Putil.Pool.parallel_map pool
    (fun app ->
      Putil.Obs.span ~cat:"sweep"
        ~args:[ ("app", Workloads.Apps.app_name app) ]
        "energy-app"
        (fun () -> compute_app config app))
    Workloads.Apps.all_apps

let pp_j ppf v =
  if Float.is_nan v then Fmt.string ppf "       -" else Fmt.pf ppf "%8.1f" v

let pp_s ppf v =
  if Float.is_nan v then Fmt.string ppf "      -" else Fmt.pf ppf "%7.4f" v

let pp_sweep ppf (es : Common.energy_sweep) =
  Fmt.pf ppf "makespan bound T* %.4f s, energy at T* %.1f J@."
    es.Common.makespan_bound es.Common.bound_energy_j;
  Fmt.pf ppf
    "# deadline_x deadline_s lp_energy_j lp_makespan_s replay_j \
     reclaimed_j reclaim_pct stretched cap_ok@.";
  List.iter
    (fun (p : Common.energy_point) ->
      if p.Common.feasible then
        Fmt.pf ppf "%6.2f %a %a %a %a %a %6.2f %5d %s@." p.Common.multiplier
          pp_s p.Common.deadline pp_j p.Common.lp_energy_j pp_s
          p.Common.lp_makespan pp_j p.Common.replay_energy_j pp_j
          p.Common.reclaimed_energy_j p.Common.reclaimed_pct
          p.Common.tasks_stretched
          (if p.Common.within_cap then "ok" else "VIOLATED")
      else
        Fmt.pf ppf "%6.2f %a infeasible@." p.Common.multiplier pp_s
          p.Common.deadline)
    es.Common.epoints

let render (r : app_result) ppf =
  Common.header ppf
    (Fmt.str "Energy under deadline: %s (%.0f W/socket)"
       (Workloads.Apps.app_name r.app) r.cap);
  if Float.is_nan r.es.Common.makespan_bound then
    Fmt.pf ppf "cap infeasible: no schedule fits %.0f W/socket@." r.cap
  else begin
    pp_sweep ppf r.es;
    Fmt.pf ppf
      "policies at the cap: static %.4f s / %.1f J, conductor %.4f s / %.1f \
       J, redistrib %.4f s / %.1f J@."
      r.static_span r.static_energy r.conductor_span r.conductor_energy
      r.redistrib_span r.redistrib_energy
  end

let run ?pool ?(config = Common.default_config) ppf =
  let t = compute ?pool ~config () in
  List.iter (fun r -> render r ppf) t
