(** Micro-benchmark of the domain-parallel sweep engine: the same small
    sweep timed on a 1-domain (sequential) pool and on an N-domain pool,
    with a byte-level check that both produce identical results.  Not a
    paper artifact — engineering data for the task-pool substrate. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Render the summary (the figure data all flows from the same points)
   to compare the two runs byte for byte. *)
let render (s : Sweeps.t) = Fmt.str "%t" (Sweeps.summary s)

let run ?(config = Common.default_config) ppf =
  Common.header ppf "Parallel sweep micro-benchmark";
  let small =
    {
      config with
      nranks = min config.nranks 8;
      iterations = min config.iterations 6;
    }
  in
  let jobs =
    let d = Putil.Pool.default_size () in
    if d > 1 then d else 4
  in
  let seq = Putil.Pool.create ~size:1 () in
  let par = Putil.Pool.create ~size:jobs () in
  let s1, t1 = time (fun () -> Sweeps.compute ~pool:seq ~config:small ()) in
  let sn, tn = time (fun () -> Sweeps.compute ~pool:par ~config:small ()) in
  Putil.Pool.shutdown par;
  Putil.Pool.shutdown seq;
  Fmt.pf ppf "sweep (%d ranks, %d iterations, %d caps x %d apps)@."
    small.Common.nranks small.Common.iterations
    (List.length small.Common.caps)
    (List.length Workloads.Apps.all_apps);
  Fmt.pf ppf "  1 domain  : %8.3f s@." t1;
  Fmt.pf ppf "  %d domains : %8.3f s  (speedup %.2fx)@." jobs tn (t1 /. tn);
  Fmt.pf ppf "  results identical: %b@." (String.equal (render s1) (render sn))
