(** Warm-start benchmark: the power-cap sweep re-solve path and the
    flow-ILP branch and bound, each timed cold (every LP solved from
    scratch) and warm (basis reuse via {!Core.Event_lp.prepare} /
    {!Lp.Milp}).  Asserts cold and warm objectives agree to 1e-9 — the
    CI smoke step relies on the non-zero exit — and writes the measured
    trajectory to [BENCH_warmstart.json] (schema in EXPERIMENTS.md) so
    future changes can be checked against it.  Not a paper artifact —
    engineering data for the solver substrate. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rel_diff a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs a)

(* The sweep side: one objective per cap, cold = full build + presolve +
   phase-1/2 per cap, warm = build once, thread the previous cap's basis
   down the sorted cap list. *)
let sweep_side (s : Common.setup) (caps : float list) =
  let nranks = Float.of_int s.Common.config.Common.nranks in
  let objective = function
    | Core.Event_lp.Schedule sched -> sched.Core.Event_lp.objective
    | Core.Event_lp.Infeasible | Core.Event_lp.Solver_failure _ -> Float.nan
  in
  Lp.Stats.reset ();
  let cold, cold_s =
    time (fun () ->
        List.map
          (fun cap ->
            objective
              (Core.Event_lp.solve s.Common.sc ~power_cap:(cap *. nranks)))
          caps)
  in
  let st_cold = Lp.Stats.snapshot () in
  Lp.Stats.reset ();
  let warm, warm_s =
    time (fun () ->
        match caps with
        | [] -> []
        | _ ->
            let loosest = List.fold_left Float.max Float.neg_infinity caps in
            let pz =
              Core.Event_lp.prepare s.Common.sc
                ~power_cap:(loosest *. nranks)
            in
            let prev = ref None in
            List.map
              (fun cap ->
                let o, b =
                  Core.Event_lp.solve_prepared ?warm:!prev pz
                    ~power_cap:(cap *. nranks)
                in
                (match b with Some _ -> prev := b | None -> ());
                objective o)
              caps)
  in
  let st_warm = Lp.Stats.snapshot () in
  let max_diff =
    List.fold_left2
      (fun acc a b ->
        if Float.is_nan a && Float.is_nan b then acc
        else Float.max acc (rel_diff a b))
      0.0 cold warm
  in
  (cold_s, st_cold, warm_s, st_warm, max_diff)

(* The MILP side: the figure-8 two-rank exchange ILP, branch and bound
   with and without parent-basis warm starts. *)
let milp_side () =
  let g = Workloads.Apps.exchange ~rounds:2 () in
  let sc = Pipeline.Stages.scenario (Pipeline.Stages.Graph g) in
  let cap = Float.max 60.0 (1.1 *. Core.Scenario.min_job_power sc) in
  let run warm =
    Lp.Stats.reset ();
    let r, wall =
      time (fun () -> Core.Flow_ilp.solve ~warm sc ~power_cap:cap)
    in
    let st = Lp.Stats.snapshot () in
    match r with
    | Core.Flow_ilp.Schedule f ->
        (f.Core.Flow_ilp.objective, f.Core.Flow_ilp.stats.Core.Flow_ilp.nodes,
         wall, st)
    | _ -> failwith "warmbench: flow ILP did not return a schedule"
  in
  let obj_c, nodes_c, wall_c, st_c = run false in
  let obj_w, nodes_w, wall_w, st_w = run true in
  (cap, obj_c, nodes_c, wall_c, st_c, obj_w, nodes_w, wall_w, st_w)

let write_json ~path ~config ~caps ~sweep ~milp =
  let cold_s, (st_cold : Lp.Stats.snapshot), warm_s, st_warm, max_diff =
    sweep
  in
  let cap, obj_c, nodes_c, wall_c, (st_c : Lp.Stats.snapshot), obj_w, nodes_w,
      wall_w, st_w =
    milp
  in
  Putil.Fileio.with_out path @@ fun oc ->
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"powerlim-warmbench-v1\",\n";
  pf "  \"ranks\": %d,\n" config.Common.nranks;
  pf "  \"iterations\": %d,\n" config.Common.iterations;
  pf "  \"sweep\": {\n";
  pf "    \"caps_w\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%g") caps));
  pf "    \"cold_wall_s\": %.6f,\n" cold_s;
  pf "    \"warm_wall_s\": %.6f,\n" warm_s;
  pf "    \"speedup\": %.3f,\n" (cold_s /. warm_s);
  pf "    \"cold_pivots\": %d,\n" st_cold.Lp.Stats.pivots;
  pf "    \"warm_pivots\": %d,\n" st_warm.Lp.Stats.pivots;
  pf "    \"pivot_ratio\": %.3f,\n"
    (Float.of_int st_cold.Lp.Stats.pivots
    /. Float.max 1.0 (Float.of_int st_warm.Lp.Stats.pivots));
  pf "    \"warm_dual_pivots\": %d,\n" st_warm.Lp.Stats.dual_pivots;
  pf "    \"warm_bound_flips\": %d,\n" st_warm.Lp.Stats.bound_flips;
  pf "    \"warm_fallbacks\": %d,\n" st_warm.Lp.Stats.warm_fallbacks;
  pf "    \"max_rel_objective_diff\": %.3e\n" max_diff;
  pf "  },\n";
  pf "  \"milp\": {\n";
  pf "    \"power_cap_w\": %.1f,\n" cap;
  pf "    \"cold_wall_s\": %.6f,\n" wall_c;
  pf "    \"warm_wall_s\": %.6f,\n" wall_w;
  pf "    \"speedup\": %.3f,\n" (wall_c /. wall_w);
  pf "    \"cold_nodes\": %d,\n" nodes_c;
  pf "    \"warm_nodes\": %d,\n" nodes_w;
  pf "    \"cold_pivots_per_node\": %.2f,\n"
    (Float.of_int st_c.Lp.Stats.pivots /. Float.max 1.0 (Float.of_int nodes_c));
  pf "    \"warm_pivots_per_node\": %.2f,\n"
    (Float.of_int st_w.Lp.Stats.pivots /. Float.max 1.0 (Float.of_int nodes_w));
  pf "    \"pivot_ratio\": %.3f,\n"
    (Float.of_int st_c.Lp.Stats.pivots
    /. Float.max 1.0 (Float.of_int st_w.Lp.Stats.pivots));
  pf "    \"rel_objective_diff\": %.3e\n" (rel_diff obj_c obj_w);
  pf "  }\n";
  pf "}\n"

let run ?(config = Common.default_config) ppf =
  Common.header ppf "Warm-start benchmark (sweep re-solves + MILP nodes)";
  let s = Common.make_setup config Workloads.Apps.CoMD in
  (* tightest cap first: the loosest-cap optimum leaves the power rows
     slack and is massively dual degenerate, so chains start from a
     power-anchored vertex and loosen (see Common.run_sweep) *)
  let caps = List.sort Float.compare config.Common.caps in
  let sweep = sweep_side s caps in
  let cold_s, st_cold, warm_s, st_warm, max_diff = sweep in
  Fmt.pf ppf "sweep (CoMD, %d ranks, %d caps):@." config.Common.nranks
    (List.length caps);
  Fmt.pf ppf "  cold : %8.3f s  (%a)@." cold_s Lp.Stats.pp st_cold;
  Fmt.pf ppf "  warm : %8.3f s  (%a)@." warm_s Lp.Stats.pp st_warm;
  Fmt.pf ppf "  speedup %.2fx wall, %.2fx pivots; max objective diff %.1e@."
    (cold_s /. warm_s)
    (Float.of_int st_cold.Lp.Stats.pivots
    /. Float.max 1.0 (Float.of_int st_warm.Lp.Stats.pivots))
    max_diff;
  let milp = milp_side () in
  let cap, obj_c, nodes_c, wall_c, st_c, obj_w, nodes_w, wall_w, st_w = milp in
  Fmt.pf ppf "flow ILP (2-rank exchange, %.0f W):@." cap;
  Fmt.pf ppf "  cold : %8.3f s, %d nodes, %.1f pivots/node@." wall_c nodes_c
    (Float.of_int st_c.Lp.Stats.pivots /. Float.max 1.0 (Float.of_int nodes_c));
  Fmt.pf ppf "  warm : %8.3f s, %d nodes, %.1f pivots/node (%d fallbacks)@."
    wall_w nodes_w
    (Float.of_int st_w.Lp.Stats.pivots /. Float.max 1.0 (Float.of_int nodes_w))
    st_w.Lp.Stats.warm_fallbacks;
  Fmt.pf ppf "  objective diff %.1e@." (rel_diff obj_c obj_w);
  let path = "BENCH_warmstart.json" in
  write_json ~path ~config ~caps ~sweep ~milp;
  Fmt.pf ppf "wrote %s@." path;
  (* hard gate: warm starts must not change any objective *)
  if max_diff > 1e-9 then
    failwith
      (Printf.sprintf "warmbench: cold vs warm sweep objectives differ (%g)"
         max_diff);
  if rel_diff obj_c obj_w > 1e-9 then
    failwith
      (Printf.sprintf "warmbench: cold vs warm MILP objectives differ (%g)"
         (rel_diff obj_c obj_w))
