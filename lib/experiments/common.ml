(** Shared machinery for the paper-reproduction experiments: scenario
    construction, the three-method comparison (Static / Conductor /
    LP-replay), and the power-cap sweep that Figures 9-11 and 13-15 are
    all views of. *)

type config = {
  nranks : int;
  iterations : int;
  seed : int;
  socket_seed : int;
  skip : int;  (** iterations discarded (Conductor's exploration phase) *)
  caps : float list;  (** average watts per processor socket *)
}

let default_config =
  {
    nranks = 16;
    iterations = 10;
    seed = 42;
    socket_seed = 7;
    skip = 3;
    caps = [ 30.0; 35.0; 40.0; 50.0; 60.0; 70.0; 80.0 ];
  }

type setup = {
  app : Workloads.Apps.app;
  graph : Dag.Graph.t;
  sc : Core.Scenario.t;
  config : config;
}

let make_setup config app =
  let params =
    {
      Workloads.Apps.nranks = config.nranks;
      iterations = config.iterations;
      seed = config.seed;
      scale = 1.0;
    }
  in
  let graph = Workloads.Apps.generate app params in
  { app; graph; sc = Core.Scenario.make ~socket_seed:config.socket_seed graph; config }

(** Wall time of iterations [>= skip] (the paper discards the first three
    iterations as Conductor's configuration-exploration phase). *)
let span_after_skip (s : setup) (r : Simulate.Engine.result) =
  let skip = s.config.skip in
  let t0 = ref Float.infinity in
  Array.iter
    (fun (rc : Simulate.Engine.task_record) ->
      if
        s.graph.Dag.Graph.tasks.(rc.tid).Dag.Graph.iteration >= skip
        && rc.start < !t0
      then t0 := rc.start)
    r.Simulate.Engine.records;
  if !t0 = Float.infinity then r.Simulate.Engine.makespan
  else r.Simulate.Engine.makespan -. !t0

type point = {
  cap : float;  (** watts per socket *)
  schedulable : bool;
  static_span : float;
  conductor_span : float;
  lp_span : float;  (** validated LP-replay span *)
  lp_objective : float;
  lp_vs_static : float;  (** percent improvement, equations of Sec. 6 *)
  lp_vs_conductor : float;
  conductor_vs_static : float;
  lp_max_power : float;
  job_cap : float;
}

type sweep = { setup : setup; points : point list }

let run_point (s : setup) ~cap : point =
  let job_cap = cap *. Float.of_int s.config.nranks in
  match Core.Event_lp.solve s.sc ~power_cap:job_cap with
  | Core.Event_lp.Infeasible | Core.Event_lp.Solver_failure _ ->
      {
        cap;
        schedulable = false;
        static_span = Float.nan;
        conductor_span = Float.nan;
        lp_span = Float.nan;
        lp_objective = Float.nan;
        lp_vs_static = Float.nan;
        lp_vs_conductor = Float.nan;
        conductor_vs_static = Float.nan;
        lp_max_power = Float.nan;
        job_cap;
      }
  | Core.Event_lp.Schedule sched ->
      let v = Core.Replay.validate s.sc sched ~power_cap:job_cap in
      let st = Runtime.Static.run s.sc ~job_cap in
      let co = Runtime.Conductor.run s.sc ~job_cap in
      let lp_span = span_after_skip s v.Core.Replay.result in
      let static_span = span_after_skip s st in
      let conductor_span = span_after_skip s co in
      {
        cap;
        schedulable = true;
        static_span;
        conductor_span;
        lp_span;
        lp_objective = sched.Core.Event_lp.objective;
        lp_vs_static =
          Simulate.Stats.improvement_pct ~base:static_span ~t:lp_span;
        lp_vs_conductor =
          Simulate.Stats.improvement_pct ~base:conductor_span ~t:lp_span;
        conductor_vs_static =
          Simulate.Stats.improvement_pct ~base:static_span ~t:conductor_span;
        lp_max_power = v.Core.Replay.max_power;
        job_cap;
      }

(* Each cap point is an independent solve+simulate job: [setup] (graph,
   scenario, frontiers) is immutable after construction, and every solver
   and simulator allocates its own working state per run, so sharing the
   setup across domains is safe. *)
let run_sweep ?pool (s : setup) : sweep =
  let pool =
    match pool with Some p -> p | None -> Putil.Pool.get_default ()
  in
  {
    setup = s;
    points =
      Putil.Pool.parallel_map pool (fun cap -> run_point s ~cap) s.config.caps;
  }

(** The power range each per-benchmark figure shows (x-axes of the
    paper's Figures 11 and 13-15). *)
let figure_caps = function
  | Workloads.Apps.CoMD -> (30.0, 80.0)
  | Workloads.Apps.BT -> (30.0, 70.0)
  | Workloads.Apps.SP -> (40.0, 80.0)
  | Workloads.Apps.LULESH -> (40.0, 80.0)

let in_figure_range app p =
  let lo, hi = figure_caps app in
  p.cap >= lo -. 1e-9 && p.cap <= hi +. 1e-9

(* ------------------------------------------------------------------ *)
(* printing helpers                                                    *)
(* ------------------------------------------------------------------ *)

let header ppf title =
  Fmt.pf ppf "@.=== %s ===@." title

let pp_pct ppf v =
  if Float.is_nan v then Fmt.string ppf "     -" else Fmt.pf ppf "%+6.1f" v
