(** Shared machinery for the paper-reproduction experiments: scenario
    construction, the three-method comparison (Static / Conductor /
    LP-replay), and the power-cap sweep that Figures 9-11 and 13-15 are
    all views of. *)

type config = {
  nranks : int;
  iterations : int;
  seed : int;
  socket_seed : int;
  skip : int;  (** iterations discarded (Conductor's exploration phase) *)
  caps : float list;  (** average watts per processor socket *)
}

let default_config =
  {
    nranks = 16;
    iterations = 10;
    seed = 42;
    socket_seed = 7;
    skip = 3;
    caps = [ 30.0; 35.0; 40.0; 50.0; 60.0; 70.0; 80.0 ];
  }

type setup = {
  app : Workloads.Apps.app;
  graph : Dag.Graph.t;
  sc : Core.Scenario.t;
  config : config;
}

let make_setup config app =
  let params =
    {
      Workloads.Apps.nranks = config.nranks;
      iterations = config.iterations;
      seed = config.seed;
      scale = 1.0;
    }
  in
  let sc =
    Pipeline.Stages.scenario ~socket_seed:config.socket_seed
      (Pipeline.Stages.Synthetic (app, params))
  in
  { app; graph = sc.Core.Scenario.graph; sc; config }

(** Wall time of iterations [>= skip] (the paper discards the first three
    iterations as Conductor's configuration-exploration phase). *)
let span_after_skip (s : setup) (r : Simulate.Engine.result) =
  let skip = s.config.skip in
  let t0 = ref Float.infinity in
  Array.iter
    (fun (rc : Simulate.Engine.task_record) ->
      if
        s.graph.Dag.Graph.tasks.(rc.tid).Dag.Graph.iteration >= skip
        && rc.start < !t0
      then t0 := rc.start)
    r.Simulate.Engine.records;
  if !t0 = Float.infinity then r.Simulate.Engine.makespan
  else r.Simulate.Engine.makespan -. !t0

type point = {
  cap : float;  (** watts per socket *)
  schedulable : bool;
  static_span : float;
  conductor_span : float;
  lp_span : float;  (** validated LP-replay span *)
  lp_objective : float;
  lp_vs_static : float;  (** percent improvement, equations of Sec. 6 *)
  lp_vs_conductor : float;
  conductor_vs_static : float;
  lp_max_power : float;
  job_cap : float;
}

type sweep = { setup : setup; points : point list }

(* Map a solver outcome at one cap to a sweep point. *)
let point_of_outcome (s : setup) ~cap ~job_cap (o : Core.Event_lp.outcome) :
    point =
  match o with
  | Core.Event_lp.Infeasible | Core.Event_lp.Solver_failure _ ->
      {
        cap;
        schedulable = false;
        static_span = Float.nan;
        conductor_span = Float.nan;
        lp_span = Float.nan;
        lp_objective = Float.nan;
        lp_vs_static = Float.nan;
        lp_vs_conductor = Float.nan;
        conductor_vs_static = Float.nan;
        lp_max_power = Float.nan;
        job_cap;
      }
  | Core.Event_lp.Schedule sched ->
      let v = Core.Replay.validate s.sc sched ~power_cap:job_cap in
      let st = Runtime.Static.run s.sc ~job_cap in
      let co = Runtime.Conductor.run s.sc ~job_cap in
      let lp_span = span_after_skip s v.Core.Replay.result in
      let static_span = span_after_skip s st in
      let conductor_span = span_after_skip s co in
      {
        cap;
        schedulable = true;
        static_span;
        conductor_span;
        lp_span;
        lp_objective = sched.Core.Event_lp.objective;
        lp_vs_static =
          Simulate.Stats.improvement_pct ~base:static_span ~t:lp_span;
        lp_vs_conductor =
          Simulate.Stats.improvement_pct ~base:conductor_span ~t:lp_span;
        conductor_vs_static =
          Simulate.Stats.improvement_pct ~base:static_span ~t:conductor_span;
        lp_max_power = v.Core.Replay.max_power;
        job_cap;
      }

(* One span per cap point: the unit of work the paper's figures sum up,
   and the natural bar of the sweep flame chart. *)
let cap_span (s : setup) ~cap f =
  Putil.Obs.span ~cat:"sweep"
    ~args:
      [
        ("app", Workloads.Apps.app_name s.app);
        ("cap", Printf.sprintf "%g" cap);
      ]
    "cap" f

let run_point (s : setup) ~cap : point =
  cap_span s ~cap (fun () ->
      let job_cap = cap *. Float.of_int s.config.nranks in
      point_of_outcome s ~cap ~job_cap
        (Core.Event_lp.solve s.sc ~power_cap:job_cap))

(** One cap of a prepared sweep: re-solve the shared model at [cap],
    optionally warm-started, and return the point together with the final
    basis to thread into the next cap. *)
let solve_point (s : setup) (pz : Core.Event_lp.prepared) ?warm ~cap () :
    point * Lp.Revised.basis option * Core.Event_lp.outcome =
  let job_cap = cap *. Float.of_int s.config.nranks in
  let outcome, b = Core.Event_lp.solve_prepared ?warm pz ~power_cap:job_cap in
  (point_of_outcome s ~cap ~job_cap outcome, b, outcome)

let run_point_prepared (s : setup) (pz : Core.Event_lp.prepared) ?warm ~cap ()
    : point * Lp.Revised.basis option =
  let pt, b, _ = solve_point s pz ?warm ~cap () in
  (pt, b)

(* Warm starts across the sweep are on by default; POWERLIM_WARM=0 turns
   them off (cold re-solves through the same prepared pipeline). *)
let warm_default () = Putil.Env.flag "POWERLIM_WARM" ~default:true

(* Each cap point is an independent solve+simulate job: [setup] (graph,
   scenario, frontiers) is immutable after construction, and every solver
   and simulator allocates its own working state per run, so sharing the
   setup across domains is safe.

   The caps are sorted ascending (tightest first) and split into a
   {e fixed} number of contiguous chains.  Each chain builds the event LP
   once ({!Core.Event_lp.prepare} at its loosest cap, where presolve is
   least likely to drop a power row) and re-solves up the chain,
   threading the previous cap's optimal basis as a warm start — a cap
   change only moves the power-row RHS, so the previous basis stays dual
   feasible and the dual simplex reoptimizes in O(m) pivots.  Tightest
   first matters: the loosest-cap optimum leaves the power rows slack
   and, with identical ranks, is massively dual degenerate — chaining
   {e from} it makes the dual crawl, while every hop between
   power-anchored optima is cheap.  Caps whose power duals are all zero
   (the cap does not constrain the schedule) are re-solved cold (see the
   comment in the chain body), so warm output is byte-identical to cold
   output.  The chain count does
   not depend on the pool size, so sweep output is identical at any
   POWERLIM_JOBS setting. *)
let run_sweep ?pool ?warm (s : setup) : sweep =
  let warm = match warm with Some w -> w | None -> warm_default () in
  let pool =
    match pool with Some p -> p | None -> Putil.Pool.get_default ()
  in
  let caps = Array.of_list s.config.caps in
  let n = Array.length caps in
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match Float.compare caps.(i) caps.(j) with
      | 0 -> compare i j
      | c -> c)
    order;
  let nchains = if n >= 4 then 2 else 1 in
  let chains =
    List.init nchains (fun c ->
        let lo = c * n / nchains and hi = (c + 1) * n / nchains in
        Array.to_list (Array.sub order lo (hi - lo)))
  in
  let run_chain idxs =
    match idxs with
    | [] -> []
    | idxs ->
        let loosest =
          List.fold_left (fun acc i -> Float.max acc caps.(i)) neg_infinity
            idxs
        in
        let pz =
          Pipeline.Stages.prepare s.sc
            ~power_cap:(loosest *. Float.of_int s.config.nranks)
        in
        let unconstraining = function
          | Core.Event_lp.Schedule sch ->
              (* Duals are ~2e-4 s/W or larger wherever power actually
                 binds, and exactly zero (up to roundoff) when it does
                 not, so the threshold is uncritical. *)
              Array.for_all
                (fun (_, d) -> Float.abs d <= 1e-9)
                sch.Core.Event_lp.power_duals
          | _ -> false
        in
        let prev = ref None in
        let warm_on = ref warm in
        List.map
          (fun i ->
            cap_span s ~cap:caps.(i) @@ fun () ->
            let wb = if !warm_on then !prev else None in
            let pt, b, o = solve_point s pz ?warm:wb ~cap:caps.(i) () in
            let pt, b =
              (* Zero power duals mean the cap does not constrain the
                 schedule: the optimum is the cap-independent
                 unconstrained one, which is massively degenerate, and a
                 warm start may land on any of its alternate optima.
                 Re-solve cold so the reported schedule is canonical
                 (byte-identical to the cold path), and stop warming —
                 every looser cap in this ascending chain is
                 unconstraining too, and those solves are the cheap
                 ones. *)
              if Option.is_some wb && unconstraining o then (
                warm_on := false;
                run_point_prepared s pz ~cap:caps.(i) ())
              else (pt, b)
            in
            (match b with Some _ -> prev := b | None -> ());
            (i, pt))
          idxs
  in
  let results = Putil.Pool.parallel_map pool run_chain chains in
  let out = Array.make n None in
  List.iter (List.iter (fun (i, pt) -> out.(i) <- Some pt)) results;
  { setup = s; points = Array.to_list (Array.map Option.get out) }

(* ------------------------------------------------------------------ *)
(* Energy-under-deadline sweeps                                        *)
(* ------------------------------------------------------------------ *)

let default_multipliers = [ 1.0; 1.02; 1.05; 1.1; 1.2; 1.35; 1.5; 1.75; 2.0 ]

type energy_point = {
  deadline : float;  (** seconds *)
  multiplier : float;  (** deadline / makespan bound at the cap *)
  feasible : bool;
  lp_energy_j : float;  (** LP-optimal energy under the deadline *)
  lp_makespan : float;  (** makespan of the energy-optimal schedule *)
  replay_energy_j : float;  (** replayed energy before reclamation *)
  reclaimed_energy_j : float;  (** replayed energy after reclamation *)
  reclaimed_j : float;  (** joules the reclamation pass shaved (LP side) *)
  reclaimed_pct : float;
  tasks_stretched : int;
  max_power : float;  (** worst sustained power of either replay *)
  within_cap : bool;
}

type energy_sweep = {
  esetup : setup;
  cap : float;  (** watts per socket, fixed across the sweep *)
  job_cap : float;
  makespan_bound : float;  (** T*: the LP makespan optimum at the cap *)
  bound_energy_j : float;  (** energy of that makespan-optimal schedule *)
  epoints : energy_point list;
}

let energy_point_of_outcome (s : setup) ~deadline ~multiplier ~job_cap
    (o : Core.Event_lp.outcome) : energy_point =
  match o with
  | Core.Event_lp.Infeasible | Core.Event_lp.Solver_failure _ ->
      {
        deadline;
        multiplier;
        feasible = false;
        lp_energy_j = Float.nan;
        lp_makespan = Float.nan;
        replay_energy_j = Float.nan;
        reclaimed_energy_j = Float.nan;
        reclaimed_j = Float.nan;
        reclaimed_pct = Float.nan;
        tasks_stretched = 0;
        max_power = Float.nan;
        within_cap = false;
      }
  | Core.Event_lp.Schedule sched ->
      let v = Core.Replay.validate s.sc sched ~power_cap:job_cap in
      let rr = Core.Replay.reclaim s.sc sched in
      let vr =
        Core.Replay.validate s.sc rr.Core.Replay.reclaimed ~power_cap:job_cap
      in
      {
        deadline;
        multiplier;
        feasible = true;
        lp_energy_j = sched.Core.Event_lp.lp_energy;
        lp_makespan = sched.Core.Event_lp.makespan;
        replay_energy_j = v.Core.Replay.replay_energy;
        reclaimed_energy_j = vr.Core.Replay.replay_energy;
        reclaimed_j = rr.Core.Replay.reclaimed_j;
        reclaimed_pct = rr.Core.Replay.reclaimed_pct;
        tasks_stretched = rr.Core.Replay.tasks_stretched;
        max_power = Float.max v.Core.Replay.max_power vr.Core.Replay.max_power;
        within_cap = v.Core.Replay.within_cap && vr.Core.Replay.within_cap;
      }

(* The deadline sweep deliberately re-solves every point {e cold} on the
   shared prepared handle: the energy objective puts zero cost on every
   vertex-time column, so {e each} deadline point is as degenerate as an
   unconstraining cap in [run_sweep] — a warm start may land on any
   alternate optimal vertex, and the replayed schedule would depend on
   the warm history.  Cold points are canonical, so sweep output is
   byte-identical under any POWERLIM_WARM / POWERLIM_JOBS setting.  The
   warm deadline-threading fast path ({!Core.Event_lp.solve_prepared_deadline}
   with a basis) is exercised — and its objectives gated against the
   cold ones at 1e-9 — by the [energybench] harness instead. *)
let run_deadline_sweep ?(multipliers = default_multipliers) (s : setup) ~cap :
    energy_sweep =
  let job_cap = cap *. Float.of_int s.config.nranks in
  match Core.Event_lp.solve s.sc ~power_cap:job_cap with
  | Core.Event_lp.Infeasible | Core.Event_lp.Solver_failure _ ->
      {
        esetup = s;
        cap;
        job_cap;
        makespan_bound = Float.nan;
        bound_energy_j = Float.nan;
        epoints = [];
      }
  | Core.Event_lp.Schedule ms ->
      let t_star = ms.Core.Event_lp.makespan in
      let mults = List.sort_uniq Float.compare multipliers in
      let d0 =
        match mults with
        | m :: _ -> t_star *. m
        | [] -> t_star
      in
      let pz =
        Pipeline.Stages.prepare
          ~objective:(Core.Objective.Energy_under_deadline { deadline = d0 })
          s.sc ~power_cap:job_cap
      in
      let epoints =
        List.map
          (fun mult ->
            let deadline = t_star *. mult in
            cap_span s ~cap:deadline @@ fun () ->
            let o, _ = Core.Event_lp.solve_prepared_deadline pz ~deadline in
            energy_point_of_outcome s ~deadline ~multiplier:mult ~job_cap o)
          mults
      in
      {
        esetup = s;
        cap;
        job_cap;
        makespan_bound = t_star;
        bound_energy_j = ms.Core.Event_lp.lp_energy;
        epoints;
      }

(** The power range each per-benchmark figure shows (x-axes of the
    paper's Figures 11 and 13-15). *)
let figure_caps = function
  | Workloads.Apps.CoMD -> (30.0, 80.0)
  | Workloads.Apps.BT -> (30.0, 70.0)
  | Workloads.Apps.SP -> (40.0, 80.0)
  | Workloads.Apps.LULESH -> (40.0, 80.0)

let in_figure_range app (p : point) =
  let lo, hi = figure_caps app in
  p.cap >= lo -. 1e-9 && p.cap <= hi +. 1e-9

(* ------------------------------------------------------------------ *)
(* printing helpers                                                    *)
(* ------------------------------------------------------------------ *)

let header ppf title =
  Fmt.pf ppf "@.=== %s ===@." title

let pp_pct ppf v =
  if Float.is_nan v then Fmt.string ppf "     -" else Fmt.pf ppf "%+6.1f" v
