(** Bechamel micro-benchmarks of the main computational kernels:
    sparse LU factorization, the revised simplex on an event-LP instance,
    Pareto-frontier construction, and a full simulated replay.  Not a
    paper artifact — engineering data for the solver substrate. *)

open Bechamel
open Toolkit

let small_scenario () =
  Pipeline.Stages.scenario
    (Pipeline.Stages.Synthetic
       ( Workloads.Apps.CoMD,
         { Workloads.Apps.default_params with nranks = 8; iterations = 4 } ))

let lu_input m seed =
  let st = Random.State.make [| seed |] in
  let cols =
    Array.init m (fun k ->
        let entries = ref [ (k, 3.0 +. Random.State.float st 2.0) ] in
        for _ = 1 to 6 do
          let i = Random.State.int st m in
          if i <> k then
            entries := (i, Random.State.float st 2.0 -. 1.0) :: !entries
        done;
        !entries)
  in
  fun k f -> List.iter (fun (i, v) -> f i v) cols.(k)

let tests () =
  let sc = small_scenario () in
  let cap = 35.0 *. 8.0 in
  let col_iter = lu_input 300 17 in
  let static_policy = Runtime.Static.policy sc ~job_cap:cap in
  Test.make_grouped ~name:"powerlim"
    [
      Test.make ~name:"lu-factor-300"
        (Staged.stage (fun () -> ignore (Lp.Lu.factor ~m:300 col_iter)));
      Test.make ~name:"pareto-frontier"
        (Staged.stage (fun () ->
             ignore
               (Pareto.Frontier.convex
                  (Machine.Socket.nominal 0)
                  (Machine.Profile.v 1.0))));
      Test.make ~name:"event-lp-comd8x4"
        (Staged.stage (fun () ->
             ignore (Core.Event_lp.solve sc ~power_cap:cap)));
      Test.make ~name:"simulate-static-comd8x4"
        (Staged.stage (fun () ->
             ignore (Simulate.Engine.run sc.Core.Scenario.graph static_policy)));
    ]

let run ?(config = Common.default_config) ppf =
  ignore config;
  Common.header ppf "Micro-benchmarks (Bechamel, ns per run)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> r
            | None -> Float.nan
          in
          Fmt.pf ppf "%-28s %12.0f ns/run (r^2 %.3f)@." name est r2
      | _ -> Fmt.pf ppf "%-28s (no estimate)@." name)
    (List.sort compare rows)
