(** Energy-under-deadline experiment family: per benchmark, the
    energy-optimal LP over a deadline grid (multiples of the makespan
    bound at a mid-figure reference cap), each schedule replayed, slack-
    reclaimed and replayed again, next to the Static / Conductor /
    redistribution runtimes executing under the same cap. *)

type app_result = {
  app : Workloads.Apps.app;
  cap : float;  (** watts per socket *)
  es : Common.energy_sweep;
  static_span : float;
  static_energy : float;
  conductor_span : float;
  conductor_energy : float;
  redistrib_span : float;
  redistrib_energy : float;
}

type t = app_result list

val reference_cap : Workloads.Apps.app -> float
(** Midpoint of the app's figure power range (see
    {!Common.figure_caps}). *)

val compute : ?pool:Putil.Pool.t -> ?config:Common.config -> unit -> t

val pp_sweep : Format.formatter -> Common.energy_sweep -> unit
(** The sweep table alone (T* line plus one row per deadline) — shared
    with the [powerlim energy] subcommand. *)

val render : app_result -> Format.formatter -> unit
val run : ?pool:Putil.Pool.t -> ?config:Common.config -> Format.formatter -> unit
