(** Micro-benchmark comparing the 1-domain and N-domain wall time of the
    figure sweep, including a byte-identity check of the results.  N is
    [Putil.Pool.default_size ()] when that is parallel, else 4. *)

val run : ?config:Common.config -> Format.formatter -> unit
