(** Simplex-kernel benchmark: the hypersparse FTRAN/BTRAN kernels and
    devex candidate-list pricing against the dense + Dantzig baseline,
    at three synthetic trace sizes.  Each size times a cold solve, a
    warm re-solve and a full threaded cap sweep under three solver
    modes, toggled in-process through the [POWERLIM_HYPERSPARSE] /
    [POWERLIM_DEVEX] environment knobs (read per solve by
    {!Lp.Revised}):

    - [baseline]    dense kernels, scan factorization, Dantzig partial
                    pricing (the pre-hypersparse solver);
    - [hypersparse] sparse kernels + symbolic factorization, Dantzig
                    pricing — must match the baseline bit for bit;
    - [full]        the default auto path: sparse kernels + devex
                    pricing at scale, the dense eta-free path below the
                    [POWERLIM_SMALL_LP] threshold.

    Asserts every mode agrees with the baseline objective to 1e-9 at
    every cap — the CI smoke step relies on the non-zero exit — and
    writes wall times (best of 3 repetitions per shape), pivot counts
    and kernel sparse-hit rates to [BENCH_simplex.json] (schema in
    EXPERIMENTS.md).  Not a paper artifact — engineering data for the
    solver substrate. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rel_diff a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs a)

type mode = { m_name : string; hyper : string; devex : string }

(* Knob values are env strings; "" counts as unset to the solver
   ([Unix.putenv] cannot remove a variable), which hands the choice to
   the small-instance auto mode. *)
let modes =
  [
    { m_name = "baseline"; hyper = "0"; devex = "0" };
    { m_name = "hypersparse"; hyper = "1"; devex = "0" };
    { m_name = "full"; hyper = ""; devex = "" };
  ]

(* The solver reads both knobs per solve, so flipping the process
   environment between phases is enough; restoring an originally unset
   variable to "" keeps it auto, which is behaviour-preserving. *)
let with_mode (m : mode) f =
  let saved =
    List.map
      (fun k -> (k, Sys.getenv_opt k))
      [ "POWERLIM_HYPERSPARSE"; "POWERLIM_DEVEX" ]
  in
  Unix.putenv "POWERLIM_HYPERSPARSE" m.hyper;
  Unix.putenv "POWERLIM_DEVEX" m.devex;
  Fun.protect f ~finally:(fun () ->
      List.iter
        (fun (k, old) -> Unix.putenv k (Option.value old ~default:""))
        saved)

type run = {
  cold_s : float;  (** one cold build + solve at the tightest cap *)
  warm_s : float;  (** one warm bound-change re-solve *)
  sweep_s : float;  (** threaded warm sweep over all caps *)
  objs : float list;  (** sweep objective per cap (nan = infeasible) *)
  st : Lp.Stats.snapshot;  (** counters covering all three timings *)
}

let objective = function
  | Core.Event_lp.Schedule sched -> sched.Core.Event_lp.objective
  | Core.Event_lp.Infeasible | Core.Event_lp.Solver_failure _ -> Float.nan

(* One mode at one size: cold solve, warm re-solve, threaded sweep —
   the same shapes Common.run_sweep and Milp exercise.  The whole
   sequence runs [reps] times and each shape reports its minimum wall
   time; the solver is deterministic, so every repetition performs the
   same pivots and the counters are snapshotted from the last one. *)
let reps = 3

let run_mode (s : Common.setup) (caps : float list) (m : mode) : run =
  with_mode m (fun () ->
      let nranks = Float.of_int s.Common.config.Common.nranks in
      let tight = List.hd caps in
      let loosest = List.fold_left Float.max Float.neg_infinity caps in
      let best = ref None in
      for _rep = 1 to reps do
        Lp.Stats.reset ();
        let _, cold_s =
          time (fun () ->
              Core.Event_lp.solve s.Common.sc ~power_cap:(tight *. nranks))
        in
        let pz =
          Core.Event_lp.prepare s.Common.sc ~power_cap:(loosest *. nranks)
        in
        let _, b0 = Core.Event_lp.solve_prepared pz ~power_cap:(tight *. nranks) in
        let next = match caps with _ :: c :: _ -> c | _ -> tight in
        let _, warm_s =
          time (fun () ->
              Core.Event_lp.solve_prepared ?warm:b0 pz
                ~power_cap:(next *. nranks))
        in
        let objs, sweep_s =
          time (fun () ->
              let prev = ref None in
              List.map
                (fun cap ->
                  let o, b =
                    Core.Event_lp.solve_prepared ?warm:!prev pz
                      ~power_cap:(cap *. nranks)
                  in
                  (match b with Some _ -> prev := b | None -> ());
                  objective o)
                caps)
        in
        let r = { cold_s; warm_s; sweep_s; objs; st = Lp.Stats.snapshot () } in
        best :=
          Some
            (match !best with
            | None -> r
            | Some b ->
                {
                  r with
                  cold_s = Float.min b.cold_s r.cold_s;
                  warm_s = Float.min b.warm_s r.warm_s;
                  sweep_s = Float.min b.sweep_s r.sweep_s;
                })
      done;
      Option.get !best)

type size = { s_name : string; ranks : int; iters : int }

(* Sizes scale off the harness config (RANKS/ITERS env), so the CI
   smoke run stays cheap while a paper-scale run measures real LPs. *)
let sizes (config : Common.config) =
  [
    {
      s_name = "small";
      ranks = max 2 (config.Common.nranks / 4);
      iters = max 2 (config.Common.iterations / 4);
    };
    {
      s_name = "medium";
      ranks = max 4 (config.Common.nranks / 2);
      iters = max 3 (config.Common.iterations / 2);
    };
    {
      s_name = "large";
      ranks = config.Common.nranks;
      iters = config.Common.iterations;
    };
  ]

let rate sp dn =
  let t = sp + dn in
  if t = 0 then 0.0 else Float.of_int sp /. Float.of_int t

(* Max relative objective difference between two per-cap objective
   lists, nan-aware: both-infeasible caps agree by definition, a
   feasibility flip is an instant gate failure. *)
let max_objs_diff a_objs b_objs =
  List.fold_left2
    (fun acc a b ->
      if Float.is_nan a && Float.is_nan b then acc
      else if Float.is_nan a || Float.is_nan b then Float.infinity
      else Float.max acc (rel_diff a b))
    0.0 a_objs b_objs

let max_obj_diff (base : run) (r : run) = max_objs_diff base.objs r.objs

(* --- size ladder ---------------------------------------------------
   Cold solve + warm cap sweep on the default solver path at RANKS =
   32/128/512/1024, best of [reps].  Rungs above [LADDER_RANKS]
   (default: the harness RANKS) are skipped — CI smoke-runs the 32/128
   rungs with [LADDER_RANKS=128], a paper-scale run sets 1024.  Rungs
   always use 4 solver iterations: the growth measurement targets rank
   scaling, and the mode-comparison sizes above already cover iteration
   depth.  Each rung re-runs its sweep with the Forrest–Tomlin updates
   disabled (POWERLIM_FT=0, the product-form eta path) and gates the
   objectives at 1e-9; across rungs, cold-solve growth from 512 to 1024
   ranks must stay below 4.5x — subquadratic in the doubling, the
   wall-time shape the cluster-scale event LPs need. *)

type rung = {
  r_ranks : int;
  r_iters : int;
  r_cold_s : float;
  r_sweep_s : float;
  r_obj_diff : float;  (* default path vs POWERLIM_FT=0, max relative *)
}

let ladder_rungs = [ 32; 128; 512; 1024; 1296 ]
let ladder_iters = 4
let growth_limit = 4.5

let ladder_max (config : Common.config) =
  match Sys.getenv_opt "LADDER_RANKS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> n
      | _ -> config.Common.nranks)
  | None -> config.Common.nranks

let with_env k v f =
  let saved = Sys.getenv_opt k in
  Unix.putenv k v;
  (* "" reads as unset to the solver; [Unix.putenv] cannot remove *)
  Fun.protect f ~finally:(fun () ->
      Unix.putenv k (Option.value saved ~default:""))

(* The ladder times the monolithic solver on purpose (POWERLIM_DW=0):
   its FT-vs-eta differential and the subquadratic growth gate measure
   basis maintenance, which the decomposition would short-circuit at
   the 512+ rungs where it engages by default.  The [decomp] section
   below is where monolithic vs Dantzig–Wolfe is compared. *)
let run_rung (config : Common.config) ranks : rung =
  with_env "POWERLIM_DW" "0" @@ fun () ->
  let cfg =
    { config with Common.nranks = ranks; iterations = ladder_iters }
  in
  let s = Common.make_setup cfg Workloads.Apps.CoMD in
  let caps = List.sort Float.compare cfg.Common.caps in
  let nranks = Float.of_int ranks in
  let tight = List.hd caps in
  let loosest = List.fold_left Float.max Float.neg_infinity caps in
  let sweep pz =
    let prev = ref None in
    List.map
      (fun cap ->
        let o, b =
          Core.Event_lp.solve_prepared ?warm:!prev pz
            ~power_cap:(cap *. nranks)
        in
        (match b with Some _ -> prev := b | None -> ());
        objective o)
      caps
  in
  let best_cold = ref Float.infinity
  and best_sweep = ref Float.infinity
  and objs = ref [] in
  for _rep = 1 to reps do
    let _, cold_s =
      time (fun () -> Core.Event_lp.solve s.Common.sc ~power_cap:(tight *. nranks))
    in
    let pz = Core.Event_lp.prepare s.Common.sc ~power_cap:(loosest *. nranks) in
    let o, sweep_s = time (fun () -> sweep pz) in
    objs := o;
    best_cold := Float.min !best_cold cold_s;
    best_sweep := Float.min !best_sweep sweep_s
  done;
  let eta_objs =
    with_env "POWERLIM_FT" "0" (fun () ->
        let pz =
          Core.Event_lp.prepare s.Common.sc ~power_cap:(loosest *. nranks)
        in
        sweep pz)
  in
  {
    r_ranks = ranks;
    r_iters = cfg.Common.iterations;
    r_cold_s = !best_cold;
    r_sweep_s = !best_sweep;
    r_obj_diff = max_objs_diff !objs eta_objs;
  }

(* --- Dantzig–Wolfe decomposition ------------------------------------
   One cold event-LP solve per rung with the decomposition forced off
   and then forced on ([POWERLIM_DW] with [POWERLIM_DW_MIN_RANKS=1], so
   small rungs engage too), timing both paths and snapshotting the DW
   counters.  Hard gates: the objectives must agree to 1e-9 at every
   rung, and at the full 1296-node Cab cluster the decomposition must
   beat the monolithic solve outright. *)

type decomp_run = {
  d_ranks : int;
  d_mono_s : float;  (** cold solve, POWERLIM_DW=0 *)
  d_dw_s : float;  (** cold solve, decomposition forced on *)
  d_obj_diff : float;  (** relative, nan-aware *)
  d_iterations : int;
  d_subproblems : int;
  d_masters : int;
  d_fallbacks : int;
}

let decomp_win_ranks = 1296

let run_decomp (config : Common.config) ranks : decomp_run =
  let cfg = { config with Common.nranks = ranks; iterations = ladder_iters } in
  let s = Common.make_setup cfg Workloads.Apps.CoMD in
  let caps = List.sort Float.compare cfg.Common.caps in
  let nranks = Float.of_int ranks in
  let tight = List.hd caps in
  let solve () = Core.Event_lp.solve s.Common.sc ~power_cap:(tight *. nranks) in
  let o_mono, mono_s = with_env "POWERLIM_DW" "0" (fun () -> time solve) in
  Lp.Stats.reset ();
  let (o_dw, dw_s), st =
    with_env "POWERLIM_DW" "1" (fun () ->
        with_env "POWERLIM_DW_MIN_RANKS" "1" (fun () ->
            let r = time solve in
            (r, Lp.Stats.snapshot ())))
  in
  {
    d_ranks = ranks;
    d_mono_s = mono_s;
    d_dw_s = dw_s;
    d_obj_diff = max_objs_diff [ objective o_mono ] [ objective o_dw ];
    d_iterations = st.Lp.Stats.dw_iterations;
    d_subproblems = st.Lp.Stats.dw_subproblem_solves;
    d_masters = st.Lp.Stats.dw_master_resolves;
    d_fallbacks = st.Lp.Stats.dw_crossover_fallbacks;
  }

(* Growth ratio between the top two rungs, when both ran. *)
let ladder_growth (ladder : rung list) =
  match
    ( List.find_opt (fun r -> r.r_ranks = 512) ladder,
      List.find_opt (fun r -> r.r_ranks = 1024) ladder )
  with
  | Some a, Some b -> Some (b.r_cold_s /. a.r_cold_s)
  | _ -> None

let write_json ~path ~(config : Common.config) ~caps ~ladder ~decomp results =
  Putil.Fileio.with_out path @@ fun oc ->
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"powerlim-simplexbench-v3\",\n";
  pf "  \"ranks\": %d,\n" config.Common.nranks;
  pf "  \"iterations\": %d,\n" config.Common.iterations;
  pf "  \"caps_w\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%g") caps));
  pf "  \"sizes\": [\n";
  let nsizes = List.length results in
  List.iteri
    (fun i (sz, runs) ->
      let base = List.assoc "baseline" runs in
      let full = List.assoc "full" runs in
      pf "    {\n";
      pf "      \"name\": \"%s\",\n" sz.s_name;
      pf "      \"ranks\": %d,\n" sz.ranks;
      pf "      \"iterations\": %d,\n" sz.iters;
      pf "      \"sweep_speedup\": %.3f,\n" (base.sweep_s /. full.sweep_s);
      pf "      \"max_rel_objective_diff\": %.3e,\n"
        (List.fold_left
           (fun acc (_, r) -> Float.max acc (max_obj_diff base r))
           0.0 runs);
      pf "      \"modes\": [\n";
      let nmodes = List.length runs in
      List.iteri
        (fun j (name, r) ->
          pf "        {\n";
          pf "          \"name\": \"%s\",\n" name;
          pf "          \"cold_solve_s\": %.6f,\n" r.cold_s;
          pf "          \"warm_resolve_s\": %.6f,\n" r.warm_s;
          pf "          \"sweep_s\": %.6f,\n" r.sweep_s;
          pf "          \"pivots\": %d,\n" r.st.Lp.Stats.pivots;
          pf "          \"ftran_sparse_rate\": %.4f,\n"
            (rate r.st.Lp.Stats.ftran_sparse r.st.Lp.Stats.ftran_dense);
          pf "          \"btran_sparse_rate\": %.4f,\n"
            (rate r.st.Lp.Stats.btran_sparse r.st.Lp.Stats.btran_dense);
          pf "          \"devex_resets\": %d,\n" r.st.Lp.Stats.devex_resets;
          pf "          \"cand_refreshes\": %d\n" r.st.Lp.Stats.cand_refreshes;
          pf "        }%s\n" (if j = nmodes - 1 then "" else ","))
        runs;
      pf "      ]\n";
      pf "    }%s\n" (if i = nsizes - 1 then "" else ","))
    results;
  pf "  ],\n";
  pf "  \"ladder\": [\n";
  let nrungs = List.length ladder in
  List.iteri
    (fun i r ->
      pf "    {\n";
      pf "      \"ranks\": %d,\n" r.r_ranks;
      pf "      \"iterations\": %d,\n" r.r_iters;
      pf "      \"cold_solve_s\": %.6f,\n" r.r_cold_s;
      pf "      \"sweep_s\": %.6f,\n" r.r_sweep_s;
      pf "      \"max_rel_objective_diff\": %.3e\n" r.r_obj_diff;
      pf "    }%s\n" (if i = nrungs - 1 then "" else ","))
    ladder;
  pf "  ],\n";
  pf "  \"decomp\": [\n";
  let nd = List.length decomp in
  List.iteri
    (fun i d ->
      pf "    {\n";
      pf "      \"ranks\": %d,\n" d.d_ranks;
      pf "      \"mono_cold_s\": %.6f,\n" d.d_mono_s;
      pf "      \"dw_cold_s\": %.6f,\n" d.d_dw_s;
      pf "      \"dw_speedup\": %.3f,\n" (d.d_mono_s /. d.d_dw_s);
      pf "      \"max_rel_objective_diff\": %.3e,\n" d.d_obj_diff;
      pf "      \"dw_iterations\": %d,\n" d.d_iterations;
      pf "      \"dw_subproblem_solves\": %d,\n" d.d_subproblems;
      pf "      \"dw_master_resolves\": %d,\n" d.d_masters;
      pf "      \"dw_crossover_fallbacks\": %d\n" d.d_fallbacks;
      pf "    }%s\n" (if i = nd - 1 then "" else ","))
    decomp;
  pf "  ]%s\n"
    (match ladder_growth ladder with
    | None -> ""
    | Some g -> Printf.sprintf ",\n  \"ladder_cold_growth_1024_over_512\": %.3f" g);
  pf "}\n"

let run ?(config = Common.default_config) ppf =
  Common.header ppf "Simplex-kernel benchmark (hypersparse FTRAN/BTRAN + devex)";
  let caps = List.sort Float.compare config.Common.caps in
  let results =
    List.map
      (fun sz ->
        let cfg =
          { config with Common.nranks = sz.ranks; iterations = sz.iters }
        in
        let s = Common.make_setup cfg Workloads.Apps.CoMD in
        let runs = List.map (fun m -> (m.m_name, run_mode s caps m)) modes in
        let base = List.assoc "baseline" runs in
        Fmt.pf ppf "%s (CoMD, %d ranks, %d iterations, %d caps):@." sz.s_name
          sz.ranks sz.iters (List.length caps);
        List.iter
          (fun (name, r) ->
            Fmt.pf ppf
              "  %-11s cold %7.3f s  warm %7.3f s  sweep %7.3f s  (lp \
               %6.3f s)  %6d pivots  ftran %4.0f%% sparse  btran %4.0f%% \
               sparse@."
              name r.cold_s r.warm_s r.sweep_s r.st.Lp.Stats.wall_s
              r.st.Lp.Stats.pivots
              (100.0 *. rate r.st.Lp.Stats.ftran_sparse r.st.Lp.Stats.ftran_dense)
              (100.0 *. rate r.st.Lp.Stats.btran_sparse r.st.Lp.Stats.btran_dense))
          runs;
        let full = List.assoc "full" runs in
        Fmt.pf ppf "  sweep speedup %.2fx (baseline vs full), max objective \
                    diff %.1e@."
          (base.sweep_s /. full.sweep_s)
          (List.fold_left
             (fun acc (_, r) -> Float.max acc (max_obj_diff base r))
             0.0 runs);
        (sz, runs))
      (sizes config)
  in
  let lmax = ladder_max config in
  let ladder =
    List.filter_map
      (fun ranks ->
        if ranks > lmax then None
        else begin
          let r = run_rung config ranks in
          Fmt.pf ppf
            "ladder %4d ranks: cold %8.3f s  sweep %8.3f s  obj diff vs \
             eta-file %.1e@."
            r.r_ranks r.r_cold_s r.r_sweep_s r.r_obj_diff;
          Some r
        end)
      ladder_rungs
  in
  (match ladder_growth ladder with
  | Some g -> Fmt.pf ppf "ladder cold-solve growth 1024/512: %.2fx@." g
  | None -> ());
  let decomp =
    List.filter_map
      (fun ranks ->
        if ranks > lmax then None
        else begin
          let d = run_decomp config ranks in
          Fmt.pf ppf
            "decomp %4d ranks: mono %8.3f s  dw %8.3f s (%.2fx)  obj diff \
             %.1e  %d iters, %d subproblems, %d fallbacks@."
            d.d_ranks d.d_mono_s d.d_dw_s
            (d.d_mono_s /. d.d_dw_s)
            d.d_obj_diff d.d_iterations d.d_subproblems d.d_fallbacks;
          Some d
        end)
      ladder_rungs
  in
  let path = "BENCH_simplex.json" in
  write_json ~path ~config ~caps ~ladder ~decomp results;
  Fmt.pf ppf "wrote %s@." path;
  (* hard gate: neither the sparse kernels nor devex pricing may move
     any optimal objective (alternate vertices are fine, values are not) *)
  List.iter
    (fun (sz, runs) ->
      let base = List.assoc "baseline" runs in
      List.iter
        (fun (name, r) ->
          let d = max_obj_diff base r in
          if d > 1e-9 then
            failwith
              (Printf.sprintf
                 "simplexbench: %s/%s objectives differ from baseline (%g)"
                 sz.s_name name d))
        runs)
    results;
  (* ladder gates: Forrest–Tomlin updates may not move any sweep
     objective, and doubling 512 -> 1024 ranks must stay subquadratic *)
  List.iter
    (fun r ->
      if r.r_obj_diff > 1e-9 then
        failwith
          (Printf.sprintf
             "simplexbench: ladder %d-rank objectives differ between FT and \
              eta-file paths (%g)"
             r.r_ranks r.r_obj_diff))
    ladder;
  (match ladder_growth ladder with
  | Some g when g >= growth_limit ->
      failwith
        (Printf.sprintf
           "simplexbench: cold-solve growth 1024/512 = %.2fx >= %.1fx \
            (superquadratic)"
           g growth_limit)
  | _ -> ());
  (* decomposition gates: exact agreement everywhere, and an outright
     wall-clock win over the monolithic path at full cluster scale *)
  List.iter
    (fun d ->
      if d.d_obj_diff > 1e-9 then
        failwith
          (Printf.sprintf
             "simplexbench: decomp %d-rank objective differs from monolithic \
              (%g)"
             d.d_ranks d.d_obj_diff))
    decomp;
  match List.find_opt (fun d -> d.d_ranks = decomp_win_ranks) decomp with
  | Some d when d.d_dw_s >= d.d_mono_s ->
      failwith
        (Printf.sprintf
           "simplexbench: decomposition loses to the monolithic solver at %d \
            ranks (%.3f s vs %.3f s)"
           decomp_win_ranks d.d_dw_s d.d_mono_s)
  | _ -> ()
