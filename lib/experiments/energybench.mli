(** Energy-mode warm-start benchmark: a CoMD deadline sweep solved cold,
    warm within the energy mode, and warm {e across} the objective
    switch ({!Core.Event_lp.switch_objective}).  Writes
    [BENCH_energy.json] and fails hard when any warm objective drifts
    from the cold one by more than 1e-9 relative, or (at 32 ranks or
    more) when the cross-mode sweep's median per-deadline speedup over
    cold falls below 2x. *)

val run : ?config:Common.config -> Format.formatter -> unit
(** Raises [Failure] on a gate violation (CI relies on the non-zero
    exit). *)
