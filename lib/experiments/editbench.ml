(** Structural-edit benchmark (see editbench.mli).

    Protocol, per single domain edit: the edit is compiled to elementary
    {!Lp.Edit} operations against a [~presolve:false] prepared model (the
    full column space, so the optimal basis is mappable), then

    - {b cold}: apply the edits and solve the edited LP from scratch;
    - {b incremental}: {!Lp.Edit.resolve} — map the base optimum's basis
      across the edits (bordered updates) and dual-repair.

    Both sides include the edit application itself, so the comparison is
    end-to-end what-if latency.  Walls are the minimum of [reps] runs;
    the headline number is the {e median} speedup across the suite, which
    is what an interactive caller experiences on a typical edit. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rel_diff a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs a)

let bit_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

type case = {
  name : string;
  cold_s : float;
  warm_s : float;
  cold_obj : float;
  warm_obj : float;
  cold_status : Lp.Revised.status;
  warm_status : Lp.Revised.status;
  warm_mapped : bool;  (** basis mapping survived (no cold fallback) *)
}

let median xs =
  match List.sort Float.compare xs with
  | [] -> Float.nan
  | s ->
      let n = List.length s in
      if n mod 2 = 1 then List.nth s (n / 2)
      else (List.nth s ((n / 2) - 1) +. List.nth s (n / 2)) /. 2.0

(* The single-edit suite: one frontier perturbation per sampled task
   (spread across the graph), one socket failure, one dropped rank. *)
let edit_suite (sc : Core.Scenario.t) : (string * Core.Event_lp.domain_edit list) list =
  let tids =
    Array.to_list
      (Array.mapi
         (fun tid f -> if Array.length f > 1 then Some tid else None)
         sc.Core.Scenario.frontiers)
    |> List.filter_map Fun.id
  in
  let nt = List.length tids in
  if nt = 0 then failwith "editbench: scenario has no multi-point frontiers";
  let sample = List.filteri (fun i _ -> i mod Int.max 1 (nt / 6) = 0) tids in
  let perturbs =
    List.map
      (fun tid ->
        let f = sc.Core.Scenario.frontiers.(tid) in
        let k = Array.length f / 2 in
        let pt = f.(k) in
        ( Printf.sprintf "perturb_t%d" tid,
          [
            Core.Event_lp.Perturb_task
              {
                tid;
                point = k;
                duration = pt.Pareto.Point.duration *. 1.07;
                power = pt.Pareto.Point.power *. 0.96;
              };
          ] ))
      sample
  in
  let last_rank = sc.Core.Scenario.graph.Dag.Graph.nranks - 1 in
  perturbs
  @ [
      ("fail_socket", [ Core.Event_lp.Fail_socket last_rank ]);
      ("drop_rank", [ Core.Event_lp.Drop_rank last_rank ]);
    ]

let run_case ~reps (p : Lp.Model.problem) (base : Lp.Revised.basis)
    (pz : Core.Event_lp.prepared) (name, des) : case =
  let edits = Core.Event_lp.compile_edits pz des in
  let best side =
    let rec go k acc =
      if k = 0 then acc
      else begin
        let r, w = time side in
        go (k - 1) (match acc with None -> Some (r, w)
                                 | Some (_, w0) when w < w0 -> Some (r, w)
                                 | Some _ as a -> a)
      end
    in
    match go reps None with Some rw -> rw | None -> assert false
  in
  let rc, cold_s = best (fun () -> Lp.Revised.solve (Lp.Edit.apply p edits)) in
  Lp.Stats.reset ();
  let (_, rw), warm_s = best (fun () -> Lp.Edit.resolve ~warm:base p edits) in
  let st = Lp.Stats.snapshot () in
  {
    name;
    cold_s;
    warm_s;
    cold_obj = rc.Lp.Revised.objective;
    warm_obj = rw.Lp.Revised.objective;
    cold_status = rc.Lp.Revised.status;
    warm_status = rw.Lp.Revised.status;
    warm_mapped = st.Lp.Stats.edit_fallbacks = 0;
  }

(* ------------------------------------------------------------------ *)
(* BENCH_warmstart.json merge                                          *)
(* ------------------------------------------------------------------ *)

(* The "edits" section is folded into warmbench's file so the warm-start
   engineering data lives in one artifact, whichever benchmark ran last
   or first.  Purely line-based: strip any previous top-level "edits"
   block, then splice the fresh one in before the closing brace. *)
let merge_section ~path section_lines =
  let read_lines () =
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in path in
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go []
    end
  in
  let strip lines =
    let rec go depth acc = function
      | [] -> List.rev acc
      | l :: tl when depth > 0 ->
          let d =
            String.fold_left
              (fun d c -> if c = '{' then d + 1 else if c = '}' then d - 1 else d)
              depth l
          in
          go d acc tl
      | l :: tl when String.equal (String.trim l) "\"edits\": {" ->
          go 1 acc tl
      | l :: tl -> go 0 (l :: acc) tl
    in
    go 0 [] lines
  in
  let skeleton = [ "{"; "  \"schema\": \"powerlim-warmbench-v1\"" ] in
  let lines =
    match strip (read_lines ()) with
    | [] | [ _ ] -> skeleton
    | ls -> (
        (* drop the closing brace; re-add it after the new section *)
        match List.rev ls with
        | "}" :: body_rev -> List.rev body_rev
        | _ -> skeleton)
  in
  (* the now-last content line needs a separating comma *)
  let lines =
    match List.rev lines with
    | last :: rest when String.length (String.trim last) > 0
                        && last.[String.length last - 1] <> ','
                        && last.[String.length last - 1] <> '{' ->
        List.rev ((last ^ ",") :: rest)
    | _ -> lines
  in
  Putil.Fileio.with_out path (fun oc ->
      List.iter
        (fun l -> output_string oc (l ^ "\n"))
        (lines @ section_lines @ [ "}" ]))

let edits_section ~config ~cap cases =
  let b = Buffer.create 1024 in
  let bf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bf "  \"edits\": {\n";
  bf "    \"ranks\": %d,\n" config.Common.nranks;
  bf "    \"power_cap_w\": %.1f,\n" cap;
  bf "    \"cases\": [\n";
  List.iteri
    (fun i c ->
      bf
        "      { \"name\": %S, \"cold_wall_s\": %.6f, \"warm_wall_s\": %.6f, \
         \"speedup\": %.3f, \"rel_objective_diff\": %.3e, \"bit_identical\": \
         %b, \"warm_mapped\": %b }%s\n"
        c.name c.cold_s c.warm_s
        (c.cold_s /. c.warm_s)
        (rel_diff c.cold_obj c.warm_obj)
        (bit_equal c.cold_obj c.warm_obj)
        c.warm_mapped
        (if i = List.length cases - 1 then "" else ","))
    cases;
  bf "    ],\n";
  bf "    \"median_speedup\": %.3f,\n"
    (median (List.map (fun c -> c.cold_s /. c.warm_s) cases));
  bf "    \"max_rel_objective_diff\": %.3e\n"
    (List.fold_left
       (fun acc c -> Float.max acc (rel_diff c.cold_obj c.warm_obj))
       0.0 cases);
  bf "  }";
  String.split_on_char '\n' (Buffer.contents b)

let run ?(config = Common.default_config) ppf =
  Common.header ppf "Structural-edit benchmark (what-if re-solves)";
  let s = Common.make_setup config Workloads.Apps.CoMD in
  let sc = s.Common.sc in
  (* a mid-range cap: loose enough to be feasible after any edit in the
     suite, tight enough that the power rows bind and edits actually
     move the optimum *)
  let sorted_caps = List.sort Float.compare config.Common.caps in
  let cap_per_socket =
    match sorted_caps with
    | [] -> 40.0
    | caps -> List.nth caps (List.length caps / 2)
  in
  let cap = cap_per_socket *. Float.of_int config.Common.nranks in
  let pz = Core.Event_lp.prepare ~presolve:false sc ~power_cap:cap in
  let p = Core.Event_lp.prepared_problem pz in
  let _, base = Core.Event_lp.solve_prepared pz ~power_cap:cap in
  let base =
    match base with
    | Some b -> b
    | None -> failwith "editbench: base solve returned no basis"
  in
  let cases =
    List.map (run_case ~reps:3 p base pz) (edit_suite sc)
  in
  Fmt.pf ppf "base model: %d rows x %d cols at %.0f W (%d ranks)@."
    p.Lp.Model.nr p.Lp.Model.nv cap config.Common.nranks;
  List.iter
    (fun c ->
      Fmt.pf ppf
        "  %-14s cold %8.2f ms | incremental %8.2f ms | %5.1fx %s%s@."
        c.name (1e3 *. c.cold_s) (1e3 *. c.warm_s)
        (c.cold_s /. c.warm_s)
        (if bit_equal c.cold_obj c.warm_obj then "bit-identical"
         else Printf.sprintf "diff %.1e" (rel_diff c.cold_obj c.warm_obj))
        (if c.warm_mapped then "" else " (cold fallback)"))
    cases;
  let med = median (List.map (fun c -> c.cold_s /. c.warm_s) cases) in
  Fmt.pf ppf "median single-edit speedup: %.1fx@." med;
  let path = "BENCH_warmstart.json" in
  merge_section ~path (edits_section ~config ~cap cases);
  Fmt.pf ppf "merged edits section into %s@." path;
  (* hard gates: statuses must agree, objectives must match to 1e-9 —
     the CI smoke step relies on the non-zero exit *)
  List.iter
    (fun c ->
      if c.cold_status <> c.warm_status then
        failwith
          (Printf.sprintf "editbench: %s status mismatch (cold %s, warm %s)"
             c.name
             (Fmt.str "%a" Lp.Revised.pp_status c.cold_status)
             (Fmt.str "%a" Lp.Revised.pp_status c.warm_status));
      if rel_diff c.cold_obj c.warm_obj > 1e-9 then
        failwith
          (Printf.sprintf
             "editbench: %s cold vs incremental objectives differ (%g)" c.name
             (rel_diff c.cold_obj c.warm_obj)))
    cases
