(** Energy-mode benchmark: the deadline sweep solved three ways —

    - {b cold}: a full build + presolve + phase-1/2 per deadline;
    - {b warm}: one energy-mode {!Core.Event_lp.prepare}, bases threaded
      deadline to deadline through RHS patching;
    - {b switch}: the makespan handle's optimal basis carried {e across
      the objective switch} ({!Core.Event_lp.switch_objective}) and then
      threaded down the deadlines — the cross-mode warm-start path.

    Asserts every warm/switch objective agrees with the cold one to
    1e-9 (alternate degenerate vertices share the optimal objective even
    when they disagree on vertex times), and at 32 ranks or more gates
    the per-deadline median speedup of the switch path at 2x over cold.
    Writes [BENCH_energy.json] (schema in EXPERIMENTS.md).  Not a paper
    artifact — engineering data for the objective-mode substrate. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rel_diff a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs a)

let objective = function
  | Core.Event_lp.Schedule sched -> sched.Core.Event_lp.objective
  | Core.Event_lp.Infeasible | Core.Event_lp.Solver_failure _ -> Float.nan

let median a =
  match Array.length a with
  | 0 -> Float.nan
  | n ->
      let s = Array.copy a in
      Array.sort Float.compare s;
      if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let max_rel_diff cold other =
  List.fold_left2
    (fun acc a b ->
      if Float.is_nan a && Float.is_nan b then acc
      else Float.max acc (rel_diff a b))
    0.0 cold other

(* One (objective, wall) pair per deadline, plus the one-off setup cost
   the per-deadline solves amortize. *)
type side = {
  objs : float list;
  walls : float array;  (** per-deadline wall seconds *)
  setup_s : float;
  stats : Lp.Stats.snapshot;
}

let cold_side (s : Common.setup) ~job_cap deadlines : side =
  Lp.Stats.reset ();
  let pairs =
    List.map
      (fun deadline ->
        time (fun () ->
            objective
              (Core.Event_lp.solve
                 ~objective:
                   (Core.Objective.Energy_under_deadline { deadline })
                 s.Common.sc ~power_cap:job_cap)))
      deadlines
  in
  {
    objs = List.map fst pairs;
    walls = Array.of_list (List.map snd pairs);
    setup_s = 0.0;
    stats = Lp.Stats.snapshot ();
  }

let warm_side (s : Common.setup) ~job_cap deadlines : side =
  Lp.Stats.reset ();
  let d0 = List.hd deadlines in
  let pz, setup_s =
    time (fun () ->
        Core.Event_lp.prepare
          ~objective:(Core.Objective.Energy_under_deadline { deadline = d0 })
          s.Common.sc ~power_cap:job_cap)
  in
  let prev = ref None in
  let pairs =
    List.map
      (fun deadline ->
        time (fun () ->
            let o, b =
              Core.Event_lp.solve_prepared_deadline ?warm:!prev pz ~deadline
            in
            (match b with Some _ -> prev := b | None -> ());
            objective o))
      deadlines
  in
  {
    objs = List.map fst pairs;
    walls = Array.of_list (List.map snd pairs);
    setup_s;
    stats = Lp.Stats.snapshot ();
  }

(* The cross-mode path: solve the makespan LP (full space, so the basis
   is mappable), switch the handle to the energy objective carrying the
   basis across the edit, then thread deadlines. *)
let switch_side (s : Common.setup) ~job_cap deadlines : side =
  Lp.Stats.reset ();
  let d0 = List.hd deadlines in
  let (pz', basis0), setup_s =
    time (fun () ->
        let pz =
          Core.Event_lp.prepare ~presolve:false s.Common.sc ~power_cap:job_cap
        in
        let _, b = Core.Event_lp.solve_prepared pz ~power_cap:job_cap in
        let _, pz', b' =
          Core.Event_lp.switch_objective ?warm:b pz
            (Core.Objective.Energy_under_deadline { deadline = d0 })
        in
        (pz', b'))
  in
  let prev = ref basis0 in
  let pairs =
    List.map
      (fun deadline ->
        time (fun () ->
            let o, b =
              Core.Event_lp.solve_prepared_deadline ?warm:!prev pz' ~deadline
            in
            (match b with Some _ -> prev := b | None -> ());
            objective o))
      deadlines
  in
  {
    objs = List.map fst pairs;
    walls = Array.of_list (List.map snd pairs);
    setup_s;
    stats = Lp.Stats.snapshot ();
  }

let sum = Array.fold_left ( +. ) 0.0

let speedups cold other =
  Array.init (Array.length cold.walls) (fun i ->
      cold.walls.(i) /. Float.max 1e-9 other.walls.(i))

let write_json ~path ~(config : Common.config) ~cap ~t_star ~deadlines ~cold
    ~warm ~switch ~reclaimed_pct =
  Putil.Fileio.with_out path @@ fun oc ->
  let pf fmt = Printf.fprintf oc fmt in
  let side_json name (sd : side) =
    pf "  \"%s\": {\n" name;
    pf "    \"wall_s\": %.6f,\n" (sum sd.walls);
    pf "    \"setup_s\": %.6f,\n" sd.setup_s;
    pf "    \"pivots\": %d,\n" sd.stats.Lp.Stats.pivots;
    pf "    \"warm_solves\": %d,\n" sd.stats.Lp.Stats.warm_solves;
    pf "    \"warm_fallbacks\": %d,\n" sd.stats.Lp.Stats.warm_fallbacks;
    pf "    \"obj_mode_switches\": %d,\n" sd.stats.Lp.Stats.obj_mode_switches;
    pf "    \"objectives_j\": [%s]\n"
      (String.concat ", "
         (List.map (Printf.sprintf "%.9g") sd.objs));
    pf "  }"
  in
  pf "{\n";
  pf "  \"schema\": \"powerlim-energybench-v1\",\n";
  pf "  \"ranks\": %d,\n" config.Common.nranks;
  pf "  \"iterations\": %d,\n" config.Common.iterations;
  pf "  \"cap_w_per_socket\": %g,\n" cap;
  pf "  \"makespan_bound_s\": %.6f,\n" t_star;
  pf "  \"deadlines_s\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%.6f") deadlines));
  side_json "cold" cold;
  pf ",\n";
  side_json "warm" warm;
  pf ",\n";
  side_json "switch" switch;
  pf ",\n";
  pf "  \"median_speedup_warm\": %.3f,\n" (median (speedups cold warm));
  pf "  \"median_speedup_switch\": %.3f,\n" (median (speedups cold switch));
  pf "  \"max_rel_objective_diff_warm\": %.3e,\n"
    (max_rel_diff cold.objs warm.objs);
  pf "  \"max_rel_objective_diff_switch\": %.3e,\n"
    (max_rel_diff cold.objs switch.objs);
  pf "  \"reclaimed_joules_pct\": %.3f\n" reclaimed_pct;
  pf "}\n"

let run ?(config = Common.default_config) ppf =
  Common.header ppf "Energy-mode benchmark (deadline sweep, cold/warm/switch)";
  let s = Common.make_setup config Workloads.Apps.CoMD in
  let cap = Energy.reference_cap Workloads.Apps.CoMD in
  let job_cap = cap *. Float.of_int config.Common.nranks in
  let t_star, reclaimed_pct =
    match Core.Event_lp.solve s.Common.sc ~power_cap:job_cap with
    | Core.Event_lp.Schedule sched ->
        (* reclamation yield on the makespan optimum, for the JSON
           record — the energy-mode optima below have no slack left to
           reclaim by construction *)
        ( sched.Core.Event_lp.makespan,
          (Core.Replay.reclaim s.Common.sc sched).Core.Replay.reclaimed_pct )
    | Core.Event_lp.Infeasible | Core.Event_lp.Solver_failure _ ->
        failwith "energybench: reference cap infeasible"
  in
  (* tightest deadline first, mirroring the cap sweep's tightest-first
     chains: the loose-deadline optimum leaves the deadline row slack *)
  let deadlines =
    List.map (fun m -> t_star *. m) (List.sort Float.compare Common.default_multipliers)
  in
  let cold = cold_side s ~job_cap deadlines in
  let warm = warm_side s ~job_cap deadlines in
  let switch = switch_side s ~job_cap deadlines in
  let pp_side name (sd : side) =
    Fmt.pf ppf "  %-6s: %8.3f s (+%.3f s setup)  (%a)@." name (sum sd.walls)
      sd.setup_s Lp.Stats.pp sd.stats
  in
  Fmt.pf ppf "sweep (CoMD, %d ranks, %d deadlines at %.0f W/socket, T* %.4f s):@."
    config.Common.nranks (List.length deadlines) cap t_star;
  pp_side "cold" cold;
  pp_side "warm" warm;
  pp_side "switch" switch;
  let med_warm = median (speedups cold warm) in
  let med_switch = median (speedups cold switch) in
  Fmt.pf ppf
    "  median per-deadline speedup: warm %.2fx, switch %.2fx; max objective \
     diff warm %.1e, switch %.1e@."
    med_warm med_switch
    (max_rel_diff cold.objs warm.objs)
    (max_rel_diff cold.objs switch.objs);
  let path = "BENCH_energy.json" in
  write_json ~path ~config ~cap ~t_star ~deadlines ~cold ~warm ~switch
    ~reclaimed_pct;
  Fmt.pf ppf "wrote %s@." path;
  (* hard gates: warm starts must not change any objective; the
     cross-mode path must actually pay off at cluster scale *)
  let dw = max_rel_diff cold.objs warm.objs in
  if dw > 1e-9 then
    failwith
      (Printf.sprintf "energybench: cold vs warm objectives differ (%g)" dw);
  let ds = max_rel_diff cold.objs switch.objs in
  if ds > 1e-9 then
    failwith
      (Printf.sprintf "energybench: cold vs switch objectives differ (%g)" ds);
  if config.Common.nranks >= 32 && med_switch < 2.0 then
    failwith
      (Printf.sprintf
         "energybench: cross-mode warm sweep only %.2fx over cold (gate: 2x \
          at >= 32 ranks)"
         med_switch)
