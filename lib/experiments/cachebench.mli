(** Pipeline artifact-cache benchmark: the per-cap request sequence
    (scenario assembly, LP preparation, re-solve) repeated as the
    experiment drivers repeat it, timed with the cache disabled (every
    round rebuilds every artifact) and enabled (rounds after the first
    hit).  Writes [BENCH_pipeline.json] (schema documented in
    EXPERIMENTS.md) and fails — non-zero exit — when the two arms'
    objectives differ at all: caching must never change a result. *)

val run : ?config:Common.config -> Format.formatter -> unit
