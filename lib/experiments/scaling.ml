(** Solver scaling study: LP size, simplex iterations and wall time as
    the trace grows.  The paper argues the fixed-order LP "could be
    applied to thousands of processes and hundreds of edges per process"
    — this experiment measures how our from-scratch sparse simplex
    behaves as ranks and iterations grow. *)

let time_solve sc job_cap =
  let t0 = Unix.gettimeofday () in
  match Core.Event_lp.solve sc ~power_cap:job_cap with
  | Core.Event_lp.Schedule s ->
      Some (s.Core.Event_lp.stats, Unix.gettimeofday () -. t0)
  | _ -> None

let run ?(config = Common.default_config) ppf =
  ignore config;
  Common.header ppf "Scaling: event-LP size and solve time (CoMD traces)";
  Fmt.pf ppf "# ranks iterations tasks rows cols simplex_iters solve_s@.";
  List.iter
    (fun (nranks, iterations) ->
      let sc =
        Pipeline.Stages.scenario
          (Pipeline.Stages.Synthetic
             ( Workloads.Apps.CoMD,
               { Workloads.Apps.default_params with nranks; iterations } ))
      in
      let g = sc.Core.Scenario.graph in
      let job_cap = 40.0 *. Float.of_int nranks in
      match time_solve sc job_cap with
      | Some (stats, dt) ->
          Fmt.pf ppf "%5d %5d %6d %6d %6d %8d %8.3f@." nranks iterations
            (Dag.Graph.n_tasks g) stats.Core.Event_lp.rows
            stats.Core.Event_lp.cols stats.Core.Event_lp.iterations dt
      | None -> Fmt.pf ppf "%5d %5d (infeasible)@." nranks iterations)
    [ (8, 5); (16, 10); (32, 10); (32, 20); (64, 10) ];
  Common.header ppf "Scaling: LULESH (point-to-point heavy) traces";
  Fmt.pf ppf "# ranks iterations tasks rows cols simplex_iters solve_s@.";
  List.iter
    (fun (nranks, iterations) ->
      let sc =
        Pipeline.Stages.scenario
          (Pipeline.Stages.Synthetic
             ( Workloads.Apps.LULESH,
               { Workloads.Apps.default_params with nranks; iterations } ))
      in
      let g = sc.Core.Scenario.graph in
      let job_cap = 45.0 *. Float.of_int nranks in
      match time_solve sc job_cap with
      | Some (stats, dt) ->
          Fmt.pf ppf "%5d %5d %6d %6d %6d %8d %8.3f@." nranks iterations
            (Dag.Graph.n_tasks g) stats.Core.Event_lp.rows
            stats.Core.Event_lp.cols stats.Core.Event_lp.iterations dt
      | None -> Fmt.pf ppf "%5d %5d (infeasible)@." nranks iterations)
    [ (8, 5); (16, 10); (32, 10) ]
