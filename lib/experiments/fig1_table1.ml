(** Figure 1 and Table 1: time vs. power for every configuration of one
    CoMD task, with its convex Pareto frontier, and the sample of
    frontier configurations (8 threads across descending frequencies,
    then reduced thread counts at the minimum frequency). *)

let comd_task_profile () =
  Machine.Profile.v ~serial_frac:0.03 ~contention:0.004 ~mem_bound:0.25 3.6

let run ?(config = Common.default_config) ppf =
  let socket = Machine.Socket.fleet ~seed:config.Common.socket_seed 1 in
  let socket = socket.(0) in
  let profile = comd_task_profile () in
  let all = Pareto.Frontier.enumerate socket profile in
  let hull = Pipeline.Stages.frontier socket profile in
  let on_hull (p : Pareto.Point.t) =
    Array.exists
      (fun (h : Pareto.Point.t) -> h.freq = p.freq && h.threads = p.threads)
      hull
  in
  Common.header ppf
    "Figure 1: normalized time vs. power, one CoMD task (all 120 configs)";
  Fmt.pf ppf "# freq_GHz threads power_W norm_time on_convex_frontier@.";
  let tmax =
    Array.fold_left
      (fun a (p : Pareto.Point.t) -> max a p.duration)
      0.0 all
  in
  Array.iter
    (fun (p : Pareto.Point.t) ->
      Fmt.pf ppf "%.1f %d %7.2f %6.4f %b@." p.freq p.threads p.power
        (p.duration /. tmax) (on_hull p))
    all;
  Common.header ppf
    "Table 1: Pareto-efficient (convex-frontier) configurations";
  Fmt.pf ppf "%-14s %-10s %-8s@." "Configuration" "Freq(GHz)" "Threads";
  Array.iteri
    (fun i (p : Pareto.Point.t) ->
      Fmt.pf ppf "C_%-12d %-10.1f %-8d@."
        (Array.length hull - i)
        p.freq p.threads)
    hull;
  (* the Table 1 shape assertions, reported inline *)
  let fastest = Pareto.Frontier.fastest hull in
  let reduced_only_at_fmin =
    Array.for_all
      (fun (p : Pareto.Point.t) ->
        p.threads = 8 || p.freq = Machine.Dvfs.f_min)
      hull
  in
  Fmt.pf ppf
    "# shape: fastest = %.1f GHz x %d threads; reduced threads only at \
     %.1f GHz: %b@."
    fastest.Pareto.Point.freq fastest.Pareto.Point.threads Machine.Dvfs.f_min
    reduced_only_at_fmin
