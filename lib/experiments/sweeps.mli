(** The all-benchmark power sweep behind Figures 9-11 and 13-15, plus the
    Section 6 summary.  [compute] runs Static, Conductor and validated
    LP-replay at every cap for every application once; the figure
    printers are views of that data. *)

type t = (Workloads.Apps.app * Common.sweep) list

(** Computes every application's sweep, fanning the apps (and, nested,
    each app's cap points) out over [pool] — the shared default pool when
    omitted.  The result list keeps the order of
    [Workloads.Apps.all_apps] at any pool size. *)
val compute : ?pool:Putil.Pool.t -> ?config:Common.config -> unit -> t
val fig9 : t -> Format.formatter -> unit
val fig10 : t -> Format.formatter -> unit
val figure_number : Workloads.Apps.app -> int
val per_benchmark : t -> Workloads.Apps.app -> Format.formatter -> unit
val summary : t -> Format.formatter -> unit
