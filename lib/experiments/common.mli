(** Shared machinery for the paper-reproduction experiments: scenario
    construction, the three-method comparison (Static / Conductor /
    LP-replay) and the power-cap sweep the per-benchmark figures are
    views of. *)

type config = {
  nranks : int;
  iterations : int;
  seed : int;
  socket_seed : int;
  skip : int;  (** iterations discarded (Conductor's exploration phase) *)
  caps : float list;  (** average watts per processor socket *)
}

val default_config : config

type setup = {
  app : Workloads.Apps.app;
  graph : Dag.Graph.t;
  sc : Core.Scenario.t;
  config : config;
}

val make_setup : config -> Workloads.Apps.app -> setup

val span_after_skip : setup -> Simulate.Engine.result -> float
(** Wall time of iterations [>= skip] (the paper discards the first three
    iterations as Conductor's configuration-exploration phase). *)

type point = {
  cap : float;  (** watts per socket *)
  schedulable : bool;
  static_span : float;
  conductor_span : float;
  lp_span : float;  (** validated LP-replay span *)
  lp_objective : float;
  lp_vs_static : float;  (** percent improvement (Section 6 metric) *)
  lp_vs_conductor : float;
  conductor_vs_static : float;
  lp_max_power : float;
  job_cap : float;
}

type sweep = { setup : setup; points : point list }

val run_point : setup -> cap:float -> point

val run_sweep : ?pool:Putil.Pool.t -> setup -> sweep
(** Runs every cap's Static/Conductor/LP-replay triple as an independent
    job on [pool] (the shared default pool when omitted), preserving the
    order of [config.caps] in [points].  Each job only reads the shared
    immutable [setup]; all solver and simulator state is per-job. *)

val figure_caps : Workloads.Apps.app -> float * float
(** The power range each per-benchmark figure shows (the x-axes of the
    paper's Figures 11 and 13-15). *)

val in_figure_range : Workloads.Apps.app -> point -> bool
val header : Format.formatter -> string -> unit
val pp_pct : Format.formatter -> float -> unit
