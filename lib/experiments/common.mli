(** Shared machinery for the paper-reproduction experiments: scenario
    construction, the three-method comparison (Static / Conductor /
    LP-replay) and the power-cap sweep the per-benchmark figures are
    views of. *)

type config = {
  nranks : int;
  iterations : int;
  seed : int;
  socket_seed : int;
  skip : int;  (** iterations discarded (Conductor's exploration phase) *)
  caps : float list;  (** average watts per processor socket *)
}

val default_config : config

type setup = {
  app : Workloads.Apps.app;
  graph : Dag.Graph.t;
  sc : Core.Scenario.t;
  config : config;
}

val make_setup : config -> Workloads.Apps.app -> setup

val span_after_skip : setup -> Simulate.Engine.result -> float
(** Wall time of iterations [>= skip] (the paper discards the first three
    iterations as Conductor's configuration-exploration phase). *)

type point = {
  cap : float;  (** watts per socket *)
  schedulable : bool;
  static_span : float;
  conductor_span : float;
  lp_span : float;  (** validated LP-replay span *)
  lp_objective : float;
  lp_vs_static : float;  (** percent improvement (Section 6 metric) *)
  lp_vs_conductor : float;
  conductor_vs_static : float;
  lp_max_power : float;
  job_cap : float;
}

type sweep = { setup : setup; points : point list }

val run_point : setup -> cap:float -> point

val run_point_prepared :
  setup ->
  Core.Event_lp.prepared ->
  ?warm:Lp.Revised.basis ->
  cap:float ->
  unit ->
  point * Lp.Revised.basis option
(** One cap of a prepared sweep: re-solve the shared model at [cap]
    (warm-started from [warm] when given) and return the point with the
    final basis to thread into the next cap. *)

val warm_default : unit -> bool
(** The process-wide warm-start switch: [true] unless [POWERLIM_WARM] is
    set to [0]/[false]/[off]/[no].  Consulted by {!run_sweep} and by the
    [powerlim what-if] re-solve path, both of which print byte-identical
    output either way. *)

val run_sweep : ?pool:Putil.Pool.t -> ?warm:bool -> setup -> sweep
(** Runs the Static/Conductor/LP-replay triples over [config.caps] on
    [pool] (the shared default pool when omitted), preserving the cap
    order in [points].  The caps are processed as a fixed number of
    ascending (tightest-first) contiguous chains, each building the
    event LP once ({!Core.Event_lp.prepare}) and threading the previous
    cap's optimal basis into the next solve as a warm start.  [warm]
    defaults to on;
    [POWERLIM_WARM=0] disables it (cold re-solves through the same
    prepared pipeline).  Caps whose power duals are all zero are
    re-solved cold — their cap-independent unconstrained optimum is
    degenerate and a warm start may land on an alternate vertex — so
    sweep output is byte-identical with warm starts on or off.  The chain count is
    independent of the pool size, so output does not depend on
    POWERLIM_JOBS.  Each job only
    reads the shared immutable [setup]; all solver and simulator state is
    per-job. *)

(** {2 Energy-under-deadline sweeps} *)

val default_multipliers : float list
(** The deadline grid, as multiples of the makespan bound at the cap. *)

type energy_point = {
  deadline : float;  (** seconds *)
  multiplier : float;  (** deadline / makespan bound at the cap *)
  feasible : bool;
  lp_energy_j : float;  (** LP-optimal energy under the deadline *)
  lp_makespan : float;  (** makespan of the energy-optimal schedule *)
  replay_energy_j : float;  (** replayed energy before reclamation *)
  reclaimed_energy_j : float;  (** replayed energy after reclamation *)
  reclaimed_j : float;  (** joules the reclamation pass shaved (LP side) *)
  reclaimed_pct : float;
  tasks_stretched : int;
  max_power : float;  (** worst sustained power of either replay *)
  within_cap : bool;
}

type energy_sweep = {
  esetup : setup;
  cap : float;  (** watts per socket, fixed across the sweep *)
  job_cap : float;
  makespan_bound : float;  (** T*: the LP makespan optimum at the cap *)
  bound_energy_j : float;  (** energy of that makespan-optimal schedule *)
  epoints : energy_point list;
}

val run_deadline_sweep :
  ?multipliers:float list -> setup -> cap:float -> energy_sweep
(** Sweep the energy objective over deadlines [multiplier x T*] at a
    fixed cap: one energy-mode {!Pipeline.Stages.prepare} shared by the
    whole sweep, each deadline an RHS re-solve
    ({!Core.Event_lp.solve_prepared_deadline}), each feasible point
    replayed, slack-reclaimed, and replayed again.  Every point is
    solved {e cold} on purpose: the energy objective leaves every
    vertex-time column costless, so warm starts may land on alternate
    optimal vertices and the replay would depend on warm history —
    cold points are canonical and the output byte-identical under any
    POWERLIM_WARM / POWERLIM_JOBS setting.  The warm fast path is
    exercised and gated by the [energybench] harness.  [epoints] is
    empty when the cap itself is infeasible. *)

val figure_caps : Workloads.Apps.app -> float * float
(** The power range each per-benchmark figure shows (the x-axes of the
    paper's Figures 11 and 13-15). *)

val in_figure_range : Workloads.Apps.app -> point -> bool
val header : Format.formatter -> string -> unit
val pp_pct : Format.formatter -> float -> unit
