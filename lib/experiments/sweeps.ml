(** The all-benchmark power sweep behind Figures 9-11 and 13-15, plus
    the Section 6 summary numbers.  The sweep (Static, Conductor and
    LP-replay at every cap for every application) is computed once and
    rendered as the different figures. *)

type t = (Workloads.Apps.app * Common.sweep) list

(* The apps fan out on the pool; each app's per-cap points fan out on
   the same pool from inside the app job (nested submission -- the pool's
   helping [await] keeps the fixed worker set busy).  [parallel_map]
   preserves list order, so the result is independent of pool size. *)
let compute ?pool ?(config = Common.default_config) () : t =
  let pool =
    match pool with Some p -> p | None -> Putil.Pool.get_default ()
  in
  Putil.Pool.parallel_map pool
    (fun app ->
      Putil.Obs.span ~cat:"sweep"
        ~args:[ ("app", Workloads.Apps.app_name app) ]
        "app"
        (fun () ->
          let setup = Common.make_setup config app in
          (app, Common.run_sweep ~pool setup)))
    Workloads.Apps.all_apps

(* ---- Figure 9: LP vs Static, all benchmarks ---------------------- *)

let fig9 (sweep : t) ppf =
  Common.header ppf "Figure 9: potential speedup of LP schedules vs. Static";
  Fmt.pf ppf "# watts_per_socket %s  (improvement %%)@."
    (String.concat " "
       (List.map (fun (a, _) -> Workloads.Apps.app_name a) sweep));
  let caps =
    match sweep with (_, s) :: _ -> List.map (fun (p : Common.point) -> p.Common.cap) s.Common.points | [] -> []
  in
  List.iter
    (fun cap ->
      Fmt.pf ppf "%5.0f " cap;
      List.iter
        (fun (_, s) ->
          let p = List.find (fun (p : Common.point) -> p.Common.cap = cap) s.Common.points in
          Fmt.pf ppf " %a" Common.pp_pct
            (if p.Common.schedulable then p.Common.lp_vs_static else Float.nan))
        sweep;
      Fmt.pf ppf "@.")
    caps

(* ---- Figure 10: LP vs Conductor, all benchmarks ------------------ *)

let fig10 (sweep : t) ppf =
  Common.header ppf "Figure 10: potential speedup of LP schedules vs. Conductor";
  Fmt.pf ppf "# watts_per_socket %s  (improvement %%)@."
    (String.concat " "
       (List.map (fun (a, _) -> Workloads.Apps.app_name a) sweep));
  let caps =
    match sweep with (_, s) :: _ -> List.map (fun (p : Common.point) -> p.Common.cap) s.Common.points | [] -> []
  in
  List.iter
    (fun cap ->
      Fmt.pf ppf "%5.0f " cap;
      List.iter
        (fun (_, s) ->
          let p = List.find (fun (p : Common.point) -> p.Common.cap = cap) s.Common.points in
          Fmt.pf ppf " %a" Common.pp_pct
            (if p.Common.schedulable then p.Common.lp_vs_conductor else Float.nan))
        sweep;
      Fmt.pf ppf "@.")
    caps

(* ---- Figures 11, 13, 14, 15: per-benchmark LP & Conductor vs Static *)

let figure_number = function
  | Workloads.Apps.CoMD -> 11
  | Workloads.Apps.BT -> 13
  | Workloads.Apps.SP -> 14
  | Workloads.Apps.LULESH -> 15

let per_benchmark (sweep : t) app ppf =
  let _, s = List.find (fun (a, _) -> a = app) sweep in
  Common.header ppf
    (Fmt.str "Figure %d: %s improvement vs. Static" (figure_number app)
       (Workloads.Apps.app_name app));
  Fmt.pf ppf "# watts_per_socket lp_pct conductor_pct@.";
  List.iter
    (fun p ->
      if Common.in_figure_range app p && p.Common.schedulable then
        Fmt.pf ppf "%5.0f  %a %a@." p.Common.cap Common.pp_pct
          p.Common.lp_vs_static Common.pp_pct p.Common.conductor_vs_static)
    s.Common.points

(* ---- Section 6 headline summary ---------------------------------- *)

let summary (sweep : t) ppf =
  Common.header ppf "Section 6 summary (paper headline numbers)";
  let all_points =
    List.concat_map
      (fun (app, s) ->
        List.filter
          (fun p -> p.Common.schedulable && Common.in_figure_range app p)
          s.Common.points)
      sweep
  in
  let max_by f = List.fold_left (fun a p -> max a (f p)) Float.neg_infinity in
  let mean_by f l =
    List.fold_left (fun a p -> a +. f p) 0.0 l /. Float.of_int (List.length l)
  in
  Fmt.pf ppf
    "max LP vs Static     : %6.1f%%  (paper: up to 74.9%%)@.\
     max LP vs Conductor  : %6.1f%%  (paper: up to 41.1%%)@.\
     avg Conductor vs Static : %4.1f%%  (paper: average 6.7%%)@.\
     avg LP vs Static     : %6.1f%%  (paper: average 10.8%%)@.\
     worst Conductor vs Static : %4.1f%%  (paper: -2.6%% on SP)@."
    (max_by (fun p -> p.Common.lp_vs_static) all_points)
    (max_by (fun p -> p.Common.lp_vs_conductor) all_points)
    (mean_by (fun p -> p.Common.conductor_vs_static) all_points)
    (mean_by (fun p -> p.Common.lp_vs_static) all_points)
    (List.fold_left
       (fun a p -> min a p.Common.conductor_vs_static)
       Float.infinity all_points)
