(** Figure 8: flow ILP vs. fixed-vertex-order LP on the two-process
    asynchronous message exchange, across total power limits.  The paper
    reports agreement within 1.9% for all but three of the tested
    limits. *)

let run ?(config = Common.default_config) ppf =
  ignore config;
  let g = Workloads.Apps.exchange ~rounds:2 () in
  let sc = Pipeline.Stages.scenario (Pipeline.Stages.Graph g) in
  let min_power = Core.Scenario.min_job_power sc in
  Common.header ppf
    "Figure 8: flow vs fixed-vertex-order formulations (2-rank exchange)";
  Fmt.pf ppf "# total_power_W fixed_order_s flow_s rel_diff_pct ilp_nodes@.";
  let caps =
    List.init 14 (fun i -> Float.of_int (40 + (5 * i)) (* 40..105 W total *))
  in
  let agree = ref 0 and total = ref 0 in
  List.iter
    (fun cap ->
      if cap >= min_power then begin
        match Core.Event_lp.solve sc ~power_cap:cap with
        | Core.Event_lp.Schedule fixed -> begin
            match Core.Flow_ilp.solve sc ~power_cap:cap with
            | Core.Flow_ilp.Schedule flow ->
                incr total;
                let rel =
                  100.0
                  *. (fixed.Core.Event_lp.objective
                     -. flow.Core.Flow_ilp.objective)
                  /. flow.Core.Flow_ilp.objective
                in
                if Float.abs rel <= 1.9 then incr agree;
                Fmt.pf ppf "%6.1f %8.4f %8.4f %+6.2f %d@." cap
                  fixed.Core.Event_lp.objective flow.Core.Flow_ilp.objective
                  rel flow.Core.Flow_ilp.stats.Core.Flow_ilp.nodes
            | Core.Flow_ilp.Infeasible -> Fmt.pf ppf "%6.1f - flow infeasible@." cap
            | Core.Flow_ilp.Too_large n -> Fmt.pf ppf "%6.1f - too large (%d)@." cap n
            | Core.Flow_ilp.Solver_failure m -> Fmt.pf ppf "%6.1f - %s@." cap m
          end
        | Core.Event_lp.Infeasible -> Fmt.pf ppf "%6.1f - fixed infeasible@." cap
        | Core.Event_lp.Solver_failure m -> Fmt.pf ppf "%6.1f - %s@." cap m
      end)
    caps;
  Fmt.pf ppf "# %d/%d power limits agree within 1.9%% (paper: all but 3 of 106)@."
    !agree !total
