(** Intrinsic performance profile of a computation task: the four
    parameters from which duration and power under any (frequency ×
    threads) configuration are derived. *)

type t = {
  work : float;  (** seconds at 1 thread, max frequency *)
  serial_frac : float;  (** Amdahl serial fraction, in [0, 1] *)
  contention : float;
      (** additive per-extra-thread slowdown (shared-cache contention);
          the optimal thread count is about
          [sqrt ((1 - serial_frac) / contention)] *)
  mem_bound : float;
      (** fraction of execution time insensitive to core frequency,
          in [0, 1) *)
}

val v :
  ?serial_frac:float -> ?contention:float -> ?mem_bound:float -> float -> t
(** [v work] builds a profile, validating every field. *)

val thread_factor : t -> threads:int -> float
(** Relative time at [threads] threads versus one thread (fixed
    frequency). *)

val freq_factor : t -> freq:float -> float
(** Relative time at [freq] versus the maximum frequency. *)

val duration : t -> freq:float -> threads:int -> float
(** Task duration in seconds at the given configuration. *)

val best_threads : t -> max_threads:int -> int
(** Thread count in [1..max_threads] minimizing duration. *)

val equal : t -> t -> bool
(** Structural (bit-level float) equality. *)

val digest_fold : Putil.Hashing.t -> t -> unit
(** Feed the profile's canonical encoding to a hasher (cache keys). *)

val pp : Format.formatter -> t -> unit
