(** Simulated processor socket: power model and per-part manufacturing
    variability.  See the implementation header for the calibration
    rationale (Table 1 frontier shape; 30 W cap cliff). *)

type t = {
  id : int;
  eff : float;  (** dynamic-power multiplier; 1.0 = nominal part *)
}

type params = {
  cores : int;
  idle_w : float;
  leak_w : float;  (** static per-core power when the core is active *)
  dyn_w : float;  (** dynamic per-core power at max frequency *)
  mem_damp : float;  (** dynamic-power reduction per unit of mem_bound *)
}

val default_params : params

val nominal : int -> t
(** A socket with no variability. *)

val fleet : ?variability:float -> seed:int -> int -> t array
(** [fleet ~seed n]: [n] sockets with bell-shaped efficiency variability,
    deterministic in [seed]. *)

val power :
  ?params:params -> t -> freq:float -> threads:int -> mem_bound:float -> float
(** Socket power (watts) with [threads] active cores at [freq] running a
    task of the given memory-boundedness. *)

val idle_power : ?params:params -> t -> float

val equal : t -> t -> bool
(** Structural equality (id and efficiency). *)

val digest_fold : Putil.Hashing.t -> t -> unit
(** Feed the socket's canonical encoding to a hasher (cache keys). *)

val params_digest_fold : Putil.Hashing.t -> params -> unit

val pp : Format.formatter -> t -> unit
