(** Simulated processor socket: power model and manufacturing
    variability.

    Socket power at a configuration is

    [idle + eff * threads * (leak + dyn * (f / f_max)^3 * mem_damp)]

    where [mem_damp] reduces dynamic draw for memory-bound tasks (stalled
    cores draw less).  The constants are calibrated for two properties of
    the paper's machine: (a) the socket spans roughly 28 W (eight cores
    at the lowest P-state) to 82 W (eight cores at 2.6 GHz), so the
    30-80 W caps the paper sweeps run from "painful" to "roomy" and a
    30 W cap forces RAPL into clock modulation exactly as Section 6.4
    reports for BT; and (b) an extra thread at the lowest frequency is
    cheaper per second saved than a frequency step, so the convex Pareto
    frontier has the Table 1 shape (reduced thread counts appear only at
    the minimum frequency).  [eff] models per-part manufacturing
    variability in power efficiency, which the paper names as one source
    of reallocation opportunity. *)

type t = {
  id : int;
  eff : float;  (** dynamic-power multiplier; 1.0 = nominal part *)
}

type params = {
  cores : int;
  idle_w : float;
  leak_w : float;  (** static per-core power when the core is active *)
  dyn_w : float;  (** dynamic per-core power at max frequency *)
  mem_damp : float;  (** dynamic-power reduction per unit of mem_bound *)
}

let default_params =
  { cores = 8; idle_w = 18.0; leak_w = 0.6; dyn_w = 7.5; mem_damp = 0.3 }

let nominal id = { id; eff = 1.0 }

(** A fleet of [n] sockets with per-part efficiency variability
    (deterministic in [seed]). *)
let fleet ?(variability = 0.04) ~seed n =
  let st = Random.State.make [| seed; 0x50c4e7 |] in
  Array.init n (fun id ->
      (* sum of three uniforms: roughly bell-shaped in [-1.5, 1.5] *)
      let u () = Random.State.float st 2.0 -. 1.0 in
      let g = (u () +. u () +. u ()) /. 3.0 in
      { id; eff = 1.0 +. (variability *. g *. 3.0) })

(** Socket power (watts) with [threads] active cores at [freq], running a
    task with memory-boundedness [mem_bound]. *)
let power ?(params = default_params) t ~freq ~threads ~mem_bound =
  if threads < 0 || threads > params.cores then
    invalid_arg "Socket.power: bad thread count";
  let x = freq /. Dvfs.f_max in
  let damp = 1.0 -. (params.mem_damp *. mem_bound) in
  params.idle_w
  +. t.eff
     *. Float.of_int threads
     *. (params.leak_w +. (params.dyn_w *. x *. x *. x *. damp))

(** Idle (no active cores) socket power. *)
let idle_power ?(params = default_params) (_ : t) = params.idle_w

let equal a b = a.id = b.id && Float.equal a.eff b.eff

let digest_fold h t =
  Putil.Hashing.int h t.id;
  Putil.Hashing.float h t.eff

let params_digest_fold h p =
  Putil.Hashing.int h p.cores;
  Putil.Hashing.float h p.idle_w;
  Putil.Hashing.float h p.leak_w;
  Putil.Hashing.float h p.dyn_w;
  Putil.Hashing.float h p.mem_damp

let pp ppf t = Fmt.pf ppf "socket%d(eff=%.3f)" t.id t.eff
