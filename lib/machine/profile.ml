(** Intrinsic performance profile of a computation task.

    A task's execution time and socket power under a configuration
    (frequency × thread count) are derived from four parameters that
    capture the application properties the paper identifies as decisive:

    - [work]: single-thread execution time at the maximum frequency;
    - [serial_frac]: Amdahl serial fraction, limiting thread scaling;
    - [contention]: per-extra-thread slowdown factor modeling shared-cache
      contention (what makes 4-5 threads optimal for LULESH-like tasks);
    - [mem_bound]: fraction of execution time insensitive to core
      frequency (memory-bound stalls). *)

type t = {
  work : float;  (** seconds at 1 thread, max frequency *)
  serial_frac : float;  (** in [0, 1] *)
  contention : float;  (** >= 0; per-thread multiplicative overhead *)
  mem_bound : float;  (** in [0, 1) *)
}

let v ?(serial_frac = 0.05) ?(contention = 0.0) ?(mem_bound = 0.2) work =
  if work < 0.0 then invalid_arg "Profile.v: negative work";
  if serial_frac < 0.0 || serial_frac > 1.0 then
    invalid_arg "Profile.v: serial_frac out of [0,1]";
  if contention < 0.0 then invalid_arg "Profile.v: negative contention";
  if mem_bound < 0.0 || mem_bound >= 1.0 then
    invalid_arg "Profile.v: mem_bound out of [0,1)";
  { work; serial_frac; contention; mem_bound }

(** Thread-scaling factor: relative time at [threads] threads versus one
    thread, at a fixed frequency.  Amdahl scaling plus an additive
    per-extra-thread contention term; the optimum thread count is about
    [sqrt ((1 - serial_frac) / contention)]. *)
let thread_factor t ~threads =
  if threads < 1 then invalid_arg "Profile.thread_factor: threads < 1";
  let n = Float.of_int threads in
  t.serial_frac
  +. ((1.0 -. t.serial_frac) /. n)
  +. (t.contention *. (n -. 1.0))

(** Frequency-scaling factor: relative time at frequency [freq] versus
    the maximum frequency. *)
let freq_factor t ~freq =
  if freq <= 0.0 then invalid_arg "Profile.freq_factor: freq <= 0";
  t.mem_bound +. ((1.0 -. t.mem_bound) *. (Dvfs.f_max /. freq))

(** Task duration in seconds at the given configuration. *)
let duration t ~freq ~threads =
  t.work *. thread_factor t ~threads *. freq_factor t ~freq

(** Thread count in 1..max_threads minimizing duration (frequency held
    fixed; the optimum is frequency-independent in this model). *)
let best_threads t ~max_threads =
  let best = ref 1 and bt = ref (thread_factor t ~threads:1) in
  for n = 2 to max_threads do
    let f = thread_factor t ~threads:n in
    if f < !bt then begin
      bt := f;
      best := n
    end
  done;
  !best

let equal a b =
  Float.equal a.work b.work
  && Float.equal a.serial_frac b.serial_frac
  && Float.equal a.contention b.contention
  && Float.equal a.mem_bound b.mem_bound

let digest_fold h t =
  Putil.Hashing.float h t.work;
  Putil.Hashing.float h t.serial_frac;
  Putil.Hashing.float h t.contention;
  Putil.Hashing.float h t.mem_bound

let pp ppf t =
  Fmt.pf ppf "{work=%.4gs; serial=%.3g; contention=%.3g; mem=%.3g}" t.work
    t.serial_frac t.contention t.mem_bound
