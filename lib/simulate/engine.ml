(** Discrete-event replay of an application DAG under a power-allocation
    policy.

    The engine fires vertices in event order: a vertex fires when every
    in-edge (task or message) has completed, plus the vertex's collective
    delay.  Task durations and powers come from the policy's chosen
    configuration blend.  The engine itself enforces nothing about power;
    it {e measures} the job power profile so callers can verify a policy
    (or an LP schedule) against its job-level constraint — the
    "validation by replay" of Section 6.1. *)

type task_record = {
  tid : int;
  rank : int;
  start : float;  (** includes the policy's switch overhead *)
  duration : float;
  power : float;  (** blend-average socket power during the task *)
  point : Pareto.Point.t;  (** dominant (largest-weight) blend point *)
  blend : Pareto.Frontier.blend;
  overhead : float;
}

type result = {
  makespan : float;
  records : task_record array;  (** indexed by tid *)
  trace : (float * float) array;
      (** job-power step function: (time, power) samples, one per change *)
  max_power : float;
  avg_power : float;
  energy : float;  (** joules over the whole run *)
}

type slack_model =
  [ `Task_power  (** slack billed at the preceding task's power (LP view) *)
  | `Idle  (** slack billed at socket idle power *) ]

let dominant_point (b : Pareto.Frontier.blend) =
  match b with
  | [] -> invalid_arg "Engine: empty blend"
  | (p0, w0) :: rest ->
      let best = ref p0 and bw = ref w0 in
      List.iter
        (fun (p, w) ->
          if w > !bw then begin
            best := p;
            bw := w
          end)
        rest;
      !best

type event = Task_done of int | Message_done of int

let run_impl ~slack_model ~idle_power ?release (g : Dag.Graph.t)
    (policy : Policy.t) : result =
  let nv = Dag.Graph.n_vertices g in
  let nt = Dag.Graph.n_tasks g in
  let remaining = Array.make nv 0 in
  Array.iteri
    (fun v es -> remaining.(v) <- List.length es)
    g.Dag.Graph.in_edges;
  let latest_in = Array.make nv 0.0 in
  let fired = Array.make nv false in
  let fire_time = Array.make nv 0.0 in
  let records : task_record option array = Array.make nt None in
  let prev_point : Pareto.Point.t option array =
    Array.make g.Dag.Graph.nranks None
  in
  let queue = Putil.Pqueue.create () in
  (* Observation window accounting since the last pcontrol. *)
  let win_busy = Array.make g.Dag.Graph.nranks 0.0 in
  let win_energy = Array.make g.Dag.Graph.nranks 0.0 in
  let win_start = ref 0.0 in
  let start_task tid now =
    let t = g.Dag.Graph.tasks.(tid) in
    let d =
      policy.Policy.decide { Policy.task = t; now; prev = prev_point.(t.rank) }
    in
    let blend = d.Policy.blend in
    let dur = Pareto.Frontier.blend_duration blend in
    (* Zero-work tasks are instantaneous MPI transitions: they carry no
       power, matching the LP formulation which gives them no
       configuration variables. *)
    let power =
      if t.profile.Machine.Profile.work <= 0.0 then 0.0
      else Pareto.Frontier.blend_power blend
    in
    let point = dominant_point blend in
    prev_point.(t.rank) <- Some point;
    let start = now +. d.Policy.overhead in
    records.(tid) <-
      Some
        {
          tid;
          rank = t.rank;
          start;
          duration = dur;
          power;
          point;
          blend;
          overhead = d.Policy.overhead;
        };
    win_busy.(t.rank) <- win_busy.(t.rank) +. dur;
    win_energy.(t.rank) <- win_energy.(t.rank) +. (dur *. power);
    Putil.Pqueue.push queue (start +. dur) (Task_done tid)
  in
  let rec fire_vertex v now =
    fired.(v) <- true;
    fire_time.(v) <- now;
    let vx = g.Dag.Graph.vertices.(v) in
    let now =
      if vx.Dag.Graph.pcontrol then now +. policy.Policy.pcontrol_overhead
      else now
    in
    if vx.Dag.Graph.pcontrol then begin
      let window = now -. !win_start in
      let rank_power =
        Array.mapi
          (fun r e -> if win_busy.(r) > 0.0 then e /. win_busy.(r) else 0.0)
          win_energy
      in
      policy.Policy.observe
        {
          Policy.iteration =
            (match g.Dag.Graph.in_edges.(v) with
            | Dag.Graph.T tid :: _ -> g.Dag.Graph.tasks.(tid).iteration
            | _ -> -1);
          now;
          window;
          rank_busy = Array.copy win_busy;
          rank_power;
        };
      Array.fill win_busy 0 (Array.length win_busy) 0.0;
      Array.fill win_energy 0 (Array.length win_energy) 0.0;
      win_start := now
    end;
    List.iter
      (fun e ->
        match e with
        | Dag.Graph.T tid -> start_task tid now
        | Dag.Graph.M mid ->
            let m = g.Dag.Graph.messages.(mid) in
            Putil.Pqueue.push queue
              (now +. Machine.Network.transfer_time m.Dag.Graph.bytes)
              (Message_done mid))
      g.Dag.Graph.out_edges.(v)
  and complete_edge_at v now =
    remaining.(v) <- remaining.(v) - 1;
    if now > latest_in.(v) then latest_in.(v) <- now;
    if remaining.(v) = 0 then begin
      let t = latest_in.(v) +. g.Dag.Graph.vertices.(v).Dag.Graph.delay in
      (* A schedule may prescribe a later firing time than the greedy
         one (the LP's event-order constraints can hold a vertex back to
         keep power-hungry tasks from overlapping); honor it. *)
      let t = match release with Some r -> max t (r v) | None -> t in
      fire_vertex v t
    end
  in
  fire_vertex g.Dag.Graph.init_v 0.0;
  let makespan = ref 0.0 in
  let continue = ref true in
  while !continue do
    match Putil.Pqueue.pop queue with
    | None -> continue := false
    | Some (now, ev) ->
        if now > !makespan then makespan := now;
        (match ev with
        | Task_done tid -> complete_edge_at g.Dag.Graph.tasks.(tid).t_dst now
        | Message_done mid ->
            complete_edge_at g.Dag.Graph.messages.(mid).m_dst now)
  done;
  if not fired.(g.Dag.Graph.finalize_v) then
    failwith "Engine.run: Finalize never fired (dag bug)";
  (* a delayed or held-back Finalize extends the run even though no task
     follows it *)
  if fire_time.(g.Dag.Graph.finalize_v) > !makespan then
    makespan := fire_time.(g.Dag.Graph.finalize_v);
  let records =
    Array.map
      (function Some r -> r | None -> failwith "Engine.run: task never ran")
      records
  in
  (* ---- job power trace ------------------------------------------- *)
  (* Per rank, tasks tile the timeline; between a task's end and the next
     task's start the socket is billed per [slack_model]. *)
  let deltas = ref [] in
  let add_delta t dp = if dp <> 0.0 then deltas := (t, dp) :: !deltas in
  Array.iteri
    (fun _r seq ->
      Array.iteri
        (fun i tid ->
          let rc = records.(tid) in
          let seg_end =
            if i + 1 < Array.length seq then records.(seq.(i + 1)).start
            else !makespan
          in
          let task_end = rc.start +. rc.duration in
          add_delta rc.start rc.power;
          (match slack_model with
          | `Task_power ->
              (* power held until the next task starts *)
              add_delta (max task_end seg_end) (-.rc.power)
          | `Idle ->
              add_delta task_end (-.rc.power);
              if seg_end > task_end then begin
                add_delta task_end idle_power;
                add_delta seg_end (-.idle_power)
              end);
          if i = 0 && rc.start > 0.0 then begin
            (* leading wait before the first task *)
            add_delta 0.0 idle_power;
            add_delta rc.start (-.idle_power)
          end)
        seq)
    g.Dag.Graph.rank_tasks;
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !deltas)
  in
  (* Coalesce deltas at identical times so simultaneous task end/start
     pairs do not register transient power spikes. *)
  let rec group = function
    | (t1, d1) :: (t2, d2) :: rest when t1 = t2 -> group ((t1, d1 +. d2) :: rest)
    | x :: rest -> x :: group rest
    | [] -> []
  in
  let sorted = group sorted in
  let trace = ref [] in
  let cur = ref 0.0 in
  let energy = ref 0.0 in
  let last_t = ref 0.0 in
  let maxp = ref 0.0 in
  List.iter
    (fun (t, dp) ->
      if t > !last_t then begin
        energy := !energy +. (!cur *. (t -. !last_t));
        last_t := t
      end;
      cur := !cur +. dp;
      if !cur > !maxp then maxp := !cur;
      match !trace with
      | (t0, _) :: rest when t0 = t -> trace := (t, !cur) :: rest
      | _ -> trace := (t, !cur) :: !trace)
    sorted;
  {
    makespan = !makespan;
    records;
    trace = Array.of_list (List.rev !trace);
    max_power = !maxp;
    avg_power = (if !makespan > 0.0 then !energy /. !makespan else 0.0);
    energy = !energy;
  }

(* Process-wide replay counters (atomic, shared across pool domains):
   how many engine runs happened and how much energy they simulated.
   Joules are accumulated in an integer atomic at millijoule resolution,
   same pattern as {!Lp.Stats}'s nanosecond wall clock. *)
let runs_n = Atomic.make 0
let energy_mj = Atomic.make 0

let sim_runs () = Atomic.get runs_n
let sim_energy_j () = Float.of_int (Atomic.get energy_mj) *. 1e-3

let () =
  Putil.Obs.register_stats ~name:"simulate" (fun () ->
      Putil.Obs.Assoc
        [
          ("runs", Putil.Obs.Int (sim_runs ()));
          ("energy_j", Putil.Obs.Float (sim_energy_j ()));
        ])

let run ?(slack_model = `Task_power) ?(idle_power = 18.0) ?release g policy =
  let r =
    Putil.Obs.span ~cat:"simulate"
      ~args:[ ("policy", policy.Policy.name) ]
      "engine.run"
      (fun () -> run_impl ~slack_model ~idle_power ?release g policy)
  in
  ignore (Atomic.fetch_and_add runs_n 1);
  ignore (Atomic.fetch_and_add energy_mj (int_of_float (r.energy *. 1e3)));
  r

(** Maximum job power, excluding intervals shorter than [ignore_below]
    seconds (useful to separate transient configuration-switch spikes
    from sustained violations). *)
let sustained_max_power ?(ignore_below = 0.0) (r : result) =
  if ignore_below <= 0.0 then r.max_power
  else begin
    let n = Array.length r.trace in
    let m = ref 0.0 in
    Array.iteri
      (fun i (t, p) ->
        let t' = if i + 1 < n then fst r.trace.(i + 1) else r.makespan in
        if t' -. t >= ignore_below && p > !m then m := p)
      r.trace;
    !m
  end
