(** CSV export of simulation results, for plotting power traces and task
    scatters (the raw material of the paper's Figures 12 and the power
    validation plots) with any external tool. *)

(* RFC 4180 quoting: a cell containing a comma, double quote, CR or LF
   is wrapped in double quotes with embedded quotes doubled.  Numeric
   cells never match, so quoting is applied uniformly and string cells
   (task labels today, anything added later) can never shift columns. *)
let quote cell =
  let needs_quoting =
    String.exists
      (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r')
      cell
  in
  if not needs_quoting then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

(* Emit one CSV line through [put]. *)
let line put cells = put (String.concat "," (List.map quote cells) ^ "\n")

(** Job-power step function: columns [time_s,power_w].  Each change in
    job power appears as one row. *)
let write_trace put (r : Engine.result) =
  line put [ "time_s"; "power_w" ];
  Array.iter
    (fun (t, p) -> line put [ Printf.sprintf "%.9g" t; Printf.sprintf "%.6g" p ])
    r.Engine.trace;
  line put
    [ Printf.sprintf "%.9g" r.Engine.makespan; Printf.sprintf "%.6g" 0.0 ]

(** Per-task records: columns
    [tid,rank,iteration,label,start_s,duration_s,power_w,freq_ghz,threads]. *)
let write_records put (g : Dag.Graph.t) (r : Engine.result) =
  line put
    [
      "tid"; "rank"; "iteration"; "label"; "start_s"; "duration_s"; "power_w";
      "freq_ghz"; "threads";
    ];
  Array.iter
    (fun (rc : Engine.task_record) ->
      let t = g.Dag.Graph.tasks.(rc.tid) in
      if t.Dag.Graph.profile.Machine.Profile.work > 0.0 then
        line put
          [
            string_of_int rc.tid;
            string_of_int rc.rank;
            string_of_int t.Dag.Graph.iteration;
            t.Dag.Graph.label;
            Printf.sprintf "%.9g" rc.start;
            Printf.sprintf "%.9g" rc.duration;
            Printf.sprintf "%.6g" rc.power;
            Printf.sprintf "%.2f" rc.point.Pareto.Point.freq;
            string_of_int rc.point.Pareto.Point.threads;
          ])
    r.Engine.records

let trace_to_string r =
  let buf = Buffer.create 1024 in
  write_trace (Buffer.add_string buf) r;
  Buffer.contents buf

let records_to_string g r =
  let buf = Buffer.create 1024 in
  write_records (Buffer.add_string buf) g r;
  Buffer.contents buf

let trace_to_file path r =
  Putil.Fileio.with_out path (fun oc -> write_trace (output_string oc) r)

let records_to_file path g r =
  Putil.Fileio.with_out path (fun oc -> write_records (output_string oc) g r)
