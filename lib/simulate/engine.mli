(** Discrete-event replay of an application DAG under a power-allocation
    policy.  The engine enforces nothing about power; it {e measures} the
    job-power profile so callers can verify a policy or an LP schedule
    against its job-level constraint (paper Section 6.1). *)

type task_record = {
  tid : int;
  rank : int;
  start : float;  (** includes the policy's switch overhead *)
  duration : float;
  power : float;  (** blend-average socket power during the task *)
  point : Pareto.Point.t;  (** dominant (largest-weight) blend point *)
  blend : Pareto.Frontier.blend;
  overhead : float;
}

type result = {
  makespan : float;
  records : task_record array;  (** indexed by tid *)
  trace : (float * float) array;
      (** job-power step function: one (time, power) sample per change *)
  max_power : float;
  avg_power : float;
  energy : float;  (** joules over the whole run *)
}

type slack_model =
  [ `Task_power  (** slack billed at the preceding task's power (LP view) *)
  | `Idle  (** slack billed at socket idle power *) ]

val dominant_point : Pareto.Frontier.blend -> Pareto.Point.t

val run :
  ?slack_model:slack_model ->
  ?idle_power:float ->
  ?release:(int -> float) ->
  Dag.Graph.t ->
  Policy.t ->
  result
(** Replay the graph to completion.  [release v] (optional) is the
    earliest time vertex [v] may fire — schedules that prescribe event
    times (the LP's equations (12)-(13)) are replayed faithfully by
    passing their vertex times here.  Deterministic given a deterministic
    policy.  Raises [Failure] on a structurally broken graph. *)

val sustained_max_power : ?ignore_below:float -> result -> float
(** Maximum job power, ignoring intervals shorter than [ignore_below]
    seconds (separates switch transients from sustained violations). *)

val sim_runs : unit -> int
(** Process-wide count of {!run} calls (also in the ["simulate"] entry
    of the {!Putil.Obs} stats registry). *)

val sim_energy_j : unit -> float
(** Process-wide total simulated energy across every {!run}, joules
    (millijoule resolution). *)
