(** Minimal JSON reader for the serve wire protocol.

    Parses into {!Putil.Obs.json} — the same value type the emitter in
    {!Putil.Obs} renders — so a request can be parsed, inspected and
    echoed without a second representation.  Covers full JSON: objects,
    arrays, strings with escapes (including [\uXXXX], folded to bytes
    as Latin-1 to mirror the emitter's escaping of raw bytes), numbers
    (integers without exponent/fraction parse as [Int], everything else
    as [Float]), [true]/[false]/[null].

    No dependency beyond the stdlib: the container deliberately ships
    no JSON package, and the protocol needs only this subset. *)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error "expected %C at offset %d, found %C" c st.pos c'
  | None -> error "expected %C at offset %d, found end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error "bad literal at offset %d" st.pos

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> error "bad hex digit %C" c

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | None -> error "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  error "truncated \\u escape";
                let v =
                  (hex_digit st.src.[st.pos] * 4096)
                  + (hex_digit st.src.[st.pos + 1] * 256)
                  + (hex_digit st.src.[st.pos + 2] * 16)
                  + hex_digit st.src.[st.pos + 3]
                in
                st.pos <- st.pos + 4;
                (* code points <= 0xff fold to single bytes — the exact
                   inverse of the emitter's Latin-1 \u escaping; higher
                   planes encode as UTF-8 *)
                if v <= 0xff then Buffer.add_char buf (Char.chr v)
                else if v <= 0x7ff then begin
                  Buffer.add_char buf (Char.chr (0xc0 lor (v lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3f)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xe0 lor (v lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((v lsr 6) land 0x3f)));
                  Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3f)))
                end
            | c -> error "bad escape \\%C" c));
        loop ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let n = String.length st.src in
  let is_float = ref false in
  if peek st = Some '-' then advance st;
  while
    st.pos < n
    &&
    match st.src.[st.pos] with
    | '0' .. '9' -> true
    | '.' | 'e' | 'E' | '+' | '-' ->
        is_float := true;
        true
    | _ -> false
  do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  if s = "" || s = "-" then error "bad number at offset %d" start;
  let float_or_fail s =
    match float_of_string_opt s with
    | Some f -> Putil.Obs.Float f
    | None -> error "bad number %S at offset %d" s start
  in
  if !is_float then float_or_fail s
  else
    match int_of_string_opt s with
    | Some i -> Putil.Obs.Int i
    | None -> float_or_fail s

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error "empty input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Putil.Obs.Assoc []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> error "expected ',' or '}' at offset %d" st.pos
        in
        members ();
        Putil.Obs.Assoc (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Putil.Obs.List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | _ -> error "expected ',' or ']' at offset %d" st.pos
        in
        elements ();
        Putil.Obs.List (List.rev !items)
      end
  | Some '"' -> Putil.Obs.String (parse_string st)
  | Some 't' -> literal st "true" (Putil.Obs.Bool true)
  | Some 'f' -> literal st "false" (Putil.Obs.Bool false)
  | Some 'n' -> literal st "null" Putil.Obs.Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error "unexpected %C at offset %d" c st.pos

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then
    error "trailing garbage at offset %d" st.pos;
  v

let to_string = Putil.Obs.json_to_string

(* ---- typed accessors (raise {!Error} with the field name) --------- *)

let member name = function
  | Putil.Obs.Assoc kvs -> List.assoc_opt name kvs
  | _ -> None

let get_int name j =
  match member name j with
  | Some (Putil.Obs.Int i) -> Some i
  | Some (Putil.Obs.Float f) when Float.is_integer f -> Some (int_of_float f)
  | Some _ -> error "field %S must be an integer" name
  | None -> None

let get_float name j =
  match member name j with
  | Some (Putil.Obs.Float f) -> Some f
  | Some (Putil.Obs.Int i) -> Some (float_of_int i)
  | Some _ -> error "field %S must be a number" name
  | None -> None

let get_string name j =
  match member name j with
  | Some (Putil.Obs.String s) -> Some s
  | Some _ -> error "field %S must be a string" name
  | None -> None

let get_int_list name j =
  match member name j with
  | Some (Putil.Obs.List items) ->
      List.map
        (function
          | Putil.Obs.Int i -> i
          | _ -> error "field %S must be a list of integers" name)
        items
  | Some _ -> error "field %S must be a list of integers" name
  | None -> []

let get_list name j =
  match member name j with
  | Some (Putil.Obs.List items) -> items
  | Some _ -> error "field %S must be a list" name
  | None -> []
