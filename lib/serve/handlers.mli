(** Shared command bodies behind the CLI and the daemon.

    Each handler renders into buffers and returns the exact stdout and
    stderr bytes plus the exit status of the corresponding [powerlim]
    subcommand — the CLI prints the strings and the daemon ships them
    over the wire, so served responses are byte-identical to offline
    runs by construction. *)

type outcome = { out : string; err : string; status : int }

val sweep : ranks:int -> iters:int -> seed:int -> unit -> outcome
(** [powerlim sweep]: the full Static/Conductor/LP power sweep
    (figures 9-10 plus summary). *)

val energy :
  app:Workloads.Apps.app ->
  ranks:int ->
  iters:int ->
  seed:int ->
  cap:float ->
  deadline:float option ->
  unit ->
  outcome
(** [powerlim energy]: minimize energy under one deadline ([Some d],
    status 1 when the replay busts the cap) or sweep deadlines at
    multiples of T* ([None]). *)

val what_if :
  app:Workloads.Apps.app ->
  ranks:int ->
  iters:int ->
  seed:int ->
  cap:float ->
  edits:Core.Event_lp.domain_edit list ->
  unit ->
  outcome
(** [powerlim what-if]: incremental structural re-solve under domain
    edits (status 2 when [edits] is empty, matching the CLI). *)

val pp_cap_violation :
  Format.formatter -> Core.Replay.validation -> job_cap:float -> unit
(** Diagnostic for a replay that exceeds the cap: earliest sustained
    (>= 1 ms) violating interval, or the max sustained power.  Also
    used by the [bound] subcommand. *)
