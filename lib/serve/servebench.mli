(** Serve-path benchmark: cold vs warm request latency through a live
    in-process daemon, byte-identity of served responses against the
    offline renderers, a concurrency storm, and disk-tier warmth
    across a daemon restart.

    The storm phase fires 256 simultaneous client connections at one
    daemon, cycling a mixed population of sweep / energy / what-if
    requests (duplicates collapse through the single-flight cache;
    distinct keys contend for the solver pool), and checks every
    client's response against the offline renderer for its request.

    Writes [BENCH_serve.json] with per-request latencies, per-daemon
    hit rates, the storm tallies and the gated invariants, then
    hard-gates (exit 1): served output must equal offline output byte
    for byte, repeated requests must be at least 2x faster than cold
    ones (median), a restarted daemon must answer at least one request
    from the disk tier, and the storm must complete with zero dropped
    and zero mismatched responses. *)

val run : ?config:Experiments.Common.config -> Format.formatter -> unit
