(** Serve-path benchmark: cold vs warm request latency through a live
    in-process daemon, byte-identity of served responses against the
    offline renderers, and disk-tier warmth across a daemon restart.

    Writes [BENCH_serve.json] with per-request latencies, per-daemon
    hit rates and the gated invariants, then hard-gates (exit 1):
    served output must equal offline output byte for byte, repeated
    requests must be at least 2x faster than cold ones (median), and a
    restarted daemon must answer at least one request from the disk
    tier. *)

val run : ?config:Experiments.Common.config -> Format.formatter -> unit
