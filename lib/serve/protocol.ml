(** Wire protocol of the solving daemon: newline-delimited JSON.

    Requests (one object per line):
    {v
    {"id":1,"op":"sweep","ranks":16,"iters":10,"seed":42}
    {"id":2,"op":"energy","app":"comd","ranks":16,"cap":40,"deadline":1.5}
    {"id":3,"op":"what-if","app":"bt","cap":40,"fail_sockets":[2],
     "drop_ranks":[],"perturb_tasks":[{"tid":17,"point":2,
                                       "duration":0.034,"power":91.5}]}
    {"id":4,"op":"stats"}
    {"id":5,"op":"shutdown"}
    v}

    Omitted parameters take the CLI defaults, so a served request and
    the corresponding [powerlim] invocation describe the same work.

    Responses (one object per line, ids echo the request; order follows
    completion, not submission):
    {v
    {"id":1,"ok":true,"status":0,"cached":"mem","elapsed_ms":0.21,
     "output":"...","err":"..."}
    {"id":9,"ok":false,"error":"unknown op \"swep\""}
    v}

    [status] is the exit code the CLI would have returned; [output] and
    [err] are its stdout/stderr bytes; [cached] is where the result
    came from: ["mem"] (resident), ["disk"] (revived from the artifact
    store) or ["none"] (computed). *)

type op =
  | Sweep of { ranks : int; iters : int; seed : int }
  | Energy of {
      app : Workloads.Apps.app;
      ranks : int;
      iters : int;
      seed : int;
      cap : float;
      deadline : float option;
    }
  | What_if of {
      app : Workloads.Apps.app;
      ranks : int;
      iters : int;
      seed : int;
      cap : float;
      edits : Core.Event_lp.domain_edit list;
    }
  | Stats
  | Shutdown

type request = { id : int; op : op }

let err fmt = Printf.ksprintf (fun s -> raise (Json.Error s)) fmt

let app_of_json j =
  match Json.get_string "app" j with
  | None -> Workloads.Apps.CoMD
  | Some s -> (
      try Workloads.Apps.app_of_name s
      with Invalid_argument m -> err "%s" m)

let perturb_of_json j =
  let req name =
    match Json.get_float name j with
    | Some v -> v
    | None -> err "perturb_tasks entries need field %S" name
  in
  let reqi name =
    match Json.get_int name j with
    | Some v -> v
    | None -> err "perturb_tasks entries need field %S" name
  in
  Core.Event_lp.Perturb_task
    {
      tid = reqi "tid";
      point = reqi "point";
      duration = req "duration";
      power = req "power";
    }

(* CLI defaults (bin/powerlim.ml): ranks 16, iters 10, seed 42, app
   comd, cap 40 W/socket. *)
let op_of_json j =
  let ranks = Option.value ~default:16 (Json.get_int "ranks" j) in
  let iters = Option.value ~default:10 (Json.get_int "iters" j) in
  let seed = Option.value ~default:42 (Json.get_int "seed" j) in
  let cap = Option.value ~default:40.0 (Json.get_float "cap" j) in
  match Json.get_string "op" j with
  | None -> err "request needs field \"op\""
  | Some "sweep" -> Sweep { ranks; iters; seed }
  | Some "energy" ->
      Energy
        {
          app = app_of_json j;
          ranks;
          iters;
          seed;
          cap;
          deadline = Json.get_float "deadline" j;
        }
  | Some "what-if" ->
      let edits =
        List.map (fun r -> Core.Event_lp.Fail_socket r)
          (Json.get_int_list "fail_sockets" j)
        @ List.map (fun r -> Core.Event_lp.Drop_rank r)
            (Json.get_int_list "drop_ranks" j)
        @ List.map perturb_of_json (Json.get_list "perturb_tasks" j)
      in
      What_if { app = app_of_json j; ranks; iters; seed; cap; edits }
  | Some "stats" -> Stats
  | Some "shutdown" -> Shutdown
  | Some other -> err "unknown op %S" other

let request_of_json j =
  match Json.get_int "id" j with
  | None -> err "request needs field \"id\""
  | Some id -> { id; op = op_of_json j }

let request_of_string s = request_of_json (Json.of_string s)

(* ---- content-addressed request keys ------------------------------- *)

(* Solving requests are keyed by the complete content of their
   parameters, in the ["stage:digest"] convention of {!Pipeline.Key}:
   equal requests derive equal keys across connections, processes and
   restarts.  [Stats]/[Shutdown] are not cacheable. *)
let request_key op =
  let h = Putil.Hashing.create () in
  let edit_fold = function
    | Core.Event_lp.Fail_socket r ->
        Putil.Hashing.string h "fail";
        Putil.Hashing.int h r
    | Core.Event_lp.Drop_rank r ->
        Putil.Hashing.string h "drop";
        Putil.Hashing.int h r
    | Core.Event_lp.Perturb_task { tid; point; duration; power } ->
        Putil.Hashing.string h "perturb";
        Putil.Hashing.int h tid;
        Putil.Hashing.int h point;
        Putil.Hashing.float h duration;
        Putil.Hashing.float h power
  in
  match op with
  | Sweep { ranks; iters; seed } ->
      Putil.Hashing.string h "sweep";
      Putil.Hashing.int h ranks;
      Putil.Hashing.int h iters;
      Putil.Hashing.int h seed;
      Some (Pipeline.Key.to_string (Pipeline.Key.v ~stage:"serve" h))
  | Energy { app; ranks; iters; seed; cap; deadline } ->
      Putil.Hashing.string h "energy";
      Putil.Hashing.string h (Workloads.Apps.app_name app);
      Putil.Hashing.int h ranks;
      Putil.Hashing.int h iters;
      Putil.Hashing.int h seed;
      Putil.Hashing.float h cap;
      (match deadline with
      | None -> Putil.Hashing.bool h false
      | Some d ->
          Putil.Hashing.bool h true;
          Putil.Hashing.float h d);
      Some (Pipeline.Key.to_string (Pipeline.Key.v ~stage:"serve" h))
  | What_if { app; ranks; iters; seed; cap; edits } ->
      Putil.Hashing.string h "what-if";
      Putil.Hashing.string h (Workloads.Apps.app_name app);
      Putil.Hashing.int h ranks;
      Putil.Hashing.int h iters;
      Putil.Hashing.int h seed;
      Putil.Hashing.float h cap;
      Putil.Hashing.int h (List.length edits);
      List.iter edit_fold edits;
      Some (Pipeline.Key.to_string (Pipeline.Key.v ~stage:"serve" h))
  | Stats | Shutdown -> None

(* ---- responses ----------------------------------------------------- *)

type provenance = Mem | Disk | None_

let provenance_name = function Mem -> "mem" | Disk -> "disk" | None_ -> "none"

let response_line ~id ~cached ~elapsed_ms (o : Handlers.outcome) =
  Json.to_string
    (Putil.Obs.Assoc
       [
         ("id", Putil.Obs.Int id);
         ("ok", Putil.Obs.Bool true);
         ("status", Putil.Obs.Int o.Handlers.status);
         ("cached", Putil.Obs.String (provenance_name cached));
         ("elapsed_ms", Putil.Obs.Float elapsed_ms);
         ("output", Putil.Obs.String o.Handlers.out);
         ("err", Putil.Obs.String o.Handlers.err);
       ])
  ^ "\n"

let error_line ~id msg =
  Json.to_string
    (Putil.Obs.Assoc
       [
         ("id", Putil.Obs.Int id);
         ("ok", Putil.Obs.Bool false);
         ("error", Putil.Obs.String msg);
       ])
  ^ "\n"

let json_line j = Json.to_string j ^ "\n"
