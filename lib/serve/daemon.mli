(** The persistent solving daemon.

    Accepts connections on a Unix or TCP socket, reads one JSON request
    per line ({!Protocol}), runs solving requests through a two-tier
    response cache — an in-memory {!Putil.Cache} spilling to an
    on-disk {!Putil.Disk_store} — and the shared domain pool, and
    streams responses back in completion order (ids match them up).

    Threading: one accept thread, one reader thread per connection, one
    thread per request.  The solve itself runs on {!Putil.Pool} worker
    domains, so concurrent requests from any number of clients batch
    across one fixed pool, and identical in-flight requests collapse to
    a single solve (single-flight).

    Persistence: with a store attached, computed responses are written
    through to disk immediately (crash-safe, digest-framed), and the
    pipeline's graph cache spills/revives through the same store
    ({!Pipeline.Stages.attach_store}) — a restarted daemon answers
    repeated requests from warm artifacts ([cached:"disk"]). *)

type address = Unix_socket of string | Tcp of string * int

val pp_address : Format.formatter -> address -> unit

type config = {
  address : address;
  store_root : string option;  (** [None]: memory-only, no persistence *)
  store_limit_bytes : int;  (** [<= 0] unbounded *)
  cache_capacity : int;  (** in-memory response entries *)
  pool : Putil.Pool.t option;  (** [None]: {!Putil.Pool.get_default} *)
}

val default_config : address -> config
(** No store, cache capacity 64, shared default pool. *)

type t

val start : config -> t
(** Bind, listen and spawn the accept thread; returns immediately.
    Raises [Unix.Unix_error] when the address cannot be bound. *)

val address : t -> address
(** The bound address; for [Tcp (host, 0)] the kernel-assigned port. *)

val wait : t -> unit
(** Block until the daemon stops (a [shutdown] request or {!stop}),
    then join every connection thread and remove a Unix socket file. *)

val stop : t -> unit
(** Stop accepting, close the listen socket and {!wait}. *)

val run : config -> unit
(** [start] + [wait]. *)
