(** The persistent solving daemon: accept connections, parse one JSON
    request per line, batch the solves across the shared domain pool,
    stream responses back as they complete.  See daemon.mli. *)

type address = Unix_socket of string | Tcp of string * int

let pp_address ppf = function
  | Unix_socket path -> Format.fprintf ppf "unix:%s" path
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port

type config = {
  address : address;
  store_root : string option;
  store_limit_bytes : int;
  cache_capacity : int;
  pool : Putil.Pool.t option;
}

let default_config address =
  {
    address;
    store_root = None;
    store_limit_bytes = 0;
    cache_capacity = 64;
    pool = None;
  }

(* ---- response (de)serialization for the disk tier ------------------ *)

(* Responses persist as a version-tagged Marshal of the outcome triple.
   The store already digest-verifies payload integrity; the tag guards
   against schema drift — an old format reads as a clean miss, never a
   wrong answer. *)
let artifact_magic = "powerlim-serve-response 1\n"

let outcome_to_bytes (o : Handlers.outcome) =
  artifact_magic ^ Marshal.to_string (o.Handlers.status, o.Handlers.out, o.Handlers.err) []

let outcome_of_bytes s =
  let n = String.length artifact_magic in
  if String.length s <= n || String.sub s 0 n <> artifact_magic then None
  else
    match (Marshal.from_string s n : int * string * string) with
    | status, out, err -> Some { Handlers.status; out; err }
    | exception _ -> None

(* ---- server state -------------------------------------------------- *)

type counters = {
  requests : int Atomic.t;
  errors : int Atomic.t;
  mem_hits : int Atomic.t;
  disk_hits : int Atomic.t;
  computed : int Atomic.t;
}

type t = {
  listen_fd : Unix.file_descr;
  resolved : address;  (** with the actual port for [Tcp (_, 0)] *)
  pool : Putil.Pool.t;
  cache : Handlers.outcome Putil.Cache.t;
  store : Putil.Disk_store.t option;
  stopping : bool Atomic.t;
  counters : counters;
  mutable accept_thread : Thread.t option;
  conn_threads : Thread.t list ref;
  conn_mutex : Mutex.t;
}

let stats_payload t =
  let open Putil.Obs in
  Assoc
    [
      ("requests", Int (Atomic.get t.counters.requests));
      ("errors", Int (Atomic.get t.counters.errors));
      ("mem_hits", Int (Atomic.get t.counters.mem_hits));
      ("disk_hits", Int (Atomic.get t.counters.disk_hits));
      ("computed", Int (Atomic.get t.counters.computed));
      ( "store",
        match t.store with
        | None -> Null
        | Some s ->
            let st = Putil.Disk_store.stats s in
            Assoc
              [
                ("root", String (Putil.Disk_store.root s));
                ("hits", Int st.Putil.Disk_store.hits);
                ("misses", Int st.Putil.Disk_store.misses);
                ("puts", Int st.Putil.Disk_store.puts);
                ("evictions", Int st.Putil.Disk_store.evictions);
                ("entries", Int st.Putil.Disk_store.entries);
                ("bytes", Int st.Putil.Disk_store.bytes);
              ] );
      ( "rejected_env",
        List
          (List.map
             (fun (name, value) ->
               Assoc [ ("name", String name); ("value", String value) ])
             (Putil.Env.rejected ())) );
      (* the unified provider registry (lp / cache / pool / ...), so a
         live daemon exposes the same counters as [--stats-json] —
         including the solver's [dw_*] decomposition counters *)
      ("providers", Putil.Obs.stats_json ());
    ]

(* ---- request execution --------------------------------------------- *)

let compute op =
  match op with
  | Protocol.Sweep { ranks; iters; seed } -> Handlers.sweep ~ranks ~iters ~seed ()
  | Protocol.Energy { app; ranks; iters; seed; cap; deadline } ->
      Handlers.energy ~app ~ranks ~iters ~seed ~cap ~deadline ()
  | Protocol.What_if { app; ranks; iters; seed; cap; edits } ->
      Handlers.what_if ~app ~ranks ~iters ~seed ~cap ~edits ()
  | Protocol.Stats | Protocol.Shutdown -> assert false

(* Run one solving op through cache + store + pool, reporting where the
   bytes came from.  The pool does the actual solve: concurrent requests
   from any number of connections batch across the worker domains, and
   equal in-flight requests collapse to one solve (single-flight). *)
let solve t op =
  match Protocol.request_key op with
  | None -> (compute op, Protocol.None_)
  | Some key ->
      let v, where =
        Putil.Cache.find_or_build_where t.cache key (fun () ->
            Putil.Pool.await (Putil.Pool.submit t.pool (fun () -> compute op)))
      in
      (* write-through: a computed response lands on disk immediately,
         so a restarted daemon is warm even if this one is killed
         without ever evicting *)
      (match (where, t.store) with
      | `Built, Some store -> Putil.Disk_store.put store key (outcome_to_bytes v)
      | _ -> ());
      let prov =
        match where with
        | `Hit ->
            Atomic.incr t.counters.mem_hits;
            Protocol.Mem
        | `Revived ->
            Atomic.incr t.counters.disk_hits;
            Protocol.Disk
        | `Built ->
            Atomic.incr t.counters.computed;
            Protocol.None_
      in
      (v, prov)

(* ---- connection handling ------------------------------------------- *)

let send mutex oc line =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      output_string oc line;
      flush oc)

let handle_request t ~wmutex oc (req : Protocol.request) =
  Atomic.incr t.counters.requests;
  match req.Protocol.op with
  | Protocol.Stats ->
      send wmutex oc
        (Protocol.json_line
           (Putil.Obs.Assoc
              [
                ("id", Putil.Obs.Int req.Protocol.id);
                ("ok", Putil.Obs.Bool true);
                ("stats", stats_payload t);
              ]))
  | Protocol.Shutdown ->
      send wmutex oc
        (Protocol.json_line
           (Putil.Obs.Assoc
              [
                ("id", Putil.Obs.Int req.Protocol.id);
                ("ok", Putil.Obs.Bool true);
              ]));
      Atomic.set t.stopping true;
      (* closing the listen socket pops the accept loop out of [accept] *)
      (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
  | op ->
      let t0 = Unix.gettimeofday () in
      let outcome, cached = solve t op in
      let elapsed_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
      send wmutex oc
        (Protocol.response_line ~id:req.Protocol.id ~cached ~elapsed_ms outcome)

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let wmutex = Mutex.create () in
  let request_threads = ref [] in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line when String.trim line = "" -> loop ()
       | line ->
           (* the id is extracted before the op parse so an invalid
              request is still refused under the id the client sent *)
           let id =
             match Json.of_string line with
             | j -> Option.value ~default:(-1) (Json.get_int "id" j)
             | exception Json.Error _ -> -1
           in
           (match Protocol.request_of_string line with
           | req ->
               (* each request gets its own thread so responses stream
                  back in completion order while the reader keeps
                  accepting further requests on this connection *)
               let th =
                 Thread.create
                   (fun () ->
                     try handle_request t ~wmutex oc req
                     with e ->
                       Atomic.incr t.counters.errors;
                       (try
                          send wmutex oc
                            (Protocol.error_line ~id:req.Protocol.id
                               (Printexc.to_string e))
                        with _ -> ()))
                   ()
               in
               request_threads := th :: !request_threads
           | exception Json.Error msg ->
               Atomic.incr t.counters.errors;
               send wmutex oc
                 (Protocol.error_line ~id ("bad request: " ^ msg)));
           if Atomic.get t.stopping then () else loop ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  List.iter Thread.join !request_threads;
  (try flush oc with Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- lifecycle ----------------------------------------------------- *)

let bind_address = function
  | Unix_socket path ->
      (* a previous daemon's socket file would make bind fail; removing
         a stale path is safe — connect()-ers see the new socket *)
      (try if Sys.file_exists path then Sys.remove path
       with Sys_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      (fd, Unix_socket path)
  | Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      let resolved_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp (host, resolved_port))

let start (cfg : config) =
  let listen_fd, resolved = bind_address cfg.address in
  Unix.listen listen_fd 64;
  let store =
    Option.map
      (fun root ->
        Putil.Disk_store.open_ ~limit_bytes:cfg.store_limit_bytes ~root ())
      cfg.store_root
  in
  let cache =
    Putil.Cache.create ~capacity:cfg.cache_capacity ~name:"serve" ()
  in
  (* two-tier wiring: evictions spill to disk, misses probe it before
     solving — restart-warm by construction *)
  Option.iter
    (fun s ->
      Putil.Cache.set_tier cache
        ~spill:(fun key v -> Putil.Disk_store.put s key (outcome_to_bytes v))
        ~revive:(fun key ->
          Option.bind (Putil.Disk_store.get s key) outcome_of_bytes)
        ();
      Pipeline.Stages.attach_store s)
    store;
  let t =
    {
      listen_fd;
      resolved;
      pool = (match cfg.pool with Some p -> p | None -> Putil.Pool.get_default ());
      cache;
      store;
      stopping = Atomic.make false;
      counters =
        {
          requests = Atomic.make 0;
          errors = Atomic.make 0;
          mem_hits = Atomic.make 0;
          disk_hits = Atomic.make 0;
          computed = Atomic.make 0;
        };
      accept_thread = None;
      conn_threads = ref [];
      conn_mutex = Mutex.create ();
    }
  in
  let accept_loop () =
    let rec loop () =
      match Unix.accept t.listen_fd with
      | fd, _ ->
          let th = Thread.create (fun () -> handle_connection t fd) () in
          Mutex.lock t.conn_mutex;
          t.conn_threads := th :: !(t.conn_threads);
          Mutex.unlock t.conn_mutex;
          loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
        ->
          if Atomic.get t.stopping then () else loop ()
      | exception Unix.Unix_error _ -> if Atomic.get t.stopping then () else loop ()
    in
    loop ()
  in
  t.accept_thread <- Some (Thread.create accept_loop ());
  t

let address t = t.resolved

let wait t =
  Option.iter Thread.join t.accept_thread;
  let conns =
    Mutex.lock t.conn_mutex;
    let l = !(t.conn_threads) in
    Mutex.unlock t.conn_mutex;
    l
  in
  List.iter Thread.join conns;
  match t.resolved with
  | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ()

let stop t =
  Atomic.set t.stopping true;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  wait t

let run cfg = wait (start cfg)
