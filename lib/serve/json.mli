(** Minimal JSON reader/writer for the serve wire protocol, built on
    {!Putil.Obs.json} (one value type for parsing and emission; the
    emitter is ASCII-safe, so responses survive any byte string). *)

exception Error of string

val of_string : string -> Putil.Obs.json
(** Parse one complete JSON document.  Raises {!Error} on malformed
    input or trailing garbage. *)

val to_string : Putil.Obs.json -> string

(** {2 Typed field accessors}

    [get_* name j] reads field [name] of object [j]: [None] when the
    field is absent (or [j] is not an object), raises {!Error} naming
    the field when it is present with the wrong type.  List accessors
    return [[]] for an absent field. *)

val member : string -> Putil.Obs.json -> Putil.Obs.json option
val get_int : string -> Putil.Obs.json -> int option
val get_float : string -> Putil.Obs.json -> float option
val get_string : string -> Putil.Obs.json -> string option
val get_int_list : string -> Putil.Obs.json -> int list
val get_list : string -> Putil.Obs.json -> Putil.Obs.json list
