(** Shared command bodies: one renderer per served operation, used by
    both the [powerlim] CLI subcommands and the daemon.

    Each handler computes into buffers and returns the exact bytes the
    CLI prints plus the exit status it would return — served responses
    are byte-identical to offline runs {e by construction}, not by
    parallel maintenance of two printers.  Nothing here calls [exit] or
    touches process-global channels; stderr content (pool sizes, wall
    times, pivot counts — everything deliberately kept off stdout so
    knobs never change results) lands in [err]. *)

type outcome = { out : string; err : string; status : int }

let render body =
  let outb = Buffer.create 1024 and errb = Buffer.create 256 in
  let out = Format.formatter_of_buffer outb in
  let err = Format.formatter_of_buffer errb in
  let status = body out err in
  Format.pp_print_flush out ();
  Format.pp_print_flush err ();
  { out = Buffer.contents outb; err = Buffer.contents errb; status }

(* Earliest sustained (>= 1 ms, matching Replay.validate's smoothing)
   interval of the replayed power trace above the validation limit. *)
let first_cap_violation (r : Simulate.Engine.result) ~limit =
  let n = Array.length r.Simulate.Engine.trace in
  let found = ref None in
  Array.iteri
    (fun i (t, p) ->
      let t' =
        if i + 1 < n then fst r.Simulate.Engine.trace.(i + 1)
        else r.Simulate.Engine.makespan
      in
      if !found = None && t' -. t >= 1e-3 && p > limit then
        found := Some (t, p))
    r.Simulate.Engine.trace;
  !found

let pp_cap_violation ppf (v : Core.Replay.validation) ~job_cap =
  (* mirror of Replay.validate's within_cap test (tol = 0.02) *)
  let limit = (job_cap *. 1.02) +. 1e-6 in
  match first_cap_violation v.Core.Replay.result ~limit with
  | Some (t, p) ->
      Fmt.pf ppf
        "error: replay exceeds the power cap: %.1f W at t=%.4f s, cap %.0f W \
         (+2%% tolerance = %.1f W), excess %.1f W@."
        p t job_cap limit (p -. limit)
  | None ->
      Fmt.pf ppf
        "error: replay exceeds the power cap: max sustained power %.1f W > \
         %.0f W (+2%% tolerance)@."
        v.Core.Replay.max_power job_cap

let config ~ranks ~iters ~seed =
  {
    Experiments.Common.default_config with
    Experiments.Common.nranks = ranks;
    iterations = iters;
    seed;
  }

let sweep ~ranks ~iters ~seed () =
  render @@ fun out err ->
  let config = config ~ranks ~iters ~seed in
  (* pool size, wall time and cache traffic on stderr: stdout is
     byte-identical at every POWERLIM_JOBS setting, cache on or off *)
  Fmt.pf err "pool: %d-way parallel (POWERLIM_JOBS=%s)@."
    (Putil.Pool.parallelism (Putil.Pool.get_default ()))
    (match Sys.getenv_opt "POWERLIM_JOBS" with Some s -> s | None -> "unset");
  let t0 = Unix.gettimeofday () in
  let sweep = Experiments.Sweeps.compute ~config () in
  Fmt.pf err "[sweep: %.2f s | cache: %a]@."
    (Unix.gettimeofday () -. t0)
    Putil.Cache.pp_totals ();
  Experiments.Sweeps.fig9 sweep out;
  Experiments.Sweeps.fig10 sweep out;
  Experiments.Sweeps.summary sweep out;
  0

let energy ~app ~ranks ~iters ~seed ~cap ~deadline () =
  render @@ fun out err ->
  let config = config ~ranks ~iters ~seed in
  let s = Experiments.Common.make_setup config app in
  let sc = s.Experiments.Common.sc in
  let job_cap = cap *. Float.of_int ranks in
  match deadline with
  | Some deadline -> (
      match
        Core.Event_lp.solve
          ~objective:(Core.Objective.Energy_under_deadline { deadline })
          sc ~power_cap:job_cap
      with
      | Core.Event_lp.Schedule sched ->
          let v = Core.Replay.validate sc sched ~power_cap:job_cap in
          Fmt.pf out
            "energy bound: %.1f J (makespan %.4f s under deadline %.4f s, \
             %.0f W/socket)@."
            sched.Core.Event_lp.objective sched.Core.Event_lp.makespan
            deadline cap;
          Fmt.pf out
            "replay: %.1f J (gap %.2f%%), %.4f s, max sustained power %.1f \
             W, within cap: %b@."
            v.Core.Replay.replay_energy v.Core.Replay.obj_gap_pct
            v.Core.Replay.replay_makespan v.Core.Replay.max_power
            v.Core.Replay.within_cap;
          let rr = Core.Replay.reclaim sc sched in
          Fmt.pf out
            "reclaim: %d tasks stretched, %.1f J shaved (%.2f%% of %.1f J)@."
            rr.Core.Replay.tasks_stretched rr.Core.Replay.reclaimed_j
            rr.Core.Replay.reclaimed_pct rr.Core.Replay.base_energy_j;
          if not v.Core.Replay.within_cap then begin
            pp_cap_violation err v ~job_cap;
            1
          end
          else 0
      | Core.Event_lp.Infeasible ->
          Fmt.pf out "infeasible: no schedule meets %.4f s at %.0f W/socket@."
            deadline cap;
          0
      | Core.Event_lp.Solver_failure m ->
          Fmt.pf out "solver failure: %s@." m;
          0)
  | None ->
      let es = Experiments.Common.run_deadline_sweep s ~cap in
      if Float.is_nan es.Experiments.Common.makespan_bound then
        Fmt.pf out "cap infeasible: no schedule fits %.0f W/socket@." cap
      else begin
        Fmt.pf out "%s at %.0f W/socket, deadlines as multiples of T*:@."
          (Workloads.Apps.app_name app) cap;
        Experiments.Energy.pp_sweep out es
      end;
      0

let what_if ~app ~ranks ~iters ~seed ~cap ~edits () =
  render @@ fun out err ->
  let params =
    { Workloads.Apps.nranks = ranks; iterations = iters; seed; scale = 1.0 }
  in
  let sc = Pipeline.Stages.scenario (Pipeline.Stages.Synthetic (app, params)) in
  let job_cap = cap *. Float.of_int ranks in
  if edits = [] then begin
    Fmt.pf err
      "what-if: no edits given (use --fail-socket, --drop-rank and/or \
       --perturb-task)@.";
    2
  end
  else begin
    (* The prepared handle must keep the full column space
       (~presolve:false) so the base optimal basis can be mapped across
       the structural edits. *)
    let pz = Pipeline.Stages.prepare ~presolve:false sc ~power_cap:job_cap in
    let base, basis = Core.Event_lp.solve_prepared pz ~power_cap:job_cap in
    (match base with
    | Core.Event_lp.Schedule s ->
        Fmt.pf out "baseline : %.4f s at %.0f W (%.0f W x %d sockets)@."
          s.Core.Event_lp.objective job_cap cap ranks
    | Core.Event_lp.Infeasible -> Fmt.pf out "baseline : infeasible@."
    | Core.Event_lp.Solver_failure m ->
        Fmt.pf out "baseline : solver failure: %s@." m);
    List.iter
      (fun e -> Fmt.pf out "edit     : %a@." Core.Event_lp.pp_domain_edit e)
      edits;
    (* POWERLIM_WARM=0 forces the cold path; the incremental re-solve is
       exact (cold fallback on any ill-conditioned basis mapping), so
       stdout is byte-identical either way. *)
    let warm = if Experiments.Common.warm_default () then basis else None in
    (match Core.Event_lp.edit_prepared ?warm pz edits with
    | Core.Event_lp.Schedule s, _, _ ->
        Fmt.pf out "what-if  : %.4f s (LP: %d rows, %d cols)@."
          s.Core.Event_lp.objective s.Core.Event_lp.stats.Core.Event_lp.rows
          s.Core.Event_lp.stats.Core.Event_lp.cols;
        (* pivot counts differ between the incremental and cold paths;
           keep them off stdout so POWERLIM_WARM never changes output *)
        Fmt.pf err "what-if: %d simplex iterations@."
          s.Core.Event_lp.stats.Core.Event_lp.iterations;
        (match base with
        | Core.Event_lp.Schedule b ->
            let d = s.Core.Event_lp.objective -. b.Core.Event_lp.objective in
            Fmt.pf out "delta    : %+.4f s (%+.2f%%)@." d
              (100.0 *. d /. b.Core.Event_lp.objective)
        | _ -> ())
    | Core.Event_lp.Infeasible, _, _ ->
        Fmt.pf out "what-if  : infeasible under the edited scenario@."
    | Core.Event_lp.Solver_failure m, _, _ ->
        Fmt.pf out "what-if  : solver failure: %s@." m);
    0
  end
