(** Serve-path benchmark: cold vs warm request latency through a live
    daemon, byte-identity of served responses against the offline
    renderers, a concurrency storm of simultaneous mixed clients, and
    disk-tier warmth across a daemon restart.  Writes BENCH_serve.json
    and hard-gates the invariants. *)

let median xs =
  match List.sort Float.compare xs with
  | [] -> Float.nan
  | sorted ->
      let n = List.length sorted in
      let a = List.nth sorted ((n - 1) / 2) and b = List.nth sorted (n / 2) in
      (a +. b) /. 2.0

let warm_rounds = 5

type probe = {
  p_name : string;
  p_request : Putil.Obs.json;  (** without id; the client adds one *)
  p_offline : unit -> Handlers.outcome;
}

let probes (config : Experiments.Common.config) =
  let ranks = config.Experiments.Common.nranks in
  let iters = config.Experiments.Common.iterations in
  let seed = config.Experiments.Common.seed in
  let app = Workloads.Apps.CoMD in
  let cap = 40.0 in
  let base =
    [
      ("ranks", Putil.Obs.Int ranks);
      ("iters", Putil.Obs.Int iters);
      ("seed", Putil.Obs.Int seed);
    ]
  in
  [
    {
      p_name = "sweep";
      p_request = Putil.Obs.Assoc (("op", Putil.Obs.String "sweep") :: base);
      p_offline = (fun () -> Handlers.sweep ~ranks ~iters ~seed ());
    };
    {
      p_name = "energy";
      p_request =
        Putil.Obs.Assoc
          (("op", Putil.Obs.String "energy")
          :: ("app", Putil.Obs.String "comd")
          :: ("cap", Putil.Obs.Float cap)
          :: ("deadline", Putil.Obs.Float 10.0)
          :: base);
      p_offline =
        (fun () ->
          Handlers.energy ~app ~ranks ~iters ~seed ~cap ~deadline:(Some 10.0)
            ());
    };
    {
      p_name = "what-if";
      p_request =
        Putil.Obs.Assoc
          (("op", Putil.Obs.String "what-if")
          :: ("app", Putil.Obs.String "comd")
          :: ("cap", Putil.Obs.Float cap)
          :: ("drop_ranks", Putil.Obs.List [ Putil.Obs.Int (ranks - 1) ])
          :: base);
      p_offline =
        (fun () ->
          Handlers.what_if ~app ~ranks ~iters ~seed ~cap
            ~edits:[ Core.Event_lp.Drop_rank (ranks - 1) ]
            ());
    };
  ]

(* Number of simultaneous client connections fired at one daemon in the
   storm phase.  Every client must get its own correct response back:
   the gate is zero dropped and zero mismatched. *)
let storm_clients = 256

(* Mixed request population for the storm: the base probes plus
   parameter variants, so the in-flight set holds both duplicates
   (exercising single-flight collapse) and distinct solves (exercising
   the pool under contention). *)

let storm_probes (config : Experiments.Common.config) =
  let ranks = config.Experiments.Common.nranks in
  let iters = config.Experiments.Common.iterations in
  let seed = config.Experiments.Common.seed in
  let app = Workloads.Apps.CoMD in
  let base seed =
    [
      ("ranks", Putil.Obs.Int ranks);
      ("iters", Putil.Obs.Int iters);
      ("seed", Putil.Obs.Int seed);
    ]
  in
  let sweep_v s =
    {
      p_name = Printf.sprintf "sweep/seed=%d" s;
      p_request = Putil.Obs.Assoc (("op", Putil.Obs.String "sweep") :: base s);
      p_offline = (fun () -> Handlers.sweep ~ranks ~iters ~seed:s ());
    }
  and energy_v cap =
    {
      p_name = Printf.sprintf "energy/cap=%g" cap;
      p_request =
        Putil.Obs.Assoc
          (("op", Putil.Obs.String "energy")
          :: ("app", Putil.Obs.String "comd")
          :: ("cap", Putil.Obs.Float cap)
          :: ("deadline", Putil.Obs.Float 10.0)
          :: base seed);
      p_offline =
        (fun () ->
          Handlers.energy ~app ~ranks ~iters ~seed ~cap ~deadline:(Some 10.0)
            ());
    }
  and what_if_v dr =
    {
      p_name = Printf.sprintf "what-if/drop=%d" dr;
      p_request =
        Putil.Obs.Assoc
          (("op", Putil.Obs.String "what-if")
          :: ("app", Putil.Obs.String "comd")
          :: ("cap", Putil.Obs.Float 40.0)
          :: ("drop_ranks", Putil.Obs.List [ Putil.Obs.Int dr ])
          :: base seed);
      p_offline =
        (fun () ->
          Handlers.what_if ~app ~ranks ~iters ~seed ~cap:40.0
            ~edits:[ Core.Event_lp.Drop_rank dr ]
            ());
    }
  in
  List.map sweep_v [ seed; seed + 1; seed + 2 ]
  @ List.map energy_v [ 40.0; 45.0; 50.0 ]
  @ List.map what_if_v [ ranks - 1; ranks - 2; 1 ]

type sample = { output : string; status : int; cached : string; wall_ms : float }

let ask client (p : probe) =
  let t0 = Unix.gettimeofday () in
  let resp = Client.request client p.p_request in
  let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  if Json.member "ok" resp <> Some (Putil.Obs.Bool true) then
    failwith
      (Printf.sprintf "servebench: request %s failed: %s" p.p_name
         (Json.to_string resp));
  {
    output = Option.value ~default:"" (Json.get_string "output" resp);
    status = Option.value ~default:(-1) (Json.get_int "status" resp);
    cached = Option.value ~default:"?" (Json.get_string "cached" resp);
    wall_ms;
  }

let mkdtemp prefix =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o700;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let write_json ~path ~(config : Experiments.Common.config) ~results
    ~(ratios : (string * float) list) ~daemon1_stats ~daemon2_stats
    ~identical ~restart_disk_hits
    ~(storm : int * int * float * int * int) =
  Putil.Fileio.with_out path @@ fun oc ->
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"powerlim-servebench-v2\",\n";
  pf "  \"ranks\": %d,\n" config.Experiments.Common.nranks;
  pf "  \"iterations\": %d,\n" config.Experiments.Common.iterations;
  pf "  \"warm_rounds\": %d,\n" warm_rounds;
  pf "  \"requests\": [\n";
  List.iteri
    (fun i (name, (cold : sample), warm_ms, (disk : sample option)) ->
      pf "    {\n";
      pf "      \"op\": %S,\n" name;
      pf "      \"cold_ms\": %.3f,\n" cold.wall_ms;
      pf "      \"warm_median_ms\": %.3f,\n" warm_ms;
      pf "      \"speedup\": %.1f,\n" (cold.wall_ms /. Float.max 1e-6 warm_ms);
      pf "      \"restart_cached\": %s\n"
        (match disk with Some d -> Printf.sprintf "%S" d.cached | None -> "null");
      pf "    }%s\n" (if i < List.length results - 1 then "," else ""))
    results;
  pf "  ],\n";
  let emit_stats name = function
    | None -> pf "  \"%s\": null,\n" name
    | Some (mem, disk, computed) ->
        pf "  \"%s\": { \"mem_hits\": %d, \"disk_hits\": %d, \"computed\": %d },\n"
          name mem disk computed
  in
  emit_stats "cold_warm_hit_rates" daemon1_stats;
  emit_stats "restart_hit_rates" daemon2_stats;
  pf "  \"median_speedup\": %.1f,\n" (median (List.map snd ratios));
  pf "  \"restart_disk_hits\": %d,\n" restart_disk_hits;
  (let clients, distinct, wall_s, dropped, mismatched = storm in
   pf
     "  \"storm\": { \"clients\": %d, \"distinct_requests\": %d, \
      \"wall_s\": %.3f, \"dropped\": %d, \"mismatched\": %d },\n"
     clients distinct wall_s dropped mismatched);
  pf "  \"byte_identical\": %b\n" identical;
  pf "}\n"

let hit_rates_of_stats resp =
  match Json.member "stats" resp with
  | Some stats ->
      Some
        ( Option.value ~default:0 (Json.get_int "mem_hits" stats),
          Option.value ~default:0 (Json.get_int "disk_hits" stats),
          Option.value ~default:0 (Json.get_int "computed" stats) )
  | None -> None

let run ?(config = Experiments.Common.default_config) ppf =
  Experiments.Common.header ppf
    "Serve benchmark (daemon latency, cache tiers, restart warmth)";
  let was_enabled = Putil.Cache.enabled () in
  Putil.Cache.set_enabled true;
  let workdir = mkdtemp "powerlim-servebench" in
  let store_root = Filename.concat workdir "store" in
  let addr = Daemon.Unix_socket (Filename.concat workdir "serve.sock") in
  let cfg =
    { (Daemon.default_config addr) with Daemon.store_root = Some store_root }
  in
  let ps = probes config in
  let storm = storm_probes config in
  (* offline references first: rendered by the very functions the CLI
     prints, on cold pipeline caches.  The storm references are computed
     here too — the daemon runs in-process, so calling a handler while
     it is live would perturb its cache counters. *)
  Putil.Cache.clear_all ();
  let offline = List.map (fun p -> (p.p_name, p.p_offline ())) ps in
  let storm_offline = List.map (fun p -> (p.p_name, p.p_offline ())) storm in
  (* --- daemon 1: cold then warm ------------------------------------- *)
  Putil.Cache.clear_all ();
  let d1 = Daemon.start cfg in
  let c1 = Client.connect_retry (Daemon.address d1) in
  let cold = List.map (fun p -> (p, ask c1 p)) ps in
  let warm =
    List.map
      (fun p ->
        let samples = List.init warm_rounds (fun _ -> ask c1 p) in
        (p, samples))
      ps
  in
  (* --- storm: >= 256 concurrent mixed clients ----------------------- *)
  let storm_arr = Array.of_list storm in
  let nstorm = Array.length storm_arr in
  let storm_results : sample option array = Array.make storm_clients None in
  let storm_t0 = Unix.gettimeofday () in
  let storm_threads =
    List.init storm_clients (fun i ->
        Thread.create
          (fun () ->
            let p = storm_arr.(i mod nstorm) in
            match
              let c = Client.connect_retry (Daemon.address d1) in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () -> ask c p)
            with
            | s -> storm_results.(i) <- Some s
            | exception _ -> ())
          ())
  in
  List.iter Thread.join storm_threads;
  let storm_wall = Unix.gettimeofday () -. storm_t0 in
  let storm_dropped = ref 0 and storm_mismatched = ref 0 in
  Array.iteri
    (fun i s ->
      let p = storm_arr.(i mod nstorm) in
      match s with
      | None -> incr storm_dropped
      | Some (s : sample) ->
          let o = List.assoc p.p_name storm_offline in
          if s.output <> o.Handlers.out || s.status <> o.Handlers.status
          then begin
            incr storm_mismatched;
            Fmt.epr "servebench: storm client %d (%s) differs from offline@." i
              p.p_name
          end)
    storm_results;
  let stats1 =
    hit_rates_of_stats
      (Client.request c1 (Putil.Obs.Assoc [ ("op", Putil.Obs.String "stats") ]))
  in
  ignore
    (Client.request c1 (Putil.Obs.Assoc [ ("op", Putil.Obs.String "shutdown") ]));
  Client.close c1;
  Daemon.wait d1;
  (* --- daemon 2: same store, fresh memory --------------------------- *)
  Putil.Cache.clear_all ();
  let d2 = Daemon.start cfg in
  let c2 = Client.connect_retry (Daemon.address d2) in
  let restart = List.map (fun p -> (p.p_name, ask c2 p)) ps in
  let stats2 =
    hit_rates_of_stats
      (Client.request c2 (Putil.Obs.Assoc [ ("op", Putil.Obs.String "stats") ]))
  in
  ignore
    (Client.request c2 (Putil.Obs.Assoc [ ("op", Putil.Obs.String "shutdown") ]));
  Client.close c2;
  Daemon.wait d2;
  Putil.Cache.set_enabled was_enabled;
  Putil.Cache.clear_all ();
  (* --- checks -------------------------------------------------------- *)
  let identical = ref true in
  List.iter
    (fun (p, (s : sample)) ->
      let o = List.assoc p.p_name offline in
      if s.output <> o.Handlers.out || s.status <> o.Handlers.status then begin
        identical := false;
        Fmt.epr "servebench: served %s differs from offline (%d vs %d bytes)@."
          p.p_name
          (String.length s.output)
          (String.length o.Handlers.out)
      end)
    cold;
  List.iter
    (fun (p, samples) ->
      let o = List.assoc p.p_name offline in
      List.iter
        (fun (s : sample) ->
          if s.output <> o.Handlers.out then begin
            identical := false;
            Fmt.epr "servebench: warm %s differs from offline@." p.p_name
          end)
        samples)
    warm;
  List.iter
    (fun (name, (s : sample)) ->
      let o = List.assoc name offline in
      if s.output <> o.Handlers.out then begin
        identical := false;
        Fmt.epr "servebench: post-restart %s differs from offline@." name
      end)
    restart;
  let restart_disk_hits =
    List.length (List.filter (fun (_, s) -> s.cached = "disk") restart)
  in
  let ratios =
    List.map2
      (fun (p, (c : sample)) (_, samples) ->
        let w = median (List.map (fun s -> s.wall_ms) samples) in
        (p.p_name, c.wall_ms /. Float.max 1e-6 w))
      cold warm
  in
  let results =
    List.map2
      (fun ((p : probe), c) (_, samples) ->
        let w = median (List.map (fun (s : sample) -> s.wall_ms) samples) in
        (p.p_name, c, w, List.assoc_opt p.p_name restart))
      cold warm
  in
  (* --- report -------------------------------------------------------- *)
  List.iter
    (fun (name, (c : sample), w, (disk : sample option)) ->
      Fmt.pf ppf "  %-8s cold %8.1f ms  warm %7.2f ms  (%.0fx)  restart: %s@."
        name c.wall_ms w
        (c.wall_ms /. Float.max 1e-6 w)
        (match disk with Some d -> d.cached | None -> "-"))
    results;
  (match stats1 with
  | Some (mem, disk, computed) ->
      Fmt.pf ppf "  daemon 1: %d mem hits, %d disk hits, %d computed@." mem
        disk computed
  | None -> ());
  (match stats2 with
  | Some (mem, disk, computed) ->
      Fmt.pf ppf "  daemon 2: %d mem hits, %d disk hits, %d computed@." mem
        disk computed
  | None -> ());
  let med = median (List.map snd ratios) in
  Fmt.pf ppf "  median repeated-request speedup: %.1fx; byte-identical: %b@."
    med !identical;
  Fmt.pf ppf
    "  storm: %d concurrent clients over %d distinct requests in %.2f s; \
     dropped %d, mismatched %d@."
    storm_clients nstorm storm_wall !storm_dropped !storm_mismatched;
  let path = "BENCH_serve.json" in
  write_json ~path ~config ~results ~ratios ~daemon1_stats:stats1
    ~daemon2_stats:stats2 ~identical:!identical ~restart_disk_hits
    ~storm:(storm_clients, nstorm, storm_wall, !storm_dropped, !storm_mismatched);
  Fmt.pf ppf "wrote %s@." path;
  rm_rf workdir;
  (* hard gates *)
  if not !identical then begin
    Fmt.epr "servebench: served responses diverged from offline renderers@.";
    exit 1
  end;
  if med < 2.0 then begin
    Fmt.epr "servebench: repeated-request median speedup %.2fx < 2x@." med;
    exit 1
  end;
  if restart_disk_hits = 0 then begin
    Fmt.epr "servebench: no request hit the disk tier after restart@.";
    exit 1
  end;
  if !storm_dropped > 0 || !storm_mismatched > 0 then begin
    Fmt.epr
      "servebench: storm dropped %d and mismatched %d of %d concurrent \
       clients@."
      !storm_dropped !storm_mismatched storm_clients;
    exit 1
  end
