(** Minimal blocking client for the serve protocol: connect, send
    request lines, collect responses by id.  Used by the [powerlim
    request] subcommand, the benchmark harness and the tests. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect (addr : Daemon.address) =
  let fd, sockaddr =
    match addr with
    | Daemon.Unix_socket path ->
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Daemon.Tcp (host, port) ->
        let inet =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback
        in
        (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (inet, port))
  in
  Unix.connect fd sockaddr;
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

(* Retry briefly: the daemon may still be binding when a launcher
   connects right after forking it, and a burst of simultaneous
   connects can transiently overflow the listen backlog (EAGAIN on
   Unix-domain sockets under Linux). *)
let rec connect_retry ?(attempts = 50) addr =
  match connect addr with
  | c -> c
  | exception
      Unix.Unix_error
        ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN | Unix.EINTR), _, _)
    when attempts > 1 ->
      Unix.sleepf 0.1;
      connect_retry ~attempts:(attempts - 1) addr

let send_line c line =
  output_string c.oc line;
  if not (String.length line > 0 && line.[String.length line - 1] = '\n') then
    output_char c.oc '\n';
  flush c.oc

let recv c =
  match input_line c.ic with
  | line -> Some (Json.of_string line)
  | exception End_of_file -> None

(* Send one request object (an [id] is added when missing) and wait for
   the response with that id, buffering none: responses to other ids
   raise, so use one [request] at a time per connection or match ids
   yourself with [send_line]/[recv]. *)
let counter = Atomic.make 0

let request c j =
  let id, j =
    match Json.get_int "id" j with
    | Some id -> (id, j)
    | None ->
        let id = Atomic.fetch_and_add counter 1 in
        let fields =
          match j with Putil.Obs.Assoc kvs -> kvs | _ -> raise (Json.Error "request must be an object")
        in
        (id, Putil.Obs.Assoc (("id", Putil.Obs.Int id) :: fields))
  in
  send_line c (Json.to_string j);
  let await () =
    match recv c with
    | None -> raise (Json.Error "connection closed before response")
    | Some resp ->
        if Json.get_int "id" resp = Some id then resp
        else raise (Json.Error "out-of-order response (one request at a time)")
  in
  await ()

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
