(** Minimal blocking client for the serve protocol. *)

type t

val connect : Daemon.address -> t
(** Raises [Unix.Unix_error] when nothing listens there. *)

val connect_retry : ?attempts:int -> Daemon.address -> t
(** {!connect}, retrying every 100 ms (default 50 attempts ~ 5 s) while
    the socket does not exist yet or refuses — for clients racing a
    freshly forked daemon. *)

val send_line : t -> string -> unit
(** Send one raw request line (a newline is appended if missing). *)

val recv : t -> Putil.Obs.json option
(** Read and parse the next response line; [None] at end of stream.
    Raises {!Json.Error} on an unparseable response. *)

val request : t -> Putil.Obs.json -> Putil.Obs.json
(** Send one request object (adding a fresh [id] when absent) and block
    for its response.  One outstanding request per connection; pipeline
    manually with {!send_line}/{!recv} if you need more. *)

val close : t -> unit
