(** The flow-based mixed ILP formulation (paper appendix, equations
    (14)-(29)): power is conserved as a flow from a source edge through
    sequenced tasks to a sink, with solver-chosen sequencing binaries.
    Only tractable for small instances (tens of task edges), exactly as
    the paper reports. *)

type stats = {
  binaries : int;
  rows : int;
  cols : int;
  nodes : int;
  relaxation : float;
}

type schedule = {
  objective : float;
  blends : Pareto.Frontier.blend array;  (** per tid of the full graph *)
  stats : stats;
}

type outcome =
  | Schedule of schedule
  | Infeasible
  | Too_large of int  (** number of task edges *)
  | Solver_failure of string

val solve :
  ?pool:Putil.Pool.t ->
  ?max_tasks:int ->
  ?max_nodes:int ->
  ?integer_configs:bool ->
  ?warm:bool ->
  Scenario.t ->
  power_cap:float ->
  outcome
(** [integer_configs] additionally restricts every task to a single
    discrete configuration (equation (5), the paper's discrete case)
    instead of a continuous blend (equation (6)).  [pool] turns on the
    branch-and-bound's parallel child-node evaluation ({!Lp.Milp.solve});
    [warm] (default true) its parent-basis warm starts. *)
