(** The paper's primary contribution: the fixed-vertex-order, event-based
    LP formulation of power-constrained performance optimization
    (Sections 3.1-3.3, equations (1)-(13)).

    Variables: a time [v_j] per DAG vertex and a convex-combination
    weight [c_{i,k}] per (task, frontier configuration).  Task start
    times are identified with their source-vertex times (equation (4)),
    and per-task duration/power are the weighted sums over the convex
    Pareto frontier (equations (7)-(8)) — which keeps the whole program
    linear.  Power is constrained at events (vertices of an initial,
    power-unconstrained schedule): at each event, the summed power of
    active tasks must fit the job-level cap (equations (10)-(11)), and
    events keep their initial time order (equations (12)-(13)). *)

type mode = Continuous | Discrete_rounded

type stats = { rows : int; cols : int; iterations : int; power_rows : int }

type schedule = {
  objective : float;
      (** value of the active objective: the LP makespan (seconds) under
          {!Objective.Makespan_under_cap}, the LP energy (joules) under
          {!Objective.Energy_under_deadline} *)
  makespan : float;
      (** the schedule's makespan in seconds, whatever the objective
          (identical to [objective] in makespan mode) *)
  lp_energy : float;
      (** total task energy of the LP solution, [sum power x duration]
          over the chosen blends, joules (identical to [objective] in
          energy mode) *)
  vertex_time : float array;
  blends : Pareto.Frontier.blend array;  (** per tid; [] for zero tasks *)
  power_duals : (int * float) array;
      (** per power row: (representative vertex, seconds of makespan
          saved per extra watt of budget at that event) — the shadow
          prices of equation (11), nonzero exactly where power binds *)
  mode : mode;
  objective_mode : Objective.mode;
  stats : stats;
}

type outcome =
  | Schedule of schedule
  | Infeasible  (** the power cap cannot accommodate every task *)
  | Solver_failure of string

(** The initial, power-unconstrained schedule whose vertex order defines
    the events (Section 3.3).  [reduce_slack] applies the paper's
    modification: tasks off the critical path are slowed as much as
    possible (as-late-as-possible vertex times), which shifts their
    activity windows to where a power-constrained schedule will actually
    run them, without changing the makespan. *)
let initial_times ?(reduce_slack = true) (sc : Scenario.t) :
    Dag.Schedule.times =
  let dur t = Scenario.fastest_duration sc t.Dag.Graph.tid in
  let earliest =
    Dag.Schedule.compute sc.Scenario.graph ~dur ~msg:Dag.Schedule.default_msg
  in
  if reduce_slack then
    Dag.Schedule.latest_times sc.Scenario.graph earliest ~dur
      ~msg:Dag.Schedule.default_msg
  else earliest

(* Everything the model build produces that solve and export need.
   [col_bands]/[row_bands] tag every column and row with its temporal
   stage (position in the initial schedule's event order) — the
   staircase metadata {!Lp.Lu.factor} uses to keep factorization fill
   inside the event-chain blocks.  Empty after structural edits, which
   invalidate the stage assignment. *)
type built = {
  problem : Lp.Model.problem;
  v_vars : Lp.Model.var array;  (* per vertex *)
  c_vars : Lp.Model.var array array;  (* per task, per frontier point *)
  meta : (int * int) list;  (* power rows: (row index, vertex) *)
  n_power_rows : int;
  deadline_row : int option;  (* the energy mode's makespan bound row *)
  objective : Objective.mode;
  col_bands : int array;
  row_bands : int array;
  col_blocks : int array;
      (* per column: owning rank for the Dantzig–Wolfe decomposition
         (-1 for collective-vertex times shared across ranks); empty
         after structural edits, like the bands *)
  n_blocks : int;  (* rank count of the block tagging *)
  horizon : float;
      (* safe upper bound on every vertex time at the optimum (the
         fully serialized slowest schedule, plus the deadline in energy
         mode) — the pricing box for {!Lp.Decomp} *)
}

(* The bands pair in the shape {!Lp.Revised.solve} expects, or [None]
   when the build carries no stage metadata. *)
let bands_of (b : built) =
  if Array.length b.col_bands = 0 then None
  else Some (b.col_bands, b.row_bands)

(* The block structure in the shape {!Lp.Decomp.solve} expects, or
   [None] when the build carries no block metadata.  The guard rows are
   the cap-carrying rows (power rows, plus the deadline row in energy
   mode): when the solved duals are zero on all of them the cap is
   unconstraining, the optimum massively degenerate, and {!Lp.Decomp}
   defers to the monolithic solver for canonical vertex selection —
   mirroring {!Experiments.Common.run_sweep}'s cold re-solve rule. *)
let structure_of (b : built) =
  if Array.length b.col_blocks = 0 then None
  else
    let guard_rows =
      List.map fst b.meta
      @ (match b.deadline_row with Some r -> [ r ] | None -> [])
      |> Array.of_list
    in
    Some
      (Lp.Decomp.structure ~box:b.horizon ~guard_rows ~nblocks:b.n_blocks
         b.col_blocks)

let build ?(reduce_slack = true) ?init
    ?(objective = Objective.Makespan_under_cap) (sc : Scenario.t) ~power_cap :
    built =
  let g = sc.Scenario.graph in
  let nv = Dag.Graph.n_vertices g in
  let nt = Dag.Graph.n_tasks g in
  let init =
    match init with Some t -> t | None -> initial_times ~reduce_slack sc
  in
  let events = Dag.Schedule.events g init in
  let m = Lp.Model.create () in
  (* Temporal stage of each vertex: its position in the event order.
     Rows and columns are banded by the stage of their earliest vertex;
     row bands are recorded in constraint-addition order. *)
  let vpos = Array.make nv 0 in
  Array.iteri
    (fun k vx -> vpos.(vx) <- k)
    events.Dag.Schedule.order;
  let rbands = ref [] in
  let row_band band = rbands := band :: !rbands in
  (* vertex time variables; Init pinned to 0 (equation (2)) *)
  let v =
    Array.init nv (fun j ->
        if j = g.Dag.Graph.init_v then
          Lp.Model.add_var m ~lb:0.0 ~ub:0.0 (Printf.sprintf "v%d" j)
        else Lp.Model.add_var m (Printf.sprintf "v%d" j))
  in
  (* configuration weights (equations (6), (9)); in energy mode they
     carry the objective — a weight's cost is its configuration's task
     energy, so the blended objective is [sum power x duration] *)
  let energy_mode = Objective.is_energy objective in
  let c =
    Array.init nt (fun tid ->
        let f = sc.Scenario.frontiers.(tid) in
        Array.init (Array.length f) (fun k ->
            let obj =
              if energy_mode then
                Some (f.(k).Pareto.Point.power *. f.(k).Pareto.Point.duration)
              else None
            in
            Lp.Model.add_var m ~lb:0.0 ~ub:1.0 ?obj
              (Printf.sprintf "c%d_%d" tid k)))
  in
  Array.iteri
    (fun tid vars ->
      if Array.length vars > 0 then begin
        row_band vpos.(g.Dag.Graph.tasks.(tid).Dag.Graph.t_src);
        Lp.Model.add_constr m
          ~name:(Printf.sprintf "conv%d" tid)
          (Array.to_list (Array.map (fun x -> (1.0, x)) vars))
          Lp.Model.Eq 1.0
      end)
    c;
  (* precedence (equation (3)): v_dst - v_src - sum d_k c_k >= delay *)
  Array.iteri
    (fun tid (t : Dag.Graph.task) ->
      let f = sc.Scenario.frontiers.(tid) in
      let dur_terms =
        Array.to_list
          (Array.mapi
             (fun k (p : Pareto.Point.t) -> (-.p.Pareto.Point.duration, c.(tid).(k)))
             f)
      in
      row_band vpos.(t.Dag.Graph.t_src);
      Lp.Model.add_constr m
        ~name:(Printf.sprintf "prec_t%d" tid)
        ((1.0, v.(t.t_dst)) :: (-1.0, v.(t.t_src)) :: dur_terms)
        Lp.Model.Ge
        g.Dag.Graph.vertices.(t.t_dst).Dag.Graph.delay)
    g.Dag.Graph.tasks;
  Array.iter
    (fun (msg : Dag.Graph.message) ->
      row_band vpos.(msg.Dag.Graph.m_src);
      Lp.Model.add_constr m
        [ (1.0, v.(msg.m_dst)); (-1.0, v.(msg.m_src)) ]
        Lp.Model.Ge
        (Machine.Network.transfer_time msg.bytes
        +. g.Dag.Graph.vertices.(msg.m_dst).Dag.Graph.delay))
    g.Dag.Graph.messages;
  (* event order (equations (12)-(13)) *)
  let ord = events.Dag.Schedule.order in
  for k = 0 to Array.length ord - 2 do
    let a = ord.(k) and b = ord.(k + 1) in
    let ta = init.Dag.Schedule.vertex_time.(a)
    and tb = init.Dag.Schedule.vertex_time.(b) in
    let sense = if Float.abs (ta -. tb) < 1e-12 then Lp.Model.Eq else Lp.Model.Le in
    row_band k;
    Lp.Model.add_constr m
      ~name:(Printf.sprintf "ord%d" k)
      [ (1.0, v.(a)); (-1.0, v.(b)) ]
      sense 0.0
  done;
  (* power at events (equations (10)-(11)), deduplicated by active set *)
  let seen = Hashtbl.create 64 in
  let power_rows = ref 0 in
  let power_row_meta = ref [] in
  Array.iteri
    (fun k active ->
      let nonzero =
        Array.to_list active
        |> List.filter (fun tid -> Array.length sc.Scenario.frontiers.(tid) > 0)
      in
      if nonzero <> [] && not (Hashtbl.mem seen nonzero) then begin
        Hashtbl.add seen nonzero ();
        incr power_rows;
        let terms =
          List.concat_map
            (fun tid ->
              Array.to_list
                (Array.mapi
                   (fun j (p : Pareto.Point.t) ->
                     (p.Pareto.Point.power, c.(tid).(j)))
                   sc.Scenario.frontiers.(tid)))
            nonzero
        in
        power_row_meta := (Lp.Model.nconstrs m, ord.(k)) :: !power_row_meta;
        row_band k;
        Lp.Model.add_constr m
          ~name:(Printf.sprintf "pow%d" k)
          terms Lp.Model.Le power_cap
      end)
    events.Dag.Schedule.active;
  (* objective: equation (1) minimizes the Finalize vertex time; the
     energy variant instead bounds it by the deadline (one extra row,
     appended after the power rows so every shared row index coincides
     across modes) and minimizes the energy carried on the weights *)
  let deadline_row =
    match objective with
    | Objective.Makespan_under_cap ->
        Lp.Model.set_obj m v.(g.Dag.Graph.finalize_v) 1.0;
        None
    | Objective.Energy_under_deadline { deadline } ->
        let row = Lp.Model.nconstrs m in
        row_band vpos.(g.Dag.Graph.finalize_v);
        Lp.Model.add_constr m ~name:"deadline"
          [ (1.0, v.(g.Dag.Graph.finalize_v)) ]
          Lp.Model.Le deadline;
        Some row
  in
  let problem = Lp.Model.compile m in
  (* Column stages: a vertex time lives at its event position, a
     configuration weight at its task's start event. *)
  let col_bands = Array.make problem.Lp.Model.nv 0 in
  Array.iteri (fun j var -> col_bands.(var) <- vpos.(j)) v;
  Array.iteri
    (fun tid vars ->
      let band = vpos.(g.Dag.Graph.tasks.(tid).Dag.Graph.t_src) in
      Array.iter (fun var -> col_bands.(var) <- band) vars)
    c;
  (* Block tags: a configuration weight belongs to its task's rank, a
     vertex time to its vertex's rank when unique (collectives — Init,
     Finalize, allreduces — are shared across ranks).  Rows are not
     tagged: {!Lp.Decomp} classifies them from the matrix. *)
  let col_blocks = Array.make problem.Lp.Model.nv (-1) in
  Array.iteri
    (fun j var ->
      match g.Dag.Graph.vertices.(j).Dag.Graph.ranks with
      | [ r ] -> col_blocks.(var) <- r
      | _ -> ())
    v;
  Array.iteri
    (fun tid vars ->
      let r = g.Dag.Graph.tasks.(tid).Dag.Graph.rank in
      Array.iter (fun var -> col_blocks.(var) <- r) vars)
    c;
  (* Serialized slowest schedule: a sound bound on every vertex time of
     an optimal solution (the ord chain keeps all of them at or below
     the Finalize time, itself bounded by the deadline or makespan). *)
  let horizon =
    let h = ref 1.0 in
    Array.iter
      (fun (t : Dag.Graph.task) ->
        let f = sc.Scenario.frontiers.(t.Dag.Graph.tid) in
        if Array.length f > 0 then
          h := !h +. (Pareto.Frontier.slowest f).Pareto.Point.duration)
      g.Dag.Graph.tasks;
    Array.iter
      (fun (vx : Dag.Graph.vertex) -> h := !h +. vx.Dag.Graph.delay)
      g.Dag.Graph.vertices;
    Array.iter
      (fun (msg : Dag.Graph.message) ->
        h := !h +. Machine.Network.transfer_time msg.Dag.Graph.bytes)
      g.Dag.Graph.messages;
    (match objective with
    | Objective.Energy_under_deadline { deadline } ->
        if Float.is_finite deadline then h := !h +. deadline
    | Objective.Makespan_under_cap -> ());
    !h
  in
  {
    problem;
    v_vars = v;
    c_vars = c;
    meta = List.rev !power_row_meta;
    n_power_rows = !power_rows;
    deadline_row;
    objective;
    col_bands;
    row_bands = Array.of_list (List.rev !rbands);
    col_blocks;
    n_blocks = g.Dag.Graph.nranks;
    horizon;
  }

(** The compiled LP in MPS format, for cross-checking against external
    solvers. *)
let to_mps ?reduce_slack ?objective (sc : Scenario.t) ~power_cap =
  let b = build ?reduce_slack ?objective sc ~power_cap in
  Lp.Mps.to_string ~name:"powerlim-event-lp" b.problem

(* Map a solver result back to the schedule domain.  [objective] is the
   mode of the solve being reported — usually the build-time mode, but
   per-deadline re-solves of an energy handle pass the patched one. *)
let outcome_of ~mode ~objective (sc : Scenario.t)
    ({ problem = p; v_vars = v; c_vars = c; meta; n_power_rows; _ } : built)
    (r : Lp.Revised.result) : outcome =
  let nt = Dag.Graph.n_tasks sc.Scenario.graph in
  match r.Lp.Revised.status with
  | Lp.Revised.Infeasible -> Infeasible
  | Lp.Revised.Unbounded -> Solver_failure "unbounded (formulation bug)"
  | Lp.Revised.Iter_limit -> Solver_failure "iteration limit"
  | Lp.Revised.Optimal ->
      let x = r.Lp.Revised.x in
      let blend_of tid : Pareto.Frontier.blend =
        let f = sc.Scenario.frontiers.(tid) in
        if Array.length f = 0 then []
        else begin
          let raw =
            Array.to_list
              (Array.mapi (fun k point -> (point, x.(c.(tid).(k)))) f)
            |> List.filter (fun (_, w) -> w > 1e-9)
          in
          let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 raw in
          let raw =
            if total <= 0.0 then [ (Pareto.Frontier.slowest f, 1.0) ]
            else List.map (fun (pt, w) -> (pt, w /. total)) raw
          in
          match mode with
          | Continuous -> raw
          | Discrete_rounded ->
              let target = Pareto.Frontier.blend_power raw in
              [ (Pareto.Frontier.round_nearest f ~power:target, 1.0) ]
        end
      in
      let power_duals =
        List.map (fun (row, vertex) -> (vertex, -.r.Lp.Revised.y.(row))) meta
        |> Array.of_list
      in
      (* In makespan mode the objective IS the makespan (bit-for-bit);
         energy mode reads the makespan off the Finalize column and its
         objective already is the blended energy.  The cross-mode energy
         is summed from the raw weights, canonically from the solver's
         own objective when it is the energy. *)
      let makespan =
        match objective with
        | Objective.Makespan_under_cap -> r.Lp.Revised.objective
        | Objective.Energy_under_deadline _ ->
            x.(v.(sc.Scenario.graph.Dag.Graph.finalize_v))
      in
      let lp_energy =
        match objective with
        | Objective.Energy_under_deadline _ -> r.Lp.Revised.objective
        | Objective.Makespan_under_cap ->
            let e = ref 0.0 in
            Array.iteri
              (fun tid vars ->
                let f = sc.Scenario.frontiers.(tid) in
                let n = min (Array.length f) (Array.length vars) in
                for k = 0 to n - 1 do
                  let p = f.(k) in
                  e :=
                    !e
                    +. p.Pareto.Point.power *. p.Pareto.Point.duration
                       *. x.(vars.(k))
                done)
              c;
            !e
      in
      Schedule
        {
          objective = r.Lp.Revised.objective;
          makespan;
          lp_energy;
          vertex_time = Array.map (fun var -> x.(var)) v;
          blends = Array.init nt blend_of;
          power_duals;
          mode;
          objective_mode = objective;
          stats =
            {
              rows = p.Lp.Model.nr;
              cols = p.Lp.Model.nv;
              iterations = r.Lp.Revised.iterations;
              power_rows = n_power_rows;
            };
        }

(* How re-solves of a prepared model are executed.  [`Reduced] caches one
   presolve reduction and patches the power-row RHS through it — only
   sound when every power row survived the reduction, so a cap change
   cannot invalidate any reduction decision.  [`Each] falls back to a
   fresh presolve per cap (reduction touched a power row); [`Full] skips
   presolve entirely. *)
type resolution =
  [ `Reduced of Lp.Presolve.reduction | `Each | `Full ]

type prepared = {
  psc : Scenario.t;
  pbuilt : built;
  resolution : resolution;
  panalysis : Lp.Revised.analysis option;
      (* symbolic analysis of the matrix the per-cap re-solves actually
         hand to the simplex (the reduction's problem under [`Reduced],
         the full problem under [`Full]); cap changes touch only the RHS,
         so it is computed once here and reused for every cap.  [`Each]
         re-presolves per cap, so there is nothing stable to analyze. *)
}

let prepare ?(reduce_slack = true) ?(presolve = true) ?init ?objective
    (sc : Scenario.t) ~power_cap : prepared =
  let b = build ~reduce_slack ?init ?objective sc ~power_cap in
  let resolution =
    if not presolve then `Full
    else
      match Lp.Presolve.reduce b.problem with
      | Lp.Presolve.Proven_infeasible -> `Each
      | Lp.Presolve.Reduced red ->
          let kept = Array.make b.problem.Lp.Model.nr false in
          Array.iter
            (fun i -> kept.(i) <- true)
            red.Lp.Presolve.kept_rows;
          (* RHS patching through a cached reduction is only sound when
             every row we patch survived it — the power rows, and in
             energy mode the deadline row too *)
          if
            List.for_all (fun (row, _) -> kept.(row)) b.meta
            && (match b.deadline_row with
               | None -> true
               | Some row -> kept.(row))
          then `Reduced red
          else `Each
  in
  let panalysis =
    match resolution with
    | `Reduced red ->
        Some (Lp.Revised.make_analysis red.Lp.Presolve.problem)
    | `Full -> Some (Lp.Revised.make_analysis b.problem)
    | `Each -> None
  in
  { psc = sc; pbuilt = b; resolution; panalysis }

(* The shared re-solve engine: run the prepared model under an optional
   original-space RHS override, reporting the outcome under [objective]. *)
let run_prepared ~mode ~max_iter ~objective ?warm (pz : prepared) rhs :
    outcome * Lp.Revised.basis option =
  let b = pz.pbuilt in
  let p = b.problem in
  let bands = bands_of b in
  let structure = structure_of b in
  let r =
    match pz.resolution with
    | `Reduced red ->
        Lp.Presolve.solve_reduction ~max_iter ?rhs ?warm
          ?analysis:pz.panalysis ?bands ?structure p red
    | `Each ->
        let pp =
          match rhs with
          | None -> p
          | Some row_rhs -> { p with Lp.Model.row_rhs }
        in
        { (Lp.Presolve.solve ~max_iter pp) with Lp.Revised.basis = None }
    | `Full ->
        Lp.Decomp.solve ~max_iter ?rhs ?warm ?analysis:pz.panalysis ?bands
          ?structure p
  in
  (outcome_of ~mode ~objective pz.psc b r, r.Lp.Revised.basis)

let solve_prepared ?(mode = Continuous) ?(max_iter = 0) ?warm (pz : prepared)
    ~power_cap : outcome * Lp.Revised.basis option =
  let b = pz.pbuilt in
  let p = b.problem in
  (* Fresh RHS override with the power rows re-capped; [None] when the
     prepared model was built at this very cap (keeps the one-shot
     [solve] path bit-identical to a direct solve). *)
  let rhs =
    if
      List.for_all
        (fun (row, _) -> p.Lp.Model.row_rhs.(row) = power_cap)
        b.meta
    then None
    else begin
      let r = Array.copy p.Lp.Model.row_rhs in
      List.iter (fun (row, _) -> r.(row) <- power_cap) b.meta;
      Some r
    end
  in
  run_prepared ~mode ~max_iter ~objective:b.objective ?warm pz rhs

let solve_prepared_deadline ?(mode = Continuous) ?(max_iter = 0) ?warm
    (pz : prepared) ~deadline : outcome * Lp.Revised.basis option =
  let b = pz.pbuilt in
  let p = b.problem in
  let row =
    match b.deadline_row with
    | Some row -> row
    | None ->
        invalid_arg
          "Event_lp.solve_prepared_deadline: handle was prepared under the \
           makespan objective (no deadline row)"
  in
  if not (Float.is_finite deadline) then
    invalid_arg "Event_lp.solve_prepared_deadline: deadline must be finite";
  let rhs =
    if p.Lp.Model.row_rhs.(row) = deadline then None
    else begin
      let r = Array.copy p.Lp.Model.row_rhs in
      r.(row) <- deadline;
      Some r
    end
  in
  run_prepared ~mode ~max_iter
    ~objective:(Objective.Energy_under_deadline { deadline })
    ?warm pz rhs

(* ------------------------------------------------------------------ *)
(* Structural what-if edits                                            *)
(* ------------------------------------------------------------------ *)

type domain_edit =
  | Fail_socket of int
  | Drop_rank of int
  | Perturb_task of { tid : int; point : int; duration : float; power : float }

let pp_domain_edit ppf = function
  | Fail_socket r -> Fmt.pf ppf "fail-socket %d" r
  | Drop_rank r -> Fmt.pf ppf "drop-rank %d" r
  | Perturb_task { tid; point; duration; power } ->
      Fmt.pf ppf "perturb-task %d:%d to (%g s, %g W)" tid point duration power

let check_rank (sc : Scenario.t) r what =
  let n = sc.Scenario.graph.Dag.Graph.nranks in
  if r < 0 || r >= n then
    invalid_arg
      (Printf.sprintf "Event_lp.%s: rank %d outside 0..%d" what r (n - 1))

(* Mirror the edits on the scenario itself, so blends, duals, digests and
   cache keys all see the edited world.  Frontier arrays are copied, never
   mutated — scenarios share hull arrays across tasks and builds. *)
let edit_scenario (sc : Scenario.t) (des : domain_edit list) : Scenario.t =
  let frontiers = Array.copy sc.Scenario.frontiers in
  let each_rank_task r f =
    Array.iteri
      (fun tid (t : Dag.Graph.task) -> if t.Dag.Graph.rank = r then f tid)
      sc.Scenario.graph.Dag.Graph.tasks
  in
  List.iter
    (fun de ->
      match de with
      | Fail_socket r ->
          check_rank sc r "edit_scenario";
          (* socket stuck in its most frugal state: hull collapses to the
             slowest point *)
          each_rank_task r (fun tid ->
              if Array.length frontiers.(tid) > 1 then
                frontiers.(tid) <- [| frontiers.(tid).(0) |])
      | Drop_rank r ->
          check_rank sc r "edit_scenario";
          each_rank_task r (fun tid -> frontiers.(tid) <- [||])
      | Perturb_task { tid; point; duration; power } ->
          let nt = Array.length frontiers in
          if tid < 0 || tid >= nt then
            invalid_arg
              (Printf.sprintf "Event_lp.edit_scenario: task %d outside 0..%d"
                 tid (nt - 1));
          let f = frontiers.(tid) in
          if point < 0 || point >= Array.length f then
            invalid_arg
              (Printf.sprintf
                 "Event_lp.edit_scenario: point %d outside task %d's frontier"
                 point tid);
          if not (Float.is_finite duration && Float.is_finite power)
             || duration <= 0.0 || power <= 0.0
          then
            invalid_arg
              "Event_lp.edit_scenario: perturbed (duration, power) must be \
               finite and positive";
          let f' = Array.copy f in
          f'.(point) <- { f.(point) with Pareto.Point.duration; power };
          frontiers.(tid) <- f')
    des;
  { sc with Scenario.frontiers }

(* Compile domain edits to elementary LP edits against [p].  Rows and
   columns are located by the names [build] gave them ("conv%d",
   "prec_t%d", "pow%d", "c%d_%d"), re-resolved against the evolving
   problem after every elementary edit — names survive index shifts,
   indices do not. *)
let compile_edits_problem (sc : Scenario.t) (p : Lp.Model.problem)
    (des : domain_edit list) : Lp.Edit.t list =
  let find names n name =
    let rec go i =
      if i >= n then None
      else if String.equal names.(i) name then Some i
      else go (i + 1)
    in
    go 0
  in
  let acc = ref [] and cur = ref p in
  let emit e =
    acc := e :: !acc;
    cur := Lp.Edit.apply !cur [ e ]
  in
  let find_row name =
    let p = !cur in
    find p.Lp.Model.row_names p.Lp.Model.nr name
  in
  let find_col name =
    let p = !cur in
    find p.Lp.Model.var_names p.Lp.Model.nv name
  in
  let each_rank_task r f =
    Array.iteri
      (fun tid (t : Dag.Graph.task) -> if t.Dag.Graph.rank = r then f tid)
      sc.Scenario.graph.Dag.Graph.tasks
  in
  List.iter
    (fun de ->
      match de with
      | Fail_socket r ->
          check_rank sc r "compile_edits";
          each_rank_task r (fun tid ->
              (* pin every weight but the most frugal one to zero *)
              let k = ref 1 in
              let continue = ref true in
              while !continue do
                match find_col (Printf.sprintf "c%d_%d" tid !k) with
                | Some col ->
                    emit (Lp.Edit.Set_bounds { col; lb = 0.0; ub = 0.0 });
                    incr k
                | None -> continue := false
              done)
      | Drop_rank r ->
          check_rank sc r "compile_edits";
          each_rank_task r (fun tid ->
              (match find_row (Printf.sprintf "conv%d" tid) with
              | Some row -> emit (Lp.Edit.Remove_row row)
              | None -> ());
              let k = ref 0 in
              let continue = ref true in
              while !continue do
                match find_col (Printf.sprintf "c%d_%d" tid !k) with
                | Some col ->
                    emit (Lp.Edit.Remove_col col);
                    incr k
                | None -> continue := false
              done)
      | Perturb_task { tid; point; duration; power } ->
          if not (Float.is_finite duration && Float.is_finite power)
             || duration <= 0.0 || power <= 0.0
          then
            invalid_arg
              "Event_lp.compile_edits: perturbed (duration, power) must be \
               finite and positive";
          let col =
            match find_col (Printf.sprintf "c%d_%d" tid point) with
            | Some col -> col
            | None ->
                invalid_arg
                  (Printf.sprintf
                     "Event_lp.compile_edits: no weight variable c%d_%d" tid
                     point)
          in
          (match find_row (Printf.sprintf "prec_t%d" tid) with
          | Some row -> emit (Lp.Edit.Set_entry { row; col; coef = -.duration })
          | None -> ());
          (* every power row carrying this configuration gets its new
             wattage; classify the column's rows by name prefix *)
          let prows = ref [] in
          let pc = !cur in
          Lp.Sparse.Csc.iter_col pc.Lp.Model.a col (fun i _ ->
              let n = pc.Lp.Model.row_names.(i) in
              if String.length n >= 3 && String.sub n 0 3 = "pow" then
                prows := i :: !prows);
          List.iter
            (fun row -> emit (Lp.Edit.Set_entry { row; col; coef = power }))
            (List.rev !prows))
    des;
  List.rev !acc

let compile_edits (pz : prepared) (des : domain_edit list) : Lp.Edit.t list =
  compile_edits_problem pz.psc pz.pbuilt.problem des

let prepared_problem (pz : prepared) = pz.pbuilt.problem

(* Incremental structural re-solve: compile the edits, map the supplied
   basis across them (bordered updates inside {!Lp.Edit}), dual-repair,
   and rebuild a prepared handle for the edited world so further caps —
   or further edits — can be chained. *)
let edit_prepared ?(mode = Continuous) ?(max_iter = 0) ?warm (pz : prepared)
    (des : domain_edit list) :
    outcome * prepared * Lp.Revised.basis option =
  let b = pz.pbuilt in
  let edits = compile_edits_problem pz.psc b.problem des in
  (* a reduced-space basis cannot be mapped across full-space edits *)
  let warm = match pz.resolution with `Full -> warm | `Reduced _ | `Each -> None in
  let p', r = Lp.Edit.resolve ~max_iter ?warm b.problem edits in
  let cmap = Lp.Edit.col_map b.problem edits in
  let rmap = Lp.Edit.row_map b.problem edits in
  let v_vars = Array.map (fun v -> cmap.(v)) b.v_vars in
  let c_vars =
    Array.map
      (fun vars ->
        if Array.exists (fun v -> cmap.(v) < 0) vars then [||]
        else Array.map (fun v -> cmap.(v)) vars)
      b.c_vars
  in
  let meta =
    List.filter_map
      (fun (row, vx) -> if rmap.(row) >= 0 then Some (rmap.(row), vx) else None)
      b.meta
  in
  let built' =
    {
      problem = p';
      v_vars;
      c_vars;
      meta;
      n_power_rows = List.length meta;
      deadline_row =
        (match b.deadline_row with
        | Some row when rmap.(row) >= 0 -> Some rmap.(row)
        | Some _ | None -> None);
      objective = b.objective;
      (* structural edits invalidate the event-stage assignment and the
         block tagging *)
      col_bands = [||];
      row_bands = [||];
      col_blocks = [||];
      n_blocks = 0;
      horizon = b.horizon;
    }
  in
  let sc' = edit_scenario pz.psc des in
  let pz' =
    {
      psc = sc';
      pbuilt = built';
      resolution = `Full;
      panalysis = Some (Lp.Revised.make_analysis p');
    }
  in
  (outcome_of ~mode ~objective:b.objective sc' built' r, pz', r.Lp.Revised.basis)

(* Objective-mode switch on a prepared handle, expressed in the edit
   language so the previous mode's optimal basis warm-starts the new
   mode's solve: the objective swap is a [Set_obj] list and the deadline
   row is added/removed as a structural edit, whose basis mapping
   {!Lp.Edit.resolve} already knows how to carry (the makespan optimum
   is primal feasible for the energy LP whenever its own makespan meets
   the deadline, so the dual repair is usually a handful of pivots). *)
let switch_objective ?(mode = Continuous) ?(max_iter = 0) ?warm (pz : prepared)
    (objective : Objective.mode) :
    outcome * prepared * Lp.Revised.basis option =
  let b = pz.pbuilt in
  let p = b.problem in
  let g = pz.psc.Scenario.graph in
  let fin_col = b.v_vars.(g.Dag.Graph.finalize_v) in
  match (b.objective, objective) with
  | Objective.Makespan_under_cap, Objective.Makespan_under_cap ->
      let o, basis = run_prepared ~mode ~max_iter ~objective ?warm pz None in
      (o, pz, basis)
  | ( Objective.Energy_under_deadline _,
      Objective.Energy_under_deadline { deadline } ) ->
      (* same mode: a deadline change is only an RHS patch *)
      let o, basis = solve_prepared_deadline ~mode ~max_iter ?warm pz ~deadline in
      (o, pz, basis)
  | Objective.Makespan_under_cap, Objective.Energy_under_deadline _
  | Objective.Energy_under_deadline _, Objective.Makespan_under_cap ->
      let target_obj =
        let obj = Array.make p.Lp.Model.nv 0.0 in
        (match objective with
        | Objective.Makespan_under_cap -> obj.(fin_col) <- 1.0
        | Objective.Energy_under_deadline _ ->
            Array.iteri
              (fun tid vars ->
                let f = pz.psc.Scenario.frontiers.(tid) in
                let n = min (Array.length f) (Array.length vars) in
                for k = 0 to n - 1 do
                  obj.(vars.(k)) <-
                    f.(k).Pareto.Point.power *. f.(k).Pareto.Point.duration
                done)
              b.c_vars);
        obj
      in
      let row_edits =
        match (b.deadline_row, objective) with
        | None, Objective.Energy_under_deadline { deadline } ->
            [
              Lp.Edit.Add_row
                {
                  name = "deadline";
                  terms = [ (1.0, fin_col) ];
                  sense = Lp.Model.Le;
                  rhs = deadline;
                };
            ]
        | Some row, Objective.Makespan_under_cap -> [ Lp.Edit.Remove_row row ]
        | (None, Objective.Makespan_under_cap
          | Some _, Objective.Energy_under_deadline _) ->
            (* unreachable under the outer match *)
            []
      in
      let edits = Lp.Edit.set_objective p target_obj @ row_edits in
      (* a reduced-space basis cannot be mapped across full-space edits *)
      let warm =
        match pz.resolution with `Full -> warm | `Reduced _ | `Each -> None
      in
      let p', r = Lp.Edit.resolve ~max_iter ?warm p edits in
      Lp.Stats.note_mode_switch ();
      let rmap = Lp.Edit.row_map p edits in
      let meta = List.map (fun (row, vx) -> (rmap.(row), vx)) b.meta in
      let deadline_row' =
        match objective with
        | Objective.Makespan_under_cap -> None
        | Objective.Energy_under_deadline _ -> Some (p'.Lp.Model.nr - 1)
      in
      (* columns are untouched and the structural change is one appended
         or removed trailing row, so the stage metadata carries over *)
      let row_bands' =
        if Array.length b.row_bands = 0 then [||]
        else
          match (b.deadline_row, deadline_row') with
          | None, Some _ ->
              Array.append b.row_bands [| b.col_bands.(fin_col) |]
          | Some row, None ->
              Array.init
                (Array.length b.row_bands - 1)
                (fun i -> if i < row then b.row_bands.(i) else b.row_bands.(i + 1))
          | (None, None | Some _, Some _) -> b.row_bands
      in
      let built' =
        {
          b with
          problem = p';
          meta;
          deadline_row = deadline_row';
          objective;
          row_bands = row_bands';
          (* a switched handle re-solves warm from the previous mode's
             basis; the decomposition targets cold solves only *)
          col_blocks = [||];
          n_blocks = 0;
        }
      in
      let pz' =
        {
          pz with
          pbuilt = built';
          resolution = `Full;
          panalysis = Some (Lp.Revised.make_analysis p');
        }
      in
      (outcome_of ~mode ~objective pz.psc built' r, pz', r.Lp.Revised.basis)

let solve ?(mode = Continuous) ?(max_iter = 0) ?(reduce_slack = true)
    ?(presolve = true) ?init ?objective (sc : Scenario.t) ~power_cap : outcome
    =
  let pz = prepare ~reduce_slack ~presolve ?init ?objective sc ~power_cap in
  fst (solve_prepared ~mode ~max_iter pz ~power_cap)

(** Event-order refinement (an extension beyond the paper): the fixed
    event order comes from a power-{e unconstrained} schedule, but the
    solved schedule's own vertex times define a (possibly different)
    event order that reflects where tasks actually land under the cap.
    Re-deriving the events from the solution and re-solving is a valid
    fixed-point iteration — every round's schedule is realizable and its
    bound sound — and occasionally tightens the bound on communication-
    heavy traces.  Returns the best schedule seen. *)
let solve_refined ?(rounds = 2) ?(mode = Continuous) ?max_iter ?reduce_slack
    ?presolve (sc : Scenario.t) ~power_cap : outcome =
  let rec go n best_outcome best_obj init =
    if n >= rounds then best_outcome
    else begin
      match
        solve ~mode ?max_iter ?reduce_slack ?presolve ?init sc ~power_cap
      with
      | Schedule s ->
          let best_outcome, best_obj =
            if s.objective < best_obj then (Schedule s, s.objective)
            else (best_outcome, best_obj)
          in
          let times =
            {
              Dag.Schedule.vertex_time = s.vertex_time;
              makespan = s.makespan;
            }
          in
          go (n + 1) best_outcome best_obj (Some times)
      | (Infeasible | Solver_failure _) as o ->
          if n = 0 then o else best_outcome
    end
  in
  go 0 Infeasible Float.infinity None
