(** A scenario bundles everything the formulations and runtimes consume:
    the application DAG, the socket running each rank (one multithreaded
    process per socket, per the paper's Section 2.2 assumptions), and the
    convex Pareto frontier of every task on its socket. *)

type t = {
  graph : Dag.Graph.t;
  sockets : Machine.Socket.t array;  (** indexed by rank *)
  frontiers : Pareto.Frontier.t array;
      (** indexed by tid; empty array for zero-work MPI transitions *)
  socket_seed : int;  (** fleet seed the sockets were drawn with *)
  variability : float;  (** fleet efficiency variability *)
}

let make ?(socket_seed = 7) ?(variability = 0.04) (graph : Dag.Graph.t) : t =
  let sockets =
    Machine.Socket.fleet ~variability ~seed:socket_seed graph.Dag.Graph.nranks
  in
  (* Frontier enumeration is deduplicated: within one build, every task
     with the same (socket efficiency, profile) content shares one
     physical hull array, and [Frontier.convex_memo] extends that
     sharing across scenario builds through the process-wide cache.  The
     local table also covers the cache-disabled mode, where intra-build
     sharing (and the O(distinct pairs) build cost) is preserved. *)
  let local : (string, Pareto.Frontier.t) Hashtbl.t = Hashtbl.create 64 in
  let frontiers =
    Array.map
      (fun (t : Dag.Graph.task) ->
        if t.profile.Machine.Profile.work <= 0.0 then [||]
        else begin
          let key = Pareto.Frontier.memo_key sockets.(t.rank) t.profile in
          match Hashtbl.find_opt local key with
          | Some f -> f
          | None ->
              let f = Pareto.Frontier.convex_memo sockets.(t.rank) t.profile in
              Hashtbl.add local key f;
              f
        end)
      graph.Dag.Graph.tasks
  in
  { graph; sockets; frontiers; socket_seed; variability }

(* Structural identity: the graph, every parameter the socket fleet was
   drawn from, and the frontiers themselves.  Freshly-built scenarios
   derive their frontiers purely from (graph, sockets, default machine
   params), but what-if edits ({!Event_lp.edit_scenario}) perturb
   frontiers independently of those inputs — so the hulls carry their
   own weight in the digest, and an edited scenario can never collide
   with its parent in the artifact cache.  Exact inverse edits restore
   the exact hull bytes and therefore the original digest. *)
let digest_fold h t =
  Dag.Graph.digest_fold h t.graph;
  Putil.Hashing.int h t.socket_seed;
  Putil.Hashing.float h t.variability;
  Putil.Hashing.int h (Array.length t.sockets);
  Array.iter (Machine.Socket.digest_fold h) t.sockets;
  Array.iter (Pareto.Frontier.digest_fold h) t.frontiers

let digest t =
  let h = Putil.Hashing.create () in
  digest_fold h t;
  Putil.Hashing.hex h

let equal a b =
  a.socket_seed = b.socket_seed
  && Float.equal a.variability b.variability
  && Array.length a.sockets = Array.length b.sockets
  && Array.for_all2 Machine.Socket.equal a.sockets b.sockets
  && Dag.Graph.equal a.graph b.graph
  (* graphs equal ⇒ task counts equal, so for_all2 cannot raise *)
  && Array.for_all2 Pareto.Frontier.equal a.frontiers b.frontiers

(** Smallest job power at which every task can run at all: the sum over
    ranks of the most frugal frontier point of the rank's hungriest task
    — below this the LP is infeasible ("not able to be scheduled" in
    Figures 9-10). *)
let min_job_power t =
  let per_rank = Array.make t.graph.Dag.Graph.nranks 0.0 in
  Array.iteri
    (fun tid f ->
      if Array.length f > 0 then begin
        let r = t.graph.Dag.Graph.tasks.(tid).Dag.Graph.rank in
        let p = Pareto.Frontier.min_power f in
        if p > per_rank.(r) then per_rank.(r) <- p
      end)
    t.frontiers;
  Array.fold_left ( +. ) 0.0 per_rank

(** Duration of a task at its fastest configuration (used for the
    power-unconstrained initial schedule). *)
let fastest_duration t tid =
  let f = t.frontiers.(tid) in
  if Array.length f = 0 then 0.0
  else (Pareto.Frontier.fastest f).Pareto.Point.duration
