(** The paper's primary contribution: the fixed-vertex-order, event-based
    LP formulation of power-constrained performance optimization
    (Sections 3.1-3.3, equations (1)-(13)).

    Variables: a time per DAG vertex and a convex-combination weight per
    (task, frontier configuration).  Power is constrained at events
    (vertices of an initial power-unconstrained schedule): at each event
    the summed power of active tasks must fit the job cap, and events
    keep their initial time order — which keeps the program purely linear
    and polynomially solvable. *)

type mode =
  | Continuous
      (** blends of adjacent frontier points, realized by mid-task
          switching *)
  | Discrete_rounded
      (** the blend's average power rounded to the nearest single real
          configuration (the paper's discrete rounding) *)

type stats = { rows : int; cols : int; iterations : int; power_rows : int }

type schedule = {
  objective : float;
      (** value of the active objective: the LP makespan (seconds) under
          {!Objective.Makespan_under_cap}, the LP energy (joules) under
          {!Objective.Energy_under_deadline} *)
  makespan : float;
      (** the schedule's makespan in seconds, whatever the objective
          (identical to [objective] in makespan mode) *)
  lp_energy : float;
      (** total task energy of the LP solution, [sum power x duration]
          over the chosen blends, joules (identical to [objective] in
          energy mode) *)
  vertex_time : float array;
  blends : Pareto.Frontier.blend array;  (** per tid; [] for zero tasks *)
  power_duals : (int * float) array;
      (** per power row: (representative vertex, seconds of makespan
          saved per extra watt of budget at that event) — the shadow
          prices of equation (11), nonzero exactly where power binds *)
  mode : mode;
  objective_mode : Objective.mode;  (** the mode this schedule optimizes *)
  stats : stats;
}

type outcome =
  | Schedule of schedule
  | Infeasible  (** the power cap cannot accommodate every task *)
  | Solver_failure of string

val initial_times : ?reduce_slack:bool -> Scenario.t -> Dag.Schedule.times
(** The power-unconstrained schedule whose vertex order defines the
    events.  [reduce_slack] (default true) applies the paper's
    Section 3.3 modification: off-critical tasks are slowed as much as
    possible without extending the makespan. *)

val to_mps :
  ?reduce_slack:bool ->
  ?objective:Objective.mode ->
  Scenario.t ->
  power_cap:float ->
  string
(** The compiled LP in MPS format (see {!Lp.Mps}), for cross-checking
    against external solvers. *)

val solve :
  ?mode:mode ->
  ?max_iter:int ->
  ?reduce_slack:bool ->
  ?presolve:bool ->
  ?init:Dag.Schedule.times ->
  ?objective:Objective.mode ->
  Scenario.t ->
  power_cap:float ->
  outcome
(** [solve sc ~power_cap] builds and solves the LP.  [reduce_slack]
    selects the initial schedule (see {!initial_times}); [init]
    overrides it entirely (the event order is taken from these times);
    [presolve] (default true) runs {!Lp.Presolve} before the simplex.
    [objective] (default {!Objective.Makespan_under_cap}) selects what
    is optimized: the energy mode shares the whole constraint matrix
    with the makespan mode — power rows stay at [power_cap] — plus one
    appended row bounding the Finalize time by the deadline, and its
    objective is the total task energy carried on the weight columns. *)

type prepared
(** A built-once event LP, ready for repeated power-cap re-solves.  The
    model (and, when sound, its presolve reduction) is constructed a
    single time; each {!solve_prepared} call patches only the power-row
    RHS.  The event order is the one derived at {!prepare} time, so all
    re-solves share identical rows — which is what makes the returned
    bases exchangeable between caps. *)

val prepare :
  ?reduce_slack:bool ->
  ?presolve:bool ->
  ?init:Dag.Schedule.times ->
  ?objective:Objective.mode ->
  Scenario.t ->
  power_cap:float ->
  prepared
(** Build the model once at a reference cap.  The presolve reduction is
    cached only when every power row — and, in energy mode, the deadline
    row — survives it (an RHS change must not be able to alter a
    reduction decision); otherwise re-solves fall back to a per-cap
    presolve. *)

val solve_prepared :
  ?mode:mode ->
  ?max_iter:int ->
  ?warm:Lp.Revised.basis ->
  prepared ->
  power_cap:float ->
  outcome * Lp.Revised.basis option
(** Re-solve the prepared model at a new cap.  [warm] supplies the basis
    returned by a previous [solve_prepared] on the {e same} prepared
    handle (the basis lives in the prepared model's — possibly reduced —
    space); the solver then runs the dual simplex from it instead of a
    cold phase-1/2.  Returns the outcome and the final basis to thread
    into the next cap ([None] when no reusable basis exists).  Works in
    either objective mode: on an energy handle this sweeps the cap at a
    fixed deadline. *)

val solve_prepared_deadline :
  ?mode:mode ->
  ?max_iter:int ->
  ?warm:Lp.Revised.basis ->
  prepared ->
  deadline:float ->
  outcome * Lp.Revised.basis option
(** Re-solve an energy-mode prepared model at a new deadline (only the
    deadline row's RHS is patched; the power rows keep their cap).
    Bases thread across deadlines exactly as they do across caps in
    {!solve_prepared}.  Raises [Invalid_argument] on a handle prepared
    under the makespan objective. *)

val switch_objective :
  ?mode:mode ->
  ?max_iter:int ->
  ?warm:Lp.Revised.basis ->
  prepared ->
  Objective.mode ->
  outcome * prepared * Lp.Revised.basis option
(** Re-target a prepared handle at the other objective without
    rebuilding: the objective swap compiles to {!Lp.Edit.Set_obj} edits
    and the deadline row is added/removed structurally, so a basis from
    the previous mode's optimum warm-starts the new mode's solve through
    {!Lp.Edit.resolve}'s basis mapping.  Returns the outcome, a new
    prepared handle for the target mode (chainable — further deadlines
    via {!solve_prepared_deadline}, caps via {!solve_prepared}), and the
    final basis.  As with {!edit_prepared}, a warm basis is only usable
    on handles prepared with [~presolve:false].  Counted in
    {!Lp.Stats} as an objective-mode switch. *)

(** {2 Structural what-if edits}

    Domain-level perturbations of a prepared model — the interactive
    "what happens if" layer: each compiles to a list of elementary
    {!Lp.Edit} operations on the prepared LP, so the re-solve can map
    the previous optimal basis across the structural change (bordered
    updates) and dual-repair instead of solving from scratch. *)

type domain_edit =
  | Fail_socket of int
      (** rank's socket loses its DVFS/thread headroom: every task on
          the rank is pinned to its most frugal frontier point *)
  | Drop_rank of int
      (** remove the rank's tasks from the optimization entirely
          (weight variables and convexity rows deleted; the precedence
          arcs remain as pure message delays) *)
  | Perturb_task of { tid : int; point : int; duration : float; power : float }
      (** overwrite one frontier point's (duration, power) — e.g. a
          measured correction to a task's profile *)

val pp_domain_edit : Format.formatter -> domain_edit -> unit

val edit_scenario : Scenario.t -> domain_edit list -> Scenario.t
(** The edited world as a scenario: frontiers truncated ([Fail_socket]),
    emptied ([Drop_rank]) or point-patched ([Perturb_task]).  Raises
    [Invalid_argument] on an out-of-range rank/task/point or a
    non-positive perturbed duration/power.  Because {!Scenario.digest}
    hashes frontiers, the edited scenario re-keys every cache stage, and
    an exact inverse edit restores the original key. *)

val compile_edits : prepared -> domain_edit list -> Lp.Edit.t list
(** The elementary LP edits a domain-edit list compiles to against this
    prepared model (rows/columns located by name, sequentially
    re-resolved as the shape evolves).  Exposed for tests and
    benchmarks; {!edit_prepared} calls it internally. *)

val prepared_problem : prepared -> Lp.Model.problem
(** The prepared model's full compiled problem (the space {!compile_edits}
    indices refer to). *)

val edit_prepared :
  ?mode:mode ->
  ?max_iter:int ->
  ?warm:Lp.Revised.basis ->
  prepared ->
  domain_edit list ->
  outcome * prepared * Lp.Revised.basis option
(** [edit_prepared pz edits ~warm] applies the edits and re-solves
    incrementally: [warm] (a basis from {!solve_prepared} on this same
    handle) is mapped across the structural changes and dual-repaired;
    on any singular/ill-conditioned mapping the solve silently falls
    back to cold, so the result is always exactly the edited problem's
    optimum.  Returns the outcome, a new prepared handle for the edited
    world (chainable: further caps via {!solve_prepared}, further edits
    via [edit_prepared]), and the final basis.  A warm basis is only
    usable when the handle was prepared with [~presolve:false] (the
    basis must live in the full space); otherwise it is ignored. *)

val solve_refined :
  ?rounds:int ->
  ?mode:mode ->
  ?max_iter:int ->
  ?reduce_slack:bool ->
  ?presolve:bool ->
  Scenario.t ->
  power_cap:float ->
  outcome
(** Extension beyond the paper: fixed-point refinement of the event
    order.  Each round re-derives the events from the previous round's
    solved schedule and re-solves; every round is a sound, realizable
    bound, and the best is returned. *)
