(** First-class optimization objectives for the event LP.

    The paper's formulation minimizes makespan under a job power cap;
    the related work (Aupy et al., "Reclaiming the energy of a
    schedule") asks the dual question — minimize energy under a
    deadline.  Both live on the {e same} constraint matrix: per-task
    convexity, precedence, message and event-order rows are identical,
    the power rows carry the cap in both modes, and the energy mode adds
    exactly one row (the makespan bounded by the deadline) while moving
    the objective from the Finalize vertex time to the per-configuration
    energy [power x duration].  Everything downstream — presolve,
    warm starts, the edit language, pipeline cache keys — treats the
    mode as data, never as a baked-in assumption. *)

type mode =
  | Makespan_under_cap
      (** minimize the Finalize vertex time; the power-row RHS is the
          sweep variable (equation (1) of the paper) *)
  | Energy_under_deadline of { deadline : float }
      (** minimize [sum power x duration] over the chosen configuration
          blends, subject to the makespan not exceeding [deadline]
          (seconds); the deadline-row RHS is the sweep variable.  The
          job power cap still applies at every event. *)

let equal a b =
  match (a, b) with
  | Makespan_under_cap, Makespan_under_cap -> true
  | Energy_under_deadline { deadline = d1 }, Energy_under_deadline { deadline = d2 }
    ->
      Int64.equal (Int64.bits_of_float d1) (Int64.bits_of_float d2)
  | Makespan_under_cap, Energy_under_deadline _
  | Energy_under_deadline _, Makespan_under_cap ->
      false

let is_energy = function
  | Energy_under_deadline _ -> true
  | Makespan_under_cap -> false

let pp ppf = function
  | Makespan_under_cap -> Fmt.string ppf "makespan-under-cap"
  | Energy_under_deadline { deadline } ->
      Fmt.pf ppf "energy-under-deadline(%g s)" deadline

(** Unit label of the mode's objective value, for reports. *)
let unit = function
  | Makespan_under_cap -> "s"
  | Energy_under_deadline _ -> "J"

(** Canonical encoding for content-derived cache keys: the mode tag and
    (in energy mode) the deadline.  Two prepared models in different
    modes — or at different deadlines — must never share a pipeline
    artifact, even though their matrices mostly coincide. *)
let digest_fold h = function
  | Makespan_under_cap -> Putil.Hashing.string h "obj:makespan"
  | Energy_under_deadline { deadline } ->
      Putil.Hashing.string h "obj:energy";
      Putil.Hashing.float h deadline
