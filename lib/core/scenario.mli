(** A scenario bundles everything the formulations and runtimes consume:
    the application DAG, the socket running each rank (one multithreaded
    process per socket, paper Section 2.2), and the convex Pareto
    frontier of every task on its socket. *)

type t = {
  graph : Dag.Graph.t;
  sockets : Machine.Socket.t array;  (** indexed by rank *)
  frontiers : Pareto.Frontier.t array;
      (** indexed by tid; empty for zero-work MPI transitions *)
  socket_seed : int;  (** fleet seed the sockets were drawn with *)
  variability : float;  (** fleet efficiency variability *)
}

val make : ?socket_seed:int -> ?variability:float -> Dag.Graph.t -> t
(** Builds the socket fleet and every task's convex frontier.  Frontier
    construction is deduplicated: tasks whose (socket efficiency,
    profile) inputs are equal share one physical hull array, within a
    build always and across builds through the process-wide frontier
    cache ({!Pareto.Frontier.convex_memo}). *)

val equal : t -> t -> bool
(** Structural, seed- and parameter-inclusive equality. *)

val digest_fold : Putil.Hashing.t -> t -> unit

val digest : t -> string
(** Hex digest of the scenario's structure — graph, socket fleet, seed,
    variability and every task frontier — the scenario's content-derived
    cache key.  Frontiers are hashed directly (not just their inputs) so
    a what-if edit ({!Event_lp.edit_scenario}) always re-keys, and an
    exact inverse edit restores the original key. *)

val min_job_power : t -> float
(** Smallest job power at which every task can run at all; below it the
    LP is infeasible ("not able to be scheduled" in Figures 9-10). *)

val fastest_duration : t -> int -> float
(** Duration of task [tid] at its fastest configuration. *)
