(** The flow-based mixed ILP formulation (paper appendix, equations
    (14)-(29)).

    Power is conserved as a flow through a second DAG: a source edge
    injects exactly the job power cap at time zero, every computation
    task must receive its power from tasks that finished before it
    started (sequencing binaries [x_ij], chosen by the solver rather than
    fixed as in {!Event_lp}), and a sink collects all power at the end.
    The big-M disjunctive constraint (23) is linearized in the standard
    indicator form [s_j >= s_i + d_i - M (1 - x_ij)] so it stays linear
    in the variable task durations.

    As in the paper, the formulation is only tractable for small
    instances (tens of task edges); [solve] refuses anything larger. *)

type stats = {
  binaries : int;
  rows : int;
  cols : int;
  nodes : int;
  relaxation : float;
}

type schedule = {
  objective : float;
  blends : Pareto.Frontier.blend array;  (** per tid of the full graph *)
  stats : stats;
}

type outcome =
  | Schedule of schedule
  | Infeasible
  | Too_large of int  (** number of task edges *)
  | Solver_failure of string

(* Symbolic value of a sequencing variable after constant folding. *)
type xval = Fixed of float | Free of Lp.Model.var

let solve ?pool ?(max_tasks = 30) ?(max_nodes = 20_000)
    ?(integer_configs = false) ?warm (sc : Scenario.t) ~power_cap : outcome =
  let g = sc.Scenario.graph in
  let tids =
    Array.to_list g.Dag.Graph.tasks
    |> List.filter (fun (t : Dag.Graph.task) ->
           t.profile.Machine.Profile.work > 0.0)
    |> List.map (fun (t : Dag.Graph.task) -> t.tid)
    |> Array.of_list
  in
  let n_a = Array.length tids in
  if n_a > max_tasks then Too_large n_a
  else begin
    let nv = Dag.Graph.n_vertices g in
    (* Vertex reachability (TE' and, via task endpoints, TE). *)
    let reach = Array.make_matrix nv nv false in
    let order = Dag.Graph.topo_order g in
    for i = 0 to nv - 1 do
      reach.(i).(i) <- true
    done;
    for k = nv - 1 downto 0 do
      let vsrc = order.(k) in
      List.iter
        (fun e ->
          let w = Dag.Graph.edge_dst g e in
          for j = 0 to nv - 1 do
            if reach.(w).(j) then reach.(vsrc).(j) <- true
          done)
        g.Dag.Graph.out_edges.(vsrc)
    done;
    let task tid = g.Dag.Graph.tasks.(tid) in
    (* A' indices: 0..n_a-1 tasks, n_a = source, n_a+1 = sink. *)
    let source = n_a and sink = n_a + 1 in
    let n' = n_a + 2 in
    let src_v a = (task tids.(a)).Dag.Graph.t_src in
    let dst_v a = (task tids.(a)).Dag.Graph.t_dst in
    (* Horizon: every task sequentially at its slowest configuration. *)
    let horizon =
      Array.fold_left
        (fun acc tid ->
          acc
          +. (Pareto.Frontier.slowest sc.Scenario.frontiers.(tid))
               .Pareto.Point.duration)
        1.0 tids
    in
    let m = Lp.Model.create () in
    let v =
      Array.init nv (fun j ->
          if j = g.Dag.Graph.init_v then
            Lp.Model.add_var m ~lb:0.0 ~ub:0.0 (Printf.sprintf "v%d" j)
          else Lp.Model.add_var m (Printf.sprintf "v%d" j))
    in
    let c =
      Array.map
        (fun tid ->
          let f = sc.Scenario.frontiers.(tid) in
          Array.init (Array.length f) (fun k ->
              Lp.Model.add_var m ~lb:0.0 ~ub:1.0 ~integer:integer_configs
                (Printf.sprintf "c%d_%d" tid k)))
        tids
    in
    Array.iteri
      (fun a vars ->
        ignore a;
        Lp.Model.add_constr m
          (Array.to_list (Array.map (fun x -> (1.0, x)) vars))
          Lp.Model.Eq 1.0)
      c;
    (* duration / power linear terms of task [a] *)
    let dur_terms a coeff =
      Array.to_list
        (Array.mapi
           (fun k (p : Pareto.Point.t) ->
             (coeff *. p.Pareto.Point.duration, c.(a).(k)))
           sc.Scenario.frontiers.(tids.(a)))
    in
    let pow_terms a coeff =
      Array.to_list
        (Array.mapi
           (fun k (p : Pareto.Point.t) ->
             (coeff *. p.Pareto.Point.power, c.(a).(k)))
           sc.Scenario.frontiers.(tids.(a)))
    in
    let pmax a =
      if a = source || a = sink then power_cap
      else Pareto.Frontier.max_power sc.Scenario.frontiers.(tids.(a))
    in
    (* DAG precedence on vertex times (equation (3)), incl. messages. *)
    Array.iteri
      (fun tid (t : Dag.Graph.task) ->
        let f = sc.Scenario.frontiers.(tid) in
        let terms =
          if Array.length f = 0 then []
          else begin
            let a = ref (-1) in
            Array.iteri (fun i x -> if x = tid then a := i) tids;
            dur_terms !a (-1.0)
          end
        in
        Lp.Model.add_constr m
          ((1.0, v.(t.t_dst)) :: (-1.0, v.(t.t_src)) :: terms)
          Lp.Model.Ge
          g.Dag.Graph.vertices.(t.t_dst).Dag.Graph.delay)
      g.Dag.Graph.tasks;
    Array.iter
      (fun (msg : Dag.Graph.message) ->
        Lp.Model.add_constr m
          [ (1.0, v.(msg.m_dst)); (-1.0, v.(msg.m_src)) ]
          Lp.Model.Ge
          (Machine.Network.transfer_time msg.bytes
          +. g.Dag.Graph.vertices.(msg.m_dst).Dag.Graph.delay))
      g.Dag.Graph.messages;
    (* Sequencing variables with constant folding (equations (14)-(22)). *)
    let nbin = ref 0 in
    let x : xval array array =
      Array.init n' (fun a ->
          Array.init n' (fun b ->
              if a = b then Fixed 0.0 (* (18) *)
              else if a = sink || b = source then Fixed 0.0
              else if a = source || b = sink then Fixed 1.0
              else begin
                let prec i j = reach.(dst_v i).(src_v j) in
                if prec a b then Fixed 1.0 (* (15) *)
                else if prec b a then Fixed 0.0
                else if src_v a = src_v b then Fixed 0.0 (* (21) *)
                else if dst_v a = dst_v b then Fixed 0.0 (* (22) *)
                else if src_v b <> src_v a && reach.(src_v b).(src_v a) then
                  Fixed 0.0 (* (19) *)
                else if dst_v b <> dst_v a && reach.(dst_v b).(dst_v a) then
                  Fixed 0.0 (* (20) *)
                else begin
                  incr nbin;
                  Free
                    (Lp.Model.add_var m ~lb:0.0 ~ub:1.0 ~integer:true
                       (Printf.sprintf "x_%d_%d" a b))
                end
              end))
    in
    (* (16): x_ab + x_ba <= 1 where both free. *)
    for a = 0 to n_a - 1 do
      for b = a + 1 to n_a - 1 do
        match (x.(a).(b), x.(b).(a)) with
        | Free xa, Free xb ->
            Lp.Model.add_constr m [ (1.0, xa); (1.0, xb) ] Lp.Model.Le 1.0
        | _ -> ()
      done
    done;
    (* (17): transitivity x_ac >= x_ab + x_bc - 1, constant-folded. *)
    for a = 0 to n_a - 1 do
      for b = 0 to n_a - 1 do
        for cc = 0 to n_a - 1 do
          if a <> b && b <> cc && a <> cc then begin
            let terms = ref [] and rhs = ref (-1.0) in
            let add coeff = function
              | Fixed f -> rhs := !rhs -. (coeff *. f)
              | Free var -> terms := (coeff, var) :: !terms
            in
            add 1.0 x.(a).(cc);
            add (-1.0) x.(a).(b);
            add (-1.0) x.(b).(cc);
            if !terms <> [] && !rhs > -1.0 +. 1e-9 then
              Lp.Model.add_constr m !terms Lp.Model.Ge !rhs
            else if !terms = [] && !rhs > 1e-9 then
              failwith "Flow_ilp: inconsistent fixed sequencing"
          end
        done
      done
    done;
    (* (23): s_b >= s_a + d_a - M (1 - x_ab) for free pairs. *)
    for a = 0 to n_a - 1 do
      for b = 0 to n_a - 1 do
        if a <> b then
          match x.(a).(b) with
          | Free xv ->
              Lp.Model.add_constr m
                ((1.0, v.(src_v b))
                :: (-1.0, v.(src_v a))
                :: (-.horizon, xv)
                :: dur_terms a (-1.0))
                Lp.Model.Ge (-.horizon)
          | Fixed _ -> ()
      done
    done;
    (* Flow variables for pairs that can carry power. *)
    let f : Lp.Model.var option array array =
      Array.init n' (fun a ->
          Array.init n' (fun b ->
              if a = sink || b = source || a = b then None
              else
                match x.(a).(b) with
                | Fixed 0.0 -> None
                | Fixed _ | Free _ ->
                    Some
                      (Lp.Model.add_var m ~lb:0.0
                         ~ub:(min (pmax a) (pmax b))
                         (Printf.sprintf "f_%d_%d" a b))))
    in
    (* (27): f_ab <= min(p_a, p_b) x_ab, linearized. *)
    for a = 0 to n' - 1 do
      for b = 0 to n' - 1 do
        match f.(a).(b) with
        | None -> ()
        | Some fv ->
            (match x.(a).(b) with
            | Free xv ->
                Lp.Model.add_constr m
                  [ (1.0, fv); (-.min (pmax a) (pmax b), xv) ]
                  Lp.Model.Le 0.0
            | Fixed _ -> ());
            if a < n_a then
              Lp.Model.add_constr m ((1.0, fv) :: pow_terms a (-1.0))
                Lp.Model.Le 0.0;
            if b < n_a then
              Lp.Model.add_constr m ((1.0, fv) :: pow_terms b (-1.0))
                Lp.Model.Le 0.0
      done
    done;
    (* (28)-(29): flow conservation. *)
    for a = 0 to n' - 1 do
      if a <> sink then begin
        let outs = ref [] in
        for b = 0 to n' - 1 do
          match f.(a).(b) with Some fv -> outs := (1.0, fv) :: !outs | None -> ()
        done;
        if a = source then Lp.Model.add_constr m !outs Lp.Model.Eq power_cap
        else
          Lp.Model.add_constr m (!outs @ pow_terms a (-1.0)) Lp.Model.Eq 0.0
      end
    done;
    for b = 0 to n' - 1 do
      if b <> source then begin
        let ins = ref [] in
        for a = 0 to n' - 1 do
          match f.(a).(b) with Some fv -> ins := (1.0, fv) :: !ins | None -> ()
        done;
        if b = sink then Lp.Model.add_constr m !ins Lp.Model.Eq power_cap
        else Lp.Model.add_constr m (!ins @ pow_terms b (-1.0)) Lp.Model.Eq 0.0
      end
    done;
    Lp.Model.set_obj m v.(g.Dag.Graph.finalize_v) 1.0;
    let p = Lp.Model.compile m in
    let r = Lp.Milp.solve ?pool ~max_nodes ?warm p in
    match r.Lp.Milp.status with
    | Lp.Milp.Infeasible -> Infeasible
    | Lp.Milp.Unbounded -> Solver_failure "unbounded (formulation bug)"
    | Lp.Milp.Node_limit -> Solver_failure "node limit"
    | Lp.Milp.Optimal ->
        let xsol = r.Lp.Milp.x in
        let blends =
          Array.map
            (fun (t : Dag.Graph.task) ->
              let fr = sc.Scenario.frontiers.(t.tid) in
              if Array.length fr = 0 then []
              else begin
                let a = ref (-1) in
                Array.iteri (fun i tid -> if tid = t.tid then a := i) tids;
                let raw =
                  Array.to_list
                    (Array.mapi (fun k pt -> (pt, xsol.(c.(!a).(k)))) fr)
                  |> List.filter (fun (_, w) -> w > 1e-9)
                in
                let total = List.fold_left (fun s (_, w) -> s +. w) 0.0 raw in
                if total <= 0.0 then [ (Pareto.Frontier.slowest fr, 1.0) ]
                else List.map (fun (pt, w) -> (pt, w /. total)) raw
              end)
            g.Dag.Graph.tasks
        in
        Schedule
          {
            objective = r.Lp.Milp.objective;
            blends;
            stats =
              {
                binaries = !nbin;
                rows = p.Lp.Model.nr;
                cols = p.Lp.Model.nv;
                nodes = r.Lp.Milp.nodes;
                relaxation = r.Lp.Milp.relaxation;
              };
          }
  end
