(** First-class optimization objectives for the event LP.

    The paper's mode minimizes makespan under a job power cap; the
    related-work mode (Aupy et al.) minimizes energy under a deadline.
    Both share one constraint matrix — the energy mode adds exactly one
    deadline row and swaps the objective vector — so warm starts and
    structural edits carry across modes (see
    {!Event_lp.switch_objective}). *)

type mode =
  | Makespan_under_cap
      (** minimize the Finalize vertex time; the power-row RHS is the
          sweep variable (equation (1) of the paper) *)
  | Energy_under_deadline of { deadline : float }
      (** minimize [sum power x duration] over the chosen configuration
          blends, subject to the makespan not exceeding [deadline]
          (seconds).  The job power cap still applies at every event. *)

val equal : mode -> mode -> bool
(** Tag and (bit-level) deadline equality. *)

val is_energy : mode -> bool
val pp : Format.formatter -> mode -> unit

val unit : mode -> string
(** Unit label of the objective value: ["s"] or ["J"]. *)

val digest_fold : Putil.Hashing.t -> mode -> unit
(** Feed the mode's canonical encoding to a hasher.  Cache keys include
    it so artifacts never cross objective modes. *)
