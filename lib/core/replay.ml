(** Replay of an LP/ILP-derived schedule on the simulated cluster
    (Section 6.1): each task runs the configuration blend the schedule
    prescribes; configuration changes cost a DVFS transition and are
    skipped for tasks shorter than the 1 ms threshold. *)

type validation = {
  result : Simulate.Engine.result;
  lp_makespan : float;
  replay_makespan : float;
  max_power : float;
  power_cap : float;
  within_cap : bool;
  gap_pct : float;  (** replay vs LP makespan, percent *)
  objective_mode : Objective.mode;
  bound : float;  (** the LP optimum, in the objective's own unit *)
  achieved : float;
      (** the replay's value of the same objective: its makespan in
          makespan mode, its total energy in energy mode *)
  obj_gap_pct : float;  (** achieved vs bound, percent *)
  replay_energy : float;  (** total replayed energy, joules, either mode *)
}

let same_point (a : Pareto.Point.t) (b : Pareto.Point.t) =
  a.Pareto.Point.freq = b.Pareto.Point.freq
  && a.Pareto.Point.threads = b.Pareto.Point.threads

(** Simulation policy executing [schedule]. *)
let policy (sc : Scenario.t) (schedule : Event_lp.schedule) : Simulate.Policy.t
    =
  let decide (ctx : Simulate.Policy.decide_ctx) =
    let tid = ctx.Simulate.Policy.task.Dag.Graph.tid in
    let blend = schedule.Event_lp.blends.(tid) in
    match blend with
    | [] ->
        (* zero-work MPI transition *)
        let f = sc.Scenario.frontiers.(tid) in
        let pt =
          if Array.length f > 0 then Pareto.Frontier.slowest f
          else
            {
              Pareto.Point.freq = Machine.Dvfs.f_min;
              threads = 1;
              duration = 0.0;
              power = 0.0;
            }
        in
        { Simulate.Policy.blend = [ (pt, 1.0) ]; overhead = 0.0 }
    | (first, _) :: _ ->
        let expected = Pareto.Frontier.blend_duration blend in
        let switch_needed =
          match ctx.Simulate.Policy.prev with
          | Some prev -> not (same_point prev first)
          | None -> false
        in
        let overhead =
          if switch_needed && expected >= Machine.Overheads.replay_min_task
          then Machine.Overheads.dvfs_transition
          else 0.0
        in
        (* a two-segment blend is one more mid-task switch *)
        let overhead =
          if List.length blend > 1 && expected >= Machine.Overheads.replay_min_task
          then overhead +. Machine.Overheads.dvfs_transition
          else overhead
        in
        { Simulate.Policy.blend; overhead }
  in
  {
    Simulate.Policy.name = "lp-replay";
    decide;
    observe = ignore;
    pcontrol_overhead = 0.0;
  }

(** Replay [schedule] and verify it is realizable and within its power
    cap (transients shorter than 1 ms are ignored, as a real RAPL window
    would average them away). *)
let validate ?(tol = 0.02) (sc : Scenario.t) (schedule : Event_lp.schedule)
    ~power_cap : validation =
  (* The LP's vertex times are part of the schedule: its power argument
     (fixed event order, equations (12)-(13)) only holds if events fire
     no earlier than the LP placed them. *)
  let release v = schedule.Event_lp.vertex_time.(v) in
  let result =
    Simulate.Engine.run ~slack_model:`Task_power ~release sc.Scenario.graph
      (policy sc schedule)
  in
  let max_power =
    Simulate.Engine.sustained_max_power ~ignore_below:1e-3 result
  in
  (* [makespan] equals [objective] bit-for-bit in makespan mode, so the
     historical makespan-relative fields are unchanged there. *)
  let bound = schedule.Event_lp.objective in
  let achieved =
    match schedule.Event_lp.objective_mode with
    | Objective.Makespan_under_cap -> result.Simulate.Engine.makespan
    | Objective.Energy_under_deadline _ -> result.Simulate.Engine.energy
  in
  {
    result;
    lp_makespan = schedule.Event_lp.makespan;
    replay_makespan = result.Simulate.Engine.makespan;
    max_power;
    power_cap;
    within_cap = max_power <= power_cap *. (1.0 +. tol) +. 1e-6;
    gap_pct =
      ((result.Simulate.Engine.makespan /. schedule.Event_lp.makespan) -. 1.0)
      *. 100.0;
    objective_mode = schedule.Event_lp.objective_mode;
    bound;
    achieved;
    obj_gap_pct = ((achieved /. bound) -. 1.0) *. 100.0;
    replay_energy = result.Simulate.Engine.energy;
  }

(* ------------------------------------------------------------------ *)
(* Slack reclamation                                                   *)
(* ------------------------------------------------------------------ *)

type reclaim_report = {
  reclaimed : Event_lp.schedule;
  tasks_stretched : int;
  base_energy_j : float;
  reclaimed_j : float;
  reclaimed_pct : float;
}

let blend_energy (blend : Pareto.Frontier.blend) =
  List.fold_left
    (fun acc ((p : Pareto.Point.t), w) ->
      acc +. (w *. p.Pareto.Point.duration *. p.Pareto.Point.power))
    0.0 blend

(** Slack reclamation (after Aupy et al.): with the LP's vertex times —
    and hence the makespan and the event-order power argument — held
    fixed, re-blend every task at the cheapest hull blend of duration
    [min window slowest] and keep the result only when it strictly
    lowers the task's energy (frontier energy [power x duration] need
    not be monotone along the hull).  The slack is usually not a loose
    precedence row: the simplex lands on vertices where every row is
    tight, and pads a short task's conv row with {e non-adjacent} hull
    points instead — same duration, more joules than the hull
    interpolation.  Re-blending at the window moves the task onto (or
    down) the hull, so no segment of the new blend draws more power
    than the old blend's hottest segment: the cap can never become
    violated, and the makespan is untouched by construction. *)
let reclaim (sc : Scenario.t) (schedule : Event_lp.schedule) : reclaim_report =
  let g = sc.Scenario.graph in
  let vt = schedule.Event_lp.vertex_time in
  let blends = Array.copy schedule.Event_lp.blends in
  let stretched = ref 0 in
  let base = ref 0.0 and saved = ref 0.0 in
  Array.iteri
    (fun tid (t : Dag.Graph.task) ->
      let blend = blends.(tid) in
      let f = sc.Scenario.frontiers.(tid) in
      if blend <> [] && Array.length f > 0 then begin
        let e0 = blend_energy blend in
        base := !base +. e0;
        let window =
          vt.(t.Dag.Graph.t_dst) -. vt.(t.Dag.Graph.t_src)
          -. g.Dag.Graph.vertices.(t.Dag.Graph.t_dst).Dag.Graph.delay
        in
        let dur = Pareto.Frontier.blend_duration blend in
        let blend' =
          match schedule.Event_lp.mode with
          | Event_lp.Continuous ->
              let target =
                Float.min
                  (Float.max dur window)
                  (Pareto.Frontier.slowest f).Pareto.Point.duration
              in
              let power =
                Pareto.Frontier.power_for_duration f ~duration:target
              in
              Pareto.Frontier.interpolate f ~power
          | Event_lp.Discrete_rounded ->
              (* single-configuration schedules stretch to the most
                 frugal hull point that still fits the window; never to
                 a faster (hotter) point, so the cap argument holds *)
              let best = ref blend in
              let best_e = ref e0 in
              Array.iter
                (fun (p : Pareto.Point.t) ->
                  let e = p.Pareto.Point.duration *. p.Pareto.Point.power in
                  if
                    p.Pareto.Point.duration >= dur -. 1e-12
                    && p.Pareto.Point.duration <= window
                    && e < !best_e
                  then begin
                    best := [ (p, 1.0) ];
                    best_e := e
                  end)
                f;
              !best
        in
        let e1 = blend_energy blend' in
        if e1 < e0 -. 1e-12 then begin
          blends.(tid) <- blend';
          incr stretched;
          saved := !saved +. (e0 -. e1)
        end
      end)
    g.Dag.Graph.tasks;
  Lp.Stats.note_reclaim ~base_j:!base ~reclaimed_j:!saved;
  let lp_energy =
    Array.fold_left (fun acc b -> acc +. blend_energy b) 0.0 blends
  in
  {
    reclaimed = { schedule with Event_lp.blends; lp_energy };
    tasks_stretched = !stretched;
    base_energy_j = !base;
    reclaimed_j = !saved;
    reclaimed_pct = (if !base > 0.0 then 100.0 *. !saved /. !base else 0.0);
  }
