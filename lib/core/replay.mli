(** Replay of an LP/ILP-derived schedule on the simulated cluster
    (paper Section 6.1): each task runs its prescribed configuration
    blend; configuration changes cost a DVFS transition and are skipped
    for tasks under the 1 ms threshold. *)

type validation = {
  result : Simulate.Engine.result;
  lp_makespan : float;
  replay_makespan : float;
  max_power : float;  (** sustained (1 ms window) *)
  power_cap : float;
  within_cap : bool;
  gap_pct : float;  (** replay vs LP makespan, percent *)
  objective_mode : Objective.mode;
  bound : float;  (** the LP optimum, in the objective's own unit *)
  achieved : float;
      (** the replay's value of the same objective: its makespan in
          makespan mode, its total energy in energy mode *)
  obj_gap_pct : float;  (** achieved vs bound, percent *)
  replay_energy : float;  (** total replayed energy, joules, either mode *)
}

val policy : Scenario.t -> Event_lp.schedule -> Simulate.Policy.t

val validate :
  ?tol:float -> Scenario.t -> Event_lp.schedule -> power_cap:float -> validation

(** {2 Slack reclamation} *)

type reclaim_report = {
  reclaimed : Event_lp.schedule;
      (** same vertex times, stretched blends, updated [lp_energy] *)
  tasks_stretched : int;
  base_energy_j : float;  (** task energy before the pass *)
  reclaimed_j : float;
  reclaimed_pct : float;  (** [100 * reclaimed_j / base_energy_j] *)
}

val blend_energy : Pareto.Frontier.blend -> float
(** [sum weight x duration x power] over the blend, joules. *)

val reclaim : Scenario.t -> Event_lp.schedule -> reclaim_report
(** Slack reclamation (after Aupy et al.): holding the schedule's vertex
    times — and hence its makespan and event-order power argument —
    fixed, re-blend each task at the cheapest hull blend filling its
    precedence window (capped at the frontier's slowest duration),
    keeping a re-blend only when it strictly lowers that task's energy.
    The slack is usually hidden {e inside} the blend — the simplex pads
    short tasks with non-adjacent hull points at the window's exact
    duration — rather than in a loose precedence row.  Never increases
    the makespan, never raises any task segment's power (blends only
    move onto or down the convex hull), and monotonically lowers total
    energy.  Counted in {!Lp.Stats} as a reclaim pass. *)
