(** One configuration of a task: a DVFS state and thread count, with the
    (duration, power) it induces on a given socket. *)

type t = { freq : float; threads : int; duration : float; power : float }

val make :
  ?params:Machine.Socket.params ->
  Machine.Socket.t ->
  Machine.Profile.t ->
  freq:float ->
  threads:int ->
  t

val dominates : t -> t -> bool
(** [dominates a b]: [a] is at least as good in both time and power, and
    strictly better in one. *)

val equal : t -> t -> bool
(** Structural (bit-level float) equality. *)

val digest_fold : Putil.Hashing.t -> t -> unit
(** Feed the point's canonical encoding to a hasher (cache keys). *)

val pp : Format.formatter -> t -> unit
