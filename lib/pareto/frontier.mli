(** Pareto frontiers of task configurations.

    The LP formulation needs, for every task, a configuration set that is
    Pareto-efficient {e and convex} in the (power, time) plane (paper
    Section 3.2): convexity is what keeps the formulation purely linear.
    [convex] computes the lower convex hull of the non-dominated
    configurations. *)

type t = Point.t array
(** Hull points sorted by power ascending, duration strictly
    descending. *)

val enumerate :
  ?params:Machine.Socket.params ->
  Machine.Socket.t ->
  Machine.Profile.t ->
  Point.t array
(** Every (ladder frequency × thread count) configuration. *)

val pareto : Point.t array -> Point.t array
(** Non-dominated subset, sorted by power (not necessarily convex). *)

val convex_of_points : Point.t array -> t
(** Lower convex hull of the Pareto frontier of arbitrary points. *)

val convex :
  ?params:Machine.Socket.params -> Machine.Socket.t -> Machine.Profile.t -> t
(** [convex socket profile] = hull of [enumerate socket profile]. *)

val equal : t -> t -> bool
(** Structural (bit-level float) equality of the hulls. *)

val digest_fold : Putil.Hashing.t -> t -> unit
(** Feed the hull's canonical encoding to a hasher (cache keys). *)

val memo_key :
  ?params:Machine.Socket.params ->
  Machine.Socket.t ->
  Machine.Profile.t ->
  string
(** The content key {!convex_memo} caches under: machine parameters,
    socket efficiency (not id) and profile. *)

val convex_memo :
  ?params:Machine.Socket.params -> Machine.Socket.t -> Machine.Profile.t -> t
(** {!convex} through the process-wide frontier cache: equal inputs
    return one physically shared (immutable) hull array.  Falls back to
    a fresh {!convex} when caching is disabled ({!Putil.Cache.enabled}). *)

val min_power : t -> float
val max_power : t -> float

val fastest : t -> Point.t
(** Highest-power, shortest-duration hull point. *)

val slowest : t -> Point.t
(** Most frugal hull point. *)

val best_under_power : t -> budget:float -> Point.t option
(** Fastest single configuration whose power fits [budget]. *)

type blend = (Point.t * float) list
(** Convex combination of hull configurations (the paper's continuous
    case, realized by switching configuration mid-task).  Weights sum
    to 1. *)

val blend_power : blend -> float
val blend_duration : blend -> float

val interpolate : t -> power:float -> blend
(** Fastest blend with average power exactly [power] (clamped to the
    hull's range): at most two adjacent hull points. *)

val duration_at_power : t -> power:float -> float
(** Duration of [interpolate ~power]. *)

val power_for_duration : t -> duration:float -> float
(** Inverse of {!duration_at_power}: smallest average power achieving
    [duration] (clamped). *)

val round_nearest : t -> power:float -> Point.t
(** Hull configuration with power closest to the target (the paper's
    discrete rounding). *)

val round_down : t -> power:float -> Point.t
(** Hull configuration that never exceeds the target power. *)

val pp : Format.formatter -> t -> unit
