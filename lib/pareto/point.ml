(** One configuration of a task: a DVFS state and a thread count, with
    the (duration, power) it induces on a given socket. *)

type t = { freq : float; threads : int; duration : float; power : float }

let make ?(params = Machine.Socket.default_params) socket profile ~freq
    ~threads =
  {
    freq;
    threads;
    duration = Machine.Profile.duration profile ~freq ~threads;
    power =
      Machine.Socket.power ~params socket ~freq ~threads
        ~mem_bound:profile.Machine.Profile.mem_bound;
  }

(** [dominates a b]: [a] is at least as good as [b] in both time and
    power, and strictly better in one. *)
let dominates a b =
  a.duration <= b.duration && a.power <= b.power
  && (a.duration < b.duration || a.power < b.power)

let equal a b =
  Float.equal a.freq b.freq
  && a.threads = b.threads
  && Float.equal a.duration b.duration
  && Float.equal a.power b.power

let digest_fold h t =
  Putil.Hashing.float h t.freq;
  Putil.Hashing.int h t.threads;
  Putil.Hashing.float h t.duration;
  Putil.Hashing.float h t.power

let pp ppf t =
  Fmt.pf ppf "%.1fGHz/%dthr: %.4gs at %.4gW" t.freq t.threads t.duration
    t.power
