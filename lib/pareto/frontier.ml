(** Pareto frontiers of task configurations.

    The LP formulation requires, for every task, a set of configurations
    that is Pareto-efficient {e and convex} in the (power, time) plane
    (Section 3.2 of the paper): without convexity the piecewise-linear
    relaxation would admit blends that beat every real configuration and
    the formulation would have to go mixed-integer.  [convex] computes
    the lower convex hull of the non-dominated configurations, sorted by
    increasing power (and thus decreasing duration). *)

type t = Point.t array
(** Hull points sorted by power ascending, duration strictly
    descending. *)

(** Every (ladder frequency × thread count) configuration. *)
let enumerate ?(params = Machine.Socket.default_params) socket profile =
  let pts = ref [] in
  for threads = params.Machine.Socket.cores downto 1 do
    Array.iter
      (fun freq ->
        pts := Point.make ~params socket profile ~freq ~threads :: !pts)
      Machine.Dvfs.ladder
  done;
  Array.of_list !pts

(** Non-dominated subset (time/power Pareto frontier, not necessarily
    convex). *)
let pareto (pts : Point.t array) : Point.t array =
  let keep =
    Array.to_list pts
    |> List.filter (fun p ->
           not (Array.exists (fun q -> q != p && Point.dominates q p) pts))
  in
  (* Deduplicate identical (duration, power) pairs. *)
  let sorted =
    List.sort
      (fun (a : Point.t) b ->
        match compare a.power b.power with
        | 0 -> compare a.duration b.duration
        | c -> c)
      keep
  in
  let rec dedup = function
    | a :: b :: rest ->
        if
          Float.abs (a.Point.power -. b.Point.power) < 1e-12
          && Float.abs (a.Point.duration -. b.Point.duration) < 1e-12
        then dedup (a :: rest)
        else a :: dedup (b :: rest)
    | l -> l
  in
  Array.of_list (dedup sorted)

(** Lower convex hull of the Pareto frontier in the (power, duration)
    plane: the configuration set handed to the LP. *)
let convex_of_points (pts : Point.t array) : t =
  let pf = pareto pts in
  let n = Array.length pf in
  if n <= 2 then pf
  else begin
    (* Monotone chain, keeping the hull below the chords.  Points are
       sorted by power ascending with duration descending. *)
    let hull = Array.make n pf.(0) in
    let top = ref 0 in
    hull.(0) <- pf.(0);
    for i = 1 to n - 1 do
      let p = pf.(i) in
      let turns_up () =
        if !top < 1 then false
        else begin
          let a = hull.(!top - 1) and b = hull.(!top) in
          (* cross product of (b - a) x (p - a) in (power, duration);
             keep the hull convex from below: pop while not a right
             turn. *)
          let cross =
            ((b.Point.power -. a.Point.power)
            *. (p.Point.duration -. a.Point.duration))
            -. ((b.Point.duration -. a.Point.duration)
               *. (p.Point.power -. a.Point.power))
          in
          cross <= 1e-12
        end
      in
      while !top >= 1 && turns_up () do
        decr top
      done;
      incr top;
      hull.(!top) <- p
    done;
    Array.sub hull 0 (!top + 1)
  end

let convex ?(params = Machine.Socket.default_params) socket profile : t =
  convex_of_points (enumerate ~params socket profile)

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i p -> if not (Point.equal p b.(i)) then ok := false) a;
       !ok
     end

let digest_fold h (f : t) =
  Putil.Hashing.int h (Array.length f);
  Array.iter (Point.digest_fold h) f

(* ------------------------------------------------------------------ *)
(* Memoized construction: the frontier-enumeration stage of the build
   pipeline.  The key is derived from everything [convex] reads — the
   machine parameters, the socket's efficiency (not its id: equally
   efficient parts have identical frontiers) and the task profile — so
   equal inputs share one physical hull array.  Frontiers are treated as
   immutable by the whole system; callers must not mutate a memoized
   array. *)

let memo_key ?(params = Machine.Socket.default_params) (socket : Machine.Socket.t)
    profile =
  let h = Putil.Hashing.create () in
  Machine.Socket.params_digest_fold h params;
  Putil.Hashing.float h socket.Machine.Socket.eff;
  Machine.Profile.digest_fold h profile;
  Putil.Hashing.hex h

let memo : t Putil.Cache.t = Putil.Cache.create ~capacity:1024 ~name:"frontier" ()

let convex_memo ?(params = Machine.Socket.default_params) socket profile : t =
  Putil.Cache.find_or_build memo
    (memo_key ~params socket profile)
    (fun () -> convex ~params socket profile)

let min_power (f : t) = f.(0).Point.power
let max_power (f : t) = f.(Array.length f - 1).Point.power
let fastest (f : t) = f.(Array.length f - 1)
let slowest (f : t) = f.(0)

(** Fastest single (discrete) configuration whose power fits [budget];
    [None] when even the frugal end of the frontier exceeds the budget. *)
let best_under_power (f : t) ~budget =
  let best = ref None in
  Array.iter
    (fun (p : Point.t) ->
      if p.power <= budget +. 1e-9 then
        match !best with
        | Some (q : Point.t) when q.duration <= p.duration -> ()
        | _ -> best := Some p)
    f;
  !best

(** A blend of (at most two adjacent) hull configurations: the continuous
    configurations of Section 3.2, realized by switching mid-task. *)
type blend = (Point.t * float) list

let blend_power (b : blend) =
  List.fold_left (fun acc (p, w) -> acc +. (w *. p.Point.power)) 0.0 b

let blend_duration (b : blend) =
  List.fold_left (fun acc (p, w) -> acc +. (w *. p.Point.duration)) 0.0 b

(** Blend with average power exactly [power] (clamped to the frontier's
    power range), fastest possible: interpolates between the two adjacent
    hull points bracketing [power]. *)
let interpolate (f : t) ~power : blend =
  let n = Array.length f in
  if n = 0 then invalid_arg "Frontier.interpolate: empty frontier";
  if power <= f.(0).Point.power then [ (f.(0), 1.0) ]
  else if power >= f.(n - 1).Point.power then [ (f.(n - 1), 1.0) ]
  else begin
    let k = ref 0 in
    while f.(!k + 1).Point.power < power do
      incr k
    done;
    let a = f.(!k) and b = f.(!k + 1) in
    let span = b.Point.power -. a.Point.power in
    if span <= 1e-12 then [ (b, 1.0) ]
    else begin
      let wb = (power -. a.Point.power) /. span in
      [ (a, 1.0 -. wb); (b, wb) ]
    end
  end

(** Duration of the fastest blend at average power [power] (piecewise
    linear in [power], clamped to the frontier's range). *)
let duration_at_power (f : t) ~power = blend_duration (interpolate f ~power)

(** Inverse of [duration_at_power]: smallest average power achieving
    [duration] (clamped to the frontier's range).  Used by runtimes to
    answer "how many watts does this rank need to finish in time?". *)
let power_for_duration (f : t) ~duration : float =
  let n = Array.length f in
  if n = 0 then invalid_arg "Frontier.power_for_duration: empty frontier";
  if duration >= f.(0).Point.duration then f.(0).Point.power
  else if duration <= f.(n - 1).Point.duration then f.(n - 1).Point.power
  else begin
    (* durations descend with index; find the bracketing segment *)
    let k = ref 0 in
    while f.(!k + 1).Point.duration > duration do
      incr k
    done;
    let a = f.(!k) and b = f.(!k + 1) in
    let span = a.Point.duration -. b.Point.duration in
    if span <= 1e-12 then a.Point.power
    else begin
      let wb = (a.Point.duration -. duration) /. span in
      a.Point.power +. (wb *. (b.Point.power -. a.Point.power))
    end
  end

(** Discrete rounding of a target power: the hull configuration whose
    power is closest to [power] (the paper's rounding rule for the
    discrete case). *)
let round_nearest (f : t) ~power : Point.t =
  let best = ref f.(0) and d = ref Float.infinity in
  Array.iter
    (fun (p : Point.t) ->
      let dd = Float.abs (p.power -. power) in
      if dd < !d then begin
        d := dd;
        best := p
      end)
    f;
  !best

(** Discrete rounding that never exceeds the target power (falls back to
    the frugal end of the hull). *)
let round_down (f : t) ~power : Point.t =
  match best_under_power f ~budget:power with Some p -> p | None -> f.(0)

let pp ppf (f : t) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(array ~sep:cut Point.pp) f
