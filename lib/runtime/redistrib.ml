(** Redistribution-aware runtime (after Medhat et al.): usage-driven
    power shifting between ranks.

    Where {!Conductor} translates estimated slack into watts through
    each donor rank's profiled frontier, this runtime trusts the power
    {e meters} instead of the model: at every [MPI_Pcontrol] epoch it
    measures each rank's actually drawn power, reclaims a fraction of
    the budget the rank did not use (budget minus measured draw minus a
    headroom), and grants the pooled watts to the ranks whose (noisy)
    busy-time estimates mark them critical, proportionally to their
    excess over the mean.  Watts no critical rank can absorb return
    uniformly, so the job-level cap is conserved exactly.

    The scheme is simpler than Conductor's — no frontier inversion, no
    stretch targets — which makes it robust when profiles are wrong,
    and an interesting foil for the energy objective: unused budget is
    exactly the slack the LP's reclamation pass converts into energy
    savings, so the two bound each other. *)

type knobs = {
  explore_iters : int;  (** iterations spent profiling, Static-like *)
  reclaim_frac : float;
      (** fraction of a rank's measured unused watts reclaimed per
          epoch; 1.0 = take all of it at once (aggressive) *)
  headroom_w : float;  (** watts every rank keeps above its measured draw *)
  est_noise : float;  (** relative error on busy-time estimates *)
  seed : int;
}

let default_knobs =
  { explore_iters = 3; reclaim_frac = 0.7; headroom_w = 1.0; est_noise = 0.012; seed = 11 }

type state = {
  caps : float array;  (** current per-rank power budget *)
  rng : Random.State.t;
  mutable steps : int;
}

let cap_floor = 19.0 (* below this no configuration fits; never starve *)

let decide (sc : Core.Scenario.t) (st : state) knobs
    (ctx : Simulate.Policy.decide_ctx) : Simulate.Policy.decision =
  let t = ctx.Simulate.Policy.task in
  let cap = st.caps.(t.rank) in
  let frontier = sc.Core.Scenario.frontiers.(t.tid) in
  let blend =
    if Array.length frontier = 0 then [ (Static.point_for sc ~cap t, 1.0) ]
    else if t.iteration >= 0 && t.iteration < knobs.explore_iters then
      [ (Static.point_for sc ~cap t, 1.0) ]
    else
      match Pareto.Frontier.best_under_power frontier ~budget:cap with
      | None -> [ (Static.point_for sc ~cap t, 1.0) ]
      | Some best -> [ (best, 1.0) ]
  in
  let switch =
    match (ctx.Simulate.Policy.prev, blend) with
    | Some prev, (p, _) :: _ ->
        prev.Pareto.Point.freq <> p.Pareto.Point.freq
        || prev.Pareto.Point.threads <> p.Pareto.Point.threads
    | _ -> false
  in
  {
    Simulate.Policy.blend;
    overhead = (if switch then Machine.Overheads.conductor_per_task else 0.0);
  }

(* Highest power any task of [rank] could usefully consume. *)
let rank_cap_max (sc : Core.Scenario.t) rank =
  let worst = ref 0.0 in
  Array.iteri
    (fun tid f ->
      if
        Array.length f > 0
        && sc.Core.Scenario.graph.Dag.Graph.tasks.(tid).Dag.Graph.rank = rank
      then worst := max !worst (Pareto.Frontier.max_power f))
    sc.Core.Scenario.frontiers;
  !worst

let observe (sc : Core.Scenario.t) (st : state) knobs
    (obs : Simulate.Policy.observation) =
  st.steps <- st.steps + 1;
  if obs.Simulate.Policy.iteration >= knobs.explore_iters - 1 then begin
    let n = Array.length st.caps in
    let window = obs.Simulate.Policy.window in
    if window > 0.0 then begin
      (* noisy busy-time estimates mark the critical ranks *)
      let est =
        Array.map
          (fun b ->
            b
            *. (1.0
               +. (knobs.est_noise *. (Random.State.float st.rng 2.0 -. 1.0))))
          obs.Simulate.Policy.rank_busy
      in
      let mean = Array.fold_left ( +. ) 0.0 est /. Float.of_int n in
      (* reclaim: unused watts are whatever the meter says the rank did
         not draw, beyond its headroom; donors are only ranks that also
         have schedule slack, so a fully-busy rank is never squeezed *)
      let freed = ref 0.0 in
      for r = 0 to n - 1 do
        if est.(r) < mean then begin
          let used = obs.Simulate.Policy.rank_power.(r) in
          let unused = st.caps.(r) -. used -. knobs.headroom_w in
          if unused > 0.0 then begin
            let give =
              Float.min (knobs.reclaim_frac *. unused)
                (st.caps.(r) -. cap_floor)
            in
            if give > 0.0 then begin
              st.caps.(r) <- st.caps.(r) -. give;
              freed := !freed +. give
            end
          end
        end
      done;
      (* grant: critical ranks absorb the pool proportionally to their
         estimated excess, bounded by what their frontiers can use *)
      let excess = Array.map (fun e -> max 0.0 (e -. mean)) est in
      let total_excess = Array.fold_left ( +. ) 0.0 excess in
      let leftover = ref 0.0 in
      if total_excess > 0.0 && !freed > 0.0 then
        for r = 0 to n - 1 do
          if excess.(r) > 0.0 then begin
            let want = !freed *. excess.(r) /. total_excess in
            let cap_max = rank_cap_max sc r in
            let cap_max = if cap_max > 0.0 then cap_max else st.caps.(r) in
            let grant = min want (max 0.0 (cap_max -. st.caps.(r))) in
            st.caps.(r) <- st.caps.(r) +. grant;
            leftover := !leftover +. (want -. grant)
          end
        done
      else leftover := !freed;
      (* watts nobody could absorb return uniformly: cap conserved *)
      if !leftover > 1e-9 then begin
        let share = !leftover /. Float.of_int n in
        for r = 0 to n - 1 do
          st.caps.(r) <- st.caps.(r) +. share
        done
      end
    end
  end

(** Redistribution policy under [job_cap] watts for the whole job. *)
let policy ?(knobs = default_knobs) (sc : Core.Scenario.t) ~job_cap :
    Simulate.Policy.t =
  let n = sc.Core.Scenario.graph.Dag.Graph.nranks in
  let st =
    {
      caps = Array.make n (job_cap /. Float.of_int n);
      rng = Random.State.make [| knobs.seed; 0x5ed |];
      steps = 0;
    }
  in
  {
    Simulate.Policy.name = "redistrib";
    decide = decide sc st knobs;
    observe = observe sc st knobs;
    pcontrol_overhead = Machine.Overheads.reallocation_per_step;
  }

(** Run an application under the redistribution runtime. *)
let run ?knobs (sc : Core.Scenario.t) ~job_cap =
  Simulate.Engine.run sc.Core.Scenario.graph (policy ?knobs sc ~job_cap)
