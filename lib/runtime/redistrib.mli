(** Redistribution-aware runtime (after Medhat et al.): at every
    [MPI_Pcontrol] epoch, each rank's {e measured} unused watts (budget
    minus drawn power minus a headroom) are pooled and granted to the
    ranks whose noisy busy-time estimates mark them critical; watts
    nobody can absorb return uniformly, conserving the job cap exactly.
    Unlike {!Conductor}, no frontier model is inverted — the scheme is
    purely usage-driven, which makes it robust to wrong profiles. *)

type knobs = {
  explore_iters : int;  (** iterations spent profiling, Static-like *)
  reclaim_frac : float;
      (** fraction of a rank's measured unused watts reclaimed per
          epoch; 1.0 = take all of it at once (aggressive) *)
  headroom_w : float;  (** watts every rank keeps above its measured draw *)
  est_noise : float;  (** relative error on busy-time estimates *)
  seed : int;
}

val default_knobs : knobs

val policy :
  ?knobs:knobs -> Core.Scenario.t -> job_cap:float -> Simulate.Policy.t

val run :
  ?knobs:knobs -> Core.Scenario.t -> job_cap:float -> Simulate.Engine.result
