(** Domain-safe, size-bounded, content-keyed artifact cache.

    Each cache memoizes one artifact type under string keys that the
    caller derives from the {e content} of the inputs (see {!Hashing}),
    so a hit is exactly "this value was already computed from equal
    inputs" — keys are structural, never positional.  Used by the stage
    pipeline (graphs, scenarios, prepared LPs) and the Pareto-frontier
    builder.

    Concurrency: all operations are safe from any domain.  A key being
    built is {e single-flight}: the first caller runs the builder while
    concurrent callers for the same key block until the value lands, so
    N pool workers asking for the same artifact compute it once.  A
    builder that raises releases the key (waiters retry, typically
    becoming the builder themselves) and caches nothing.

    Bounding: each cache holds at most [capacity] entries; inserting
    beyond that evicts the least-recently-used entry.  Eviction affects
    only what is remembered, never the values returned, so results are
    byte-identical at any capacity — and with the cache disabled
    entirely ([POWERLIM_CACHE=0], or {!set_enabled}[ false], when every
    lookup just runs its builder).

    Counters: per-cache and process-wide hit/miss/evict counts, reported
    in the style of {!Lp.Stats} (reset / snapshot / pp). *)

type 'a t

type stats = { hits : int; misses : int; evictions : int }

val enabled : unit -> bool
(** Initially from the environment: [POWERLIM_CACHE=0] (or [false],
    [off], [no]) disables caching; anything else enables it. *)

val set_enabled : bool -> unit
(** Process-wide override of {!enabled} (the [--no-cache] CLI flag). *)

val create :
  ?capacity:int ->
  ?spill:(string -> 'a -> unit) ->
  ?revive:(string -> 'a option) ->
  name:string ->
  unit ->
  'a t
(** A new cache holding at most [capacity] (default 64, clamped to
    [>= 1]) entries.  [name] labels it in the registry ({!totals} spans
    all created caches).

    [spill] and [revive] connect a next (persistent) tier, typically
    {!Disk_store} behind a serializer: an evicted entry is handed to
    [spill] (outside the cache lock), and a miss consults [revive]
    before running the builder — still single-flight, so N concurrent
    requests for one key do at most one revive-or-build.  Both hooks
    are best-effort: an exception from [spill] is swallowed and one
    from [revive] reads as a miss, so a broken persistent tier degrades
    to "no tier" rather than failing lookups. *)

val set_tier :
  'a t -> ?spill:(string -> 'a -> unit) -> ?revive:(string -> 'a option) ->
  unit -> unit
(** Replace both tier hooks (an omitted hook is removed).  Lets a
    long-lived service attach its disk store to caches created at
    module-initialization time. *)

val find_or_build : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_build t key build] returns the cached value for [key],
    waiting out a concurrent in-flight build of the same key, or runs
    [build ()] and caches its result.  With caching disabled it simply
    runs [build ()] (and counts nothing). *)

val find_or_build_where :
  'a t -> string -> (unit -> 'a) -> 'a * [ `Hit | `Revived | `Built ]
(** Like {!find_or_build}, also reporting where the value came from:
    resident in this cache ([`Hit]), revived from the next tier
    ([`Revived]) or built ([`Built]).  Both tier outcomes count as a
    miss in this cache's counters — the disk tier keeps its own. *)

val length : 'a t -> int
(** Number of resident entries (always [<= capacity]). *)

val clear : 'a t -> unit
(** Drop every resident entry (counters are kept; in-flight builds are
    unaffected and will land normally). *)

val stats : 'a t -> stats

val reset_stats : 'a t -> unit

(** {2 Process-wide registry} *)

val totals : unit -> stats
(** Summed counters of every cache created so far. *)

val reset_all_stats : unit -> unit

val clear_all : unit -> unit

val pp_stats : Format.formatter -> stats -> unit
(** Renders as ["H hits, M misses, E evicted"]. *)

val pp_totals : Format.formatter -> unit -> unit
(** [pp_stats] of {!totals} — for the stderr reporting lines next to
    pool size and wall time. *)
