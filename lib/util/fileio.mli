(** Atomic file writes.

    Every exported artifact (traces, CSVs, benchmark JSON, disk-store
    entries) is written through [with_out]/[write]: the bytes land in a
    uniquely-named temporary file in the {e same directory} and are
    renamed into place only after the channel is closed.  POSIX rename
    within a directory is atomic, so a crash mid-write can leave stray
    temp debris but never a torn file under the final name — which is
    what makes the on-disk artifact store ({!Disk_store}) restart-safe,
    and what keeps half-written [BENCH_*.json] files from masquerading
    as results. *)

val with_out : string -> (out_channel -> 'a) -> 'a
(** [with_out path f] opens a temp file next to [path], runs [f] on its
    channel, closes it and renames it to [path].  If [f] raises, the
    temp file is removed, [path] is untouched and the exception is
    re-raised. *)

val write : string -> string -> unit
(** [write path s] atomically replaces [path]'s contents with [s]. *)

val read : string -> string
(** Whole-file read (binary).  Raises [Sys_error] if unreadable. *)

val is_temp : string -> bool
(** Recognizes the temp-file naming scheme, so directory scans (e.g. the
    disk store opening after a crash) can identify and sweep debris. *)
