(** Atomic file writes: write-temp-then-rename.  See fileio.mli. *)

(* Distinct temp names even when several threads write the same target
   concurrently: pid + a process-wide counter. *)
let tmp_counter = Atomic.make 0

let tmp_marker = ".tmp-powerlim-"

let temp_name path =
  Printf.sprintf "%s%s%d.%d" path tmp_marker (Unix.getpid ())
    (Atomic.fetch_and_add tmp_counter 1)

let is_temp name =
  (* substring search, so both "x.art.tmp-powerlim-12.0" and any future
     suffix variants are recognized as debris *)
  let n = String.length name and m = String.length tmp_marker in
  let rec scan i =
    i + m <= n && (String.sub name i m = tmp_marker || scan (i + 1))
  in
  scan 0

let with_out path f =
  let tmp = temp_name path in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
  in
  match f oc with
  | v ->
      close_out oc;
      (* rename within one directory is atomic on POSIX: readers see
         either the old file or the complete new one, never a torn
         prefix *)
      Sys.rename tmp path;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      Printexc.raise_with_backtrace e bt

let write path s = with_out path (fun oc -> output_string oc s)

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
