(** POWERLIM_* environment knobs, read with validation.

    Every reader follows the same rules:

    - unset or empty ([""], after trimming whitespace) means {e use the
      default} — [Unix.putenv] cannot remove a variable, so the empty
      value is the portable way for tests and in-process benchmarks to
      return a knob to auto;
    - a malformed or out-of-range value is {e rejected}: the default is
      used and a warning naming the variable, the rejected value and
      the default is printed to stderr {e once per process per
      variable} (so a knob read on every solve does not spam);
    - flags accept [0]/[false]/[off]/[no] and [1]/[true]/[on]/[yes],
      case-insensitively.

    Values are re-read from the environment on every call, so tests can
    flip knobs between solves. *)

val flag : string -> default:bool -> bool

val int : ?lo:int -> ?hi:int -> string -> default:int -> int
(** Bounds are inclusive; a parsed value outside them is rejected. *)

val float : ?lo_exclusive:float -> string -> default:float -> float
(** Non-finite values are always rejected; [lo_exclusive] additionally
    requires the value to be strictly greater. *)

val explicit : string -> bool
(** The variable is set to a non-empty value (regardless of validity):
    distinguishes "user chose something" from "auto mode". *)

val rejected : unit -> (string * string) list
(** [(name, value)] of every knob rejection warned so far, oldest
    first — one entry per variable.  For tests and the serve stats. *)

val reset_warnings : unit -> unit
(** Forget warn-once state (tests only). *)
