(** Content-addressed on-disk artifact store.  See disk_store.mli. *)

type stats = {
  hits : int;
  misses : int;
  puts : int;
  evictions : int;
  entries : int;
  bytes : int;
}

type entry = { file : string; size : int; mutable last_use : int }

type t = {
  sroot : string;
  limit_bytes : int;  (** <= 0: unbounded *)
  mutex : Mutex.t;
  index : (string, entry) Hashtbl.t;  (** store key -> resident entry *)
  mutable tick : int;
  mutable total : int;  (** payload bytes resident, per the index *)
  h_hits : int Atomic.t;
  h_misses : int Atomic.t;
  h_puts : int Atomic.t;
  h_evictions : int Atomic.t;
}

(* ---- layout -------------------------------------------------------- *)

(* One artifact per file.  The name is derived from the key: a
   human-readable sanitized prefix (the pipeline stage) plus the MD5 of
   the full key, so names are filesystem-safe and collision-free
   without trusting the key's own spelling. *)
let file_of_key key =
  let stage =
    match String.index_opt key ':' with
    | Some i -> String.sub key 0 i
    | None -> "artifact"
  in
  let sane =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c | _ -> '_')
      (if String.length stage > 32 then String.sub stage 0 32 else stage)
  in
  Printf.sprintf "%s-%s.art" sane (Digest.to_hex (Digest.string key))

let suffix = ".art"

let has_suffix name =
  let n = String.length name and m = String.length suffix in
  n >= m && String.sub name (n - m) m = suffix

(* Artifact framing: a magic line and the payload digest, then the
   payload.  The rename-based write already prevents torn files under
   the final name; the digest additionally rejects artifacts truncated
   or corrupted by anything else (full disk at rename time, manual
   editing), turning them into clean misses. *)
let magic = "powerlim-store 1"

let frame payload =
  Printf.sprintf "%s\n%s\n%s" magic (Digest.to_hex (Digest.string payload))
    payload

let unframe s =
  let fail = None in
  match String.index_opt s '\n' with
  | None -> fail
  | Some i -> (
      if String.sub s 0 i <> magic then fail
      else
        match String.index_from_opt s (i + 1) '\n' with
        | None -> fail
        | Some j ->
            let digest = String.sub s (i + 1) (j - i - 1) in
            let payload = String.sub s (j + 1) (String.length s - j - 1) in
            if Digest.to_hex (Digest.string payload) = digest then Some payload
            else fail)

(* ---- registry (for the Obs stats provider) ------------------------ *)

let registry : t list ref = ref []
let registry_mutex = Mutex.create ()

(* ---- lifecycle ----------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let path_of t file = Filename.concat t.sroot file

let stats t =
  Mutex.lock t.mutex;
  let entries = Hashtbl.length t.index and bytes = t.total in
  Mutex.unlock t.mutex;
  {
    hits = Atomic.get t.h_hits;
    misses = Atomic.get t.h_misses;
    puts = Atomic.get t.h_puts;
    evictions = Atomic.get t.h_evictions;
    entries;
    bytes;
  }

(* Scan the root: sweep crash debris (temp files of interrupted writes),
   index every artifact by size, and seed the LRU order from mtimes so
   eviction across restarts still drops the coldest entries first. *)
let open_ ?(limit_bytes = 0) ~root () =
  mkdir_p root;
  let t =
    {
      sroot = root;
      limit_bytes;
      mutex = Mutex.create ();
      index = Hashtbl.create 64;
      tick = 0;
      total = 0;
      h_hits = Atomic.make 0;
      h_misses = Atomic.make 0;
      h_puts = Atomic.make 0;
      h_evictions = Atomic.make 0;
    }
  in
  let files = try Sys.readdir root with Sys_error _ -> [||] in
  let aged = ref [] in
  Array.iter
    (fun file ->
      let path = Filename.concat root file in
      if Fileio.is_temp file then (try Sys.remove path with Sys_error _ -> ())
      else if has_suffix file then
        match Unix.stat path with
        | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
            aged := (file, st_size, st_mtime) :: !aged
        | _ | (exception Unix.Unix_error _) -> ())
    files;
  List.iter
    (fun (file, size, _) ->
      t.tick <- t.tick + 1;
      t.total <- t.total + size;
      Hashtbl.replace t.index file { file; size; last_use = t.tick })
    (List.sort
       (fun (fa, _, ma) (fb, _, mb) ->
         match Float.compare ma mb with 0 -> compare fa fb | c -> c)
       !aged);
  Mutex.lock registry_mutex;
  registry := t :: !registry;
  Mutex.unlock registry_mutex;
  t

let root t = t.sroot

(* ---- eviction ------------------------------------------------------ *)

(* Under [t.mutex].  Returns the file names to unlink; the caller
   removes them after releasing the lock. *)
let evict_locked t =
  let victims = ref [] in
  if t.limit_bytes > 0 then
    while t.total > t.limit_bytes && Hashtbl.length t.index > 1 do
      let oldest = ref None in
      Hashtbl.iter
        (fun _ e ->
          match !oldest with
          | Some o when o.last_use <= e.last_use -> ()
          | _ -> oldest := Some e)
        t.index;
      match !oldest with
      | Some e ->
          Hashtbl.remove t.index e.file;
          t.total <- t.total - e.size;
          Atomic.incr t.h_evictions;
          victims := e.file :: !victims
      | None -> ()
    done;
  !victims

let unlink_all t files =
  List.iter
    (fun file -> try Sys.remove (path_of t file) with Sys_error _ -> ())
    files

(* ---- operations ---------------------------------------------------- *)

let put t key payload =
  let framed = frame payload in
  let size = String.length framed in
  if t.limit_bytes > 0 && size > t.limit_bytes then
    (* can never fit: storing it would just evict everything else *)
    ()
  else begin
    let file = file_of_key key in
    Fileio.write (path_of t file) framed;
    Mutex.lock t.mutex;
    (match Hashtbl.find_opt t.index file with
    | Some old -> t.total <- t.total - old.size
    | None -> ());
    t.tick <- t.tick + 1;
    t.total <- t.total + size;
    Hashtbl.replace t.index file { file; size; last_use = t.tick };
    Atomic.incr t.h_puts;
    let victims = evict_locked t in
    Mutex.unlock t.mutex;
    unlink_all t victims
  end

(* Drop a file that turned out unreadable or corrupt. *)
let invalidate t file =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.index file with
  | Some e ->
      Hashtbl.remove t.index file;
      t.total <- t.total - e.size
  | None -> ());
  Mutex.unlock t.mutex;
  try Sys.remove (path_of t file) with Sys_error _ -> ()

let get t key =
  let file = file_of_key key in
  Mutex.lock t.mutex;
  let known =
    match Hashtbl.find_opt t.index file with
    | Some e ->
        t.tick <- t.tick + 1;
        e.last_use <- t.tick;
        true
    | None -> false
  in
  Mutex.unlock t.mutex;
  (* On an index miss, probe the filesystem: another process sharing the
     directory may have stored the artifact after we opened. *)
  let present = known || Sys.file_exists (path_of t file) in
  if not present then begin
    Atomic.incr t.h_misses;
    None
  end
  else
    match Fileio.read (path_of t file) with
    | exception Sys_error _ ->
        (* raced with an eviction or an external cleanup *)
        Atomic.incr t.h_misses;
        None
    | raw -> (
        match unframe raw with
        | Some payload ->
            if not known then begin
              Mutex.lock t.mutex;
              if not (Hashtbl.mem t.index file) then begin
                t.tick <- t.tick + 1;
                t.total <- t.total + String.length raw;
                Hashtbl.replace t.index file
                  { file; size = String.length raw; last_use = t.tick }
              end;
              let victims = evict_locked t in
              Mutex.unlock t.mutex;
              unlink_all t victims
            end;
            Atomic.incr t.h_hits;
            Some payload
        | None ->
            (* torn or corrupt: a clean miss, and the debris goes away *)
            invalidate t file;
            Atomic.incr t.h_misses;
            None)

let mem t key =
  Mutex.lock t.mutex;
  let known = Hashtbl.mem t.index (file_of_key key) in
  Mutex.unlock t.mutex;
  known || Sys.file_exists (path_of t (file_of_key key))

let entries t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.index in
  Mutex.unlock t.mutex;
  n

let total_bytes t =
  Mutex.lock t.mutex;
  let n = t.total in
  Mutex.unlock t.mutex;
  n

let clear t =
  Mutex.lock t.mutex;
  let files = Hashtbl.fold (fun f _ acc -> f :: acc) t.index [] in
  Hashtbl.reset t.index;
  t.total <- 0;
  Mutex.unlock t.mutex;
  unlink_all t files

let reset_stats t =
  List.iter
    (fun c -> Atomic.set c 0)
    [ t.h_hits; t.h_misses; t.h_puts; t.h_evictions ]

let pp_stats ppf s =
  Format.fprintf ppf "%d hits, %d misses, %d puts, %d evicted, %d entries, %d B"
    s.hits s.misses s.puts s.evictions s.entries s.bytes

(* Stats provider: one entry per open store, newest last. *)
let () =
  Obs.register_stats ~name:"store" (fun () ->
      Mutex.lock registry_mutex;
      let ts = !registry in
      Mutex.unlock registry_mutex;
      Obs.List
        (List.rev_map
           (fun t ->
             let s = stats t in
             Obs.Assoc
               [
                 ("root", Obs.String t.sroot);
                 ("limit_bytes", Obs.Int t.limit_bytes);
                 ("hits", Obs.Int s.hits);
                 ("misses", Obs.Int s.misses);
                 ("puts", Obs.Int s.puts);
                 ("evictions", Obs.Int s.evictions);
                 ("entries", Obs.Int s.entries);
                 ("bytes", Obs.Int s.bytes);
               ])
           ts))
