(** Fixed-size domain pool with per-worker work-stealing deques.  See
    pool.mli for the design contract.  Synchronization is deliberately
    coarse (a mutex per deque, a mutex+condition for the idle set): the
    tasks this pool runs are whole LP solves and simulations, so queue
    operations are nowhere near the critical path. *)

type task = unit -> unit

module Deque = struct
  (* Ring-buffer deque.  The owner pushes and pops at the bottom (LIFO,
     keeps nested jobs cache-local); thieves take from the top (FIFO,
     steals the oldest -- typically largest -- task). *)
  type t = {
    lock : Mutex.t;
    mutable buf : task option array;
    mutable head : int;  (* index of the oldest element (steal end) *)
    mutable len : int;
  }

  let create () =
    { lock = Mutex.create (); buf = Array.make 16 None; head = 0; len = 0 }

  let grow d =
    let n = Array.length d.buf in
    let nb = Array.make (2 * n) None in
    for i = 0 to d.len - 1 do
      nb.(i) <- d.buf.((d.head + i) mod n)
    done;
    d.buf <- nb;
    d.head <- 0

  let push_bottom d t =
    Mutex.lock d.lock;
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- Some t;
    d.len <- d.len + 1;
    Mutex.unlock d.lock

  let pop_bottom d =
    Mutex.lock d.lock;
    let r =
      if d.len = 0 then None
      else begin
        let i = (d.head + d.len - 1) mod Array.length d.buf in
        let t = d.buf.(i) in
        d.buf.(i) <- None;
        d.len <- d.len - 1;
        t
      end
    in
    Mutex.unlock d.lock;
    r

  let steal d =
    Mutex.lock d.lock;
    let r =
      if d.len = 0 then None
      else begin
        let t = d.buf.(d.head) in
        d.buf.(d.head) <- None;
        d.head <- (d.head + 1) mod Array.length d.buf;
        d.len <- d.len - 1;
        t
      end
    in
    Mutex.unlock d.lock;
    r
end

(* Process-wide counters across every pool, feeding the Obs stats
   registry (and the [--stats-json] dump). *)
type totals = { submitted : int; run : int; stolen : int }

let n_submitted = Atomic.make 0
let n_run = Atomic.make 0
let n_stolen = Atomic.make 0
let max_workers = Atomic.make 0

let totals () =
  {
    submitted = Atomic.get n_submitted;
    run = Atomic.get n_run;
    stolen = Atomic.get n_stolen;
  }

let reset_totals () =
  List.iter (fun c -> Atomic.set c 0) [ n_submitted; n_run; n_stolen ]

let () =
  Obs.register_stats ~name:"pool" (fun () ->
      Obs.Assoc
        [
          ("workers", Obs.Int (Atomic.get max_workers));
          ("submitted", Obs.Int (Atomic.get n_submitted));
          ("run", Obs.Int (Atomic.get n_run));
          ("stolen", Obs.Int (Atomic.get n_stolen));
        ])

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fstate : 'a state Atomic.t;
  flock : Mutex.t;
  fcond : Condition.t;  (* signalled on completion, for foreign waiters *)
}

type t = {
  workers : int;  (* worker domain count; 0 = sequential *)
  deques : Deque.t array;  (* one per worker *)
  injector : Deque.t;  (* submissions from outside the pool *)
  plock : Mutex.t;
  work_available : Condition.t;
  mutable pending : int;  (* tasks enqueued and not yet picked up *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

(* Identifies the pool and worker index of the current domain, so that
   [submit] can target the worker's own deque and [await] can help. *)
let ctx_key : (t * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let default_size () =
  Env.int ~lo:0 "POWERLIM_JOBS"
    ~default:(max 0 (Domain.recommended_domain_count () - 1))

let size pool = pool.workers
let parallelism pool = max 1 pool.workers

(* ---- queue plumbing ---------------------------------------------- *)

let enqueue pool dq task =
  Mutex.lock pool.plock;
  pool.pending <- pool.pending + 1;
  Deque.push_bottom dq task;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.plock

let took pool =
  Mutex.lock pool.plock;
  pool.pending <- pool.pending - 1;
  Mutex.unlock pool.plock

(* Own deque bottom first, then the injector, then steal round-robin
   from the other workers. *)
let find_task pool wid =
  let own =
    if wid >= 0 then Deque.pop_bottom pool.deques.(wid) else None
  in
  match own with
  | Some _ as t -> t
  | None -> (
      match Deque.steal pool.injector with
      | Some _ as t -> t
      | None ->
          let n = pool.workers in
          let rec scan k =
            if k >= n then None
            else
              let v = (wid + 1 + k) mod n in
              if v = wid then scan (k + 1)
              else
                match Deque.steal pool.deques.(v) with
                | Some _ as t ->
                    Atomic.incr n_stolen;
                    t
                | None -> scan (k + 1)
          in
          scan 0)

(* Run one queued task if any is available.  Returns false when every
   queue came up empty. *)
let try_run_one pool wid =
  match find_task pool wid with
  | Some task ->
      took pool;
      Atomic.incr n_run;
      task ();
      true
  | None -> false

let rec worker_loop pool wid =
  if try_run_one pool wid then worker_loop pool wid
  else begin
    Mutex.lock pool.plock;
    if pool.stop && pool.pending = 0 then Mutex.unlock pool.plock
    else if pool.pending > 0 then begin
      (* a task exists but another worker may be racing us to it *)
      Mutex.unlock pool.plock;
      Domain.cpu_relax ();
      worker_loop pool wid
    end
    else begin
      Condition.wait pool.work_available pool.plock;
      Mutex.unlock pool.plock;
      worker_loop pool wid
    end
  end

(* ---- futures ------------------------------------------------------ *)

let fulfill fut st =
  Atomic.set fut.fstate st;
  Mutex.lock fut.flock;
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.flock

(* The span must close before [fulfill] publishes the result: a waiter
   that observes the future done may export the trace immediately, and
   the atomic state write orders the 'E' append before that read, so an
   observable-complete task always has a balanced span. *)
let run_into fut f =
  match Obs.span ~cat:"pool" "task" f with
  | v -> fulfill fut (Done v)
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      fulfill fut (Failed (e, bt))

let make_future () =
  {
    fstate = Atomic.make Pending;
    flock = Mutex.create ();
    fcond = Condition.create ();
  }

let submit pool f =
  let fut = make_future () in
  Atomic.incr n_submitted;
  if pool.workers = 0 then begin
    Atomic.incr n_run;
    run_into fut f
  end
  else begin
    let task () = run_into fut f in
    let dq =
      match Domain.DLS.get ctx_key with
      | Some (p, wid) when p == pool -> pool.deques.(wid)
      | _ -> pool.injector
    in
    enqueue pool dq task
  end;
  fut

let unwrap = function
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let await fut =
  match Atomic.get fut.fstate with
  | (Done _ | Failed _) as s -> unwrap s
  | Pending -> (
      match Domain.DLS.get ctx_key with
      | Some (pool, wid) ->
          (* worker: keep the pool busy while we wait, so nested
             submit/await cannot starve a fixed-size pool.  Only block
             once no task is queued anywhere -- every pending task is
             then running on some domain and progress is guaranteed. *)
          let rec help () =
            match Atomic.get fut.fstate with
            | (Done _ | Failed _) as s -> unwrap s
            | Pending ->
                if try_run_one pool wid then help ()
                else begin
                  Mutex.lock pool.plock;
                  let queued = pool.pending > 0 in
                  Mutex.unlock pool.plock;
                  if queued then Domain.cpu_relax ()
                  else begin
                    Mutex.lock fut.flock;
                    (match Atomic.get fut.fstate with
                    | Pending -> Condition.wait fut.fcond fut.flock
                    | Done _ | Failed _ -> ());
                    Mutex.unlock fut.flock
                  end;
                  help ()
                end
          in
          help ()
      | None ->
          Mutex.lock fut.flock;
          let rec wait () =
            match Atomic.get fut.fstate with
            | Pending ->
                Condition.wait fut.fcond fut.flock;
                wait ()
            | s -> s
          in
          let s = wait () in
          Mutex.unlock fut.flock;
          unwrap s)

let parallel_map pool f xs =
  let futs = List.map (fun x -> submit pool (fun () -> f x)) xs in
  List.map await futs

(* ---- lifecycle ---------------------------------------------------- *)

let create ?size () =
  let requested = match size with Some s -> max 0 s | None -> default_size () in
  let workers = if requested <= 1 then 0 else requested in
  let pool =
    {
      workers;
      deques = Array.init workers (fun _ -> Deque.create ());
      injector = Deque.create ();
      plock = Mutex.create ();
      work_available = Condition.create ();
      pending = 0;
      stop = false;
      domains = [||];
    }
  in
  if workers > Atomic.get max_workers then Atomic.set max_workers workers;
  if workers > 0 then
    pool.domains <-
      Array.init workers (fun wid ->
          Domain.spawn (fun () ->
              Domain.DLS.set ctx_key (Some (pool, wid));
              worker_loop pool wid));
  pool

let shutdown pool =
  if pool.workers > 0 then begin
    Mutex.lock pool.plock;
    let already = pool.stop in
    pool.stop <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.plock;
    if not already then Array.iter Domain.join pool.domains
  end

let default_pool = ref None
let default_lock = Mutex.create ()

let get_default () =
  Mutex.lock default_lock;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        at_exit (fun () -> shutdown p);
        p
  in
  Mutex.unlock default_lock;
  p
