(** POWERLIM_* environment knobs: parse, validate, warn once.  See
    env.mli. *)

let warned : (string, unit) Hashtbl.t = Hashtbl.create 8
let warned_mutex = Mutex.create ()
let rejected_log : (string * string) list ref = ref []

let warn_once name ~value ~expected ~default_s =
  Mutex.lock warned_mutex;
  let first = not (Hashtbl.mem warned name) in
  if first then begin
    Hashtbl.replace warned name ();
    rejected_log := (name, value) :: !rejected_log
  end;
  Mutex.unlock warned_mutex;
  if first then
    Printf.eprintf "powerlim: ignoring %s=%S (expected %s); using default %s\n%!"
      name value expected default_s

let rejected () =
  Mutex.lock warned_mutex;
  let l = List.rev !rejected_log in
  Mutex.unlock warned_mutex;
  l

let reset_warnings () =
  Mutex.lock warned_mutex;
  Hashtbl.reset warned;
  rejected_log := [];
  Mutex.unlock warned_mutex

(* The empty string counts as unset everywhere: [Unix.putenv] cannot
   remove a variable, so tests and in-process benchmarks set "" to hand
   a knob back to its default (convention established for the kernel
   knobs in DESIGN.md section 14). *)
let lookup name =
  match Sys.getenv_opt name with
  | None -> None
  | Some v -> ( match String.trim v with "" -> None | v -> Some v)

let explicit name = lookup name <> None

let flag name ~default =
  match lookup name with
  | None -> default
  | Some v ->
  match String.lowercase_ascii v with
  | "0" | "false" | "off" | "no" -> false
  | "1" | "true" | "on" | "yes" -> true
  | _ ->
      warn_once name ~value:v ~expected:"0/false/off/no or 1/true/on/yes"
        ~default_s:(string_of_bool default);
      default

let range_s ~what lo hi =
  match (lo, hi) with
  | Some lo, Some hi -> Printf.sprintf "%s in [%s, %s]" what lo hi
  | Some lo, None -> Printf.sprintf "%s >= %s" what lo
  | None, Some hi -> Printf.sprintf "%s <= %s" what hi
  | None, None -> what

let int ?lo ?hi name ~default =
  match lookup name with
  | None -> default
  | Some v -> (
      let ok n =
        (match lo with Some l -> n >= l | None -> true)
        && match hi with Some h -> n <= h | None -> true
      in
      match int_of_string_opt v with
      | Some n when ok n -> n
      | _ ->
          warn_once name ~value:v
            ~expected:
              (range_s ~what:"an integer"
                 (Option.map string_of_int lo)
                 (Option.map string_of_int hi))
            ~default_s:(string_of_int default);
          default)

let float ?lo_exclusive name ~default =
  match lookup name with
  | None -> default
  | Some v -> (
      let ok f =
        Float.is_finite f
        && match lo_exclusive with Some l -> f > l | None -> true
      in
      match float_of_string_opt v with
      | Some f when ok f -> f
      | _ ->
          warn_once name ~value:v
            ~expected:
              (range_s ~what:"a finite float"
                 (Option.map (Printf.sprintf "(exclusive) %g") lo_exclusive)
                 None)
            ~default_s:(Printf.sprintf "%g" default);
          default)
