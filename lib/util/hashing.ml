type t = Buffer.t

let create () = Buffer.create 256

(* One tag byte per atom keeps adjacent atoms of different types from
   aliasing (e.g. an int followed by a float vs. a string of the same
   bytes). *)
let tag b c = Buffer.add_char b c

let add_int64 b (v : int64) =
  for shift = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * shift)) 0xFFL)))
  done

let int b v =
  tag b 'i';
  add_int64 b (Int64.of_int v)

let bool b v =
  tag b 'b';
  Buffer.add_char b (if v then '\001' else '\000')

let float b v =
  tag b 'f';
  let v = if v = 0.0 then 0.0 else v in
  add_int64 b (Int64.bits_of_float v)

let string b s =
  tag b 's';
  add_int64 b (Int64.of_int (String.length s));
  Buffer.add_string b s

let hex b = Digest.to_hex (Digest.string (Buffer.contents b))

let to_int b =
  let h = Digest.string (Buffer.contents b) in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code h.[i]
  done;
  !v land max_int
