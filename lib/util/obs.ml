(** Span tracing into per-domain buffers + the stats-provider registry.
    See obs.mli for the contract. *)

(* ---- minimal JSON ------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

(* ASCII-only output: control and non-ASCII bytes are \u-escaped (the
   latter as their Latin-1 code points), so arbitrary byte strings still
   serialize to valid JSON. *)
let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_json_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let rec json_to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_json_float b f
  | String s -> add_json_string b s
  | List js ->
      Buffer.add_char b '[';
      List.iteri
        (fun i j ->
          if i > 0 then Buffer.add_char b ',';
          json_to_buffer b j)
        js;
      Buffer.add_char b ']'
  | Assoc kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_json_string b k;
          Buffer.add_char b ':';
          json_to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let json_to_string j =
  let b = Buffer.create 256 in
  json_to_buffer b j;
  Buffer.contents b

(* ---- enabling ----------------------------------------------------- *)

let env_default () = Env.flag "POWERLIM_TRACE" ~default:false

let enabled_flag = Atomic.make (env_default ())
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

(* ---- per-domain event buffers ------------------------------------- *)

type event = {
  name : string;
  cat : string;
  ph : char;
  ts : float;
  tid : int;
  args : (string * string) list;
}

let dummy_event = { name = ""; cat = ""; ph = 'B'; ts = 0.0; tid = 0; args = [] }

type buffer = {
  btid : int;
  mutable evs : event array;
  mutable blen : int;
  mutable last_ts : float;  (** clamp: per-buffer timestamps never regress *)
}

let buffers : buffer list ref = ref []
let buffers_mutex = Mutex.create ()

(* All timestamps are relative to one process epoch so spans from every
   domain land on a common timeline. *)
let epoch = Unix.gettimeofday ()

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          btid = (Domain.self () :> int);
          evs = Array.make 256 dummy_event;
          blen = 0;
          last_ts = 0.0;
        }
      in
      Mutex.lock buffers_mutex;
      buffers := b :: !buffers;
      Mutex.unlock buffers_mutex;
      b)

let emit ?(args = []) ~cat ph name =
  let b = Domain.DLS.get buffer_key in
  let now = Unix.gettimeofday () -. epoch in
  let ts = if now > b.last_ts then now else b.last_ts in
  b.last_ts <- ts;
  if b.blen = Array.length b.evs then begin
    let nb = Array.make (2 * b.blen) dummy_event in
    Array.blit b.evs 0 nb 0 b.blen;
    b.evs <- nb
  end;
  b.evs.(b.blen) <- { name; cat; ph; ts; tid = b.btid; args };
  b.blen <- b.blen + 1

let span ?(args = []) ~cat name f =
  if not (enabled ()) then f ()
  else begin
    (* the enabled check is not repeated at the end: a span that began
       always closes, so per-tid begin/end counts stay balanced even if
       tracing is toggled mid-flight *)
    emit ~args ~cat 'B' name;
    match f () with
    | v ->
        emit ~cat 'E' name;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        emit ~cat 'E' name;
        Printexc.raise_with_backtrace e bt
  end

let instant ?(args = []) ~cat name =
  if enabled () then emit ~args ~cat 'i' name

let snapshot_buffers () =
  Mutex.lock buffers_mutex;
  let bs = !buffers in
  Mutex.unlock buffers_mutex;
  List.sort (fun a b -> compare a.btid b.btid) bs

let events () =
  let per_buffer =
    List.concat_map
      (fun b -> Array.to_list (Array.sub b.evs 0 b.blen))
      (snapshot_buffers ())
  in
  (* stable: equal timestamps keep per-buffer (= per-tid) order, which is
     what makes each tid's B/E sequence well nested *)
  List.stable_sort (fun a b -> Float.compare a.ts b.ts) per_buffer

let event_count () =
  List.fold_left (fun acc b -> acc + b.blen) 0 (snapshot_buffers ())

let clear () =
  List.iter
    (fun b ->
      b.blen <- 0;
      b.last_ts <- 0.0)
    (snapshot_buffers ())

(* ---- Chrome trace-event export ------------------------------------ *)

let add_chrome_event b (e : event) =
  Buffer.add_string b "{\"name\":";
  add_json_string b e.name;
  Buffer.add_string b ",\"cat\":";
  add_json_string b e.cat;
  Buffer.add_string b (Printf.sprintf ",\"ph\":\"%c\"" e.ph);
  if e.ph = 'i' then Buffer.add_string b ",\"s\":\"t\"";
  Buffer.add_string b (Printf.sprintf ",\"ts\":%.3f" (e.ts *. 1e6));
  Buffer.add_string b (Printf.sprintf ",\"pid\":1,\"tid\":%d" e.tid);
  if e.args <> [] then begin
    Buffer.add_string b ",\"args\":";
    json_to_buffer b (Assoc (List.map (fun (k, v) -> (k, String v)) e.args))
  end;
  Buffer.add_char b '}'

let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      add_chrome_event b e)
    (events ());
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

(* Atomic: a crash mid-export must not leave a torn trace/stats file. *)
let write_file path s = Fileio.write path s

let write_chrome_json path = write_file path (to_chrome_json ())

(* ---- stats registry ----------------------------------------------- *)

let providers : (string * (unit -> json)) list ref = ref []
let providers_mutex = Mutex.create ()

let register_stats ~name f =
  Mutex.lock providers_mutex;
  providers := (name, f) :: List.remove_assoc name !providers;
  Mutex.unlock providers_mutex

let stats_json () =
  Mutex.lock providers_mutex;
  let ps = !providers in
  Mutex.unlock providers_mutex;
  let ps = List.sort (fun (a, _) (b, _) -> compare a b) ps in
  Assoc (List.map (fun (n, f) -> (n, f ())) ps)

let stats_to_string () = json_to_string (stats_json ())
let write_stats_json path = write_file path (stats_to_string ())

(* The trace layer reports on itself, so a stats dump records whether the
   numbers were gathered under tracing. *)
let () =
  register_stats ~name:"trace" (fun () ->
      Assoc [ ("enabled", Bool (enabled ())); ("events", Int (event_count ())) ])
