(** Content-addressed, size-bounded, crash-safe on-disk artifact store.

    The persistent tier under the in-memory {!Cache}: artifacts are
    byte strings filed under the same content-derived keys the pipeline
    already uses ({!Pipeline.Key}, ["stage:digest"]), so a warm entry
    is exactly "these bytes were computed from equal inputs" — across
    process restarts and across worker processes sharing the directory.

    Crash safety: every artifact is written with {!Fileio.with_out}
    (write-temp-then-rename), so a file under its final name is always
    complete.  Each artifact additionally carries a digest of its
    payload; anything that fails the digest (truncation by a full disk,
    manual corruption) reads as a clean miss and is deleted.  Temp
    debris left by a killed writer is swept on [open_].

    Bounding: when [limit_bytes > 0], inserting beyond the limit evicts
    least-recently-used artifacts (use = [get] hit or [put]).  The LRU
    order is seeded from file mtimes on [open_], so eviction stays
    sensible across restarts.  Oversized single artifacts (larger than
    the whole limit) are not stored at all.

    Concurrency: all operations are safe from any domain or thread.
    Multiple processes may share a directory: writes are atomic, and a
    [get] that misses the in-memory index probes the filesystem, so one
    process sees artifacts another stored after it opened. *)

type t

type stats = {
  hits : int;
  misses : int;
  puts : int;
  evictions : int;
  entries : int;  (** resident artifacts (per this process's index) *)
  bytes : int;  (** resident framed bytes *)
}

val open_ : ?limit_bytes:int -> root:string -> unit -> t
(** Open (creating if needed) the store rooted at [root].  Sweeps crash
    debris and indexes existing artifacts.  [limit_bytes <= 0] (the
    default) means unbounded. *)

val root : t -> string

val put : t -> string -> string -> unit
(** [put t key payload] stores [payload] under [key], atomically,
    evicting LRU entries if the size bound is now exceeded. *)

val get : t -> string -> string option
(** [get t key] returns the stored payload, verifying its integrity
    digest; a torn or corrupt artifact is removed and reads as [None]. *)

val mem : t -> string -> bool

val entries : t -> int

val total_bytes : t -> int

val clear : t -> unit
(** Remove every resident artifact (counters are kept). *)

val stats : t -> stats

val reset_stats : t -> unit

val pp_stats : Format.formatter -> stats -> unit
