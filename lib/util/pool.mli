(** A fixed-size pool of worker domains with per-worker work-stealing
    deques, shared by every parallel stage of the system (the experiment
    sweeps, the MILP branch-and-bound, the benchmark harness).

    Design notes:

    - The pool owns [size] worker domains.  Tasks submitted from outside
      the pool land in a shared injector queue; tasks submitted from a
      worker (nested submission) are pushed onto that worker's own deque
      and are executed LIFO by the owner, while idle workers steal FIFO
      from the other end — the classic work-stealing discipline that
      keeps nested fork/join jobs cache-local.
    - [await] called from a worker {e helps}: while its future is
      pending it keeps executing other queued tasks, so nested
      submit/await never deadlocks a fixed-size pool.
    - A pool of size [<= 1] degrades to sequential execution in the
      calling domain: [submit] runs the closure immediately.  All public
      entry points therefore behave identically (including exception
      behaviour and result ordering) at any pool size, which is what
      makes the POWERLIM_JOBS=1 vs =N determinism guarantee testable.
    - Exceptions raised by a task are captured with their backtrace and
      re-raised at [await]. *)

type t
(** A pool of worker domains (possibly zero of them: sequential). *)

type 'a future
(** The eventual result of a submitted task. *)

val default_size : unit -> int
(** Pool size chosen by the environment: [POWERLIM_JOBS] if set and
    parseable (clamped to [>= 0]), otherwise
    [Domain.recommended_domain_count () - 1]. *)

val create : ?size:int -> unit -> t
(** [create ~size ()] spawns [size] worker domains ([default_size ()] if
    omitted).  [size <= 1] creates a sequential pool that spawns no
    domains. *)

val size : t -> int
(** Number of worker domains (0 for a sequential pool). *)

val parallelism : t -> int
(** Degree of parallelism for reporting: [max 1 (size t)]. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Queue a task.  On a sequential pool the task runs immediately in the
    calling domain. *)

val await : 'a future -> 'a
(** Wait for a task's result.  Re-raises (with the original backtrace)
    any exception the task raised.  Called from a pool worker it executes
    other queued tasks while waiting. *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map pool f xs] maps [f] over [xs] with one task per
    element.  Results are returned in the order of [xs] regardless of
    completion order.  If several tasks raise, the exception of the
    earliest element is re-raised. *)

val shutdown : t -> unit
(** Stop and join the workers after the queues drain of running tasks.
    Idempotent.  Futures still pending from another domain's viewpoint
    must not be awaited after shutdown. *)

type totals = { submitted : int; run : int; stolen : int }
(** Process-wide task counters across every pool: tasks submitted, tasks
    executed (sequential pools included), and tasks obtained by stealing
    from another worker's deque. *)

val totals : unit -> totals

val reset_totals : unit -> unit
(** Zero the process-wide counters (benchmarks and tests). *)

val get_default : unit -> t
(** The process-wide shared pool, created on first use with
    [default_size ()] and shut down automatically at exit.  All library
    hot paths (sweeps, MILP) draw from this pool unless handed an
    explicit one, so the whole process respects a single
    [POWERLIM_JOBS] setting. *)
