(** Canonical structural digests for content-addressed cache keys.

    A hasher accumulates a canonical byte encoding of the structure fed
    to it (every atom is tagged and fixed-width or length-prefixed, so
    distinct structures cannot collide by concatenation) and finishes to
    a 128-bit MD5 rendered as hex.  The encoding depends only on the
    values — not on physical identity, hash-table order or word size —
    which is what makes the derived keys stable across runs, domains and
    POWERLIM_JOBS settings. *)

type t
(** An accumulating hasher. *)

val create : unit -> t

val int : t -> int -> unit
val bool : t -> bool -> unit

val float : t -> float -> unit
(** Hashes the IEEE-754 bit pattern ([-0.0] is canonicalized to [0.0],
    so [Float.equal] values always digest equally). *)

val string : t -> string -> unit
(** Length-prefixed, so ["ab"^"c"] and ["a"^"bc"] digest differently. *)

val hex : t -> string
(** 32-character lowercase hex MD5 of everything fed so far. *)

val to_int : t -> int
(** A non-negative [int] folded from {!hex}, for [Hashtbl.hash]-style
    consumers. *)
